package redundancy_test

// One benchmark per table/figure of the paper. Each benchmark regenerates
// its figure through the same harness as cmd/redbench, at reduced scale so
// `go test -bench=.` finishes in minutes. Increase -benchtime or run
// `go run ./cmd/redbench -fig all` for full-scale numbers; EXPERIMENTS.md
// records a full-scale paper-vs-measured comparison.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"redundancy"
	"redundancy/internal/dist"
	"redundancy/internal/exp"
	"redundancy/internal/memkv"
	"redundancy/internal/queueing"
)

// benchFig runs one experiment per iteration at the given scale.
func benchFig(b *testing.B, name string, scale float64) {
	b.Helper()
	e, ok := exp.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(exp.Options{Scale: scale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig1QueueingMeanAndCCDF(b *testing.B) { benchFig(b, "fig1", 0.1) }
func BenchmarkFig2ThresholdFamilies(b *testing.B)   { benchFig(b, "fig2", 0.05) }
func BenchmarkFig3RandomDistributions(b *testing.B) { benchFig(b, "fig3", 0.05) }
func BenchmarkFig4ClientOverhead(b *testing.B)      { benchFig(b, "fig4", 0.05) }
func BenchmarkTheorem1Exponential(b *testing.B)     { benchFig(b, "thm1", 0.1) }
func BenchmarkFig5DiskDBBase(b *testing.B)          { benchFig(b, "fig5", 0.1) }
func BenchmarkFig6DiskDBTinyFiles(b *testing.B)     { benchFig(b, "fig6", 0.1) }
func BenchmarkFig7DiskDBParetoFiles(b *testing.B)   { benchFig(b, "fig7", 0.1) }
func BenchmarkFig8DiskDBSmallCache(b *testing.B)    { benchFig(b, "fig8", 0.1) }
func BenchmarkFig9DiskDBEC2(b *testing.B)           { benchFig(b, "fig9", 0.1) }
func BenchmarkFig10DiskDBLargeFiles(b *testing.B)   { benchFig(b, "fig10", 0.1) }
func BenchmarkFig11DiskDBInMemory(b *testing.B)     { benchFig(b, "fig11", 0.1) }
func BenchmarkFig12Memcached(b *testing.B)          { benchFig(b, "fig12", 0.1) }
func BenchmarkFig13MemcachedStub(b *testing.B)      { benchFig(b, "fig13", 0.1) }
func BenchmarkFig14FatTree(b *testing.B)            { benchFig(b, "fig14", 0.05) }
func BenchmarkFig15DNSCCDF(b *testing.B)            { benchFig(b, "fig15", 0.05) }
func BenchmarkFig16DNSReduction(b *testing.B)       { benchFig(b, "fig16", 0.05) }
func BenchmarkFig17DNSMarginalValue(b *testing.B)   { benchFig(b, "fig17", 0.05) }
func BenchmarkHandshakeDuplication(b *testing.B)    { benchFig(b, "handshake", 0.05) }

// --- Ablations for the design choices DESIGN.md calls out. ---

// BenchmarkAblationCRN quantifies common random numbers in the threshold
// search: it reports (as custom metrics) the spread of the
// 2-copy-minus-1-copy mean difference across seeds, with paired vs
// unpaired seeds. The honest finding: pairing helps only modestly here,
// because the replicated arm runs at doubled utilization and its own
// queueing noise dominates the difference.
func BenchmarkAblationCRN(b *testing.B) {
	svc := dist.Exponential{MeanV: 1}
	run := func(seed1, seed2 int64) float64 {
		m1, err := queueing.MeanResponse(queueing.Config{
			Servers: 20, Copies: 1, Load: 0.3, Service: svc, Requests: 50000, Seed: seed1,
		})
		if err != nil {
			b.Fatal(err)
		}
		m2, err := queueing.MeanResponse(queueing.Config{
			Servers: 20, Copies: 2, Load: 0.3, Service: svc, Requests: 50000, Seed: seed2,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m2 - m1
	}
	spread := func(paired bool) float64 {
		lo, hi := 1e18, -1e18
		for s := int64(0); s < 8; s++ {
			var d float64
			if paired {
				d = run(s, s)
			} else {
				d = run(s, s+1000)
			}
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return hi - lo
	}
	for i := 0; i < b.N; i++ {
		p := spread(true)
		u := spread(false)
		b.ReportMetric(p, "paired-spread")
		b.ReportMetric(u, "unpaired-spread")
	}
}

// BenchmarkAblationCancellation compares the queueing model's
// no-cancellation worst case against what a cancelling client (package
// core) achieves: with cancellation the loser stops consuming resources,
// so the effective added load is far less than 2x. Reported metric:
// realized mean with full-service copies at 2x load vs single copies.
func BenchmarkAblationCancellation(b *testing.B) {
	svc := dist.ParetoMean(2.1, 1)
	for i := 0; i < b.N; i++ {
		m1, err := queueing.MeanResponse(queueing.Config{
			Servers: 20, Copies: 1, Load: 0.3, Service: svc, Requests: 100000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		m2, err := queueing.MeanResponse(queueing.Config{
			Servers: 20, Copies: 2, Load: 0.3, Service: svc, Requests: 100000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m1, "mean-1copy")
		b.ReportMetric(m2, "mean-2copy-nocancel")
	}
}

// --- Microbenchmarks of the core library hot path. ---

func BenchmarkCoreFirstOverhead(b *testing.B) {
	instant := func(ctx context.Context) (int, error) { return 1, nil }
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redundancy.First(ctx, instant, instant); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreGroupDo(b *testing.B) {
	g := redundancy.NewGroup[int](redundancy.Policy{Copies: 2, Selection: redundancy.SelectRandom},
		redundancy.WithSeed[int](1))
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 2, nil })
	g.Add("c", func(ctx context.Context) (int, error) { return 3, nil })
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Do(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreDoValue is the fast lane of the hot path: the same group
// and strategy as BenchmarkCoreGroupDo, but through DoValue — no
// options, first success wins, only the value returned. The pooled call
// frame keeps this at <= 4 allocs/op (benchgate enforces it): the
// copy-cancellation channel, the shared derived context, and one
// goroutine closure per launched copy.
func BenchmarkCoreDoValue(b *testing.B) {
	g := redundancy.NewGroup[int](redundancy.Policy{Copies: 2, Selection: redundancy.SelectRandom},
		redundancy.WithSeed[int](1))
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 2, nil })
	g.Add("c", func(ctx context.Context) (int, error) { return 3, nil })
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.DoValue(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreDoValueParallel contends the fast lane under ranked
// selection: one shared group's frame pool serving GOMAXPROCS
// goroutines, each call recycling a frame through sync.Pool.
func BenchmarkCoreDoValueParallel(b *testing.B) {
	g := redundancy.NewGroup[int](redundancy.Policy{Copies: 2, Selection: redundancy.SelectRanked},
		redundancy.WithSeed[int](1))
	for i := 0; i < 16; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) { return i, nil })
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.DoValue(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoreRingDo is the sharded-routing hot path: hash the key,
// binary-search the route table, walk to the primary + successor, and
// run the same call engine as Group.Do over that subset. The routing
// must stay within the same alloc budget as the unrouted path
// (benchgate enforces <= 12 allocs/op).
func BenchmarkCoreRingDo(b *testing.B) {
	r := redundancy.NewRing[string, int](redundancy.Policy{Copies: 2}.Strategy())
	for i := 0; i < 8; i++ {
		i := i
		r.Add(string(rune('a'+i)), func(ctx context.Context, _ string) (int, error) { return i, nil })
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Do(ctx, "user:12345"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreGroupDoParallel is the contention benchmark for the Group
// hot path: one shared Group, GOMAXPROCS goroutines calling Do as fast as
// they can. The copy-on-write engine reads membership, policy, and
// latency estimates without locking, so throughput should scale with
// cores instead of serializing on a global mutex.
func BenchmarkCoreGroupDoParallel(b *testing.B) {
	for _, sel := range []struct {
		name string
		s    redundancy.Selection
	}{{"ranked", redundancy.SelectRanked}, {"random", redundancy.SelectRandom}} {
		b.Run(sel.name, func(b *testing.B) {
			g := redundancy.NewGroup[int](redundancy.Policy{Copies: 2, Selection: sel.s},
				redundancy.WithSeed[int](1))
			for i := 0; i < 16; i++ {
				i := i
				g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) { return i, nil })
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := g.Do(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCoreGroupDoQuorum measures the quorum path of the unified
// call engine: same group as BenchmarkCoreGroupDo, but each call waits
// for 2 successes and collects per-copy outcomes.
func BenchmarkCoreGroupDoQuorum(b *testing.B) {
	g := redundancy.NewGroup[int](redundancy.Policy{Copies: 3, Selection: redundancy.SelectRandom},
		redundancy.WithSeed[int](1))
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 2, nil })
	g.Add("c", func(ctx context.Context) (int, error) { return 3, nil })
	ctx := context.Background()
	var outs []redundancy.Outcome[int]
	opts := []redundancy.CallOption{redundancy.WithQuorum(2), redundancy.WithCollectOutcomes(&outs)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Do(ctx, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreDoBatch is the batched-call hot path: 64 keys through
// one DoBatch under a hedging strategy whose primaries answer
// instantly, so every hedge deadline is armed on the shared timer wheel
// and stopped unfired. The per-batch cost must stay within ~2x a single
// Do (benchgate enforces <= 80 allocs per 64-key batch): one snapshot,
// one schedule, one event channel, and per-key copy launches — not 64
// independent calls' worth of machinery.
func BenchmarkCoreDoBatch(b *testing.B) {
	g := redundancy.NewStrategyKeyedGroup[int, int](
		redundancy.Fixed{Copies: 2, HedgeDelay: 100 * time.Millisecond},
		redundancy.WithKeyedSeed[int, int](1))
	for i := 0; i < 4; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context, k int) (int, error) { return k + i, nil })
	}
	args := make([]int, 64)
	for i := range args {
		args[i] = i
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.DoBatch(ctx, args)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(args) {
			b.Fatalf("got %d results", len(res))
		}
	}
}

func BenchmarkCoreHedgedFastPrimary(b *testing.B) {
	fast := func(ctx context.Context) (int, error) { return 1, nil }
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redundancy.Hedged(ctx, time.Second, fast, fast); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemkvMuxParallel drives the memkv v2 wire protocol at full
// tilt through ONE TCP connection: GOMAXPROCS goroutines issuing gets
// concurrently, writes group-committed by the connection's flusher,
// responses demuxed by tag. This is the transport hot path under the
// paper's redundancy (every redundant read multiplies in-flight
// requests); benchgate watches its allocs/op so the per-request cost
// stays a few waiter/frame allocations, not a connection.
func BenchmarkMemkvMuxParallel(b *testing.B) {
	srv := memkv.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl := memkv.NewMuxClient(addr.String(), 30*time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "bench-key", []byte("bench-value-0123456789")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v, err := cl.Get(ctx, "bench-key")
			if err != nil {
				b.Fatal(err)
			}
			if len(v) == 0 {
				b.Fatal("empty value")
			}
		}
	})
}

// BenchmarkMemkvWatchFanout is the event fan-out hot path: one store,
// 16 registered prefix watchers each draining its own channel, and every
// put delivered to all of them. The per-put cost (gated by benchgate) is
// what bounds write throughput on a watched prefix — the registry walk
// and the non-blocking channel sends, not per-watcher allocation.
func BenchmarkMemkvWatchFanout(b *testing.B) {
	const watchers = 16
	s := memkv.NewStore()
	var wg sync.WaitGroup
	ws := make([]*memkv.StoreWatch, watchers)
	for i := range ws {
		w := s.Watch("fan/", 1<<16)
		ws[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range w.Events() {
			}
		}()
	}
	val := []byte("fanout-value-0123456789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PutVersion("fan/key", 0, val, 0, uint64(i+1))
	}
	b.StopTimer()
	for _, w := range ws {
		w.Close()
	}
	wg.Wait()
}

// BenchmarkStoreScanPage shows the anti-entropy enumeration fix: one
// 128-entry Scan page over stores of different sizes. The bounded
// max-heap sweep allocates only the page itself — allocs/op and B/op
// stay flat from 100k to 1M keys, where the old page copied and sorted
// every key (O(n) garbage, O(n log n) compares per page, a quadratic
// full enumeration). Page time is the shard-map walk: one string
// compare per live key, cache-miss-dominated at 1M keys.
func BenchmarkStoreScanPage(b *testing.B) {
	for _, size := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("keys=%d", size), func(b *testing.B) {
			s := memkv.NewStore()
			val := []byte("v")
			for i := 0; i < size; i++ {
				s.Set(fmt.Sprintf("k/%07d", i), 0, val)
			}
			b.ReportAllocs()
			b.ResetTimer()
			after := ""
			for i := 0; i < b.N; i++ {
				entries, more := s.Scan(after, 128)
				if len(entries) == 0 {
					b.Fatal("empty page")
				}
				if more {
					after = entries[len(entries)-1].Key
				} else {
					after = ""
				}
			}
		})
	}
}

func BenchmarkAblationFatTree(b *testing.B)  { benchFig(b, "ablfattree", 0.05) }
func BenchmarkAblationQueueing(b *testing.B) { benchFig(b, "ablqueueing", 0.05) }
func BenchmarkAblationHedging(b *testing.B)  { benchFig(b, "ablhedge", 0.05) }
func BenchmarkAblationQuorum(b *testing.B)   { benchFig(b, "ablquorum", 0.05) }
func BenchmarkAblationCancel(b *testing.B)   { benchFig(b, "ablcancel", 0.05) }
