// muxbatch: the memkv v2 wire protocol carrying redundancy at a scale
// the v1 transport cannot — 50,000 concurrent redundant reads over
// FOUR TCP connections (one multiplexed connection per shard).
//
// The paper's prescription multiplies every read by its replication
// factor, so the transport's concurrency ceiling bounds how far
// redundancy scales. A v1 (memcached-text) client needs a dedicated
// connection per in-flight request: 50,000 outstanding gets at fan-out
// 2 would demand ~100,000 connections — 200,000 file descriptors with
// both ends in one process, an order of magnitude past the usual
// rlimit. The v2 client interleaves any number of tagged requests on
// one connection, so the same burst rides four sockets.
//
// Three acts:
//
//  1. One ShardedClient.GetBatch of 50,000 keys at fan-out 2 through
//     mux backends: one batched engine pass (one schedule, hedge
//     deadlines on the shared timer wheel, requests grouped per shard
//     into coalesced writes), one connection per shard.
//  2. The same workload shape on v1 backends at a fraction of the
//     scale: watch the server-side accepted-connection count track the
//     in-flight request count — the fd-per-request cost that caps v1.
//  3. Hedged batch reads: 50,000 deadlines armed on the shared wheel;
//     hedges whose primary answers in time are stopped unfired and
//     never launch — cancellation without connection churn.
//
// Run with: go run ./examples/muxbatch
package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"redundancy"
	"redundancy/internal/memkv"
)

const (
	shards  = 4
	keys    = 1000
	reads   = 50_000
	v1Reads = 4_000 // act 2 runs v1 at 8% scale; 50k would want ~100k conns
)

func main() {
	// Four live shards. A tiny service delay (wheel-parked on the v2
	// path) keeps thousands of requests genuinely in flight at once.
	servers := make([]*memkv.Server, shards)
	addrs := make([]string, shards)
	for i := range servers {
		srv := memkv.NewServer(nil)
		srv.Delay = func() time.Duration { return 5 * time.Millisecond }
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		servers[i] = srv
		addrs[i] = addr.String()
	}
	newSharded := func(strategy redundancy.Strategy, mux bool) *memkv.ShardedClient {
		clients := make([]memkv.Backend, shards)
		for i, addr := range addrs {
			if mux {
				clients[i] = memkv.NewMuxClient(addr, 30*time.Second)
			} else {
				clients[i] = memkv.NewClient(addr, 30*time.Second)
			}
		}
		return memkv.NewShardedClient(memkv.ShardedConfig{
			Replication:  2,
			ReadStrategy: strategy,
		}, clients...)
	}
	ctx := context.Background()

	// Preload through a throwaway v1 client set.
	pre := newSharded(redundancy.Fixed{Copies: 1}, false)
	keyNames := make([]string, keys)
	for i := range keyNames {
		keyNames[i] = fmt.Sprintf("item-%d", i)
		if err := pre.Set(ctx, keyNames[i], []byte("payload")); err != nil {
			panic(err)
		}
	}
	pre.Close()
	baseConns := acceptedConns(servers)

	fmt.Printf("== muxbatch: %d redundant reads over %d TCP connections ==\n\n", reads, shards)

	// Act 1: one batched pass, fan-out 2, through multiplexed backends.
	sc := newSharded(redundancy.Fixed{Copies: 2}, true)
	batch := make([]string, reads)
	for i := range batch {
		batch[i] = keyNames[i%keys]
	}
	start := time.Now()
	res, err := sc.GetBatch(ctx, batch)
	if err != nil {
		panic(err)
	}
	wall := time.Since(start)
	launched, p50, p99 := summarize(res)
	muxConns := acceptedConns(servers) - baseConns
	fmt.Printf("act 1 — v2 GetBatch, %d keys x fan-out 2 (%d requests):\n", reads, launched)
	fmt.Printf("        %v wall, per-read p50 %v / p99 %v\n", wall.Round(time.Millisecond), p50.Round(time.Millisecond), p99.Round(time.Millisecond))
	fmt.Printf("        connections accepted across %d shards: %d (one mux conn per shard)\n\n", shards, muxConns)
	sc.Close()
	baseConns = acceptedConns(servers)

	// Act 2: the v1 transport pays a connection per in-flight request.
	v1 := newSharded(redundancy.Fixed{Copies: 2}, false)
	start = time.Now()
	res, err = v1.GetBatch(ctx, batch[:v1Reads])
	if err != nil {
		panic(err)
	}
	v1Wall := time.Since(start)
	v1Launched, _, v1p99 := summarize(res)
	v1Conns := acceptedConns(servers) - baseConns
	fmt.Printf("act 2 — v1 GetBatch at %d keys (%d%% of act 1), same fan-out:\n", v1Reads, 100*v1Reads/reads)
	fmt.Printf("        %v wall, per-read p99 %v\n", v1Wall.Round(time.Millisecond), v1p99.Round(time.Millisecond))
	fmt.Printf("        connections accepted: %d for %d in-flight requests — a conn (2 fds) per request;\n", v1Conns, v1Launched)
	fmt.Printf("        act 1's %d requests would want ~%dk fds, past the usual rlimit\n\n", launched, launched*2/1000)
	v1.Close()
	baseConns = acceptedConns(servers)

	// Act 3: hedged batch — deadlines armed on the shared wheel, then
	// stopped unfired when the primaries answer first. No second copies,
	// no connection churn: cancellation is just a discarded tag.
	hedged := newSharded(redundancy.Fixed{Copies: 2, HedgeDelay: 250 * time.Millisecond}, true)
	start = time.Now()
	res, err = hedged.GetBatch(ctx, batch)
	if err != nil {
		panic(err)
	}
	hWall := time.Since(start)
	hLaunched, _, hp99 := summarize(res)
	hConns := acceptedConns(servers) - baseConns
	fired := hLaunched - reads
	fmt.Printf("act 3 — v2 GetBatch with a 250ms hedge deadline per key:\n")
	fmt.Printf("        %v wall, p99 %v; %d of %d hedge deadlines fired, %d stopped unfired on the wheel\n",
		hWall.Round(time.Millisecond), hp99.Round(time.Millisecond), fired, reads, reads-fired)
	fmt.Printf("        connections accepted: %d — abandoning a mux request never costs a reconnect\n", hConns)
	hedged.Close()
}

// summarize reports total copies launched and per-key latency quantiles.
func summarize(res []redundancy.BatchResult[[]byte]) (launched int, p50, p99 time.Duration) {
	lats := make([]time.Duration, 0, len(res))
	for i := range res {
		if res[i].Err != nil {
			panic(res[i].Err)
		}
		launched += res[i].Result.Launched
		lats = append(lats, res[i].Result.Latency)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return launched, lats[len(lats)/2], lats[len(lats)*99/100]
}

func acceptedConns(servers []*memkv.Server) (n int64) {
	for _, s := range servers {
		n += s.AcceptedConns()
	}
	return n
}
