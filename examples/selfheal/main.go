// selfheal: the convergence subsystem end to end — hinted handoff, read
// repair, and governed anti-entropy migration over live memkv shards.
//
// The paper's redundancy argument assumes every replica in a key's
// placement actually holds the data. Failures and topology changes
// silently break that assumption; this demo shows the repair manager
// restoring it in three acts, each off the foreground critical path:
//
//  1. Hinted handoff: a shard dies, a quorum-1 versioned write still
//     succeeds, and the missed copy is queued as a hint. When the shard
//     comes back on its old address, the hint replays and the revived
//     replica catches up — no caller involved.
//  2. Read repair: one replica is deliberately staled; a quorum read
//     returns the newest version and asynchronously pushes it to the
//     stale copy.
//  3. Anti-entropy migration: a new shard joins, and the migrator
//     streams exactly the remapped keys to their new owners in governed
//     batches; a version audit then finds every owner holding every key
//     at the version the writer minted.
//
// Run with: go run ./examples/selfheal
package main

import (
	"context"
	"fmt"
	"time"

	"redundancy/internal/memkv"
	"redundancy/internal/repair"
)

func main() {
	ctx := context.Background()

	// Four live shards over TCP, replication 2, quorum-1 writes (so act 1
	// can succeed with a dead replica).
	const shards = 4
	servers := make(map[string]*memkv.Server, shards)
	clients := make([]memkv.Backend, shards)
	for i := 0; i < shards; i++ {
		srv := memkv.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		servers[addr.String()] = srv
		clients[i] = memkv.NewMuxClient(addr.String(), 2*time.Second)
	}
	sc := memkv.NewShardedClient(memkv.ShardedConfig{Replication: 2, WriteQuorum: 1}, clients...)
	defer sc.Close()

	mgr := repair.Attach(sc, repair.Config{
		ReplayInterval: 50 * time.Millisecond,
	})
	defer mgr.Close()

	// ---- Act 1: hinted handoff ----
	fmt.Println("== act 1: hinted handoff ==")
	key := "user:42"
	owners := sc.Owners(key)
	downAddr := owners[1]
	servers[downAddr].Close()
	fmt.Printf("shard %s (secondary for %q) is down\n", downAddr, key)

	ver, err := sc.PutVersioned(ctx, key, []byte("profile-v1"), 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("quorum-1 write of %q succeeded at version %d despite the dead replica\n", key, ver)

	waitUntil("missed copy queued as a hint", func() bool {
		return mgr.Stats().HintsQueued >= 1
	})

	srv2 := memkv.NewServer(nil)
	if _, err := srv2.Listen(downAddr); err != nil {
		panic(err)
	}
	defer srv2.Close()
	fmt.Printf("shard %s restarted on its old address\n", downAddr)
	waitUntil("hint replayed to the revived shard", func() bool {
		return mgr.Stats().HintsReplayed >= 1
	})
	waitUntil("revived replica holds the value at the written version", func() bool {
		_, v, _, err := sc.VersionedShard(downAddr).GetV(ctx, key)
		return err == nil && v == ver
	})

	// ---- Act 2: read repair ----
	fmt.Println("\n== act 2: read repair ==")
	key2 := "doc:7"
	if _, err := sc.PutVersioned(ctx, key2, []byte("draft"), 0); err != nil {
		panic(err)
	}
	o2 := sc.Owners(key2)
	newer := sc.NextVersion()
	if _, _, err := sc.VersionedShard(o2[0]).PutV(ctx, key2, []byte("final"), 0, newer); err != nil {
		panic(err)
	}
	fmt.Printf("replica %s deliberately staled (holds the old version of %q)\n", o2[1], key2)

	val, gotVer, err := sc.GetQuorum(ctx, key2, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("quorum read returned %q at version %d (the newest of the two copies)\n", val, gotVer)
	waitUntil("stale replica healed by async read repair", func() bool {
		_, v, _, err := sc.VersionedShard(o2[1]).GetV(ctx, key2)
		return err == nil && v == newer
	})

	// ---- Act 3: anti-entropy migration ----
	fmt.Println("\n== act 3: anti-entropy migration ==")
	const n = 100
	wantVer := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("file-%02d", i)
		v, err := sc.PutVersioned(ctx, k, []byte(k), 0)
		if err != nil {
			panic(err)
		}
		wantVer[k] = v
	}
	prev := sc.PlacementSnapshot()
	newSrv := memkv.NewServer(nil)
	newAddr, err := newSrv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer newSrv.Close()
	sc.AddShard(memkv.NewMuxClient(newAddr.String(), 2*time.Second))
	cur := sc.PlacementSnapshot()
	fmt.Printf("shard %s joined: keys remap to the new placement\n", newAddr)

	st, err := mgr.RebalanceBetween(ctx, prev, cur)
	if err != nil {
		panic(err)
	}
	fmt.Printf("migrator: scanned %d entries, migrated %d remapped keys in %v (applied %d, already-newer %d)\n",
		st.KeysScanned, st.KeysMigrated, st.Elapsed.Round(time.Millisecond), st.PutsApplied, st.PutsStale)

	audited, converged := 0, 0
	for k, v := range wantVer {
		audited++
		ok := true
		for _, owner := range cur.Owners(k) {
			_, got, _, err := sc.VersionedShard(owner).GetV(ctx, k)
			if err != nil || got != v {
				ok = false
			}
		}
		if ok {
			converged++
		}
	}
	fmt.Printf("version audit: %d/%d keys present at every owner at the written version\n", converged, audited)

	s := mgr.Stats()
	fmt.Printf("\nrepair stats: hints queued/replayed %d/%d, divergence observed %d, repairs pushed %d, keys migrated %d\n",
		s.HintsQueued, s.HintsReplayed, s.DivergenceObserved, s.RepairsPushed, s.KeysMigrated)
}

func waitUntil(what string, cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			panic("timed out waiting for " + what)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("✓", what)
}
