// loadaware: the paper's threshold crossing, live — and what cancellation
// and the load-aware governor each do about it.
//
// Redundant copies buy latency only while the added load keeps server
// utilization below a threshold (§2 of the paper: 25-50% base load, 1/3
// for exponential service). Past it there are two defenses, and this demo
// shows both against in-process FCFS backends with real queues:
//
//  1. Copy cancellation. When the winner returns, losing copies are
//     cancelled through their derived contexts; a backend that honors
//     cancellation skips losers still sitting in its queue, so the
//     realized extra load is far below 2x (the "cancelled" column counts
//     copies cancelled in flight) and even blind fixed fan-out-2 stays
//     healthy well past the nominal threshold.
//
//  2. The governor. Some backends cannot un-send work (a UDP query
//     already on the wire, a server that processes regardless — the
//     paper's no-cancellation worst case). Against those, fixed
//     fan-out-2 drives utilization toward saturation and its tail
//     explodes, while LoadAware measures the load (EWMA of in-flight
//     copies per replica) and sheds its own redundancy, degrading
//     gracefully toward the single-copy baseline.
//
// Run with: go run ./examples/loadaware
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"redundancy"
)

// job is one unit of backend work; served reports whether the worker
// actually ran it (a cancellable job skipped while queued is reclaimed
// capacity).
type job struct {
	ctx    context.Context
	done   chan struct{}
	served bool
}

// backend is a single FCFS worker with a queue: real queueing, so
// offered load above capacity actually hurts, exactly as in the paper's
// model. honorCancel selects whether the worker skips jobs whose context
// was cancelled while they queued.
type backend struct {
	jobs chan *job
}

func newBackend(seed int64, meanSvc time.Duration, honorCancel bool) *backend {
	b := &backend{jobs: make(chan *job, 8192)}
	go func() {
		rng := rand.New(rand.NewSource(seed))
		for j := range b.jobs {
			if honorCancel && j.ctx.Err() != nil {
				close(j.done) // cancelled while queued: no service time spent
				continue
			}
			time.Sleep(time.Duration(rng.ExpFloat64() * float64(meanSvc)))
			j.served = true
			close(j.done)
		}
	}()
	return b
}

func (b *backend) replica() redundancy.Replica[struct{}] {
	return func(ctx context.Context) (struct{}, error) {
		j := &job{ctx: ctx, done: make(chan struct{})}
		select {
		case b.jobs <- j:
		case <-ctx.Done():
			return struct{}{}, ctx.Err()
		}
		select {
		case <-j.done:
		case <-ctx.Done():
			// The client abandons a cancelled copy immediately; whether
			// the backend still burns service time on it is the backend's
			// (in)ability to honor cancellation.
			return struct{}{}, ctx.Err()
		}
		if !j.served {
			return struct{}{}, ctx.Err()
		}
		return struct{}{}, nil
	}
}

const (
	nBackends = 4
	meanSvc   = 2 * time.Millisecond
)

// capacity is the backend pool's service rate in ops/s.
var capacity = float64(nBackends) * float64(time.Second) / float64(meanSvc)

// offer fires ops operations at the given base utilization (offered
// single-copy load as a fraction of capacity), Poisson arrivals, and
// reports the observed latency quantiles.
func offer(g *redundancy.Group[struct{}], baseUtil float64, ops int, seed int64) (p50, p99 time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	interarrival := float64(time.Second) / (baseUtil * capacity)
	var (
		mu  sync.Mutex
		lat []time.Duration
		wg  sync.WaitGroup
	)
	// Absolute-time pacing: sleeping the interarrival directly would add
	// the scheduler's wake-up overshoot to every gap and quietly offer
	// less load than advertised.
	start := time.Now()
	next := time.Duration(0)
	for i := 0; i < ops; i++ {
		next += time.Duration(rng.ExpFloat64() * interarrival)
		time.Sleep(time.Until(start.Add(next)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := g.Do(context.Background())
			if err != nil {
				return
			}
			mu.Lock()
			lat = append(lat, res.Latency)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100]
}

func runPhase(name string, baseUtil float64, ops int, honorCancel bool) {
	fmt.Println(name)
	gs := redundancy.LoadAware(redundancy.Fixed{Copies: 2, Selection: redundancy.SelectRandom},
		redundancy.DefaultGovernorThreshold)
	arms := []struct {
		name     string
		strategy redundancy.Strategy
		governed *redundancy.GovernedStrategy
	}{
		{"fixed k=2", redundancy.Fixed{Copies: 2, Selection: redundancy.SelectRandom}, nil},
		{"governed k=2", gs, gs},
	}
	for _, a := range arms {
		// Fresh backends per arm: both arms see identical offered traffic
		// instead of contending for one pool.
		counters := redundancy.NewCounters()
		g := redundancy.NewStrategyGroup[struct{}](a.strategy,
			redundancy.WithObserver[struct{}](counters),
			redundancy.WithSeed[struct{}](7))
		for i := 0; i < nBackends; i++ {
			g.Add(fmt.Sprintf("b%d", i), newBackend(int64(100+i), meanSvc, honorCancel).replica())
		}
		p50, p99 := offer(g, baseUtil, ops, 1)
		fmt.Printf("  %-14s p50 %-9v p99 %-9v copies/op %.2f cancelled %d",
			a.name, p50.Round(100*time.Microsecond), p99.Round(100*time.Microsecond),
			counters.CopiesPerOp(), counters.CancelledCopies())
		if a.governed != nil {
			st := a.governed.Governor().Stats()
			fmt.Printf("  [governor: util %.2f gated=%v flips=%d]", st.Utilization, st.Gated, st.Flips)
		}
		fmt.Println()
	}
	fmt.Println()
}

func main() {
	fmt.Printf("%d FCFS backends, exp(%v) service (capacity %.0f ops/s), threshold %.3g in-flight/replica\n\n",
		nBackends, meanSvc, capacity, redundancy.DefaultGovernorThreshold)

	runPhase("below threshold (base load 0.25), backends honor cancellation", 0.25, 400, true)
	runPhase("above threshold (base load 0.45), backends honor cancellation", 0.45, 900, true)
	runPhase("above threshold (base load 0.48), backends IGNORE cancellation (paper's worst case)", 0.48, 2400, false)

	fmt.Println("cancellation reclaims losing copies before they cost service time,")
	fmt.Println("so redundancy stays affordable past the nominal threshold; when the")
	fmt.Println("backend cannot cancel, the governor measures the load and stops")
	fmt.Println("paying for redundancy that no longer buys latency.")
}
