// Quickstart: the core idea of "Low Latency via Redundancy" in twenty
// lines — issue the same operation against two backends, use whichever
// responds first, cancel the other.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"redundancy"
)

// backend simulates a server whose latency is usually low but sometimes
// spikes (cache miss, GC pause, congested path...).
func backend(name string, r *rand.Rand) redundancy.Replica[string] {
	base := 10 + r.Float64()*10 // 10-20 ms typical
	return func(ctx context.Context) (string, error) {
		d := time.Duration(base * float64(time.Millisecond))
		if r.Float64() < 0.2 { // 20% of requests hit a 10x latency spike
			d *= 10
		}
		select {
		case <-time.After(d):
			return fmt.Sprintf("answer from %s after %v", name, d.Round(time.Millisecond)), nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

func main() {
	r := rand.New(rand.NewSource(7))
	east := backend("us-east", r)
	west := backend("us-west", r)

	ctx := context.Background()

	fmt.Println("-- single backend (30 requests) --")
	var single time.Duration
	for i := 0; i < 30; i++ {
		start := time.Now()
		if _, err := east(ctx); err != nil {
			panic(err)
		}
		single += time.Since(start)
	}
	fmt.Printf("total: %v\n\n", single.Round(time.Millisecond))

	fmt.Println("-- redundancy.First over both backends (30 requests) --")
	var replicated time.Duration
	for i := 0; i < 30; i++ {
		res, err := redundancy.First(ctx, east, west)
		if err != nil {
			panic(err)
		}
		replicated += res.Latency
		fmt.Printf("  winner=%d  %s\n", res.Index, res.Value)
	}
	fmt.Printf("total: %v (vs %v single)\n", replicated.Round(time.Millisecond), single.Round(time.Millisecond))
	fmt.Println("\nRedundancy wins exactly when one backend spikes — the paper's point:")
	fmt.Println("it removes the tail without knowing where the tail comes from.")
}
