// shardedkv: the paper's §2.2 storage scheme in the live stack — a
// keyspace partitioned across six real memkv shards over TCP via a
// consistent-hash ring, every key stored on a primary plus two
// successors, reads issued redundantly to primary+secondary with the
// first response winning, and writes acked by a 2-of-3 quorum.
//
// Three acts:
//
//  1. A stalled primary: the redundant read returns at the secondary's
//     speed while a fan-out-1 read waits out the stall.
//  2. A dead shard: a 2-of-3 quorum put and the redundant read both
//     survive it.
//  3. A topology change: removing a shard remaps its keys to their
//     successors atomically; the old secondary serves them meanwhile.
//
// Run with: go run ./examples/shardedkv
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"redundancy"
	"redundancy/internal/memkv"
)

func main() {
	// Six live shards, each with ~1-3 ms of jitter plus a per-shard
	// stall switch for act 1.
	const shards = 6
	r := rand.New(rand.NewSource(1))
	servers := make(map[string]*memkv.Server, shards)
	stalled := make(map[string]*atomic.Bool, shards)
	clients := make([]memkv.Backend, shards)
	for i := 0; i < shards; i++ {
		srv := memkv.NewServer(nil)
		flag := &atomic.Bool{}
		jitter := time.Duration(1+r.Intn(3)) * time.Millisecond
		srv.Delay = func() time.Duration {
			if flag.Load() {
				return 80 * time.Millisecond
			}
			return jitter
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		servers[addr.String()] = srv
		stalled[addr.String()] = flag
		clients[i] = memkv.NewClient(addr.String(), 2*time.Second)
	}

	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication: 3, // primary + two successors hold each key
		WriteQuorum: 2, // a put returns at 2 acks, tolerating one dead shard
		// Reads race primary + secondary; the paper's scheme.
		ReadStrategy: redundancy.Policy{Copies: 2}.Strategy(),
	}, clients...)
	defer sc.Close()
	ctx := context.Background()

	// Partition 240 keys across the ring.
	for i := 0; i < 240; i++ {
		key := fmt.Sprintf("user:%d", i)
		if err := sc.Set(ctx, key, []byte(fmt.Sprintf(`{"id":%d}`, i))); err != nil {
			panic(err)
		}
	}
	fmt.Printf("%d keys sharded across %d shards (replication %d, write quorum %d):\n",
		240, shards, sc.Replication(), sc.WriteQuorum())
	for _, m := range sc.RingStats().Members {
		fmt.Printf("  %-21s key share %4.1f%%\n", m.Name, m.KeyShare*100)
	}

	// --- Act 1: redundant read vs a stalled primary. ---
	// A 2-of-3 quorum put cancels the slowest placement write, so not
	// every primary holds its keys (a redundant read never notices: its
	// 2 copies always intersect the 2 write winners, since 2+2 > 3). The
	// fan-out-1 comparison below needs a key whose primary does hold the
	// value, so probe for one.
	var key string
	for i := 0; i < 240; i++ {
		k := fmt.Sprintf("user:%d", i)
		if _, err := sc.Get(ctx, k, redundancy.WithFanoutCap(1)); err == nil {
			key = k
			break
		}
	}
	primary := sc.Owners(key)[0]
	stalled[primary].Store(true)
	t0 := time.Now()
	if _, err := sc.Get(ctx, key); err != nil {
		panic(err)
	}
	redundant := time.Since(t0)
	t0 = time.Now()
	if _, err := sc.Get(ctx, key, redundancy.WithFanoutCap(1)); err != nil {
		panic(err)
	}
	single := time.Since(t0)
	stalled[primary].Store(false)
	fmt.Printf("\nprimary of %q stalled 80ms:\n", key)
	fmt.Printf("  redundant get (primary+secondary race)  %6s   <- secondary wins\n", redundant.Round(time.Millisecond))
	fmt.Printf("  fan-out-1 get (primary only)            %6s   <- waits out the stall\n", single.Round(time.Millisecond))

	// --- Act 2: quorum put survives a dead shard. ---
	key = "user:11"
	dead := sc.Owners(key)[0]
	servers[dead].Close()
	if err := sc.Set(ctx, key, []byte(`{"id":11,"v":2}`)); err != nil {
		panic(err)
	}
	v, err := sc.Get(ctx, key)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nprimary shard of %q killed:\n", key)
	fmt.Printf("  2-of-3 quorum put: ok; redundant get: %s\n", v)

	// --- Act 3: topology change remaps keys live. ---
	before := sc.Owners("user:3")
	sc.RemoveShard(dead)
	after := sc.Owners("user:3")
	fmt.Printf("\ndead shard removed from the ring (%d shards remain):\n", len(sc.RingStats().Members))
	fmt.Printf("  owners of %q: %v -> %v\n", "user:3", before, after)
	if v, err := sc.Get(ctx, "user:3"); err == nil {
		fmt.Printf("  get %q after remap: %s\n", "user:3", v)
	} else {
		panic(err)
	}
}
