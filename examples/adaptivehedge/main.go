// adaptivehedge: p95-triggered hedging against two deliberately skewed
// in-process servers.
//
// A fixed hedge delay must be guessed before the latency distribution is
// known, and the right guess depends on the tail (§2 of the paper), not
// the mean. The AdaptiveHedge strategy instead launches the second copy
// when the elapsed time exceeds the primary replica's observed p95,
// read from its lock-free latency digest — so the hedge point tracks
// the distribution as it drifts, and the extra load stays near 1 - p by
// construction.
//
// The two backends here are skewed differently: "steady" answers in
// 4-6 ms with a rare 60 ms spike; "spiky" answers in 3-5 ms but spikes
// to 120 ms ten times as often. Halfway through, "steady" degrades
// (spikes triple): the hedge point stays pinned at the healthy p95 —
// cancelled spikes never pollute the digest — so the hedge simply fires
// more often and absorbs the extra spikes, with no reconfiguration.
//
// Run with: go run ./examples/adaptivehedge
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"redundancy"
)

// backend simulates a server whose latency is base plus jitter, spiking
// to spike with probability spikeP (loaded atomically so the demo can
// degrade it mid-run). Each backend owns its PRNG behind a mutex:
// racing copies and ProbeAll call replicas concurrently, and rand.Rand
// is not safe for concurrent use.
func backend(seed int64, base, jitter, spike time.Duration, spikeP *atomic.Int64) redundancy.Replica[string] {
	r := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(ctx context.Context) (string, error) {
		mu.Lock()
		d := base + time.Duration(r.Float64()*float64(jitter))
		if r.Float64() < float64(spikeP.Load())/1000 {
			d = spike
		}
		mu.Unlock()
		select {
		case <-time.After(d):
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

func main() {
	ctx := context.Background()
	const n = 600

	steadySpikes := &atomic.Int64{}
	steadySpikes.Store(20) // 2%
	spikySpikes := &atomic.Int64{}
	spikySpikes.Store(100) // 10%

	counters := redundancy.NewCounters()
	g := redundancy.NewStrategyGroup[string](
		redundancy.AdaptiveHedge{
			Copies:    2,
			Quantile:  0.95,
			Selection: redundancy.SelectRanked,
		},
		redundancy.WithObserver[string](counters),
		redundancy.WithSeed[string](1),
	)
	g.Add("steady", backend(42, 4*time.Millisecond, 2*time.Millisecond, 60*time.Millisecond, steadySpikes))
	g.Add("spiky", backend(43, 3*time.Millisecond, 2*time.Millisecond, 120*time.Millisecond, spikySpikes))

	// Warm the digests: racing alone never measures the loser.
	for i := 0; i < 20; i++ {
		g.ProbeAll(ctx)
	}

	run := func(phase string, ops int) {
		lat := make([]time.Duration, 0, ops)
		for i := 0; i < ops; i++ {
			res, err := g.Do(ctx)
			if err != nil {
				panic(err)
			}
			lat = append(lat, res.Latency)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("%-22s p50 %-9v p99 %-9v copies/op %.2f\n", phase,
			lat[len(lat)/2].Round(100*time.Microsecond),
			lat[len(lat)*99/100].Round(100*time.Microsecond),
			counters.CopiesPerOp())
		stats := g.Stats()
		fmt.Printf("  strategy: %s\n", stats.Strategy)
		for _, rep := range stats.Replicas {
			fmt.Printf("  %-8s p50 %-9v p95 %-9v p99 %-9v (%d obs)\n", rep.Name,
				rep.P50.Round(100*time.Microsecond), rep.P95.Round(100*time.Microsecond),
				rep.P99.Round(100*time.Microsecond), rep.Observations)
		}
	}

	fmt.Printf("%d ops per phase; hedge fires at the primary's observed p95\n\n", n)
	run("healthy backends", n)

	// The steady backend degrades: 6% spike rate. No retuning required —
	// the hedge (still at the healthy p95) just fires more often, and the
	// extra load stays within the 1 - p budget.
	steadySpikes.Store(60)
	fmt.Println()
	run("after steady degrades", n)

	fmt.Println("\nthe hedge delay is never configured: it is read from the")
	fmt.Println("per-replica digest at each call, so the same group adapts as")
	fmt.Println("its backends drift.")
}
