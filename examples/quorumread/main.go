// quorumread: the consistency knob of the unified call API against three
// live memkv servers over real TCP. Every read goes through the same
// ReplicatedClient; what changes per call is only an option:
//
//   - the default Get is first-response-wins (lowest latency, one
//     replica's word),
//   - Get(..., memkv.ReadQuorum(2)) waits for 2-of-3 agreement (masks one
//     stale or failed replica at a modest latency premium),
//   - and the premium stays modest precisely *because* of redundancy: the
//     2nd-of-3 response dodges the worst straggler just as the 1st does.
//
// The example then kills one replica to show a quorum-2 read surviving,
// and kills a second to show the typed failure: errors.Is(err,
// redundancy.ErrQuorumUnreachable) with per-replica detail in the joined
// ReplicaErrors.
//
// Run with: go run ./examples/quorumread
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"redundancy"
	"redundancy/internal/memkv"
)

func main() {
	// Three in-process servers, each with mild jitter plus occasional
	// 40 ms stalls (4% of requests) — the straggler pattern replication
	// is built for. At 4%, one-of-three and two-of-three reads almost
	// never meet a stall at the p99, while three-of-three almost always
	// does: the quorum's consistency premium is small as long as spare
	// replicas remain.
	r := rand.New(rand.NewSource(7))
	servers := make([]*memkv.Server, 3)
	clients := make([]*memkv.Client, 3)
	for i := range servers {
		srv := memkv.NewServer(nil)
		srv.Delay = func() time.Duration {
			if r.Float64() < 0.04 {
				return 40 * time.Millisecond
			}
			return time.Duration(1+r.Intn(3)) * time.Millisecond
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		servers[i] = srv
		clients[i] = memkv.NewClient(addr.String(), time.Second)
	}

	rc := memkv.NewReplicatedClient(
		redundancy.Policy{Copies: 3, Selection: redundancy.SelectRandom},
		clients...)
	defer rc.Close()
	ctx := context.Background()

	if err := rc.Set(ctx, "user:42", []byte(`{"name":"ada"}`)); err != nil {
		panic(err)
	}

	const reads = 400
	measure := func(opts ...redundancy.CallOption) (p50, p99 time.Duration) {
		lats := make([]time.Duration, 0, reads)
		for i := 0; i < reads; i++ {
			res, err := rc.GetResult(ctx, "user:42", opts...)
			if err != nil {
				panic(err)
			}
			lats = append(lats, res.Latency)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[reads/2], lats[reads*99/100]
	}

	p50First, p99First := measure()
	p50Q2, p99Q2 := measure(memkv.ReadQuorum(2))
	p50Q3, p99Q3 := measure(memkv.ReadQuorum(3))

	fmt.Println("same client, per-read consistency (3 replicas, 4% 40ms stalls):")
	fmt.Printf("  first response   p50 %6s  p99 %6s\n", p50First.Round(time.Millisecond), p99First.Round(time.Millisecond))
	fmt.Printf("  ReadQuorum(2)    p50 %6s  p99 %6s   <- masks one stale/failed replica\n", p50Q2.Round(time.Millisecond), p99Q2.Round(time.Millisecond))
	fmt.Printf("  ReadQuorum(3)    p50 %6s  p99 %6s   <- scatter-gather worst case\n", p50Q3.Round(time.Millisecond), p99Q3.Round(time.Millisecond))

	// A quorum-2 read names its voters when asked.
	var outs []redundancy.Outcome[[]byte]
	if _, err := rc.GetResult(ctx, "user:42", memkv.ReadQuorum(2),
		redundancy.WithCollectOutcomes(&outs)); err != nil {
		panic(err)
	}
	fmt.Println("\nquorum-2 voters (completion order):")
	for _, o := range outs {
		if o.Err == nil {
			fmt.Printf("  copy %d answered %q after %s\n", o.Index, o.Value, o.Latency.Round(time.Millisecond))
		}
	}

	// One replica down: 2-of-3 still answers.
	servers[0].Close()
	if _, err := rc.Get(ctx, "user:42", memkv.ReadQuorum(2)); err != nil {
		panic(err)
	}
	fmt.Println("\none replica down: ReadQuorum(2) still answers")

	// Two down: the quorum is unreachable, and the error says so — typed,
	// with per-replica detail.
	servers[1].Close()
	_, err := rc.Get(ctx, "user:42", memkv.ReadQuorum(2))
	fmt.Printf("two replicas down: quorum unreachable = %v\n", errors.Is(err, redundancy.ErrQuorumUnreachable))
	var re redundancy.ReplicaError
	if errors.As(err, &re) {
		fmt.Printf("first failing replica: %s\n", re.Name)
	}
}
