// watchcas: conditional writes and redundant event streams — the
// paper's redundancy argument applied to long-lived watches.
//
// A request/response call hides a slow replica by racing copies and
// keeping the first answer. A watch is a stream, so the same trick
// becomes: subscribe to EVERY replica that can emit the event and
// deliver whichever copy arrives first, deduplicated by (key, version)
// so the consumer sees each event exactly once. Three acts:
//
//  1. Leader election by CAS: racing writers all try to create the
//     same key with expect=0; the conditional serializes at the key's
//     primary owner, so exactly one wins and the rest see
//     ErrCASConflict with the winner's version to retry from.
//  2. A redundant prefix watch: every write under the prefix arrives
//     exactly once even though every replica pushed a copy — the
//     duplicate count shows the suppressed redundancy.
//  3. A shard dies mid-stream: the surviving subscription keeps
//     delivering every event (nothing missed, nothing duplicated),
//     and a TTL'd key's active expiry arrives as an event like any
//     delete.
//
// Run with: go run ./examples/watchcas
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"redundancy/internal/memkv"
)

func main() {
	ctx := context.Background()

	// A 2-shard cluster, every key on both shards (replication 2).
	servers := make(map[string]*memkv.Server)
	var clients []memkv.Backend
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := memkv.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		servers[addr.String()] = srv
		addrs = append(addrs, addr.String())
		clients = append(clients, memkv.NewMuxClient(addr.String(), 5*time.Second))
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication: 2,
		WriteQuorum: 1,
	}, clients...)
	defer sc.Close()

	// --- Act 1: leader election by CAS ---------------------------------
	fmt.Println("== Act 1: leader election by CAS (expect 0 = create if absent)")
	var mu sync.Mutex
	var winner string
	var wg sync.WaitGroup
	conflicts := 0
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("candidate-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sc.CAS(ctx, "job/leader", []byte(name), 0, 0)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				winner = name
			} else if errors.Is(err, memkv.ErrCASConflict) {
				conflicts++
			}
		}()
	}
	wg.Wait()
	val, _, err := sc.GetQuorum(ctx, "job/leader", 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("   8 candidates raced: %q won, %d saw ErrCASConflict, quorum read agrees: %q\n\n",
		winner, conflicts, val)

	// --- Act 2: a redundant prefix watch -------------------------------
	fmt.Println("== Act 2: redundant prefix watch (subscribed to BOTH replicas)")
	watch, err := sc.WatchPrefix(ctx, "job/", 256)
	if err != nil {
		panic(err)
	}
	defer watch.Close()
	for i := 0; i < 3; i++ {
		if _, err := sc.PutVersioned(ctx, fmt.Sprintf("job/task-%d", i), []byte("queued"), 0); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 3; i++ {
		ev := <-watch.Events()
		fmt.Printf("   event: %-6s %s (version %d)\n", ev.Type, ev.Key, ev.Version)
	}
	st := watch.Stats()
	fmt.Printf("   delivered %d events exactly once; %d replica copies suppressed by the (key, version) filter\n\n",
		st.Delivered, st.Duplicates)

	// --- Act 3: a shard dies mid-stream; expiry is an event ------------
	fmt.Println("== Act 3: kill one replica mid-stream; TTL expiry arrives as an event")
	// CAS serializes at the key's PRIMARY owner — that is the whole
	// exactly-one-winner design — so the demo kills the OTHER replica:
	// conditional writes need the primary, redundant watches don't care.
	primary := sc.PlacementSnapshot().Owners("job/lease")[0]
	victim := addrs[0]
	if victim == primary {
		victim = addrs[1]
	}
	servers[victim].Close()
	fmt.Printf("   shard %s killed (the lease's primary %s survives)\n", victim, primary)
	if _, err := sc.CAS(ctx, "job/lease", []byte(winner), time.Second, 0); err != nil {
		panic(err)
	}
	fmt.Println("   wrote job/lease with a 1s TTL through the surviving replica (quorum 1)")
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-watch.Events():
			fmt.Printf("   event: %-6s %s (version %d)\n", ev.Type, ev.Key, ev.Version)
			if ev.Type == memkv.EventExpire && ev.Key == "job/lease" {
				st = watch.Stats()
				fmt.Printf("   the lease expired on schedule — active sweeper, no reader involved\n")
				fmt.Printf("   totals: %d delivered, %d duplicates suppressed, %d resubscribes\n",
					st.Delivered, st.Duplicates, st.Resubscribes)
				return
			}
		case <-deadline:
			panic("no expiry event")
		}
	}
}
