// dnsfirst: replicated DNS resolution against live mock resolvers over
// real UDP, reproducing the paper's §3.2 experiment in miniature: rank a
// set of resolvers by probing, then race queries to the best k and use the
// first response. One resolver is slow and one is lossy; the replicated
// resolver's latency tracks the best healthy server.
//
// Run with: go run ./examples/dnsfirst
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"redundancy"
	"redundancy/internal/dnswire"
)

func startResolver(delay time.Duration, loss float64, seed int64) (*dnswire.Server, string, error) {
	zone := dnswire.StaticHandler(map[string]net.IP{
		"www.example.com": net.IPv4(192, 0, 2, 10),
		"api.example.com": net.IPv4(192, 0, 2, 20),
	})
	srv := dnswire.NewServer(zone)
	if delay > 0 {
		srv.Delay = func() time.Duration { return delay }
	}
	if loss > 0 {
		r := rand.New(rand.NewSource(seed))
		var mu sync.Mutex
		srv.DropProb = loss
		srv.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return r.Float64()
		}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return srv, addr.String(), nil
}

func main() {
	// Three resolvers with different pathologies, as in the wide area:
	// fast-but-lossy, reliable-but-slow, and good.
	type spec struct {
		name  string
		delay time.Duration
		loss  float64
	}
	specs := []spec{
		{"lossy-fast", 5 * time.Millisecond, 0.30},
		{"reliable-slow", 60 * time.Millisecond, 0},
		{"good", 12 * time.Millisecond, 0.02},
	}
	var addrs []string
	for i, sp := range specs {
		srv, addr, err := startResolver(sp.delay, sp.loss, int64(i+1))
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		addrs = append(addrs, addr)
		fmt.Printf("resolver %-14s at %s (delay %v, loss %.0f%%)\n", sp.name, addr, sp.delay, sp.loss*100)
	}

	client := dnswire.NewClient(500 * time.Millisecond)
	ctx := context.Background()

	measure := func(name string, res *dnswire.Resolver, n int) {
		lat := make([]time.Duration, 0, n)
		fails := 0
		for i := 0; i < n; i++ {
			start := time.Now()
			_, err := res.Lookup(ctx, "www.example.com", dnswire.TypeA)
			if err != nil {
				fails++
				continue
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if len(lat) == 0 {
			fmt.Printf("%-28s all %d queries failed\n", name, n)
			return
		}
		fmt.Printf("%-28s p50 %-8v p95 %-8v fails %d/%d\n", name,
			lat[len(lat)/2].Round(time.Millisecond),
			lat[len(lat)*95/100].Round(time.Millisecond), fails, n)
	}

	const n = 60
	fmt.Printf("\n%d lookups of www.example.com per strategy:\n", n)
	for i, sp := range specs {
		one := dnswire.NewResolver(client, redundancy.Policy{Copies: 1}, addrs[i])
		measure("only "+sp.name, one, n)
	}

	// The paper's strategy: probe to rank, then query the top k in
	// parallel.
	all := dnswire.NewResolver(client, redundancy.Policy{Copies: 2}, addrs...)
	all.Probe(ctx, "www.example.com", dnswire.TypeA)
	fmt.Printf("\nranked servers (fastest first): %v\n", all.RankedServers())
	measure("replicated top-2", all, n)

	fmt.Println("\nReplication masks both the slow resolver and the lossy one —")
	fmt.Println("without knowing in advance which failure mode each server has.")
}
