// hedging: full replication vs hedged requests vs a budgeted group.
//
// The paper's system-level analysis (§2.1) says duplicating EVERY request
// is a win only below the threshold load; hedged requests — launch the
// second copy only if the first is slow — keep most of the tail benefit at
// a small fraction of the extra load, which is how the technique is
// usually deployed (gRPC hedging, Cassandra speculative retry).
//
// Run with: go run ./examples/hedging
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"redundancy"
)

func backend(r *rand.Rand, spike float64) redundancy.Replica[int] {
	return func(ctx context.Context) (int, error) {
		d := time.Duration(4+r.Float64()*4) * time.Millisecond
		if r.Float64() < spike {
			d = 80 * time.Millisecond // the tail we want to cut
		}
		select {
		case <-time.After(d):
			return 1, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

func main() {
	r := rand.New(rand.NewSource(42))
	ctx := context.Background()
	const n = 400

	run := func(name string, g *redundancy.Group[int], counters *redundancy.Counters) {
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			res, err := g.Do(ctx)
			if err != nil {
				panic(err)
			}
			lat = append(lat, res.Latency)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("%-18s p50 %-8v p99 %-8v copies/op %.2f\n", name,
			lat[n/2].Round(100*time.Microsecond),
			lat[n*99/100].Round(100*time.Microsecond),
			counters.CopiesPerOp())
	}

	mkGroup := func(policy redundancy.Policy, opts ...redundancy.GroupOption[int]) (*redundancy.Group[int], *redundancy.Counters) {
		c := redundancy.NewCounters()
		opts = append(opts, redundancy.WithObserver[int](c))
		g := redundancy.NewGroup[int](policy, opts...)
		g.Add("a", backend(r, 0.08))
		g.Add("b", backend(r, 0.08))
		return g, c
	}

	fmt.Printf("%d operations per strategy; backends spike to 80 ms on 8%% of requests\n\n", n)

	g, c := mkGroup(redundancy.Policy{Copies: 1})
	run("single", g, c)

	g, c = mkGroup(redundancy.Policy{Copies: 2, Selection: redundancy.SelectRandom})
	run("full replication", g, c)

	g, c = mkGroup(redundancy.Policy{Copies: 2, HedgeDelay: 15 * time.Millisecond,
		Selection: redundancy.SelectRandom})
	run("hedged @15ms", g, c)

	// A budget capping extra copies to ~20/sec: full replication degrades
	// gracefully toward single-copy when the budget runs dry.
	budget := redundancy.NewBudget(20, 5)
	g, c = mkGroup(redundancy.Policy{Copies: 2, Selection: redundancy.SelectRandom},
		redundancy.WithBudget[int](budget))
	run("budgeted (20/s)", g, c)

	fmt.Println("\nfull replication: best tail, 2.0 copies per op (double load).")
	fmt.Println("hedged: nearly the same tail, ~1.1 copies per op.")
	fmt.Println("budgeted: bounded extra load no matter the request rate.")
}
