// kvreplica: replicated reads against two live memkv servers over real
// TCP, reproducing the paper's storage-service scenario (§2.2) in
// miniature: one replica suffers latency spikes; the replicated client's
// tail latency tracks the healthy replica.
//
// Run with: go run ./examples/kvreplica
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"redundancy"
	"redundancy/internal/memkv"
)

func main() {
	// Two in-process servers: replica A degrades with occasional 50 ms
	// stalls (a disk hiccup, a GC pause); replica B is healthy.
	r := rand.New(rand.NewSource(1))
	srvA := memkv.NewServer(nil)
	srvA.Delay = func() time.Duration {
		if r.Float64() < 0.15 {
			return 50 * time.Millisecond
		}
		return time.Millisecond
	}
	srvB := memkv.NewServer(nil)
	srvB.Delay = func() time.Duration { return 2 * time.Millisecond }

	addrA, err := srvA.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srvA.Close()
	addrB, err := srvB.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srvB.Close()

	clA := memkv.NewClient(addrA.String(), time.Second)
	clB := memkv.NewClient(addrB.String(), time.Second)

	ctx := context.Background()
	counters := redundancy.NewCounters()

	single := memkv.NewReplicatedClient(redundancy.Policy{Copies: 1}, clA)
	both := memkv.NewReplicatedClient(redundancy.Policy{Copies: 2, Selection: redundancy.SelectRandom}, clA, clB)
	defer both.Close()
	_ = counters

	// Store a value everywhere.
	if err := both.Set(ctx, "user:42", []byte(`{"name":"ada"}`)); err != nil {
		panic(err)
	}

	measure := func(name string, get func() error) {
		const n = 200
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if err := get(); err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var total time.Duration
		for _, d := range lat {
			total += d
		}
		fmt.Printf("%-22s mean %-8v p50 %-8v p95 %-8v p99 %v\n", name,
			(total / n).Round(100*time.Microsecond),
			lat[n/2].Round(100*time.Microsecond),
			lat[n*95/100].Round(100*time.Microsecond),
			lat[n*99/100].Round(100*time.Microsecond))
	}

	fmt.Println("reading user:42 200 times through each client:")
	measure("replica A only", func() error {
		_, err := single.Get(ctx, "user:42")
		return err
	})
	measure("replicated (A + B)", func() error {
		_, err := both.Get(ctx, "user:42")
		return err
	})
	fmt.Println("\nThe replicated reader's p95/p99 ignore replica A's stalls —")
	fmt.Println("the fast copy masks the slow one (paper §2.2's tail result).")

	// The copy-on-write engine tracks per-replica latency estimates and
	// supports membership changes while reads are in flight: inspect the
	// estimates, then decommission the degraded replica without building
	// a new client.
	fmt.Println("\nper-replica latency estimates (EWMA of successful reads):")
	for _, r := range both.GroupStats().Replicas {
		fmt.Printf("  %-22s %-10v (%d observations)\n",
			r.Name, r.EstimatedLatency.Round(100*time.Microsecond), r.Observations)
	}

	fmt.Println("\ndecommissioning the degraded replica A:")
	both.RemoveReplica(addrA.String())
	measure("replicated (B only)", func() error {
		_, err := both.Get(ctx, "user:42")
		return err
	})
}
