package redundancy_test

import (
	"context"
	"fmt"
	"time"

	"redundancy"
)

// The simplest use: race two replicas, keep the faster answer.
func ExampleFirst() {
	ctx := context.Background()
	res, err := redundancy.First(ctx,
		func(ctx context.Context) (string, error) {
			select { // a slow replica that honors cancellation
			case <-time.After(time.Second):
				return "slow", nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		},
		func(ctx context.Context) (string, error) { return "fast", nil },
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Value)
	// Output: fast
}

// Hedged launches the second copy only if the first is slow, keeping the
// added load near zero for well-behaved requests.
func ExampleHedged() {
	ctx := context.Background()
	res, _ := redundancy.Hedged(ctx, 50*time.Millisecond,
		func(ctx context.Context) (string, error) { return "primary", nil },
		func(ctx context.Context) (string, error) { return "hedge", nil },
	)
	fmt.Println(res.Value, res.Launched)
	// Output: primary 1
}

// Quorum waits for q successes — R-of-N reads in replicated storage.
func ExampleQuorum() {
	ctx := context.Background()
	outs, _ := redundancy.Quorum(ctx, 2,
		func(ctx context.Context) (int, error) { return 1, nil },
		func(ctx context.Context) (int, error) { return 2, nil },
		func(ctx context.Context) (int, error) {
			select {
			case <-time.After(time.Second):
				return 3, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
	)
	fmt.Println(len(outs))
	// Output: 2
}

// AdaptiveHedge launches the second copy when the elapsed time exceeds
// the primary's observed p95, read from its lock-free latency digest.
// While the digests are cold it hedges immediately (warming fastest);
// once warm, the hedge point self-tunes to each replica's tail — no
// caller-guessed delay. examples/adaptivehedge shows it tracking two
// deliberately skewed backends.
func ExampleAdaptiveHedge() {
	g := redundancy.NewStrategyGroup[string](redundancy.AdaptiveHedge{
		Copies:    2,
		Quantile:  0.95,
		Selection: redundancy.SelectRanked,
	})
	g.Add("fast", func(ctx context.Context) (string, error) { return "fast", nil })
	g.Add("slow", func(ctx context.Context) (string, error) {
		select {
		case <-time.After(time.Second):
			return "slow", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})

	res, err := g.Do(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Value, res.Launched, g.Stats().Strategy)
	// Output: fast 2 adaptive-hedge(k=2, p95, ranked)
}

// Per-call options tune one operation over a shared group: a quorum read
// waits for 2-of-3 agreement and collects each voter's outcome, while
// every other caller keeps first-response semantics.
func ExampleWithQuorum() {
	g := redundancy.NewGroup[int](redundancy.Policy{Copies: 3})
	g.Add("a", func(ctx context.Context) (int, error) { return 42, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 42, nil })
	g.Add("c", func(ctx context.Context) (int, error) {
		select { // a straggler the quorum does not wait for
		case <-time.After(time.Second):
			return 42, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	})

	var outs []redundancy.Outcome[int]
	res, err := g.Do(context.Background(),
		redundancy.WithQuorum(2),
		redundancy.WithCollectOutcomes(&outs),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	wins := 0
	for _, o := range outs {
		if o.Err == nil {
			wins++
		}
	}
	fmt.Println(res.Value, wins)
	// Output: 42 2
}

// A Group tracks per-replica latency and replicates each operation to the
// k best replicas, as the paper's DNS experiment does.
func ExampleGroup() {
	g := redundancy.NewGroup[string](redundancy.Policy{
		Copies:    2,
		Selection: redundancy.SelectRanked,
	})
	g.Add("replica-a", func(ctx context.Context) (string, error) { return "a", nil })
	g.Add("replica-b", func(ctx context.Context) (string, error) { return "b", nil })
	g.Add("replica-c", func(ctx context.Context) (string, error) { return "c", nil })

	res, err := g.Do(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Launched, g.Len())
	// Output: 2 3
}

// A Ring shards the keyspace across backends by consistent hashing —
// the paper's §2.2 storage placement — and runs each call redundantly
// over its key's primary + successor shards, through the same engine
// and options as Group.Do.
func ExampleNewRing() {
	r := redundancy.NewRing[string, string](redundancy.Policy{Copies: 2}.Strategy())
	for _, shard := range []string{"a", "b", "c", "d"} {
		r.Add("shard-"+shard, func(ctx context.Context, key string) (string, error) {
			// A real backend would look key up in its partition.
			return "value-of-" + key, nil
		})
	}

	res, err := r.Do(context.Background(), "user:42")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s served by %d of %d shards\n", res.Value, res.Launched, r.Len())
	// Output: value-of-user:42 served by 2 of 4 shards
}
