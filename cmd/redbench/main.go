// Command redbench regenerates the tables and figures of "Low Latency via
// Redundancy" (Vulimiri et al., CoNEXT 2013) from this repository's
// reimplementation.
//
// Usage:
//
//	redbench -list
//	redbench -fig fig5
//	redbench -fig all -scale 0.2 -seed 7
//
// Scale 1.0 is the documented full run (minutes); smaller scales trade
// Monte-Carlo noise for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"redundancy/internal/exp"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment to run (see -list), or 'all'")
		scale = flag.Float64("scale", 1.0, "sample-size multiplier (0.01-1.0+)")
		seed  = flag.Int64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *fig == "" {
		fmt.Println("experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-10s %s\n", e.Name, e.Desc)
		}
		if *fig == "" && !*list {
			fmt.Println("\nrun one with: redbench -fig <name> (or -fig all)")
		}
		return
	}

	opts := exp.Options{Scale: *scale, Seed: *seed}
	var targets []exp.Experiment
	if *fig == "all" {
		targets = exp.All()
	} else {
		e, ok := exp.ByName(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "redbench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		targets = []exp.Experiment{e}
	}

	for _, e := range targets {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s completed in %v at scale %g]\n\n", e.Name, time.Since(start).Round(time.Millisecond), *scale)
	}
}
