// Command gateway runs the HTTP/JSON front door over a sharded memkv
// cluster, with the self-tuning SLO controller steering per-class
// redundancy.
//
// Usage:
//
//	gateway -addr :8080 -shards 127.0.0.1:11311,127.0.0.1:11312
//	gateway -shards … -target-p99 40ms -max-extra-load 0.5
//
// Then:
//
//	curl -X PUT --data-binary hi  localhost:8080/kv/greeting
//	curl -H 'X-SLO-Class: api'    localhost:8080/kv/greeting
//	curl -H 'X-Consistency: quorum' localhost:8080/kv/greeting
//	curl localhost:8080/slo
//
// The shards must run the v2 mux protocol (cmd/memkv serves it
// alongside the text protocol).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/gateway"
	"redundancy/internal/memkv"
	"redundancy/internal/slo"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		shards       = flag.String("shards", "", "comma-separated memkv shard addresses (required)")
		replication  = flag.Int("replication", 2, "placement copies per key")
		writeQuorum  = flag.Int("write-quorum", 0, "write quorum (0 = write-all)")
		targetP99    = flag.Duration("target-p99", 50*time.Millisecond, "SLO controller p99 target")
		maxExtraLoad = flag.Float64("max-extra-load", 0.5, "SLO controller extra-load budget (copies/op; 0 = uncapped)")
		interval     = flag.Duration("slo-interval", time.Second, "SLO control period")
		govThreshold = flag.Float64("governor", core.DefaultGovernorThreshold, "governor gate (in-flight copies per replica; 0 disables)")
		timeout      = flag.Duration("shard-timeout", 2*time.Second, "per-shard dial/IO timeout")
	)
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "gateway: -shards is required")
		os.Exit(2)
	}

	var backends []memkv.Backend
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			backends = append(backends, memkv.NewMuxClient(a, *timeout))
		}
	}

	ctr := core.NewCounters()
	var gov *core.Governor
	if *govThreshold > 0 {
		gov = core.NewGovernor(*govThreshold, 0)
	}
	ctl := slo.New(slo.Target{P99: *targetP99, MaxExtraLoad: *maxExtraLoad}, slo.Config{
		Counters: ctr,
		Governor: gov,
		Interval: *interval,
	})
	var readStrategy core.Strategy = ctl
	if gov != nil {
		readStrategy = core.LoadAwareWith(ctl, gov)
	}
	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication:  *replication,
		WriteQuorum:  *writeQuorum,
		ReadStrategy: readStrategy,
		Observer:     ctr,
	}, backends...)
	defer sc.Close()

	ctl.Start()
	defer ctl.Stop()

	gw := gateway.New(gateway.Config{
		Client:     sc,
		Controller: ctl,
		Counters:   ctr,
		Governor:   gov,
	})
	srv := &http.Server{Addr: *addr, Handler: gw}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("gateway listening on %s over %d shards (p99 target %v, budget %.2f)\n",
		*addr, len(backends), *targetP99, *maxExtraLoad)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		fmt.Println("gateway: shutting down")
		srv.Close()
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "gateway: %v\n", err)
		os.Exit(1)
	}
}
