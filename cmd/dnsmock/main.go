// Command dnsmock runs a mock DNS server answering A queries from a small
// built-in zone, with optional injected latency and loss — a stand-in for
// a public resolver when demonstrating replicated DNS queries (§3.2).
//
// Usage:
//
//	dnsmock -addr 127.0.0.1:5301
//	dnsmock -addr 127.0.0.1:5302 -delay-ms 80 -loss 0.02
//
// Query it with any DNS client, or through the repository's replicated
// resolver (see examples/dnsfirst).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"time"

	"redundancy/internal/dnswire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5301", "UDP listen address")
		delayMs = flag.Float64("delay-ms", 0, "artificial latency per query (milliseconds)")
		loss    = flag.Float64("loss", 0, "probability of silently dropping a query")
		seed    = flag.Int64("seed", 1, "seed for the loss process")
	)
	flag.Parse()

	zone := dnswire.StaticHandler(map[string]net.IP{
		"www.example.com": net.IPv4(192, 0, 2, 10),
		"api.example.com": net.IPv4(192, 0, 2, 20),
		"cdn.example.com": net.IPv4(192, 0, 2, 30),
		"redundancy.test": net.IPv4(192, 0, 2, 99),
		"quickstart.test": net.IPv4(192, 0, 2, 1),
	})
	srv := dnswire.NewServer(zone)
	if *delayMs > 0 {
		d := time.Duration(*delayMs * float64(time.Millisecond))
		srv.Delay = func() time.Duration { return d }
	}
	if *loss > 0 {
		r := rand.New(rand.NewSource(*seed))
		var mu sync.Mutex
		srv.DropProb = *loss
		srv.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return r.Float64()
		}
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsmock: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dnsmock listening on %s (delay %.1f ms, loss %.1f%%)\n", bound, *delayMs, *loss*100)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("dnsmock: shutting down")
	srv.Close()
}
