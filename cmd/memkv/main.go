// Command memkv runs a memcached-text-protocol key-value server, the live
// substrate for the §2.3 experiment and the kvreplica example.
//
// Usage:
//
//	memkv -addr 127.0.0.1:11311
//	memkv -addr 127.0.0.1:11311 -delay-ms 5   # inject 5 ms service delay
//
// The optional fixed delay makes redundancy's effect visible in demos: run
// one slow and one fast instance and read through the replicated client.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"redundancy/internal/memkv"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:11311", "listen address")
		delayMs = flag.Float64("delay-ms", 0, "artificial service delay per request (milliseconds)")
	)
	flag.Parse()

	srv := memkv.NewServer(nil)
	if *delayMs > 0 {
		d := time.Duration(*delayMs * float64(time.Millisecond))
		srv.Delay = func() time.Duration { return d }
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memkv: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memkv listening on %s (delay %.1f ms)\n", bound, *delayMs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("memkv: shutting down")
	srv.Close()
}
