module redundancy

go 1.24
