#!/usr/bin/env bash
# benchgate.sh — the hot-path regression gate for the unified call
# engine and the v2 wire protocol. Each gated benchmark carries its own
# alloc budget (name:max_allocs below) and fails the gate if it
#
#   * exceeds its allocs/op budget (the option machinery, the ring's
#     routing, the batch engine's per-key machinery, and the mux
#     client's per-request path must stay allocation-lean), or
#   * regresses more than TOLERANCE_PCT in ns/op against the committed
#     BENCH_core.json baseline (refresh the baseline deliberately with
#     scripts/bench.sh when a slowdown is accepted).
#
# Budgets:
#   BenchmarkCoreGroupDo:10      zero-options Do — the path every
#                                redundant operation shares
#   BenchmarkCoreRingDo:10       sharded routing layered on Do
#   BenchmarkCoreDoBatch:80      64-key batch: <= 2x a single Do's
#                                allocs for the WHOLE batch (~1.2/key)
#   BenchmarkMemkvMuxParallel:12 one multiplexed get, client side
#
# Usage: scripts/benchgate.sh [baseline.json]   (default BENCH_core.json)
# Env:   TOLERANCE_PCT (default 15),
#        BENCH_COUNT (default 3; the fastest run is compared, matching
#        how bench.sh records the baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_core.json}"
specs="BenchmarkCoreGroupDo:10 BenchmarkCoreRingDo:10 BenchmarkCoreDoBatch:80 BenchmarkMemkvMuxParallel:12"
tolerance_pct="${TOLERANCE_PCT:-15}"
count="${BENCH_COUNT:-3}"

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline missing (generate with scripts/bench.sh)" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

fail=0
for spec in $specs; do
    bench="${spec%%:*}"
    max_allocs="${spec##*:}"
    base_ns=$(grep -F "\"$bench\":" "$baseline" | sed -En 's/.*"ns_op": *([0-9]+).*/\1/p' | head -1)
    if [ -z "$base_ns" ]; then
        echo "benchgate: $bench not found in $baseline" >&2
        exit 1
    fi

    go test -run '^$' -bench "^${bench}\$" -benchtime 1s -count "$count" . | tee "$raw"

    # Fastest ns/op across the -count runs; allocs/op is deterministic, so
    # any run's figure serves.
    read -r ns allocs <<EOF
$(awk -v b="$bench" '
$1 ~ "^"b"(-[0-9]+)?$" {
    ns = ""; al = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") al = $i
    }
    if (ns == "") next
    if (best == "" || ns + 0 < best + 0) best = ns
    alloc = al
}
END { print best, alloc }' "$raw")
EOF

    if [ -z "${ns:-}" ] || [ -z "${allocs:-}" ]; then
        echo "benchgate: could not parse $bench output" >&2
        exit 1
    fi

    echo "benchgate: $bench measured ${ns} ns/op, ${allocs} allocs/op (baseline ${base_ns} ns/op, limits: ${max_allocs} allocs, +${tolerance_pct}% ns)"

    if [ "$allocs" -gt "$max_allocs" ]; then
        echo "benchgate: FAIL — $bench at ${allocs} allocs/op exceeds its ${max_allocs}-alloc budget" >&2
        fail=1
    fi
    limit=$(awk -v b="$base_ns" -v t="$tolerance_pct" 'BEGIN { printf "%.0f", b * (1 + t / 100) }')
    if awk -v n="$ns" -v l="$limit" 'BEGIN { exit !(n + 0 > l + 0) }'; then
        echo "benchgate: FAIL — $bench at ${ns} ns/op regresses past ${limit} ns/op (baseline ${base_ns} + ${tolerance_pct}%)" >&2
        fail=1
    fi
done
exit "$fail"
