#!/usr/bin/env bash
# benchgate.sh — the hot-path regression gate for the unified call
# engine and the v2 wire protocol. Each gated benchmark carries its own
# alloc budget (name:max_allocs below) and fails the gate if it
#
#   * exceeds its allocs/op budget (the option machinery, the ring's
#     routing, the batch engine's per-key machinery, and the mux
#     client's per-request path must stay allocation-lean), or
#   * regresses more than TOLERANCE_PCT in ns/op against the committed
#     BENCH_core.json baseline (refresh the baseline deliberately with
#     scripts/bench.sh when a slowdown is accepted).
#
# Budgets (ratcheted as the hot path loses allocations — never loosened):
#   BenchmarkCoreGroupDo:5            zero-options Do on the pooled call
#                                     frame (4 measured: copy ctx + done
#                                     chan + 2 go records)
#   BenchmarkCoreDoValue:4            the value-only fast lane — the
#                                     floor of the whole engine
#   BenchmarkCoreRingDo:6             sharded routing layered on Do
#                                     (5 measured; +1 placement copy)
#   BenchmarkCoreHedgedFastPrimary:11 hedged call whose primary wins:
#                                     wheel-armed hedge, no timer alloc
#   BenchmarkCoreDoBatch:80           64-key batch: <= 2x a single
#                                     legacy Do for the WHOLE batch
#   BenchmarkMemkvMuxParallel:3       one multiplexed get, client side
#                                     (2 measured: key string + value)
#   BenchmarkMemkvWatchFanout:2       one put fanned out to 16 prefix
#                                     watchers (1 measured: the put's
#                                     stored-value copy — every event
#                                     shares it, fan-out itself is
#                                     alloc-free)
#
# Usage: scripts/benchgate.sh [baseline.json]   (default BENCH_core.json)
# Env:   TOLERANCE_PCT (default 15),
#        BENCH_COUNT (default 3; the fastest run is compared, matching
#        how bench.sh records the baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_core.json}"
specs="BenchmarkCoreGroupDo:5 BenchmarkCoreDoValue:4 BenchmarkCoreRingDo:6 BenchmarkCoreHedgedFastPrimary:11 BenchmarkCoreDoBatch:80 BenchmarkMemkvMuxParallel:3 BenchmarkMemkvWatchFanout:2"
tolerance_pct="${TOLERANCE_PCT:-15}"
count="${BENCH_COUNT:-3}"

if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline missing (generate with scripts/bench.sh)" >&2
    exit 1
fi

raw="$(mktemp)"
table="$(mktemp)"
trap 'rm -f "$raw" "$table"' EXIT

fail=0
for spec in $specs; do
    bench="${spec%%:*}"
    max_allocs="${spec##*:}"
    base_line=$(grep -F "\"$bench\":" "$baseline" | head -1)
    base_ns=$(sed -En 's/.*"ns_op": *([0-9]+).*/\1/p' <<<"$base_line")
    base_b=$(sed -En 's/.*"b_op": *([0-9]+).*/\1/p' <<<"$base_line")
    base_allocs=$(sed -En 's/.*"allocs_op": *([0-9]+).*/\1/p' <<<"$base_line")
    if [ -z "$base_ns" ]; then
        echo "benchgate: $bench not found in $baseline" >&2
        exit 1
    fi

    go test -run '^$' -bench "^${bench}\$" -benchtime 1s -count "$count" . | tee "$raw"

    # Fastest ns/op across the -count runs; allocs/op is deterministic, so
    # any run's figure serves.
    read -r ns allocs <<EOF
$(awk -v b="$bench" '
$1 ~ "^"b"(-[0-9]+)?$" {
    ns = ""; al = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") al = $i
    }
    if (ns == "") next
    if (best == "" || ns + 0 < best + 0) best = ns
    alloc = al
}
END { print best, alloc }' "$raw")
EOF

    if [ -z "${ns:-}" ] || [ -z "${allocs:-}" ]; then
        echo "benchgate: could not parse $bench output" >&2
        exit 1
    fi

    echo "benchgate: $bench measured ${ns} ns/op, ${allocs} allocs/op (baseline ${base_ns} ns/op, limits: ${max_allocs} allocs, +${tolerance_pct}% ns)"
    printf '%s %s %s %s %s %s\n' \
        "$bench" "$base_ns" "$ns" "${base_allocs:-?}" "$allocs" "$max_allocs" >>"$table"

    if [ "$allocs" -gt "$max_allocs" ]; then
        echo "benchgate: FAIL — $bench at ${allocs} allocs/op exceeds its ${max_allocs}-alloc budget" >&2
        fail=1
    fi
    limit=$(awk -v b="$base_ns" -v t="$tolerance_pct" 'BEGIN { printf "%.0f", b * (1 + t / 100) }')
    if awk -v n="$ns" -v l="$limit" 'BEGIN { exit !(n + 0 > l + 0) }'; then
        echo "benchgate: FAIL — $bench at ${ns} ns/op regresses past ${limit} ns/op (baseline ${base_ns} + ${tolerance_pct}%)" >&2
        fail=1
    fi
done

# Before/after summary: committed baseline vs this run, so a glance at
# the gate's tail shows the whole hot path's movement, not just
# pass/fail per benchmark.
echo
awk '
BEGIN {
    printf "benchgate: %-34s %10s %10s %8s %14s %7s\n", \
        "benchmark", "base ns", "now ns", "delta", "allocs b->n", "budget"
}
{
    delta = ($2 + 0 > 0) ? sprintf("%+.1f%%", ($3 - $2) * 100.0 / $2) : "n/a"
    printf "benchgate: %-34s %10s %10s %8s %14s %7s\n", \
        $1, $2, $3, delta, $4 " -> " $5, $6
}' "$table"
exit "$fail"
