#!/usr/bin/env bash
# bench.sh — run the core hot-path benchmarks and emit BENCH_core.json,
# a machine-readable {benchmark: {ns_op, b_op, allocs_op}} map so the
# performance trajectory is comparable across PRs.
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_core.json)
#
# Each benchmark runs 3 times at -benchtime 1s; the recorded figure is
# the fastest run (least scheduler noise), matching common benchstat
# practice for single-number summaries.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_core.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkCore|BenchmarkMemkvMux|BenchmarkMemkvWatchFanout' -benchtime 1s -count 3 . | tee "$raw"

awk '
/^BenchmarkCore|^BenchmarkMemkvMux|^BenchmarkMemkvWatchFanout/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    ns = ""; b = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") b = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    # Keep the fastest of the -count runs.
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; bb[name] = b; aa[name] = allocs
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, best[name], bb[name] == "" ? "null" : bb[name], \
            aa[name] == "" ? "null" : aa[name], i < n ? "," : ""
    }
    printf "}\n"
}' "$raw" > "$out"

echo "wrote $out:"
cat "$out"
