#!/usr/bin/env bash
# covergate.sh — per-package test-coverage regression gate. Runs
# `go test -cover` across the module, compares each package's statement
# coverage against the committed COVER_baseline.txt, and fails if any
# package fell more than COVER_TOLERANCE_PTS points (default 2.0 — wide
# enough for run-to-run jitter from timing-dependent paths, tight
# enough that deleting a test file or gutting a test shows up).
#
# A package present in the baseline but missing from the run (tests
# deleted, build broken) fails the gate. New packages are reported but
# do not fail — ratchet them in by refreshing the baseline.
#
# Usage: scripts/covergate.sh              gate against COVER_baseline.txt
#        scripts/covergate.sh -update      refresh the baseline in place
# Env:   COVER_TOLERANCE_PTS (default 2.0)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="COVER_baseline.txt"
tolerance="${COVER_TOLERANCE_PTS:-2.0}"
mode="gate"
if [ "${1:-}" = "-update" ]; then
    mode="update"
fi

raw="$(mktemp)"
current="$(mktemp)"
trap 'rm -f "$raw" "$current"' EXIT

if ! go test -count=1 -cover ./... >"$raw" 2>&1; then
    cat "$raw" >&2
    echo "covergate: test run failed — fix tests before gating coverage" >&2
    exit 1
fi
cat "$raw"

# "ok  <pkg>  <time>  coverage: NN.N% of statements" -> "<pkg> NN.N"
awk '$1 == "ok" {
    for (i = 1; i <= NF; i++) {
        if ($i == "coverage:") {
            pct = $(i + 1)
            sub(/%/, "", pct)
            print $2, pct
        }
    }
}' "$raw" | sort >"$current"

if [ ! -s "$current" ]; then
    echo "covergate: no coverage lines parsed — go test output format change?" >&2
    exit 1
fi

if [ "$mode" = "update" ]; then
    cp "$current" "$baseline"
    echo "covergate: baseline refreshed ($(wc -l <"$baseline" | tr -d ' ') packages)"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "covergate: $baseline missing (generate with scripts/covergate.sh -update)" >&2
    exit 1
fi

fail=0
echo
echo "covergate: package                                        base%   now%   delta  (floor -${tolerance})"
while read -r pkg base_pct; do
    now_pct=$(awk -v p="$pkg" '$1 == p { print $2 }' "$current")
    if [ -z "$now_pct" ]; then
        echo "covergate: FAIL — $pkg in baseline but produced no coverage (tests deleted?)" >&2
        fail=1
        continue
    fi
    verdict=$(awk -v b="$base_pct" -v n="$now_pct" -v t="$tolerance" \
        'BEGIN { print (n + 0 < b - t) ? "FAIL" : "ok" }')
    delta=$(awk -v b="$base_pct" -v n="$now_pct" 'BEGIN { printf "%+.1f", n - b }')
    printf 'covergate: %-48s %6s %6s %7s  %s\n' "$pkg" "$base_pct" "$now_pct" "$delta" "$verdict"
    if [ "$verdict" = "FAIL" ]; then
        echo "covergate: FAIL — $pkg coverage ${now_pct}% fell more than ${tolerance} points below baseline ${base_pct}%" >&2
        fail=1
    fi
done <"$baseline"

# Surface packages the baseline has never seen.
while read -r pkg now_pct; do
    if ! awk -v p="$pkg" '$1 == p { found = 1 } END { exit !found }' "$baseline"; then
        echo "covergate: note — new package $pkg at ${now_pct}% (ratchet in with scripts/covergate.sh -update)"
    fi
done <"$current"

exit "$fail"
