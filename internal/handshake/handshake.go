// Package handshake models TCP connection establishment under packet loss
// with and without packet duplication, reproducing the paper's §3.1
// back-of-the-envelope analysis.
//
// Model (exactly the paper's): each packet transmission is delivered after
// RTT/2 with probability 1-p and lost otherwise, independently. SYN and
// SYN-ACK use a 3-second initial retransmission timeout; the final ACK
// uses 3*RTT; all back off exponentially. Duplicating a packet sends two
// back-to-back copies on the same path; per Chan et al.'s loss-pair
// measurements the pair is lost together with probability 0.0007, versus
// 0.0048 for a single packet — correlated, but still 7x better.
package handshake

import (
	"fmt"
	"math/rand"

	"redundancy/internal/stats"
)

// Loss probabilities measured by Chan et al. (IMC 2010) and used by the
// paper.
const (
	// SingleLossProb is the per-packet loss probability.
	SingleLossProb = 0.0048
	// PairLossProb is the probability both packets of a back-to-back pair
	// are lost.
	PairLossProb = 0.0007
)

// Config describes one handshake experiment.
type Config struct {
	// RTT is the round-trip time in seconds.
	RTT float64
	// LossProb is the effective per-transmission loss probability
	// (SingleLossProb without duplication, PairLossProb with).
	LossProb float64
	// InitialRTO is the SYN / SYN-ACK initial retransmission timeout
	// (3 s in Linux and Windows of the paper's era; 1 s on OS X).
	InitialRTO float64
	// Trials is the number of Monte-Carlo handshakes.
	Trials int
	Seed   int64
}

// Defaults fills zero fields: 3 s initial RTO, 100k trials.
func (c *Config) setDefaults() {
	if c.InitialRTO == 0 {
		c.InitialRTO = 3.0
	}
	if c.Trials == 0 {
		c.Trials = 100000
	}
}

func (c *Config) validate() error {
	if c.RTT <= 0 {
		return fmt.Errorf("handshake: RTT must be > 0, got %g", c.RTT)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("handshake: LossProb must be in [0,1), got %g", c.LossProb)
	}
	return nil
}

// deliveryTime returns the time from first transmission to successful
// arrival of one packet whose retransmission timer starts at rto and backs
// off exponentially. Each attempt is lost with probability p.
func deliveryTime(r *rand.Rand, p, rto, halfRTT float64) float64 {
	wait := 0.0
	timeout := rto
	for r.Float64() < p {
		wait += timeout
		timeout *= 2
	}
	return wait + halfRTT
}

// Run simulates Trials handshakes and returns the completion-time sample:
// SYN delivery + SYN-ACK delivery + ACK delivery (the paper's additive
// three-packet model).
func Run(cfg Config) (*stats.Sample, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	sample := stats.NewSample(cfg.Trials)
	half := cfg.RTT / 2
	for i := 0; i < cfg.Trials; i++ {
		syn := deliveryTime(r, cfg.LossProb, cfg.InitialRTO, half)
		synack := deliveryTime(r, cfg.LossProb, cfg.InitialRTO, half)
		ack := deliveryTime(r, cfg.LossProb, 3*cfg.RTT, half)
		sample.Add(syn + synack + ack)
	}
	return sample, nil
}

// ExpectedCompletion returns the analytic expected handshake time:
// 1.5*RTT plus, for each packet, the expected backoff wait. A packet lost
// k times (probability p^k (1-p)) waits RTO*(2^k - 1), so
//
//	E[wait] = sum_k p^k (1-p) RTO (2^k - 1)
//	        = RTO * ((1-p) * 2p/(1-2p) - p),   for p < 1/2.
func ExpectedCompletion(rtt, p, initialRTO float64) float64 {
	wait := func(rto float64) float64 {
		if p >= 0.5 {
			return rto * 1e9 // diverges; sentinel large
		}
		return rto * ((1-p)*2*p/(1-2*p) - p)
	}
	return 1.5*rtt + 2*wait(initialRTO) + wait(3*rtt)
}

// ExpectedSavings returns the paper's first-order estimate of the mean
// completion-time reduction from duplicating all three packets:
// (RTO + RTO + 3*RTT) * (p_single - p_pair) — "at least 25 ms".
func ExpectedSavings(rtt, initialRTO float64) float64 {
	return (2*initialRTO + 3*rtt) * (SingleLossProb - PairLossProb)
}

// Comparison runs both arms at the given RTT and reports the headline
// metrics.
type Comparison struct {
	RTT            float64
	MeanSingle     float64
	MeanDuplicated float64
	// P995* report the 99.5th percentile, where duplication's tail win is
	// sharpest in this model: without duplication ~1% of handshakes pay a
	// 3 s SYN/SYN-ACK timeout, so the 99.5th includes one; with
	// duplication the 3 s-event probability falls to ~0.14%, pushing the
	// timeout out of the percentile — a ~3 s saving. (At the 99.9th both
	// arms still contain a timeout because the correlated pair-loss
	// probability 0.0007 x 2 packets exceeds 0.1%; the paper's "at least
	// 880 ms at the 99.9th" corresponds to this same
	// timeout-leaves-the-percentile effect.)
	P995Single     float64
	P995Duplicated float64
	P999Single     float64
	P999Duplicated float64
	// MeanSavedMsPerKB and TailSavedMsPerKB are the cost-effectiveness
	// numbers: latency saved per KB of extra traffic, with 3 duplicated
	// 50-byte packets = 150 extra bytes per handshake. TailSavedMsPerKB
	// uses the 99.5th percentile.
	MeanSavedMsPerKB float64
	TailSavedMsPerKB float64
}

// ExtraBytes is the added traffic per duplicated handshake: one extra copy
// of each of three 50-byte packets.
const ExtraBytes = 150.0

// Compare runs the single vs duplicated arms.
func Compare(rtt float64, trials int, seed int64) (Comparison, error) {
	single, err := Run(Config{RTT: rtt, LossProb: SingleLossProb, Trials: trials, Seed: seed})
	if err != nil {
		return Comparison{}, err
	}
	dup, err := Run(Config{RTT: rtt, LossProb: PairLossProb, Trials: trials, Seed: seed + 1})
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{
		RTT:            rtt,
		MeanSingle:     single.Mean(),
		MeanDuplicated: dup.Mean(),
		P995Single:     single.Quantile(0.995),
		P995Duplicated: dup.Quantile(0.995),
		P999Single:     single.P999(),
		P999Duplicated: dup.P999(),
	}
	c.MeanSavedMsPerKB = (c.MeanSingle - c.MeanDuplicated) * 1000 / (ExtraBytes / 1024)
	c.TailSavedMsPerKB = (c.P995Single - c.P995Duplicated) * 1000 / (ExtraBytes / 1024)
	return c, nil
}
