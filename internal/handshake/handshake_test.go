package handshake

import (
	"math"
	"testing"

	"redundancy/internal/analytic"
)

func TestNoLossIsPureRTT(t *testing.T) {
	s, err := Run(Config{RTT: 0.1, LossProb: 0, Trials: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean()-0.15) > 1e-9 {
		t.Errorf("lossless handshake mean %g, want 1.5*RTT = 0.15", s.Mean())
	}
	if s.Max() != s.Min() {
		t.Error("lossless handshake should be deterministic")
	}
}

func TestMonteCarloMatchesAnalyticMean(t *testing.T) {
	for _, p := range []float64{SingleLossProb, PairLossProb, 0.02} {
		cfg := Config{RTT: 0.08, LossProb: p, Trials: 2000000, Seed: 2}
		s, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := ExpectedCompletion(0.08, p, 3.0)
		if math.Abs(s.Mean()-want) > 0.05*want {
			t.Errorf("p=%g: Monte Carlo mean %g vs analytic %g", p, s.Mean(), want)
		}
	}
}

func TestPaperHeadlineSavings(t *testing.T) {
	// §3.1: duplication saves >= 25 ms in the mean. The first-order
	// estimate is (3+3+3*RTT)*(0.0048-0.0007).
	if got := ExpectedSavings(0.1, 3.0); got < 0.025 {
		t.Errorf("expected savings %g s, paper says at least 25 ms", got)
	}
	c, err := Compare(0.1, 2000000, 3)
	if err != nil {
		t.Fatal(err)
	}
	saved := c.MeanSingle - c.MeanDuplicated
	if saved < 0.020 || saved > 0.035 {
		t.Errorf("measured mean saving %g s, want ~25 ms", saved)
	}
	// Cost-effectiveness: >= an order of magnitude above 16 ms/KB.
	if c.MeanSavedMsPerKB < 10*analytic.BreakEvenMsPerKB {
		t.Errorf("mean ms/KB = %g, paper says > 10x the 16 ms/KB benchmark", c.MeanSavedMsPerKB)
	}
}

func TestTailSavings(t *testing.T) {
	// §3.1: the paper reports >= 880 ms tail improvement. In this model
	// the effect appears at the 99.5th percentile: duplication pushes the
	// 3 s SYN/SYN-ACK timeout out of the percentile (see Comparison doc).
	c, err := Compare(0.1, 2000000, 4)
	if err != nil {
		t.Fatal(err)
	}
	saved := c.P995Single - c.P995Duplicated
	if saved < 0.88 {
		t.Fatalf("duplication improved the 99.5th percentile by only %g s, want >= 0.88", saved)
	}
	if c.TailSavedMsPerKB < 100*analytic.BreakEvenMsPerKB {
		t.Errorf("tail ms/KB = %g, paper says two orders above the 16 ms/KB benchmark",
			c.TailSavedMsPerKB)
	}
}

func TestSavingsGrowWithRTT(t *testing.T) {
	// The benefit increases with RTT (the ACK timeout is 3*RTT).
	if ExpectedSavings(0.02, 3) >= ExpectedSavings(0.3, 3) {
		t.Error("savings should grow with RTT")
	}
}

func TestBackoffIsExponential(t *testing.T) {
	// With p high, multiple retransmissions occur; the mean must reflect
	// exponential (not linear) backoff: for p=0.3, E[wait] has the
	// closed form RTO*(p/(1-2p) - p/(1-p)).
	s, err := Run(Config{RTT: 0.01, LossProb: 0.3, Trials: 500000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedCompletion(0.01, 0.3, 3.0)
	if math.Abs(s.Mean()-want) > 0.05*want {
		t.Errorf("p=0.3 mean %g vs analytic %g", s.Mean(), want)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{RTT: 0, LossProb: 0.1}); err == nil {
		t.Error("zero RTT accepted")
	}
	if _, err := Run(Config{RTT: 0.1, LossProb: 1.0}); err == nil {
		t.Error("certain loss accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := Run(Config{RTT: 0.1, LossProb: 0.01, Trials: 10000, Seed: 9})
	b, _ := Run(Config{RTT: 0.1, LossProb: 0.01, Trials: 10000, Seed: 9})
	if a.Mean() != b.Mean() {
		t.Error("same-seed runs diverged")
	}
}
