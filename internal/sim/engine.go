// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulators in this repository (the abstract queueing model, the
// disk-backed cluster, and the fat-tree network) are built on this engine.
// Virtual time is a float64 number of seconds. Events scheduled for the
// same instant fire in scheduling order, which makes runs fully
// deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a callback scheduled to run at a virtual time.
type Event func()

type scheduled struct {
	at  float64
	seq uint64
	fn  Event
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// NewEngine returns an engine whose random source is seeded with seed.
// Two engines with the same seed and the same schedule of events produce
// identical runs.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's random source. Model code should draw all
// randomness from here (or from streams split off it) for reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a model bug, and silently reordering time would
// corrupt every statistic downstream.
func (e *Engine) At(t float64, fn Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, scheduled{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds after the current virtual time.
func (e *Engine) After(d float64, fn Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Step runs the next pending event, advancing virtual time to it.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := heap.Pop(&e.events).(scheduled)
	e.now = it.at
	it.fn()
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }
