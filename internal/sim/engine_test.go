package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at float64
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After(5) from t=10 ran at %v, want 15", at)
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			e.After(1, chain)
		}
	}
	e.At(0, chain)
	e.Run()
	if count != 100 {
		t.Fatalf("chained events ran %d times, want 100", count)
	}
	if e.Now() != 99 {
		t.Fatalf("final time %v, want 99", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := make(map[float64]bool)
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { ran[tm] = true })
	}
	e.RunUntil(3)
	if !ran[1] || !ran[2] || !ran[3] || ran[4] || ran[5] {
		t.Fatalf("RunUntil(3) ran wrong events: %v", ran)
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if !ran[4] || !ran[5] {
		t.Fatalf("remaining events did not run")
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := NewEngine(seed)
		var times []float64
		var next func()
		next = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				e.After(e.Rand().ExpFloat64(), next)
			}
		}
		e.At(0, next)
		e.Run()
		return times
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: after an arbitrary batch of At() calls with non-negative times,
// Run visits them in nondecreasing time order.
func TestEngineMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(1)
		var visited []float64
		for _, v := range raw {
			tm := float64(v)
			e.At(tm, func() { visited = append(visited, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return len(visited) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
