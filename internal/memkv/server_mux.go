package memkv

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"redundancy/internal/core"
)

// This file is the server half of the memkv v2 protocol: one loop per
// connection that reads frames, executes them against the store, and
// appends responses to a coalesced write buffer drained by a flusher
// goroutine — the mirror image of the client's MuxClient. Two things
// distinguish it from the v1 text path:
//
//   - Responses interleave out of order. A delayed request (the Delay
//     hook) parks on the shared timer wheel and answers when its delay
//     elapses; requests behind it on the same connection are not
//     blocked. The v1 path is strictly serial per connection.
//   - No goroutine, timer, or connection is held per in-flight request.
//     A v1 server under N delayed requests holds N handler goroutines
//     (one per connection); the v2 server holds N small heap nodes on
//     the wheel. The concurrency ceiling moves from fds and stacks to
//     memory.
//
// Cancellation semantics shift accordingly: a v1 client abandons a
// request by closing the connection, which the per-connection handler
// notices mid-delay (aborted_ops). A v2 client abandons a request by
// discarding its tag and keeps the connection; the server finishes the
// work and writes a response nobody reads — unless the whole connection
// closes, in which case parked delayed requests are dropped at fire
// time and counted in aborted_ops exactly like v1.

// muxSession is one v2 connection's server state.
type muxSession struct {
	s    *Server
	conn net.Conn

	mu      sync.Mutex
	pending []byte
	closed  bool
	// watches maps a watch's identity — the tag of the opWatch frame
	// that opened it — to its store-side subscription. Each entry has a
	// pump goroutine moving store events into the pending buffer.
	watches map[uint64]*StoreWatch

	flushC chan struct{}
	done   chan struct{}
}

// muxWatchBacklogCap bounds the un-flushed response bytes a session may
// accumulate before its watches are treated as slow consumers: a client
// that stops reading its socket must shed its watches rather than grow
// the pending buffer without bound. Request/response traffic is bounded
// by the client's in-flight window; only server-push events are not,
// which is why the cap is enforced on the event path alone.
const muxWatchBacklogCap = 4 << 20

// serveMux runs the v2 frame loop on a connection whose first byte
// identified it as framed. It returns when the connection dies; delayed
// requests still parked on the wheel detect the closed session at fire
// time.
func (s *Server) serveMux(conn net.Conn, r *bufio.Reader) {
	m := &muxSession{
		s:      s,
		conn:   conn,
		flushC: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go m.flusher()
	for {
		var f frame
		if err := readFrame(r, &f); err != nil {
			break
		}
		if s.Delay != nil {
			if d := s.Delay(); d > 0 {
				// Park the request on the shared wheel instead of holding
				// this goroutine: the loop keeps reading, later requests
				// overtake this one, and the response goes out when the
				// delay elapses.
				core.SharedWheel().AfterFunc(d, muxDelayFired, &muxDelayed{m: m, f: f}, 0)
				continue
			}
		}
		m.exec(&f)
	}
	m.shutdown()
}

// muxDelayed boxes one parked request for the wheel callback.
type muxDelayed struct {
	m *muxSession
	f frame
}

func muxDelayFired(c any, _ int64) {
	d := c.(*muxDelayed)
	d.m.exec(&d.f)
}

// exec executes one request frame and enqueues its response. It runs on
// the connection's read loop or, for delayed requests, on the wheel
// goroutine — store operations are sharded-mutex map accesses and the
// enqueue is a buffer append, both non-blocking enough for the wheel's
// callback contract.
func (m *muxSession) exec(f *frame) {
	s := m.s
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		// The client went away while this request was parked: the
		// server-side half of cancellation, as in the v1 delay abort.
		s.aborted.Add(1)
		return
	}
	switch f.op {
	case opGet:
		s.cmdGet.Add(1)
		if val, flags, ok := s.store.Get(f.key); ok {
			s.getHits.Add(1)
			m.pending = appendFrame(m.pending, &frame{op: opValue, tag: f.tag, aux: flags, val: val})
		} else {
			s.getMisses.Add(1)
			m.pending = appendFrame(m.pending, &frame{op: opNotFound, tag: f.tag})
		}
	case opSet:
		if f.key == "" {
			m.pending = appendErrFrame(m.pending, f.tag, "set requires a key")
			break
		}
		s.cmdSet.Add(1)
		s.store.SetTTL(f.key, 0, f.val, time.Duration(f.aux)*time.Second)
		m.pending = appendFrame(m.pending, &frame{op: opStored, tag: f.tag})
	case opDelete:
		if f.key == "" {
			m.pending = appendErrFrame(m.pending, f.tag, "delete requires a key")
			break
		}
		if s.store.Delete(f.key) {
			m.pending = appendFrame(m.pending, &frame{op: opDeleted, tag: f.tag})
		} else {
			m.pending = appendFrame(m.pending, &frame{op: opNotFound, tag: f.tag})
		}
	case opGetV:
		s.cmdGet.Add(1)
		if val, flags, ver, ttl, ok := s.store.GetVersion(f.key); ok {
			s.getHits.Add(1)
			m.pending = appendFrame(m.pending, &frame{
				op: opValueV, tag: f.tag, aux: flags,
				val: appendVerPayload(nil, ver, ttl, val),
			})
		} else {
			s.getMisses.Add(1)
			m.pending = appendFrame(m.pending, &frame{op: opNotFound, tag: f.tag})
		}
	case opPutV:
		if f.key == "" {
			m.pending = appendErrFrame(m.pending, f.tag, "putv requires a key")
			break
		}
		ver, ttl, data, err := decodeVerPayload(f.val)
		if err != nil || ver == 0 {
			m.pending = appendErrFrame(m.pending, f.tag, "putv requires a versioned payload")
			break
		}
		s.cmdSet.Add(1)
		cur, applied := s.store.PutVersion(f.key, f.aux, data, time.Duration(ttl)*time.Second, ver)
		if !applied {
			s.stalePuts.Add(1)
		}
		resp := frame{op: opStoredV, tag: f.tag, val: appendVerPayload(nil, cur, 0, nil)}
		if applied {
			resp.aux = 1
		}
		m.pending = appendFrame(m.pending, &resp)
	case opScan:
		limit := int(f.aux)
		if limit < 1 || limit > maxScanLimit {
			limit = maxScanLimit
		}
		s.cmdScan.Add(1)
		entries, more := s.store.Scan(f.key, limit)
		var val []byte
		for i := range entries {
			val = appendScanEntry(val, &entries[i])
		}
		resp := frame{op: opScanResp, tag: f.tag, val: val}
		if more {
			resp.aux = 1
		}
		m.pending = appendFrame(m.pending, &resp)
	case opCAS:
		if f.key == "" {
			m.pending = appendErrFrame(m.pending, f.tag, "cas requires a key")
			break
		}
		expect, _, data, err := decodeVerPayload(f.val)
		if err != nil {
			m.pending = appendErrFrame(m.pending, f.tag, "cas requires a versioned payload")
			break
		}
		s.cmdSet.Add(1)
		cur, applied := s.store.CompareAndSwap(f.key, 0, data, time.Duration(f.aux)*time.Second, expect)
		resp := frame{op: opCASResp, tag: f.tag, val: appendVerPayload(nil, cur, 0, nil)}
		if applied {
			resp.aux = 1
		}
		m.pending = appendFrame(m.pending, &resp)
	case opWatch:
		if m.watches == nil {
			m.watches = make(map[uint64]*StoreWatch)
		}
		if _, dup := m.watches[f.tag]; dup {
			m.pending = appendErrFrame(m.pending, f.tag, "watch tag %d already in use", f.tag)
			break
		}
		sw := s.store.Watch(f.key, int(f.aux))
		m.watches[f.tag] = sw
		m.pending = appendFrame(m.pending, &frame{op: opWatchOK, tag: f.tag, aux: uint32(cap(sw.ch))})
		go m.pumpWatch(f.tag, sw)
	case opUnwatch:
		if len(f.val) != 8 {
			m.pending = appendErrFrame(m.pending, f.tag, "unwatch requires a watch tag")
			break
		}
		wtag := binary.BigEndian.Uint64(f.val)
		if sw := m.watches[wtag]; sw != nil {
			// Close the store watch; its pump drains any buffered events
			// and then emits the opWatchEnd for wtag. Unwatching an
			// unknown tag is a no-op ack (the watch may have just ended).
			sw.Close()
		}
		m.pending = appendFrame(m.pending, &frame{op: opUnwatched, tag: f.tag})
	default:
		m.pending = appendErrFrame(m.pending, f.tag, "unknown op %#x", f.op)
	}
	m.mu.Unlock()
	select {
	case m.flushC <- struct{}{}:
	default:
	}
}

// pumpWatch moves one watch's store events into the session's pending
// buffer, then emits the stream's terminal opWatchEnd. It is the only
// goroutine the watch path holds per subscription, and it spends its
// life parked on the event channel — the store's notify side never
// blocks on this session (bounded channel, non-blocking send).
func (m *muxSession) pumpWatch(tag uint64, sw *StoreWatch) {
	for ev := range sw.Events() {
		if !m.pushEvent(tag, &ev) {
			// Session backlog over cap (or session closed): shed this
			// watch rather than buffer without bound. Buffered events
			// after the gap are discarded — the stream is ending anyway.
			sw.closeWith(ErrSlowWatcher)
			break
		}
	}
	reason := uint32(watchEndClosed)
	if sw.Err() != nil {
		reason = watchEndSlow
	}
	m.endWatch(tag, reason)
}

// pushEvent appends one opEvent frame, reporting false if the session
// is closed or its write backlog is over muxWatchBacklogCap (the
// session-level slow-consumer guard; the caller sheds the watch).
func (m *muxSession) pushEvent(tag uint64, ev *WatchEvent) bool {
	m.mu.Lock()
	if m.closed || len(m.pending) > muxWatchBacklogCap {
		m.mu.Unlock()
		return false
	}
	m.pending = appendFrame(m.pending, &frame{
		op: opEvent, tag: tag, aux: uint32(ev.Type), key: ev.Key,
		val: appendVerPayload(nil, ev.Version, ev.TTLSecs, ev.Value),
	})
	m.mu.Unlock()
	select {
	case m.flushC <- struct{}{}:
	default:
	}
	return true
}

// endWatch removes the watch from the session and sends its terminal
// opWatchEnd (skipped if the connection already died).
func (m *muxSession) endWatch(tag uint64, reason uint32) {
	m.mu.Lock()
	delete(m.watches, tag)
	if !m.closed {
		m.pending = appendFrame(m.pending, &frame{op: opWatchEnd, tag: tag, aux: reason})
	}
	m.mu.Unlock()
	select {
	case m.flushC <- struct{}{}:
	default:
	}
}

// flusher drains the pending buffer with one write per pass — the
// server-side group commit matching the client's. Responses produced
// while a write is on the wire coalesce into the next write.
func (m *muxSession) flusher() {
	var scratch []byte
	for {
		select {
		case <-m.flushC:
		case <-m.done:
			return
		}
		for {
			m.mu.Lock()
			if len(m.pending) == 0 {
				m.mu.Unlock()
				break
			}
			buf := m.pending
			m.pending = scratch[:0]
			m.mu.Unlock()
			if _, err := m.conn.Write(buf); err != nil {
				m.shutdown()
				return
			}
			scratch = buf
		}
	}
}

// shutdown marks the session closed (idempotent): parked delayed
// requests become aborts at fire time, the flusher exits, and every
// store watch the session held is released (their pumps drain and exit;
// no opWatchEnd goes out — the connection is gone).
func (m *muxSession) shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.pending = nil
	ws := make([]*StoreWatch, 0, len(m.watches))
	for _, sw := range m.watches {
		ws = append(ws, sw)
	}
	m.mu.Unlock()
	close(m.done)
	m.conn.Close()
	for _, sw := range ws {
		sw.Close()
	}
}
