package memkv

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/core"
)

// This file applies the paper's redundancy argument to streams. A
// request/response call hides a slow replica by racing copies and
// keeping the first answer; a watch is a long-lived stream, so the same
// trick becomes: subscribe to EVERY shard that can emit the event,
// deliver whichever replica's copy arrives first, and drop the rest by
// (key, version) identity. The subscriber sees each logical event
// exactly once at the fastest replica's latency — and a replica dying
// mid-stream costs availability nothing, because the other
// subscriptions keep delivering while the dead one redials and
// resubscribes in the background.
//
// CAS rides the same placement: the conditional executes at the key's
// primary owner — one serialization point, so of N racing writers with
// the same expected version exactly one wins — and the winner's minted
// version is then replicated verbatim to the remaining owners under the
// write quorum, down the same detached/hinted path every versioned
// write uses.

// ErrCASConflict reports a compare-and-swap whose expected version did
// not match the stored one. Match with errors.Is; the returned version
// is the current one, to retry from.
var ErrCASConflict = errors.New("memkv: compare-and-swap conflict")

// CASBackend is the optional capability a shard backend exposes for
// conditional writes; MuxClient implements it.
type CASBackend interface {
	CAS(ctx context.Context, key string, value []byte, ttl time.Duration, expect uint64) (current uint64, applied bool, err error)
}

// WatchableBackend is the optional capability a shard backend exposes
// for prefix subscriptions; MuxClient implements it.
type WatchableBackend interface {
	Watch(ctx context.Context, prefix string, buf int) (*WatchStream, error)
}

// CAS stores value under key only if the key's current version equals
// expect (0 = create if absent). The conditional executes at the key's
// primary owner, which mints the new version on success; that exact
// version then replicates to the remaining placement copies under the
// write quorum (the primary's ack counts toward it), with failed copies
// reported to the repair sink as missed writes. On conflict the error
// matches ErrCASConflict and the returned version is the current one.
func (sc *ShardedClient) CAS(ctx context.Context, key string, value []byte, ttl time.Duration, expect uint64) (version uint64, err error) {
	if err := validateKey(key); err != nil {
		return 0, err
	}
	owners := sc.readsV.Owners(key)
	if len(owners) == 0 {
		return 0, core.ErrNoReplicas
	}
	vb := sc.VersionedShard(owners[0])
	cb, ok := vb.(CASBackend)
	if vb == nil || !ok {
		return 0, fmt.Errorf("memkv: cas %q: %s: %w", key, owners[0], errShardNotVersioned)
	}
	cur, applied, err := cb.CAS(ctx, key, value, ttl, expect)
	if err != nil {
		return 0, fmt.Errorf("memkv: cas %q: %w", key, err)
	}
	sc.Witness(cur)
	if !applied {
		return cur, fmt.Errorf("memkv: cas %q: %w (current version %d)", key, ErrCASConflict, cur)
	}
	q := sc.writeQuorum
	if q > len(owners) {
		q = len(owners)
	}
	if err := sc.replicateVersion(ctx, key, value, ttl, cur, owners[1:], q-1); err != nil {
		return cur, fmt.Errorf("memkv: cas %q replicate: %w", key, err)
	}
	return cur, nil
}

// dedupWindow is how many per-key entries the duplicate filter holds
// before rotating its generations. Events for a key older than two
// rotations ago can no longer be deduplicated — sized so that only a
// replica lagging by thousands of distinct keys' events could slip a
// duplicate through.
const dedupWindow = 8192

// eventID is a delivered event's identity for dedup: the stored version
// it concerns plus a rank ordering a value's lifecycle (put=1 before
// delete/expire=2, which share the dying value's version).
type eventID struct {
	ver  uint64
	rank uint8
}

// PrefixWatchStats counts a redundant watch's traffic.
type PrefixWatchStats struct {
	// Delivered is events handed to the consumer (first copy to arrive).
	Delivered int64
	// Duplicates is redundant copies suppressed by the (key, version)
	// filter — in steady state roughly Delivered × (replicas-1).
	Duplicates int64
	// Resubscribes counts per-shard stream re-establishments after a
	// stream ended (connection loss, slow-consumer shed).
	Resubscribes int64
}

// PrefixWatch is a redundant prefix subscription across every shard of
// a ShardedClient: one stream per shard, merged and deduplicated so the
// consumer sees each event exactly once, at the earliest replica's
// latency. Delivery per key is version-monotonic — a copy arriving
// after a newer event for the same key was already delivered is
// suppressed as superseded.
type PrefixWatch struct {
	sc     *ShardedClient
	prefix string
	ctx    context.Context
	cancel context.CancelFunc

	events chan WatchEvent
	wg     sync.WaitGroup

	mu   sync.Mutex
	seen map[string]eventID
	prev map[string]eventID

	delivered    atomic.Int64
	duplicates   atomic.Int64
	resubscribes atomic.Int64
}

// WatchPrefix opens a redundant watch for every key starting with
// prefix. It subscribes synchronously once to each shard and requires
// at least one success (shards it could not reach keep retrying in the
// background); buf sizes the merged event channel (non-positive =
// DefaultWatchBuffer). The watch ends when ctx is cancelled or Close is
// called; its Events channel closes once every shard loop has exited.
func (sc *ShardedClient) WatchPrefix(ctx context.Context, prefix string, buf int) (*PrefixWatch, error) {
	addrs := sc.ShardAddrs()
	if len(addrs) == 0 {
		return nil, core.ErrNoReplicas
	}
	if buf < 1 {
		buf = DefaultWatchBuffer
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &PrefixWatch{
		sc:     sc,
		prefix: prefix,
		ctx:    wctx,
		cancel: cancel,
		events: make(chan WatchEvent, buf),
		seen:   make(map[string]eventID, dedupWindow),
	}
	live := 0
	streams := make([]*WatchStream, len(addrs))
	for i, addr := range addrs {
		if wb, ok := sc.VersionedShard(addr).(WatchableBackend); ok {
			if st, err := wb.Watch(wctx, prefix, buf); err == nil {
				streams[i] = st
				live++
			}
		}
	}
	if live == 0 {
		cancel()
		return nil, fmt.Errorf("memkv: watch %q: no shard subscription succeeded: %w", prefix, ErrMuxConnLost)
	}
	for i, addr := range addrs {
		w.wg.Add(1)
		go w.shardLoop(addr, streams[i])
	}
	go func() {
		w.wg.Wait()
		close(w.events)
	}()
	return w, nil
}

// Events returns the merged, deduplicated stream. It closes after
// Close (or ctx cancellation) once every shard subscription has ended.
func (w *PrefixWatch) Events() <-chan WatchEvent { return w.events }

// Prefix returns the watched key prefix.
func (w *PrefixWatch) Prefix() string { return w.prefix }

// Stats snapshots the watch's delivery counters.
func (w *PrefixWatch) Stats() PrefixWatchStats {
	return PrefixWatchStats{
		Delivered:    w.delivered.Load(),
		Duplicates:   w.duplicates.Load(),
		Resubscribes: w.resubscribes.Load(),
	}
}

// Close ends the watch. Safe to call more than once.
func (w *PrefixWatch) Close() { w.cancel() }

// shardLoop owns one shard's subscription for the watch's lifetime:
// consume the stream, and when it ends — connection loss, slow-consumer
// shed, server restart — resubscribe with jittered backoff until the
// watch closes. While this shard is dark, the other shard loops keep
// delivering; events this replica missed were deduplicated copies of
// events the others carried, which is the whole redundancy argument.
func (w *PrefixWatch) shardLoop(addr string, st *WatchStream) {
	defer w.wg.Done()
	backoff := muxRedialBase
	for {
		if st != nil {
			backoff = muxRedialBase
			for ev := range st.Events() {
				w.observe(ev)
			}
			st = nil
			if w.ctx.Err() != nil {
				return
			}
			w.resubscribes.Add(1)
		}
		// (Re)subscribe. The shard may have been removed from the client
		// (loop exits: remaining shards own its keys after migration) or
		// be mid-redial (fail fast, retry after backoff).
		wb, ok := w.sc.VersionedShard(addr).(WatchableBackend)
		if !ok {
			return
		}
		next, err := wb.Watch(w.ctx, w.prefix, cap(w.events))
		if err != nil {
			if w.ctx.Err() != nil {
				return
			}
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)))
			select {
			case <-time.After(d):
			case <-w.ctx.Done():
				return
			}
			if backoff < muxRedialMax {
				backoff *= 2
			}
			continue
		}
		st = next
	}
}

// observe runs one replica's copy of an event through the duplicate
// filter and delivers it if it is news: strictly newer than the last
// delivered event for its key, or the same version moving from put to
// delete/expire (a value's two lifecycle events share its version).
func (w *PrefixWatch) observe(ev WatchEvent) {
	rank := uint8(1)
	if ev.Type.final() {
		rank = 2
	}
	w.mu.Lock()
	id, ok := w.seen[ev.Key]
	if !ok {
		id, ok = w.prev[ev.Key]
	}
	if ok && (ev.Version < id.ver || (ev.Version == id.ver && rank <= id.rank)) {
		w.mu.Unlock()
		w.duplicates.Add(1)
		return
	}
	w.seen[ev.Key] = eventID{ver: ev.Version, rank: rank}
	if len(w.seen) >= dedupWindow {
		// Generational rotation: lookups span both maps, so the filter
		// remembers between dedupWindow and 2×dedupWindow distinct keys
		// with O(1) rotation instead of per-entry eviction bookkeeping.
		w.prev = w.seen
		w.seen = make(map[string]eventID, dedupWindow)
	}
	w.mu.Unlock()
	select {
	case w.events <- ev:
		w.delivered.Add(1)
	case <-w.ctx.Done():
	}
}
