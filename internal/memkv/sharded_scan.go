package memkv

import (
	"context"
	"fmt"
	"sort"
)

// ScanMerged returns one globally key-ordered page of the cluster's
// live entries: up to limit keys strictly greater than after, merged
// across every shard with replicated copies deduplicated to the newest
// version. more reports whether another page exists (pass the last
// returned key as the next cursor), exactly like MuxClient.Scan — this
// is the front-door counterpart of the per-shard anti-entropy stream.
//
// One page of size limit from each shard suffices for a correct global
// page: the i-th smallest distinct key (i <= limit) lives on some
// shard, where fewer than i smaller keys precede it, so it is inside
// that shard's page. A shard error fails the whole scan rather than
// silently returning a partial keyspace.
func (sc *ShardedClient) ScanMerged(ctx context.Context, after string, limit int) ([]ScanEntry, bool, error) {
	if limit < 1 || limit > maxScanLimit {
		limit = maxScanLimit
	}
	more := false
	merged := make(map[string]ScanEntry)
	for _, addr := range sc.ShardAddrs() {
		vb := sc.VersionedShard(addr)
		if vb == nil {
			return nil, false, fmt.Errorf("%s: %w", addr, errShardNotVersioned)
		}
		entries, shardMore, err := vb.Scan(ctx, after, limit)
		if err != nil {
			return nil, false, fmt.Errorf("memkv: scan %s: %w", addr, err)
		}
		if shardMore {
			// Keys remain beyond this shard's page. Every one of them is
			// greater than each key returned here, so whether or not it
			// duplicates a key merged from another shard, a further
			// distinct key exists past the page we can return.
			more = true
		}
		for _, e := range entries {
			if prev, ok := merged[e.Key]; !ok || e.Version > prev.Version {
				merged[e.Key] = e
			}
		}
	}
	out := make([]ScanEntry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if len(out) > limit {
		out, more = out[:limit], true
	}
	return out, more, nil
}
