package memkv

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzFrameRoundTrip drives the v2 frame codec from both ends: a valid
// frame must encode and decode back to itself with nothing left over, a
// truncated prefix of a valid encoding must fail with an error (never a
// panic or a zero-error garbage frame), and readFrame over arbitrary
// bytes must return rather than panic. The corpus seeds cover every op,
// both length limits, and the empty frame.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(opGet), uint64(1), uint32(0), "key", []byte("value"), -1)
	f.Add(byte(opSet), uint64(0), uint32(300), "k", []byte{}, 0)
	f.Add(byte(opDelete), ^uint64(0), uint32(0), "", []byte(nil), 5)
	f.Add(byte(opValue), uint64(42), uint32(7), "", []byte("stored bytes"), 18)
	f.Add(byte(opErr), uint64(9), uint32(0), "", []byte("boom"), 19)
	f.Add(byte(0xFF), uint64(3), ^uint32(0), string(bytes.Repeat([]byte{'x'}, maxKeyLen)), bytes.Repeat([]byte{0}, 64), 100)
	f.Fuzz(func(t *testing.T, op byte, tag uint64, aux uint32, key string, val []byte, cut int) {
		// Clamp the inputs into the codec's valid domain: ops live in
		// [0x80, 0xFF], keys and values within the protocol limits.
		op |= 0x80
		if len(key) > maxKeyLen {
			key = key[:maxKeyLen]
		}
		if len(val) > maxValueLen {
			val = val[:maxValueLen]
		}
		in := frame{op: op, tag: tag, aux: aux, key: key, val: val}
		enc := appendFrame(nil, &in)

		// Full decode must round-trip exactly and consume the whole
		// encoding.
		r := bufio.NewReader(bytes.NewReader(enc))
		var out frame
		if err := readFrame(r, &out); err != nil {
			t.Fatalf("decode of valid frame failed: %v", err)
		}
		if out.op != in.op || out.tag != in.tag || out.aux != in.aux {
			t.Fatalf("header mismatch: got op=%#x tag=%d aux=%d, want op=%#x tag=%d aux=%d",
				out.op, out.tag, out.aux, in.op, in.tag, in.aux)
		}
		if out.key != in.key {
			t.Fatalf("key mismatch: got %q want %q", out.key, in.key)
		}
		if !bytes.Equal(out.val, in.val) {
			t.Fatalf("value mismatch: got %d bytes, want %d bytes", len(out.val), len(in.val))
		}
		if _, err := r.ReadByte(); err != io.EOF {
			t.Fatalf("decoder left bytes behind (next read: %v)", err)
		}

		// Any strict prefix of a valid encoding must decode to an error:
		// a torn read is io.ErrUnexpectedEOF (or io.EOF for the empty
		// prefix), never a silently-truncated frame.
		if cut >= 0 {
			prefix := enc[:cut%len(enc)]
			var torn frame
			err := readFrame(bufio.NewReader(bytes.NewReader(prefix)), &torn)
			if err == nil {
				t.Fatalf("decode of %d-byte prefix of %d-byte frame succeeded", len(prefix), len(enc))
			}
			if len(prefix) > 0 && err == io.EOF {
				t.Fatalf("mid-frame truncation at %d bytes reported clean io.EOF", len(prefix))
			}
		}

		// The encoding reinterpreted as raw wire input must never panic,
		// whatever the decoder makes of it. Flipping the op's high bit
		// off exercises the op-range rejection on real header layouts.
		garbage := append([]byte(nil), enc...)
		garbage[0] &^= 0x80
		var g frame
		if err := readFrame(bufio.NewReader(bytes.NewReader(garbage)), &g); err != errFrameOp {
			t.Fatalf("low op byte %#x decoded with err=%v, want errFrameOp", garbage[0], err)
		}
	})
}

// FuzzFrameDecodeRaw feeds fully arbitrary bytes to readFrame: the
// decoder must return an error or a frame, never panic, and must
// reject oversized lengths before allocating for them.
func FuzzFrameDecodeRaw(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x81, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 'k', 'e', 'y'})
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderLen))
	f.Add([]byte{0x01, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		err := readFrame(bufio.NewReader(bytes.NewReader(data)), &fr)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the exact bytes it
		// consumed: header + key + value.
		want := frameHeaderLen + len(fr.key) + len(fr.val)
		if got := len(appendFrame(nil, &fr)); got != want {
			t.Fatalf("re-encode produced %d bytes, want %d", got, want)
		}
	})
}
