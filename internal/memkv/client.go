package memkv

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"redundancy/internal/core"
)

// ErrNotFound is returned by Get when the key is absent, and by Delete
// when there was nothing to delete.
var ErrNotFound = errors.New("memkv: not found")

// DefaultMaxIdleConns is the idle-connection cap of a v1 Client's pool:
// connections returning to a full pool are closed instead of retained,
// so a burst of concurrent requests no longer pins its high-water mark
// of sockets forever. In-flight connections are not bounded — the v1
// protocol needs one per concurrent request, which is exactly the
// scaling wall MuxClient removes.
const DefaultMaxIdleConns = 64

// Client is a connection-pooled memcached text-protocol client for a
// single server. It is safe for concurrent use; concurrent requests use
// separate pooled connections.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	idle []*clientConn
}

type clientConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// NewClient creates a client for the server at addr. timeout bounds each
// request's network operations (0 means no timeout).
func NewClient(addr string, timeout time.Duration) *Client {
	return &Client{addr: addr, timeout: timeout}
}

// Addr returns the server address this client targets.
func (c *Client) Addr() string { return c.addr }

func (c *Client) getConn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	return &clientConn{c: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (c *Client) putConn(cc *clientConn) {
	c.mu.Lock()
	if len(c.idle) >= DefaultMaxIdleConns {
		c.mu.Unlock()
		cc.c.Close()
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// Close closes all idle pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	var err error
	for _, cc := range idle {
		if e := cc.c.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// deadline applies the per-request timeout and any context deadline.
func (c *Client) deadline(ctx context.Context, cc *clientConn) {
	d := time.Time{}
	if c.timeout > 0 {
		d = time.Now().Add(c.timeout)
	}
	if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	cc.c.SetDeadline(d)
}

// aLongTimeAgo is a deadline in the distant past: setting it makes any
// blocked connection read or write return immediately.
var aLongTimeAgo = time.Unix(1, 0)

// roundTrip runs fn with a pooled connection, discarding the connection on
// error (it may hold unconsumed protocol state). Cancelling ctx mid-request
// yanks the connection deadline so a blocked read returns immediately —
// when the redundancy engine cancels a losing copy, the copy stops
// reading and releases its server instead of waiting out the response.
func (c *Client) roundTrip(ctx context.Context, fn func(cc *clientConn) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cc, err := c.getConn(ctx)
	if err != nil {
		return err
	}
	c.deadline(ctx, cc)
	stop := context.AfterFunc(ctx, func() { cc.c.SetDeadline(aLongTimeAgo) })
	err = fn(cc)
	stop()
	if err != nil {
		cc.c.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The request was cancelled, not refused: report the
			// cancellation, whatever transport error the yanked deadline
			// surfaced as.
			return ctxErr
		}
		// Sentinel errors pass through; transport errors are wrapped.
		return err
	}
	if ctx.Err() != nil {
		// ctx fired between fn returning and stop(): the connection's
		// deadline may be poisoned, so don't pool it.
		cc.c.Close()
	} else {
		c.putConn(cc)
	}
	return nil
}

// Set stores value under key with no expiry.
func (c *Client) Set(ctx context.Context, key string, value []byte) error {
	return c.SetTTL(ctx, key, value, 0)
}

// SetTTL stores value under key, expiring after ttl (rounded up to whole
// seconds, as the memcached protocol carries expiry in seconds; 0 = never).
func (c *Client) SetTTL(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	if err := validateKey(key); err != nil {
		return err
	}
	secs := int64(0)
	if ttl > 0 {
		secs = int64((ttl + time.Second - 1) / time.Second)
	}
	return c.roundTrip(ctx, func(cc *clientConn) error {
		fmt.Fprintf(cc.w, "set %s 0 %d %d\r\n", key, secs, len(value))
		cc.w.Write(value)
		cc.w.WriteString("\r\n")
		if err := cc.w.Flush(); err != nil {
			return err
		}
		line, err := readLine(cc.r)
		if err != nil {
			return err
		}
		if line != "STORED" {
			return fmt.Errorf("memkv: set failed: %q", line)
		}
		return nil
	})
}

// Get fetches the value stored under key.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validateKey(key); err != nil {
		return nil, err
	}
	var out []byte
	found := false
	err := c.roundTrip(ctx, func(cc *clientConn) error {
		fmt.Fprintf(cc.w, "get %s\r\n", key)
		if err := cc.w.Flush(); err != nil {
			return err
		}
		for {
			line, err := readLine(cc.r)
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			if !strings.HasPrefix(line, "VALUE ") {
				return fmt.Errorf("memkv: unexpected response %q", line)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("memkv: malformed VALUE line %q", line)
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil || n < 0 || n > maxValueLen {
				return fmt.Errorf("memkv: bad value length in %q", line)
			}
			buf := make([]byte, n+2)
			if _, err := readFull(cc.r, buf); err != nil {
				return err
			}
			out = buf[:n]
			found = true
		}
	})
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNotFound
	}
	return out, nil
}

// Delete removes key.
func (c *Client) Delete(ctx context.Context, key string) error {
	if err := validateKey(key); err != nil {
		return err
	}
	var status string
	err := c.roundTrip(ctx, func(cc *clientConn) error {
		fmt.Fprintf(cc.w, "delete %s\r\n", key)
		if err := cc.w.Flush(); err != nil {
			return err
		}
		line, err := readLine(cc.r)
		if err != nil {
			return err
		}
		status = line
		return nil
	})
	if err != nil {
		return err
	}
	switch status {
	case "DELETED":
		return nil
	case "NOT_FOUND":
		return ErrNotFound
	default:
		return fmt.Errorf("memkv: delete failed: %q", status)
	}
}

// Stats fetches the server's protocol counters.
func (c *Client) Stats(ctx context.Context) (map[string]int64, error) {
	out := make(map[string]int64)
	err := c.roundTrip(ctx, func(cc *clientConn) error {
		fmt.Fprintf(cc.w, "stats\r\n")
		if err := cc.w.Flush(); err != nil {
			return err
		}
		for {
			line, err := readLine(cc.r)
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "STAT" {
				return fmt.Errorf("memkv: malformed stats line %q", line)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return fmt.Errorf("memkv: bad stat value in %q", line)
			}
			out[fields[1]] = v
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func validateKey(key string) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("memkv: invalid key length %d", len(key))
	}
	if strings.ContainsAny(key, " \r\n\t") {
		return errors.New("memkv: key contains whitespace")
	}
	return nil
}

// ReplicatedClient reads from several replicas of the same data using the
// redundancy core: Get issues the query to every replica (or hedges) and
// returns the first response, or — per read, with ReadQuorum — waits for
// R-of-N agreement. Writes go to all replicas and succeed only if every
// replica stores the value (read-my-write for the winning read).
type ReplicatedClient struct {
	mu      sync.RWMutex // guards clients; the read group has its own engine
	clients []*Client
	// group passes the key to each replica as the call argument, so the
	// replica functions close over only their client and stay reusable —
	// no per-call context plumbing.
	group *core.KeyedGroup[string, []byte]
}

// NewReplicatedClient builds a replicated reader over the given clients.
// policy controls fan-out (e.g. Policy{Copies: 2} for the paper's full
// replication, or HedgeDelay for tied requests).
func NewReplicatedClient(policy core.Policy, clients ...*Client) *ReplicatedClient {
	return NewReplicatedClientStrategy(policy.Strategy(), clients...)
}

// NewReplicatedClientStrategy builds a replicated reader whose fan-out
// is governed by an arbitrary replication strategy (core.AdaptiveHedge,
// core.FullReplicate, or a custom implementation).
func NewReplicatedClientStrategy(strategy core.Strategy, clients ...*Client) *ReplicatedClient {
	rc := &ReplicatedClient{clients: clients}
	g := core.NewStrategyKeyedGroup[string, []byte](strategy)
	for _, cl := range clients {
		g.Add(cl.Addr(), cl.Get)
	}
	rc.group = g
	return rc
}

// NewAdaptiveReplicatedClient builds a replicated reader that hedges a
// second read when the primary exceeds the p-th percentile (quantile in
// (0, 1); 0 means core.DefaultHedgeQuantile) of its observed latency
// digest — production hedging that self-tunes as conditions drift,
// instead of a caller-guessed fixed delay.
func NewAdaptiveReplicatedClient(quantile float64, clients ...*Client) *ReplicatedClient {
	return NewReplicatedClientStrategy(
		core.AdaptiveHedge{Copies: 2, Quantile: quantile, Selection: core.SelectRanked},
		clients...)
}

// ReadQuorum is the per-read consistency knob: a Get with ReadQuorum(q)
// completes only after q replicas returned the key, so a read can insist
// on R-of-N agreement (e.g. 2 of 3 to mask one stale or failed replica)
// while the default read keeps first-response latency. Combine with
// core.WithCollectOutcomes to inspect each replica's returned value.
func ReadQuorum(q int) core.CallOption { return core.WithQuorum(q) }

// Get returns the first replica's response for key. Per-call options
// tune one read without touching the shared client: ReadQuorum(q) for
// R-of-N consistency, core.WithStrategyOverride for a one-off hedging
// policy, core.WithLabel to tag the read's traffic class.
func (rc *ReplicatedClient) Get(ctx context.Context, key string, opts ...core.CallOption) ([]byte, error) {
	if len(opts) == 0 {
		// The common zero-option read rides the group's DoValue fast
		// lane (pooled call frame, no option materialization).
		return rc.group.DoValue(ctx, key)
	}
	res, err := rc.group.Do(ctx, key, opts...)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// GetResult is Get with the full redundancy metadata (winner, latency,
// copies launched).
func (rc *ReplicatedClient) GetResult(ctx context.Context, key string, opts ...core.CallOption) (core.Result[[]byte], error) {
	return rc.group.Do(ctx, key, opts...)
}

// GroupStats reports the replica set's policy, membership, and per-replica
// latency estimates.
func (rc *ReplicatedClient) GroupStats() core.GroupStats { return rc.group.Stats() }

// AddReplica adds a server to the replica set. Reads in flight are
// unaffected; subsequent reads may select it, and subsequent writes
// include it. The write set and the read group mutate under one lock so
// they can never diverge (a replica served reads but missed writes).
func (rc *ReplicatedClient) AddReplica(cl *Client) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.clients = append(rc.clients, cl)
	rc.group.Add(cl.Addr(), cl.Get)
}

// RemoveReplica drops the replica serving addr from reads and writes,
// reporting whether it was present. It does not close the client; the
// caller owns its lifecycle (reads in flight may still be using it).
func (rc *ReplicatedClient) RemoveReplica(addr string) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i, cl := range rc.clients {
		if cl.Addr() == addr {
			rc.clients = append(rc.clients[:i:i], rc.clients[i+1:]...)
			rc.group.Remove(addr)
			return true
		}
	}
	return false
}

// SetPolicy replaces the read fan-out policy.
func (rc *ReplicatedClient) SetPolicy(policy core.Policy) { rc.group.SetPolicy(policy) }

// SetStrategy replaces the read fan-out strategy.
func (rc *ReplicatedClient) SetStrategy(s core.Strategy) { rc.group.SetStrategy(s) }

// Set writes to every replica concurrently, waiting for all writes and
// returning the joined errors of any that failed.
func (rc *ReplicatedClient) Set(ctx context.Context, key string, value []byte) error {
	rc.mu.RLock()
	clients := rc.clients
	rc.mu.RUnlock()
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			if err := cl.Set(ctx, key, value); err != nil {
				errs[i] = fmt.Errorf("replica %s: %w", cl.Addr(), err)
			}
		}(i, cl)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close closes all underlying clients.
func (rc *ReplicatedClient) Close() error {
	rc.mu.RLock()
	clients := rc.clients
	rc.mu.RUnlock()
	var err error
	for _, cl := range clients {
		if e := cl.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
