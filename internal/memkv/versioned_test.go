package memkv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"redundancy/internal/ring"
)

// ---- Store versioning ----

func TestStoreVersionsMonotonic(t *testing.T) {
	s := NewStore()
	s.Set("k", 0, []byte("one"))
	_, _, v1, _, ok := s.GetVersion("k")
	if !ok || v1 == 0 {
		t.Fatalf("first write version = %d, ok=%v", v1, ok)
	}
	s.Set("k", 0, []byte("two"))
	_, _, v2, _, _ := s.GetVersion("k")
	if v2 <= v1 {
		t.Fatalf("second write version %d not greater than first %d", v2, v1)
	}
}

func TestStorePutVersionLWW(t *testing.T) {
	s := NewStore()
	if cur, applied := s.PutVersion("k", 0, []byte("new"), 0, 100); !applied || cur != 100 {
		t.Fatalf("put on absent key: applied=%v cur=%d", applied, cur)
	}
	// A stale replay must lose and report the resident version.
	if cur, applied := s.PutVersion("k", 0, []byte("old"), 0, 50); applied || cur != 100 {
		t.Fatalf("stale put: applied=%v cur=%d, want refused at 100", applied, cur)
	}
	// Equal version is not strictly newer: refused (idempotent replay).
	if _, applied := s.PutVersion("k", 0, []byte("dup"), 0, 100); applied {
		t.Fatal("equal-version put applied; want refused")
	}
	if cur, applied := s.PutVersion("k", 0, []byte("newest"), 0, 101); !applied || cur != 101 {
		t.Fatalf("newer put: applied=%v cur=%d", applied, cur)
	}
	v, _, ok := s.Get("k")
	if !ok || string(v) != "newest" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

// The witness rule: after applying a replicated write at version V, a
// local write must mint a version strictly greater than V, even if V is
// far ahead of this store's clock.
func TestStoreWitnessAdvancesClock(t *testing.T) {
	s := NewStore()
	future := uint64(time.Now().Add(time.Hour).UnixNano())
	s.PutVersion("remote", 0, []byte("x"), 0, future)
	s.Set("local", 0, []byte("y"))
	_, _, v, _, _ := s.GetVersion("local")
	if v <= future {
		t.Fatalf("local write version %d did not advance past witnessed %d", v, future)
	}
}

func TestStoreScanPages(t *testing.T) {
	s := NewStore()
	want := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("scan-%02d", i)
		s.Set(k, uint32(i), []byte(k))
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	cursor := ""
	pages := 0
	for {
		entries, more := s.Scan(cursor, 7)
		for i := range entries {
			e := &entries[i]
			got = append(got, e.Key)
			cursor = e.Key
			if e.Version == 0 {
				t.Fatalf("entry %q has version 0", e.Key)
			}
			if !bytes.Equal(e.Value, []byte(e.Key)) {
				t.Fatalf("entry %q value %q", e.Key, e.Value)
			}
		}
		pages++
		if !more {
			break
		}
		if len(entries) > 7 {
			t.Fatalf("page of %d entries exceeds limit 7", len(entries))
		}
	}
	if pages < 5 {
		t.Fatalf("scan used %d pages for 30 keys at limit 7", pages)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan keys not in ascending order")
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan saw %d keys, want %d", len(got), len(want))
	}
}

// ---- versioned payload and scan-entry codecs ----

func TestVerPayloadRoundTrip(t *testing.T) {
	enc := appendVerPayload(nil, 42, 7, []byte("payload"))
	ver, ttl, data, err := decodeVerPayload(enc)
	if err != nil || ver != 42 || ttl != 7 || string(data) != "payload" {
		t.Fatalf("decode = (%d, %d, %q, %v)", ver, ttl, data, err)
	}
	if _, _, _, err := decodeVerPayload(enc[:verPayloadHeader-1]); !errors.Is(err, errVerPayload) {
		t.Fatalf("short payload decode err = %v", err)
	}
}

func TestScanEntryRoundTrip(t *testing.T) {
	in := []ScanEntry{
		{Key: "a", Flags: 1, Version: 10, TTLSecs: 0, Value: []byte("va")},
		{Key: "bb", Flags: 0, Version: 11, TTLSecs: 30, Value: nil},
		{Key: "ccc", Flags: 9, Version: 12, TTLSecs: 1, Value: bytes.Repeat([]byte{'x'}, 100)},
	}
	var enc []byte
	for i := range in {
		enc = appendScanEntry(enc, &in[i])
	}
	out, err := decodeScanEntries(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || out[i].Flags != in[i].Flags ||
			out[i].Version != in[i].Version || out[i].TTLSecs != in[i].TTLSecs ||
			!bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("entry %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	if _, err := decodeScanEntries(enc[:len(enc)-1]); !errors.Is(err, errScanEntry) {
		t.Fatalf("truncated entries decode err = %v", err)
	}
}

// ---- MuxClient versioned operations over a live server ----

func TestMuxVersionedOps(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()

	cur, applied, err := cl.PutV(ctx, "vk", []byte("v1"), 0, 100)
	if err != nil || !applied || cur != 100 {
		t.Fatalf("PutV = (%d, %v, %v)", cur, applied, err)
	}
	val, ver, ttl, err := cl.GetV(ctx, "vk")
	if err != nil || string(val) != "v1" || ver != 100 || ttl != 0 {
		t.Fatalf("GetV = (%q, %d, %d, %v)", val, ver, ttl, err)
	}
	// Stale put refused server-side, current version reported back.
	cur, applied, err = cl.PutV(ctx, "vk", []byte("old"), 0, 99)
	if err != nil || applied || cur != 100 {
		t.Fatalf("stale PutV = (%d, %v, %v)", cur, applied, err)
	}
	if _, _, _, err := cl.GetV(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetV(absent) = %v, want ErrNotFound", err)
	}

	// TTL survives the versioned round trip.
	if _, _, err := cl.PutV(ctx, "vt", []byte("x"), time.Minute, 200); err != nil {
		t.Fatal(err)
	}
	if _, _, ttl, err := cl.GetV(ctx, "vt"); err != nil || ttl == 0 || ttl > 60 {
		t.Fatalf("GetV ttl = %d, %v; want (0, 60]", ttl, err)
	}
}

func TestMuxPutVBatchAndScan(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()
	puts := make([]VersionedPut, 20)
	for i := range puts {
		puts[i] = VersionedPut{Key: fmt.Sprintf("b-%02d", i), Value: []byte{byte(i)}, Version: uint64(1000 + i)}
	}
	for i, r := range cl.PutVBatch(ctx, puts) {
		if r.Err != nil || !r.Applied || r.Current != puts[i].Version {
			t.Fatalf("batch put %d = %+v", i, r)
		}
	}
	// Replaying the batch is refused entry by entry but not an error.
	for i, r := range cl.PutVBatch(ctx, puts) {
		if r.Err != nil || r.Applied {
			t.Fatalf("replayed batch put %d = %+v, want refused", i, r)
		}
	}
	var seen []string
	cursor := ""
	for {
		entries, more, err := cl.Scan(ctx, cursor, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range entries {
			seen = append(seen, entries[i].Key)
			cursor = entries[i].Key
		}
		if !more {
			break
		}
	}
	if len(seen) != len(puts) || !sort.StringsAreSorted(seen) {
		t.Fatalf("scan saw %d sorted=%v, want %d in order", len(seen), sort.StringsAreSorted(seen), len(puts))
	}
}

// ---- ShardedClient versioned quorum surface ----

// startMuxShards launches n live servers with v2 mux backends.
func startMuxShards(t *testing.T, n int, cfg ShardedConfig) (*ShardedClient, map[string]*Server) {
	t.Helper()
	servers := make(map[string]*Server, n)
	clients := make([]Backend, n)
	for i := 0; i < n; i++ {
		srv, addr := startServer(t)
		servers[addr] = srv
		clients[i] = NewMuxClient(addr, 2*time.Second)
	}
	sc := NewShardedClient(cfg, clients...)
	t.Cleanup(func() { sc.Close() })
	return sc, servers
}

// recordingSink captures RepairSink callbacks for assertions.
type recordingSink struct {
	mu       sync.Mutex
	missed   []string // "key@owner"
	diverged []string // "key:staleOwner"
	topo     int
}

func (r *recordingSink) WriteMissed(key string, _ []byte, _ uint64, _ time.Duration, owner string) {
	r.mu.Lock()
	r.missed = append(r.missed, key+"@"+owner)
	r.mu.Unlock()
}

func (r *recordingSink) Divergence(key string, _ []byte, _ uint64, _ uint32, staleOwners []string) {
	r.mu.Lock()
	for _, o := range staleOwners {
		r.diverged = append(r.diverged, key+":"+o)
	}
	r.mu.Unlock()
}

func (r *recordingSink) TopologyChanged(_, _ ring.Placement) {
	r.mu.Lock()
	r.topo++
	r.mu.Unlock()
}

func TestShardedPutVersionedGetQuorum(t *testing.T) {
	sc, _ := startMuxShards(t, 3, ShardedConfig{Replication: 2, WriteQuorum: 2})
	ctx := context.Background()
	ver, err := sc.PutVersioned(ctx, "qk", []byte("quorum"), 0)
	if err != nil || ver == 0 {
		t.Fatalf("PutVersioned = (%d, %v)", ver, err)
	}
	val, got, err := sc.GetQuorum(ctx, "qk", 2)
	if err != nil || string(val) != "quorum" || got != ver {
		t.Fatalf("GetQuorum = (%q, %d, %v), want version %d", val, got, err, ver)
	}
	if _, _, err := sc.GetQuorum(ctx, "absent", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetQuorum(absent) = %v, want ErrNotFound", err)
	}
	// Both placement copies must hold the value at the minted version —
	// PutVersioned does not stop at the quorum.
	for _, owner := range sc.Owners("qk") {
		vb := sc.VersionedShard(owner)
		deadline := time.Now().Add(2 * time.Second)
		for {
			_, v, _, err := vb.GetV(ctx, "qk")
			if err == nil && v == ver {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("owner %s: version %d, err %v; want %d", owner, v, err, ver)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestGetQuorumReportsDivergence(t *testing.T) {
	sc, _ := startMuxShards(t, 3, ShardedConfig{Replication: 2, WriteQuorum: 2})
	ctx := context.Background()
	sink := &recordingSink{}
	sc.SetRepairSink(sink)

	if _, err := sc.PutVersioned(ctx, "dk", []byte("old"), 0); err != nil {
		t.Fatal(err)
	}
	// Stale the secondary: write a newer version to the primary only.
	owners := sc.Owners("dk")
	newer := sc.NextVersion()
	if _, _, err := sc.VersionedShard(owners[0]).PutV(ctx, "dk", []byte("new"), 0, newer); err != nil {
		t.Fatal(err)
	}
	val, ver, err := sc.GetQuorum(ctx, "dk", 2)
	if err != nil || string(val) != "new" || ver != newer {
		t.Fatalf("GetQuorum = (%q, %d, %v), want newest %d", val, ver, err, newer)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	want := "dk:" + owners[1]
	for _, d := range sink.diverged {
		if d == want {
			return
		}
	}
	t.Fatalf("divergence reports %v missing %q", sink.diverged, want)
}

func TestPutVersionedReportsMissedWrites(t *testing.T) {
	sc, servers := startMuxShards(t, 3, ShardedConfig{Replication: 2, WriteQuorum: 1})
	ctx := context.Background()
	sink := &recordingSink{}
	sc.SetRepairSink(sink)

	key := "mk"
	owners := sc.Owners(key)
	servers[owners[1]].Close() // secondary dies; quorum 1 still reachable
	if _, err := sc.PutVersioned(ctx, key, []byte("v"), 0); err != nil {
		t.Fatalf("PutVersioned with one dead owner: %v", err)
	}
	want := key + "@" + owners[1]
	deadline := time.Now().Add(versionedStragglerTimeout + 2*time.Second)
	for {
		sink.mu.Lock()
		for _, m := range sink.missed {
			if m == want {
				sink.mu.Unlock()
				return
			}
		}
		sink.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("no WriteMissed(%q) observed", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
