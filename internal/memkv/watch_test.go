package memkv

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// nextEvent pulls one event from ch or fails the test after timeout.
func nextEvent(t *testing.T, ch <-chan WatchEvent, timeout time.Duration) WatchEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed while waiting for an event")
		}
		return ev
	case <-time.After(timeout):
		t.Fatal("timed out waiting for an event")
	}
	panic("unreachable")
}

// ---- Store-level watch ----

// A store watch sees the full lifecycle of keys under its prefix — put,
// delete, active expiry — and nothing outside the prefix.
func TestStoreWatchLifecycleEvents(t *testing.T) {
	s := NewStore()
	sw := s.Watch("p/", 16)
	defer sw.Close()

	s.Set("p/a", 0, []byte("one"))
	s.Set("outside", 0, []byte("invisible"))
	ev := nextEvent(t, sw.Events(), time.Second)
	if ev.Type != EventPut || ev.Key != "p/a" || ev.Version == 0 || string(ev.Value) != "one" {
		t.Fatalf("put event = %+v", ev)
	}

	if !s.Delete("p/a") {
		t.Fatal("Delete(p/a) = false")
	}
	ev = nextEvent(t, sw.Events(), time.Second)
	if ev.Type != EventDelete || ev.Key != "p/a" {
		t.Fatalf("delete event = %+v", ev)
	}

	// Active expiry: no reader ever touches the key again, yet the
	// sweeper emits the expire event at the deadline.
	s.SetTTL("p/t", 0, []byte("brief"), time.Second)
	ev = nextEvent(t, sw.Events(), time.Second)
	if ev.Type != EventPut || ev.Key != "p/t" || ev.TTLSecs != 1 {
		t.Fatalf("ttl put event = %+v", ev)
	}
	putVer := ev.Version
	ev = nextEvent(t, sw.Events(), 3*time.Second)
	if ev.Type != EventExpire || ev.Key != "p/t" || ev.Version != putVer {
		t.Fatalf("expire event = %+v (put version %d)", ev, putVer)
	}
	if _, _, ok := s.Get("p/t"); ok {
		t.Fatal("expired key still readable after expire event")
	}

	sw.Close()
	if _, ok := <-sw.Events(); ok {
		t.Fatal("events channel open after Close")
	}
	if err := sw.Err(); err != nil {
		t.Fatalf("Err after local Close = %v, want nil", err)
	}
	if n := s.Watchers(); n != 0 {
		t.Fatalf("Watchers = %d after close, want 0", n)
	}
}

// A watcher that stops draining its buffer is disconnected — the store
// never blocks a write on a slow consumer.
func TestStoreSlowWatcherDisconnected(t *testing.T) {
	s := NewStore()
	sw := s.Watch("", 2)
	for i := 0; i < 10; i++ {
		s.Set(fmt.Sprintf("flood-%d", i), 0, []byte("x"))
	}
	// The buffered events drain and then the channel closes — the
	// overflow disconnected the watcher, not the reader.
	deadline := time.After(2 * time.Second)
	for open := true; open; {
		select {
		case _, open = <-sw.Events():
		case <-deadline:
			t.Fatal("slow watcher not disconnected")
		}
	}
	if err := sw.Err(); !errors.Is(err, ErrSlowWatcher) {
		t.Fatalf("Err = %v, want ErrSlowWatcher", err)
	}
	// The registry entry is removed (and counted) asynchronously.
	limit := time.Now().Add(2 * time.Second)
	for s.WatchDisconnects() != 1 {
		if time.Now().After(limit) {
			t.Fatalf("WatchDisconnects = %d, want 1", s.WatchDisconnects())
		}
		time.Sleep(time.Millisecond)
	}
}

// Of N writers racing the same expected version through CAS, exactly
// one wins per round — the store-level serialization CAS exists for.
func TestStoreCASContention(t *testing.T) {
	s := NewStore()
	const writers = 32
	round := func(expect uint64) uint64 {
		t.Helper()
		var wins, winner atomic.Uint64
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if ver, applied := s.CompareAndSwap("cas", 0, []byte{byte(i)}, 0, expect); applied {
					wins.Add(1)
					winner.Store(ver)
				}
			}(i)
		}
		wg.Wait()
		if n := wins.Load(); n != 1 {
			t.Fatalf("round expect=%d: %d writers applied, want exactly 1", expect, n)
		}
		return winner.Load()
	}
	v1 := round(0)  // create-if-absent round
	v2 := round(v1) // update round from the winner's version
	if v2 <= v1 {
		t.Fatalf("second round version %d not newer than %d", v2, v1)
	}
	if cur, applied := s.CompareAndSwap("cas", 0, []byte("stale"), 0, v1); applied || cur != v2 {
		t.Fatalf("stale expect: (%d, %v), want (%d, false)", cur, applied, v2)
	}
}

// ---- MuxClient watch + CAS ----

// One mux connection carries request/response traffic and a server-push
// event stream side by side; events respect the prefix and arrive in
// per-key order.
func TestMuxWatchDeliversPrefixEvents(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()

	st, err := cl.Watch(ctx, "w/", 32)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := cl.Set(ctx, "w/a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(ctx, "unrelated", []byte("no event")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, "w/a"); err != nil {
		t.Fatal(err)
	}

	ev := nextEvent(t, st.Events(), 2*time.Second)
	if ev.Type != EventPut || ev.Key != "w/a" || string(ev.Value) != "first" {
		t.Fatalf("first event = %+v, want put w/a", ev)
	}
	ev = nextEvent(t, st.Events(), 2*time.Second)
	if ev.Type != EventDelete || ev.Key != "w/a" {
		t.Fatalf("second event = %+v, want delete w/a", ev)
	}

	st.Close()
	select {
	case <-st.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stream not done after Close")
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil", err)
	}
}

// CAS through the wire: create, conflict carrying the current version,
// retry from it, and an expired key counting as absent.
func TestMuxCASSemantics(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()

	v1, applied, err := cl.CAS(ctx, "ck", []byte("created"), 0, 0)
	if err != nil || !applied || v1 == 0 {
		t.Fatalf("create CAS = (%d, %v, %v)", v1, applied, err)
	}
	cur, applied, err := cl.CAS(ctx, "ck", []byte("lost"), 0, 0)
	if err != nil || applied || cur != v1 {
		t.Fatalf("conflicting CAS = (%d, %v, %v), want (%d, false, nil)", cur, applied, err, v1)
	}
	v2, applied, err := cl.CAS(ctx, "ck", []byte("updated"), 0, v1)
	if err != nil || !applied || v2 <= v1 {
		t.Fatalf("retry CAS = (%d, %v, %v), want applied > %d", v2, applied, err, v1)
	}
	got, err := cl.Get(ctx, "ck")
	if err != nil || string(got) != "updated" {
		t.Fatalf("Get after CAS = (%q, %v)", got, err)
	}

	// An expired value no longer guards its key: expect 0 re-creates.
	if _, applied, err := cl.CAS(ctx, "brief", []byte("x"), time.Second, 0); err != nil || !applied {
		t.Fatalf("ttl CAS = (%v, %v)", applied, err)
	}
	time.Sleep(1100 * time.Millisecond)
	if _, applied, err := cl.CAS(ctx, "brief", []byte("y"), 0, 0); err != nil || !applied {
		t.Fatalf("CAS after expiry = (%v, %v), want create to apply", applied, err)
	}
}

// A mux watch whose consumer stops reading is shed with ErrSlowWatcher
// instead of stalling the connection every other request shares.
func TestMuxSlowWatcherDisconnect(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()

	st, err := cl.Watch(ctx, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := cl.Set(ctx, fmt.Sprintf("burst-%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-st.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("slow mux watcher not disconnected")
	}
	if err := st.Err(); !errors.Is(err, ErrSlowWatcher) {
		t.Fatalf("Err = %v, want ErrSlowWatcher", err)
	}
	// The connection itself must still be healthy for ordinary calls.
	if got, err := cl.Get(ctx, "burst-00"); err != nil || string(got) != "x" {
		t.Fatalf("Get after shed = (%q, %v)", got, err)
	}
}

// Cancelling the watch context ends the stream and releases the
// server-side subscription.
func TestMuxWatchCtxCancel(t *testing.T) {
	srv, cl := startMux(t)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := cl.Watch(ctx, "c/", 8)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-st.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stream not done after ctx cancel")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.store.Watchers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d watchers after cancel", srv.store.Watchers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- ShardedClient CAS + redundant prefix watch ----

// N writers racing ShardedClient.CAS with the same expectation: exactly
// one applies (serialized at the key's primary), the rest observe
// ErrCASConflict carrying the winner's version.
func TestShardedCASContention(t *testing.T) {
	sc, _ := startMuxShards(t, 3, ShardedConfig{Replication: 2, WriteQuorum: 1})
	ctx := context.Background()

	const writers = 16
	var wins atomic.Uint64
	var winner atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ver, err := sc.CAS(ctx, "contended", []byte{byte(i)}, 0, 0)
			if err == nil {
				wins.Add(1)
				winner.Store(ver)
				return
			}
			if !errors.Is(err, ErrCASConflict) {
				t.Errorf("writer %d: %v, want ErrCASConflict", i, err)
			}
		}(i)
	}
	wg.Wait()
	if n := wins.Load(); n != 1 {
		t.Fatalf("%d CAS writers applied, want exactly 1", n)
	}
	// The quorum read observes the winner at its minted version.
	_, ver, err := sc.GetQuorum(ctx, "contended", 0)
	if err != nil || ver != winner.Load() {
		t.Fatalf("GetQuorum = (%d, %v), want version %d", ver, err, winner.Load())
	}
	// Second round from the winner's version: again exactly one.
	var wins2 atomic.Uint64
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sc.CAS(ctx, "contended", []byte{byte(i)}, 0, winner.Load()); err == nil {
				wins2.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := wins2.Load(); n != 1 {
		t.Fatalf("second round: %d applied, want exactly 1", n)
	}
}

// The tentpole acceptance path: a redundant prefix watch over a
// 2-replica placement delivers every event exactly once — including
// across one replica being killed mid-stream, with writes continuing.
func TestPrefixWatchExactlyOnceAcrossShardKill(t *testing.T) {
	sc, servers := startMuxShards(t, 2, ShardedConfig{Replication: 2, WriteQuorum: 1})
	ctx := context.Background()

	w, err := sc.WatchPrefix(ctx, "eo/", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const keys = 40
	wantVer := make(map[string]uint64, keys)
	killed := false
	for i := 0; i < keys; i++ {
		if i == keys/2 && !killed {
			// Kill one replica mid-stream. WriteQuorum 1 keeps writes
			// succeeding via the survivor; the watch must not miss a beat.
			for addr, srv := range servers {
				srv.Close()
				delete(servers, addr)
				killed = true
				break
			}
		}
		key := fmt.Sprintf("eo/%03d", i)
		ver, err := sc.PutVersioned(ctx, key, []byte(key), 0)
		if err != nil {
			t.Fatalf("put %s with one replica down: %v", key, err)
		}
		wantVer[key] = ver
		time.Sleep(2 * time.Millisecond)
	}

	got := make(map[string]int, keys)
	deadline := time.After(10 * time.Second)
	for len(got) < keys {
		select {
		case ev := <-w.Events():
			got[ev.Key]++
			if got[ev.Key] > 1 {
				t.Fatalf("key %s delivered %d times — duplicate leaked through", ev.Key, got[ev.Key])
			}
			if ev.Version != wantVer[ev.Key] {
				t.Fatalf("key %s delivered at version %d, want %d", ev.Key, ev.Version, wantVer[ev.Key])
			}
		case <-deadline:
			t.Fatalf("missed events: got %d of %d after shard kill", len(got), keys)
		}
	}
	st := w.Stats()
	if st.Delivered != keys {
		t.Fatalf("Delivered = %d, want %d", st.Delivered, keys)
	}
	// Before the kill both replicas carried each event; the redundant
	// copies must show up as suppressed duplicates, not deliveries.
	if st.Duplicates == 0 {
		t.Error("Duplicates = 0; redundant copies were not observed")
	}
}

// Watch storm: concurrent puts, CAS races, deletes, and short TTLs
// against redundant watchers — the -race -count=5 target. No assertion
// beyond delivery and clean shutdown; the detector does the judging.
func TestWatchStormRace(t *testing.T) {
	sc, _ := startMuxShards(t, 2, ShardedConfig{Replication: 2, WriteQuorum: 1})
	ctx := context.Background()

	w, err := sc.WatchPrefix(ctx, "storm/", 128)
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for range w.Events() {
			delivered.Add(1)
		}
	}()

	const writers = 4
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 60; n++ {
				key := fmt.Sprintf("storm/%d", rng.Intn(16))
				switch rng.Intn(4) {
				case 0:
					_, _ = sc.PutVersioned(ctx, key, []byte("put"), 0)
				case 1:
					_, _ = sc.CAS(ctx, key, []byte("cas"), 0, 0) // conflicts expected
				case 2:
					_, _ = sc.PutVersioned(ctx, key, []byte("brief"), time.Second)
				case 3:
					vb := sc.VersionedShard(sc.Owners(key)[0])
					if vb != nil {
						_ = vb.Delete(ctx, key)
					}
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	time.Sleep(50 * time.Millisecond)
	w.Close()
	select {
	case <-consumerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer did not drain after Close")
	}
	if delivered.Load() == 0 {
		t.Fatal("storm delivered no events")
	}
}

// Paged Scan over the heap-based implementation must agree exactly with
// a full sorted enumeration, for every page size — and an exhausted
// cursor must return an empty page with more=false (the invariant the
// migration and recovery loops terminate on).
func TestScanPagedEquivalence(t *testing.T) {
	s := NewStore()
	rng := rand.New(rand.NewSource(7))
	want := make(map[string]bool)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k-%04d", rng.Intn(2000))
		want[key] = true
		s.Set(key, 0, []byte(key))
	}
	for _, page := range []int{1, 7, 64, 1000} {
		got := make([]string, 0, len(want))
		cursor := ""
		for {
			entries, more, err := scanAll(s, cursor, page)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				got = append(got, e.Key)
				cursor = e.Key
			}
			if !more {
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("page=%d: scanned %d keys, want %d", page, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("page=%d: out of order at %d: %q >= %q", page, i, got[i-1], got[i])
			}
		}
		for _, k := range got {
			if !want[k] {
				t.Fatalf("page=%d: scanned unknown key %q", page, k)
			}
		}
		// Past the last key: empty page, no more.
		entries, more, _ := scanAll(s, got[len(got)-1], page)
		if len(entries) != 0 || more {
			t.Fatalf("page=%d: scan past end = (%d entries, more=%v), want empty/false", page, len(entries), more)
		}
	}
}

func scanAll(s *Store, after string, limit int) ([]ScanEntry, bool, error) {
	entries, more := s.Scan(after, limit)
	return entries, more, nil
}
