package memkv

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// MuxClient.Scan at the pagination boundaries: a page that exactly
// consumes the keyspace must not claim more, a cursor past the end is
// an empty terminal page, non-positive and oversized limits clamp to
// the protocol cap, and the cap itself is enforced end to end.
func TestMuxScanPaginationBoundary(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()

	const n = 12
	puts := make([]VersionedPut, n)
	for i := range puts {
		puts[i] = VersionedPut{Key: fmt.Sprintf("pb-%02d", i), Value: []byte{byte(i)}, Version: uint64(100 + i)}
	}
	for i, r := range cl.PutVBatch(ctx, puts) {
		if r.Err != nil || !r.Applied {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	last := puts[n-1].Key

	// limit == keyspace: one full page, and more must be false — a
	// spurious true here would make pagination loops request an empty
	// page forever after.
	entries, more, err := cl.Scan(ctx, "", n)
	if err != nil || len(entries) != n || more {
		t.Fatalf("Scan(limit=%d) = %d entries, more=%v, err=%v; want exactly %d, more=false", n, len(entries), more, err, n)
	}

	// limit == keyspace-1: a full page with more=true, and the final
	// page holds the single remaining key with more=false.
	entries, more, err = cl.Scan(ctx, "", n-1)
	if err != nil || len(entries) != n-1 || !more {
		t.Fatalf("Scan(limit=%d) = %d entries, more=%v, err=%v; want %d, more=true", n-1, len(entries), more, err, n-1)
	}
	entries, more, err = cl.Scan(ctx, entries[len(entries)-1].Key, n-1)
	if err != nil || len(entries) != 1 || entries[0].Key != last || more {
		t.Fatalf("final page = %d entries (first %q), more=%v, err=%v; want just %q, more=false",
			len(entries), entries[0].Key, more, err, last)
	}

	// Cursor at (and past) the end: empty terminal pages.
	if entries, more, err = cl.Scan(ctx, last, 5); err != nil || len(entries) != 0 || more {
		t.Fatalf("Scan(after=last) = %d entries, more=%v, err=%v; want empty terminal page", len(entries), more, err)
	}
	if entries, more, err = cl.Scan(ctx, "zzz", 5); err != nil || len(entries) != 0 || more {
		t.Fatalf("Scan(after>last) = %d entries, more=%v, err=%v; want empty terminal page", len(entries), more, err)
	}

	// Non-positive limits clamp to the cap, not to zero.
	for _, lim := range []int{0, -3} {
		if entries, more, err = cl.Scan(ctx, "", lim); err != nil || len(entries) != n || more {
			t.Fatalf("Scan(limit=%d) = %d entries, more=%v, err=%v; want clamp to full keyspace", lim, len(entries), more, err)
		}
	}
}

// An oversized limit clamps to maxScanLimit on both sides of the wire:
// with maxScanLimit+4 keys stored, asking for far more returns exactly
// maxScanLimit entries and more=true.
func TestMuxScanLimitClamp(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()

	total := maxScanLimit + 4
	const batch = 512
	for start := 0; start < total; start += batch {
		end := start + batch
		if end > total {
			end = total
		}
		puts := make([]VersionedPut, 0, end-start)
		for i := start; i < end; i++ {
			puts = append(puts, VersionedPut{Key: fmt.Sprintf("cl-%05d", i), Value: []byte("v"), Version: uint64(100 + i)})
		}
		for i, r := range cl.PutVBatch(ctx, puts) {
			if r.Err != nil || !r.Applied {
				t.Fatalf("put %d: %+v", start+i, r)
			}
		}
	}

	entries, more, err := cl.Scan(ctx, "", total*2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != maxScanLimit || !more {
		t.Fatalf("Scan(limit=%d) = %d entries, more=%v; want clamp to %d with more=true",
			total*2, len(entries), more, maxScanLimit)
	}
	entries, more, err = cl.Scan(ctx, entries[len(entries)-1].Key, total*2)
	if err != nil || len(entries) != 4 || more {
		t.Fatalf("page after clamp = %d entries, more=%v, err=%v; want the 4 remaining", len(entries), more, err)
	}
}

// ScanMerged produces one globally sorted, deduplicated page across
// shards: replicated copies collapse to a single entry, a divergent
// stale copy loses to the newest version, and cursor pagination walks
// the merged keyspace exactly once.
func TestShardedScanMerged(t *testing.T) {
	sc, _ := startMuxShards(t, 3, ShardedConfig{Replication: 2, WriteQuorum: 2})
	ctx := context.Background()

	const n = 25
	wantVer := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("sm-%03d", i)
		ver, err := sc.PutVersioned(ctx, key, []byte(key), 0)
		if err != nil {
			t.Fatal(err)
		}
		wantVer[key] = ver
	}
	// Plant a stale divergent copy of one key on a shard that is not
	// among its owners: the merge must prefer the newer owner copies.
	stale := "sm-000"
	owners := map[string]bool{}
	for _, o := range sc.Owners(stale) {
		owners[o] = true
	}
	for _, addr := range sc.ShardAddrs() {
		if !owners[addr] {
			if _, _, err := sc.VersionedShard(addr).PutV(ctx, stale, []byte("stale"), 0, 1); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	var keys []string
	after := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("merged pagination did not terminate")
		}
		entries, more, err := sc.ScanMerged(ctx, after, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) > 7 {
			t.Fatalf("page of %d exceeds limit", len(entries))
		}
		for i := range entries {
			e := &entries[i]
			if len(keys) > 0 && e.Key <= keys[len(keys)-1] {
				t.Fatalf("merged keys out of order: %q after %q", e.Key, keys[len(keys)-1])
			}
			if e.Version != wantVer[e.Key] {
				t.Fatalf("key %s merged at version %d, want %d (stale copy won?)", e.Key, e.Version, wantVer[e.Key])
			}
			keys = append(keys, e.Key)
			after = e.Key
		}
		if !more {
			break
		}
	}
	if len(keys) != n {
		t.Fatalf("merged scan saw %d keys, want %d distinct", len(keys), n)
	}
}

// WatchPrefix's resubscribe loop: kill one shard mid-watch, let the
// backoff loop spin against the dead address, restart the server on the
// same address, and prove the watch heals by itself — the restarted
// replica's stream comes back and its redundant copies are suppressed
// as duplicates again, while every event is still delivered exactly
// once throughout.
func TestPrefixWatchResubscribeBackoff(t *testing.T) {
	sc, servers := startMuxShards(t, 2, ShardedConfig{Replication: 2, WriteQuorum: 1})
	ctx := context.Background()

	w, err := sc.WatchPrefix(ctx, "rs/", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	got := make(map[string]int)
	recv := func(why string) WatchEvent {
		t.Helper()
		select {
		case ev := <-w.Events():
			got[ev.Key]++
			if got[ev.Key] > 1 {
				t.Fatalf("%s: key %s delivered %d times", why, ev.Key, got[ev.Key])
			}
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: no event", why)
			return WatchEvent{}
		}
	}
	waitStats := func(why string, cond func(PrefixWatchStats) bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond(w.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (stats %+v)", why, w.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Both replicas live: an event arrives once and its second copy is
	// counted as a duplicate.
	if _, err := sc.PutVersioned(ctx, "rs/a", []byte("a"), 0); err != nil {
		t.Fatal(err)
	}
	recv("both replicas live")
	waitStats("duplicate from second replica", func(s PrefixWatchStats) bool { return s.Duplicates >= 1 })

	// Kill one replica. The dead stream ends (Resubscribes ticks) and
	// the loop begins backing off against the dead address; meanwhile
	// the survivor keeps the watch delivering.
	var downAddr string
	for addr, srv := range servers {
		downAddr = addr
		srv.Close()
		break
	}
	waitStats("stream loss recorded", func(s PrefixWatchStats) bool { return s.Resubscribes >= 1 })
	if _, err := sc.PutVersioned(ctx, "rs/b", []byte("b"), 0); err != nil {
		t.Fatal(err)
	}
	recv("one replica dark")

	// Restart on the same address. The backoff loop must re-establish
	// the subscription with no intervention: new events again produce a
	// suppressed duplicate from the recovered replica.
	srv2 := NewServer(nil)
	if _, err := srv2.Listen(downAddr); err != nil {
		t.Skipf("could not rebind %s: %v", downAddr, err)
	}
	defer srv2.Close()

	healed := false
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; !healed && time.Now().Before(deadline); i++ {
		before := w.Stats().Duplicates
		key := fmt.Sprintf("rs/probe-%03d", i)
		if _, err := sc.PutVersioned(ctx, key, []byte("p"), 0); err != nil {
			t.Fatal(err)
		}
		recv("probe during recovery")
		probeDeadline := time.Now().Add(250 * time.Millisecond)
		for time.Now().Before(probeDeadline) {
			if w.Stats().Duplicates > before {
				healed = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !healed {
		t.Fatalf("restarted replica never resumed delivering (stats %+v)", w.Stats())
	}
}
