package memkv

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestShardedGetBatchSurvivesDeadShard: with replication 2, a batch
// read keeps every key readable when one shard dies — each key's other
// placement copy answers. This is the paper's redundancy claim applied
// to the batch path.
func TestShardedGetBatchSurvivesDeadShard(t *testing.T) {
	sc, servers := startMuxShards(t, 4, ShardedConfig{Replication: 2, WriteQuorum: 2})
	ctx := context.Background()
	const n = 80
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("dbk-%d", i)
		vals[i] = []byte(fmt.Sprintf("dbv-%d", i))
	}
	perr, err := sc.PutBatch(ctx, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range perr {
		if e != nil {
			t.Fatalf("put %d: %v", i, e)
		}
	}
	// Kill one shard that actually owns some of the keys.
	var dead string
	for addr := range servers {
		dead = addr
		break
	}
	servers[dead].Close()

	res, err := sc.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("get %d (%s, owners %v, dead %s): %v", i, keys[i], sc.Owners(keys[i]), dead, r.Err)
		}
		if !bytes.Equal(r.Result.Value, vals[i]) {
			t.Fatalf("get %d = %q, want %q", i, r.Result.Value, vals[i])
		}
	}
}

// TestShardedPutBatchDeadShardPartialErrors: with replication 1 there
// is no second copy, so a dead shard's keys fail per-key while the rest
// of the batch still lands — a shard failure must not poison the whole
// batch call.
func TestShardedPutBatchDeadShardPartialErrors(t *testing.T) {
	sc, servers := startMuxShards(t, 3, ShardedConfig{Replication: 1, WriteQuorum: 1})
	ctx := context.Background()
	var dead string
	for addr := range servers {
		dead = addr
		break
	}
	servers[dead].Close()
	time.Sleep(20 * time.Millisecond)

	const n = 60
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("pbk-%d", i)
		vals[i] = []byte("x")
	}
	perr, err := sc.PutBatch(ctx, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	okCount, failCount := 0, 0
	for i, e := range perr {
		owner := sc.Owners(keys[i])[0]
		if owner == dead {
			if e == nil {
				t.Fatalf("put %d to dead shard succeeded", i)
			}
			failCount++
		} else {
			if e != nil {
				t.Fatalf("put %d to live shard %s: %v", i, owner, e)
			}
			okCount++
		}
	}
	if okCount == 0 || failCount == 0 {
		t.Fatalf("degenerate split ok=%d fail=%d: want keys on both sides", okCount, failCount)
	}
}

// TestShardedBatchesDuringRemoveShard: RemoveShard races a stream of
// batch puts and gets. Individual operations may fail while the route
// swaps, but nothing may panic or wedge — and once the topology is
// stable, a full write+read batch cycle must succeed.
func TestShardedBatchesDuringRemoveShard(t *testing.T) {
	sc, _ := startMuxShards(t, 4, ShardedConfig{Replication: 2, WriteQuorum: 1})
	ctx := context.Background()
	const n = 40
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("rmb-%d", i)
		vals[i] = []byte(fmt.Sprintf("rv-%d", i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Outcomes are allowed to be per-key errors mid-swap; the
			// invariant under test is no panic, no wedge, no global error
			// other than topology-is-changing.
			if _, err := sc.PutBatch(ctx, keys, vals); err != nil {
				t.Errorf("PutBatch global error during RemoveShard: %v", err)
				return
			}
			if _, err := sc.GetBatch(ctx, keys); err != nil {
				t.Errorf("GetBatch global error during RemoveShard: %v", err)
				return
			}
		}
	}()

	time.Sleep(30 * time.Millisecond)
	victim := sc.ShardAddrs()[0]
	if !sc.RemoveShard(victim) {
		t.Error("RemoveShard returned false")
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Stable topology: a full cycle must be clean.
	perr, err := sc.PutBatch(ctx, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range perr {
		if e != nil {
			t.Fatalf("post-remove put %d: %v", i, e)
		}
	}
	res, err := sc.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !bytes.Equal(r.Result.Value, vals[i]) {
			t.Fatalf("post-remove get %d = %q, %v", i, r.Result.Value, r.Err)
		}
	}
}
