package memkv

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzWatchCASFrameRoundTrip drives the streaming/conditional ops
// through the wire codec: a CAS request (expect-version payload) and a
// server-push event frame (type in aux, key, versioned payload) must
// survive encode/decode byte-exact, and decoding arbitrary mutations of
// the encoding must fail cleanly, never panic — these frames cross
// trust boundaries in both directions (opEvent is the first frame a
// client parses that it never asked for).
func FuzzWatchCASFrameRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(1), []byte("new value"), "key", uint64(9), -1)
	f.Add(uint64(1755000000000000000), uint32(2), []byte{}, "a/b", uint64(1), 0)
	f.Add(^uint64(0), uint32(3), bytes.Repeat([]byte{0xEE}, 128), "", uint64(0), 7)
	f.Add(uint64(42), uint32(300), []byte("cas body"), "prefix/watched", ^uint64(0), 20)
	f.Fuzz(func(t *testing.T, version uint64, aux uint32, data []byte, key string, tag uint64, cut int) {
		if len(key) > maxKeyLen {
			key = key[:maxKeyLen]
		}
		if len(data) > maxValueLen-verPayloadHeader {
			data = data[:maxValueLen-verPayloadHeader]
		}

		// CAS request: expect-version + new value in the payload, TTL in
		// aux — exactly as MuxClient.CAS builds it.
		casReq := frame{op: opCAS, tag: tag, aux: aux, key: key, val: appendVerPayload(nil, version, 0, data)}
		enc := appendFrame(nil, &casReq)
		var out frame
		if err := readFrame(bufio.NewReader(bytes.NewReader(enc)), &out); err != nil {
			t.Fatalf("cas frame decode: %v", err)
		}
		if out.op != opCAS || out.tag != tag || out.aux != aux || out.key != key {
			t.Fatalf("cas frame header round trip: got %+v", out)
		}
		expect, _, body, err := decodeVerPayload(out.val)
		if err != nil {
			t.Fatalf("cas payload decode: %v", err)
		}
		if expect != version || !bytes.Equal(body, data) {
			t.Fatalf("cas payload round trip: got (%d, %d bytes), want (%d, %d bytes)",
				expect, len(body), version, len(data))
		}

		// Event push: the server-minted frame a watch client demuxes.
		evType := EventType(aux%3 + 1)
		evIn := frame{op: opEvent, tag: tag, aux: uint32(evType), key: key,
			val: appendVerPayload(nil, version, aux, data)}
		encEv := appendFrame(nil, &evIn)
		var evOut frame
		if err := readFrame(bufio.NewReader(bytes.NewReader(encEv)), &evOut); err != nil {
			t.Fatalf("event frame decode: %v", err)
		}
		if evOut.op != opEvent || evOut.tag != tag || EventType(evOut.aux) != evType || evOut.key != key {
			t.Fatalf("event frame header round trip: got %+v", evOut)
		}
		ver, ttl, evData, err := decodeVerPayload(evOut.val)
		if err != nil {
			t.Fatalf("event payload decode: %v", err)
		}
		if ver != version || ttl != aux || !bytes.Equal(evData, data) {
			t.Fatalf("event payload round trip: got (%d, %d, %d bytes), want (%d, %d, %d bytes)",
				ver, ttl, len(evData), version, aux, len(data))
		}

		// A truncated event frame must error (or report a clean EOF at a
		// frame boundary), never panic or hand back a torn frame.
		if cut >= 0 && len(encEv) > 0 {
			prefix := encEv[:cut%len(encEv)]
			var torn frame
			if err := readFrame(bufio.NewReader(bytes.NewReader(prefix)), &torn); err == nil {
				t.Fatalf("truncated event frame decoded: %+v", torn)
			}
		}

		// Corrupting the op byte below 0x80 must be rejected as a protocol
		// violation (the v1/v2 sniff boundary).
		mut := append([]byte(nil), encEv...)
		mut[0] &= 0x7F
		var bad frame
		if err := readFrame(bufio.NewReader(bytes.NewReader(mut)), &bad); err != errFrameOp {
			t.Fatalf("low-bit op decode err = %v, want errFrameOp", err)
		}
	})
}
