package memkv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// killServerConns closes every server-side socket, breaking all client
// stripes at once.
func killServerConns(srv *Server) {
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
}

// TestMuxBackgroundRedialRepairsStripe: after a connection breaks, the
// stripe must reconnect in the BACKGROUND — the server sees a fresh
// connection without the client issuing a single request. This is the
// regression test for redial-only-on-next-request: callers that go
// quiet after an error must still find a healed client.
func TestMuxBackgroundRedialRepairsStripe(t *testing.T) {
	srv, addr := startServer(t)
	cl := NewMuxClient(addr, 5*time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	old := make(map[any]bool, len(srv.conns))
	for c := range srv.conns {
		old[c] = true
	}
	srv.mu.Unlock()
	killServerConns(srv)
	// No client requests from here on: only the redial loop may dial.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fresh := false
		srv.mu.Lock()
		for c := range srv.conns {
			if !old[c] {
				fresh = true
			}
		}
		srv.mu.Unlock()
		if fresh {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stripe was not redialed in the background")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the healed connection serves requests (allowing a beat for the
	// client to swap the fresh conn into its stripe slot).
	deadline = time.Now().Add(2 * time.Second)
	for {
		v, err := cl.Get(ctx, "k")
		if err == nil && string(v) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("get after background redial = %q, %v", v, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMuxRecoversMidStorm: connections are killed repeatedly while a
// storm of concurrent requests is in flight. Individual requests may
// fail with ErrMuxConnLost, but the client as a whole must keep
// recovering without being recreated, and must serve cleanly once the
// storm ends.
func TestMuxRecoversMidStorm(t *testing.T) {
	srv, addr := startServer(t)
	cl := NewMuxClient(addr, 5*time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "storm", []byte("v")); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var unexpected sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("storm-%d-%d", g, i)
				if err := cl.Set(ctx, key, []byte("x")); err != nil && !errors.Is(err, ErrMuxConnLost) {
					unexpected.Store(err.Error(), true)
				}
				if _, err := cl.Get(ctx, "storm"); err != nil &&
					!errors.Is(err, ErrMuxConnLost) && !errors.Is(err, ErrNotFound) {
					unexpected.Store(err.Error(), true)
				}
			}
		}(g)
	}
	for k := 0; k < 3; k++ {
		time.Sleep(50 * time.Millisecond)
		killServerConns(srv)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	unexpected.Range(func(k, _ any) bool {
		t.Errorf("storm saw unexpected error: %s", k)
		return true
	})

	// After the storm the client must recover on its own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := cl.Get(ctx, "storm")
		if err == nil && string(v) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client did not recover after storm: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMuxFailsFastWhileServerDown: with the server fully gone, requests
// fail promptly (typed, wrapping ErrMuxConnLost or a dial error) rather
// than hanging for the full request timeout; when a server comes back
// on the same address, the backoff redialer reconnects without any help.
func TestMuxFailsFastWhileServerDown(t *testing.T) {
	srv := NewServer(nil)
	laddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := laddr.String()
	cl := NewMuxClient(addr, 10*time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Drive requests until the client settles into fail-fast: once the
	// stripe is in redial state, a request must return well under the
	// 10s request timeout.
	deadline := time.Now().Add(5 * time.Second)
	for {
		start := time.Now()
		_, err := cl.Get(ctx, "k")
		el := time.Since(start)
		if err == nil {
			t.Fatal("get succeeded against a closed server")
		}
		if errors.Is(err, ErrMuxConnLost) && el < time.Second {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fail-fast ErrMuxConnLost (last: %v after %v)", err, el)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Resurrect the server on the same address; the redialer must find it.
	srv2 := NewServer(nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if err := cl.Set(ctx, "k2", []byte("v2")); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the restarted server")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
