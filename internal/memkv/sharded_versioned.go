package memkv

import (
	"context"
	"errors"
	"fmt"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/ring"
)

// This file is ShardedClient's versioned (convergence) surface: the
// client-side half of the repair subsystem. Three pieces live here.
//
//   - A Lamport version clock seeded by the wall clock, so versions
//     minted by independent ShardedClients stay comparable and
//     last-writer-wins resolves sanely across writers (ties and skew
//     bounded by clock skew; deletes carry no tombstones — a concurrent
//     delete can be resurrected by repair, the documented limitation).
//   - PutVersioned, a quorum write that — unlike SetTTL, whose engine
//     cancels losing copies the moment the quorum is met — lets every
//     placement copy run to completion in the background and reports
//     each copy that ultimately failed to the repair sink as a missed
//     write (the hinted-handoff trigger). Durability is exactly the
//     reason the core engine's cancel-at-quorum is wrong here.
//   - GetQuorum, a version-observing quorum read: it returns the newest
//     value among the copies read and reports stale copies (older
//     version, or missing entirely) to the sink for asynchronous read
//     repair, off the caller's critical path.
//
// The sink (see RepairSink) is the seam to internal/repair: memkv knows
// nothing about hint queues, backoff, or the governor — it only reports
// what it observed.

// VersionedBackend is the v2-only shard surface the convergence layer
// needs: version-carrying reads and writes, the anti-entropy scan, and
// delete (for draining migrated keys). MuxClient implements it; the v1
// text-protocol Client does not, which is what keeps versioned traffic
// off v1 shards.
type VersionedBackend interface {
	Backend
	GetV(ctx context.Context, key string) (value []byte, version uint64, ttlSecs uint32, err error)
	PutV(ctx context.Context, key string, value []byte, ttl time.Duration, version uint64) (current uint64, applied bool, err error)
	PutVBatch(ctx context.Context, puts []VersionedPut) []PutVResult
	Scan(ctx context.Context, after string, limit int) (entries []ScanEntry, more bool, err error)
	Delete(ctx context.Context, key string) error
}

// RepairSink receives the convergence work a ShardedClient observes but
// does not perform itself: missed quorum-write copies (hinted handoff),
// version divergence on quorum reads (read repair), and topology
// changes (anti-entropy migration). repair.Manager is the production
// implementation. Methods must not block — they run on call paths.
type RepairSink interface {
	// WriteMissed reports that a versioned write reached its quorum (or
	// failed) without landing on owner: the hint to queue and replay.
	WriteMissed(key string, value []byte, version uint64, ttl time.Duration, owner string)
	// Divergence reports that a quorum read observed staleOwners holding
	// an older version (or no value) for key; value/version/ttlSecs are
	// the newest observed, to push to the stale copies (the TTL so repair
	// doesn't immortalize an expiring key).
	Divergence(key string, value []byte, version uint64, ttlSecs uint32, staleOwners []string)
	// TopologyChanged reports a shard set change with the placement
	// before and after, for remap-diff migration.
	TopologyChanged(prev, cur ring.Placement)
}

// sinkBox wraps the sink for atomic.Pointer (interfaces can't be stored
// in one directly).
type sinkBox struct{ s RepairSink }

// errShardNotVersioned reports a versioned operation routed to a shard
// whose backend lacks the v2 surface.
var errShardNotVersioned = errors.New("memkv: shard does not support versioned operations")

// verVal is the versioned read ring's result: a value, its version, and
// its remaining TTL. Version 0 means the key was absent on that copy.
type verVal struct {
	val     []byte
	ver     uint64
	ttlSecs uint32
}

// SetRepairSink installs (or, with nil, removes) the repair sink. Safe
// to call at any time; calls in flight may still see the old sink.
func (sc *ShardedClient) SetRepairSink(s RepairSink) {
	if s == nil {
		sc.sink.Store(nil)
		return
	}
	sc.sink.Store(&sinkBox{s: s})
}

func (sc *ShardedClient) repairSink() RepairSink {
	if b := sc.sink.Load(); b != nil {
		return b.s
	}
	return nil
}

// NextVersion mints a version strictly greater than any this client has
// minted or witnessed: max(wall clock nanos, last+1). The wall-clock
// floor keeps versions comparable across independent clients.
func (sc *ShardedClient) NextVersion() uint64 {
	for {
		last := sc.clock.Load()
		v := uint64(time.Now().UnixNano())
		if v <= last {
			v = last + 1
		}
		if sc.clock.CompareAndSwap(last, v) {
			return v
		}
	}
}

// Witness advances the version clock to at least v — called with every
// version observed on reads, the Lamport receive rule.
func (sc *ShardedClient) Witness(v uint64) {
	for {
		last := sc.clock.Load()
		if v <= last {
			return
		}
		if sc.clock.CompareAndSwap(last, v) {
			return
		}
	}
}

// versionedStragglerTimeout bounds how long a placement copy of a
// versioned write may keep running after the call returned (quorum met
// or caller gone). On expiry the copy fails and becomes a hint.
const versionedStragglerTimeout = 5 * time.Second

// PutVersioned writes value under key with a freshly minted version and
// returns that version once WriteQuorum placement copies acked.
//
// Unlike SetTTL, copies beyond the quorum are NOT cancelled: every
// placement copy runs to completion (bounded by
// versionedStragglerTimeout, detached from the caller's context), and
// each copy that ultimately fails is reported to the repair sink as a
// missed write — the hinted-handoff path. With fewer acks than the
// quorum possible, the error matches core.ErrQuorumUnreachable.
func (sc *ShardedClient) PutVersioned(ctx context.Context, key string, value []byte, ttl time.Duration) (uint64, error) {
	if err := validateKey(key); err != nil {
		return 0, err
	}
	ver := sc.NextVersion()
	return ver, sc.PutVersionAt(ctx, key, value, ttl, ver)
}

// PutVersionAt is PutVersioned with a caller-supplied version — the
// replay path for hints and migration, where the original version must
// be preserved. version must be nonzero.
func (sc *ShardedClient) PutVersionAt(ctx context.Context, key string, value []byte, ttl time.Duration, version uint64) error {
	if err := validateKey(key); err != nil {
		return err
	}
	if version == 0 {
		return errors.New("memkv: version must be nonzero")
	}
	owners := sc.readsV.Owners(key)
	if len(owners) == 0 {
		return core.ErrNoReplicas
	}
	q := sc.writeQuorum
	if q > len(owners) {
		q = len(owners)
	}
	return sc.replicateVersion(ctx, key, value, ttl, version, owners, q)
}

// replicateVersion pushes an already-versioned value to owners and
// returns once q of them acked (q <= 0 returns immediately — used by
// CAS, whose primary ack already satisfied a quorum of 1). Every copy
// runs to completion detached from the caller (bounded by
// versionedStragglerTimeout); each copy that ultimately fails becomes a
// WriteMissed hint. This is the shared durability tail of PutVersioned,
// PutVersionAt, and CAS.
func (sc *ShardedClient) replicateVersion(ctx context.Context, key string, value []byte, ttl time.Duration, version uint64, owners []string, q int) error {
	if len(owners) == 0 {
		return nil
	}
	if q > len(owners) {
		q = len(owners)
	}
	results := make(chan error, len(owners))
	for _, addr := range owners {
		go func(addr string) {
			// Detached from the caller: a copy that outlives the quorum
			// keeps writing, because durability is the point. The timeout
			// bounds the goroutine; a copy it kills becomes a hint.
			wctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), versionedStragglerTimeout)
			defer cancel()
			err := sc.putOneVersioned(wctx, addr, key, value, ttl, version)
			if err != nil {
				if sink := sc.repairSink(); sink != nil {
					sink.WriteMissed(key, value, version, ttl, addr)
				}
			}
			results <- err
		}(addr)
	}
	acks, fails := 0, 0
	var firstErr error
	for acks < q && len(owners)-fails >= q {
		select {
		case err := <-results:
			if err == nil {
				acks++
			} else {
				fails++
				if firstErr == nil {
					firstErr = err
				}
			}
		case <-ctx.Done():
			return fmt.Errorf("memkv: versioned set %q: %w", key, context.Cause(ctx))
		}
	}
	if acks >= q {
		return nil
	}
	return fmt.Errorf("memkv: versioned set %q (%d/%d acked): %w: %w", key, acks, q, core.ErrQuorumUnreachable, firstErr)
}

func (sc *ShardedClient) putOneVersioned(ctx context.Context, addr, key string, value []byte, ttl time.Duration, version uint64) error {
	vb := sc.VersionedShard(addr)
	if vb == nil {
		return fmt.Errorf("%s: %w", addr, errShardNotVersioned)
	}
	_, _, err := vb.PutV(ctx, key, value, ttl, version)
	return err
}

// GetQuorum reads key from q placement copies (q < 1 means the client's
// WriteQuorum, the symmetric R+W > N default) and returns the newest
// value and version observed. A copy missing the key counts as a
// successful read of version 0, so the quorum holds over partial misses;
// if every copy read misses, the error is ErrNotFound. Copies observed
// holding an older version — including misses — are reported to the
// repair sink as divergence, which pushes the newest value to them
// asynchronously (read repair, off this call's critical path).
func (sc *ShardedClient) GetQuorum(ctx context.Context, key string, q int) ([]byte, uint64, error) {
	if err := validateKey(key); err != nil {
		return nil, 0, err
	}
	n := sc.readsV.Len()
	if n == 0 {
		return nil, 0, core.ErrNoReplicas
	}
	if q < 1 {
		q = sc.writeQuorum
	}
	if q > sc.replication {
		q = sc.replication
	}
	if q > n {
		q = n
	}
	owners := sc.readsV.Owners(key)
	var outs []core.Outcome[verVal]
	_, err := sc.readsV.Do(ctx, key, core.WithQuorum(q), core.WithCollectOutcomes(&outs))
	if err != nil {
		return nil, 0, fmt.Errorf("memkv: quorum get %q: %w", key, err)
	}
	// Pick the newest version among the copies that completed; Index maps
	// an outcome to its placement slot (0 = primary), hence its owner.
	best := verVal{}
	for _, o := range outs {
		if o.Err == nil && o.Value.ver > best.ver {
			best = o.Value
		}
	}
	var stale []string
	for _, o := range outs {
		if o.Err == nil && o.Value.ver < best.ver && o.Index < len(owners) {
			stale = append(stale, owners[o.Index])
		}
	}
	if best.ver == 0 {
		return nil, 0, fmt.Errorf("memkv: quorum get %q: %w", key, ErrNotFound)
	}
	sc.Witness(best.ver)
	if len(stale) > 0 {
		if sink := sc.repairSink(); sink != nil {
			sink.Divergence(key, best.val, best.ver, best.ttlSecs, stale)
		}
	}
	return best.val, best.ver, nil
}

// VersionedShard returns the shard at addr if it supports versioned
// operations, nil otherwise (unknown addr or v1 backend).
func (sc *ShardedClient) VersionedShard(addr string) VersionedBackend {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if vb, ok := sc.clients[addr].(VersionedBackend); ok {
		return vb
	}
	return nil
}

// ShardAddrs returns the current shard addresses in registration order.
func (sc *ShardedClient) ShardAddrs() []string { return sc.readsV.Names() }

// PlacementSnapshot captures the current placement as an immutable
// snapshot, for remap-diff enumeration (see ring.Placement).
func (sc *ShardedClient) PlacementSnapshot() ring.Placement { return sc.readsV.Placement() }
