package memkv

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/core"
)

// ErrMuxConnLost reports that a multiplexed connection died with
// requests in flight: every pending request on it fails with an error
// wrapping this sentinel (match with errors.Is). The next request
// redials transparently.
var ErrMuxConnLost = errors.New("memkv: mux connection lost")

// ErrMuxTimeout reports that a multiplexed request exceeded the
// client's per-request timeout. Unlike the v1 client — which must kill
// the connection, because a text-protocol response has no identity
// besides its position — a timed-out v2 request just abandons its tag;
// the connection and every other in-flight request on it are unharmed.
var ErrMuxTimeout = errors.New("memkv: mux request timeout")

// MuxClient is the v2 multiplexed memkv client: a tiny fixed set of
// connections (default one) to a single server, over which any number
// of concurrent requests interleave. Where the v1 Client's concurrency
// ceiling is file descriptors — every in-flight request occupies a
// pooled connection — a MuxClient's ceiling is memory: each in-flight
// request is one map entry and one pooled waiter, so tens of thousands
// of outstanding redundant reads share a handful of sockets.
//
//   - Writes coalesce: requests append frames to a pending buffer and a
//     single flusher goroutine per connection writes whatever
//     accumulated while the previous write was in flight — group
//     commit, one syscall for many requests under load.
//   - Reads demux: a reader goroutine per connection routes each
//     response frame to its tag's waiter. Responses may arrive in any
//     order; slow requests don't head-of-line-block fast ones.
//   - Cancellation is free: a cancelled request unregisters its tag and
//     moves on — the connection survives, and the response is discarded
//     on arrival. (The v1 client must burn the connection to abandon a
//     request.) The redundancy engine cancelling a losing copy
//     therefore no longer costs a reconnect.
//
// A MuxClient is safe for concurrent use and implements the same
// Get/Set/SetTTL/Delete surface as Client, so it satisfies Backend and
// plugs into ShardedClient and ReplicatedClient construction unchanged.
type MuxClient struct {
	addr    string
	timeout time.Duration

	rr    atomic.Uint64
	conns []atomic.Pointer[muxConn]

	mu sync.Mutex // serializes dialing, redial state, and Close
	// redialing marks stripes whose reconnection a background redialer
	// owns: after a connection breaks, the redialer retries with
	// jittered exponential backoff until it succeeds, so the client
	// heals itself even if no caller ever retries. While a stripe is
	// redialing, requests on it fail fast (wrapping ErrMuxConnLost with
	// the last dial error) instead of piling a dial storm on a dead
	// server.
	redialing   []bool
	lastDialErr []error
	closed      bool
	closedC     chan struct{}
}

// MuxOption configures a MuxClient.
type MuxOption func(*MuxClient)

// WithMuxConns sets how many connections the client stripes requests
// over (default 1; values below 1 mean 1). More than a few is rarely
// useful: the point of multiplexing is that one connection carries many
// requests.
func WithMuxConns(n int) MuxOption {
	return func(m *MuxClient) {
		if n < 1 {
			n = 1
		}
		m.conns = make([]atomic.Pointer[muxConn], n)
	}
}

// NewMuxClient creates a multiplexed v2 client for the server at addr.
// timeout bounds each request from enqueue to response (0 means no
// timeout); it is enforced on the shared timer wheel, not with a
// per-request runtime timer. Connections are dialed lazily.
func NewMuxClient(addr string, timeout time.Duration, opts ...MuxOption) *MuxClient {
	m := &MuxClient{addr: addr, timeout: timeout, closedC: make(chan struct{})}
	m.conns = make([]atomic.Pointer[muxConn], 1)
	for _, o := range opts {
		o(m)
	}
	m.redialing = make([]bool, len(m.conns))
	m.lastDialErr = make([]error, len(m.conns))
	return m
}

// Addr returns the server address this client targets.
func (m *MuxClient) Addr() string { return m.addr }

// NumConns returns the number of connection stripes.
func (m *MuxClient) NumConns() int { return len(m.conns) }

// muxConn is one multiplexed connection: a writer-side pending buffer
// drained by the flusher goroutine, and a reader goroutine demuxing
// response frames to tag waiters.
type muxConn struct {
	c net.Conn
	// owner and stripe identify this connection's slot in its client, so
	// fail can hand the slot to the background redialer. owner is nil in
	// tests that build bare conns.
	owner  *MuxClient
	stripe int

	mu      sync.Mutex
	tag     uint64
	waiters map[uint64]*muxWaiter
	// watches routes server-push frames (opEvent/opWatchEnd) by the
	// owning watch's tag — the streaming sibling of waiters. Lazily
	// allocated on the first Watch.
	watches map[uint64]*WatchStream
	pending []byte
	dead    bool
	err     error

	flushC chan struct{}
	done   chan struct{}
}

// muxWaiter is one in-flight request's rendezvous. The channel has
// capacity 1 and receives exactly one frame (response, timeout
// sentinel, or nothing if the connection dies), so deliveries never
// block. Waiters recycle through a pool; a waiter is only returned to
// the pool by a path that proved the channel is and will stay empty.
type muxWaiter struct {
	ch chan frame
}

var muxWaiterPool = sync.Pool{
	New: func() any { return &muxWaiter{ch: make(chan frame, 1)} },
}

func (m *MuxClient) dial(ctx context.Context, stripe int) (*muxConn, error) {
	d := net.Dialer{Timeout: m.timeout}
	c, err := d.DialContext(ctx, "tcp", m.addr)
	if err != nil {
		return nil, err
	}
	cn := &muxConn{
		c:       c,
		owner:   m,
		stripe:  stripe,
		waiters: make(map[uint64]*muxWaiter),
		flushC:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go cn.reader()
	go cn.flusher()
	return cn, nil
}

// conn returns a live connection for the next request. A stripe that has
// never failed is dialed lazily and synchronously; a stripe whose
// connection broke belongs to the background redialer, and requests on
// it fail fast until it reconnects.
func (m *MuxClient) conn(ctx context.Context) (*muxConn, error) {
	i := int(m.rr.Add(1) % uint64(len(m.conns)))
	if cn := m.conns[i].Load(); cn != nil && !cn.isDead() {
		return cn, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("memkv: mux client closed")
	}
	if cn := m.conns[i].Load(); cn != nil && !cn.isDead() {
		return cn, nil
	}
	if m.redialing[i] {
		err := m.lastDialErr[i]
		if err == nil {
			// The redialer has not finished a failed attempt yet; the
			// break itself is the freshest information.
			return nil, ErrMuxConnLost
		}
		return nil, fmt.Errorf("%w (redialing: %v)", ErrMuxConnLost, err)
	}
	cn, err := m.dial(ctx, i)
	if err != nil {
		// The synchronous dial failed: the server is unreachable, not
		// just this connection. Hand the stripe to the backoff redialer
		// so the client heals itself without a caller-driven dial storm.
		m.startRedialLocked(i, err)
		return nil, err
	}
	m.conns[i].Store(cn)
	return cn, nil
}

// stripeLost is called by muxConn.fail when an established connection
// breaks: the stripe's reconnection moves to the background redialer.
func (m *MuxClient) stripeLost(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.redialing[i] {
		return
	}
	m.startRedialLocked(i, nil)
}

// startRedialLocked marks stripe i as redialing and spawns its redial
// goroutine. The caller holds m.mu.
func (m *MuxClient) startRedialLocked(i int, lastErr error) {
	m.redialing[i] = true
	m.lastDialErr[i] = lastErr
	go m.redialLoop(i)
}

// Redial backoff bounds: the first attempt is immediate (a broken
// connection to a live server should recover in one round trip), then
// attempts back off exponentially with jitter up to the cap.
const (
	muxRedialBase = 10 * time.Millisecond
	muxRedialMax  = 2 * time.Second
)

// redialLoop reconnects one stripe with jittered exponential backoff,
// storing the fresh connection when it succeeds. It exits when the
// client closes.
func (m *MuxClient) redialLoop(i int) {
	backoff := muxRedialBase
	for {
		cn, err := m.dial(context.Background(), i)
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			if cn != nil {
				cn.fail(errors.New("client closed"))
			}
			return
		}
		if err == nil {
			m.conns[i].Store(cn)
			m.redialing[i] = false
			m.lastDialErr[i] = nil
			m.mu.Unlock()
			return
		}
		m.lastDialErr[i] = err
		m.mu.Unlock()
		// Jittered sleep in [backoff/2, backoff), so stripes (and
		// clients) that broke together don't retry in lockstep.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)))
		select {
		case <-time.After(d):
		case <-m.closedC:
			return
		}
		if backoff < muxRedialMax {
			backoff *= 2
		}
	}
}

// Close closes every connection. Requests in flight fail with
// ErrMuxConnLost; subsequent requests fail immediately. Background
// redialers exit.
func (m *MuxClient) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.closedC)
	m.mu.Unlock()
	for i := range m.conns {
		if cn := m.conns[i].Load(); cn != nil {
			cn.fail(errors.New("client closed"))
		}
	}
	return nil
}

func (cn *muxConn) isDead() bool {
	select {
	case <-cn.done:
		return true
	default:
		return false
	}
}

// lostErr returns the connection's terminal error (after done closed).
func (cn *muxConn) lostErr() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return cn.err
	}
	return ErrMuxConnLost
}

// fail marks the connection dead exactly once: pending waiters are
// released via the done channel (their responses will never arrive) and
// the socket is closed, which also stops the reader and flusher.
func (cn *muxConn) fail(cause error) {
	cn.mu.Lock()
	if cn.dead {
		cn.mu.Unlock()
		return
	}
	cn.dead = true
	cn.err = fmt.Errorf("%w: %v", ErrMuxConnLost, cause)
	cn.waiters = nil
	ws := cn.watches
	cn.watches = nil
	cn.mu.Unlock()
	close(cn.done)
	cn.c.Close()
	for _, st := range ws {
		// Streams on a dead connection end with the conn-lost error so
		// their consumers know to resubscribe (events in the gap are
		// gone; the redundant sharded watch covers it).
		st.end(cn.err)
	}
	if cn.owner != nil {
		// Hand the stripe to the background redialer immediately rather
		// than waiting for the next request to trip over the dead conn.
		cn.owner.stripeLost(cn.stripe)
	}
}

// start registers a waiter and assigns a tag for each request, appends
// all their frames to the pending buffer under one lock acquisition,
// and signals the flusher once — the enqueue half of write coalescing.
// reqs and ws share indices; on error nothing was enqueued.
func (cn *muxConn) start(reqs []frame, ws []*muxWaiter) error {
	cn.mu.Lock()
	if cn.dead {
		err := cn.err
		cn.mu.Unlock()
		if err == nil {
			err = ErrMuxConnLost
		}
		return err
	}
	for i := range reqs {
		cn.tag++
		reqs[i].tag = cn.tag
		w := muxWaiterPool.Get().(*muxWaiter)
		ws[i] = w
		cn.waiters[cn.tag] = w
		cn.pending = appendFrame(cn.pending, &reqs[i])
	}
	cn.mu.Unlock()
	select {
	case cn.flushC <- struct{}{}:
	default:
	}
	return nil
}

// reader demuxes response frames to their tag's waiter, and server-push
// frames (opEvent/opWatchEnd) to their tag's watch stream. A frame
// whose tag has no waiter was cancelled or timed out after the request
// went out: the response is discarded and the connection lives on.
func (cn *muxConn) reader() {
	r := bufio.NewReaderSize(cn.c, 64<<10)
	for {
		var f frame
		if err := readFrame(r, &f); err != nil {
			cn.fail(err)
			return
		}
		if f.op == opEvent || f.op == opWatchEnd {
			cn.mu.Lock()
			st := cn.watches[f.tag]
			if st != nil && f.op == opWatchEnd {
				// The terminal frame: nothing more arrives on this tag.
				delete(cn.watches, f.tag)
			}
			cn.mu.Unlock()
			if st != nil {
				st.deliver(&f) // non-blocking by contract
			}
			continue
		}
		cn.mu.Lock()
		w := cn.waiters[f.tag]
		if w != nil {
			delete(cn.waiters, f.tag)
		}
		cn.mu.Unlock()
		if w != nil {
			w.ch <- f // cap 1, sole delivery: never blocks
		}
	}
}

// flusher is the connection's single writer: each pass swaps out
// whatever frames accumulated while the previous write was on the wire
// and writes them with one syscall (group commit).
func (cn *muxConn) flusher() {
	var scratch []byte
	for {
		select {
		case <-cn.flushC:
		case <-cn.done:
			return
		}
		for {
			cn.mu.Lock()
			if len(cn.pending) == 0 {
				cn.mu.Unlock()
				break
			}
			buf := cn.pending
			cn.pending = scratch[:0]
			cn.mu.Unlock()
			if _, err := cn.c.Write(buf); err != nil {
				cn.fail(err)
				return
			}
			scratch = buf
		}
	}
}

// abandon gives up on a waiter whose response we no longer want
// (cancellation or timeout). If the tag is still registered, the
// response simply never finds a waiter — discarded on arrival, the mux
// cancellation contract. If it is gone, a delivery is either in flight
// (drain it) or the connection died (nothing will come).
func (cn *muxConn) abandon(tag uint64, w *muxWaiter) {
	cn.mu.Lock()
	if cn.waiters != nil {
		if _, ok := cn.waiters[tag]; ok {
			delete(cn.waiters, tag)
			cn.mu.Unlock()
			// Unregistered before delivery: the channel is empty for good.
			muxWaiterPool.Put(w)
			return
		}
	}
	cn.mu.Unlock()
	select {
	case <-w.ch:
		// The in-flight delivery arrived; now the channel is empty again.
		muxWaiterPool.Put(w)
	case <-cn.done:
		// Connection died after unregistering us (fail drops the whole
		// map): no delivery will come, but don't pool a channel the
		// reader might theoretically still hold.
	}
}

// muxTimeoutFired is the shared-wheel callback for a request timeout:
// it unregisters the tag (so the eventual response is discarded) and
// delivers the timeout sentinel to the waiter. c is the *muxConn, i the
// tag.
func muxTimeoutFired(c any, i int64) {
	cn := c.(*muxConn)
	tag := uint64(i)
	cn.mu.Lock()
	var w *muxWaiter
	if cn.waiters != nil {
		w = cn.waiters[tag]
		if w != nil {
			delete(cn.waiters, tag)
		}
	}
	cn.mu.Unlock()
	if w != nil {
		w.ch <- frame{op: opTimeout}
	}
}

// do runs one request to completion: enqueue, then wait for the
// response, the timeout, cancellation, or connection loss.
func (m *MuxClient) do(ctx context.Context, req frame) (frame, error) {
	if err := ctx.Err(); err != nil {
		return frame{}, err
	}
	cn, err := m.conn(ctx)
	if err != nil {
		return frame{}, err
	}
	var reqs [1]frame
	var ws [1]*muxWaiter
	reqs[0] = req
	if err := cn.start(reqs[:], ws[:]); err != nil {
		return frame{}, err
	}
	w, tag := ws[0], reqs[0].tag
	var tm core.WheelTimer
	if m.timeout > 0 {
		tm = core.SharedWheel().AfterFunc(m.timeout, muxTimeoutFired, cn, int64(tag))
	}
	select {
	case fr := <-w.ch:
		tm.Stop()
		muxWaiterPool.Put(w)
		if fr.op == opTimeout {
			return frame{}, fmt.Errorf("%w after %v", ErrMuxTimeout, m.timeout)
		}
		return fr, nil
	case <-ctx.Done():
		tm.Stop()
		cn.abandon(tag, w)
		return frame{}, ctx.Err()
	case <-cn.done:
		tm.Stop()
		return frame{}, cn.lostErr()
	}
}

func frameToGet(fr *frame) ([]byte, error) {
	switch fr.op {
	case opValue:
		return fr.val, nil
	case opNotFound:
		return nil, ErrNotFound
	case opErr:
		return nil, fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return nil, fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}

func frameToSet(fr *frame) error {
	switch fr.op {
	case opStored:
		return nil
	case opErr:
		return fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}

func frameToDelete(fr *frame) error {
	switch fr.op {
	case opDeleted:
		return nil
	case opNotFound:
		return ErrNotFound
	case opErr:
		return fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}

// Get fetches the value stored under key.
func (m *MuxClient) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validateKey(key); err != nil {
		return nil, err
	}
	fr, err := m.do(ctx, frame{op: opGet, key: key})
	if err != nil {
		return nil, err
	}
	return frameToGet(&fr)
}

// Set stores value under key with no expiry.
func (m *MuxClient) Set(ctx context.Context, key string, value []byte) error {
	return m.SetTTL(ctx, key, value, 0)
}

// SetTTL stores value under key, expiring after ttl (rounded up to
// whole seconds; 0 = never).
func (m *MuxClient) SetTTL(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	if err := validateKey(key); err != nil {
		return err
	}
	fr, err := m.do(ctx, frame{op: opSet, aux: ttlSeconds(ttl), key: key, val: value})
	if err != nil {
		return err
	}
	return frameToSet(&fr)
}

// Delete removes key.
func (m *MuxClient) Delete(ctx context.Context, key string) error {
	if err := validateKey(key); err != nil {
		return err
	}
	fr, err := m.do(ctx, frame{op: opDelete, key: key})
	if err != nil {
		return err
	}
	return frameToDelete(&fr)
}

func ttlSeconds(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	return uint32((ttl + time.Second - 1) / time.Second)
}

// closeChanFired is a shared-wheel callback that closes the chan passed
// as c — the batch paths' one-timer-per-batch deadline.
func closeChanFired(c any, _ int64) { close(c.(chan struct{})) }

// doBatch issues all reqs in one coalesced round on one connection and
// collects their responses. Per-request outcomes land in frs/errs; a
// setup failure (dial, dead stripe) is returned for the caller to
// spread over every request.
func (m *MuxClient) doBatch(ctx context.Context, reqs []frame) ([]frame, []error) {
	frs := make([]frame, len(reqs))
	errs := make([]error, len(reqs))
	fill := func(err error) ([]frame, []error) {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = err
			}
		}
		return frs, errs
	}
	cn, err := m.conn(ctx)
	if err != nil {
		return fill(err)
	}
	ws := make([]*muxWaiter, len(reqs))
	if err := cn.start(reqs, ws); err != nil {
		return fill(err)
	}
	var tm core.WheelTimer
	var timeoutC chan struct{}
	if m.timeout > 0 {
		timeoutC = make(chan struct{})
		tm = core.SharedWheel().AfterFunc(m.timeout, closeChanFired, timeoutC, 0)
	}
	defer tm.Stop()
	for i, w := range ws {
		select {
		case fr := <-w.ch:
			muxWaiterPool.Put(w)
			frs[i] = fr
		case <-ctx.Done():
			errs[i] = ctx.Err()
			cn.abandon(reqs[i].tag, w)
		case <-timeoutC:
			errs[i] = fmt.Errorf("%w after %v", ErrMuxTimeout, m.timeout)
			cn.abandon(reqs[i].tag, w)
		case <-cn.done:
			errs[i] = cn.lostErr()
		}
	}
	return frs, errs
}

// GetBatch fetches many keys in one multiplexed round: every request
// goes out in one coalesced write and the responses demux as they
// arrive. vals[i] and errs[i] are key i's outcome (a missing key is
// ErrNotFound); the slices always have len(keys).
func (m *MuxClient) GetBatch(ctx context.Context, keys []string) (vals [][]byte, errs []error) {
	reqs := make([]frame, len(keys))
	vals = make([][]byte, len(keys))
	var bad []error
	for i, k := range keys {
		if err := validateKey(k); err != nil {
			if bad == nil {
				bad = make([]error, len(keys))
			}
			bad[i] = err
		}
		reqs[i] = frame{op: opGet, key: k}
	}
	if bad != nil {
		return vals, bad
	}
	frs, errs := m.doBatch(ctx, reqs)
	for i := range frs {
		if errs[i] != nil {
			continue
		}
		vals[i], errs[i] = frameToGet(&frs[i])
	}
	return vals, errs
}

// PutBatch stores many key/value pairs in one multiplexed round (no
// expiry). errs[i] is pair i's outcome; len(vals) must equal len(keys).
func (m *MuxClient) PutBatch(ctx context.Context, keys []string, vals [][]byte) []error {
	if len(keys) != len(vals) {
		panic("memkv: PutBatch keys/vals length mismatch")
	}
	reqs := make([]frame, len(keys))
	var bad []error
	for i, k := range keys {
		if err := validateKey(k); err != nil {
			if bad == nil {
				bad = make([]error, len(keys))
			}
			bad[i] = err
		}
		reqs[i] = frame{op: opSet, key: k, val: vals[i]}
	}
	if bad != nil {
		return bad
	}
	frs, errs := m.doBatch(ctx, reqs)
	for i := range frs {
		if errs[i] != nil {
			continue
		}
		errs[i] = frameToSet(&frs[i])
	}
	return errs
}

// ---- Versioned operations (the convergence surface) ----
//
// These are the wire counterparts of Store.GetVersion/PutVersion/Scan:
// last-writer-wins puts carrying explicit versions, version-observing
// gets, and the cursor-paged scan that anti-entropy streams over. The
// v1 Client deliberately does not grow these — versioned traffic is a
// v2-only surface, which is what VersionedBackend gates on.

// GetV fetches the value, version, and remaining TTL (whole seconds,
// 0 = never expires) stored under key. A missing key is ErrNotFound;
// version 0 never names a live value. The TTL rides along so repair
// paths can re-put an expiring value without immortalizing it.
func (m *MuxClient) GetV(ctx context.Context, key string) (value []byte, version uint64, ttlSecs uint32, err error) {
	if err := validateKey(key); err != nil {
		return nil, 0, 0, err
	}
	fr, err := m.do(ctx, frame{op: opGetV, key: key})
	if err != nil {
		return nil, 0, 0, err
	}
	return frameToGetV(&fr)
}

// PutV stores value under key iff version is strictly newer than the
// stored version (last-writer-wins). It returns the key's version after
// the call — the caller's version if applied, the newer stored version
// if not — and whether the write applied. version must be nonzero.
func (m *MuxClient) PutV(ctx context.Context, key string, value []byte, ttl time.Duration, version uint64) (current uint64, applied bool, err error) {
	if err := validateKey(key); err != nil {
		return 0, false, err
	}
	fr, err := m.do(ctx, frame{op: opPutV, key: key, val: appendVerPayload(nil, version, ttlSeconds(ttl), value)})
	if err != nil {
		return 0, false, err
	}
	return frameToPutV(&fr)
}

// Scan returns up to limit live entries with keys strictly greater than
// after, in key order, with their versions and remaining TTLs. more
// reports whether another page may exist (pass the last returned key as
// the next cursor). This is the anti-entropy stream: a migrator walks a
// shard page by page and re-puts remapped entries at their new owners.
func (m *MuxClient) Scan(ctx context.Context, after string, limit int) (entries []ScanEntry, more bool, err error) {
	if limit < 1 || limit > maxScanLimit {
		limit = maxScanLimit
	}
	fr, err := m.do(ctx, frame{op: opScan, key: after, aux: uint32(limit)})
	if err != nil {
		return nil, false, err
	}
	switch fr.op {
	case opScanResp:
		entries, err := decodeScanEntries(fr.val)
		if err != nil {
			return nil, false, err
		}
		return entries, fr.aux == 1, nil
	case opErr:
		return nil, false, fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return nil, false, fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}

// VersionedPut is one entry of a PutVBatch.
type VersionedPut struct {
	Key     string
	Value   []byte
	TTL     time.Duration
	Version uint64
}

// PutVResult is one entry's outcome from PutVBatch.
type PutVResult struct {
	Current uint64
	Applied bool
	Err     error
}

// PutVBatch issues many versioned puts in one coalesced round — the
// migrator's bulk-transfer primitive. Results align with puts by index.
func (m *MuxClient) PutVBatch(ctx context.Context, puts []VersionedPut) []PutVResult {
	out := make([]PutVResult, len(puts))
	reqs := make([]frame, len(puts))
	bad := false
	for i := range puts {
		if err := validateKey(puts[i].Key); err != nil {
			out[i].Err = err
			bad = true
			continue
		}
		reqs[i] = frame{
			op:  opPutV,
			key: puts[i].Key,
			val: appendVerPayload(nil, puts[i].Version, ttlSeconds(puts[i].TTL), puts[i].Value),
		}
	}
	if bad {
		return out
	}
	frs, errs := m.doBatch(ctx, reqs)
	for i := range frs {
		if errs[i] != nil {
			out[i].Err = errs[i]
			continue
		}
		out[i].Current, out[i].Applied, out[i].Err = frameToPutV(&frs[i])
	}
	return out
}

func frameToGetV(fr *frame) (value []byte, version uint64, ttlSecs uint32, err error) {
	switch fr.op {
	case opValueV:
		ver, ttl, data, err := decodeVerPayload(fr.val)
		if err != nil {
			return nil, 0, 0, err
		}
		return data, ver, ttl, nil
	case opNotFound:
		return nil, 0, 0, ErrNotFound
	case opErr:
		return nil, 0, 0, fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return nil, 0, 0, fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}

func frameToPutV(fr *frame) (current uint64, applied bool, err error) {
	switch fr.op {
	case opStoredV:
		ver, _, _, err := decodeVerPayload(fr.val)
		if err != nil {
			return 0, false, err
		}
		return ver, fr.aux == 1, nil
	case opErr:
		return 0, false, fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return 0, false, fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}
