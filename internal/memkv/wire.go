package memkv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the memkv v2 framing layer: a fixed binary header plus
// key and value bytes, carrying a per-request u64 tag so many requests
// can share one connection and responses can return in any order. The
// v1 text protocol ties a connection to one in-flight request (the
// response is identified by position); v2 identifies responses by tag,
// which is what lets MuxClient multiplex thousands of outstanding
// requests over a single TCP connection and lets the server interleave
// delayed responses out of order.
//
// Frame layout (all integers big-endian):
//
//	op   u8   — operation / status code, always >= 0x80
//	tag  u64  — request identifier, echoed verbatim in the response
//	aux  u32  — op-specific: TTL seconds on set, flags on a value
//	klen u16  — key length (0 on responses), <= maxKeyLen
//	vlen u32  — value length, <= maxValueLen
//	key  [klen]byte
//	val  [vlen]byte
//
// Every op has the high bit set, so the first byte of a connection
// distinguishes v2 framing from the ASCII text protocol (whose commands
// start with a lowercase letter) and one listener serves both; see
// Server.serveConn. v2 deliberately drops the memcached "flags" field
// on set (aux carries the TTL instead); a value's flags default to 0
// when written via v2.
const (
	frameHeaderLen = 19

	// Request ops.
	opGet    = 0x81
	opSet    = 0x82
	opDelete = 0x83
	// Versioned requests (the convergence surface): opGetV reads value +
	// version, opPutV writes with an explicit version that applies only
	// if newer than stored (last-writer-wins), opScan pages through a
	// shard's keyspace with versions — the anti-entropy stream.
	opGetV = 0x84 // key
	opPutV = 0x85 // key, val = version payload (see verPayload)
	opScan = 0x86 // key = exclusive start cursor, aux = max entries
	// Conditional / streaming requests. opCAS writes only if the stored
	// version equals the expected one (0 = create if absent). opWatch
	// opens a long-lived prefix subscription: the request's tag becomes
	// the watch's identity, and the server pushes opEvent frames carrying
	// that tag until opUnwatch, a slow-consumer disconnect, or the
	// connection dies — the protocol's first server-initiated frames.
	opCAS     = 0x87 // key, aux = TTL seconds, val = version payload (version = expected, data = new value)
	opWatch   = 0x88 // key = prefix (may be empty), aux = event buffer size (0 = server default)
	opUnwatch = 0x89 // val = u64 tag of the watch to end

	// Response ops.
	opValue    = 0xC1 // val = stored bytes, aux = flags
	opNotFound = 0xC2
	opStored   = 0xC3
	opDeleted  = 0xC4
	opErr      = 0xC5 // val = error message
	opValueV   = 0xC6 // aux = flags, val = version payload
	opStoredV  = 0xC7 // aux = 1 if the put applied, val = current version payload (no data)
	opScanResp = 0xC8 // aux = 1 if more pages remain, val = packed scan entries
	opCASResp  = 0xC9 // aux = 1 if the swap applied, val = current version payload (no data)
	opWatchOK  = 0xCA // aux = granted event buffer size
	// opEvent is a server-push frame: tag = the owning watch's tag, aux =
	// event type (EventPut/EventDelete/EventExpire), key = the mutated
	// key, val = version payload (version, remaining TTL, value bytes —
	// empty for delete/expire).
	opEvent = 0xCB
	// opWatchEnd terminates a watch stream: tag = the watch's tag, aux =
	// a watchEnd* reason. Sent exactly once per established watch, after
	// its last opEvent.
	opWatchEnd  = 0xCC
	opUnwatched = 0xCD // ack for opUnwatch (by the opUnwatch request's own tag)

	// opTimeout is an internal sentinel delivered to a waiter whose
	// request timed out; it never appears on the wire (no high bit).
	opTimeout = 0x01
)

// opWatchEnd reasons.
const (
	// watchEndClosed: the client unwatched, or the server shut the
	// session down cleanly.
	watchEndClosed = 1
	// watchEndSlow: the watcher fell behind its event buffer (or the
	// session's write backlog) and was disconnected; events were lost.
	watchEndSlow = 2
)

// Frame decode errors. Truncated input surfaces as io.ErrUnexpectedEOF
// (or io.EOF at a frame boundary); these cover frames that violate the
// protocol's limits.
var (
	errFrameOp       = errors.New("memkv: frame op out of range")
	errFrameKeyLen   = errors.New("memkv: frame key too long")
	errFrameValueLen = errors.New("memkv: frame value too long")
)

// frame is one decoded v2 frame.
type frame struct {
	op  byte
	tag uint64
	aux uint32
	key string
	val []byte
}

// appendFrame appends f's encoding to dst and returns the extended
// slice — the writer-side primitive the mux clients and server batch
// through one coalesced buffer.
func appendFrame(dst []byte, f *frame) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = f.op
	binary.BigEndian.PutUint64(hdr[1:9], f.tag)
	binary.BigEndian.PutUint32(hdr[9:13], f.aux)
	binary.BigEndian.PutUint16(hdr[13:15], uint16(len(f.key)))
	binary.BigEndian.PutUint32(hdr[15:19], uint32(len(f.val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.key...)
	return append(dst, f.val...)
}

// readFrame reads and validates one frame from r into f. The key and
// value are freshly allocated (the caller owns them). A clean EOF at a
// frame boundary returns io.EOF; a torn frame returns
// io.ErrUnexpectedEOF; limit violations return the errFrame errors
// before any variable-length payload is read.
//
// The header and key are decoded in place from the reader's buffered
// window (Peek/Discard) rather than copied out through io.ReadFull:
// both fit any bufio.Reader (frameHeaderLen + maxKeyLen < the 4096-byte
// minimum buffer), and the in-place decode keeps the per-frame cost to
// the one allocation that must outlive the call — the key string on
// keyed frames, plus the caller-owned value bytes.
func readFrame(r *bufio.Reader, f *frame) error {
	hdr, err := r.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	f.op = hdr[0]
	f.tag = binary.BigEndian.Uint64(hdr[1:9])
	f.aux = binary.BigEndian.Uint32(hdr[9:13])
	klen := int(binary.BigEndian.Uint16(hdr[13:15]))
	vlen := int(binary.BigEndian.Uint32(hdr[15:19]))
	r.Discard(frameHeaderLen)
	if f.op < 0x80 {
		return errFrameOp
	}
	if klen > maxKeyLen {
		return errFrameKeyLen
	}
	if vlen > maxValueLen {
		return errFrameValueLen
	}
	f.key = ""
	f.val = nil
	if klen > 0 {
		kb, err := r.Peek(klen)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		f.key = string(kb)
		r.Discard(klen)
	}
	if vlen > 0 {
		f.val = make([]byte, vlen)
		if _, err := io.ReadFull(r, f.val); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// frameErrorf encodes an opErr response for tag.
func appendErrFrame(dst []byte, tag uint64, format string, args ...any) []byte {
	f := frame{op: opErr, tag: tag, val: []byte(fmt.Sprintf(format, args...))}
	return appendFrame(dst, &f)
}

// Versioned value payload — the val bytes of opPutV requests and
// opValueV/opStoredV responses:
//
//	version u64 | ttl u32 (remaining whole seconds, 0 = never) | data
//
// Carrying the TTL next to the version is what lets read repair and
// anti-entropy pushes preserve an expiring key's remaining lifetime
// instead of silently immortalizing it.
const verPayloadHeader = 12

var errVerPayload = errors.New("memkv: short versioned payload")

// appendVerPayload appends the versioned payload encoding to dst.
func appendVerPayload(dst []byte, version uint64, ttlSecs uint32, data []byte) []byte {
	var hdr [verPayloadHeader]byte
	binary.BigEndian.PutUint64(hdr[0:8], version)
	binary.BigEndian.PutUint32(hdr[8:12], ttlSecs)
	dst = append(dst, hdr[:]...)
	return append(dst, data...)
}

// decodeVerPayload splits a versioned payload. data aliases p.
func decodeVerPayload(p []byte) (version uint64, ttlSecs uint32, data []byte, err error) {
	if len(p) < verPayloadHeader {
		return 0, 0, nil, errVerPayload
	}
	return binary.BigEndian.Uint64(p[0:8]),
		binary.BigEndian.Uint32(p[8:12]),
		p[verPayloadHeader:], nil
}

// Scan entry packing — the val bytes of an opScanResp frame are a
// sequence of entries, each:
//
//	klen u16 | key | version u64 | flags u32 | ttl u32 | vlen u32 | value
//
// One frame carries a whole page, so the mux's one-response-per-tag
// demux discipline holds for scans too (no multi-frame streams to
// reassemble).
var errScanEntry = errors.New("memkv: malformed scan entry")

// appendScanEntry appends one packed entry to dst.
func appendScanEntry(dst []byte, e *ScanEntry) []byte {
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(e.Key)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, e.Key...)
	var meta [16]byte
	binary.BigEndian.PutUint64(meta[0:8], e.Version)
	binary.BigEndian.PutUint32(meta[8:12], e.Flags)
	binary.BigEndian.PutUint32(meta[12:16], e.TTLSecs)
	dst = append(dst, meta[:]...)
	var vlen [4]byte
	binary.BigEndian.PutUint32(vlen[:], uint32(len(e.Value)))
	dst = append(dst, vlen[:]...)
	return append(dst, e.Value...)
}

// decodeScanEntries unpacks a full opScanResp payload. Entry values are
// freshly allocated (they must outlive the frame buffer).
func decodeScanEntries(p []byte) ([]ScanEntry, error) {
	var out []ScanEntry
	for len(p) > 0 {
		if len(p) < 2 {
			return nil, errScanEntry
		}
		klen := int(binary.BigEndian.Uint16(p[0:2]))
		p = p[2:]
		if len(p) < klen+20 || klen > maxKeyLen {
			return nil, errScanEntry
		}
		e := ScanEntry{Key: string(p[:klen])}
		p = p[klen:]
		e.Version = binary.BigEndian.Uint64(p[0:8])
		e.Flags = binary.BigEndian.Uint32(p[8:12])
		e.TTLSecs = binary.BigEndian.Uint32(p[12:16])
		vlen := int(binary.BigEndian.Uint32(p[16:20]))
		p = p[20:]
		if vlen > maxValueLen || len(p) < vlen {
			return nil, errScanEntry
		}
		e.Value = append([]byte(nil), p[:vlen]...)
		p = p[vlen:]
		out = append(out, e)
	}
	return out, nil
}
