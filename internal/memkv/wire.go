package memkv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the memkv v2 framing layer: a fixed binary header plus
// key and value bytes, carrying a per-request u64 tag so many requests
// can share one connection and responses can return in any order. The
// v1 text protocol ties a connection to one in-flight request (the
// response is identified by position); v2 identifies responses by tag,
// which is what lets MuxClient multiplex thousands of outstanding
// requests over a single TCP connection and lets the server interleave
// delayed responses out of order.
//
// Frame layout (all integers big-endian):
//
//	op   u8   — operation / status code, always >= 0x80
//	tag  u64  — request identifier, echoed verbatim in the response
//	aux  u32  — op-specific: TTL seconds on set, flags on a value
//	klen u16  — key length (0 on responses), <= maxKeyLen
//	vlen u32  — value length, <= maxValueLen
//	key  [klen]byte
//	val  [vlen]byte
//
// Every op has the high bit set, so the first byte of a connection
// distinguishes v2 framing from the ASCII text protocol (whose commands
// start with a lowercase letter) and one listener serves both; see
// Server.serveConn. v2 deliberately drops the memcached "flags" field
// on set (aux carries the TTL instead); a value's flags default to 0
// when written via v2.
const (
	frameHeaderLen = 19

	// Request ops.
	opGet    = 0x81
	opSet    = 0x82
	opDelete = 0x83

	// Response ops.
	opValue    = 0xC1 // val = stored bytes, aux = flags
	opNotFound = 0xC2
	opStored   = 0xC3
	opDeleted  = 0xC4
	opErr      = 0xC5 // val = error message

	// opTimeout is an internal sentinel delivered to a waiter whose
	// request timed out; it never appears on the wire (no high bit).
	opTimeout = 0x01
)

// Frame decode errors. Truncated input surfaces as io.ErrUnexpectedEOF
// (or io.EOF at a frame boundary); these cover frames that violate the
// protocol's limits.
var (
	errFrameOp       = errors.New("memkv: frame op out of range")
	errFrameKeyLen   = errors.New("memkv: frame key too long")
	errFrameValueLen = errors.New("memkv: frame value too long")
)

// frame is one decoded v2 frame.
type frame struct {
	op  byte
	tag uint64
	aux uint32
	key string
	val []byte
}

// appendFrame appends f's encoding to dst and returns the extended
// slice — the writer-side primitive the mux clients and server batch
// through one coalesced buffer.
func appendFrame(dst []byte, f *frame) []byte {
	var hdr [frameHeaderLen]byte
	hdr[0] = f.op
	binary.BigEndian.PutUint64(hdr[1:9], f.tag)
	binary.BigEndian.PutUint32(hdr[9:13], f.aux)
	binary.BigEndian.PutUint16(hdr[13:15], uint16(len(f.key)))
	binary.BigEndian.PutUint32(hdr[15:19], uint32(len(f.val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.key...)
	return append(dst, f.val...)
}

// readFrame reads and validates one frame from r into f. The key and
// value are freshly allocated (the caller owns them). A clean EOF at a
// frame boundary returns io.EOF; a torn frame returns
// io.ErrUnexpectedEOF; limit violations return the errFrame errors
// before any variable-length payload is read.
//
// The header and key are decoded in place from the reader's buffered
// window (Peek/Discard) rather than copied out through io.ReadFull:
// both fit any bufio.Reader (frameHeaderLen + maxKeyLen < the 4096-byte
// minimum buffer), and the in-place decode keeps the per-frame cost to
// the one allocation that must outlive the call — the key string on
// keyed frames, plus the caller-owned value bytes.
func readFrame(r *bufio.Reader, f *frame) error {
	hdr, err := r.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	f.op = hdr[0]
	f.tag = binary.BigEndian.Uint64(hdr[1:9])
	f.aux = binary.BigEndian.Uint32(hdr[9:13])
	klen := int(binary.BigEndian.Uint16(hdr[13:15]))
	vlen := int(binary.BigEndian.Uint32(hdr[15:19]))
	r.Discard(frameHeaderLen)
	if f.op < 0x80 {
		return errFrameOp
	}
	if klen > maxKeyLen {
		return errFrameKeyLen
	}
	if vlen > maxValueLen {
		return errFrameValueLen
	}
	f.key = ""
	f.val = nil
	if klen > 0 {
		kb, err := r.Peek(klen)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		f.key = string(kb)
		r.Discard(klen)
	}
	if vlen > 0 {
		f.val = make([]byte, vlen)
		if _, err := io.ReadFull(r, f.val); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// frameErrorf encodes an opErr response for tag.
func appendErrFrame(dst []byte, tag uint64, format string, args ...any) []byte {
	f := frame{op: opErr, tag: tag, val: []byte(fmt.Sprintf(format, args...))}
	return appendFrame(dst, &f)
}
