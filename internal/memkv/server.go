// Package memkv implements a small in-memory key-value store speaking a
// subset of the memcached text protocol (get/set/delete), plus a pooled
// client and a replicated client built on the redundancy core.
//
// It serves two purposes in the reproduction:
//
//   - It is the live-system counterpart of the §2.3 memcached experiment:
//     the examples run real replicated reads against two memkv servers over
//     TCP and show exactly the effect the paper measured (sub-millisecond
//     service times leave little room for redundancy to help, unless a
//     server stalls).
//   - Its Server.Delay hook lets tests and examples inject controlled
//     latency spikes to demonstrate when redundancy DOES pay off.
//
// Protocol subset (memcached text protocol):
//
//	set <key> <flags> <exptime> <bytes>\r\n<data>\r\n  -> STORED\r\n
//	get <key>\r\n  -> VALUE <key> <flags> <bytes>\r\n<data>\r\nEND\r\n | END\r\n
//	delete <key>\r\n -> DELETED\r\n | NOT_FOUND\r\n
//	stats\r\n -> STAT <name> <value>\r\n ... END\r\n
//	quit\r\n
//
// exptime follows memcached's relative-seconds convention (0 = never).
package memkv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"redundancy/internal/core"
)

const (
	maxKeyLen   = 250
	maxValueLen = 8 << 20 // 8 MB, as memcached's default item limit order
	// maxScanLimit caps the entries one opScan request may ask for; the
	// per-page byte cap (scanMaxBytes) usually binds first.
	maxScanLimit = 4096
)

// Store is a sharded in-memory key-value map, safe for concurrent use.
//
// Every stored value carries a monotonically increasing version (the
// kvdb "ModifiedIndex" idiom): local writes draw fresh versions from the
// store's index, and replicated writes (PutVersion) apply only when
// strictly newer than what the store holds — last-writer-wins by
// version. Versions are what make redundant reads self-healing: a
// quorum read that observes two replicas at different versions knows
// which copy is stale and exactly what to push back.
type Store struct {
	// index is the store's version source. It is advanced past every
	// version the store witnesses (local or replicated), so a local
	// write always produces a version newer than anything stored. Fresh
	// versions are also floored at the wall clock in nanoseconds, which
	// keeps versions from independent stores and clients roughly
	// comparable — the LWW tiebreak of replicated writes stays sane even
	// when two writers never read each other.
	index  atomic.Uint64
	shards [shardCount]shard
	// watch fans mutations out to registered prefix watchers (watch.go).
	// Zero-valued and dormant until the first Watch call.
	watch watchRegistry
}

const shardCount = 32

type shard struct {
	mu sync.RWMutex
	m  map[string]item
}

type item struct {
	flags     uint32
	version   uint64
	data      []byte
	expiresAt time.Time // zero = never expires
	// exp is the item's active-expiry timer on the shared wheel (zero =
	// none armed). The sweeper callback deletes the item at its deadline
	// and emits an expire watch event, so expired-but-never-read items
	// stop pinning memory; lazy reap-on-access remains as a backstop for
	// the window between the deadline and the wheel tick.
	exp core.WheelTimer
}

// expireRec is the static-callback argument for active expiry: which
// store and key the timer concerns. The armed version rides in the
// callback's int64 slot, so a timer surviving its item's overwrite
// fires as a no-op instead of killing the successor.
type expireRec struct {
	s   *Store
	key string
}

// storeExpireFired is the shared wheel's expiry callback (static
// function + expireRec, the wheel's no-closure idiom).
func storeExpireFired(c any, i int64) {
	r := c.(*expireRec)
	r.s.expireFired(r.key, uint64(i))
}

// armExpiry schedules active expiry for (key, version) after d.
func (s *Store) armExpiry(key string, ver uint64, d time.Duration) core.WheelTimer {
	return core.SharedWheel().AfterFunc(d, storeExpireFired, &expireRec{s: s, key: key}, int64(ver))
}

// expireFired runs on the wheel goroutine at an item's expiry deadline.
// The version check makes stale timers harmless: an overwrite between
// arm and fire changed the version, so the timer does nothing. A timer
// that fired early — the wheel clamps deltas beyond its ~262s horizon —
// re-arms for the remainder instead of expiring the item prematurely.
func (s *Store) expireFired(key string, ver uint64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	it, ok := sh.m[key]
	if !ok || it.version != ver || it.expiresAt.IsZero() {
		sh.mu.Unlock()
		return
	}
	if left := time.Until(it.expiresAt); left > 0 {
		it.exp = s.armExpiry(key, ver, left)
		sh.m[key] = it
		sh.mu.Unlock()
		return
	}
	delete(sh.m, key)
	s.watch.notify(WatchEvent{Type: EventExpire, Key: key, Version: ver})
	sh.mu.Unlock()
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]item)
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	// FNV-1a inlined over the string: the hash.Hash32 form
	// (fnv.New32a + io.WriteString) heap-allocates the hash state on
	// every lookup because it escapes through the interface.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h%shardCount]
}

// tick returns a fresh version: strictly greater than every version the
// store has witnessed, and at least the current wall clock in
// nanoseconds.
func (s *Store) tick() uint64 {
	now := uint64(time.Now().UnixNano())
	for {
		last := s.index.Load()
		v := now
		if v <= last {
			v = last + 1
		}
		if s.index.CompareAndSwap(last, v) {
			return v
		}
	}
}

// witness advances the store's index to at least v, so local writes
// after a replicated write at v produce strictly newer versions.
func (s *Store) witness(v uint64) {
	for {
		last := s.index.Load()
		if last >= v || s.index.CompareAndSwap(last, v) {
			return
		}
	}
}

// Set stores value under key with opaque flags and no expiry.
func (s *Store) Set(key string, flags uint32, value []byte) {
	s.SetTTL(key, flags, value, 0)
}

// SetTTL stores value under key, expiring after ttl (0 = never). Expiry
// is active — a shared-wheel timer reaps the item at its deadline and
// notifies watchers — with lazy reap-on-access as the backstop. The
// write is assigned a fresh version from the store's index.
func (s *Store) SetTTL(key string, flags uint32, value []byte, ttl time.Duration) {
	var exp time.Time
	if ttl > 0 {
		exp = time.Now().Add(ttl)
	}
	ver := s.tick()
	sh := s.shardFor(key)
	sh.mu.Lock()
	if old, ok := sh.m[key]; ok {
		old.exp.Stop()
	}
	it := item{flags: flags, version: ver, data: append([]byte(nil), value...), expiresAt: exp}
	if ttl > 0 {
		it.exp = s.armExpiry(key, ver, ttl)
	}
	sh.m[key] = it
	s.watch.notify(WatchEvent{Type: EventPut, Key: key, Value: it.data, Version: ver, TTLSecs: ttlEventSecs(ttl)})
	sh.mu.Unlock()
}

// ttlEventSecs renders a write's TTL for its watch event: whole seconds
// rounded up (0 = never). This is the TTL as written, not a remaining
// TTL, so rounding up cannot compound — unlike the read path, which
// floors (see GetVersion).
func ttlEventSecs(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	return uint32((ttl + time.Second - 1) / time.Second)
}

// PutVersion applies a replicated write carrying an explicit version: the
// value is stored only if version is strictly newer than the stored
// version (or the key is absent) — last-writer-wins, so replaying a hint
// or pushing a repair can never clobber data a replica learned later. It
// returns the version now current for the key and whether this write
// applied. The store's index is advanced past version either way.
func (s *Store) PutVersion(key string, flags uint32, value []byte, ttl time.Duration, version uint64) (current uint64, applied bool) {
	s.witness(version)
	var exp time.Time
	if ttl > 0 {
		exp = time.Now().Add(ttl)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if ok && !cur.expiresAt.IsZero() && time.Now().After(cur.expiresAt) {
		ok = false
	}
	if ok && cur.version >= version {
		sh.mu.Unlock()
		return cur.version, false
	}
	cur.exp.Stop() // zero handle when absent: no-op
	it := item{flags: flags, version: version, data: append([]byte(nil), value...), expiresAt: exp}
	if ttl > 0 {
		it.exp = s.armExpiry(key, version, ttl)
	}
	sh.m[key] = it
	s.watch.notify(WatchEvent{Type: EventPut, Key: key, Value: it.data, Version: version, TTLSecs: ttlEventSecs(ttl)})
	sh.mu.Unlock()
	return version, true
}

// CompareAndSwap stores value under key only if the stored version
// equals expect — expect 0 means "create if absent" (an expired or
// deleted key counts as absent). On success it mints and returns a
// fresh version with applied true; on conflict it returns the version
// currently held (0 if absent) with applied false. The conditional is
// atomic under the key's shard lock, so of N racing writers carrying
// the same expect exactly one wins; the rest observe the winner's
// version and can retry from it.
func (s *Store) CompareAndSwap(key string, flags uint32, value []byte, ttl time.Duration, expect uint64) (current uint64, applied bool) {
	var exp time.Time
	if ttl > 0 {
		exp = time.Now().Add(ttl)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if ok && !cur.expiresAt.IsZero() && time.Now().After(cur.expiresAt) {
		ok = false
	}
	var curVer uint64
	if ok {
		curVer = cur.version
	}
	if curVer != expect {
		sh.mu.Unlock()
		return curVer, false
	}
	ver := s.tick()
	cur.exp.Stop()
	it := item{flags: flags, version: ver, data: append([]byte(nil), value...), expiresAt: exp}
	if ttl > 0 {
		it.exp = s.armExpiry(key, ver, ttl)
	}
	sh.m[key] = it
	s.watch.notify(WatchEvent{Type: EventPut, Key: key, Value: it.data, Version: ver, TTLSecs: ttlEventSecs(ttl)})
	sh.mu.Unlock()
	return ver, true
}

// GetVersion is Get plus the stored version and the remaining TTL in
// whole seconds, floored (0 = no expiry) — the read-side surface
// replica convergence needs: a repair or migration push preserves both
// the version and the expiry of what it copies.
//
// The floor matters: this value is re-applied relative-to-now at every
// repair, hint-replay, and migration hop, so rounding it UP (as this
// function once did, with a 1s minimum) let each hop extend the key's
// life — a key bouncing through repair often enough never expired.
// Flooring makes every hop shrink the remaining TTL or keep it, never
// grow it; the last sub-second of a key's life is forfeited instead
// (an item with <1s remaining reads as absent — the sweeper, not this
// read, reaps it at the true deadline).
func (s *Store) GetVersion(key string) (value []byte, flags uint32, version uint64, ttlSecs uint32, ok bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	it, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, 0, 0, 0, false
	}
	if !it.expiresAt.IsZero() {
		left := time.Until(it.expiresAt)
		if left <= 0 {
			s.reapExpired(key)
			return nil, 0, 0, 0, false
		}
		if left < time.Second {
			// Dying in under a second: absent to versioned readers, but
			// not reaped — the sweeper owns the true deadline.
			return nil, 0, 0, 0, false
		}
		ttlSecs = uint32(left / time.Second)
	}
	return it.data, it.flags, it.version, ttlSecs, true
}

// reapExpired removes key if it is (still) past its deadline, emitting
// the expire watch event — the lazy-expiry backstop shared by the read
// paths. Re-checks under the write lock: the item may have been
// replaced with a fresh value since the caller's read.
func (s *Store) reapExpired(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if cur, still := sh.m[key]; still && !cur.expiresAt.IsZero() && time.Now().After(cur.expiresAt) {
		delete(sh.m, key)
		cur.exp.Stop()
		s.watch.notify(WatchEvent{Type: EventExpire, Key: key, Version: cur.version})
	}
	sh.mu.Unlock()
}

// ScanEntry is one key's snapshot in a Scan page.
type ScanEntry struct {
	Key     string
	Flags   uint32
	Version uint64
	// TTLSecs is the remaining TTL in whole seconds (0 = no expiry).
	TTLSecs uint32
	Value   []byte
}

// scanMaxBytes caps the value bytes packed into one scan page, so a page
// of large values cannot balloon toward the frame size limit.
const scanMaxBytes = 1 << 20

// Scan returns up to limit live entries with keys strictly greater than
// after, in ascending key order, and whether more remain. It is the
// anti-entropy enumeration primitive: a migrator pages through a shard's
// keyspace with a resumable cursor (the last key of the previous page)
// while writes proceed. A page also ends early once its values exceed
// scanMaxBytes (always returning at least one entry). Entries are
// point-in-time per key, not a consistent snapshot of the store.
//
// The sweep is bounded: a size-limit max-heap keeps only the limit
// smallest candidate keys, so a page allocates O(limit) and compares
// O(n) — not the copy-every-key-and-sort O(n log n) per page that made
// a full enumeration of a large store quadratic.
func (s *Store) Scan(after string, limit int) (entries []ScanEntry, more bool) {
	if limit < 1 {
		limit = 1
	}
	for {
		keys, overflow := s.scanKeys(after, limit)
		if len(keys) == 0 {
			return entries, false
		}
		bytes := 0
		for _, k := range keys {
			val, flags, ver, ttl, ok := s.GetVersion(k)
			if !ok {
				continue // expired or deleted since the key sweep
			}
			if len(entries) > 0 && bytes+len(val) > scanMaxBytes {
				return entries, true
			}
			entries = append(entries, ScanEntry{Key: k, Flags: flags, Version: ver, TTLSecs: ttl, Value: val})
			bytes += len(val)
		}
		if len(entries) > 0 {
			return entries, overflow
		}
		// Every selected key died between sweep and fetch. Cursor loops
		// treat an empty page as end-of-keyspace, so an empty page with
		// more=true must never escape: advance the cursor past the dead
		// keys and re-sweep.
		if !overflow {
			return nil, false
		}
		after = keys[len(keys)-1]
	}
}

// scanKeys collects the limit smallest keys strictly greater than after
// across every shard, returning them in ascending order plus whether
// any candidate was left out (more pages exist). It maintains a bounded
// max-heap: a candidate either displaces the current largest kept key
// or is discarded, so cost is O(n) comparisons and O(limit) space per
// page regardless of store size.
func (s *Store) scanKeys(after string, limit int) (keys []string, overflow bool) {
	h := make([]string, 0, limit)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			if k <= after {
				continue
			}
			if len(h) < limit {
				h = append(h, k)
				scanHeapUp(h, len(h)-1)
			} else if k < h[0] {
				overflow = true
				h[0] = k
				scanHeapDown(h)
			} else {
				overflow = true
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(h)
	return h, overflow
}

// scanHeapUp restores the max-heap property after appending at i.
func scanHeapUp(h []string, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// scanHeapDown restores the max-heap property after replacing the root.
func scanHeapDown(h []string) {
	i, n := 0, len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && h[r] > h[l] {
			big = r
		}
		if h[big] <= h[i] {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// Get returns the value and flags for key. Expired items are absent (and
// reaped on the way).
func (s *Store) Get(key string) (value []byte, flags uint32, ok bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	it, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	if !it.expiresAt.IsZero() && time.Now().After(it.expiresAt) {
		s.reapExpired(key)
		return nil, 0, false
	}
	return it.data, it.flags, true
}

// Delete removes key, reporting whether a live value was present. An
// expired-but-unreaped item is reaped (with an expire event, not a
// delete event) and reported absent.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	it, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	delete(sh.m, key)
	it.exp.Stop()
	if !it.expiresAt.IsZero() && time.Now().After(it.expiresAt) {
		s.watch.notify(WatchEvent{Type: EventExpire, Key: key, Version: it.version})
		sh.mu.Unlock()
		return false
	}
	s.watch.notify(WatchEvent{Type: EventDelete, Key: key, Version: it.version})
	sh.mu.Unlock()
	return true
}

// Len returns the total number of stored keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Server serves the memcached text protocol over TCP.
type Server struct {
	// Delay, if non-nil, is called once per request and its return value
	// is slept before responding — a hook for injecting service-time
	// distributions in tests and demos. Set it before Listen: connection
	// handlers read it without synchronization.
	Delay func() time.Duration

	store *Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Protocol counters, exposed by the stats command.
	cmdGet    atomic.Int64
	cmdSet    atomic.Int64
	cmdScan   atomic.Int64
	getHits   atomic.Int64
	getMisses atomic.Int64
	// stalePuts counts versioned puts that did not apply because the
	// store already held a newer version — replayed hints and
	// anti-entropy pushes that lost the last-writer-wins race. A healthy
	// converged system shows a few of these after every repair storm;
	// a growing count under steady state means writers are clobbering
	// each other.
	stalePuts atomic.Int64
	// aborted counts requests abandoned mid-delay because the client went
	// away — the server-side half of copy cancellation: a cancelled
	// redundant read closes its connection, and the server stops burning
	// capacity on an answer nobody will read.
	aborted atomic.Int64
	// accepted counts connections accepted over the server's lifetime —
	// the transport-cost metric the v1-vs-v2 ablation reports (v1 pays a
	// connection per in-flight request, v2 one per client).
	accepted atomic.Int64
}

// AcceptedConns returns the total number of connections the server has
// accepted since Listen.
func (s *Server) AcceptedConns() int64 { return s.accepted.Load() }

// NewServer creates a server around the given store (a fresh one if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Store returns the server's backing store.
func (s *Server) Store() *Store { return s.store }

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving
// in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("memkv: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Out of file descriptors — the very wall the v1 protocol's
			// connection-per-request design runs into under load. Back
			// off and keep accepting: connections in flight will close
			// and free fds; dying here would wedge the listener forever.
			if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
				time.Sleep(backoff)
				if backoff < time.Second {
					backoff *= 2
				}
				continue
			}
			return // listener closed
		}
		backoff = 5 * time.Millisecond
		s.accepted.Add(1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every open connection, and waits for
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// request is one parsed protocol command, produced by the connection's
// reader goroutine.
type request struct {
	fields []string
	// data, flags, and exptime are the set command's fully parsed
	// arguments; zero for every other command.
	data    []byte
	flags   uint32
	exptime int64
	// bad, when non-empty, is a protocol error to report instead of
	// executing the command.
	bad string
}

// serveConn sniffs the connection's first byte to pick a protocol —
// every v2 frame op has the high bit set, while text-protocol commands
// are ASCII — then hands off to the v2 mux loop (server_mux.go) or the
// v1 text loop below. One listener serves both protocols, so v1 and v2
// clients mix freely against the same store.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	if first[0] >= 0x80 {
		s.serveMux(conn, r)
		return
	}
	s.serveText(conn, r)
}

// serveText splits each v1 connection between a reader goroutine
// (parses requests, detects the peer going away) and this handler loop
// (executes them, including the Delay hook). The split is what makes
// server-side work cancellable: a redundant client cancels a losing
// copy by closing its connection, the blocked reader sees the close
// immediately, and the handler abandons any in-progress delay instead
// of sleeping it out and writing an answer nobody will read.
func (s *Server) serveText(conn net.Conn, r *bufio.Reader) {
	handlerGone := make(chan struct{})
	defer close(handlerGone)
	readerGone := make(chan struct{})
	reqCh := make(chan request)
	go s.readRequests(r, reqCh, readerGone, handlerGone)

	w := bufio.NewWriter(conn)
	for {
		var req request
		// An unbuffered reqCh means a ready receive implies a live
		// sender, so readerGone and a pending request are never ready
		// together: no request is lost by selecting on both.
		select {
		case req = <-reqCh:
		case <-readerGone:
			return
		}
		if s.Delay != nil {
			if d := s.Delay(); d > 0 && !s.sleep(d, readerGone) {
				s.aborted.Add(1)
				return
			}
		}
		switch req.fields[0] {
		case "get", "gets":
			if req.bad != "" {
				writeClientError(w, req.bad)
				break
			}
			s.cmdGet.Add(1)
			for _, key := range req.fields[1:] {
				if val, flags, ok := s.store.Get(key); ok {
					s.getHits.Add(1)
					fmt.Fprintf(w, "VALUE %s %d %d\r\n", key, flags, len(val))
					w.Write(val)
					w.WriteString("\r\n")
				} else {
					s.getMisses.Add(1)
				}
			}
			w.WriteString("END\r\n")
		case "set":
			if req.bad != "" {
				writeClientError(w, req.bad)
				break
			}
			s.cmdSet.Add(1)
			s.store.SetTTL(req.fields[1], req.flags, req.data, time.Duration(req.exptime)*time.Second)
			w.WriteString("STORED\r\n")
		case "delete":
			if req.bad != "" {
				writeClientError(w, req.bad)
				break
			}
			if s.store.Delete(req.fields[1]) {
				w.WriteString("DELETED\r\n")
			} else {
				w.WriteString("NOT_FOUND\r\n")
			}
		case "stats":
			fmt.Fprintf(w, "STAT cmd_get %d\r\n", s.cmdGet.Load())
			fmt.Fprintf(w, "STAT cmd_set %d\r\n", s.cmdSet.Load())
			fmt.Fprintf(w, "STAT cmd_scan %d\r\n", s.cmdScan.Load())
			fmt.Fprintf(w, "STAT get_hits %d\r\n", s.getHits.Load())
			fmt.Fprintf(w, "STAT get_misses %d\r\n", s.getMisses.Load())
			fmt.Fprintf(w, "STAT curr_items %d\r\n", s.store.Len())
			fmt.Fprintf(w, "STAT aborted_ops %d\r\n", s.aborted.Load())
			fmt.Fprintf(w, "STAT stale_puts %d\r\n", s.stalePuts.Load())
			fmt.Fprintf(w, "STAT watchers %d\r\n", s.store.Watchers())
			fmt.Fprintf(w, "STAT watch_disconnects %d\r\n", s.store.WatchDisconnects())
			w.WriteString("END\r\n")
		case "quit":
			w.Flush()
			return
		default:
			w.WriteString("ERROR\r\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// sleep waits out the Delay hook's duration, aborting early (returning
// false) if the connection's reader goroutine dies — the client is gone,
// so the pending response is worthless.
func (s *Server) sleep(d time.Duration, abort <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-abort:
		return false
	}
}

// readRequests parses commands off the connection and delivers them to
// the handler. It closes readerGone — aborting any delayed request in
// the handler — as soon as a read fails, which for an idle-then-closed
// connection is the moment the peer disconnects, because the reader
// always has a Read pending for the next command.
func (s *Server) readRequests(r *bufio.Reader, reqCh chan<- request, readerGone chan struct{}, handlerGone <-chan struct{}) {
	defer close(readerGone)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		req := request{fields: fields}
		switch fields[0] {
		case "get", "gets":
			if len(fields) < 2 {
				req.bad = "get requires a key"
			}
		case "set":
			var readErr error
			req, readErr = parseSet(r, fields)
			if readErr != nil {
				return
			}
		case "delete":
			if len(fields) != 2 {
				req.bad = "delete requires exactly one key"
			}
		}
		select {
		case reqCh <- req:
		case <-handlerGone:
			return
		}
	}
}

// parseSet parses "set <key> <flags> <exptime> <bytes>" and, when the
// command line is well-formed, its data block. A malformed command line
// is reported without consuming a data block (matching memcached and the
// previous in-line parser); a short or unterminated data block is an IO
// error that closes the connection.
func parseSet(r *bufio.Reader, fields []string) (request, error) {
	req := request{fields: fields}
	if len(fields) != 5 {
		req.bad = "set requires 4 arguments"
		return req, nil
	}
	if len(fields[1]) > maxKeyLen {
		req.bad = "key too long"
		return req, nil
	}
	flags, err1 := strconv.ParseUint(fields[2], 10, 32)
	exptime, err2 := strconv.ParseInt(fields[3], 10, 64) // relative seconds, 0 = never
	n, err3 := strconv.ParseInt(fields[4], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || exptime < 0 || n < 0 || n > maxValueLen {
		req.bad = "bad command line format"
		return req, nil
	}
	data := make([]byte, n+2)
	if _, err := io.ReadFull(r, data); err != nil {
		return req, err
	}
	if string(data[n:]) != "\r\n" {
		req.bad = "bad data chunk"
		return req, nil
	}
	req.data = data[:n]
	req.flags = uint32(flags)
	req.exptime = exptime
	return req, nil
}

func writeClientError(w *bufio.Writer, msg string) {
	fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", msg)
}

// readLine reads a \r\n- (or \n-) terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
