package memkv

import (
	"testing"
	"time"
)

// The TTL-drift bug family: GetVersion used to round the remaining TTL
// UP to whole seconds (minimum 1), and every repair/migration hop
// re-applied that rounded value relative to its own clock — so a key
// bouncing between replicas gained up to a second of life per hop and,
// hopped often enough, never expired. These tests pin the fixed
// contract; both fail against the pre-fix behavior.

// GetVersion floors the remaining TTL and reports a key in its final
// sub-second of life as absent (without reaping it — the sweeper owns
// the true deadline).
func TestGetVersionFloorsRemainingTTL(t *testing.T) {
	s := NewStore()
	s.SetTTL("f", 0, []byte("v"), 2*time.Second)

	// Immediately after the write ~2s remain; the floor may legally
	// report 1 (1.999…s → 1) but never 2-rounded-up-from-less, and never
	// more than 2.
	_, _, _, ttlSecs, ok := s.GetVersion("f")
	if !ok || ttlSecs < 1 || ttlSecs > 2 {
		t.Fatalf("fresh key: (ttl=%d, ok=%v), want 1..2", ttlSecs, ok)
	}

	// Inside the final second the key reads as absent to versioned
	// readers — the value a repair hop would copy is 0, not a rounded-up
	// 1 that would extend its life.
	time.Sleep(1300 * time.Millisecond)
	if _, _, _, ttlSecs, ok := s.GetVersion("f"); ok {
		t.Fatalf("key with <1s left: (ttl=%d, ok=%v), want absent", ttlSecs, ok)
	}
	// But it is not reaped early: the plain read still sees it until the
	// true deadline.
	if _, _, ok := s.Get("f"); !ok {
		t.Fatal("key reaped before its deadline by the versioned read")
	}
}

// A key relayed through N repair-style hops — read the remaining TTL
// off one replica, re-apply it relative-to-now at the next, as hint
// replay, read repair, and migration all do — must still expire within
// the original TTL plus one second of wire rounding. Under the pre-fix
// round-up this loop extended the deadline on every hop and the key
// outlived the bound several times over.
func TestTTLRepairHopsDoNotExtendLifetime(t *testing.T) {
	const ttl = 2 * time.Second
	// Original TTL + 1s wire round-up + scheduling slack.
	bound := ttl + time.Second + 500*time.Millisecond

	cur := NewStore()
	cur.SetTTL("hop", 0, []byte("v"), ttl)
	start := time.Now()

	hops := 0
	for {
		time.Sleep(250 * time.Millisecond)
		val, flags, ver, ttlSecs, ok := cur.GetVersion("hop")
		if !ok {
			break // expired (or in its final sub-second): the hops are over
		}
		if time.Since(start) > bound {
			t.Fatalf("key still alive after %v and %d hops, want dead within %v",
				time.Since(start), hops, bound)
		}
		// A fresh replica receives the copy, exactly as a replayed hint
		// or migration put would install it.
		next := NewStore()
		if _, applied := next.PutVersion("hop", flags, val, time.Duration(ttlSecs)*time.Second, ver); !applied {
			t.Fatalf("hop %d: put not applied on fresh store", hops)
		}
		cur = next
		hops++
	}
	if elapsed := time.Since(start); elapsed > bound {
		t.Fatalf("key survived %v through %d hops, want <= %v", elapsed, hops, bound)
	}
	if hops == 0 {
		t.Fatal("key died before a single hop; the relay never ran")
	}
}
