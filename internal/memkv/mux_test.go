package memkv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func startMux(t *testing.T) (*Server, *MuxClient) {
	t.Helper()
	srv, addr := startServer(t)
	cl := NewMuxClient(addr, 5*time.Second)
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestMuxRoundTrip(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()
	if err := cl.Set(ctx, "alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("one")) {
		t.Fatalf("got %q", got)
	}
	if _, err := cl.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	if err := cl.Delete(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(ctx, "alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	if _, err := cl.Get(ctx, "alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v, want ErrNotFound", err)
	}
}

func TestMuxSetTTLExpires(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()
	if err := cl.SetTTL(ctx, "ephemeral", []byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "ephemeral"); err != nil {
		t.Fatal(err)
	}
}

// TestMuxSharesOneConnection: many concurrent requests must not open
// more sockets than the client's stripe count — the whole point of
// multiplexing.
func TestMuxSharesOneConnection(t *testing.T) {
	srv, addr := startServer(t)
	cl := NewMuxClient(addr, 5*time.Second)
	defer cl.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			if err := cl.Set(ctx, key, []byte(key)); err != nil {
				t.Error(err)
				return
			}
			if v, err := cl.Get(ctx, key); err != nil || string(v) != key {
				t.Errorf("get %s = %q, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	srv.mu.Lock()
	open := len(srv.conns)
	srv.mu.Unlock()
	if open != 1 {
		t.Fatalf("server sees %d connections, want 1", open)
	}
}

// TestMuxOutOfOrderResponses: a delayed request must not block later
// requests on the same connection (no head-of-line blocking).
func TestMuxOutOfOrderResponses(t *testing.T) {
	var delayed atomic.Int64
	srv, addr := startServerDelay(t, func() time.Duration {
		if delayed.Add(1) == 1 {
			return 300 * time.Millisecond
		}
		return 0
	})
	_ = srv
	cl := NewMuxClient(addr, 10*time.Second)
	defer cl.Close()
	ctx := context.Background()

	slowDone := make(chan time.Time, 1)
	go func() {
		cl.Get(ctx, "slow")
		slowDone <- time.Now()
	}()
	// Give the slow request time to hit the server's Delay hook first.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if _, err := cl.Get(ctx, "fast"); err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	fastAt := time.Now()
	if d := fastAt.Sub(start); d > 200*time.Millisecond {
		t.Fatalf("fast request took %v behind a delayed one: head-of-line blocked", d)
	}
	slowAt := <-slowDone
	if !slowAt.After(fastAt) {
		t.Fatal("slow response did not arrive after fast one")
	}
}

// TestMuxCancelMidFlight: cancelling a request abandons its tag — the
// caller returns promptly with ctx.Err(), the connection survives, and
// the late response is discarded, not misdelivered.
func TestMuxCancelMidFlight(t *testing.T) {
	srv, addr := startServerDelay(t, func() time.Duration { return 200 * time.Millisecond })
	cl := NewMuxClient(addr, 10*time.Second)
	defer cl.Close()

	if err := func() error {
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(20 * time.Millisecond); cancel() }()
		defer cancel()
		_, err := cl.Get(ctx, "victim")
		return err
	}(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled get: %v, want context.Canceled", err)
	}

	// The connection must survive: the next request reuses it and
	// succeeds (the discarded late response must not corrupt demuxing).
	if _, err := cl.Get(context.Background(), "after"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after cancel: %v, want ErrNotFound", err)
	}
	srv.mu.Lock()
	open := len(srv.conns)
	srv.mu.Unlock()
	if open != 1 {
		t.Fatalf("server sees %d connections after cancel, want 1 (conn must survive)", open)
	}
}

// TestMuxTimeout: a per-request timeout abandons the tag the same way —
// typed error, surviving connection.
func TestMuxTimeout(t *testing.T) {
	var slow atomic.Bool
	slow.Store(true)
	_, addr := startServerDelay(t, func() time.Duration {
		if slow.Load() {
			return 500 * time.Millisecond
		}
		return 0
	})
	cl := NewMuxClient(addr, 50*time.Millisecond)
	defer cl.Close()
	start := time.Now()
	_, err := cl.Get(context.Background(), "slow")
	if !errors.Is(err, ErrMuxTimeout) {
		t.Fatalf("err = %v, want ErrMuxTimeout", err)
	}
	if el := time.Since(start); el > 400*time.Millisecond {
		t.Fatalf("timeout returned after %v, want ~50ms", el)
	}
	slow.Store(false)
	time.Sleep(600 * time.Millisecond) // let the abandoned response arrive and be discarded
	if _, err := cl.Get(context.Background(), "fast"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after timeout: %v, want ErrNotFound (conn should survive)", err)
	}
}

// TestMuxServerDisconnectFailsPending: killing the server mid-batch
// fails every pending waiter with an error wrapping ErrMuxConnLost.
func TestMuxServerDisconnectFailsPending(t *testing.T) {
	srv, addr := startServerDelay(t, func() time.Duration { return 5 * time.Second })
	cl := NewMuxClient(addr, 30*time.Second)
	defer cl.Close()
	const n = 16
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := cl.Get(context.Background(), fmt.Sprintf("k%d", i))
			errc <- err
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let all requests reach the server
	srv.Close()
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrMuxConnLost) {
				t.Fatalf("pending request failed with %v, want ErrMuxConnLost", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending request did not fail after server close")
		}
	}
}

// TestMuxRedialsAfterConnLoss: the stripe redials transparently on the
// next request after its connection died.
func TestMuxRedialsAfterConnLoss(t *testing.T) {
	srv, addr := startServer(t)
	cl := NewMuxClient(addr, 5*time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Kill the server's side of the connection; the client's reader fails.
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := cl.Get(ctx, "k")
		if err == nil && string(v) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client did not redial: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMuxGetBatchPutBatch(t *testing.T) {
	_, cl := startMux(t)
	ctx := context.Background()
	const n = 100
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("bk%d", i)
		vals[i] = []byte(fmt.Sprintf("bv%d", i))
	}
	for i, err := range cl.PutBatch(ctx, keys, vals) {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Read the n stored keys plus n missing ones in one round.
	allKeys := append(append([]string(nil), keys...), make([]string, n)...)
	for i := 0; i < n; i++ {
		allKeys[n+i] = fmt.Sprintf("absent%d", i)
	}
	got, errs := cl.GetBatch(ctx, allKeys)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("get %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("get %d = %q, want %q", i, got[i], vals[i])
		}
	}
	for i := n; i < 2*n; i++ {
		if !errors.Is(errs[i], ErrNotFound) {
			t.Fatalf("absent key %d: %v, want ErrNotFound", i, errs[i])
		}
	}
}

// TestMuxMixedProtocols: a v1 text client and a v2 mux client share one
// listener and one store.
func TestMuxMixedProtocols(t *testing.T) {
	_, addr := startServer(t)
	v1 := NewClient(addr, 2*time.Second)
	defer v1.Close()
	v2 := NewMuxClient(addr, 2*time.Second)
	defer v2.Close()
	ctx := context.Background()
	if err := v1.Set(ctx, "from-v1", []byte("text")); err != nil {
		t.Fatal(err)
	}
	if err := v2.Set(ctx, "from-v2", []byte("framed")); err != nil {
		t.Fatal(err)
	}
	if v, err := v2.Get(ctx, "from-v1"); err != nil || string(v) != "text" {
		t.Fatalf("v2 reads v1 write: %q, %v", v, err)
	}
	if v, err := v1.Get(ctx, "from-v2"); err != nil || string(v) != "framed" {
		t.Fatalf("v1 reads v2 write: %q, %v", v, err)
	}
}

// TestMuxConcurrentStorm: a storm of concurrent mixed operations with
// cancellations over one connection, for the race detector.
func TestMuxConcurrentStorm(t *testing.T) {
	_, addr := startServerDelay(t, func() time.Duration { return time.Millisecond })
	cl := NewMuxClient(addr, 10*time.Second)
	defer cl.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("s%d-%d", g, i)
				ctx := context.Background()
				if i%5 == 0 {
					c, cancel := context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
					cl.Get(c, key) // outcome irrelevant; must not race or misdeliver
					cancel()
					continue
				}
				if err := cl.Set(ctx, key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				v, err := cl.Get(ctx, key)
				if err != nil || string(v) != key {
					t.Errorf("get %s = %q, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedClientWithMuxBackends: the sharded store accepts v2
// backends and batches reads/writes through the ring.
func TestShardedClientWithMuxBackends(t *testing.T) {
	backends := make([]Backend, 3)
	for i := range backends {
		_, addr := startServer(t)
		backends[i] = NewMuxClient(addr, 5*time.Second)
	}
	sc := NewShardedClient(ShardedConfig{Replication: 2}, backends...)
	defer sc.Close()
	ctx := context.Background()
	const n = 60
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk%d", i)
		vals[i] = []byte(fmt.Sprintf("mv%d", i))
	}
	perr, err := sc.PutBatch(ctx, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range perr {
		if e != nil {
			t.Fatalf("put %d: %v", i, e)
		}
	}
	res, err := sc.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("get %d: %v", i, r.Err)
		}
		if !bytes.Equal(r.Result.Value, vals[i]) {
			t.Fatalf("get %d = %q, want %q", i, r.Result.Value, vals[i])
		}
	}
}

// TestMuxV2DelayedAbortCounts: a v2 connection closing with requests
// parked on the wheel counts them as aborted when they fire.
func TestMuxV2DelayedAbortCounts(t *testing.T) {
	srv, addr := startServerDelay(t, func() time.Duration { return 150 * time.Millisecond })
	cl := NewMuxClient(addr, 10*time.Second)
	go cl.Get(context.Background(), "parked")
	time.Sleep(50 * time.Millisecond) // request reaches the server and parks
	cl.Close()                        // client connection drops
	deadline := time.Now().Add(3 * time.Second)
	for srv.aborted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked request was not counted as aborted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
