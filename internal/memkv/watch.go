package memkv

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the store-side watch registry: long-lived prefix
// subscriptions over a Store's mutations — the portworx-kvdb watch
// idiom rebuilt on the versioned store. Every mutation (put, versioned
// put, CAS, delete, and expiry — lazy or sweeper-driven) emits one
// WatchEvent to every watcher whose prefix matches, under the same
// shard lock that applied the mutation, so a single key's events are
// delivered in version order.
//
// Watchers are deliberately cheap and deliberately bounded: each one is
// a buffered channel, delivery is a non-blocking send, and a watcher
// whose buffer is full when an event arrives is disconnected on the
// spot (ErrSlowWatcher) rather than allowed to backpressure writers or
// pin unbounded memory. Streams have no history: a watcher sees events
// from registration onward, and a disconnected watcher that
// resubscribes has missed whatever happened in between. The redundancy
// layer (ShardedClient.WatchPrefix) papers over exactly that gap the
// same way redundant reads paper over a slow replica: by holding a
// subscription on every replica and deduplicating.

// EventType classifies a WatchEvent.
type EventType uint8

const (
	// EventPut is a value installed by Set/SetTTL, an applied
	// PutVersion, or a winning CompareAndSwap.
	EventPut EventType = 1
	// EventDelete is an explicit Delete of a live key.
	EventDelete EventType = 2
	// EventExpire is a TTL expiry, whether detected by the active
	// sweeper or reaped lazily on access.
	EventExpire EventType = 3
)

func (t EventType) String() string {
	switch t {
	case EventPut:
		return "put"
	case EventDelete:
		return "delete"
	case EventExpire:
		return "expire"
	default:
		return "unknown"
	}
}

// final reports whether the event ends a value's life (delete/expire).
// Event identity for cross-replica dedup is (key, version, final): a
// put and the delete/expire of the same stored version share a version
// but differ in finality.
func (t EventType) final() bool { return t != EventPut }

// WatchEvent is one store mutation as seen by a watcher.
//
// Value aliases the stored bytes for puts (nil for delete/expire);
// watchers must not mutate it. Version is the stored version the event
// concerns: the new version for a put, the dying value's version for a
// delete or expiry — so the same logical event carries the same
// version on every replica, which is what makes redundant watches
// deduplicable.
type WatchEvent struct {
	Type    EventType
	Key     string
	Value   []byte
	Version uint64
	// TTLSecs is the remaining whole-second TTL of a put (0 = never);
	// always 0 for delete/expire.
	TTLSecs uint32
}

// ErrSlowWatcher reports that a watcher was disconnected because its
// event buffer was full when an event arrived. The stream is closed;
// events between the overflow and any resubscription are lost.
var ErrSlowWatcher = errors.New("memkv: watcher too slow, disconnected")

// DefaultWatchBuffer is the per-watcher event buffer when the caller
// asks for none (or a non-positive size).
const DefaultWatchBuffer = 256

// maxWatchBuffer caps what a (possibly remote) caller may request, so a
// hostile opWatch cannot make the server allocate an arbitrarily large
// channel.
const maxWatchBuffer = 1 << 16

// StoreWatch is one registered prefix watcher. Consume Events until it
// closes; Err then reports why (nil after a caller Close, ErrSlowWatcher
// after an overflow disconnect).
type StoreWatch struct {
	reg    *watchRegistry
	id     uint64
	prefix string

	mu     sync.Mutex
	closed bool
	err    error
	ch     chan WatchEvent
}

// Events returns the watcher's event stream. It is closed when the
// watcher ends; Err reports the reason.
func (w *StoreWatch) Events() <-chan WatchEvent { return w.ch }

// Prefix returns the watched key prefix ("" = every key).
func (w *StoreWatch) Prefix() string { return w.prefix }

// Err returns why the stream ended: nil while live or after a caller
// Close, ErrSlowWatcher after an overflow disconnect.
func (w *StoreWatch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close ends the watch and closes its Events channel (idempotent).
func (w *StoreWatch) Close() { w.closeWith(nil) }

// closeWith ends the watch with the given reason, reporting whether
// this call was the one that closed it. Must not be called while
// holding the registry lock (it unregisters).
func (w *StoreWatch) closeWith(err error) bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return false
	}
	w.closed = true
	w.err = err
	close(w.ch)
	w.mu.Unlock()
	w.reg.unregister(w.id)
	return true
}

// send delivers one event without blocking. A full buffer disconnects
// the watcher (slow-consumer policy): the channel is closed under the
// watcher lock — no concurrent send can race the close, because every
// send holds the same lock — and the registry entry is removed
// asynchronously (send runs under the registry read lock).
func (w *StoreWatch) send(ev WatchEvent) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	select {
	case w.ch <- ev:
		w.mu.Unlock()
	default:
		w.closed = true
		w.err = ErrSlowWatcher
		close(w.ch)
		w.mu.Unlock()
		go w.reg.unregister(w.id)
	}
}

// watchRegistry holds a store's watchers. active is the write hot
// path's fast skip: with no watchers registered, notify is one atomic
// load.
type watchRegistry struct {
	active atomic.Bool
	mu     sync.RWMutex
	nextID uint64
	ws     map[uint64]*StoreWatch
	// disconnects counts slow-consumer disconnects, for stats.
	disconnects atomic.Int64
}

func (r *watchRegistry) register(prefix string, buf int) *StoreWatch {
	if buf < 1 {
		buf = DefaultWatchBuffer
	}
	if buf > maxWatchBuffer {
		buf = maxWatchBuffer
	}
	w := &StoreWatch{reg: r, prefix: prefix, ch: make(chan WatchEvent, buf)}
	r.mu.Lock()
	if r.ws == nil {
		r.ws = make(map[uint64]*StoreWatch)
	}
	r.nextID++
	w.id = r.nextID
	r.ws[w.id] = w
	r.active.Store(true)
	r.mu.Unlock()
	return w
}

func (r *watchRegistry) unregister(id uint64) {
	r.mu.Lock()
	if w := r.ws[id]; w != nil {
		delete(r.ws, id)
		if w.Err() == ErrSlowWatcher {
			r.disconnects.Add(1)
		}
	}
	if len(r.ws) == 0 {
		r.active.Store(false)
	}
	r.mu.Unlock()
}

// notify fans one event out to every matching watcher. It is called
// with the mutated key's shard lock held — per-key event order is the
// shard's apply order — so it must never block: sends are buffered and
// overflow disconnects, never waits.
func (r *watchRegistry) notify(ev WatchEvent) {
	if !r.active.Load() {
		return
	}
	r.mu.RLock()
	for _, w := range r.ws {
		if strings.HasPrefix(ev.Key, w.prefix) {
			w.send(ev)
		}
	}
	r.mu.RUnlock()
}

func (r *watchRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ws)
}

// Watch registers a watcher for every key starting with prefix ("" =
// all keys), with a buf-event buffer (non-positive = DefaultWatchBuffer,
// capped at maxWatchBuffer). Events start flowing immediately; there is
// no history replay. A watcher that falls behind its buffer is
// disconnected with ErrSlowWatcher.
func (s *Store) Watch(prefix string, buf int) *StoreWatch {
	return s.watch.register(prefix, buf)
}

// Watchers returns the number of registered watchers.
func (s *Store) Watchers() int { return s.watch.count() }

// WatchDisconnects returns how many watchers were disconnected for
// falling behind (the slow-consumer policy's visible counter).
func (s *Store) WatchDisconnects() int64 { return s.watch.disconnects.Load() }
