package memkv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/ring"
)

// ShardedClient partitions the keyspace across many single-shard memkv
// servers on a consistent-hash ring — the live-stack counterpart of the
// paper's §2.2 disk-backed storage service, where "files are partitioned
// across servers via consistent hashing, and two copies are stored of
// every file". Each key is placed on Replication distinct shards
// (primary + successors):
//
//   - Get issues the read redundantly within the key's placement under
//     the configured ReadStrategy (default: race primary + secondary,
//     first response wins — the paper's scheme) and takes per-call
//     options like ReplicatedClient.Get.
//   - Set writes the key to every placement shard and returns once
//     WriteQuorum of them acked, via the call engine's WithQuorum; with
//     WriteQuorum < Replication a put survives Replication-WriteQuorum
//     shards being down.
//
// Consistency is the demo-grade kind the paper's storage service had:
// copies beyond the write quorum are cancelled rather than retried, and
// AddShard/RemoveShard rebalance *placement* only — data written under
// an old topology is not migrated. A production system would add hinted
// handoff and read repair on top of exactly this routing layer.
type ShardedClient struct {
	mu          sync.Mutex // guards clients; the rings have their own engines
	clients     map[string]Backend
	reads       *ring.Ring[string, []byte]
	writes      *ring.Ring[setReq, struct{}]
	replication int
	writeQuorum int

	// Versioned (convergence) surface — see sharded_versioned.go. readsV
	// mirrors reads' topology but returns value+version and treats a
	// missing key as a successful read of version 0, so quorum reads
	// succeed over partial misses and the miss becomes repairable
	// divergence. clock is the client's Lamport version clock; sink, when
	// set, receives repair work (missed writes, divergence, topology
	// changes).
	readsV *ring.Ring[string, verVal]
	clock  atomic.Uint64
	sink   atomic.Pointer[sinkBox]
}

// Backend is the single-shard client surface ShardedClient routes over.
// Both the v1 pooled Client and the v2 multiplexed MuxClient implement
// it, so a sharded store mixes transports freely (and migrates from v1
// to v2 one shard at a time).
type Backend interface {
	Addr() string
	Get(ctx context.Context, key string) ([]byte, error)
	SetTTL(ctx context.Context, key string, value []byte, ttl time.Duration) error
	Close() error
}

// setReq is the write ring's call argument: it routes by key and carries
// the value to store.
type setReq struct {
	key   string
	value []byte
	ttl   time.Duration
}

// ShardedConfig configures a ShardedClient. The zero value means:
// 2 placement copies per key, writes ack on every copy, reads race
// primary + secondary.
type ShardedConfig struct {
	// Replication is the number of shards each key is stored on
	// (primary + Replication-1 successors). Values below 1 mean
	// ring.DefaultReplication (2).
	Replication int
	// WriteQuorum is how many placement shards must ack a Set before it
	// returns; the remaining copies are cancelled. Values below 1 mean
	// Replication (write-all). A quorum is always clamped to the shards
	// that exist, so a bootstrapping single-shard ring still accepts
	// writes.
	WriteQuorum int
	// ReadStrategy decides the redundancy of a Get within the key's
	// placement: nil means core.Fixed{Copies: 2} (the paper's
	// primary+secondary race); core.Fixed{Copies: 1} reads the primary
	// only; core.AdaptiveHedge hedges the secondary at a latency
	// quantile.
	ReadStrategy core.Strategy
	// VirtualNodes is the ring points per shard (0 means
	// ring.DefaultVirtualNodes).
	VirtualNodes int
	// Observer, when set, receives per-operation metrics from every
	// ring (reads, writes, versioned quorum reads) — the observation
	// hook a feedback controller needs to watch per-class latency
	// digests and copies launched. core.Counters is the ready-made
	// implementation; tag calls with core.WithLabel to split classes.
	Observer core.Observer
}

// NewShardedClient builds a sharded store over the given single-shard
// clients (v1 Client, v2 MuxClient, or any Backend). Shards are named
// by their client's Addr.
func NewShardedClient(cfg ShardedConfig, clients ...Backend) *ShardedClient {
	if cfg.Replication < 1 {
		cfg.Replication = ring.DefaultReplication
	}
	if cfg.WriteQuorum < 1 || cfg.WriteQuorum > cfg.Replication {
		cfg.WriteQuorum = cfg.Replication
	}
	if cfg.ReadStrategy == nil {
		cfg.ReadStrategy = core.Fixed{Copies: 2}
	}
	if cfg.VirtualNodes < 1 {
		cfg.VirtualNodes = ring.DefaultVirtualNodes
	}
	sc := &ShardedClient{
		clients:     make(map[string]Backend, len(clients)),
		replication: cfg.Replication,
		writeQuorum: cfg.WriteQuorum,
	}
	ropts := []ring.Option{
		ring.WithReplication(cfg.Replication),
		ring.WithVirtualNodes(cfg.VirtualNodes),
	}
	if cfg.Observer != nil {
		ropts = append(ropts, ring.WithObserver(cfg.Observer))
	}
	sc.reads = ring.New[string, []byte](cfg.ReadStrategy, ropts...)
	// Writes always fan out to the whole placement; WithQuorum decides
	// how many acks complete the call.
	sc.writes = ring.NewKeyed[setReq, struct{}](core.FullReplicate{}, func(w setReq) string { return w.key }, ropts...)
	// Versioned quorum reads query the whole placement too: divergence is
	// only observable on the copies actually read.
	sc.readsV = ring.New[string, verVal](core.FullReplicate{}, ropts...)
	for _, cl := range clients {
		sc.AddShard(cl)
	}
	return sc
}

// AddShard registers a shard; keys whose placement now includes it route
// there from the next call on. Data written under the old topology is
// converged by the repair sink, if one is installed (repair.Manager):
// the sink is notified with the before/after placements and migrates
// remapped keys in the background. Adding a shard whose address is
// already present is a no-op.
func (sc *ShardedClient) AddShard(cl Backend) {
	sc.mu.Lock()
	addr := cl.Addr()
	if _, ok := sc.clients[addr]; ok {
		sc.mu.Unlock()
		return
	}
	prev := sc.readsV.Placement()
	sc.clients[addr] = cl
	sc.reads.Add(addr, cl.Get)
	sc.writes.Add(addr, func(ctx context.Context, w setReq) (struct{}, error) {
		return struct{}{}, cl.SetTTL(ctx, w.key, w.value, w.ttl)
	})
	if vb, ok := cl.(VersionedBackend); ok {
		sc.readsV.Add(addr, func(ctx context.Context, key string) (verVal, error) {
			val, ver, ttl, err := vb.GetV(ctx, key)
			if errors.Is(err, ErrNotFound) {
				// A miss is a successful read of version 0: the quorum
				// holds over partial misses and the gap becomes repairable
				// divergence rather than an error.
				return verVal{}, nil
			}
			if err != nil {
				return verVal{}, err
			}
			return verVal{val: val, ver: ver, ttlSecs: ttl}, nil
		})
	} else {
		// A v1 shard can't serve versioned reads: quorum reads that place
		// on it fail with a recognizable error instead of silently losing
		// version information.
		sc.readsV.Add(addr, func(context.Context, string) (verVal, error) {
			return verVal{}, fmt.Errorf("%s: %w", addr, errShardNotVersioned)
		})
	}
	cur := sc.readsV.Placement()
	sink := sc.repairSink()
	sc.mu.Unlock()
	if sink != nil {
		sink.TopologyChanged(prev, cur)
	}
}

// RemoveShard drops the shard serving addr from placement, reporting
// whether it was present. Calls in flight may still complete against it;
// it is not closed (the caller owns its lifecycle). An installed repair
// sink is notified with the before/after placements so remapped keys can
// be re-homed (the removed shard may still be readable for draining).
func (sc *ShardedClient) RemoveShard(addr string) bool {
	sc.mu.Lock()
	if _, ok := sc.clients[addr]; !ok {
		sc.mu.Unlock()
		return false
	}
	prev := sc.readsV.Placement()
	delete(sc.clients, addr)
	sc.reads.Remove(addr)
	sc.writes.Remove(addr)
	sc.readsV.Remove(addr)
	cur := sc.readsV.Placement()
	sink := sc.repairSink()
	sc.mu.Unlock()
	if sink != nil {
		sink.TopologyChanged(prev, cur)
	}
	return true
}

// Get returns the first placement shard's response for key, read
// redundantly under the client's ReadStrategy. Per-call options tune one
// read: ReadQuorum(q) for R-of-N agreement within the placement,
// core.WithFanoutCap(1) for a single-copy read,
// core.WithStrategyOverride for a one-off policy, core.WithLabel for
// metrics. A key absent from every queried shard reports
// errors.Is(err, ErrNotFound).
func (sc *ShardedClient) Get(ctx context.Context, key string, opts ...core.CallOption) ([]byte, error) {
	if len(opts) == 0 {
		// The common zero-option read rides the ring's DoValue fast lane
		// (pooled call frame, no option materialization).
		return sc.reads.DoValue(ctx, key)
	}
	res, err := sc.reads.Do(ctx, key, opts...)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// GetResult is Get with the full redundancy metadata (winner index,
// latency, copies launched and cancelled).
func (sc *ShardedClient) GetResult(ctx context.Context, key string, opts ...core.CallOption) (core.Result[[]byte], error) {
	return sc.reads.Do(ctx, key, opts...)
}

// Set stores value under key on every shard of the key's placement,
// returning once the write quorum has acked. With fewer live shards than
// the quorum the error matches core.ErrQuorumUnreachable and carries
// per-shard detail.
func (sc *ShardedClient) Set(ctx context.Context, key string, value []byte) error {
	return sc.SetTTL(ctx, key, value, 0)
}

// SetTTL is Set with an expiry (rounded up to whole seconds; 0 = never).
func (sc *ShardedClient) SetTTL(ctx context.Context, key string, value []byte, ttl time.Duration) error {
	for {
		q := sc.writeQuorum
		n := sc.writes.Len()
		if n == 0 {
			return core.ErrNoReplicas
		}
		if n < q {
			// Fewer shards than the quorum: every existing placement copy
			// must ack instead.
			q = n
		}
		_, err := sc.writes.Do(ctx, setReq{key: key, value: value, ttl: ttl}, core.WithQuorum(q))
		if err == nil {
			return nil
		}
		if errors.Is(err, core.ErrQuorumUnreachable) && sc.writes.Len() < q {
			// A concurrent RemoveShard shrank the ring between the clamp
			// and the call; re-clamp against the new topology. q strictly
			// decreases, so this terminates.
			continue
		}
		return fmt.Errorf("memkv: sharded set %q: %w", key, err)
	}
}

// GetBatch reads many keys in one batched engine pass: keys are grouped
// by shard placement (ring.DoBatch), each group runs as one
// core.DoBatchPicked — one schedule, shared-wheel hedge deadlines — and
// with MuxClient backends each shard sees its whole group as one
// coalesced wire round. Results are in key order; res[i].Err carries
// key i's failure (ErrNotFound for absent keys). The error is
// batch-level only (empty ring, bad option). See core.KeyedGroup.DoBatch
// for how batch cancellation semantics differ from per-key Get calls.
func (sc *ShardedClient) GetBatch(ctx context.Context, keys []string, opts ...core.CallOption) ([]core.BatchResult[[]byte], error) {
	return sc.reads.DoBatch(ctx, keys, opts...)
}

// PutBatch writes many key/value pairs, each to its full placement with
// the client's write quorum, batched per shard group like GetBatch.
// errs[i] is pair i's outcome; the returned slice is nil if err is
// non-nil. len(vals) must equal len(keys).
func (sc *ShardedClient) PutBatch(ctx context.Context, keys []string, vals [][]byte, opts ...core.CallOption) ([]error, error) {
	if len(keys) != len(vals) {
		return nil, errors.New("memkv: PutBatch keys/vals length mismatch")
	}
	q := sc.writeQuorum
	if n := sc.writes.Len(); n == 0 {
		return nil, core.ErrNoReplicas
	} else if n < q {
		q = n
	}
	reqs := make([]setReq, len(keys))
	for i := range keys {
		reqs[i] = setReq{key: keys[i], value: vals[i]}
	}
	callOpts := make([]core.CallOption, 0, len(opts)+1)
	callOpts = append(callOpts, core.WithQuorum(q))
	callOpts = append(callOpts, opts...)
	res, err := sc.writes.DoBatch(ctx, reqs, callOpts...)
	if err != nil {
		return nil, err
	}
	errs := make([]error, len(res))
	for i := range res {
		errs[i] = res[i].Err
	}
	return errs, nil
}

// Owners returns the shard addresses key is placed on, primary first.
func (sc *ShardedClient) Owners(key string) []string { return sc.reads.Owners(key) }

// Replication returns the placement copies per key.
func (sc *ShardedClient) Replication() int { return sc.replication }

// WriteQuorum returns the configured write quorum.
func (sc *ShardedClient) WriteQuorum() int { return sc.writeQuorum }

// SetReadStrategy replaces the read-side redundancy strategy atomically.
func (sc *ShardedClient) SetReadStrategy(s core.Strategy) { sc.reads.SetStrategy(s) }

// RingStats reports the read ring's placement and per-shard latency
// statistics: each shard's key share, observed latency digest quantiles,
// and cancelled-copy counts.
func (sc *ShardedClient) RingStats() ring.Stats { return sc.reads.Stats() }

// Close closes all shard clients.
func (sc *ShardedClient) Close() error {
	sc.mu.Lock()
	clients := make([]Backend, 0, len(sc.clients))
	for _, cl := range sc.clients {
		clients = append(clients, cl)
	}
	sc.mu.Unlock()
	var err error
	for _, cl := range clients {
		if e := cl.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
