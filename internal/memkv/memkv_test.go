package memkv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"redundancy/internal/core"
)

// startServer launches a server on a loopback port and returns its address
// and a cleanup-registered handle.
func startServer(t *testing.T) (*Server, string) {
	return startServerDelay(t, nil)
}

// startServerDelay starts a server with a Delay hook installed BEFORE
// Listen: connection handlers read Delay without synchronization, so
// assigning it after the server is running is a data race.
func startServerDelay(t *testing.T, delay func() time.Duration) (*Server, string) {
	t.Helper()
	srv := NewServer(nil)
	srv.Delay = delay
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Get("missing"); ok {
		t.Error("Get on empty store returned ok")
	}
	s.Set("k", 7, []byte("hello"))
	v, flags, ok := s.Get("k")
	if !ok || string(v) != "hello" || flags != 7 {
		t.Errorf("Get = (%q, %d, %v)", v, flags, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Delete("k") {
		t.Error("Delete returned false for present key")
	}
	if s.Delete("k") {
		t.Error("Delete returned true for absent key")
	}
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.Set("k", 0, buf)
	buf[0] = 'X' // mutating the caller's slice must not affect the store
	v, _, _ := s.Get("k")
	if string(v) != "abc" {
		t.Errorf("stored value aliased caller buffer: %q", v)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d-%d", g, i)
				s.Set(key, 0, []byte(key))
				if v, _, ok := s.Get(key); !ok || string(v) != key {
					t.Errorf("lost write for %s", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4000 {
		t.Errorf("Len = %d, want 4000", s.Len())
	}
}

func TestClientSetGetDelete(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Set(ctx, "greeting", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(ctx, "greeting")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "hello world" {
		t.Errorf("Get = %q", v)
	}
	if err := cl.Delete(ctx, "greeting"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "greeting"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := cl.Delete(ctx, "greeting"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second Delete = %v, want ErrNotFound", err)
	}
}

func TestClientBinaryValues(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()

	// Values containing \r\n and NULs must round-trip (length-prefixed
	// protocol).
	val := []byte("line1\r\nline2\x00binary\xff")
	if err := cl.Set(ctx, "bin", val); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(ctx, "bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Errorf("binary value corrupted: %q != %q", got, val)
	}
}

func TestClientEmptyValue(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty value came back as %q", got)
	}
}

func TestClientLargeValue(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, 5*time.Second)
	defer cl.Close()
	ctx := context.Background()
	val := bytes.Repeat([]byte("x"), 1<<20)
	if err := cl.Set(ctx, "big", val); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Error("1 MB value corrupted")
	}
}

func TestClientKeyValidation(t *testing.T) {
	cl := NewClient("127.0.0.1:1", time.Second)
	ctx := context.Background()
	for _, key := range []string{"", "has space", "has\nnewline", strings.Repeat("k", 251)} {
		if err := cl.Set(ctx, key, nil); err == nil {
			t.Errorf("key %q accepted", key)
		}
		if _, err := cl.Get(ctx, key); err == nil {
			t.Errorf("key %q accepted by Get", key)
		}
	}
}

func TestClientConnectionReuse(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := cl.Set(ctx, key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	idle := len(cl.idle)
	cl.mu.Unlock()
	if idle != 1 {
		t.Errorf("sequential requests used %d connections, want 1 pooled", idle)
	}
}

func TestClientConcurrent(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, 2*time.Second)
	defer cl.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("conc-%d", g)
			if err := cl.Set(ctx, key, []byte(key)); err != nil {
				errs <- err
				return
			}
			v, err := cl.Get(ctx, key)
			if err != nil {
				errs <- err
				return
			}
			if string(v) != key {
				errs <- fmt.Errorf("got %q want %q", v, key)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, addr := startServerDelay(t, func() time.Duration { return 5 * time.Second })
	cl := NewClient(addr, 10*time.Second)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Get(ctx, "k")
	if err == nil {
		t.Fatal("Get succeeded despite delayed server and short deadline")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline not honored promptly")
	}
}

func TestServerMultiGet(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()
	cl.Set(ctx, "a", []byte("1"))
	cl.Set(ctx, "b", []byte("2"))

	// Raw protocol: multi-key get.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "get a b missing\r\n")
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	n, _ := conn.Read(buf)
	resp := string(buf[:n])
	if !strings.Contains(resp, "VALUE a 0 1") || !strings.Contains(resp, "VALUE b 0 1") {
		t.Errorf("multi-get response missing values: %q", resp)
	}
	if !strings.HasSuffix(resp, "END\r\n") {
		t.Errorf("response not END-terminated: %q", resp)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "frobnicate\r\n")
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	n, _ := conn.Read(buf)
	if got := string(buf[:n]); got != "ERROR\r\n" {
		t.Errorf("garbage command response %q", got)
	}
	fmt.Fprintf(conn, "set k notanumber 0 3\r\n")
	n, _ = conn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "CLIENT_ERROR") {
		t.Errorf("bad set response %q", string(buf[:n]))
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Pooled connection is now dead; the request must fail, not hang.
	_, err := cl.Get(ctx, "k")
	if err == nil {
		t.Error("Get succeeded against closed server")
	}
	// Double close is fine.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestReplicatedClientFirstWins(t *testing.T) {
	// Server A is slow; B is fast.
	_, addrA := startServerDelay(t, func() time.Duration { return 300 * time.Millisecond })
	_, addrB := startServer(t)

	clA := NewClient(addrA, 2*time.Second)
	clB := NewClient(addrB, 2*time.Second)
	rc := NewReplicatedClient(core.Policy{Copies: 2, Selection: core.SelectRandom}, clA, clB)
	defer rc.Close()
	ctx := context.Background()

	if err := rc.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := rc.GetResult(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "v" {
		t.Errorf("value %q", res.Value)
	}
	if time.Since(start) > 250*time.Millisecond {
		t.Errorf("replicated read waited for the slow server: %v", time.Since(start))
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d", res.Launched)
	}
}

func TestReplicatedClientSurvivesDeadReplica(t *testing.T) {
	srvA, addrA := startServer(t)
	_, addrB := startServer(t)
	clA := NewClient(addrA, time.Second)
	clB := NewClient(addrB, time.Second)
	rc := NewReplicatedClient(core.Policy{Copies: 2, Selection: core.SelectRandom}, clA, clB)
	defer rc.Close()
	ctx := context.Background()
	if err := rc.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	srvA.Close() // kill one replica
	v, err := rc.Get(ctx, "k")
	if err != nil {
		t.Fatalf("replicated read failed with one dead replica: %v", err)
	}
	if string(v) != "v" {
		t.Errorf("value %q", v)
	}
}

func TestTTLExpiry(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()
	if err := cl.SetTTL(ctx, "ephemeral", []byte("v"), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "ephemeral"); err != nil {
		t.Fatalf("fresh TTL key missing: %v", err)
	}
	// Store-level check with a direct past-expiry item avoids sleeping in
	// the network test; protocol granularity is 1s.
	s := NewStore()
	s.SetTTL("k", 0, []byte("v"), time.Nanosecond)
	time.Sleep(10 * time.Millisecond)
	if _, _, ok := s.Get("k"); ok {
		t.Error("expired item still readable")
	}
	if s.Len() != 0 {
		// Len counts the lazily-reaped item until Get touches it; after
		// the Get above it must be gone.
		t.Errorf("expired item not reaped: Len = %d", s.Len())
	}
}

func TestTTLZeroNeverExpires(t *testing.T) {
	s := NewStore()
	s.SetTTL("k", 0, []byte("v"), 0)
	time.Sleep(5 * time.Millisecond)
	if _, _, ok := s.Get("k"); !ok {
		t.Error("no-TTL item expired")
	}
}

func TestStatsCounters(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	ctx := context.Background()
	cl.Set(ctx, "a", []byte("1"))
	cl.Set(ctx, "b", []byte("2"))
	cl.Get(ctx, "a")
	cl.Get(ctx, "missing")
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["cmd_set"] != 2 || stats["cmd_get"] != 2 {
		t.Errorf("cmd counters: %+v", stats)
	}
	if stats["get_hits"] != 1 || stats["get_misses"] != 1 {
		t.Errorf("hit/miss counters: %+v", stats)
	}
	if stats["curr_items"] != 2 {
		t.Errorf("curr_items = %d", stats["curr_items"])
	}
}

func TestAdaptiveReplicatedClient(t *testing.T) {
	// A fast and a deliberately slow replica. Cold digests mean the first
	// read fans out fully; once warm, the hedge waits for the primary's
	// observed p95 and the stats snapshot is self-describing.
	_, fastAddr := startServer(t)
	_, slowAddr := startServerDelay(t, func() time.Duration { return 200 * time.Millisecond })
	clFast := NewClient(fastAddr, 2*time.Second)
	clSlow := NewClient(slowAddr, 2*time.Second)
	rc := NewAdaptiveReplicatedClient(0.95, clFast, clSlow)
	defer rc.Close()
	ctx := context.Background()

	if err := rc.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := rc.GetResult(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "v" {
		t.Errorf("value %q", res.Value)
	}
	if res.Launched != 2 {
		t.Errorf("cold adaptive read launched %d copies, want 2 (immediate fallback)", res.Launched)
	}
	for i := 0; i < 30; i++ {
		if _, err := rc.Get(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	s := rc.GroupStats()
	if !strings.Contains(s.Strategy, "adaptive-hedge") || !strings.Contains(s.Strategy, "p95") {
		t.Errorf("GroupStats.Strategy = %q", s.Strategy)
	}
	warm := false
	for _, r := range s.Replicas {
		if r.Observations >= 16 && r.P95 > 0 && r.P50 <= r.P95 {
			warm = true
		}
	}
	if !warm {
		t.Errorf("no replica digest warmed past MinSamples: %+v", s.Replicas)
	}

	// Strategies swap through the snapshot without disturbing reads.
	rc.SetStrategy(core.FullReplicate{Selection: core.SelectRandom})
	res, err = rc.GetResult(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("full replication launched %d copies", res.Launched)
	}
	if got := rc.GroupStats().Strategy; !strings.Contains(got, "full-replicate") {
		t.Errorf("after SetStrategy: %q", got)
	}
}

func TestReplicatedClientReadQuorum(t *testing.T) {
	// Three replicas; a quorum-2 read succeeds with one dead replica and
	// carries per-replica outcomes, while two dead replicas make the
	// quorum unreachable with named failure detail.
	srvA, addrA := startServer(t)
	srvB, addrB := startServer(t)
	_, addrC := startServer(t)
	clA := NewClient(addrA, time.Second)
	clB := NewClient(addrB, time.Second)
	clC := NewClient(addrC, time.Second)
	rc := NewReplicatedClient(core.Policy{Copies: 3}, clA, clB, clC)
	defer rc.Close()
	ctx := context.Background()
	if err := rc.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	var outs []core.Outcome[[]byte]
	res, err := rc.GetResult(ctx, "k", ReadQuorum(2), core.WithCollectOutcomes(&outs))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "v" {
		t.Errorf("value %q", res.Value)
	}
	wins := 0
	for _, o := range outs {
		if o.Err == nil {
			wins++
			if string(o.Value) != "v" {
				t.Errorf("quorum outcome value %q", o.Value)
			}
		}
	}
	if wins != 2 {
		t.Errorf("quorum read collected %d wins, want 2", wins)
	}

	srvA.Close() // one dead replica: 2-of-3 still reachable
	if _, err := rc.Get(ctx, "k", ReadQuorum(2)); err != nil {
		t.Fatalf("quorum read with one dead replica: %v", err)
	}

	srvB.Close() // two dead: 2-of-3 unreachable
	_, err = rc.Get(ctx, "k", ReadQuorum(2))
	if !errors.Is(err, core.ErrQuorumUnreachable) {
		t.Fatalf("got %v, want ErrQuorumUnreachable", err)
	}
	var re core.ReplicaError
	if !errors.As(err, &re) || re.Name == "" {
		t.Errorf("quorum failure lacks named replica detail: %v", err)
	}
}

func TestReplicatedClientPerReadLabelAndCap(t *testing.T) {
	_, addrA := startServer(t)
	_, addrB := startServer(t)
	clA := NewClient(addrA, time.Second)
	clB := NewClient(addrB, time.Second)
	rc := NewReplicatedClient(core.Policy{Copies: 2}, clA, clB)
	defer rc.Close()
	ctx := context.Background()
	if err := rc.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err := rc.GetResult(ctx, "k", core.WithFanoutCap(1), core.WithLabel("prefetch"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 {
		t.Errorf("capped read launched %d copies, want 1", res.Launched)
	}
}

// waitCounter polls an atomic-backed getter until it reaches want or the
// deadline passes; it returns the final value. Polling a monotone counter
// with a bounded deadline is race-free (the assertion is on the final
// value, not the timing).
func waitCounter(t *testing.T, get func() int64, want int64) int64 {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for get() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return get()
}

func TestServerAbortsDelayedWorkWhenClientGone(t *testing.T) {
	// The server is mid-delay when its client disconnects: it must abandon
	// the request (and count it) instead of sleeping out the full delay.
	srv, addr := startServerDelay(t, func() time.Duration { return time.Minute })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "get k\r\n")
	conn.Close()
	if got := waitCounter(t, srv.aborted.Load, 1); got != 1 {
		t.Fatalf("aborted_ops = %d, want 1 (server slept out the delay?)", got)
	}
	// Close must not wait out the minute-long delay either.
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("Close took %v with an aborted delayed request", el)
	}
}

func TestServerAbortStatExposed(t *testing.T) {
	_, addr := startServer(t)
	cl := NewClient(addr, time.Second)
	defer cl.Close()
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["aborted_ops"]; !ok {
		t.Errorf("stats missing aborted_ops: %+v", stats)
	}
}

func TestClientStopsReadingOnCancel(t *testing.T) {
	// The client is blocked reading a delayed response with a generous
	// request timeout; cancelling the context must abandon the read
	// immediately — the cancellation path the redundancy engine relies on
	// to reclaim losing copies.
	_, addr := startServerDelay(t, func() time.Duration { return time.Minute })
	cl := NewClient(addr, 10*time.Minute)
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, gerr := cl.Get(ctx, "k")
		done <- gerr
	}()
	cancel()
	select {
	case gerr := <-done:
		if !errors.Is(gerr, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", gerr)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("cancelled Get returned after %v", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Get still blocked after 5s")
	}
}

func TestReplicatedClientCancelsLosingCopy(t *testing.T) {
	// End-to-end copy cancellation: a fast and a stalled replica, full
	// fan-out. The fast replica wins, the loser is cancelled in flight,
	// the client abandons its read, and the stalled server aborts the
	// delayed request — capacity reclaimed at every layer.
	_, fastAddr := startServer(t)
	slowSrv, slowAddr := startServerDelay(t, func() time.Duration { return time.Minute })
	clFast := NewClient(fastAddr, 10*time.Minute)
	clSlow := NewClient(slowAddr, 10*time.Minute)
	rc := NewReplicatedClient(core.Policy{Copies: 2}, clFast, clSlow)
	defer rc.Close()
	ctx := context.Background()
	if err := clFast.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res, err := rc.GetResult(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "v" {
		t.Errorf("value %q", res.Value)
	}
	if res.Launched != 2 || res.Cancelled != 1 {
		t.Errorf("Launched/Cancelled = %d/%d, want 2/1", res.Launched, res.Cancelled)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("read took %v; the stalled replica was waited out", el)
	}
	// The stalled server saw its client vanish and abandoned the request.
	if got := waitCounter(t, slowSrv.aborted.Load, 1); got < 1 {
		t.Errorf("slow server aborted_ops = %d, want >= 1", got)
	}
	// The group's stats record the reclaimed copy against the replica.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		cancelled := int64(0)
		for _, r := range rc.GroupStats().Replicas {
			cancelled += r.Cancelled
		}
		if cancelled >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("no replica recorded a cancelled copy: %+v", rc.GroupStats().Replicas)
}
