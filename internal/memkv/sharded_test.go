package memkv

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core"
)

// startShards launches n live servers and returns a ShardedClient over
// them plus the servers by address.
func startShards(t *testing.T, n int, cfg ShardedConfig) (*ShardedClient, map[string]*Server) {
	t.Helper()
	servers := make(map[string]*Server, n)
	clients := make([]Backend, n)
	for i := 0; i < n; i++ {
		srv, addr := startServer(t)
		servers[addr] = srv
		clients[i] = NewClient(addr, 2*time.Second)
	}
	sc := NewShardedClient(cfg, clients...)
	t.Cleanup(func() { sc.Close() })
	return sc, servers
}

func TestShardedSetGetRoundTrip(t *testing.T) {
	sc, _ := startShards(t, 4, ShardedConfig{})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := sc.Set(ctx, key, []byte("v-"+key)); err != nil {
			t.Fatalf("Set(%q): %v", key, err)
		}
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, err := sc.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get(%q): %v", key, err)
		}
		if string(got) != "v-"+key {
			t.Errorf("Get(%q) = %q, want %q", key, got, "v-"+key)
		}
	}
	if _, err := sc.Get(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(absent) = %v, want ErrNotFound", err)
	}
}

// Writes land only on the key's placement shards: the data is
// partitioned, not fully replicated.
func TestShardedPlacementIsPartial(t *testing.T) {
	sc, servers := startShards(t, 5, ShardedConfig{Replication: 2})
	ctx := context.Background()
	key := "user:42"
	if err := sc.Set(ctx, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	owners := sc.Owners(key)
	if len(owners) != 2 {
		t.Fatalf("Owners(%q) = %v, want 2", key, owners)
	}
	isOwner := map[string]bool{owners[0]: true, owners[1]: true}
	for addr, srv := range servers {
		_, _, ok := srv.Store().Get(key)
		if ok != isOwner[addr] {
			t.Errorf("shard %s has key = %v, want %v (owners %v)", addr, ok, isOwner[addr], owners)
		}
	}
}

// The paper's redundant read in the live stack: the key's primary is
// stalled, the secondary's response wins, and a fan-out-1 read has to
// wait the stall out.
func TestShardedRedundantGetDodgesSlowPrimary(t *testing.T) {
	// Every server gets a Delay hook before Listen (the Server contract);
	// each stalls only once its own flag flips, so the test can stall the
	// primary race-free after discovering which shard that is.
	const stall = 250 * time.Millisecond
	stalled := make(map[string]*atomic.Bool, 3)
	clients := make([]Backend, 3)
	for i := 0; i < 3; i++ {
		flag := &atomic.Bool{}
		_, addr := startServerDelay(t, func() time.Duration {
			if flag.Load() {
				return stall
			}
			return 0
		})
		stalled[addr] = flag
		clients[i] = NewClient(addr, 5*time.Second)
	}
	sc := NewShardedClient(ShardedConfig{Replication: 2}, clients...)
	defer sc.Close()
	ctx := context.Background()

	key := "hot"
	if err := sc.Set(ctx, key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	stalled[sc.Owners(key)[0]].Store(true)

	start := time.Now()
	got, err := sc.Get(ctx, key)
	elapsed := time.Since(start)
	if err != nil || string(got) != "payload" {
		t.Fatalf("redundant Get = %q, %v", got, err)
	}
	if elapsed >= stall {
		t.Errorf("redundant Get took %v, want the secondary to win well before the %v stall", elapsed, stall)
	}

	start = time.Now()
	if _, err := sc.Get(ctx, key, core.WithFanoutCap(1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("fan-out-1 Get took %v, want it to wait out the %v primary stall", elapsed, stall)
	}
}

// A write quorum below the replication factor survives a down shard, and
// a subsequent redundant read still answers from the survivors.
func TestShardedQuorumPutSurvivesDownShard(t *testing.T) {
	sc, servers := startShards(t, 4, ShardedConfig{Replication: 3, WriteQuorum: 2})
	ctx := context.Background()
	key := "survivor"
	servers[sc.Owners(key)[0]].Close() // kill the primary

	if err := sc.Set(ctx, key, []byte("still here")); err != nil {
		t.Fatalf("quorum-2 Set with primary down: %v", err)
	}
	got, err := sc.Get(ctx, key)
	if err != nil || string(got) != "still here" {
		t.Fatalf("Get after quorum put = %q, %v", got, err)
	}

	// Two of three placement shards down: the quorum is unreachable and
	// the failure is typed.
	servers[sc.Owners(key)[1]].Close()
	err = sc.Set(ctx, key, []byte("lost"))
	if !errors.Is(err, core.ErrQuorumUnreachable) {
		t.Errorf("Set with 2 of 3 placement shards down = %v, want ErrQuorumUnreachable", err)
	}
}

// Removing a shard remaps its keys; a re-Set under the new topology
// restores read availability for them.
func TestShardedRemoveShardRemaps(t *testing.T) {
	sc, _ := startShards(t, 4, ShardedConfig{Replication: 2})
	ctx := context.Background()
	key := "mover"
	if err := sc.Set(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	victim := sc.Owners(key)[0]
	if !sc.RemoveShard(victim) {
		t.Fatalf("RemoveShard(%s) = false", victim)
	}
	if sc.RemoveShard(victim) {
		t.Error("second RemoveShard = true, want false")
	}
	after := sc.Owners(key)
	for _, o := range after {
		if o == victim {
			t.Fatalf("Owners(%q) = %v still includes removed shard %s", key, after, victim)
		}
	}
	// The old secondary is the new primary, so the key stays readable
	// without any migration; the re-Set fills the new secondary.
	if got, err := sc.Get(ctx, key); err != nil || string(got) != "v1" {
		t.Fatalf("Get after removal = %q, %v (old secondary should still serve)", got, err)
	}
	if err := sc.Set(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err := sc.Get(ctx, key); err != nil || string(got) != "v2" {
		t.Fatalf("Get after re-set = %q, %v", got, err)
	}
}

func TestShardedWriteQuorumClampsToShards(t *testing.T) {
	sc, _ := startShards(t, 1, ShardedConfig{Replication: 3, WriteQuorum: 3})
	ctx := context.Background()
	// One shard exists: the quorum clamps to it rather than failing.
	if err := sc.Set(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Set on single-shard ring with quorum 3: %v", err)
	}
	if got, err := sc.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestShardedRingStats(t *testing.T) {
	sc, _ := startShards(t, 3, ShardedConfig{})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := sc.Set(ctx, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	st := sc.RingStats()
	if len(st.Members) != 3 {
		t.Fatalf("RingStats members = %d, want 3", len(st.Members))
	}
	sum := 0.0
	for _, m := range st.Members {
		sum += m.KeyShare
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("key shares sum to %g, want 1", sum)
	}
}
