package memkv

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzVersionedFrameRoundTrip drives the v2 versioned payload through a
// full frame round trip: a versioned put/value payload must encode into
// a frame, survive the wire codec, and decode back to the same version,
// TTL, and data; a scan-entry payload must round-trip entry lists the
// same way; and decodeVerPayload/decodeScanEntries over arbitrary or
// truncated bytes must fail cleanly, never panic.
func FuzzVersionedFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(0), []byte("value"), "key", -1)
	f.Add(uint64(0), uint32(300), []byte{}, "k", 0)
	f.Add(^uint64(0), ^uint32(0), bytes.Repeat([]byte{0xAB}, 64), "scan-key", 5)
	f.Add(uint64(1755000000000000000), uint32(60), []byte("wall-clock version"), "", 11)
	f.Fuzz(func(t *testing.T, version uint64, ttlSecs uint32, data []byte, key string, cut int) {
		if len(key) > maxKeyLen {
			key = key[:maxKeyLen]
		}
		if len(data) > maxValueLen-verPayloadHeader {
			data = data[:maxValueLen-verPayloadHeader]
		}

		// Versioned payload inside a frame: opPutV carries the payload as
		// the frame value, exactly as MuxClient.PutV builds it.
		payload := appendVerPayload(nil, version, ttlSecs, data)
		in := frame{op: opPutV, tag: 7, key: key, val: payload}
		enc := appendFrame(nil, &in)
		var out frame
		if err := readFrame(bufio.NewReader(bytes.NewReader(enc)), &out); err != nil {
			t.Fatalf("frame decode: %v", err)
		}
		gotVer, gotTTL, gotData, err := decodeVerPayload(out.val)
		if err != nil {
			t.Fatalf("payload decode: %v", err)
		}
		if gotVer != version || gotTTL != ttlSecs || !bytes.Equal(gotData, data) {
			t.Fatalf("payload round trip: got (%d, %d, %d bytes), want (%d, %d, %d bytes)",
				gotVer, gotTTL, len(gotData), version, ttlSecs, len(data))
		}

		// Truncating the payload below its header must fail with
		// errVerPayload, not return garbage.
		if cut >= 0 && verPayloadHeader > 0 {
			if _, _, _, err := decodeVerPayload(payload[:cut%verPayloadHeader]); err != errVerPayload {
				t.Fatalf("truncated payload decode err = %v, want errVerPayload", err)
			}
		}

		// Scan entries: pack the same data as a one-entry page plus a
		// fixed sibling, round-trip, and check field fidelity.
		if key == "" {
			key = "k"
		}
		entries := []ScanEntry{
			{Key: key, Flags: 3, Version: version, TTLSecs: ttlSecs, Value: data},
			{Key: key + "~", Flags: 0, Version: version + 1, TTLSecs: 0, Value: nil},
		}
		var page []byte
		for i := range entries {
			page = appendScanEntry(page, &entries[i])
		}
		got, err := decodeScanEntries(page)
		if err != nil {
			t.Fatalf("scan page decode: %v", err)
		}
		if len(got) != len(entries) {
			t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
		}
		for i := range entries {
			if got[i].Key != entries[i].Key || got[i].Flags != entries[i].Flags ||
				got[i].Version != entries[i].Version || got[i].TTLSecs != entries[i].TTLSecs ||
				!bytes.Equal(got[i].Value, entries[i].Value) {
				t.Fatalf("entry %d mismatch: got %+v want %+v", i, got[i], entries[i])
			}
		}
		// Any strict prefix of the page must decode to an error or fewer
		// whole entries — never panic, never a partial final entry.
		if cut > 0 && len(page) > 0 {
			prefix := page[:cut%len(page)]
			if part, err := decodeScanEntries(prefix); err == nil && len(part) >= len(entries) {
				t.Fatalf("truncated page decoded %d entries", len(part))
			}
		}
	})
}
