package memkv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"redundancy/internal/core"
)

// This file is the client half of the streaming surface: CAS requests
// (ordinary request/response frames) and watch streams — the first
// server-push traffic the mux carries. A watch rides the same tag space
// as requests: the opWatch frame's tag becomes the stream's identity,
// and every opEvent the server pushes carries it. The reader goroutine
// demuxes events to a per-watch channel exactly as it demuxes responses
// to waiters; a slow consumer is disconnected rather than allowed to
// head-of-line-block the connection every other request shares.

// ErrWatchClosed reports a watch stream the server ended deliberately
// (session shutdown path) rather than for slowness or connection loss.
var ErrWatchClosed = errors.New("memkv: watch closed by server")

// WatchStream is one live prefix subscription on a MuxClient. Consume
// Events until it closes, then check Err for why: nil after a local
// Close, ErrSlowWatcher if the consumer fell behind, ErrWatchClosed if
// the server ended it, an ErrMuxConnLost-wrapping error if the
// connection died (redial and re-Watch to resume — events between loss
// and resubscription are gone; the redundant sharded watch exists to
// cover exactly that gap with the other replicas).
type WatchStream struct {
	cn     *muxConn
	tag    uint64
	prefix string

	mu     sync.Mutex
	closed bool
	err    error
	ch     chan WatchEvent
	done   chan struct{}
}

// Events returns the stream's event channel, closed when the stream
// ends.
func (s *WatchStream) Events() <-chan WatchEvent { return s.ch }

// Prefix returns the watched key prefix.
func (s *WatchStream) Prefix() string { return s.prefix }

// Done returns a channel closed when the stream ends (for select
// without consuming events).
func (s *WatchStream) Done() <-chan struct{} { return s.done }

// Err reports why the stream ended (nil while live or after Close).
func (s *WatchStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close ends the stream and tells the server (best effort) to drop the
// subscription. Idempotent.
func (s *WatchStream) Close() { s.closeAndUnwatch(nil) }

// end closes the stream locally with err, reporting whether this call
// did it.
func (s *WatchStream) end(err error) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.closed = true
	s.err = err
	close(s.ch)
	close(s.done)
	s.mu.Unlock()
	return true
}

// closeAndUnwatch ends the stream locally and enqueues a fire-and-forget
// opUnwatch so the server releases the subscription (skipped if the
// connection is already dead). The opUnwatched ack arrives with no
// waiter registered and is discarded — the mux cancellation idiom.
func (s *WatchStream) closeAndUnwatch(err error) {
	if !s.end(err) {
		return
	}
	cn := s.cn
	cn.mu.Lock()
	if cn.watches != nil {
		delete(cn.watches, s.tag)
	}
	dead := cn.dead
	if !dead {
		cn.tag++
		var tb [8]byte
		binary.BigEndian.PutUint64(tb[:], s.tag)
		cn.pending = appendFrame(cn.pending, &frame{op: opUnwatch, tag: cn.tag, val: tb[:]})
	}
	cn.mu.Unlock()
	if !dead {
		select {
		case cn.flushC <- struct{}{}:
		default:
		}
	}
}

// deliver routes one server-push frame (opEvent or opWatchEnd) into the
// stream. It runs on the connection's reader goroutine and must not
// block: a full event buffer disconnects this stream instead of
// stalling every request and watch sharing the connection.
func (s *WatchStream) deliver(f *frame) {
	if f.op == opWatchEnd {
		err := ErrWatchClosed
		if f.aux == watchEndSlow {
			err = ErrSlowWatcher
		}
		s.end(err)
		return
	}
	ver, ttl, data, derr := decodeVerPayload(f.val)
	if derr != nil {
		s.closeAndUnwatch(derr)
		return
	}
	ev := WatchEvent{Type: EventType(f.aux), Key: f.key, Value: data, Version: ver, TTLSecs: ttl}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	ok := false
	select {
	case s.ch <- ev:
		ok = true
	default:
	}
	s.mu.Unlock()
	if !ok {
		s.closeAndUnwatch(ErrSlowWatcher)
	}
}

// startWatch assigns a tag, registers both the response waiter and the
// stream's event route under one lock acquisition, and enqueues the
// opWatch frame. Registering the route before the frame is on the wire
// means no event can arrive unroutable, however fast the server pushes
// after opWatchOK.
func (cn *muxConn) startWatch(req frame, st *WatchStream) (*muxWaiter, uint64, error) {
	cn.mu.Lock()
	if cn.dead {
		err := cn.err
		cn.mu.Unlock()
		if err == nil {
			err = ErrMuxConnLost
		}
		return nil, 0, err
	}
	cn.tag++
	req.tag = cn.tag
	st.tag = cn.tag
	w := muxWaiterPool.Get().(*muxWaiter)
	cn.waiters[cn.tag] = w
	if cn.watches == nil {
		cn.watches = make(map[uint64]*WatchStream)
	}
	cn.watches[cn.tag] = st
	cn.pending = appendFrame(cn.pending, &req)
	cn.mu.Unlock()
	select {
	case cn.flushC <- struct{}{}:
	default:
	}
	return w, req.tag, nil
}

// Watch opens a prefix subscription on one of the client's connections
// and returns its stream once the server acknowledges it. buf sizes the
// client-side event buffer (non-positive = DefaultWatchBuffer) and is
// also requested as the server-side buffer. The stream ends when ctx is
// cancelled, Close is called, the consumer falls behind, or the
// connection dies — it does NOT resubscribe on its own (the sharded
// layer owns that policy).
func (m *MuxClient) Watch(ctx context.Context, prefix string, buf int) (*WatchStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cn, err := m.conn(ctx)
	if err != nil {
		return nil, err
	}
	if buf < 1 {
		buf = DefaultWatchBuffer
	}
	if buf > maxWatchBuffer {
		buf = maxWatchBuffer
	}
	st := &WatchStream{cn: cn, prefix: prefix, ch: make(chan WatchEvent, buf), done: make(chan struct{})}
	w, tag, err := cn.startWatch(frame{op: opWatch, key: prefix, aux: uint32(buf)}, st)
	if err != nil {
		return nil, err
	}
	var tm core.WheelTimer
	if m.timeout > 0 {
		tm = core.SharedWheel().AfterFunc(m.timeout, muxTimeoutFired, cn, int64(tag))
	}
	select {
	case fr := <-w.ch:
		tm.Stop()
		muxWaiterPool.Put(w)
		switch fr.op {
		case opWatchOK:
			if ctx.Done() != nil {
				go func() {
					select {
					case <-ctx.Done():
						st.closeAndUnwatch(context.Cause(ctx))
					case <-st.done:
					}
				}()
			}
			return st, nil
		case opTimeout:
			err := fmt.Errorf("%w after %v", ErrMuxTimeout, m.timeout)
			st.closeAndUnwatch(err)
			return nil, err
		case opErr:
			err := fmt.Errorf("memkv: server error: %s", fr.val)
			st.closeAndUnwatch(err)
			return nil, err
		default:
			err := fmt.Errorf("memkv: unexpected response op %#x", fr.op)
			st.closeAndUnwatch(err)
			return nil, err
		}
	case <-ctx.Done():
		tm.Stop()
		cn.abandon(tag, w)
		st.closeAndUnwatch(ctx.Err())
		return nil, ctx.Err()
	case <-cn.done:
		tm.Stop()
		err := cn.lostErr()
		st.end(err)
		return nil, err
	}
}

// CAS stores value under key only if the stored version equals expect
// (0 = create if absent; an expired key counts as absent). On success
// applied is true and current is the freshly minted version; on
// conflict applied is false and current is the version the server
// holds (0 if absent) — retry from it if the caller's intent survives
// a concurrent update.
func (m *MuxClient) CAS(ctx context.Context, key string, value []byte, ttl time.Duration, expect uint64) (current uint64, applied bool, err error) {
	if err := validateKey(key); err != nil {
		return 0, false, err
	}
	fr, err := m.do(ctx, frame{op: opCAS, key: key, aux: ttlSeconds(ttl), val: appendVerPayload(nil, expect, 0, value)})
	if err != nil {
		return 0, false, err
	}
	return frameToCAS(&fr)
}

func frameToCAS(fr *frame) (current uint64, applied bool, err error) {
	switch fr.op {
	case opCASResp:
		ver, _, _, err := decodeVerPayload(fr.val)
		if err != nil {
			return 0, false, err
		}
		return ver, fr.aux == 1, nil
	case opErr:
		return 0, false, fmt.Errorf("memkv: server error: %s", fr.val)
	default:
		return 0, false, fmt.Errorf("memkv: unexpected response op %#x", fr.op)
	}
}
