package slo

import (
	"fmt"
	"testing"
	"time"
)

func testLadder(t *testing.T) []rung {
	t.Helper()
	return buildLadder(3)
}

func testTuning() tuning {
	return tuning{minSamples: 48, relaxFrac: 0.7, preferredQuorum: 2}
}

// TestLadderMonotone pins the ladder's two invariants: expected extra
// load strictly increases rung to rung (so "one rung up" is always the
// cheapest tighten), and every hedging quantile stays within [p50, p99].
func TestLadderMonotone(t *testing.T) {
	for _, maxFanout := range []int{1, 2, 3, 4, 5} {
		lad := buildLadder(maxFanout)
		if lad[0] != (rung{fanout: 1, q: 1}) {
			t.Fatalf("maxFanout=%d: rung 0 = %+v, want fanout 1", maxFanout, lad[0])
		}
		prev := -1.0
		for i, r := range lad {
			e := expectedExtra(r)
			if e <= prev {
				t.Errorf("maxFanout=%d: expectedExtra not increasing at rung %d: %g after %g", maxFanout, i, e, prev)
			}
			prev = e
			if r.fanout > maxFanout {
				t.Errorf("maxFanout=%d: rung %d fanout %d exceeds cap", maxFanout, i, r.fanout)
			}
			if r.fanout > 1 && (r.q < 0.50 || r.q > 0.99) {
				t.Errorf("maxFanout=%d: rung %d quantile %g outside [p50, p99]", maxFanout, i, r.q)
			}
		}
	}
	if e := expectedExtra(rung{fanout: 2, q: 0.9}); e < 0.099 || e > 0.101 {
		t.Errorf("expectedExtra(2, p90) = %g, want 0.1", e)
	}
	if e := expectedExtra(rung{fanout: 3, q: 0.5}); e < 0.749 || e > 0.751 {
		t.Errorf("expectedExtra(3, p50) = %g, want 0.75", e)
	}
}

// TestDecideTable drives every decision branch from fixtures: for each
// (window, point, target) the knob must move in the proven-correct
// direction.
func TestDecideTable(t *testing.T) {
	lad := testLadder(t)
	tn := testTuning()
	tgt := Target{P99: 100 * time.Millisecond, MaxExtraLoad: 0.3}
	ok := Window{Samples: 1000, Mean: 20 * time.Millisecond}

	win := func(p99 time.Duration, extra float64) Window {
		w := ok
		w.P99, w.ExtraLoad = p99, extra
		return w
	}
	// Rung index whose successor would blow the 0.3 budget: the last
	// affordable rung on the fanout-2 sweep (1 - q <= 0.3 ⇒ q >= 0.7).
	lastAffordable := 0
	for i, r := range lad {
		if affordable(r, tgt) {
			lastAffordable = i
		}
	}
	if r := lad[lastAffordable]; r.fanout != 2 || r.q != 0.70 {
		t.Fatalf("last affordable rung = %+v, want fanout 2 q 0.70", r)
	}

	cases := []struct {
		name     string
		w        Window
		p        point
		wantP    point
		wantMove Move
		wantWhy  Reason
	}{
		{"cold-holds", Window{Samples: 3, P99: time.Second}, point{2, 1}, point{2, 1}, MoveHold, ReasonCold},
		{"no-p99-holds", Window{Samples: 1000}, point{2, 1}, point{2, 1}, MoveHold, ReasonCold},
		{"gated-clamps", func() Window { w := win(10*time.Millisecond, 0.2); w.Gated = true; return w }(), point{4, 2}, point{0, 1}, MoveClamp, ReasonGated},
		{"gated-at-floor-holds", func() Window { w := win(time.Second, 0); w.Gated = true; return w }(), point{0, 1}, point{0, 1}, MoveHold, ReasonGated},
		{"miss-drops-quorum-first", win(200*time.Millisecond, 0.05), point{2, 2}, point{2, 1}, MoveTighten, ReasonMiss},
		{"miss-climbs-rung", win(200*time.Millisecond, 0.05), point{2, 1}, point{3, 1}, MoveTighten, ReasonMiss},
		{"miss-respects-budget", win(200*time.Millisecond, 0.05), point{lastAffordable, 1}, point{lastAffordable, 1}, MoveHold, ReasonExhausted},
		{"over-budget-relaxes-now", win(90*time.Millisecond, 0.5), point{5, 1}, point{4, 1}, MoveRelax, ReasonOverBudget},
		{"over-budget-beats-miss", win(500*time.Millisecond, 0.5), point{5, 1}, point{4, 1}, MoveRelax, ReasonOverBudget},
		{"headroom-restores-quorum-first", win(20*time.Millisecond, 0.05), point{2, 1}, point{2, 2}, MoveRelax, ReasonHeadroom},
		{"headroom-descends-rung", win(20*time.Millisecond, 0.05), point{2, 2}, point{1, 2}, MoveRelax, ReasonHeadroom},
		{"headroom-at-floor-holds", win(20*time.Millisecond, 0), point{0, 2}, point{0, 2}, MoveHold, ReasonHeadroom},
		{"deadband-holds", win(85*time.Millisecond, 0.1), point{2, 1}, point{2, 1}, MoveHold, ReasonDeadband},
		{"band-top-edge-holds", win(100*time.Millisecond, 0.1), point{2, 1}, point{2, 1}, MoveHold, ReasonDeadband},
		{"band-bottom-edge-holds", win(70*time.Millisecond, 0.1), point{2, 1}, point{2, 1}, MoveHold, ReasonDeadband},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, mv, why := decide(tc.w, tc.p, tgt, lad, tn)
			if got != tc.wantP || mv != tc.wantMove || why != tc.wantWhy {
				t.Fatalf("decide(%+v, %+v) = (%+v, %v, %v), want (%+v, %v, %v)",
					tc.w, tc.p, got, mv, why, tc.wantP, tc.wantMove, tc.wantWhy)
			}
		})
	}
}

// TestDecideUncappedBudget: MaxExtraLoad <= 0 means no budget — the
// controller may climb the whole ladder and never relaxes for spend.
func TestDecideUncappedBudget(t *testing.T) {
	lad := testLadder(t)
	tn := testTuning()
	tgt := Target{P99: 100 * time.Millisecond}
	w := Window{Samples: 1000, P99: time.Second, ExtraLoad: 1.8}
	p := point{rung: len(lad) - 2, quorum: 1}
	got, mv, _ := decide(w, p, tgt, lad, tn)
	if mv != MoveTighten || got.rung != p.rung+1 {
		t.Fatalf("uncapped tighten = (%+v, %v), want climb to %d", got, mv, p.rung+1)
	}
}

// TestDecideNoOscillation sweeps the hysteresis band at every operating
// point: any p99 inside [RelaxFraction·target, target] must hold, so a
// tighten that lands the p99 anywhere in the band cannot be immediately
// undone (and vice versa).
func TestDecideNoOscillation(t *testing.T) {
	lad := testLadder(t)
	tn := testTuning()
	tgt := Target{P99: 100 * time.Millisecond, MaxExtraLoad: 0.3}
	for rungIdx := range lad {
		if !affordable(lad[rungIdx], tgt) {
			// Unaffordable rungs are not steady states: the budget rule
			// descends from them by design, deadband or not.
			continue
		}
		for q := 1; q <= tn.preferredQuorum; q++ {
			p := point{rung: rungIdx, quorum: q}
			for frac := 0.70; frac <= 1.0; frac += 0.01 {
				p99 := time.Duration(frac * float64(tgt.P99))
				w := Window{Samples: 1000, P99: p99, ExtraLoad: 0.1}
				got, mv, why := decide(w, p, tgt, lad, tn)
				if mv != MoveHold || got != p {
					t.Fatalf("p99=%v at %+v: move %v (%v) to %+v; deadband must hold", p99, p, mv, why, got)
				}
			}
		}
	}

	// Closed-loop check: alternate windows hugging both band edges and
	// assert the operating point never moves after settling.
	p := point{rung: 3, quorum: 1}
	for i := 0; i < 100; i++ {
		p99 := 71 * time.Millisecond
		if i%2 == 0 {
			p99 = 99 * time.Millisecond
		}
		next, mv, _ := decide(Window{Samples: 1000, P99: p99, ExtraLoad: 0.1}, p, tgt, lad, tn)
		if mv != MoveHold {
			t.Fatalf("iteration %d: oscillated with %v to %+v", i, mv, next)
		}
		p = next
	}
}

// TestDecideConvergesFromAnywhere: from every starting point, a steady
// miss signal walks monotonically up the affordable ladder and a steady
// headroom signal (patience aside — decide is patience-free) walks back
// down to the floor; both directions terminate.
func TestDecideConvergesFromAnywhere(t *testing.T) {
	lad := testLadder(t)
	tn := testTuning()
	tgt := Target{P99: 100 * time.Millisecond, MaxExtraLoad: 0.3}
	miss := Window{Samples: 1000, P99: 500 * time.Millisecond, ExtraLoad: 0.05}
	headroom := Window{Samples: 1000, P99: 5 * time.Millisecond, ExtraLoad: 0.05}
	for start := range lad {
		p := point{rung: start, quorum: tn.preferredQuorum}
		for i := 0; ; i++ {
			next, mv, _ := decide(miss, p, tgt, lad, tn)
			if mv == MoveHold {
				break
			}
			if cost, prev := expectedExtra(lad[next.rung]), expectedExtra(lad[p.rung]); mv == MoveTighten && next.quorum == p.quorum && cost <= prev {
				t.Fatalf("tighten from %+v did not increase spend (%g -> %g)", p, prev, cost)
			}
			p = next
			if i > 3*len(lad) {
				t.Fatalf("tighten loop did not terminate from rung %d", start)
			}
		}
		if !affordable(lad[p.rung], tgt) {
			t.Fatalf("steady miss settled on unaffordable rung %+v", lad[p.rung])
		}
		for i := 0; ; i++ {
			next, mv, _ := decide(headroom, p, tgt, lad, tn)
			if mv == MoveHold {
				break
			}
			p = next
			if i > 3*len(lad) {
				t.Fatalf("relax loop did not terminate")
			}
		}
		if p.rung != 0 || p.quorum != tn.preferredQuorum {
			t.Fatalf("steady headroom settled at %+v, want rung 0 quorum %d", p, tn.preferredQuorum)
		}
	}
}

func TestMoveReasonStrings(t *testing.T) {
	for m := MoveHold; m <= MoveClamp; m++ {
		if m.String() == "unknown" {
			t.Errorf("Move(%d) has no name", m)
		}
	}
	if Move(99).String() != "unknown" {
		t.Errorf("out-of-range Move should stringify as unknown")
	}
	for r := ReasonDeadband; r <= ReasonPatience; r++ {
		if r.String() == "unknown" {
			t.Errorf("Reason(%d) has no name", r)
		}
	}
	_ = fmt.Sprintf("%v %v", MoveTighten, ReasonMiss)
}
