package slo

import (
	"math"

	"redundancy/internal/dist"
	"redundancy/internal/queueing"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// validationQuantiles is the CDF skeleton fitted from the window when
// pre-flighting a tighten. The top is deliberately dense: the sim
// exists to predict tail behavior.
var validationQuantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// validateTighten pre-flights a candidate rung in the queueing model
// before letting it go live: it fits an empirical service distribution
// from the window's quantiles, estimates the offered load from the
// governor's EWMA (or Config.LoadEstimate), and runs the hedged model
// in HedgeSLO mode against a no-redundancy baseline under the same
// arrival seed. The tighten is accepted only if the candidate's
// simulated p99 is no worse than the baseline's — i.e. redundancy still
// helps at this load level. Whenever the inputs are insufficient to
// simulate (no load signal, degenerate distribution), the move is
// accepted: the governor clamp and the over-budget guard remain as
// runtime backstops, and refusing to ever tighten would wedge the
// controller at rung 0.
func (c *Controller) validateTighten(w Window, cand rung, tgt Target) bool {
	if c.cfg.DisableValidation || cand.fanout < 2 {
		return true
	}
	load := c.offeredLoad(w)
	if load <= 0 {
		return true
	}
	svc, ok := serviceDistFromWindow(w)
	if !ok {
		return true
	}
	requests := c.cfg.ValidateRequests
	if requests <= 0 {
		requests = 3000
	}
	servers := c.cfg.ValidateServers
	if servers < 2 {
		servers = 8
	}
	seed := c.cfg.Seed
	if seed == 0 {
		seed = 1
	}
	base := queueing.HedgedConfig{
		Servers: servers, Load: load, Service: svc,
		Mode: queueing.HedgeNone, Requests: requests, Seed: seed,
	}
	candCfg := base
	candCfg.Mode = queueing.HedgeSLO
	candCfg.Quantile = cand.q
	candCfg.MaxExtraLoad = tgt.MaxExtraLoad
	baseRes, err := queueing.RunHedged(base)
	if err != nil {
		return true
	}
	candRes, err := queueing.RunHedged(candCfg)
	if err != nil {
		return true
	}
	// The finite-sample p99 ratio carries a few percent of noise even
	// under paired seeds, and a shallow hedge (q=0.99 fires on 1% of
	// requests) moves the needle less than that noise. Only a clearly
	// predicted regression vetoes; in the model, harmful rungs overshoot
	// this margin by an order of magnitude (2-6x) while harmless ones
	// stay within it.
	return candRes.Sample.P99() <= baseRes.Sample.P99()*1.10
}

// offeredLoad estimates per-server offered load in (0, 1). The
// governor's EWMA counts in-flight copies per replica — the mean number
// in system L of a single-server queue — so Little's law inverts it:
// rho = L / (1 + L). The estimate is clamped to [0.05, 0.90], the range
// where the queueing model is both stable and informative.
func (c *Controller) offeredLoad(w Window) float64 {
	var load float64
	switch {
	case c.cfg.LoadEstimate != nil:
		load = c.cfg.LoadEstimate()
	case w.Utilization >= 0:
		load = w.Utilization / (1 + w.Utilization)
	default:
		return 0
	}
	if load <= 0 {
		return 0
	}
	return math.Min(0.90, math.Max(0.05, load))
}

// serviceDistFromWindow fits a unit-scale empirical distribution to the
// window's latency quantiles, normalized by the window mean so the
// model's one-service-time-unit convention holds. ok is false when the
// window cannot produce at least two distinct support points (the
// digest's log-scale bins collapse nearby quantiles) — too degenerate
// to simulate.
func serviceDistFromWindow(w Window) (dist.Dist, bool) {
	if w.QuantileFn == nil || w.Mean <= 0 {
		return nil, false
	}
	mean := float64(w.Mean)
	values := make([]float64, 0, len(validationQuantiles))
	cdf := make([]float64, 0, len(validationQuantiles))
	for _, p := range validationQuantiles {
		d, ok := w.QuantileFn(p)
		if !ok || d <= 0 {
			continue
		}
		v := float64(d) / mean
		if n := len(values); n > 0 && v <= values[n-1] {
			// Same histogram bin as the previous point: fold the mass
			// forward by raising that point's cumulative probability.
			cdf[n-1] = p
			continue
		}
		values = append(values, v)
		cdf = append(cdf, p)
	}
	if len(values) < 2 {
		return nil, false
	}
	cdf[len(cdf)-1] = 1
	e := dist.NewEmpirical(values, cdf, true)
	return e, true
}
