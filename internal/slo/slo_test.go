package slo

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"redundancy/internal/core"
)

func testController(t *testing.T, tgt Target, mut func(*Config)) *Controller {
	t.Helper()
	cfg := Config{
		Counters:          core.NewCounters(),
		MinWindowSamples:  10,
		DisableValidation: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	return New(tgt, cfg)
}

// hotWindow is a window loud enough to act on.
func hotWindow(p99 time.Duration, extra float64) Window {
	return Window{P99: p99, Mean: p99 / 4, Samples: 1000, ExtraLoad: extra, Utilization: -1}
}

// TestStepTightensOnMiss: a missed p99 must raise the fan-out above 1
// on the first actionable window, visible immediately through every
// data-path accessor.
func TestStepTightensOnMiss(t *testing.T) {
	tgt := Target{P99: 50 * time.Millisecond, MaxExtraLoad: 0.5}
	c := testController(t, tgt, nil)
	op, mv := c.Step(DefaultClass, hotWindow(200*time.Millisecond, 0))
	if mv != MoveTighten || op.Fanout != 2 || op.Quantile != 0.99 {
		t.Fatalf("first miss: op=%+v move=%v, want fanout 2 at p99", op, mv)
	}
	if k, _ := c.Fanout(); k != 2 {
		t.Fatalf("Controller.Fanout = %d after tighten, want 2", k)
	}
	if !strings.Contains(c.String(), "k=2@p99") {
		t.Fatalf("String() = %q, want tightened operating point", c.String())
	}
}

// TestStepRelaxPatience: headroom must persist for RelaxPatience
// consecutive windows before a relax is enacted, and any non-headroom
// window resets the streak.
func TestStepRelaxPatience(t *testing.T) {
	tgt := Target{P99: 100 * time.Millisecond, MaxExtraLoad: 0.5}
	c := testController(t, tgt, func(cfg *Config) { cfg.RelaxPatience = 3 })
	// Climb two rungs first.
	c.Step(DefaultClass, hotWindow(500*time.Millisecond, 0))
	c.Step(DefaultClass, hotWindow(500*time.Millisecond, 0))
	start, _ := c.ClassConfig(DefaultClass)
	if start.Fanout != 2 || start.Quantile != 0.97 {
		t.Fatalf("setup climbed to %+v, want fanout 2 at p97", start)
	}

	headroom := hotWindow(10*time.Millisecond, 0.02)
	if op, mv := c.Step(DefaultClass, headroom); mv != MoveHold || op != start {
		t.Fatalf("headroom window 1: move=%v op=%+v, want patient hold", mv, op)
	}
	if op, mv := c.Step(DefaultClass, headroom); mv != MoveHold || op != start {
		t.Fatalf("headroom window 2: move=%v op=%+v, want patient hold", mv, op)
	}
	if op, mv := c.Step(DefaultClass, headroom); mv != MoveRelax || op.Quantile != 0.99 {
		t.Fatalf("headroom window 3: move=%v op=%+v, want relax to p99", mv, op)
	}

	// A deadband window must reset the streak: two more headroom
	// windows after it may not relax yet.
	c.Step(DefaultClass, hotWindow(90*time.Millisecond, 0.02))
	c.Step(DefaultClass, headroom)
	if op, mv := c.Step(DefaultClass, headroom); mv != MoveHold {
		t.Fatalf("streak not reset by deadband window: move=%v op=%+v", mv, op)
	}
	st := c.Stats()
	if len(st) != 1 || st[0].LastReason != ReasonPatience.String() {
		t.Fatalf("Stats = %+v, want patience as last reason", st)
	}
}

// TestStepGovernorClamp: a gated window must drop any class straight to
// no redundancy, quorum 1.
func TestStepGovernorClamp(t *testing.T) {
	tgt := Target{P99: 100 * time.Millisecond, MaxExtraLoad: 0.5}
	c := testController(t, tgt, func(cfg *Config) { cfg.PreferredReadQuorum = 2 })
	c.SetTarget("batch", tgt)
	for i := 0; i < 4; i++ {
		c.Step("batch", hotWindow(time.Second, 0))
	}
	if op, _ := c.ClassConfig("batch"); op.Fanout < 2 {
		t.Fatalf("setup: batch did not tighten: %+v", op)
	}
	w := hotWindow(time.Second, 0)
	w.Gated = true
	op, mv := c.Step("batch", w)
	if mv != MoveClamp || op.Fanout != 1 || op.ReadQuorum != 1 {
		t.Fatalf("gated step: move=%v op=%+v, want clamp to k=1 rq=1", mv, op)
	}
	if c.ReadQuorum("batch") != 1 {
		t.Fatalf("ReadQuorum after clamp = %d, want 1", c.ReadQuorum("batch"))
	}
}

// TestValidationVetoesTightenUnderHighLoad: with validation enabled and
// the offered load pinned near saturation, the queueing model must
// predict that hedging hurts the tail and veto the climb; the same
// controller at low load must let it through.
func TestValidationVetoesTightenUnderHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the queueing model")
	}
	tgt := Target{P99: 50 * time.Millisecond, MaxExtraLoad: 1.5}
	load := 0.9
	mk := func() *Controller {
		return testController(t, tgt, func(cfg *Config) {
			cfg.DisableValidation = false
			cfg.LoadEstimate = func() float64 { return load }
			cfg.ValidateRequests = 4000
			cfg.Seed = 7
		})
	}
	// A long-tailed window: p50 well under target, p99 over it, so the
	// controller wants to hedge.
	w := hotWindow(200*time.Millisecond, 0)
	w.Mean = 25 * time.Millisecond
	w.QuantileFn = func(p float64) (time.Duration, bool) {
		switch {
		case p < 0.55:
			return 10 * time.Millisecond, true
		case p < 0.80:
			return 25 * time.Millisecond, true
		case p < 0.92:
			return 60 * time.Millisecond, true
		case p < 0.96:
			return 120 * time.Millisecond, true
		default:
			return 250 * time.Millisecond, true
		}
	}

	// Six consecutive misses try to climb six rungs (p99 down to p85).
	// At 0.2 load the model accepts every step; at 0.9 load cheap p99
	// hedging still helps (the model's own prediction) but the deeper
	// quantiles flip to harmful, so the climb must freeze with at least
	// one veto — the paper's threshold, enforced at decision time.
	climb := func(c *Controller) ClassConfig {
		for i := 0; i < 6; i++ {
			c.Step(DefaultClass, w)
		}
		op, _ := c.ClassConfig(DefaultClass)
		return op
	}

	load = 0.2
	lo := mk()
	loOp := climb(lo)
	if st := lo.Stats(); st[0].Rejects != 0 || loOp.Quantile > 0.85 {
		t.Fatalf("low load: op=%+v rejects=%d, want six accepted climbs", loOp, st[0].Rejects)
	}

	load = 0.9
	hi := mk()
	hiOp := climb(hi)
	st := hi.Stats()
	if st[0].Rejects == 0 || st[0].LastReason != ReasonRejected.String() {
		t.Fatalf("high load: stats=%+v, want vetoed climbs", st[0])
	}
	if hiOp.Fanout != 2 || hiOp.Quantile <= loOp.Quantile {
		t.Fatalf("high load froze at %+v vs low load %+v; want a shallower quantile", hiOp, loOp)
	}
}

// TestTickWindows drives Tick from real Counters traffic: the first
// tick only baselines, a tick over slow traffic tightens, and the
// window really is a window — the tighten must key off recent
// observations, not the all-time distribution.
func TestTickWindows(t *testing.T) {
	tgt := Target{P99: 50 * time.Millisecond, MaxExtraLoad: 0.5}
	ctr := core.NewCounters()
	c := testController(t, tgt, func(cfg *Config) { cfg.Counters = ctr })
	c.SetTarget("reads", tgt)

	obs := func(label string, d time.Duration, n int) {
		for i := 0; i < n; i++ {
			ctr.Observe(core.Observation{Winner: "a", Launched: 1, Latency: d, Label: label})
		}
	}

	// A long fast history that would mask a recent regression if the
	// controller read cumulative quantiles.
	obs("reads", 5*time.Millisecond, 5000)
	c.Tick() // baseline
	if op, _ := c.ClassConfig("reads"); op.Fanout != 1 {
		t.Fatalf("baseline tick moved the operating point: %+v", op)
	}

	obs("reads", 200*time.Millisecond, 100)
	c.Tick()
	op, _ := c.ClassConfig("reads")
	if op.Fanout != 2 {
		t.Fatalf("tick over slow window: op=%+v, want tighten to fanout 2", op)
	}
	st := c.Stats()
	var reads ClassStats
	for _, s := range st {
		if s.Class == "reads" {
			reads = s
		}
	}
	if reads.Tightens != 1 || reads.WindowP99 < 100*time.Millisecond {
		t.Fatalf("reads stats = %+v, want one tighten on a ~200ms window", reads)
	}

	// The default class watches overall traffic (it saw the same ops).
	if def, ok := c.ClassConfig(DefaultClass); !ok || def.Fanout != 2 {
		t.Fatalf("default class = %+v, want tightened from overall traffic", def)
	}
}

// TestTickMeasuresExtraLoad: the windowed extra-load measurement must
// reflect launched-over-ops deltas, driving the over-budget relax.
func TestTickMeasuresExtraLoad(t *testing.T) {
	tgt := Target{P99: time.Hour, MaxExtraLoad: 0.2}
	ctr := core.NewCounters()
	c := testController(t, tgt, func(cfg *Config) { cfg.Counters = ctr })
	// Climb a rung so there is something to relax.
	c.Step(DefaultClass, hotWindow(2*time.Hour, 0))
	op, _ := c.ClassConfig(DefaultClass)
	if op.Fanout != 2 {
		t.Fatalf("setup: %+v", op)
	}
	c.Tick() // baseline
	for i := 0; i < 200; i++ {
		ctr.Observe(core.Observation{Winner: "a", Launched: 2, Latency: time.Millisecond})
	}
	c.Tick()
	if op, _ = c.ClassConfig(DefaultClass); op.Fanout != 1 {
		t.Fatalf("100%% measured extra load over a 0.2 budget did not relax: %+v", op)
	}
	if st := c.Stats(); st[0].LastReason != ReasonOverBudget.String() {
		t.Fatalf("last reason = %q, want over-budget", st[0].LastReason)
	}
}

// TestClassStrategySchedule: the per-class view hedges at the operating
// point's quantile over warmed digests and launches immediately over
// cold ones.
func TestClassStrategySchedule(t *testing.T) {
	tgt := Target{P99: 50 * time.Millisecond, MaxExtraLoad: 0.5}
	c := testController(t, tgt, nil)
	s := c.Class("reads")
	c.Step("reads", hotWindow(200*time.Millisecond, 0)) // -> fanout 2 at p99

	warm := &core.LatDigest{}
	for i := 0; i < 100; i++ {
		warm.Observe(10 * time.Millisecond)
	}
	d := core.DigestList{warm, &core.LatDigest{}}
	delays := s.Schedule(d)
	if len(delays) != 2 || delays[0] != 0 {
		t.Fatalf("Schedule = %v", delays)
	}
	q, _ := warm.Quantile(0.99)
	if delays[1] != q {
		t.Fatalf("hedge delay = %v, want p99 of warm digest %v", delays[1], q)
	}
	cold := core.DigestList{&core.LatDigest{}, &core.LatDigest{}}
	var buf [2]time.Duration
	if got := s.ScheduleInto(cold, buf[:]); got[1] != 0 {
		t.Fatalf("cold digest hedge delay = %v, want immediate", got[1])
	}
	if k, sel := s.Fanout(); k != 2 || sel != core.SelectRanked {
		t.Fatalf("Fanout = (%d, %v)", k, sel)
	}
	// One operation's schedule never mixes operating points: a swap
	// between Fanout and Schedule is seen as a consistent snapshot by
	// the next call, and d.Len() governs the slice, not the new fanout.
	if got := s.Schedule(core.DigestList{warm}); got != nil {
		t.Fatalf("single-digest schedule = %v, want nil", got)
	}
}

// TestControllerChurn swaps targets, steps windows, and reads the
// data-path surface concurrently; run with -race -count=5. It pins the
// guarantee that target swaps mid-call never tear an operating point:
// every observed ClassConfig must be internally consistent (fanout 1
// never hedges, hedging quantile always within [p50, p99]).
func TestControllerChurn(t *testing.T) {
	tgt := Target{P99: 50 * time.Millisecond, MaxExtraLoad: 0.5}
	ctr := core.NewCounters()
	c := testController(t, tgt, func(cfg *Config) {
		cfg.Counters = ctr
		cfg.Interval = time.Millisecond
		cfg.PreferredReadQuorum = 2
	})
	c.Start()
	defer c.Stop()

	const classes = 3
	names := []string{"a", "b", "default"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(150*time.Millisecond, func() { close(stop) })

	for g := 0; g < classes; g++ {
		name := names[g]
		wg.Add(1)
		go func() { // data path: schedule + observe
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(name))))
			warm := &core.LatDigest{}
			for i := 0; i < 64; i++ {
				warm.Observe(time.Duration(1+rng.Intn(20)) * time.Millisecond)
			}
			d := core.DigestList{warm, warm, warm}
			var buf [3]time.Duration
			s := c.Class(name)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k, _ := s.Fanout()
				op := *s.cl.op.Load()
				if (op.Fanout == 1) != (op.Quantile == 1) || (op.Fanout > 1 && (op.Quantile < 0.5 || op.Quantile > 0.99)) {
					panic("torn operating point")
				}
				s.ScheduleInto(d[:min(k, 3)], buf[:])
				ctr.Observe(core.Observation{Winner: "a", Launched: k, Latency: time.Duration(1+rng.Intn(100)) * time.Millisecond, Label: name})
			}
		}()
		wg.Add(1)
		go func() { // control path: swap targets and force steps
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(name)) * 7))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.SetTarget(name, Target{P99: time.Duration(1+rng.Intn(200)) * time.Millisecond, MaxExtraLoad: float64(rng.Intn(10)) / 10})
				c.Step(name, hotWindow(time.Duration(1+rng.Intn(300))*time.Millisecond, float64(rng.Intn(20))/10))
				c.ReadQuorum(name)
				c.Stats()
			}
		}()
	}
	wg.Wait()
	for _, name := range c.Classes() {
		op, ok := c.ClassConfig(name)
		if !ok || op.Fanout < 1 || op.ReadQuorum < 1 {
			t.Fatalf("class %s ended in invalid state: %+v (ok=%v)", name, op, ok)
		}
	}
	// Start is idempotent and restartable.
	c.Stop()
	c.Start()
	c.Start()
	c.Stop()
}
