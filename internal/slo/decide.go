// Package slo closes the loop on the paper's trade-off curve. Every
// knob the rest of the repo exposes — hedge quantile, fan-out, read
// quorum — trades added load for tail latency, and so far each call
// site picks values by hand. The Controller here picks them instead:
// it watches per-class latency digests and the Governor's utilization
// EWMA, and hill-climbs a ladder of operating points, with hysteresis,
// toward the cheapest configuration whose windowed p99 meets a declared
// Target. Tighten moves can additionally be validated in the queueing
// model (HedgeSLO mode) before going live, so the controller never
// commits to redundancy that the current load level would turn into
// queueing harm — the paper's threshold result, applied at runtime.
package slo

import (
	"time"
)

// Target declares what a traffic class is owed and what it may spend.
type Target struct {
	// P99 is the tail-latency objective: the controller tightens while
	// the class's windowed 99th percentile exceeds it.
	P99 time.Duration
	// MaxExtraLoad caps the redundancy spend, in extra copies per
	// operation (0.3 means at most 30% added load). The controller never
	// climbs to a rung whose expected extra load exceeds it, and backs
	// off if the measured spend overshoots. Non-positive means uncapped.
	MaxExtraLoad float64
}

// rung is one operating point on the redundancy ladder: a fan-out and
// the hedge quantile at which the extra copies launch. The ladder is
// ordered by expected extra load, so "one rung up" is always the
// cheapest possible tightening step.
type rung struct {
	fanout int
	q      float64 // hedge quantile; 1 when fanout == 1 (never hedges)
}

// ladderQuantiles is the quantile sweep within one fan-out level,
// tightest (cheapest) first. The range is [p50, p99] by construction:
// hedging below the median would spend more than a whole extra copy's
// worth of hedges on requests that were already fast.
var ladderQuantiles = []float64{0.99, 0.97, 0.95, 0.92, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65, 0.60, 0.55, 0.50}

// buildLadder enumerates the operating points up to maxFanout. Rung 0
// is no redundancy. Fan-out 2 sweeps the hedge quantile from p99 down
// to p50; higher fan-outs are appended at p50 only, so expected extra
// load stays strictly increasing along the ladder.
func buildLadder(maxFanout int) []rung {
	lad := []rung{{fanout: 1, q: 1}}
	if maxFanout >= 2 {
		for _, q := range ladderQuantiles {
			lad = append(lad, rung{fanout: 2, q: q})
		}
	}
	for f := 3; f <= maxFanout; f++ {
		lad = append(lad, rung{fanout: f, q: 0.50})
	}
	return lad
}

// expectedExtra is the a-priori added load of a rung, in extra copies
// per operation: copy i+1 launches only when the operation is still
// outstanding at the quantile-q hedge delay, which happens with
// probability (1-q) per level, so the expectation is Σ_{i=1..f-1}(1-q)^i.
func expectedExtra(r rung) float64 {
	extra, pLevel := 0.0, 1.0
	for i := 1; i < r.fanout; i++ {
		pLevel *= 1 - r.q
		extra += pLevel
	}
	return extra
}

// affordable reports whether a rung's expected extra load fits within
// the target's budget.
func affordable(r rung, tgt Target) bool {
	return tgt.MaxExtraLoad <= 0 || expectedExtra(r) <= tgt.MaxExtraLoad+1e-9
}

// Window is one control interval's measurements for a class — the
// controller's entire view of the world when it decides a move. Tick
// fills it from Counters snapshots and the Governor; simulations and
// tests construct it directly and feed it to Step.
type Window struct {
	// P99 is the windowed 99th-percentile latency; zero when the window
	// recorded nothing.
	P99 time.Duration
	// Mean is the windowed mean latency, used to scale the validation
	// model; zero disables validation for the window.
	Mean time.Duration
	// Samples counts the window's successful operations. Below the
	// controller's MinWindowSamples the window is too noisy to act on.
	Samples int64
	// ExtraLoad is the measured redundancy spend in the window, in extra
	// copies per operation ((launched - ops) / ops).
	ExtraLoad float64
	// Utilization is the Governor's EWMA of in-flight copies per
	// replica; negative when no governor (or no sample) is available.
	Utilization float64
	// Gated reports the governor at or above its gate: redundancy is
	// being withheld upstream and the controller must clamp, not fight.
	Gated bool
	// QuantileFn, when set, serves arbitrary windowed quantiles so
	// validation can fit an empirical service distribution. Optional.
	QuantileFn func(p float64) (time.Duration, bool)
}

// Move classifies what one control round did to a class's operating
// point.
type Move int

const (
	// MoveHold kept the operating point.
	MoveHold Move = iota
	// MoveTighten spent more (dropped the read quorum, or climbed a
	// rung) to chase a missed p99.
	MoveTighten
	// MoveRelax spent less (restored quorum, or descended a rung) under
	// sustained headroom or a blown budget.
	MoveRelax
	// MoveClamp dropped straight to no redundancy because the governor
	// is at its gate.
	MoveClamp
)

func (m Move) String() string {
	switch m {
	case MoveHold:
		return "hold"
	case MoveTighten:
		return "tighten"
	case MoveRelax:
		return "relax"
	case MoveClamp:
		return "clamp"
	}
	return "unknown"
}

// Reason explains a Move (or the decision to hold).
type Reason int

const (
	// ReasonDeadband: the windowed p99 sits inside the hysteresis band
	// [RelaxFraction·P99, P99] — exactly where a converged controller
	// should rest, so nothing moves.
	ReasonDeadband Reason = iota
	// ReasonCold: too few window samples to trust any measurement.
	ReasonCold
	// ReasonGated: the governor is at its gate; redundancy would be
	// withheld anyway, so the controller clamps to the cheapest point.
	ReasonGated
	// ReasonOverBudget: measured extra load overshot MaxExtraLoad.
	ReasonOverBudget
	// ReasonMiss: windowed p99 above target.
	ReasonMiss
	// ReasonHeadroom: windowed p99 comfortably below target.
	ReasonHeadroom
	// ReasonExhausted: the p99 is missed but every tighter rung exceeds
	// the extra-load budget — the target is unreachable at this spend.
	ReasonExhausted
	// ReasonRejected: the queueing-model pre-flight predicted the
	// tighter rung would hurt the tail at the current load, so the
	// tighten was vetoed.
	ReasonRejected
	// ReasonPatience: headroom was seen but the relax streak has not
	// yet met RelaxPatience; holding to avoid oscillation.
	ReasonPatience
)

func (r Reason) String() string {
	switch r {
	case ReasonDeadband:
		return "deadband"
	case ReasonCold:
		return "cold"
	case ReasonGated:
		return "gated"
	case ReasonOverBudget:
		return "over-budget"
	case ReasonMiss:
		return "miss"
	case ReasonHeadroom:
		return "headroom"
	case ReasonExhausted:
		return "exhausted"
	case ReasonRejected:
		return "rejected"
	case ReasonPatience:
		return "patience"
	}
	return "unknown"
}

// point is a class's discrete operating point: a rung index on the
// ladder plus the read quorum.
type point struct {
	rung   int
	quorum int
}

// tuning carries the controller knobs decide needs, resolved from
// Config defaults.
type tuning struct {
	minSamples      int64
	relaxFrac       float64
	preferredQuorum int
}

// overSpendSlack is how far the measured extra load may overshoot
// MaxExtraLoad before the controller relaxes: the measurement is a
// windowed ratio with real variance, and backing off on every wiggle
// would oscillate.
const overSpendSlack = 1.1

// decide is the pure decision core: one window of measurements in, the
// next operating point and why out. It performs no I/O, no validation,
// and no patience accounting — Step layers those on — so tables of
// (window, point, target) fixtures can pin down every branch.
//
// The rules, in priority order:
//
//  1. Governor gated → clamp to rung 0, quorum 1. Redundancy is being
//     withheld upstream; holding a tight rung would only mis-report
//     what the system is actually doing, and quorum reads are load the
//     overloaded system can shed too.
//  2. Too few samples → hold. Noise is not a signal.
//  3. Measured spend above budget (with slack) → relax a rung
//     immediately. The budget is a declared cap, not advice.
//  4. p99 above target → tighten: drop the read quorum to 1 first
//     (latency for free — no extra copies), then climb one rung, but
//     never onto a rung whose expected extra load exceeds the budget.
//  5. p99 below RelaxFraction·target → relax: restore the preferred
//     read quorum first (spend the headroom on consistency), then
//     descend a rung.
//  6. Otherwise → hold; the point is inside the hysteresis band.
func decide(w Window, p point, tgt Target, lad []rung, tn tuning) (point, Move, Reason) {
	if w.Gated {
		if p.rung != 0 || p.quorum != 1 {
			return point{rung: 0, quorum: 1}, MoveClamp, ReasonGated
		}
		return p, MoveHold, ReasonGated
	}
	if w.Samples < tn.minSamples || w.P99 <= 0 {
		return p, MoveHold, ReasonCold
	}
	if tgt.MaxExtraLoad > 0 && p.rung > 0 {
		if w.ExtraLoad > tgt.MaxExtraLoad*overSpendSlack || !affordable(lad[p.rung], tgt) {
			// Measured spend overshot the cap, or the cap itself moved
			// below the current rung's expected spend (a target change):
			// either way the configuration violates the declared budget
			// and descends regardless of what the p99 says.
			return point{rung: p.rung - 1, quorum: p.quorum}, MoveRelax, ReasonOverBudget
		}
	}
	switch {
	case w.P99 > tgt.P99:
		if p.quorum > 1 {
			return point{rung: p.rung, quorum: p.quorum - 1}, MoveTighten, ReasonMiss
		}
		// The ladder's expected extra load is increasing, so if the very
		// next rung is unaffordable every later one is too.
		if p.rung+1 < len(lad) && affordable(lad[p.rung+1], tgt) {
			return point{rung: p.rung + 1, quorum: p.quorum}, MoveTighten, ReasonMiss
		}
		return p, MoveHold, ReasonExhausted
	case w.P99 < time.Duration(tn.relaxFrac*float64(tgt.P99)):
		if p.quorum < tn.preferredQuorum {
			return point{rung: p.rung, quorum: p.quorum + 1}, MoveRelax, ReasonHeadroom
		}
		if p.rung > 0 {
			return point{rung: p.rung - 1, quorum: p.quorum}, MoveRelax, ReasonHeadroom
		}
		return p, MoveHold, ReasonHeadroom
	}
	return p, MoveHold, ReasonDeadband
}
