package slo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/core"
)

// DefaultClass is the traffic class the Controller itself speaks for
// when used directly as a core.Strategy. It observes the Counters'
// overall aggregates (every operation, labeled or not); named classes
// observe only their own label.
const DefaultClass = "default"

// ClassConfig is a class's live operating point — what the data path
// reads on every call. Quantile and Fanout feed the hedging schedule;
// ReadQuorum is the controller's recommendation for quorum reads, which
// front doors (the gateway) apply per request.
type ClassConfig struct {
	// Quantile is the hedge quantile in [0.50, 0.99]; 1 when Fanout is
	// 1 and no hedge can fire.
	Quantile float64
	// Fanout is the maximum copies per operation.
	Fanout int
	// ReadQuorum is the recommended read quorum (1 = primary only).
	ReadQuorum int
}

// Config wires a Controller to its observation sources and tunes the
// control loop. Counters is required; everything else has serviceable
// defaults.
type Config struct {
	// Counters is the observation source: the same Observer installed
	// on the rings the controller steers. Class names are WithLabel
	// values; DefaultClass reads the overall aggregates.
	Counters *core.Counters
	// Governor, when set, supplies the utilization EWMA. At or above
	// the governor's gate the controller clamps every class to no
	// redundancy instead of fighting the gate.
	Governor *core.Governor
	// Interval is the control period for Start (default 1s).
	Interval time.Duration
	// MaxFanout caps the ladder (default 3).
	MaxFanout int
	// PreferredReadQuorum is the quorum restored under sustained
	// headroom (default 1, which disables the quorum knob).
	PreferredReadQuorum int
	// MinWindowSamples is the window size below which the controller
	// holds rather than act on noise (default 48).
	MinWindowSamples int64
	// RelaxFraction positions the bottom of the hysteresis band: relax
	// only when the windowed p99 is below RelaxFraction·Target.P99
	// (default 0.7).
	RelaxFraction float64
	// RelaxPatience is how many consecutive comfortable windows must
	// accrue before a relax is enacted (default 3). Tightens act
	// immediately — missing the SLO hurts now; saving money can wait.
	RelaxPatience int
	// DisableValidation skips the queueing-model pre-flight on tighten
	// moves.
	DisableValidation bool
	// ValidateRequests and ValidateServers size the pre-flight
	// simulation (defaults 3000 and 8).
	ValidateRequests int
	ValidateServers  int
	// LoadEstimate, when set, overrides the offered-load estimate
	// (per-server utilization in (0, 1)) used by validation; otherwise
	// it is derived from the Governor's EWMA.
	LoadEstimate func() float64
	// Seed makes validation runs reproducible (default 1).
	Seed int64
}

func (c Config) interval() time.Duration {
	if c.Interval <= 0 {
		return time.Second
	}
	return c.Interval
}

func (c Config) tuning() tuning {
	tn := tuning{minSamples: c.MinWindowSamples, relaxFrac: c.RelaxFraction, preferredQuorum: c.PreferredReadQuorum}
	if tn.minSamples <= 0 {
		tn.minSamples = 48
	}
	if tn.relaxFrac <= 0 || tn.relaxFrac >= 1 {
		tn.relaxFrac = 0.7
	}
	if tn.preferredQuorum < 1 {
		tn.preferredQuorum = 1
	}
	return tn
}

func (c Config) relaxPatience() int {
	if c.RelaxPatience <= 0 {
		return 3
	}
	return c.RelaxPatience
}

// class is one traffic class's control state. The atomic fields are the
// data-path interface (read on every call); the rest is loop state
// guarded by the controller's mutex.
type class struct {
	name   string
	target atomic.Pointer[Target]
	op     atomic.Pointer[ClassConfig]

	// Control-loop state, guarded by Controller.mu.
	p            point
	relaxStreak  int
	havePrev     bool
	prev         core.DigestSnapshot
	prevOps      int64
	prevLaunched int64

	// Introspection counters.
	moves      [4]atomic.Int64 // indexed by Move
	rejects    atomic.Int64
	lastP99    atomic.Int64  // ns
	lastExtra  atomic.Uint64 // float64 bits
	lastReason atomic.Int64
}

func (cl *class) publish(lad []rung) {
	r := lad[cl.p.rung]
	cl.op.Store(&ClassConfig{Quantile: r.q, Fanout: r.fanout, ReadQuorum: cl.p.quorum})
}

// Controller adapts per-class operating points toward their Targets.
// It implements core.Strategy and core.InlineScheduler, speaking for
// DefaultClass; per-class views from Class plug into calls via
// core.WithStrategyOverride + core.WithLabel. All methods are safe for
// concurrent use.
type Controller struct {
	cfg     Config
	lad     []rung
	tn      tuning
	defView *ClassStrategy

	mu      sync.Mutex
	classes map[string]*class

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New builds a Controller whose DefaultClass pursues target. Additional
// classes are registered on first use (Class, SetTarget) and inherit
// target until SetTarget overrides them.
func New(target Target, cfg Config) *Controller {
	if cfg.Counters == nil {
		panic("slo: Config.Counters is required")
	}
	maxFanout := cfg.MaxFanout
	if maxFanout < 1 {
		maxFanout = 3
	}
	c := &Controller{
		cfg:     cfg,
		lad:     buildLadder(maxFanout),
		tn:      cfg.tuning(),
		classes: make(map[string]*class),
	}
	def := c.ensureClass(DefaultClass)
	def.target.Store(&target)
	c.defView = &ClassStrategy{cl: def}
	return c
}

// ensureClass returns the named class, creating it at the cheapest
// operating point (no redundancy, preferred quorum) with the default
// class's target if it is new.
func (c *Controller) ensureClass(name string) *class {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl := c.classes[name]; cl != nil {
		return cl
	}
	cl := &class{name: name, p: point{rung: 0, quorum: c.tn.preferredQuorum}}
	tgt := Target{}
	if def := c.classes[DefaultClass]; def != nil {
		tgt = *def.target.Load()
	}
	cl.target.Store(&tgt)
	cl.publish(c.lad)
	c.classes[name] = cl
	return cl
}

// SetTarget declares (or replaces) a class's target, registering the
// class if needed. Safe to call while traffic is in flight; the control
// loop picks up the new target on its next round.
func (c *Controller) SetTarget(name string, tgt Target) {
	c.ensureClass(name).target.Store(&tgt)
}

// Target returns a class's current target and whether the class exists.
func (c *Controller) Target(name string) (Target, bool) {
	c.mu.Lock()
	cl := c.classes[name]
	c.mu.Unlock()
	if cl == nil {
		return Target{}, false
	}
	return *cl.target.Load(), true
}

// ClassConfig returns a class's live operating point and whether the
// class exists.
func (c *Controller) ClassConfig(name string) (ClassConfig, bool) {
	c.mu.Lock()
	cl := c.classes[name]
	c.mu.Unlock()
	if cl == nil {
		return ClassConfig{}, false
	}
	return *cl.op.Load(), true
}

// ReadQuorum returns the controller's current read-quorum
// recommendation for a class (1 when the class is unknown).
func (c *Controller) ReadQuorum(name string) int {
	if op, ok := c.ClassConfig(name); ok {
		return op.ReadQuorum
	}
	return 1
}

// Class returns the per-class strategy view: a core.Strategy (and
// InlineScheduler) that reads the class's live operating point on every
// call. Pair it with core.WithStrategyOverride and core.WithLabel(name)
// so the class's calls both follow and feed its control loop. The class
// is registered on first use.
func (c *Controller) Class(name string) *ClassStrategy {
	if name == "" || name == DefaultClass {
		return c.defView
	}
	return &ClassStrategy{cl: c.ensureClass(name)}
}

// Classes lists the registered class names, sorted.
func (c *Controller) Classes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.classes))
	for name := range c.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Step runs one control round for one class from caller-supplied
// measurements: the full decision pipeline — governor clamp, hysteresis
// deadband, relax patience, budget guard, queueing-model validation —
// and publishes the resulting operating point. Tick feeds it live
// windows; simulations and tests drive it directly.
func (c *Controller) Step(name string, w Window) (ClassConfig, Move) {
	cl := c.ensureClass(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stepLocked(cl, w)
}

func (c *Controller) stepLocked(cl *class, w Window) (ClassConfig, Move) {
	tgt := *cl.target.Load()
	next, mv, why := decide(w, cl.p, tgt, c.lad, c.tn)

	// Relax patience: headroom must persist. Budget overshoot and the
	// governor clamp act immediately — one is a declared cap, the other
	// an overload signal — but giving back redundancy on the first
	// comfortable window would oscillate against the tighten rule.
	if mv == MoveRelax && why == ReasonHeadroom {
		cl.relaxStreak++
		if cl.relaxStreak < c.cfg.relaxPatience() {
			next, mv, why = cl.p, MoveHold, ReasonPatience
		} else {
			cl.relaxStreak = 0
		}
	} else {
		cl.relaxStreak = 0
	}

	// Pre-flight rung climbs in the queueing model: at high load an
	// extra copy queues behind everyone else's and makes the tail
	// worse (the paper's threshold), so a tighten must first prove
	// itself against a no-redundancy baseline at the estimated load.
	if mv == MoveTighten && next.rung > cl.p.rung {
		if !c.validateTighten(w, c.lad[next.rung], tgt) {
			cl.rejects.Add(1)
			next, mv, why = cl.p, MoveHold, ReasonRejected
		}
	}

	cl.p = next
	cl.publish(c.lad)
	cl.moves[mv].Add(1)
	cl.lastP99.Store(int64(w.P99))
	cl.lastExtra.Store(floatBits(w.ExtraLoad))
	cl.lastReason.Store(int64(why))
	return *cl.op.Load(), mv
}

// Tick runs one control round for every registered class from live
// Counters and Governor measurements. The first round for a class only
// establishes its window baseline.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.classes {
		if w, ok := c.measureLocked(cl); ok {
			c.stepLocked(cl, w)
		}
	}
}

// measureLocked builds a class's window from the Counters and Governor,
// advancing the class's snapshot baseline. ok is false when there is
// nothing actionable (first observation, or no traffic at all).
func (c *Controller) measureLocked(cl *class) (Window, bool) {
	var (
		dg            *core.LatDigest
		ops, launched int64
	)
	if cl.name == DefaultClass {
		dg = c.cfg.Counters.LatencyDigest()
		ops = c.cfg.Counters.Ops()
		launched = c.cfg.Counters.LaunchedCopies()
	} else {
		dg = c.cfg.Counters.LabelLatencyDigest(cl.name)
		if st, ok := c.cfg.Counters.LabelSnapshot(cl.name); ok {
			ops, launched = st.Ops, st.Launched
		}
	}
	if dg == nil {
		return Window{}, false
	}
	var cur core.DigestSnapshot
	dg.Snapshot(&cur)
	if !cl.havePrev {
		cl.prev, cl.prevOps, cl.prevLaunched, cl.havePrev = cur, ops, launched, true
		return Window{}, false
	}
	prev := cl.prev
	w := Window{Utilization: -1}
	w.Samples = cur.WindowCount(&prev)
	w.P99, _ = cur.WindowQuantile(&prev, 0.99)
	w.Mean, _ = cur.WindowMean(&prev)
	w.QuantileFn = func(p float64) (time.Duration, bool) { return cur.WindowQuantile(&prev, p) }
	if dOps := ops - cl.prevOps; dOps > 0 {
		w.ExtraLoad = float64((launched-cl.prevLaunched)-dOps) / float64(dOps)
	}
	if g := c.cfg.Governor; g != nil {
		gs := g.Stats()
		if gs.Observed {
			w.Utilization = gs.Utilization
		}
		// Gated() only flips on the sampled Allow path; a controller
		// installed without the LoadAware wrapper still must clamp, so
		// compare the EWMA against the gate directly too.
		w.Gated = gs.Gated || (gs.Observed && gs.Utilization >= gs.Threshold)
	}
	cl.prev, cl.prevOps, cl.prevLaunched = cur, ops, launched
	return w, true
}

// Start launches the background control loop at the configured
// Interval. Stop ends it; Start after Stop restarts it.
func (c *Controller) Start() {
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.stop != nil {
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	c.stop, c.done = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.interval())
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the background control loop and waits for it to exit. The
// operating points remain live (the data path keeps reading them); only
// adaptation stops.
func (c *Controller) Stop() {
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop, c.done = nil, nil
}

// ClassStats is one class's introspection snapshot.
type ClassStats struct {
	// Class is the class name (the WithLabel value).
	Class string
	// Target is the declared objective.
	Target Target
	// Config is the live operating point.
	Config ClassConfig
	// ExpectedExtraLoad is the current rung's a-priori spend.
	ExpectedExtraLoad float64
	// WindowP99 and WindowExtraLoad are the last control round's
	// measurements.
	WindowP99       time.Duration
	WindowExtraLoad float64
	// LastReason explains the last round's decision.
	LastReason string
	// Holds, Tightens, Relaxes, Clamps count decisions; Rejects counts
	// tighten moves vetoed by the queueing-model pre-flight.
	Holds, Tightens, Relaxes, Clamps, Rejects int64
}

// Stats snapshots every class, sorted by name.
func (c *Controller) Stats() []ClassStats {
	c.mu.Lock()
	classes := make([]*class, 0, len(c.classes))
	for _, cl := range c.classes {
		classes = append(classes, cl)
	}
	c.mu.Unlock()
	sort.Slice(classes, func(i, j int) bool { return classes[i].name < classes[j].name })
	out := make([]ClassStats, 0, len(classes))
	for _, cl := range classes {
		op := *cl.op.Load()
		c.mu.Lock()
		exp := expectedExtra(c.lad[cl.p.rung])
		c.mu.Unlock()
		out = append(out, ClassStats{
			Class:             cl.name,
			Target:            *cl.target.Load(),
			Config:            op,
			ExpectedExtraLoad: exp,
			WindowP99:         time.Duration(cl.lastP99.Load()),
			WindowExtraLoad:   bitsFloat(cl.lastExtra.Load()),
			LastReason:        Reason(cl.lastReason.Load()).String(),
			Holds:             cl.moves[MoveHold].Load(),
			Tightens:          cl.moves[MoveTighten].Load(),
			Relaxes:           cl.moves[MoveRelax].Load(),
			Clamps:            cl.moves[MoveClamp].Load(),
			Rejects:           cl.rejects.Load(),
		})
	}
	return out
}

// Fanout implements core.Strategy, speaking for DefaultClass.
func (c *Controller) Fanout() (int, core.Selection) { return c.defView.Fanout() }

// Schedule implements core.Strategy, speaking for DefaultClass.
func (c *Controller) Schedule(d core.Digests) []time.Duration { return c.defView.Schedule(d) }

// ScheduleInto implements core.InlineScheduler, speaking for
// DefaultClass.
func (c *Controller) ScheduleInto(d core.Digests, dst []time.Duration) []time.Duration {
	return c.defView.ScheduleInto(d, dst)
}

// String implements core.Strategy.
func (c *Controller) String() string { return c.defView.String() }

// ClassStrategy is a class's data-path view of the controller: a
// core.Strategy + core.InlineScheduler that reads the class's live
// operating point on every call, so a control-loop move takes effect on
// the very next operation without any re-wiring.
type ClassStrategy struct {
	cl *class
}

// Fanout implements core.Strategy.
func (s *ClassStrategy) Fanout() (int, core.Selection) {
	return s.cl.op.Load().Fanout, core.SelectRanked
}

// Schedule implements core.Strategy.
func (s *ClassStrategy) Schedule(d core.Digests) []time.Duration {
	if d.Len() <= 1 {
		return nil
	}
	return s.ScheduleInto(d, make([]time.Duration, d.Len()))
}

// ScheduleInto implements core.InlineScheduler: copy i+1 hedges at the
// operating point's quantile of copy i's digest, exactly like
// core.AdaptiveHedge, with cold digests launching immediately so they
// warm up.
func (s *ClassStrategy) ScheduleInto(d core.Digests, dst []time.Duration) []time.Duration {
	k := d.Len()
	if k <= 1 {
		return nil
	}
	q := s.cl.op.Load().Quantile
	dst[0] = 0
	for i := 1; i < k; i++ {
		dst[i] = 0
		if dg := d.At(i - 1); dg != nil && dg.Count() >= core.DefaultHedgeMinSamples {
			if v, ok := dg.Quantile(q); ok {
				dst[i] = v
			}
		}
	}
	return dst
}

// String implements core.Strategy.
func (s *ClassStrategy) String() string {
	op := *s.cl.op.Load()
	if op.Fanout <= 1 {
		return fmt.Sprintf("slo(%s, k=1, rq=%d)", s.cl.name, op.ReadQuorum)
	}
	return fmt.Sprintf("slo(%s, k=%d@p%g, rq=%d)", s.cl.name, op.Fanout, op.Quantile*100, op.ReadQuorum)
}
