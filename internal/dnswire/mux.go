package dnswire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"redundancy/internal/core"
)

// Querier is the query surface a Resolver drives: one lookup against one
// server. Both Client (a fresh socket per query, unpredictable source
// ports) and MuxClient (one connected socket per server, demuxed by DNS
// message ID) implement it, so a resolver migrates transports without
// touching its replication policy.
type Querier interface {
	Query(ctx context.Context, server, name string, qtype Type) (*Message, error)
}

var (
	// ErrMuxConnLost reports that a multiplexed server socket died with
	// queries in flight; pending queries fail with an error wrapping this
	// sentinel and the next query redials.
	ErrMuxConnLost = errors.New("dnswire: mux connection lost")
	// ErrMuxTimeout reports a multiplexed query that exceeded the
	// client's timeout. The socket and other in-flight queries are
	// unharmed — the ID is simply retired and a late answer discarded.
	ErrMuxTimeout = errors.New("dnswire: mux query timeout")
	// ErrMuxIDsExhausted reports 65536 queries already in flight to one
	// server — the DNS message ID space is the protocol's hard
	// multiplexing ceiling.
	ErrMuxIDsExhausted = errors.New("dnswire: all query IDs in flight")
)

// MuxClient multiplexes DNS queries over one connected UDP socket per
// server, using the protocol's own 16-bit message ID as the demux tag —
// DNS was a multiplexed wire format all along; the v1 Client just
// declined the offer by dedicating a socket per query. Where Client's
// concurrency ceiling is file descriptors (one socket per in-flight
// query), MuxClient's is the ID space: up to 65536 outstanding queries
// per server on a single socket.
//
// The trade is source-port randomization: all queries to a server share
// one source port, so off-path spoofing resistance rests on the random
// starting ID alone. That is the right trade inside a trusted network
// (the paper's data-center setting) and the wrong one on the open
// internet — keep Client for untrusted paths.
//
// A MuxClient is safe for concurrent use and implements Querier, so it
// plugs into NewResolverQuerier directly.
type MuxClient struct {
	// Timeout bounds each query; zero or negative means the 2-second
	// default (the paper's loss cutoff). UDP has no delivery guarantee,
	// so an unanswered query holds its ID until this fires; it is
	// enforced on the shared timer wheel, not with a per-query runtime
	// timer.
	Timeout time.Duration

	mu     sync.Mutex
	conns  map[string]*dnsMuxConn
	closed bool
}

// NewMuxClient returns a multiplexed DNS client (0 timeout means 2 s).
// Sockets are dialed lazily, one per server queried.
func NewMuxClient(timeout time.Duration) *MuxClient {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	return &MuxClient{Timeout: timeout, conns: make(map[string]*dnsMuxConn)}
}

// dnsMuxConn is one server's connected UDP socket plus the in-flight
// query table keyed by message ID.
type dnsMuxConn struct {
	c net.Conn

	mu      sync.Mutex
	nextID  uint16
	waiters map[uint16]*dnsMuxWaiter
	dead    bool
	err     error

	done chan struct{}
}

// dnsMuxWaiter is one in-flight query's rendezvous: a cap-1 channel that
// receives exactly one message (the answer, or the timeout sentinel).
// Waiters recycle through a pool under the same rule as the memkv mux: a
// waiter returns to the pool only via a path that proved its channel is
// and stays empty.
type dnsMuxWaiter struct {
	ch chan *Message
}

var dnsMuxWaiterPool = sync.Pool{
	New: func() any { return &dnsMuxWaiter{ch: make(chan *Message, 1)} },
}

// muxTimeoutMsg is the timeout sentinel; the reader only ever delivers
// freshly decoded messages, so this pointer is unambiguous.
var muxTimeoutMsg = new(Message)

func (m *MuxClient) dial(ctx context.Context, server string) (*dnsMuxConn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, err
	}
	cn := &dnsMuxConn{
		c:       c,
		nextID:  uint16(rand.Intn(1 << 16)),
		waiters: make(map[uint16]*dnsMuxWaiter),
		done:    make(chan struct{}),
	}
	go cn.reader()
	return cn, nil
}

// conn returns a live socket for server, dialing or redialing on demand.
func (m *MuxClient) conn(ctx context.Context, server string) (*dnsMuxConn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("dnswire: mux client closed")
	}
	if m.conns == nil {
		// Zero-value client: Close nils the map too, but that path is
		// caught by the closed check above.
		m.conns = make(map[string]*dnsMuxConn)
	}
	if cn := m.conns[server]; cn != nil && !cn.isDead() {
		return cn, nil
	}
	cn, err := m.dial(ctx, server)
	if err != nil {
		return nil, err
	}
	m.conns[server] = cn
	return cn, nil
}

// Close closes every server socket. Queries in flight fail with
// ErrMuxConnLost; subsequent queries fail immediately.
func (m *MuxClient) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, cn := range conns {
		cn.fail(errors.New("client closed"))
	}
	return nil
}

func (cn *dnsMuxConn) isDead() bool {
	select {
	case <-cn.done:
		return true
	default:
		return false
	}
}

func (cn *dnsMuxConn) lostErr() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return cn.err
	}
	return ErrMuxConnLost
}

// fail marks the socket dead exactly once, releasing pending waiters via
// the done channel and closing the socket (which stops the reader).
func (cn *dnsMuxConn) fail(cause error) {
	cn.mu.Lock()
	if cn.dead {
		cn.mu.Unlock()
		return
	}
	cn.dead = true
	cn.err = fmt.Errorf("%w: %v", ErrMuxConnLost, cause)
	cn.waiters = nil
	cn.mu.Unlock()
	close(cn.done)
	cn.c.Close()
}

// register claims a free message ID and installs a waiter under it,
// scanning forward from a per-socket cursor that started at a random
// point (the spoofing defense the shared socket still affords).
func (cn *dnsMuxConn) register() (uint16, *dnsMuxWaiter, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.dead {
		if cn.err != nil {
			return 0, nil, cn.err
		}
		return 0, nil, ErrMuxConnLost
	}
	for range 1 << 16 {
		cn.nextID++
		if _, busy := cn.waiters[cn.nextID]; !busy {
			w := dnsMuxWaiterPool.Get().(*dnsMuxWaiter)
			cn.waiters[cn.nextID] = w
			return cn.nextID, w, nil
		}
	}
	return 0, nil, ErrMuxIDsExhausted
}

// reader demuxes response datagrams to their ID's waiter. Malformed
// datagrams and answers whose ID has no waiter (cancelled, timed out, or
// never ours) are discarded and the socket lives on; only a socket-level
// read error kills the connection.
func (cn *dnsMuxConn) reader() {
	buf := make([]byte, 64<<10)
	for {
		n, err := cn.c.Read(buf)
		if err != nil {
			cn.fail(err)
			return
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		cn.mu.Lock()
		w := cn.waiters[resp.Header.ID]
		if w != nil {
			delete(cn.waiters, resp.Header.ID)
		}
		cn.mu.Unlock()
		if w != nil {
			w.ch <- resp // cap 1, sole delivery: never blocks
		}
	}
}

// abandon gives up on a waiter (cancellation): if the ID is still
// registered the eventual answer is discarded on arrival; if it is gone,
// a delivery is in flight (drain it) or the socket died.
func (cn *dnsMuxConn) abandon(id uint16, w *dnsMuxWaiter) {
	cn.mu.Lock()
	if cn.waiters != nil {
		if _, ok := cn.waiters[id]; ok {
			delete(cn.waiters, id)
			cn.mu.Unlock()
			dnsMuxWaiterPool.Put(w)
			return
		}
	}
	cn.mu.Unlock()
	select {
	case <-w.ch:
		dnsMuxWaiterPool.Put(w)
	case <-cn.done:
	}
}

// dnsMuxTimeoutFired is the shared-wheel timeout callback: retire the ID
// (late answers are discarded) and deliver the sentinel. c is the
// *dnsMuxConn, i the message ID.
func dnsMuxTimeoutFired(c any, i int64) {
	cn := c.(*dnsMuxConn)
	id := uint16(i)
	cn.mu.Lock()
	var w *dnsMuxWaiter
	if cn.waiters != nil {
		w = cn.waiters[id]
		if w != nil {
			delete(cn.waiters, id)
		}
	}
	cn.mu.Unlock()
	if w != nil {
		w.ch <- muxTimeoutMsg
	}
}

// Exchange sends query to server over the shared socket and waits for
// the matching answer. The query's header ID is rewritten to the
// socket's assigned ID — callers must not rely on it.
func (m *MuxClient) Exchange(ctx context.Context, server string, query *Message) (*Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cn, err := m.conn(ctx, server)
	if err != nil {
		return nil, err
	}
	id, w, err := cn.register()
	if err != nil {
		return nil, err
	}
	query.Header.ID = id
	wire, err := Encode(query)
	if err != nil {
		cn.abandon(id, w)
		return nil, err
	}
	// One datagram, one syscall: UDP needs no write coalescing, and
	// net.Conn serializes concurrent writers itself.
	if _, err := cn.c.Write(wire); err != nil {
		cn.abandon(id, w)
		cn.fail(err)
		return nil, fmt.Errorf("dnswire: mux write: %w", err)
	}
	timeout := m.Timeout
	if timeout <= 0 {
		// A zero-value &MuxClient{} gets the same default NewMuxClient
		// applies; AfterFunc(0) would fire on the next wheel tick.
		timeout = 2 * time.Second
	}
	tm := core.SharedWheel().AfterFunc(timeout, dnsMuxTimeoutFired, cn, int64(id))
	select {
	case resp := <-w.ch:
		tm.Stop()
		dnsMuxWaiterPool.Put(w)
		if resp == muxTimeoutMsg {
			return nil, fmt.Errorf("%w after %v", ErrMuxTimeout, timeout)
		}
		return resp, nil
	case <-ctx.Done():
		tm.Stop()
		cn.abandon(id, w)
		return nil, ctx.Err()
	case <-cn.done:
		tm.Stop()
		return nil, cn.lostErr()
	}
}

// Query builds a recursive query for name/qtype and exchanges it with
// server; the message ID is assigned by the socket.
func (m *MuxClient) Query(ctx context.Context, server, name string, qtype Type) (*Message, error) {
	return m.Exchange(ctx, server, NewQuery(0, name, qtype))
}
