package dnswire

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"redundancy/internal/core"
)

func startDNS(t *testing.T, h Handler) (*Server, string) {
	return startDNSDelay(t, h, nil)
}

// startDNSDelay starts a server with a Delay hook installed BEFORE Listen:
// the serve loop reads Delay without synchronization, so assigning it
// after the server is running is a data race.
func startDNSDelay(t *testing.T, h Handler, delay func() time.Duration) (*Server, string) {
	t.Helper()
	srv := NewServer(h)
	srv.Delay = delay
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func staticZone() Handler {
	return StaticHandler(map[string]net.IP{
		"www.example.com":  net.IPv4(192, 0, 2, 10),
		"mail.example.com": net.IPv4(192, 0, 2, 25),
	})
}

func TestClientServerLookup(t *testing.T) {
	_, addr := startDNS(t, staticZone())
	cl := NewClient(time.Second)
	resp, err := cl.Query(context.Background(), addr, "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp %+v", resp.Header)
	}
	if !net.IP(resp.Answers[0].IP).Equal(net.IPv4(192, 0, 2, 10)) {
		t.Errorf("answer IP %v", resp.Answers[0].IP)
	}
}

func TestNXDomain(t *testing.T) {
	_, addr := startDNS(t, staticZone())
	cl := NewClient(time.Second)
	resp, err := cl.Query(context.Background(), addr, "missing.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeNameError {
		t.Errorf("RCode %v, want NXDOMAIN", resp.Header.RCode)
	}
}

func TestClientTimeoutOnSilentServer(t *testing.T) {
	// A server that never answers (handler nil answers SERVFAIL, so use a
	// drop-everything server instead).
	srv := NewServer(staticZone())
	srv.DropProb = 1.0
	srv.Rand = func() float64 { return 0 }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(100 * time.Millisecond)
	start := time.Now()
	_, err = cl.Query(context.Background(), addr.String(), "www.example.com", TypeA)
	if err == nil {
		t.Fatal("query against black-hole server succeeded")
	}
	if el := time.Since(start); el < 50*time.Millisecond || el > 2*time.Second {
		t.Errorf("timeout fired after %v, want ~100ms", el)
	}
}

func TestClientIgnoresMismatchedID(t *testing.T) {
	// A malicious/buggy server that answers with a wrong ID first, then
	// never sends the right one: the client must not accept the bad reply.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 4096)
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		query, err := Decode(buf[:n])
		if err != nil {
			return
		}
		bad := NewResponse(query, RCodeSuccess)
		bad.Header.ID ^= 0xFFFF
		wire, _ := Encode(bad)
		pc.WriteTo(wire, from)
	}()
	cl := NewClient(150 * time.Millisecond)
	_, err = cl.Query(context.Background(), pc.LocalAddr().String(), "x.example", TypeA)
	if err == nil {
		t.Fatal("client accepted a response with mismatched ID")
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	_, addr := startDNS(t, staticZone())
	cl := NewClient(2 * time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Query(context.Background(), addr, "www.example.com", TypeA); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestResolverFirstResponseWins(t *testing.T) {
	_, slowAddr := startDNSDelay(t, staticZone(),
		func() time.Duration { return 400 * time.Millisecond })
	_, fastAddr := startDNS(t, staticZone())

	cl := NewClient(2 * time.Second)
	res := NewResolver(cl, core.Policy{Copies: 2, Selection: core.SelectRandom}, slowAddr, fastAddr)
	start := time.Now()
	result, err := res.LookupResult(context.Background(), "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 300*time.Millisecond {
		t.Errorf("replicated lookup waited for the slow server: %v", time.Since(start))
	}
	if result.Launched != 2 {
		t.Errorf("Launched = %d", result.Launched)
	}
}

func TestResolverMasksLoss(t *testing.T) {
	// One server drops every query; the replicated resolver still answers.
	lossy := NewServer(staticZone())
	lossy.DropProb = 1.0
	lossy.Rand = func() float64 { return 0 }
	lossyAddr, err := lossy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	_, okAddr := startDNS(t, staticZone())

	cl := NewClient(300 * time.Millisecond)
	res := NewResolver(cl, core.Policy{Copies: 2, Selection: core.SelectRandom},
		lossyAddr.String(), okAddr)
	ips, err := res.LookupA(context.Background(), "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(ips) != 1 || !ips[0].Equal(net.IPv4(192, 0, 2, 10)) {
		t.Errorf("ips = %v", ips)
	}
}

func TestResolverRanksServers(t *testing.T) {
	_, slowAddr := startDNSDelay(t, staticZone(),
		func() time.Duration { return 80 * time.Millisecond })
	_, fastAddr := startDNS(t, staticZone())

	cl := NewClient(2 * time.Second)
	res := NewResolver(cl, core.Policy{Copies: 2}, slowAddr, fastAddr)
	// Stage 1 of the paper's experiment: probe all servers to rank them.
	if n := res.Probe(context.Background(), "www.example.com", TypeA); n != 2 {
		t.Fatalf("Probe answered by %d servers, want 2", n)
	}
	ranked := res.RankedServers()
	if ranked[0] != fastAddr {
		t.Errorf("ranked %v, want fast server first", ranked)
	}
}

func TestResolverNXDomainIsAnAnswer(t *testing.T) {
	// NXDOMAIN is a valid (authoritative) answer, not an error to fail
	// over from.
	_, addr := startDNS(t, staticZone())
	cl := NewClient(time.Second)
	res := NewResolver(cl, core.Policy{Copies: 1}, addr)
	_, err := res.LookupA(context.Background(), "nosuch.example.com")
	var nf *NotFoundError
	if err == nil || !isNotFound(err, &nf) {
		t.Errorf("err = %v, want NotFoundError", err)
	}
}

func isNotFound(err error, target **NotFoundError) bool {
	nf, ok := err.(*NotFoundError)
	if ok {
		*target = nf
	}
	return ok
}

func TestServerDropProbabilistic(t *testing.T) {
	srv := NewServer(staticZone())
	r := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	srv.DropProb = 0.5
	srv.Rand = func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(100 * time.Millisecond)
	ok, fail := 0, 0
	for i := 0; i < 30; i++ {
		if _, err := cl.Query(context.Background(), addr.String(), "www.example.com", TypeA); err != nil {
			fail++
		} else {
			ok++
		}
	}
	if ok == 0 || fail == 0 {
		t.Errorf("50%% drop gave ok=%d fail=%d; both should be nonzero", ok, fail)
	}
}

func TestTCPExchange(t *testing.T) {
	srv := NewServer(staticZone())
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := NewClient(time.Second)
	resp, err := cl.ExchangeTCP(context.Background(), addr.String(),
		NewQuery(77, "www.example.com", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 77 || len(resp.Answers) != 1 {
		t.Errorf("TCP response %+v", resp.Header)
	}
}

func TestTCPMultipleQueriesPerConnection(t *testing.T) {
	// RFC 1035 allows several sequential queries on one TCP connection.
	srv := NewServer(staticZone())
	addr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 3; i++ {
		q := NewQuery(uint16(100+i), "mail.example.com", TypeA)
		wire, _ := Encode(q)
		if err := writeTCPMessage(conn, wire); err != nil {
			t.Fatal(err)
		}
		respWire, err := readTCPMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := Decode(respWire)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != uint16(100+i) {
			t.Fatalf("query %d: response ID %d", i, resp.Header.ID)
		}
	}
}

func TestTruncationFallbackToTCP(t *testing.T) {
	// A server that answers with TC=1 over UDP and fully over TCP: the
	// fallback client must transparently retry over TCP.
	full := staticZone()
	truncating := func(q Question) *Message {
		m := full(q)
		m.Header.Truncated = true
		m.Answers = nil // truncated responses carry no usable answers
		return m
	}
	udpSrv := NewServer(truncating)
	udpAddr, err := udpSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer udpSrv.Close()
	// TCP twin on the SAME port number is not possible with two Server
	// objects bound separately; bind TCP on udpAddr's port via the same
	// server but a full handler. For the test, run a second server for
	// TCP and point the client at matching host:port strings.
	tcpSrv := NewServer(full)
	tcpAddr, err := tcpSrv.ListenTCP(udpAddr.String())
	if err != nil {
		t.Fatal(err) // same port, different protocol: fine on Linux
	}
	defer tcpSrv.Close()
	if tcpAddr.String() != udpAddr.String() {
		t.Fatalf("tcp %s != udp %s", tcpAddr, udpAddr)
	}

	cl := NewClient(time.Second)
	resp, err := cl.ExchangeWithFallback(context.Background(), udpAddr.String(),
		NewQuery(9, "www.example.com", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Error("fallback returned the truncated response")
	}
	if len(resp.Answers) != 1 {
		t.Errorf("fallback answers = %d", len(resp.Answers))
	}
}

func TestAdaptiveResolver(t *testing.T) {
	_, fastAddr := startDNS(t, staticZone())
	_, slowAddr := startDNSDelay(t, staticZone(),
		func() time.Duration { return 250 * time.Millisecond })

	cl := NewClient(2 * time.Second)
	r := NewAdaptiveResolver(cl, 0.9, fastAddr, slowAddr)

	// Probe warms every server's digest (racing alone never measures the
	// loser), establishing both the ranking and the hedge quantiles.
	if n := r.Probe(context.Background(), "www.example.com", TypeA); n != 2 {
		t.Fatalf("Probe answered %d, want 2", n)
	}
	for i := 0; i < 20; i++ {
		resp, err := r.Lookup(context.Background(), "www.example.com", TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("lookup %d: %d answers", i, len(resp.Answers))
		}
	}
	s := r.GroupStats()
	if !strings.Contains(s.Strategy, "adaptive-hedge") || !strings.Contains(s.Strategy, "p90") {
		t.Errorf("GroupStats.Strategy = %q", s.Strategy)
	}
	// Ranked selection must have learned the fast server.
	if ranked := r.RankedServers(); ranked[0] != fastAddr {
		t.Errorf("ranked %v, want %s first", ranked, fastAddr)
	}
	for _, rep := range s.Replicas {
		if rep.Observed && (rep.P95 == 0 || rep.P50 > rep.P99) {
			t.Errorf("replica %s quantiles implausible: %+v", rep.Name, rep)
		}
	}

	r.SetStrategy(core.Fixed{Copies: 1, Selection: core.SelectRanked})
	if got := r.GroupStats().Strategy; !strings.Contains(got, "fixed(k=1") {
		t.Errorf("after SetStrategy: %q", got)
	}
}

func TestResolverPerLookupStrategyOverride(t *testing.T) {
	// The resolver is configured to contact one server per lookup; a
	// latency-critical lookup overrides to full replication for itself
	// only.
	_, addrA := startDNS(t, staticZone())
	_, addrB := startDNS(t, staticZone())
	cl := NewClient(2 * time.Second)
	res := NewResolver(cl, core.Policy{Copies: 1, Selection: core.SelectRandom}, addrA, addrB)

	result, err := res.LookupResult(context.Background(), "www.example.com", TypeA,
		core.WithStrategyOverride(core.FullReplicate{}))
	if err != nil {
		t.Fatal(err)
	}
	if result.Launched != 2 {
		t.Errorf("override lookup queried %d servers, want 2", result.Launched)
	}

	// Without the override the resolver's own policy applies.
	result, err = res.LookupResult(context.Background(), "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if result.Launched != 1 {
		t.Errorf("plain lookup queried %d servers, want 1", result.Launched)
	}
}

func TestResolverQuorumLookup(t *testing.T) {
	// A quorum-2 lookup over two healthy servers completes with both
	// answers collected (the unreachable case is
	// TestResolverQuorumUnreachableNamesServer).
	_, addrA := startDNS(t, staticZone())
	_, addrB := startDNS(t, staticZone())
	cl := NewClient(time.Second)
	res := NewResolver(cl, core.Policy{Copies: 2}, addrA, addrB)

	var outs []core.Outcome[*Message]
	_, err := res.LookupResult(context.Background(), "www.example.com", TypeA,
		core.WithQuorum(2), core.WithCollectOutcomes(&outs))
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, o := range outs {
		if o.Err == nil {
			wins++
		}
	}
	if wins != 2 {
		t.Errorf("quorum lookup collected %d answers, want 2", wins)
	}
}

func TestResolverQuorumUnreachableNamesServer(t *testing.T) {
	// A quorum-2 lookup over one healthy and one black-hole server cannot
	// complete; the typed failure names the dropping server.
	lossy := NewServer(staticZone())
	lossy.DropProb = 1.0
	lossy.Rand = func() float64 { return 0 }
	lossyAddr, err := lossy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	_, okAddr := startDNS(t, staticZone())

	cl := NewClient(200 * time.Millisecond)
	res := NewResolver(cl, core.Policy{Copies: 2}, lossyAddr.String(), okAddr)
	_, lerr := res.LookupResult(context.Background(), "www.example.com", TypeA,
		core.WithQuorum(2))
	if lerr == nil {
		t.Fatal("quorum 2 with a black-hole server must fail")
	}
	if !errors.Is(lerr, core.ErrQuorumUnreachable) {
		t.Errorf("got %v, want ErrQuorumUnreachable", lerr)
	}
	var re core.ReplicaError
	if !errors.As(lerr, &re) || re.Name != lossyAddr.String() {
		t.Errorf("ReplicaError = %+v, want name %s", re, lossyAddr)
	}
}

func TestExchangeAbandonsSocketWaitOnCancel(t *testing.T) {
	// A black-hole server and a 10s client timeout: cancelling the context
	// must abandon the blocked socket read immediately, not wait out the
	// timeout — this is how the resolver reclaims losing copies the moment
	// a redundant lookup's winner arrives.
	srv := NewServer(staticZone())
	srv.DropProb = 1.0
	srv.Rand = func() float64 { return 0 }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewClient(10 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, qerr := cl.Query(ctx, addr.String(), "www.example.com", TypeA)
		done <- qerr
	}()
	cancel()
	select {
	case qerr := <-done:
		if !errors.Is(qerr, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", qerr)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("cancelled query returned after %v; socket wait not abandoned", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query still blocked after 5s")
	}
}

func TestResolverCancelsLosingQuery(t *testing.T) {
	// One fast server and one black hole, full replication: the winner
	// completes while the loser is still waiting on its socket, and the
	// result reports the loser as cancelled in flight.
	lossy := NewServer(staticZone())
	lossy.DropProb = 1.0
	lossy.Rand = func() float64 { return 0 }
	lossyAddr, err := lossy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	_, okAddr := startDNS(t, staticZone())

	cl := NewClient(10 * time.Second)
	res := NewResolver(cl, core.Policy{Copies: 2}, lossyAddr.String(), okAddr)
	start := time.Now()
	lres, lerr := res.LookupResult(context.Background(), "www.example.com", TypeA)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if lres.Launched != 2 || lres.Cancelled != 1 {
		t.Errorf("Launched/Cancelled = %d/%d, want 2/1", lres.Launched, lres.Cancelled)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("lookup took %v; winner should not wait for the black hole", el)
	}
}
