package dnswire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"redundancy/internal/core"
)

// Client sends DNS queries over UDP. It is safe for concurrent use; each
// query uses its own socket, which also gives each query an unpredictable
// source port (query IDs alone are too guessable to rely on).
type Client struct {
	// Timeout bounds each query (default 2 seconds, the paper's loss
	// cutoff).
	Timeout time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient returns a Client with the given timeout (0 means 2 s).
func NewClient(timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	return &Client{
		Timeout: timeout,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (c *Client) newID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint16(c.rng.Intn(1 << 16))
}

// ErrIDMismatch is returned when a response's transaction ID does not match
// the query (possible spoofing or a stale datagram).
var ErrIDMismatch = errors.New("dnswire: response ID mismatch")

// Exchange sends the query to server (a "host:port" UDP address) and waits
// for a matching response.
func (c *Client) Exchange(ctx context.Context, server string, query *Message) (*Message, error) {
	wire, err := Encode(query)
	if err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	deadline := time.Now().Add(c.Timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	conn.SetDeadline(deadline)
	// Abandon the socket wait the moment ctx is cancelled: when a
	// redundant lookup's winner arrives, the losing queries' contexts are
	// cancelled and their sockets must not sit out the full timeout.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	if _, err := conn.Write(wire); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			// Malformed datagram; keep waiting for a valid one until the
			// deadline.
			continue
		}
		if resp.Header.ID != query.Header.ID {
			// Stale or spoofed; keep waiting.
			continue
		}
		return resp, nil
	}
}

// Query is a convenience wrapper: build a recursive query for name/qtype
// with a fresh ID and exchange it with server.
func (c *Client) Query(ctx context.Context, server, name string, qtype Type) (*Message, error) {
	return c.Exchange(ctx, server, NewQuery(c.newID(), name, qtype))
}

// Resolver queries a set of DNS servers redundantly: each lookup goes to
// the k lowest-latency servers in parallel (or staggered by a hedge
// delay), and the first well-formed response wins — the paper's §3.2
// replicated-DNS strategy.
type Resolver struct {
	client Querier
	// group passes each lookup's Question to the server replicas as the
	// call argument; replica functions close over only their server
	// address, with no per-call context plumbing.
	group *core.KeyedGroup[Question, *Message]
}

// NewResolver builds a Resolver over the given server addresses.
// policy.Copies controls how many servers each lookup contacts (the paper
// evaluates 1-10); policy.Selection defaults to ranked (the paper ranks
// servers by observed mean response time).
func NewResolver(client *Client, policy core.Policy, servers ...string) *Resolver {
	return NewResolverStrategy(client, policy.Strategy(), servers...)
}

// NewResolverStrategy builds a Resolver whose replication is governed by
// an arbitrary strategy (core.AdaptiveHedge, core.FullReplicate, or a
// custom implementation).
func NewResolverStrategy(client *Client, strategy core.Strategy, servers ...string) *Resolver {
	if client == nil {
		client = NewClient(0)
	}
	return NewResolverQuerier(client, strategy, servers...)
}

// NewResolverQuerier builds a Resolver over any Querier — a MuxClient
// for one-socket-per-server multiplexed transport, a Client for
// socket-per-query, or a test fake. nil means a default Client.
func NewResolverQuerier(client Querier, strategy core.Strategy, servers ...string) *Resolver {
	if client == nil {
		client = NewClient(0)
	}
	r := &Resolver{client: client}
	r.group = core.NewStrategyKeyedGroup[Question, *Message](strategy)
	for _, srv := range servers {
		r.group.Add(srv, r.serverReplica(srv))
	}
	return r
}

// NewAdaptiveResolver builds a Resolver that sends a second query when
// the best-ranked server exceeds the p-th percentile (quantile in
// (0, 1); 0 means core.DefaultHedgeQuantile) of its observed latency —
// the production form of the paper's §3.2 replicated-DNS strategy, with
// the hedging point tracking each server's latency distribution instead
// of a caller-guessed delay. Warm the per-server digests with Probe.
func NewAdaptiveResolver(client *Client, quantile float64, servers ...string) *Resolver {
	return NewResolverStrategy(client,
		core.AdaptiveHedge{Copies: 2, Quantile: quantile, Selection: core.SelectRanked},
		servers...)
}

// serverReplica builds the replica function for one server address.
func (r *Resolver) serverReplica(srv string) core.ArgReplica[Question, *Message] {
	return func(ctx context.Context, q Question) (*Message, error) {
		resp, err := r.client.Query(ctx, srv, q.Name, q.Type)
		if err != nil {
			return nil, err
		}
		if resp.Header.RCode != RCodeSuccess && resp.Header.RCode != RCodeNameError {
			return nil, fmt.Errorf("dnswire: %s from %s", resp.Header.RCode, srv)
		}
		return resp, nil
	}
}

// Lookup resolves name/qtype through the replicated server set. Per-call
// options tune one lookup without touching the resolver: a
// latency-critical query can core.WithStrategyOverride to full
// replication while the resolver keeps hedging for everyone else, cap
// its fan-out, or core.WithLabel its traffic class.
func (r *Resolver) Lookup(ctx context.Context, name string, qtype Type, opts ...core.CallOption) (*Message, error) {
	if len(opts) == 0 {
		// The common zero-option lookup rides the group's DoValue fast
		// lane (pooled call frame, no option materialization).
		return r.group.DoValue(ctx, Question{Name: name, Type: qtype})
	}
	res, err := r.group.Do(ctx, Question{Name: name, Type: qtype}, opts...)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// LookupResult is Lookup with redundancy metadata (winning server, latency,
// copies sent).
func (r *Resolver) LookupResult(ctx context.Context, name string, qtype Type, opts ...core.CallOption) (core.Result[*Message], error) {
	return r.group.Do(ctx, Question{Name: name, Type: qtype}, opts...)
}

// RankedServers returns the resolver's servers ordered by estimated
// latency, fastest first.
func (r *Resolver) RankedServers() []string { return r.group.RankedNames() }

// GroupStats reports the resolver's policy, server set, and per-server
// latency estimates.
func (r *Resolver) GroupStats() core.GroupStats { return r.group.Stats() }

// AddServer adds a DNS server to the replica set; lookups in flight are
// unaffected.
func (r *Resolver) AddServer(srv string) {
	r.group.Add(srv, r.serverReplica(srv))
}

// RemoveServer drops a DNS server from the replica set, reporting whether
// it was present. Lookups in flight may still receive its answers.
func (r *Resolver) RemoveServer(srv string) bool { return r.group.Remove(srv) }

// SetStrategy replaces the resolver's replication strategy; lookups in
// flight finish under the strategy they started with.
func (r *Resolver) SetStrategy(s core.Strategy) { r.group.SetStrategy(s) }

// Probe queries every server once for name/qtype, concurrently and to
// completion, to establish per-server latency estimates — the ranking
// stage of the paper's DNS experiment. It returns the number of servers
// that answered.
func (r *Resolver) Probe(ctx context.Context, name string, qtype Type) int {
	return r.group.ProbeAll(ctx, Question{Name: name, Type: qtype})
}

// LookupA resolves name to IPv4 addresses, following one level of CNAME
// indirection within the same response.
func (r *Resolver) LookupA(ctx context.Context, name string, opts ...core.CallOption) ([]net.IP, error) {
	resp, err := r.Lookup(ctx, name, TypeA, opts...)
	if err != nil {
		return nil, err
	}
	if resp.Header.RCode == RCodeNameError {
		return nil, &NotFoundError{Name: name}
	}
	want := normalizeName(name)
	cnames := map[string]string{}
	var ips []net.IP
	for _, rr := range resp.Answers {
		switch rr.Type {
		case TypeCNAME:
			cnames[normalizeName(rr.Name)] = normalizeName(rr.Target)
		case TypeA:
			ips = append(ips, net.IP(rr.IP))
		}
	}
	if len(ips) > 0 {
		return ips, nil
	}
	if target, ok := cnames[want]; ok {
		_ = target // CNAME with no A in the same message: report not found here.
	}
	return nil, &NotFoundError{Name: name}
}

// NotFoundError reports a name with no usable answer.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string { return "dnswire: no answer for " + e.Name }
