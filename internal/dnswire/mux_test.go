package dnswire

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core"
)

func TestMuxQueryRoundTrip(t *testing.T) {
	_, addr := startDNS(t, staticZone())
	m := NewMuxClient(time.Second)
	defer m.Close()
	resp, err := m.Query(context.Background(), addr, "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp %+v", resp.Header)
	}
	if !net.IP(resp.Answers[0].IP).Equal(net.IPv4(192, 0, 2, 10)) {
		t.Errorf("answer IP %v", resp.Answers[0].IP)
	}
}

// TestMuxZeroValueClient is a regression test: a zero-value &MuxClient{}
// must get the documented 2-second default timeout, not arm a 0-delay
// wheel timer that fails every query with ErrMuxTimeout on the next
// tick (and its nil conns map must be initialized lazily).
func TestMuxZeroValueClient(t *testing.T) {
	_, addr := startDNS(t, staticZone())
	m := &MuxClient{}
	defer m.Close()
	resp, err := m.Query(context.Background(), addr, "www.example.com", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeSuccess || len(resp.Answers) != 1 {
		t.Fatalf("resp %+v", resp.Header)
	}
}

func TestMuxSharesOneSocketPerServer(t *testing.T) {
	_, addr := startDNS(t, staticZone())
	m := NewMuxClient(time.Second)
	defer m.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 100)
	for range 100 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Query(context.Background(), addr, "www.example.com", TypeA); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	m.mu.Lock()
	n := len(m.conns)
	m.mu.Unlock()
	if n != 1 {
		t.Fatalf("client opened %d sockets for one server, want 1", n)
	}
}

func TestMuxOutOfOrderAnswers(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	_, addr := startDNSDelay(t, staticZone(), func() time.Duration {
		if first.CompareAndSwap(true, false) {
			return 300 * time.Millisecond
		}
		return 0
	})
	m := NewMuxClient(2 * time.Second)
	defer m.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := m.Query(context.Background(), addr, "www.example.com", TypeA)
		slowDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query claim the delay

	start := time.Now()
	if _, err := m.Query(context.Background(), addr, "mail.example.com", TypeA); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Fatalf("fast query blocked %v behind the delayed one", el)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow query: %v", err)
	}
}

func TestMuxTimeoutKeepsSocket(t *testing.T) {
	var delay atomic.Int64
	delay.Store(int64(500 * time.Millisecond))
	_, addr := startDNSDelay(t, staticZone(), func() time.Duration {
		return time.Duration(delay.Load())
	})
	m := NewMuxClient(50 * time.Millisecond)
	defer m.Close()
	_, err := m.Query(context.Background(), addr, "www.example.com", TypeA)
	if !errors.Is(err, ErrMuxTimeout) {
		t.Fatalf("err = %v, want ErrMuxTimeout", err)
	}
	// The socket must survive a timeout: the next query succeeds on the
	// same connection.
	delay.Store(0)
	if _, err := m.Query(context.Background(), addr, "www.example.com", TypeA); err != nil {
		t.Fatalf("query after timeout: %v", err)
	}
	m.mu.Lock()
	n := len(m.conns)
	m.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d sockets after timeout, want the original 1", n)
	}
}

func TestMuxCancelMidFlight(t *testing.T) {
	_, addr := startDNSDelay(t, staticZone(), func() time.Duration {
		return 300 * time.Millisecond
	})
	m := NewMuxClient(2 * time.Second)
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Query(ctx, addr, "www.example.com", TypeA)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMuxCloseFailsPending(t *testing.T) {
	_, addr := startDNSDelay(t, staticZone(), func() time.Duration {
		return 5 * time.Second
	})
	m := NewMuxClient(30 * time.Second)
	done := make(chan error, 8)
	for range 8 {
		go func() {
			_, err := m.Query(context.Background(), addr, "www.example.com", TypeA)
			done <- err
		}()
	}
	time.Sleep(50 * time.Millisecond)
	m.Close()
	for range 8 {
		if err := <-done; !errors.Is(err, ErrMuxConnLost) {
			t.Fatalf("err = %v, want ErrMuxConnLost", err)
		}
	}
	if _, err := m.Query(context.Background(), addr, "www.example.com", TypeA); err == nil {
		t.Fatal("query on closed client succeeded")
	}
}

func TestMuxResolverIntegration(t *testing.T) {
	_, addr1 := startDNS(t, staticZone())
	_, addr2 := startDNS(t, staticZone())
	m := NewMuxClient(time.Second)
	defer m.Close()
	r := NewResolverQuerier(m, core.Fixed{Copies: 2}, addr1, addr2)
	for range 20 {
		ips, err := r.LookupA(context.Background(), "www.example.com")
		if err != nil {
			t.Fatal(err)
		}
		if len(ips) != 1 || !ips[0].Equal(net.IPv4(192, 0, 2, 10)) {
			t.Fatalf("ips = %v", ips)
		}
	}
	// Both servers share the client: one socket each.
	m.mu.Lock()
	n := len(m.conns)
	m.mu.Unlock()
	if n != 2 {
		t.Fatalf("%d sockets for 2 servers, want 2", n)
	}
}

func TestMuxConcurrentStorm(t *testing.T) {
	var n atomic.Uint64
	_, addr := startDNSDelay(t, staticZone(), func() time.Duration {
		if n.Add(1)%7 == 0 {
			return 20 * time.Millisecond
		}
		return 0
	})
	m := NewMuxClient(time.Second)
	defer m.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 8*40)
	for g := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 40 {
				ctx := context.Background()
				if (g+i)%11 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					go func() {
						time.Sleep(time.Millisecond)
						cancel()
					}()
				}
				_, err := m.Query(ctx, addr, "www.example.com", TypeA)
				if err != nil && !errors.Is(err, context.Canceled) {
					errc <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
