package dnswire

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	wire, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.example.com", TypeA)
	got := roundTrip(t, q)
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Errorf("header mangled: %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.example.com" || got.Questions[0].Type != TypeA ||
		got.Questions[0].Class != ClassIN {
		t.Errorf("question mangled: %+v", got.Questions[0])
	}
}

func TestResponseRoundTripAllTypes(t *testing.T) {
	q := NewQuery(7, "multi.example.org", TypeANY)
	resp := NewResponse(q, RCodeSuccess)
	resp.Header.Authoritative = true
	resp.Answers = []RR{
		{Name: "multi.example.org", Type: TypeA, Class: ClassIN, TTL: 300, IP: []byte{192, 0, 2, 1}},
		{Name: "multi.example.org", Type: TypeAAAA, Class: ClassIN, TTL: 300,
			IP: bytes.Repeat([]byte{0x20, 0x01}, 8)},
		{Name: "alias.example.org", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "multi.example.org"},
		{Name: "multi.example.org", Type: TypeMX, Class: ClassIN, TTL: 60, Pref: 10, Target: "mx.example.org"},
		{Name: "multi.example.org", Type: TypeTXT, Class: ClassIN, TTL: 60, TXT: []string{"v=spf1 -all", "second"}},
	}
	resp.Authority = []RR{
		{Name: "example.org", Type: TypeNS, Class: ClassIN, TTL: 86400, Target: "ns1.example.org"},
	}
	got := roundTrip(t, resp)
	if !got.Header.Response || !got.Header.Authoritative || got.Header.RCode != RCodeSuccess {
		t.Errorf("header mangled: %+v", got.Header)
	}
	if len(got.Answers) != 5 || len(got.Authority) != 1 {
		t.Fatalf("section sizes %d/%d", len(got.Answers), len(got.Authority))
	}
	if !net.IP(got.Answers[0].IP).Equal(net.IPv4(192, 0, 2, 1)) {
		t.Errorf("A RDATA %v", got.Answers[0].IP)
	}
	if got.Answers[2].Target != "multi.example.org" {
		t.Errorf("CNAME target %q", got.Answers[2].Target)
	}
	if got.Answers[3].Pref != 10 || got.Answers[3].Target != "mx.example.org" {
		t.Errorf("MX mangled: %+v", got.Answers[3])
	}
	if !reflect.DeepEqual(got.Answers[4].TXT, []string{"v=spf1 -all", "second"}) {
		t.Errorf("TXT mangled: %v", got.Answers[4].TXT)
	}
	if got.Authority[0].Target != "ns1.example.org" {
		t.Errorf("NS mangled: %+v", got.Authority[0])
	}
}

func TestNameCompressionShrinksMessages(t *testing.T) {
	q := NewQuery(1, "host.department.example.com", TypeA)
	resp := NewResponse(q, RCodeSuccess)
	for i := 0; i < 10; i++ {
		resp.Answers = append(resp.Answers, RR{
			Name: "host.department.example.com", Type: TypeA, Class: ClassIN,
			TTL: 60, IP: []byte{10, 0, 0, byte(i)},
		})
	}
	wire, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each answer would repeat the 29-byte name; with
	// pointers each costs 2 bytes. 10 answers: name bytes saved >= 250.
	uncompressedFloor := 12 + 33 + 10*(29+10)
	if len(wire) >= uncompressedFloor {
		t.Errorf("message %d bytes; compression should keep it well under %d",
			len(wire), uncompressedFloor)
	}
	// And it must still decode correctly.
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range got.Answers {
		if rr.Name != "host.department.example.com" {
			t.Fatalf("compressed name decoded as %q", rr.Name)
		}
	}
}

func TestCompressionPointerIntoRDATA(t *testing.T) {
	// CNAME target sharing a suffix with the owner must compress and
	// decode.
	q := NewQuery(2, "a.example.com", TypeCNAME)
	resp := NewResponse(q, RCodeSuccess)
	resp.Answers = []RR{{Name: "a.example.com", Type: TypeCNAME, Class: ClassIN,
		TTL: 1, Target: "b.example.com"}}
	got := roundTrip(t, resp)
	if got.Answers[0].Target != "b.example.com" {
		t.Errorf("target %q", got.Answers[0].Target)
	}
}

func TestDecodeRejectsPointerLoops(t *testing.T) {
	// Hand-craft a message whose question name is a self-pointer.
	wire := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header: 1 question
		0xC0, 12, // pointer to itself
		0, 1, 0, 1,
	}
	if _, err := Decode(wire); err == nil {
		t.Fatal("self-pointing name accepted")
	}
}

func TestDecodeRejectsForwardPointer(t *testing.T) {
	wire := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 200, // forward/far pointer
		0, 1, 0, 1,
	}
	if _, err := Decode(wire); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestDecodeTruncatedInputs(t *testing.T) {
	q := NewQuery(9, "truncate.example", TypeA)
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := Decode(wire[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(120))
		r.Read(buf)
		Decode(buf) // must not panic; errors are fine
	}
}

func TestEncodeValidation(t *testing.T) {
	// Label too long.
	long := strings.Repeat("x", 64) + ".example"
	if _, err := Encode(NewQuery(1, long, TypeA)); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("64-byte label: %v", err)
	}
	// Name too long.
	name := strings.Repeat("abcdefgh.", 32) + "com"
	if _, err := Encode(NewQuery(1, name, TypeA)); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name: %v", err)
	}
	// Empty label.
	if _, err := Encode(NewQuery(1, "a..b", TypeA)); err == nil {
		t.Error("empty label accepted")
	}
	// Bad A RDATA length.
	m := NewQuery(1, "x", TypeA)
	m.Answers = []RR{{Name: "x", Type: TypeA, Class: ClassIN, IP: []byte{1, 2}}}
	if _, err := Encode(m); err == nil {
		t.Error("2-byte A RDATA accepted")
	}
}

func TestRootAndCaseNames(t *testing.T) {
	// Root name encodes as a single zero byte.
	got := roundTrip(t, NewQuery(1, ".", TypeNS))
	if got.Questions[0].Name != "" {
		t.Errorf("root decoded as %q", got.Questions[0].Name)
	}
	// Names are normalized to lowercase.
	got = roundTrip(t, NewQuery(1, "WwW.ExAmPle.COM", TypeA))
	if got.Questions[0].Name != "www.example.com" {
		t.Errorf("case not normalized: %q", got.Questions[0].Name)
	}
}

func TestUnknownTypeOpaqueRoundTrip(t *testing.T) {
	q := NewQuery(5, "svc.example", Type(65))
	resp := NewResponse(q, RCodeSuccess)
	resp.Answers = []RR{{Name: "svc.example", Type: Type(65), Class: ClassIN,
		TTL: 60, Data: []byte{1, 2, 3, 4, 5}}}
	got := roundTrip(t, resp)
	if !bytes.Equal(got.Answers[0].Data, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("opaque RDATA mangled: %v", got.Answers[0].Data)
	}
}

// Property: encoding a random valid query and decoding returns the same
// question.
func TestQueryRoundTripProperty(t *testing.T) {
	labelChars := "abcdefghijklmnopqrstuvwxyz0123456789-"
	f := func(id uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nlabels := 1 + r.Intn(4)
		labels := make([]string, nlabels)
		for i := range labels {
			n := 1 + r.Intn(12)
			b := make([]byte, n)
			for j := range b {
				b[j] = labelChars[r.Intn(len(labelChars))]
			}
			labels[i] = string(b)
		}
		name := strings.Join(labels, ".")
		m := NewQuery(id, name, TypeA)
		wire, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Header.ID == id && got.Questions[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" || Type(999).String() != "TYPE999" {
		t.Error("Type.String wrong")
	}
	if RCodeNameError.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String wrong")
	}
}
