package dnswire

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"time"
)

// DNS over TCP (RFC 1035 §4.2.2): each message is prefixed with a two-byte
// big-endian length. Clients fall back to TCP when a UDP response arrives
// with the TC (truncated) bit set.

// ExchangeTCP sends the query over TCP and reads one response.
func (c *Client) ExchangeTCP(ctx context.Context, server string, query *Message) (*Message, error) {
	wire, err := Encode(query)
	if err != nil {
		return nil, err
	}
	if len(wire) > 0xFFFF {
		return nil, errors.New("dnswire: query exceeds 65535 bytes")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	deadline := time.Now().Add(c.Timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	conn.SetDeadline(deadline)

	if err := writeTCPMessage(conn, wire); err != nil {
		return nil, err
	}
	respWire, err := readTCPMessage(conn)
	if err != nil {
		return nil, err
	}
	resp, err := Decode(respWire)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != query.Header.ID {
		return nil, ErrIDMismatch
	}
	return resp, nil
}

// ExchangeWithFallback sends the query over UDP and, if the response has
// the TC bit set, retries once over TCP — the standard stub-resolver
// behaviour for responses too large for a UDP datagram.
func (c *Client) ExchangeWithFallback(ctx context.Context, server string, query *Message) (*Message, error) {
	resp, err := c.Exchange(ctx, server, query)
	if err != nil {
		return nil, err
	}
	if !resp.Header.Truncated {
		return resp, nil
	}
	return c.ExchangeTCP(ctx, server, query)
}

func writeTCPMessage(w io.Writer, wire []byte) error {
	var lenbuf [2]byte
	binary.BigEndian.PutUint16(lenbuf[:], uint16(len(wire)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := w.Write(wire)
	return err
}

func readTCPMessage(r io.Reader) ([]byte, error) {
	var lenbuf [2]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenbuf[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ListenTCP starts serving the same handler over TCP on addr, alongside
// (or instead of) the UDP listener. Each connection may carry multiple
// sequential queries, per RFC 1035. It returns the bound address.
func (s *Server) ListenTCP(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("dnswire: server closed")
	}
	s.tcpLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.tcpLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) tcpLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.tcpConns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveTCPConn(conn)
			s.mu.Lock()
			delete(s.tcpConns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	for {
		wire, err := readTCPMessage(conn)
		if err != nil {
			return
		}
		resp := s.respond(wire)
		if resp == nil {
			return
		}
		out, err := Encode(resp)
		if err != nil {
			return
		}
		if err := writeTCPMessage(conn, out); err != nil {
			return
		}
	}
}
