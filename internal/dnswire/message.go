// Package dnswire implements the DNS wire format (RFC 1035) on the Go
// standard library: message encoding and decoding with name compression, a
// UDP client with per-query timeouts, an embeddable UDP server, and a
// replicated resolver built on the redundancy core — the paper's §3.2
// strategy ("query multiple DNS servers in parallel and use the first
// response") as working code.
//
// The codec supports the record types a stub resolver meets in practice
// (A, AAAA, CNAME, NS, PTR, MX, TXT); unknown types round-trip as opaque
// RDATA.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// Common RR types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeANY   Type = 255
)

func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; in practice always IN.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess        RCode = 0
	RCodeFormatError    RCode = 1
	RCodeServerFailure  RCode = 2
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4
	RCodeRefused        RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormatError:
		return "FORMERR"
	case RCodeServerFailure:
		return "SERVFAIL"
	case RCodeNameError:
		return "NXDOMAIN"
	case RCodeNotImplemented:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Header is the fixed 12-byte DNS message header, decomposed.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a query for name/type/class.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is a resource record. Exactly one of the typed payload fields is
// meaningful depending on Type; unknown types carry raw Data.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	// A / AAAA payload (4 or 16 bytes).
	IP []byte
	// CNAME / NS / PTR target.
	Target string
	// MX payload.
	Pref uint16
	// TXT strings.
	TXT []string
	// Raw RDATA for types the codec does not interpret.
	Data []byte
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Common codec errors.
var (
	ErrNameTooLong     = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong    = errors.New("dnswire: label exceeds 63 octets")
	ErrTruncated       = errors.New("dnswire: message truncated")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrTooManyPointers = errors.New("dnswire: too many compression pointers")
)

// NewQuery builds a standard recursive query for name/type with the given
// transaction ID.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton echoing the query's ID and
// question.
func NewResponse(q *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:                 q.Header.ID,
			Response:           true,
			Opcode:             q.Header.Opcode,
			RecursionDesired:   q.Header.RecursionDesired,
			RecursionAvailable: true,
			RCode:              rcode,
		},
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}

// normalizeName lower-cases and strips a trailing dot; the root name is "".
func normalizeName(name string) string {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	return name
}

// splitLabels validates and splits a normalized name.
func splitLabels(name string) ([]string, error) {
	if name == "" {
		return nil, nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for _, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("dnswire: empty label in %q", name)
		}
		if len(l) > 63 {
			return nil, ErrLabelTooLong
		}
	}
	return labels, nil
}
