package dnswire

import (
	"encoding/binary"
	"fmt"
)

// Encode serializes the message to wire format, applying name compression
// to every name it writes (owner names and CNAME/NS/PTR/MX targets).
func Encode(m *Message) ([]byte, error) {
	e := &encoder{offsets: make(map[string]int)}
	var flags uint16
	h := m.Header
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode) & 0xF

	e.u16(h.ID)
	e.u16(flags)
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(len(m.Answers)))
	e.u16(uint16(len(m.Authority)))
	e.u16(uint16(len(m.Additional)))

	for _, q := range m.Questions {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.u16(uint16(q.Type))
		e.u16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if err := e.rr(&sec[i]); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

type encoder struct {
	buf     []byte
	offsets map[string]int // fully-qualified suffix -> offset of its encoding
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// name writes a possibly-compressed domain name.
func (e *encoder) name(name string) error {
	labels, err := splitLabels(normalizeName(name))
	if err != nil {
		return err
	}
	for i := range labels {
		suffix := joinFrom(labels, i)
		if off, ok := e.offsets[suffix]; ok && off < 0x4000 {
			e.u16(0xC000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x4000 {
			e.offsets[suffix] = len(e.buf)
		}
		e.u8(uint8(len(labels[i])))
		e.buf = append(e.buf, labels[i]...)
	}
	e.u8(0) // root
	return nil
}

func joinFrom(labels []string, i int) string {
	s := labels[i]
	for _, l := range labels[i+1:] {
		s += "." + l
	}
	return s
}

func (e *encoder) rr(r *RR) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.u16(uint16(r.Type))
	e.u16(uint16(r.Class))
	e.u32(r.TTL)
	// RDLENGTH placeholder; backpatch after writing RDATA.
	lenAt := len(e.buf)
	e.u16(0)
	start := len(e.buf)
	switch r.Type {
	case TypeA:
		if len(r.IP) != 4 {
			return fmt.Errorf("dnswire: A record needs 4-byte IP, got %d", len(r.IP))
		}
		e.buf = append(e.buf, r.IP...)
	case TypeAAAA:
		if len(r.IP) != 16 {
			return fmt.Errorf("dnswire: AAAA record needs 16-byte IP, got %d", len(r.IP))
		}
		e.buf = append(e.buf, r.IP...)
	case TypeCNAME, TypeNS, TypePTR:
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeMX:
		e.u16(r.Pref)
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeTXT:
		for _, s := range r.TXT {
			if len(s) > 255 {
				return fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
			}
			e.u8(uint8(len(s)))
			e.buf = append(e.buf, s...)
		}
	default:
		e.buf = append(e.buf, r.Data...)
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnswire: RDATA too long (%d)", rdlen)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}

// Decode parses a wire-format message.
func Decode(data []byte) (*Message, error) {
	d := &decoder{data: data}
	m := &Message{}
	id, err := d.u16()
	if err != nil {
		return nil, err
	}
	flags, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		Opcode:             uint8(flags >> 11 & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}
	var counts [4]uint16
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		qt, err := d.u16()
		if err != nil {
			return nil, err
		}
		qc, err := d.u16()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(qt), Class: Class(qc)})
	}
	for sec, dst := range []*[]RR{&m.Answers, &m.Authority, &m.Additional} {
		for i := 0; i < int(counts[sec+1]); i++ {
			rr, err := d.rr()
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, rr)
		}
	}
	return m, nil
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) u8() (uint8, error) {
	if d.pos+1 > len(d.data) {
		return 0, ErrTruncated
	}
	v := d.data[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(d.data[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, ErrTruncated
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// name reads a possibly-compressed name starting at the current position.
func (d *decoder) name() (string, error) {
	s, next, err := readName(d.data, d.pos)
	if err != nil {
		return "", err
	}
	d.pos = next
	return s, nil
}

// readName parses a name at off, returning the name and the offset just
// past its in-place encoding (compression pointers are followed without
// advancing past them more than once).
func readName(data []byte, off int) (string, int, error) {
	var sb []byte
	pos := off
	next := -1 // position after the first pointer, i.e. where parsing resumes
	hops := 0
	for {
		if pos >= len(data) {
			return "", 0, ErrTruncated
		}
		b := data[pos]
		switch {
		case b == 0:
			pos++
			if next == -1 {
				next = pos
			}
			return string(sb), next, nil
		case b&0xC0 == 0xC0:
			if pos+2 > len(data) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(data[pos:]) & 0x3FFF)
			if next == -1 {
				next = pos + 2
			}
			if ptr >= pos {
				return "", 0, ErrPointerLoop
			}
			pos = ptr
			hops++
			if hops > 64 {
				return "", 0, ErrTooManyPointers
			}
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xC0)
		default:
			l := int(b)
			if pos+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			if len(sb) > 0 {
				sb = append(sb, '.')
			}
			sb = append(sb, data[pos+1:pos+1+l]...)
			if len(sb) > 253 {
				return "", 0, ErrNameTooLong
			}
			pos += 1 + l
		}
	}
}

func (d *decoder) rr() (RR, error) {
	var r RR
	name, err := d.name()
	if err != nil {
		return r, err
	}
	r.Name = name
	t, err := d.u16()
	if err != nil {
		return r, err
	}
	r.Type = Type(t)
	c, err := d.u16()
	if err != nil {
		return r, err
	}
	r.Class = Class(c)
	if r.TTL, err = d.u32(); err != nil {
		return r, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return r, err
	}
	end := d.pos + int(rdlen)
	if end > len(d.data) {
		return r, ErrTruncated
	}
	switch r.Type {
	case TypeA:
		b, err := d.bytes(4)
		if err != nil || int(rdlen) != 4 {
			return r, fmt.Errorf("dnswire: bad A RDATA")
		}
		r.IP = append([]byte(nil), b...)
	case TypeAAAA:
		b, err := d.bytes(16)
		if err != nil || int(rdlen) != 16 {
			return r, fmt.Errorf("dnswire: bad AAAA RDATA")
		}
		r.IP = append([]byte(nil), b...)
	case TypeCNAME, TypeNS, TypePTR:
		if r.Target, err = d.name(); err != nil {
			return r, err
		}
	case TypeMX:
		if r.Pref, err = d.u16(); err != nil {
			return r, err
		}
		if r.Target, err = d.name(); err != nil {
			return r, err
		}
	case TypeTXT:
		for d.pos < end {
			l, err := d.u8()
			if err != nil {
				return r, err
			}
			s, err := d.bytes(int(l))
			if err != nil {
				return r, err
			}
			r.TXT = append(r.TXT, string(s))
		}
	default:
		b, err := d.bytes(int(rdlen))
		if err != nil {
			return r, err
		}
		r.Data = append([]byte(nil), b...)
	}
	if d.pos != end {
		return r, fmt.Errorf("dnswire: RDATA length mismatch for %s", r.Type)
	}
	return r, nil
}
