package dnswire

import (
	"net"
	"sync"
	"time"
)

// Handler answers a single DNS question. Returning nil causes a SERVFAIL
// response.
type Handler func(q Question) *Message

// Server is a minimal UDP DNS server for tests, examples, and the mock
// resolvers used by the DNS experiment. Each datagram is answered on its
// own goroutine.
type Server struct {
	// Handler produces answers. The query message's first question is
	// passed; multi-question queries are answered from the first question
	// only, like most real servers.
	Handler Handler
	// Delay, if non-nil, is called per query and its result slept before
	// answering — the latency-injection hook used to emulate slow
	// resolvers. Set it before Listen: the serve loop reads it without
	// synchronization.
	Delay func() time.Duration
	// DropProb, with Rand, simulates request loss: queries are silently
	// dropped with this probability. Rand must be non-nil if DropProb > 0.
	DropProb float64
	// Rand returns a uniform [0,1) sample for DropProb; it must be safe
	// for concurrent use or the server must be single-inflight.
	Rand func() float64

	pc       net.PacketConn
	tcpLn    net.Listener
	mu       sync.Mutex
	tcpConns map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server with the given handler.
func NewServer(h Handler) *Server {
	return &Server{Handler: h, tcpConns: make(map[net.Conn]struct{})}
}

// Listen binds to a UDP address ("127.0.0.1:0" for an ephemeral port) and
// starts serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.pc = pc
	s.mu.Unlock()
	s.wg.Add(1)
	go s.loop(pc)
	return pc.LocalAddr(), nil
}

// Close stops the server (UDP and TCP) and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	pc := s.pc
	ln := s.tcpLn
	for c := range s.tcpConns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if pc != nil {
		err = pc.Close()
	}
	if ln != nil {
		if e := ln.Close(); e != nil && err == nil {
			err = e
		}
	}
	s.wg.Wait()
	return err
}

func (s *Server) loop(pc net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		if s.DropProb > 0 && s.Rand != nil && s.Rand() < s.DropProb {
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(pc, from, pkt)
		}()
	}
}

func (s *Server) handle(pc net.PacketConn, from net.Addr, pkt []byte) {
	resp := s.respond(pkt)
	if resp == nil {
		return
	}
	wire, err := Encode(resp)
	if err != nil {
		return
	}
	pc.WriteTo(wire, from)
}

// respond runs the handler for one wire-format query, applying the Delay
// hook, and returns the response message (nil to drop).
func (s *Server) respond(pkt []byte) *Message {
	query, err := Decode(pkt)
	if err != nil || query.Header.Response || len(query.Questions) == 0 {
		return nil // not a query we can answer; drop
	}
	if s.Delay != nil {
		if d := s.Delay(); d > 0 {
			time.Sleep(d)
		}
	}
	var resp *Message
	if s.Handler != nil {
		resp = s.Handler(query.Questions[0])
	}
	if resp == nil {
		resp = NewResponse(query, RCodeServerFailure)
	} else {
		// Ensure the response is well-formed with respect to the query.
		resp.Header.ID = query.Header.ID
		resp.Header.Response = true
		if len(resp.Questions) == 0 {
			resp.Questions = append(resp.Questions, query.Questions...)
		}
	}
	return resp
}

// StaticHandler answers A queries from a fixed name -> IPv4 map and returns
// NXDOMAIN otherwise. It is the workhorse handler for tests and examples.
func StaticHandler(records map[string]net.IP) Handler {
	norm := make(map[string]net.IP, len(records))
	for k, v := range records {
		norm[normalizeName(k)] = v.To4()
	}
	return func(q Question) *Message {
		msg := &Message{
			Header:    Header{Response: true, RecursionAvailable: true},
			Questions: []Question{q},
		}
		ip, ok := norm[normalizeName(q.Name)]
		if !ok || ip == nil || (q.Type != TypeA && q.Type != TypeANY) {
			msg.Header.RCode = RCodeNameError
			return msg
		}
		msg.Answers = append(msg.Answers, RR{
			Name: q.Name, Type: TypeA, Class: ClassIN, TTL: 60, IP: ip,
		})
		return msg
	}
}
