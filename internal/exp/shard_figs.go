package exp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"redundancy/internal/core"
	"redundancy/internal/dist"
	"redundancy/internal/memkv"
	"redundancy/internal/stats"
)

// AblationShard reproduces the shape of the paper's §2.2 disk-backed
// storage result (Figures 5 and 10) in the LIVE stack rather than the
// cluster simulator: real memkv servers over TCP, a memkv.ShardedClient
// partitioning keys across them on the production consistent-hash ring
// (internal/ring), and redundant primary+secondary reads through the
// core call engine.
//
// Each shard emulates a single FCFS disk-backed server with its Delay
// hook: per request it draws a service time (cache-hit CPU or a
// lognormal disk seek, plus size/bandwidth transfer), advances a
// virtual free-at clock under a mutex (the Lindley recursion), and
// sleeps until the request's virtual completion — so queueing delay is
// real wall-clock waiting, felt through real sockets by the real
// client. Reserved service is not reclaimed when a losing copy is
// cancelled, matching the paper's storage service, which ran every
// copy to completion.
//
// Two tables:
//
//   - response time vs load at 4 KB values: redundancy-to-2 wins
//     clearly at low load and crosses over as load grows (the extra
//     copies double the offered load, so the 2-copy arm saturates
//     first) — Figure 5's shape;
//   - response time vs value size at fixed load: as transfer time
//     dominates the (variable) seek, the service time becomes nearly
//     deterministic and doubled load buys little or negative benefit —
//     Figure 10's shape.
//
// Wall-clock runtime scales with o.Scale since the latencies are real;
// the default scale runs in well under a minute.
func AblationShard(o Options) ([]*Table, error) {
	const shards = 4

	loadTab := &Table{
		Title: "Ablation: sharded live stack, response time vs load (4 KB values, 4 memkv shards, FCFS disk model)",
		Caption: "primary+secondary redundant reads vs single-copy through the production ring; " +
			"2 copies double the offered load, so the win at low load inverts as load grows",
		Columns: []string{"load", "mean 1c (ms)", "mean 2c (ms)", "p99 1c (ms)", "p99 2c (ms)"},
	}
	requests := o.scale(2500)
	for _, load := range []float64{0.1, 0.2, 0.3, 0.45} {
		var res [3]*stats.Sample
		for _, copies := range []int{1, 2} {
			s, err := runShardArm(shardArm{
				shards: shards, copies: copies, load: load,
				valueSize: 4 << 10, requests: requests, seed: o.Seed + int64(copies),
			})
			if err != nil {
				return nil, fmt.Errorf("ablshard load %g %dc: %w", load, copies, err)
			}
			res[copies] = s
		}
		loadTab.Add(load,
			res[1].Mean()*1e3, res[2].Mean()*1e3,
			res[1].P99()*1e3, res[2].P99()*1e3)
	}

	sizeTab := &Table{
		Title: "Ablation: sharded live stack, response time vs value size (load 0.2)",
		Caption: "large values make service time transfer-dominated (nearly deterministic), so doubled load " +
			"buys ever less: the redundancy win shrinks as size grows — the paper's Figure 10 effect",
		Columns: []string{"value size", "mean 1c (ms)", "mean 2c (ms)", "p99 1c (ms)", "p99 2c (ms)"},
	}
	requests = o.scale(1200)
	for _, size := range []int{4 << 10, 100 << 10, 400 << 10} {
		var res [3]*stats.Sample
		for _, copies := range []int{1, 2} {
			s, err := runShardArm(shardArm{
				shards: shards, copies: copies, load: 0.2,
				valueSize: size, requests: requests, seed: o.Seed + int64(copies),
			})
			if err != nil {
				return nil, fmt.Errorf("ablshard size %d %dc: %w", size, copies, err)
			}
			res[copies] = s
		}
		sizeTab.Add(fmt.Sprintf("%d KB", size>>10),
			res[1].Mean()*1e3, res[2].Mean()*1e3,
			res[1].P99()*1e3, res[2].P99()*1e3)
	}
	return []*Table{loadTab, sizeTab}, nil
}

// shardArm is one measured configuration of the live sharded stack.
type shardArm struct {
	shards    int
	copies    int // read fan-out within the placement
	load      float64
	valueSize int
	requests  int
	seed      int64
}

// Disk-model constants, matching internal/cluster's Emulab-scale
// hardware: 10k RPM disks, ~60 MB/s sequential bandwidth.
const (
	shardHitCPU   = 200e-6 // cache-hit service, seconds
	shardSeekMean = 8e-3   // mean disk positioning time, seconds
	shardSeekCV   = 0.65
	shardDiskBW   = 60e6 // bytes/second
	shardMissProb = 0.1
)

// fcfsClock emulates one FCFS server on the wall clock: each request
// reserves its service behind the queue (Lindley recursion) and the
// handler sleeps until the request's virtual completion.
type fcfsClock struct {
	mu        sync.Mutex
	freeAt    time.Time
	rng       *rand.Rand
	seek      dist.Dist
	transfer  float64 // seconds per response
	measuring *atomic.Bool
}

func (c *fcfsClock) delay() time.Duration {
	if !c.measuring.Load() {
		return 0 // preload traffic does not occupy the modelled disk
	}
	now := time.Now()
	c.mu.Lock()
	svc := shardHitCPU
	if c.rng.Float64() < shardMissProb {
		svc += c.seek.Sample(c.rng)
	}
	svc += c.transfer
	start := c.freeAt
	if start.Before(now) {
		start = now
	}
	done := start.Add(time.Duration(svc * float64(time.Second)))
	c.freeAt = done
	c.mu.Unlock()
	return done.Sub(now)
}

// meanService is the analytic per-request service time used to
// calibrate the arrival rate for a target load.
func meanService(valueSize int) float64 {
	return shardHitCPU + shardMissProb*shardSeekMean + float64(valueSize)/shardDiskBW
}

// runShardArm measures one (copies, load, valueSize) point and returns
// the response-time sample in seconds.
func runShardArm(a shardArm) (*stats.Sample, error) {
	var measuring atomic.Bool
	servers := make([]*memkv.Server, a.shards)
	clients := make([]memkv.Backend, a.shards)
	for i := range servers {
		srv := memkv.NewServer(nil)
		clock := &fcfsClock{
			rng:       rand.New(rand.NewSource(a.seed + int64(i)*1009)),
			seek:      dist.LogNormalMeanCV(shardSeekMean, shardSeekCV),
			transfer:  float64(a.valueSize) / shardDiskBW,
			measuring: &measuring,
		}
		srv.Delay = clock.delay
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		servers[i] = srv
		clients[i] = memkv.NewClient(addr.String(), 30*time.Second)
	}
	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication:  2,
		WriteQuorum:  2, // write-all: every placement copy holds every key
		ReadStrategy: core.Fixed{Copies: a.copies},
	}, clients...)
	defer sc.Close()

	// Preload the keyspace (unmetered: the measuring flag is off, so
	// preload writes do not occupy the modelled disks).
	ctx := context.Background()
	const keys = 128
	value := make([]byte, a.valueSize)
	for i := 0; i < keys; i++ {
		if err := sc.Set(ctx, fmt.Sprintf("file-%d", i), value); err != nil {
			return nil, err
		}
	}
	measuring.Store(true)

	// Open-loop Poisson arrivals calibrated against the UNREPLICATED
	// system's bottleneck, as in the paper: the redundant arm really
	// offers ~2x that load.
	lambda := a.load * float64(a.shards) / meanService(a.valueSize)
	warmup := a.requests / 5
	total := a.requests + warmup
	rng := rand.New(rand.NewSource(a.seed ^ 0x5bd1))
	lat := make([]float64, total)
	failed := make([]error, total)
	var wg sync.WaitGroup
	next := time.Now()
	for i := 0; i < total; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / lambda * float64(time.Second)))
		key := fmt.Sprintf("file-%d", rng.Intn(keys))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			res, err := sc.GetResult(ctx, key)
			if err != nil {
				failed[i] = err
				return
			}
			lat[i] = res.Latency.Seconds()
		}(i, key)
	}
	wg.Wait()
	sample := stats.NewSample(a.requests)
	for i := warmup; i < total; i++ {
		if failed[i] != nil {
			return nil, failed[i]
		}
		sample.Add(lat[i])
	}
	return sample, nil
}
