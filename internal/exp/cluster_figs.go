package exp

import (
	"math/rand"

	"redundancy/internal/cluster"
	"redundancy/internal/dist"
	"redundancy/internal/stats"
)

// newRand is a tiny helper for experiment-level sampling decisions.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// clusterBase is the paper's Figure 5 configuration.
func clusterBase(o Options) cluster.Config {
	return cluster.Config{
		Servers: 4, Clients: 10, Files: 2000,
		FileSize:   dist.Deterministic{V: 4096},
		CacheRatio: 0.1,
		Requests:   o.scale(60000),
		Seed:       o.Seed,
	}
}

// clusterFigure sweeps load for 1 and 2 copies and reports mean, 99.9th
// percentile, and the CCDF at 20% load — the three panels of Figures 5-11.
func clusterFigure(o Options, title, caption string, mutate func(*cluster.Config)) ([]*Table, error) {
	cfg := clusterBase(o)
	if mutate != nil {
		mutate(&cfg)
	}
	sweep := &Table{
		Title:   title + ": mean and 99.9th percentile vs load",
		Caption: caption,
		Columns: []string{"load", "mean 1c (ms)", "mean 2c (ms)", "p99.9 1c (ms)", "p99.9 2c (ms)", "2c wins mean"},
	}
	var cdf1, cdf2 *stats.Sample
	for _, load := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7} {
		var res [3]*cluster.Result
		for _, copies := range []int{1, 2} {
			c := cfg
			c.Copies = copies
			c.Load = load
			r, err := cluster.Run(c)
			if err != nil {
				return nil, err
			}
			res[copies] = r
		}
		sweep.Add(load,
			res[1].Latency.Mean()*1e3, res[2].Latency.Mean()*1e3,
			res[1].Latency.P999()*1e3, res[2].Latency.P999()*1e3,
			res[2].Latency.Mean() < res[1].Latency.Mean())
		if load == 0.2 {
			cdf1, cdf2 = res[1].Latency, res[2].Latency
		}
	}
	ccdf := &Table{
		Title:   title + ": CCDF at load 0.2",
		Columns: []string{"threshold (ms)", "frac later 1c", "frac later 2c"},
	}
	for _, th := range stats.LogSpace(1e-3, 1, 7) {
		ccdf.Add(th*1e3, cdf1.FractionAbove(th), cdf2.FractionAbove(th))
	}
	return []*Table{sweep, ccdf}, nil
}

// Fig5 reproduces Figure 5 (base configuration).
func Fig5(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 5 (disk DB, base config)",
		"4 servers, 10 clients, 4 KB files, cache:disk 0.1; paper: threshold ~30%, p99.9 2.2x better at 20% load", nil)
}

// Fig6 reproduces Figure 6 (0.04 KB files).
func Fig6(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 6 (0.04 KB files)",
		"seek-dominated: same story as the base config",
		func(c *cluster.Config) { c.FileSize = dist.Deterministic{V: 40} })
}

// Fig7 reproduces Figure 7 (Pareto file sizes, 4 KB mean).
func Fig7(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 7 (Pareto file sizes)",
		"file-size distribution does not matter while seeks dominate",
		func(c *cluster.Config) { c.FileSize = dist.ParetoMean(2.5, 4096) })
}

// Fig8 reproduces Figure 8 (cache:disk ratio 0.01).
func Fig8(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 8 (cache:disk 0.01)",
		"more accesses hit disk => more variance => slightly larger tail win",
		func(c *cluster.Config) { c.CacheRatio = 0.01 })
}

// Fig9 reproduces Figure 9 (EC2-style noise).
func Fig9(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 9 (EC2-style noisy nodes)",
		"heavy-tailed multi-tenant slowdowns; paper: mean halves, p99.9 improves ~8x",
		func(c *cluster.Config) { c.EC2Noise = true })
}

// Fig10 reproduces Figure 10 (400 KB files).
func Fig10(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 10 (400 KB files)",
		"client-side transfer cost per copy is now significant: replication stops helping",
		func(c *cluster.Config) {
			c.FileSize = dist.Deterministic{V: 400 * 1024}
			c.Files = 500
		})
}

// Fig11 reproduces Figure 11 (cache:disk ratio 2 — fully resident).
func Fig11(o Options) ([]*Table, error) {
	return clusterFigure(o, "Figure 11 (cache holds everything)",
		"sub-millisecond in-memory service: replication has no room to help",
		func(c *cluster.Config) { c.CacheRatio = 2 })
}
