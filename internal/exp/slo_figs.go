package exp

import (
	"fmt"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/dist"
	"redundancy/internal/queueing"
	"redundancy/internal/slo"
)

// AblationSLO puts the self-tuning SLO controller (internal/slo) in
// closed loop with the deterministic queueing model and ramps the
// offered load across the paper's threshold. At each load level three
// systems chase the same p99 target:
//
//   - fixed k=1: never hedges. Cheap everywhere, but the service tail
//     (lognormal with cv 2 — the paper's motivating heavy-tail regime)
//     puts its p99 over the target at every load level on the ramp.
//   - fixed k=2 @ p50: always hedges at the median. Meets the target at
//     low load by spending ~1.5x capacity (overpaying where a later
//     hedge would do), then collapses past the threshold where the
//     extra copies push the realized load toward saturation — the
//     paper's central warning.
//   - slo controller: starts at k=1, observes each window exactly as
//     the production Tick loop would (p99, extra load, quantile
//     skeleton), and hill-climbs the hedge-quantile ladder until the
//     cheapest configuration inside the extra-load budget meets the
//     target, holding at the deadband.
//
// Reading the table: at every load level where some affordable
// configuration can meet the target, the controller's row meets it with
// strictly fewer copies/op than fixed k=2 — it pays only the tail
// probability (1-q) it needs. Where no configuration can (highest
// load), it reports the miss at bounded spend instead of saturating.
// The windows are paired: every simulation at one load level shares one
// seed, so comparisons are arrival-for-arrival.
func AblationSLO(o Options) ([]*Table, error) {
	requests := o.scale(50000)
	const unit = time.Millisecond // one model time unit rendered as 1ms
	target := slo.Target{P99: 11 * unit, MaxExtraLoad: 0.35}
	loads := []float64{0.15, 0.25, 0.35, 0.60}
	svc := dist.LogNormalMeanCV(1, 2)

	tab := &Table{
		Title: "Ablation: self-tuning SLO controller vs fixed strategies across a load ramp (lognormal service, mean 1ms, cv 2, N=20)",
		Caption: fmt.Sprintf("target p99 = %v, extra-load budget = %.2f copies/op; fixed k=1 misses the target at every load, "+
			"fixed k=2@p50 overpays at low load and collapses past the threshold; the controller converges to the cheapest "+
			"affordable point that meets the target, or reports the miss at bounded spend", target.P99, target.MaxExtraLoad),
		Columns: []string{"load", "scheme", "p99 (ms)", "copies/op", "meets", "operating point"},
	}

	simulate := func(load float64, cfg slo.ClassConfig, budget float64, seed int64) (queueing.HedgedResult, error) {
		hc := queueing.HedgedConfig{
			Servers:  20,
			Load:     load,
			Service:  svc,
			Mode:     queueing.HedgeNone,
			Requests: requests,
			Seed:     seed,
		}
		if cfg.Fanout > 1 {
			hc.Mode = queueing.HedgeSLO
			hc.Quantile = cfg.Quantile
			hc.MaxExtraLoad = budget
		}
		return queueing.RunHedged(hc)
	}
	ms := func(units float64) float64 { return units * float64(unit) / float64(time.Millisecond) }
	meets := func(p99 float64) string {
		if time.Duration(p99*float64(unit)) <= target.P99 {
			return "yes"
		}
		return "MISS"
	}

	for li, load := range loads {
		seed := o.Seed + int64(li+1)*7919

		// Fixed comparators, both at bounded honesty: k=1 never spends,
		// k=2@p50 spends uncapped (that is its point).
		base, err := simulate(load, slo.ClassConfig{Fanout: 1}, 0, seed)
		if err != nil {
			return nil, fmt.Errorf("ablslo k=1 at load %g: %w", load, err)
		}
		tab.Add(load, "fixed k=1", ms(base.Sample.P99()), 1+base.HedgeRate, meets(base.Sample.P99()), "k=1")

		agg, err := simulate(load, slo.ClassConfig{Fanout: 2, Quantile: 0.50}, 0, seed)
		if err != nil {
			return nil, fmt.Errorf("ablslo k=2@p50 at load %g: %w", load, err)
		}
		tab.Add(load, "fixed k=2@p50", ms(agg.Sample.P99()), 1+agg.HedgeRate, meets(agg.Sample.P99()), "k=2@p50")

		// The controller, in closed loop: simulate the current operating
		// point, feed the resulting window through Step exactly as Tick
		// would, repeat until it holds (converged) or the walk is plainly
		// done. Deterministic windows mean a held point stays held.
		ctr := core.NewCounters()
		ctl := slo.New(target, slo.Config{
			Counters:          ctr,
			MaxFanout:         2,
			MinWindowSamples:  1,
			DisableValidation: true, // the model IS the validator here
		})
		cfg, _ := ctl.ClassConfig(slo.DefaultClass)
		var res queueing.HedgedResult
		converged := false
		for iter := 0; iter < 15; iter++ {
			res, err = simulate(load, cfg, target.MaxExtraLoad, seed)
			if err != nil {
				return nil, fmt.Errorf("ablslo controller at load %g (%+v): %w", load, cfg, err)
			}
			r := res
			w := slo.Window{
				P99:         time.Duration(r.Sample.P99() * float64(unit)),
				Mean:        time.Duration(r.Sample.Mean() * float64(unit)),
				Samples:     int64(requests),
				ExtraLoad:   r.HedgeRate,
				Utilization: load / (1 - load),
				QuantileFn: func(q float64) (time.Duration, bool) {
					return time.Duration(r.Sample.Quantile(q) * float64(unit)), true
				},
			}
			next, mv := ctl.Step(slo.DefaultClass, w)
			if mv == slo.MoveHold {
				converged = true
				break
			}
			cfg = next
		}
		if !converged {
			// Walk cap hit (possible only at the ragged edge): measure the
			// final point so the row reports what that config really does.
			if res, err = simulate(load, cfg, target.MaxExtraLoad, seed); err != nil {
				return nil, fmt.Errorf("ablslo controller final at load %g: %w", load, err)
			}
		}
		op := "k=1"
		if cfg.Fanout > 1 {
			op = fmt.Sprintf("k=%d@p%02.0f", cfg.Fanout, cfg.Quantile*100)
		}
		tab.Add(load, "slo controller", ms(res.Sample.P99()), 1+res.HedgeRate, meets(res.Sample.P99()), op)
	}
	return []*Table{tab}, nil
}
