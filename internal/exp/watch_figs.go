package exp

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"redundancy/internal/dist"
	"redundancy/internal/memkv"
	"redundancy/internal/stats"
)

// AblationWatch applies the paper's redundancy argument to server-push
// streams: event delivery latency of a prefix watch subscribed to ONE
// replica versus a redundant watch subscribed to EVERY replica with
// (key, version) deduplication. A request/response call races copies
// and keeps the first answer; a redundant watch does the same per
// event — each logical event is delivered by whichever replica's copy
// arrives first, so tail latency tracks the fastest replica while a
// single-replica stream eats its one replica's queueing tail whole.
//
// Three phases on a live 2-shard, replication-2 cluster whose servers
// sleep exponential service times per request:
//
//   - single: one MuxClient.Watch on one replica; every write's event
//     carries its send timestamp and is clocked at delivery.
//   - redundant: ShardedClient.WatchPrefix over both replicas, same
//     write load — the acceptance bar is redundant p99 <= single p99.
//   - kill: with the redundant watch mid-stream, one replica's server
//     is killed and writes continue under WriteQuorum 1. The surviving
//     subscription must deliver every remaining event: the audit counts
//     exactly-once delivery per key across the whole phase — zero
//     missed, zero duplicates — while the dead shard's loop redials.
func AblationWatch(o Options) ([]*Table, error) {
	const (
		shards    = 2
		svcMean   = 2e-3 // mean per-request service time, seconds
		load      = 0.3
		watchPref = "w/"
	)
	events := o.scale(600)
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	var measuring syncBool
	servers := make(map[string]*memkv.Server, shards)
	muxByAddr := make(map[string]*memkv.MuxClient, shards)
	clients := make([]memkv.Backend, shards)
	addrs := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		srv := memkv.NewServer(nil)
		clock := &expClock{
			rng:       rand.New(rand.NewSource(seed + int64(i)*7919)),
			svc:       dist.Exponential{MeanV: svcMean},
			measuring: &measuring,
		}
		srv.Delay = clock.delay
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		servers[addr.String()] = srv
		addrs = append(addrs, addr.String())
		cl := memkv.NewMuxClient(addr.String(), 30*time.Second)
		muxByAddr[cl.Addr()] = cl
		clients[i] = cl
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication: 2,
		WriteQuorum: 1,
	}, clients...)
	defer sc.Close()
	ctx := context.Background()

	// phaseResult is one phase's delivery audit: how many of the phase's
	// events arrived, how many duplicate copies leaked past the filter,
	// and the delivery latency sample (send timestamp embedded in each
	// value, clocked at delivery — so it includes the replica's queueing,
	// which is the whole point).
	type phaseResult struct {
		got, dups int
		lat       *stats.Sample
	}

	// collectPhase drains ch concurrently with the writer until all n of
	// the phase's events arrived (or a deadline); it must run alongside
	// the writes, or buffered events would be clocked at drain time and
	// the "latency" would just measure the phase length.
	collectPhase := func(ch <-chan memkv.WatchEvent, phase string, n int) <-chan phaseResult {
		out := make(chan phaseResult, 1)
		go func() {
			res := phaseResult{lat: stats.NewSample(n)}
			counts := make(map[string]int, n)
			pref := watchPref + phase + "-"
			deadline := time.After(30 * time.Second)
			for res.got < n {
				select {
				case ev, ok := <-ch:
					if !ok {
						out <- res
						return
					}
					if !strings.HasPrefix(ev.Key, pref) {
						continue // an earlier phase's straggler
					}
					counts[ev.Key]++
					if counts[ev.Key] > 1 {
						res.dups++ // duplicate leaked past the filter
						continue
					}
					res.got++
					if len(ev.Value) == 8 {
						sent := int64(binary.BigEndian.Uint64(ev.Value))
						res.lat.Add(time.Duration(time.Now().UnixNano() - sent).Seconds())
					}
				case <-deadline:
					out <- res
					return
				}
			}
			out <- res
		}()
		return out
	}

	// writePhase drives open-loop Poisson writes (goroutine per write, so
	// the pacer never waits on an ack) under the phase's key prefix, each
	// value carrying its send timestamp. kill, if non-empty, is the shard
	// closed after half the writes.
	rng := rand.New(rand.NewSource(seed ^ 0x77))
	lambda := load * float64(shards) / svcMean
	writePhase := func(phase, kill string) error {
		var wg sync.WaitGroup
		errC := make(chan error, 1)
		next := time.Now()
		for i := 0; i < events; i++ {
			if kill != "" && i == events/2 {
				servers[kill].Close()
			}
			next = next.Add(time.Duration(rng.ExpFloat64() / lambda * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			key := fmt.Sprintf("%s%s-%05d", watchPref, phase, i)
			val := make([]byte, 8)
			binary.BigEndian.PutUint64(val, uint64(time.Now().UnixNano()))
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := sc.PutVersioned(ctx, key, val, 0); err != nil {
					select {
					case errC <- fmt.Errorf("%s write %s: %w", phase, key, err):
					default:
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errC:
			return err
		default:
			return nil
		}
	}

	// ---- phase 1: single-replica watch ----
	singleAddr := addrs[0]
	single, err := muxByAddr[singleAddr].Watch(ctx, watchPref, 4096)
	if err != nil {
		return nil, fmt.Errorf("single watch: %w", err)
	}
	measuring.set(true)
	resC := collectPhase(single.Events(), "s", events)
	if err := writePhase("s", ""); err != nil {
		return nil, err
	}
	sres := <-resC
	measuring.set(false)
	single.Close()

	// ---- phase 2: redundant watch over both replicas ----
	red, err := sc.WatchPrefix(ctx, watchPref, 4096)
	if err != nil {
		return nil, fmt.Errorf("redundant watch: %w", err)
	}
	measuring.set(true)
	resC = collectPhase(red.Events(), "r", events)
	if err := writePhase("r", ""); err != nil {
		return nil, err
	}
	rres := <-resC
	measuring.set(false)

	// ---- phase 3: kill one replica mid-stream, same redundant watch ----
	victim := addrs[1]
	measuring.set(true)
	resC = collectPhase(red.Events(), "k", events)
	if err := writePhase("k", victim); err != nil {
		return nil, err
	}
	kres := <-resC
	measuring.set(false)
	rst := red.Stats()
	red.Close()

	dups := rres.dups + kres.dups

	tab := &Table{
		Title: "Ablation: redundant watch — event delivery latency, single replica vs subscribe-everywhere",
		Caption: fmt.Sprintf(
			"2 shards, replication 2, exponential service mean %.0fus, load %.2g; redundant watch dedups by (key, version): "+
				"delivered %d, suppressed %d duplicate copies, %d resubscribes; "+
				"kill phase: %d/%d events delivered with one replica dead mid-stream, %d dup(s) leaked",
			svcMean*1e6, load, rst.Delivered, rst.Duplicates, rst.Resubscribes, kres.got, events, dups),
		Columns: []string{"stream", "events", "delivered", "mean (ms)", "p99 (ms)"},
	}
	tab.Add("single replica", events, sres.got, sres.lat.Mean()*1e3, sres.lat.P99()*1e3)
	tab.Add("redundant (2 replicas)", events, rres.got, rres.lat.Mean()*1e3, rres.lat.P99()*1e3)
	tab.Add("redundant, 1 replica killed", events, kres.got, kres.lat.Mean()*1e3, kres.lat.P99()*1e3)

	if rres.got != events || kres.got != events {
		return []*Table{tab}, fmt.Errorf("ablwatch: missed events (redundant %d/%d, kill %d/%d)",
			rres.got, events, kres.got, events)
	}
	if dups != 0 {
		return []*Table{tab}, fmt.Errorf("ablwatch: %d duplicate deliveries leaked through the (key, version) filter", dups)
	}
	if rres.lat.P99() > sres.lat.P99() {
		return []*Table{tab}, fmt.Errorf("ablwatch: redundant p99 %.3fms > single p99 %.3fms",
			rres.lat.P99()*1e3, sres.lat.P99()*1e3)
	}
	return []*Table{tab}, nil
}
