package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunAtTinyScale smoke-tests every figure end to end:
// each must produce non-empty tables that render.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tables, err := e.Run(Options{Scale: MinScale, Seed: 3})
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.Name)
			}
			var sb strings.Builder
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
					t.Fatalf("%s: empty table %+v", e.Name, tab)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("%s: row width %d != %d columns", e.Name, len(row), len(tab.Columns))
					}
				}
				tab.Fprint(&sb)
			}
			if !strings.Contains(sb.String(), "==") {
				t.Fatalf("%s: rendering produced no headers", e.Name)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fig5"); !ok {
		t.Error("fig5 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
	if len(All()) < 19 {
		t.Errorf("only %d experiments registered", len(All()))
	}
}

func TestOptionsScale(t *testing.T) {
	if got := (Options{Scale: 0.5}).scale(1000); got != 500 {
		t.Errorf("scale(1000) at 0.5 = %d", got)
	}
	if got := (Options{}).scale(1000); got != 1000 {
		t.Errorf("default scale = %d", got)
	}
	if got := (Options{Scale: 1e-9}).scale(1000); got < 100 {
		t.Errorf("clamped scale produced %d", got)
	}
}

func TestTableAddFormatsFloats(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.Add(1.23456789, "x")
	if tab.Rows[0][0] != "1.235" {
		t.Errorf("float formatted as %q", tab.Rows[0][0])
	}
}
