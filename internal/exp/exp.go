// Package exp is the experiment harness: one function per table/figure of
// the paper, each returning a printable Table whose rows correspond to the
// series the paper plots. cmd/redbench exposes them on the command line
// and the repository-root benchmarks regenerate them at reduced scale.
//
// Every function accepts Options controlling scale and seed, so the full
// paper-scale run and a quick CI run share one code path. EXPERIMENTS.md
// records paper-vs-measured values produced by this package.
package exp

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Options control experiment scale.
type Options struct {
	// Scale multiplies sample sizes; 1.0 is the documented full scale,
	// benchmarks use less. Values below MinScale are clamped.
	Scale float64
	// Seed seeds all randomness.
	Seed int64
}

// MinScale is the smallest accepted scale factor.
const MinScale = 0.01

func (o Options) scale(n int) int {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	if s < MinScale {
		s = MinScale
	}
	v := int(float64(n) * s)
	if v < 100 {
		v = 100
	}
	return v
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Experiment is a named, runnable reproduction target.
type Experiment struct {
	Name string // e.g. "fig1"
	Desc string
	Run  func(Options) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Queueing model: mean response vs load and CCDF (deterministic & Pareto)", Fig1},
		{"fig2", "Threshold load vs variance (Weibull, Pareto, two-point families)", Fig2},
		{"fig3", "Threshold load for random discrete service-time distributions", Fig3},
		{"fig4", "Effect of client-side overhead on the threshold load", Fig4},
		{"thm1", "Theorem 1: exponential service threshold = 1/3", Theorem1},
		{"fig5", "Disk-backed database, base configuration", Fig5},
		{"fig6", "Disk DB: 0.04 KB files", Fig6},
		{"fig7", "Disk DB: Pareto file sizes", Fig7},
		{"fig8", "Disk DB: cache:disk ratio 0.01", Fig8},
		{"fig9", "Disk DB: EC2-style noisy nodes", Fig9},
		{"fig10", "Disk DB: 400 KB files", Fig10},
		{"fig11", "Disk DB: cache:disk ratio 2 (fully resident)", Fig11},
		{"fig12", "memcached: response time vs load", Fig12},
		{"fig13", "memcached: stub vs real CDF at 0.1% load", Fig13},
		{"fig14", "Fat-tree in-network replication: flow completion times", Fig14},
		{"fig15", "DNS response time CCDF for 1/2/5/10 servers", Fig15},
		{"fig16", "DNS percent latency reduction vs number of copies", Fig16},
		{"fig17", "DNS marginal latency savings (ms/KB) vs break-even", Fig17},
		{"handshake", "TCP handshake duplication (§3.1)", Handshake},
		{"ablfattree", "Ablation: replica count and priority class in the fat-tree", AblationFatTree},
		{"ablqueueing", "Ablation: server count N and replication factor k in the queueing model", AblationQueueing},
		{"ablhedge", "Ablation: fixed-delay vs adaptive-quantile hedging vs full replication across loads", AblationHedging},
		{"ablquorum", "Ablation: R-of-N quorum reads vs first-response — the latency price of consistency", AblationQuorum},
		{"ablcancel", "Ablation: load-aware governor vs fixed fan-out-2 across the threshold load", AblationCancel},
		{"ablshard", "Ablation: sharded live stack — redundant primary+secondary reads vs load and value size", AblationShard},
		{"ablmux", "Ablation: outstanding-request ceiling, memkv v1 connection-per-request vs v2 multiplexed wire", AblationMux},
		{"ablrebalance", "Ablation: live reshard — governed anti-entropy migration, version audit, and read repair", AblationRebalance},
		{"ablwatch", "Ablation: redundant prefix watch — event delivery p99 single replica vs subscribe-everywhere, exactly-once across a shard kill", AblationWatch},
		{"ablslo", "Ablation: self-tuning SLO controller vs fixed k=1 and fixed k=2@p50 across a load ramp", AblationSLO},
	}
}

// ByName returns the experiment with the given name.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
