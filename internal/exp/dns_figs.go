package exp

import (
	"fmt"

	"redundancy/internal/analytic"
	"redundancy/internal/dnslab"
	"redundancy/internal/handshake"
)

func dnsRun(o Options) (*dnslab.Result, error) {
	return dnslab.Run(dnslab.Config{
		Vantages:        15,
		Servers:         10,
		QueriesPerStage: o.scale(20000),
		Seed:            o.Seed,
	})
}

// Fig15 reproduces Figure 15: the DNS response-time CCDF for 1, 2, 5, and
// 10 servers queried in parallel.
func Fig15(o Options) ([]*Table, error) {
	r, err := dnsRun(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 15: DNS response-time CCDF",
		Caption: "paper: 10 servers cut the >500ms fraction 6.5x and the >1.5s fraction 50x",
		Columns: []string{"threshold (s)", "1 server", "2 servers", "5 servers", "10 servers"},
	}
	for _, th := range []float64{0.1, 0.2, 0.3, 0.5, 0.8, 1.0, 1.5, 1.9} {
		t.Add(th,
			r.PerK[0].FractionAbove(th), r.PerK[1].FractionAbove(th),
			r.PerK[4].FractionAbove(th), r.PerK[9].FractionAbove(th))
	}
	factors := &Table{
		Title:   "Figure 15 headline factors",
		Columns: []string{"threshold", "reduction factor (1 -> 10 servers)"},
	}
	for _, th := range []float64{0.5, 1.5} {
		f1, f10 := r.PerK[0].FractionAbove(th), r.PerK[9].FractionAbove(th)
		factor := "inf"
		if f10 > 0 {
			factor = fmt.Sprintf("%.1fx", f1/f10)
		}
		factors.Add(fmt.Sprintf("%.1fs", th), factor)
	}
	return []*Table{t, factors}, nil
}

// Fig16 reproduces Figure 16: percent reduction in DNS response time vs the
// best single server, averaged over vantages, for k = 1..10.
func Fig16(o Options) ([]*Table, error) {
	r, err := dnsRun(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 16: % reduction in DNS response time vs best single server",
		Caption: "paper: substantial with 2 servers, 50-62% with 10",
		Columns: []string{"copies", "mean", "median", "p95", "p99"},
	}
	for k := 1; k <= 10; k++ {
		t.Add(k,
			fmt.Sprintf("%.1f%%", r.Reduction(k, dnslab.Mean)),
			fmt.Sprintf("%.1f%%", r.Reduction(k, dnslab.Median)),
			fmt.Sprintf("%.1f%%", r.Reduction(k, dnslab.P95)),
			fmt.Sprintf("%.1f%%", r.Reduction(k, dnslab.P99)))
	}
	return []*Table{t}, nil
}

// Fig17 reproduces Figure 17: the marginal latency saving (ms per KB of
// extra traffic) of each additional DNS server, against the paper's
// 16 ms/KB break-even benchmark.
func Fig17(o Options) ([]*Table, error) {
	r, err := dnsRun(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 17: marginal latency savings per extra DNS server",
		Caption: fmt.Sprintf("break-even benchmark %.0f ms/KB; paper: mean crosses below around 5 servers, p99 stays above",
			analytic.BreakEvenMsPerKB),
		Columns: []string{"servers", "marginal mean (ms/KB)", "marginal p99 (ms/KB)", "mean still worth it"},
	}
	for k := 2; k <= 10; k++ {
		mm := r.MarginalMsPerKB(k, dnslab.Mean)
		mp := r.MarginalMsPerKB(k, dnslab.P99)
		t.Add(k, mm, mp, mm >= analytic.BreakEvenMsPerKB)
	}
	total := &Table{
		Title:   "Figure 17 absolute check",
		Columns: []string{"quantity", "value"},
	}
	// Absolute (not marginal) savings at 10 copies, as the paper computes:
	// ~23 ms/KB, above break-even.
	saved := r.PerK[0].Mean() - r.PerK[9].Mean()
	extra := 9 * r.Params.BytesPerCopy
	total.Add("absolute mean savings, 10 copies (ms/KB)", saved*1000/(extra/1024))
	total.Add("break-even (ms/KB)", analytic.BreakEvenMsPerKB)
	return []*Table{t, total}, nil
}

// Handshake reproduces §3.1: TCP connection-establishment duplication.
func Handshake(o Options) ([]*Table, error) {
	trials := o.scale(2000000)
	t := &Table{
		Title:   "§3.1: TCP handshake duplication",
		Caption: "paper: >= 25 ms mean saving, ~880 ms tail saving, 170-6000 ms/KB",
		Columns: []string{"RTT (ms)", "mean single (s)", "mean dup (s)", "p99.5 single (s)", "p99.5 dup (s)", "mean ms/KB", "tail ms/KB"},
	}
	for _, rtt := range []float64{0.02, 0.1, 0.3} {
		c, err := handshake.Compare(rtt, trials, o.Seed)
		if err != nil {
			return nil, err
		}
		t.Add(rtt*1e3, c.MeanSingle, c.MeanDuplicated, c.P995Single, c.P995Duplicated,
			c.MeanSavedMsPerKB, c.TailSavedMsPerKB)
	}
	cross := &Table{
		Title:   "§3.1 analytic cross-check",
		Columns: []string{"RTT (ms)", "first-order expected mean saving (s)"},
	}
	for _, rtt := range []float64{0.02, 0.1, 0.3} {
		cross.Add(rtt*1e3, handshake.ExpectedSavings(rtt, 3.0))
	}
	return []*Table{t, cross}, nil
}
