package exp

import (
	"fmt"

	"redundancy/internal/fattree"
	"redundancy/internal/stats"
)

// Fig14 reproduces Figure 14: flow completion times for flows < 10 KB in
// the fat-tree with and without first-8-packet replication —
// (a) % median improvement vs load for three delay-bandwidth combinations,
// (b) 99th-percentile completion times vs load,
// (c) the FCT CDF at 40% load.
func Fig14(o Options) ([]*Table, error) {
	flows := o.scale(4000)
	warmup := flows * 3

	run := func(load, bw, delay float64, repl bool) (*fattree.Result, error) {
		return fattree.Run(fattree.Config{
			LinkBandwidth: bw, LinkDelay: delay,
			Load: load, Replicate: repl,
			Flows: flows, Warmup: warmup, Seed: o.Seed,
		})
	}

	combos := []struct {
		name      string
		bw, delay float64
	}{
		{"5 Gbps, 2 us", 5e9, 2e-6},
		{"10 Gbps, 2 us", 10e9, 2e-6},
		{"10 Gbps, 6 us", 10e9, 6e-6},
	}
	loads := []float64{0.2, 0.4, 0.6, 0.8}

	median := &Table{
		Title:   "Figure 14(a): % improvement in median FCT (flows < 10 KB)",
		Caption: "paper: peaks at intermediate load (38% at 40% load for 5 Gbps/2 us); falls as delay-BW grows",
		Columns: []string{"fabric", "load", "median base (ms)", "median repl (ms)", "% improvement"},
	}
	p99 := &Table{
		Title:   "Figure 14(b): 99th percentile FCT, 5 Gbps / 2 us",
		Caption: "paper: timeout-avoidance spike at high load (unreplicated crosses the 10 ms minRTO)",
		Columns: []string{"load", "p99 base (ms)", "p99 repl (ms)", "timeouts base", "timeouts repl"},
	}
	var cdfBase, cdfRepl *stats.Sample

	for _, combo := range combos {
		for _, load := range loads {
			rb, err := run(load, combo.bw, combo.delay, false)
			if err != nil {
				return nil, err
			}
			rr, err := run(load, combo.bw, combo.delay, true)
			if err != nil {
				return nil, err
			}
			mb, mr := rb.Small.Median(), rr.Small.Median()
			median.Add(combo.name, load, mb*1e3, mr*1e3, fmt.Sprintf("%.0f%%", 100*(1-mr/mb)))
			if combo.bw == 5e9 && combo.delay == 2e-6 {
				p99.Add(load, rb.Small.P99()*1e3, rr.Small.P99()*1e3, rb.Timeouts, rr.Timeouts)
				if load == 0.4 {
					cdfBase, cdfRepl = rb.Small, rr.Small
				}
			}
		}
	}

	cdf := &Table{
		Title:   "Figure 14(c): FCT CCDF at load 0.4, 5 Gbps / 2 us",
		Columns: []string{"threshold (ms)", "frac later base", "frac later repl"},
	}
	for _, th := range stats.LogSpace(0.02e-3, 2e-3, 8) {
		cdf.Add(th*1e3, cdfBase.FractionAbove(th), cdfRepl.FractionAbove(th))
	}
	return []*Table{median, p99, cdf}, nil
}
