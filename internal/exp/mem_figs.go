package exp

import (
	"redundancy/internal/memsim"
	"redundancy/internal/stats"
)

// Fig12 reproduces Figure 12: memcached response time vs load, 1 vs 2
// copies.
func Fig12(o Options) ([]*Table, error) {
	requests := o.scale(300000)
	t := &Table{
		Title:   "Figure 12: memcached, response time vs load",
		Caption: "client-side overhead (>=9% of the 0.18 ms service time) cancels the benefit at all loads",
		Columns: []string{"load", "mean 1c (ms)", "mean 2c (ms)", "p99.9 1c (ms)", "p99.9 2c (ms)"},
	}
	for _, load := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		var m [3]*memsim.Result
		for _, copies := range []int{1, 2} {
			r, err := memsim.Run(memsim.Config{
				Servers: 4, Copies: copies, Load: load,
				Requests: requests, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			m[copies] = r
		}
		t.Add(load,
			m[1].Latency.Mean()*1e3, m[2].Latency.Mean()*1e3,
			m[1].Latency.P999()*1e3, m[2].Latency.P999()*1e3)
	}
	return []*Table{t}, nil
}

// Fig13 reproduces Figure 13: stub vs real response-time CCDFs at 0.1%
// load, quantifying client-side overhead.
func Fig13(o Options) ([]*Table, error) {
	requests := o.scale(300000)
	run := func(copies int, stub bool) (*stats.Sample, error) {
		r, err := memsim.Run(memsim.Config{
			Servers: 4, Copies: copies, Load: 0.001, Stub: stub,
			Requests: requests, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		return r.Latency, nil
	}
	real1, err := run(1, false)
	if err != nil {
		return nil, err
	}
	real2, err := run(2, false)
	if err != nil {
		return nil, err
	}
	stub1, err := run(1, true)
	if err != nil {
		return nil, err
	}
	stub2, err := run(2, true)
	if err != nil {
		return nil, err
	}
	ccdf := &Table{
		Title:   "Figure 13: stub vs real CCDF at 0.1% load",
		Caption: "the stub isolates client-side latency; its replicated-minus-single delta is the overhead",
		Columns: []string{"threshold (ms)", "1c real", "2c real", "1c stub", "2c stub"},
	}
	for _, th := range stats.LogSpace(0.02e-3, 2e-3, 8) {
		ccdf.Add(th*1e3,
			real1.FractionAbove(th), real2.FractionAbove(th),
			stub1.FractionAbove(th), stub2.FractionAbove(th))
	}
	summary := &Table{
		Title:   "Figure 13 summary",
		Columns: []string{"arm", "mean (ms)"},
	}
	summary.Add("1 copy, real", real1.Mean()*1e3)
	summary.Add("2 copies, real", real2.Mean()*1e3)
	summary.Add("1 copy, stub", stub1.Mean()*1e3)
	summary.Add("2 copies, stub", stub2.Mean()*1e3)
	summary.Add("stub delta (client overhead, ms)", (stub2.Mean()-stub1.Mean())*1e3)
	summary.Add("overhead / mean service", (stub2.Mean()-stub1.Mean())/memsim.DefaultParams().ServiceMean)
	return []*Table{ccdf, summary}, nil
}
