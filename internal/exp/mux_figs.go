package exp

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/memkv"
	"redundancy/internal/stats"
)

// AblationMux measures what the memkv v2 wire protocol actually buys:
// how many requests a single client/server pair can hold in flight at
// once. The paper's redundancy multiplies outstanding requests by the
// replication factor, so the transport's concurrency ceiling bounds how
// far redundancy scales — and the v1 text protocol's ceiling is file
// descriptors, because every in-flight request occupies one pooled
// connection (two fds with client and server in one process).
//
// The driver is open-loop Poisson, as in the paper's load experiments:
// arrivals at rate lambda = W/D against a server that holds every
// request for a fixed D (wheel-parked on v2, goroutine-held on v1), so
// by Little's law the steady state keeps ~W requests outstanding
// whether or not the system keeps up. The sweep raises W geometrically
// until each transport breaks:
//
//   - v1 needs W live connections; past the fd budget (~10k in one
//     process at the default 20k rlimit) dials and accepts fail and the
//     arm reports errors.
//   - v2 multiplexes every request over ONE connection; W is bounded by
//     waiter-map memory, and the p99 stays at D plus scheduling noise
//     deep past v1's ceiling.
//
// At reduced scale (CI) the hold and the sweep shrink: the table shape
// survives, the fd wall does not (all arms fit), which is the point of
// a smoke run.
func AblationMux(o Options) ([]*Table, error) {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	if s < MinScale {
		s = MinScale
	}
	// Hold shrinks with scale (floored so arrival scheduling stays
	// coarser than sleep granularity), keeping smoke runs fast.
	hold := time.Duration(2 * s * float64(time.Second))
	if hold < 100*time.Millisecond {
		hold = 100 * time.Millisecond
	}
	tab := &Table{
		Title: "Ablation: outstanding-request ceiling, memkv v1 (conn per request) vs v2 (multiplexed), one server",
		Caption: fmt.Sprintf("open-loop Poisson arrivals at W/hold for 2.5 holds (hold=%v); W outstanding by Little's law; "+
			"v1 needs W connections = 2W fds in-process, v2 one connection total", hold),
		Columns: []string{"W target", "proto", "peak in-flight", "conns", "ok", "errs", "p50 (ms)", "p99 (ms)"},
	}
	for _, w := range []int{1000, 4000, 16000, 64000} {
		W := o.scale(w)
		for _, proto := range []string{"v1", "v2"} {
			r, err := runMuxArm(muxArm{outstanding: W, hold: hold, proto: proto, seed: o.Seed + int64(W)})
			if err != nil {
				return nil, fmt.Errorf("ablmux W=%d %s: %w", W, proto, err)
			}
			p50, p99 := "-", "-"
			if r.sample.N() > 0 {
				p50 = fmt.Sprintf("%.1f", r.sample.Quantile(0.5)*1e3)
				p99 = fmt.Sprintf("%.1f", r.sample.P99()*1e3)
			}
			tab.Add(W, proto, r.peak, r.conns, r.ok, r.errs, p50, p99)
		}
	}
	return []*Table{tab}, nil
}

// muxArm is one measured (transport, target-outstanding) configuration.
type muxArm struct {
	outstanding int
	hold        time.Duration
	proto       string // "v1" or "v2"
	seed        int64
}

type muxArmResult struct {
	peak   int64 // high-water mark of concurrently outstanding requests
	conns  int64 // connections the server accepted over the arm
	ok     int64
	errs   int64
	sample *stats.Sample // latency of error-free steady-state arrivals
}

// runMuxArm drives one open-loop arm against a fresh server (fresh
// because a v1 arm that hits the fd wall can wedge the listener; every
// arm deserves a clean slate).
func runMuxArm(a muxArm) (muxArmResult, error) {
	var measuring atomic.Bool
	srv := memkv.NewServer(nil)
	srv.Delay = func() time.Duration {
		if !measuring.Load() {
			return 0
		}
		return a.hold
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return muxArmResult{}, err
	}
	defer srv.Close()

	ctx := context.Background()
	const keys = 128
	pre := memkv.NewClient(addr.String(), 10*time.Second)
	for i := 0; i < keys; i++ {
		if err := pre.Set(ctx, fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			return muxArmResult{}, err
		}
	}
	pre.Close()

	var get func(context.Context, string) ([]byte, error)
	switch a.proto {
	case "v1":
		cl := memkv.NewClient(addr.String(), 30*time.Second)
		defer cl.Close()
		get = cl.Get
	case "v2":
		cl := memkv.NewMuxClient(addr.String(), 30*time.Second)
		defer cl.Close()
		get = cl.Get
	default:
		return muxArmResult{}, fmt.Errorf("unknown proto %q", a.proto)
	}
	measuring.Store(true)

	// Open-loop Poisson: lambda = W/hold, run for 2.5 holds. Arrivals in
	// [hold, 1.5*hold) see the steady state (~W outstanding) and are the
	// measured cohort; everything before ramps up, everything after keeps
	// the load on while the cohort drains.
	lambda := float64(a.outstanding) / a.hold.Seconds()
	runFor := time.Duration(2.5 * float64(a.hold))
	rng := rand.New(rand.NewSource(a.seed ^ 0x9e37))
	var wg sync.WaitGroup
	var cur, peak, ok, errs atomic.Int64
	var mu sync.Mutex
	sample := stats.NewSample(a.outstanding)
	start := time.Now()
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / lambda * float64(time.Second)))
		offset := next.Sub(start)
		if offset >= runFor {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		measured := offset >= a.hold && offset < a.hold+a.hold/2
		key := fmt.Sprintf("k-%d", rng.Intn(keys))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c := cur.Add(1); c > peak.Load() {
				peak.Store(c) // racy max is fine for a high-water stat
			}
			t0 := time.Now()
			_, err := get(ctx, key)
			lat := time.Since(t0)
			cur.Add(-1)
			if err != nil {
				errs.Add(1)
				return
			}
			ok.Add(1)
			if measured {
				mu.Lock()
				sample.Add(lat.Seconds())
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return muxArmResult{
		peak:   peak.Load(),
		conns:  srv.AcceptedConns(),
		ok:     ok.Load(),
		errs:   errs.Load(),
		sample: sample,
	}, nil
}
