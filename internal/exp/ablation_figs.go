package exp

import (
	"fmt"

	"redundancy/internal/dist"
	"redundancy/internal/fattree"
	"redundancy/internal/queueing"
)

// AblationFatTree quantifies the two design choices of the paper's §2.4
// scheme at 40% load:
//
//  1. How many leading packets to replicate (the paper picks 8; replicating
//     everything "can never be worse than without replication" but replica
//     self-queueing erodes the gain).
//  2. Strict lower priority for replicas (the design requirement) versus
//     same-priority replication, which lets replicas delay and drop
//     foreground traffic.
func AblationFatTree(o Options) ([]*Table, error) {
	flows := o.scale(3000)
	warmup := flows * 3

	count := &Table{
		Title:   "Ablation: packets replicated per flow (load 0.4, 5 Gbps / 2 us)",
		Caption: "0 = no replication; 'all' replicates every data packet",
		Columns: []string{"replicated pkts", "median FCT (ms)", "p99 FCT (ms)", "replica drops"},
	}
	for _, n := range []int{0, 1, 4, 8, 16, 1 << 20} {
		cfg := fattree.Config{
			Load: 0.4, Flows: flows, Warmup: warmup, Seed: o.Seed,
			Replicate: n > 0, ReplicatePackets: n,
		}
		res, err := fattree.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", n)
		if n == 0 {
			label = "0 (baseline)"
		} else if n >= 1<<20 {
			label = "all"
		}
		count.Add(label, res.Small.Median()*1e3, res.Small.P99()*1e3, res.DroppedReplicas)
	}

	prio := &Table{
		Title:   "Ablation: replica priority class (load 0.6, first 8 packets)",
		Caption: "same-priority replicas compete with foreground traffic — the design the paper rejects",
		Columns: []string{"scheme", "median FCT (ms)", "p99 FCT (ms)", "original drops"},
	}
	for _, tc := range []struct {
		name    string
		repl    bool
		samePri bool
	}{
		{"no replication", false, false},
		{"low-priority replicas", true, false},
		{"same-priority replicas", true, true},
	} {
		res, err := fattree.Run(fattree.Config{
			Load: 0.6, Flows: flows, Warmup: warmup, Seed: o.Seed,
			Replicate: tc.repl, ReplicaSamePriority: tc.samePri,
		})
		if err != nil {
			return nil, err
		}
		prio.Add(tc.name, res.Small.Median()*1e3, res.Small.P99()*1e3, res.DroppedOriginals)
	}
	return []*Table{count, prio}, nil
}

// AblationQueueing quantifies two methodology choices in the queueing
// experiments: the number of servers N (the paper notes the independence
// approximation is within 0.1% of exact at N = 20), and the replication
// factor k (Theorem 1 generalizes to threshold 1/(k+1)).
func AblationQueueing(o Options) ([]*Table, error) {
	requests := o.scale(300000)
	nTab := &Table{
		Title:   "Ablation: server count N (exponential service, threshold vs closed-form 1/3)",
		Caption: "small N correlates the two copies' queues; the paper reports 3% error at N=10, <0.1% at N=20",
		Columns: []string{"N", "threshold load", "error vs 1/3"},
	}
	for _, n := range []int{4, 10, 20, 40} {
		th, err := queueing.ThresholdLoad(queueing.ThresholdOptions{
			Servers: n, Service: dist.Exponential{MeanV: 1}, Seed: o.Seed, Requests: requests,
		})
		if err != nil {
			return nil, err
		}
		nTab.Add(n, th, fmt.Sprintf("%+.1f%%", (th-1.0/3)/(1.0/3)*100))
	}
	kTab := &Table{
		Title:   "Ablation: replication factor k (exponential service)",
		Caption: "closed form: threshold = 1/(k+1)",
		Columns: []string{"k", "threshold (simulated)", "threshold (1/(k+1))"},
	}
	for _, k := range []int{2, 3, 4} {
		th, err := queueing.ThresholdLoad(queueing.ThresholdOptions{
			Servers: 20, Copies: k, Service: dist.Exponential{MeanV: 1},
			Seed: o.Seed, Requests: requests,
		})
		if err != nil {
			return nil, err
		}
		kTab.Add(k, th, 1/float64(k+1))
	}
	return []*Table{nTab, kTab}, nil
}
