package exp

import (
	"fmt"

	"redundancy/internal/dist"
	"redundancy/internal/queueing"
)

// AblationHedging compares the three hedging strategies the core library
// offers — fixed-delay (Fixed), adaptive-quantile (AdaptiveHedge), and
// full replication (FullReplicate) — on the queueing substrate across
// load levels. It is the system-level ablation behind the Strategy
// refactor: §2 of the paper shows *when* to replicate depends on the
// latency distribution's tail, so a caller-guessed fixed delay is tuned
// for exactly one distribution and one load, while the adaptive client
// hedges at an observed response-time quantile that tracks both.
//
// The fixed delay is the guess a caller makes without measuring: a
// conservative 5x the mean service time, chosen to bound the added load
// when the latency distribution is unknown. The adaptive client instead
// hedges at its observed p90, holding its extra load near (1 - p) by
// construction and placing the hedge at the tail knee at every load, so
// it wins the p99 at every stable load. (An aggressively tuned 3x guess
// can match adaptive p99 at one operating point, but its realized extra
// load balloons with load — ~1.19 copies/op at load 0.45 under this
// Pareto — which is exactly the unbounded-budget failure the adaptive
// p-knob prevents; sweep FixedDelay to reproduce.) Under exponential
// service p99 is largely insensitive to the hedge point
// (memorylessness), which is why fixed guesses look safe in
// light-tailed toy benchmarks and fail on production tails.
func AblationHedging(o Options) ([]*Table, error) {
	requests := o.scale(200000)
	type scheme struct {
		name  string
		mode  queueing.HedgeMode
		delay float64 // multiple of mean service time, HedgeFixed only
	}
	schemes := []scheme{
		{"no hedging", queueing.HedgeNone, 0},
		{"fixed delay (5x mean svc)", queueing.HedgeFixed, 5},
		{"adaptive p90", queueing.HedgeAdaptive, 0},
		{"full replication", queueing.HedgeFull, 0},
	}
	loads := []float64{0.1, 0.3, 0.45}

	run := func(title, caption string, svc dist.Dist) (*Table, error) {
		tab := &Table{
			Title:   title,
			Caption: caption,
			Columns: []string{"load", "scheme", "mean", "p95", "p99", "copies/op"},
		}
		for _, load := range loads {
			for _, sc := range schemes {
				res, err := queueing.RunHedged(queueing.HedgedConfig{
					Servers:    20,
					Load:       load,
					Service:    svc,
					Mode:       sc.mode,
					FixedDelay: sc.delay * svc.Mean(),
					Quantile:   0.9,
					Requests:   requests,
					Seed:       o.Seed,
				})
				if err != nil {
					return nil, fmt.Errorf("%s at load %g: %w", sc.name, load, err)
				}
				tab.Add(load, sc.name, res.Sample.Mean(), res.Sample.Quantile(0.95),
					res.Sample.P99(), 1+res.HedgeRate)
			}
		}
		return tab, nil
	}

	pareto, err := run(
		"Ablation: hedging strategy vs load (Pareto service, alpha=2.1, mean 1, N=20)",
		"heavy tail: the adaptive client hedges at its observed p90 and beats the fixed guess's p99 at every load; full replication is best until 2x load saturates",
		dist.ParetoMean(2.1, 1))
	if err != nil {
		return nil, err
	}
	expo, err := run(
		"Ablation: hedging strategy vs load (exponential service, mean 1, N=20)",
		"memoryless control: p99 is insensitive to the hedge point, so fixed and adaptive tie — the guess only looks safe under light tails",
		dist.Exponential{MeanV: 1})
	if err != nil {
		return nil, err
	}
	return []*Table{pareto, expo}, nil
}
