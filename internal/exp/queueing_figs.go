package exp

import (
	"fmt"
	"math"

	"redundancy/internal/analytic"
	"redundancy/internal/dist"
	"redundancy/internal/queueing"
	"redundancy/internal/stats"
)

const queueServers = 20

// Fig1 reproduces Figure 1: mean response time vs load for deterministic
// and Pareto(2.1) unit-mean service times with 1 and 2 copies, plus the
// response-time CCDF at load 0.2 under Pareto service.
func Fig1(o Options) ([]*Table, error) {
	requests := o.scale(400000)
	mean := &Table{
		Title:   "Figure 1(a,b): mean response time vs load",
		Caption: "N=20 servers, unit-mean service; paper shows crossover ~0.26 (det) and ~0.4+ (Pareto)",
		Columns: []string{"service", "load", "mean 1 copy (s)", "mean 2 copies (s)", "2 copies wins"},
	}
	services := []struct {
		name string
		d    dist.Dist
	}{
		{"deterministic", dist.Deterministic{V: 1}},
		{"pareto(2.1)", dist.ParetoMean(2.1, 1)},
	}
	for _, svc := range services {
		for _, load := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45} {
			m1, err := queueing.MeanResponse(queueing.Config{
				Servers: queueServers, Copies: 1, Load: load, Service: svc.d,
				Requests: requests, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			m2, err := queueing.MeanResponse(queueing.Config{
				Servers: queueServers, Copies: 2, Load: load, Service: svc.d,
				Requests: requests, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			mean.Add(svc.name, load, m1, m2, m2 < m1)
		}
	}

	ccdf := &Table{
		Title:   "Figure 1(c): response-time CCDF at load 0.2, Pareto(2.1) service",
		Caption: "paper reports ~5x reduction in the 99.9th percentile",
		Columns: []string{"threshold (s)", "frac later, 1 copy", "frac later, 2 copies"},
	}
	s1, err := queueing.Run(queueing.Config{
		Servers: queueServers, Copies: 1, Load: 0.2,
		Service: dist.ParetoMean(2.1, 1), Requests: requests, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	s2, err := queueing.Run(queueing.Config{
		Servers: queueServers, Copies: 2, Load: 0.2,
		Service: dist.ParetoMean(2.1, 1), Requests: requests, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	for _, th := range stats.LogSpace(1, 100, 9) {
		ccdf.Add(th, s1.FractionAbove(th), s2.FractionAbove(th))
	}
	ccdf.Add("p99.9 (s)", s1.P999(), s2.P999())
	return []*Table{mean, ccdf}, nil
}

// Fig2 reproduces Figure 2: threshold load across three unit-mean families
// of increasing variance.
func Fig2(o Options) ([]*Table, error) {
	requests := o.scale(200000)
	th := func(d dist.Dist) (float64, error) {
		return queueing.ThresholdLoad(queueing.ThresholdOptions{
			Servers: queueServers, Service: d, Seed: o.Seed, Requests: requests,
		})
	}
	weibull := &Table{
		Title:   "Figure 2(a): threshold load, Weibull service times",
		Caption: "threshold rises from ~0.26 toward 0.5 as inverse shape gamma grows",
		Columns: []string{"gamma (inverse shape)", "variance", "threshold load"},
	}
	for _, gamma := range []float64{0.25, 0.5, 1, 2, 4, 8, 12, 18} {
		d := dist.WeibullUnitMean(gamma)
		t, err := th(d)
		if err != nil {
			return nil, err
		}
		weibull.Add(gamma, d.Variance(), t)
	}
	pareto := &Table{
		Title:   "Figure 2(b): threshold load, Pareto service times",
		Caption: "inverse scale beta: alpha = 1 + 1/beta",
		Columns: []string{"beta (inverse scale)", "alpha", "threshold load"},
	}
	for _, beta := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		d := dist.ParetoInvScale(beta)
		t, err := th(d)
		if err != nil {
			return nil, err
		}
		pareto.Add(beta, d.Alpha, t)
	}
	twoPoint := &Table{
		Title:   "Figure 2(c): threshold load, two-point service times",
		Caption: "p -> 0 approaches deterministic (~0.258); p -> 1 approaches 0.5",
		Columns: []string{"p", "variance", "threshold load"},
	}
	for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
		d := dist.TwoPointUnitMean(p)
		t, err := th(d)
		if err != nil {
			return nil, err
		}
		twoPoint.Add(p, d.Variance(), t)
	}
	return []*Table{weibull, pareto, twoPoint}, nil
}

// Fig3 reproduces Figure 3: min/max threshold load over random unit-mean
// discrete distributions with support {1..n}, sampled uniformly from the
// simplex and from Dirichlet(0.1).
func Fig3(o Options) ([]*Table, error) {
	requests := o.scale(120000)
	trials := o.scale(2000) / 100 // 20 at full scale per (n, sampler)
	if trials < 3 {
		trials = 3
	}
	t := &Table{
		Title:   "Figure 3: threshold load for random discrete service-time distributions",
		Caption: fmt.Sprintf("%d sampled distributions per point; paper's conjectured lower bound ~0.2582", trials),
		Columns: []string{"support size", "sampler", "min threshold", "max threshold"},
	}
	rng := newRand(o.Seed)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		for _, sampler := range []struct {
			name  string
			alpha float64
		}{{"uniform", 0}, {"dirichlet(0.1)", 0.1}} {
			lo, hi := math.Inf(1), math.Inf(-1)
			for trial := 0; trial < trials; trial++ {
				d := dist.RandomUnitMeanDiscrete(rng, n, sampler.alpha)
				th, err := queueing.ThresholdLoad(queueing.ThresholdOptions{
					Servers: queueServers, Service: d,
					Seed: o.Seed + int64(trial), Requests: requests,
					Iterations: 9,
				})
				if err != nil {
					return nil, err
				}
				lo = math.Min(lo, th)
				hi = math.Max(hi, th)
			}
			t.Add(n, sampler.name, lo, hi)
		}
	}
	return []*Table{t}, nil
}

// Fig4 reproduces Figure 4: threshold load as a function of the client-side
// overhead replication adds, for Pareto, exponential, and deterministic
// service times.
func Fig4(o Options) ([]*Table, error) {
	requests := o.scale(200000)
	t := &Table{
		Title:   "Figure 4: threshold load vs client-side overhead",
		Caption: "overhead as a fraction of mean service time; more variable laws tolerate more overhead",
		Columns: []string{"service", "overhead fraction", "threshold load"},
	}
	services := []struct {
		name string
		d    dist.Dist
	}{
		{"pareto(2.1)", dist.ParetoMean(2.1, 1)},
		{"exponential", dist.Exponential{MeanV: 1}},
		{"deterministic", dist.Deterministic{V: 1}},
	}
	for _, svc := range services {
		for _, ov := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
			th, err := queueing.ThresholdLoad(queueing.ThresholdOptions{
				Servers: queueServers, Service: svc.d, ClientOverhead: ov,
				Seed: o.Seed, Requests: requests,
			})
			if err != nil {
				return nil, err
			}
			t.Add(svc.name, ov, th)
		}
	}
	return []*Table{t}, nil
}

// Theorem1 verifies the paper's Theorem 1 by simulation and closed form.
func Theorem1(o Options) ([]*Table, error) {
	requests := o.scale(400000)
	t := &Table{
		Title:   "Theorem 1: exponential service times",
		Caption: "threshold load is exactly 1/3; simulation vs closed form",
		Columns: []string{"quantity", "closed form", "simulated"},
	}
	th, err := queueing.ThresholdLoad(queueing.ThresholdOptions{
		Servers: queueServers, Service: dist.Exponential{MeanV: 1},
		Seed: o.Seed, Requests: requests,
	})
	if err != nil {
		return nil, err
	}
	t.Add("threshold load", 1.0/3, th)
	for _, rho := range []float64{0.1, 0.2, 0.3} {
		m1, err := queueing.MeanResponse(queueing.Config{
			Servers: queueServers, Copies: 1, Load: rho,
			Service: dist.Exponential{MeanV: 1}, Requests: requests, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		m2, err := queueing.MeanResponse(queueing.Config{
			Servers: queueServers, Copies: 2, Load: rho,
			Service: dist.Exponential{MeanV: 1}, Requests: requests, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("mean, 1 copy, rho=%.1f", rho), analytic.MM1MeanResponse(rho), m1)
		t.Add(fmt.Sprintf("mean, 2 copies, rho=%.1f", rho), analytic.MM1ReplicatedMeanResponse(rho, 2), m2)
	}
	t.Add("two-moment approx threshold (cs2=0)", analytic.TwoMomentThreshold(0), "-")
	t.Add("two-moment approx threshold (cs2=1)", analytic.TwoMomentThreshold(1), "-")
	return []*Table{t}, nil
}
