package exp

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/dist"
	"redundancy/internal/memkv"
	"redundancy/internal/repair"
	"redundancy/internal/stats"
)

// AblationRebalance demonstrates the convergence subsystem end to end
// on the live stack: a loaded 4-shard versioned memkv cluster gains a
// fifth shard mid-run, the governed anti-entropy migrator re-homes
// exactly the remapped keys while foreground reads continue, and a
// deliberately staled replica is healed by a quorum read's asynchronous
// read repair.
//
// The paper's premise — redundant reads win because every placement
// copy holds the data — silently breaks at every topology change;
// this experiment shows the migrator restoring it with bounded
// foreground impact. Three measurements:
//
//   - Foreground read latency (p99) in a steady-state window, in the
//     window during the reshard, and after convergence. The acceptance
//     bar is reshard p99 within 2x of steady-state: migration batches
//     only run when the shared governor's AllowBackground gate sees
//     utilization below its low-water mark.
//   - A version audit after the migrator finishes: every key must be
//     present at every owner of the NEW placement at the exact version
//     the writer minted (read directly from each shard, bypassing the
//     ring) — convergence verified key by key, not inferred.
//   - A read-repair probe: one replica of one key is staled by writing
//     a newer version to the other owner only; a quorum read returns
//     the newest value and the repair manager pushes it to the stale
//     replica off the read path, observable in its stats.
//
// Wall-clock runtime scales with o.Scale; the default runs in a few
// seconds.
func AblationRebalance(o Options) ([]*Table, error) {
	const (
		shards    = 4
		keys      = 256
		valueSize = 512
		load      = 0.2
		svcMean   = 300e-6 // mean per-request service time, seconds
	)
	window := o.scale(1500)
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	// ---- cluster: versioned (v2 mux) shards behind a sharded client ----
	var measuring syncBool
	servers := make([]*memkv.Server, 0, shards+1)
	muxByAddr := make(map[string]*memkv.MuxClient)
	newShard := func(i int) (*memkv.MuxClient, error) {
		srv := memkv.NewServer(nil)
		clock := &expClock{
			rng:       rand.New(rand.NewSource(seed + int64(i)*7919)),
			svc:       dist.Exponential{MeanV: svcMean},
			measuring: &measuring,
		}
		srv.Delay = clock.delay
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		servers = append(servers, srv)
		cl := memkv.NewMuxClient(addr.String(), 30*time.Second)
		muxByAddr[cl.Addr()] = cl
		return cl, nil
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	clients := make([]memkv.Backend, shards)
	for i := range clients {
		cl, err := newShard(i)
		if err != nil {
			return nil, err
		}
		clients[i] = cl
	}
	// Foreground reads stay at fixed fan-out 2: during the reshard a
	// single-copy read routed to the not-yet-migrated new shard would
	// miss, and the second copy (the old owner, still in the placement)
	// is exactly the redundancy that papers over the transition. The
	// governor is fed the foreground in-flight load by the window driver
	// and gates only the migrator's background work.
	gov := core.NewGovernor(0, 0)
	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication:  2,
		WriteQuorum:  2,
		ReadStrategy: core.Fixed{Copies: 2},
	}, clients...)
	defer sc.Close()

	mgr := repair.Attach(sc, repair.Config{
		Governor:       gov,
		ReplayInterval: 20 * time.Millisecond,
	})
	defer mgr.Close()

	// ---- preload: versioned quorum writes, versions remembered ----
	ctx := context.Background()
	wantVer := make(map[string]uint64, keys)
	value := make([]byte, valueSize)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("file-%d", i)
		ver, err := sc.PutVersioned(ctx, key, value, 0)
		if err != nil {
			return nil, fmt.Errorf("preload %s: %w", key, err)
		}
		wantVer[key] = ver
	}
	measuring.set(true)

	// ---- phase 1: steady state ----
	prevPlacement := sc.PlacementSnapshot()
	steady, err := runReadWindow(sc, gov, window, load, shards, svcMean, seed^0x1111)
	if err != nil {
		return nil, fmt.Errorf("steady window: %w", err)
	}

	// ---- phase 2: AddShard + governed migration under load ----
	newClient, err := newShard(shards)
	if err != nil {
		return nil, err
	}
	sc.AddShard(newClient)
	curPlacement := sc.PlacementSnapshot()

	type rebRes struct {
		st  repair.RebalanceStats
		err error
	}
	rebC := make(chan rebRes, 1)
	go func() {
		st, err := mgr.RebalanceBetween(ctx, prevPlacement, curPlacement)
		rebC <- rebRes{st, err}
	}()
	during, err := runReadWindow(sc, gov, window, load, shards+1, svcMean, seed^0x2222)
	if err != nil {
		return nil, fmt.Errorf("reshard window: %w", err)
	}
	// The reshard window is over but the migrator may still be paging.
	// The governor's EWMA only moves on samples, so if the window's last
	// in-flight reading landed above the low-water mark the gate would
	// stay shut forever — keep telling it the foreground is idle while
	// we wait.
	var reb rebRes
	for waiting := true; waiting; {
		select {
		case reb = <-rebC:
			waiting = false
		case <-time.After(2 * time.Millisecond):
			gov.Observe(0)
		}
	}
	if reb.err != nil {
		return nil, fmt.Errorf("rebalance: %w", reb.err)
	}

	after, err := runReadWindow(sc, gov, window, load, shards+1, svcMean, seed^0x3333)
	if err != nil {
		return nil, fmt.Errorf("post window: %w", err)
	}

	// The foreground load is over, but the governor's EWMA only moves on
	// samples — tell it the system is idle, or background work (the
	// read-repair push below) would stay gated on the last loaded value.
	for i := 0; i < 512; i++ {
		gov.Observe(0)
	}

	// ---- phase 3: version audit, directly against every owner ----
	measuring.set(false) // audit reads should not occupy the modelled disks
	audited, converged, missing, staleVer := 0, 0, 0, 0
	for key, want := range wantVer {
		owners := curPlacement.Owners(key)
		audited++
		ok := true
		for _, owner := range owners {
			cl := muxByAddr[owner]
			_, ver, _, err := cl.GetV(ctx, key)
			if err != nil {
				ok = false
				missing++
				break
			}
			if ver != want {
				ok = false
				staleVer++
				break
			}
		}
		if ok {
			converged++
		}
	}

	// ---- phase 4: read-repair probe ----
	// Stale one replica of one key by putting a newer version at the
	// other owner only, then let a quorum read through the client both
	// return the newest value and trigger the asynchronous repair.
	probeKey := "file-0"
	probeOwners := curPlacement.Owners(probeKey)
	newVal := []byte("repaired-value")
	probeVer := sc.NextVersion()
	if _, _, err := muxByAddr[probeOwners[0]].PutV(ctx, probeKey, newVal, 0, probeVer); err != nil {
		return nil, fmt.Errorf("probe stale put: %w", err)
	}
	gotVal, gotVer, err := sc.GetQuorum(ctx, probeKey, 2)
	if err != nil {
		return nil, fmt.Errorf("probe quorum read: %w", err)
	}
	repaired := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, v, _, err := muxByAddr[probeOwners[1]].GetV(ctx, probeKey)
		if err == nil && v == probeVer {
			repaired = true
			break
		}
		gov.Observe(0) // keep the background gate open while polling
		time.Sleep(10 * time.Millisecond)
	}
	mst := mgr.Stats()
	gst := gov.Stats()

	latTab := &Table{
		Title: "Ablation: live reshard — foreground read latency around a governed anti-entropy migration",
		Caption: fmt.Sprintf(
			"4->5 memkv shards under open-loop load %.2g; migration pages gated on governor AllowBackground "+
				"(allowed %d, deferred %d); reshard p99 / steady p99 = %.2fx (bound: 2x)",
			load, gst.BackgroundAllowed, gst.BackgroundDeferred, ratio(during.P99(), steady.P99())),
		Columns: []string{"phase", "reads", "mean (ms)", "p99 (ms)"},
	}
	latTab.Add("steady (4 shards)", window, steady.Mean()*1e3, steady.P99()*1e3)
	latTab.Add("during reshard", window, during.Mean()*1e3, during.P99()*1e3)
	latTab.Add("after convergence", window, after.Mean()*1e3, after.P99()*1e3)

	convTab := &Table{
		Title: "Ablation: live reshard — convergence audit and read repair",
		Caption: fmt.Sprintf(
			"version audit reads every key from every owner of the new placement directly; "+
				"read-repair probe stales one replica of %q and quorum-reads it (value back: %t, version back: %t)",
			probeKey, string(gotVal) == string(newVal), gotVer == probeVer),
		Columns: []string{"check", "value"},
	}
	convTab.Add("keys audited", audited)
	convTab.Add("keys converged (all owners at written version)", converged)
	convTab.Add("keys missing at an owner", missing)
	convTab.Add("keys at stale version", staleVer)
	convTab.Add("migrator: keys scanned", reb.st.KeysScanned)
	convTab.Add("migrator: keys migrated", reb.st.KeysMigrated)
	convTab.Add("migrator: puts applied / stale / failed",
		fmt.Sprintf("%d / %d / %d", reb.st.PutsApplied, reb.st.PutsStale, reb.st.PutsFailed))
	convTab.Add("migrator: elapsed", reb.st.Elapsed.Round(time.Millisecond))
	convTab.Add("read repair: divergence observed", mst.DivergenceObserved)
	convTab.Add("read repair: repairs pushed", mst.RepairsPushed)
	convTab.Add("read repair: stale replica healed", repaired)
	convTab.Add("hints queued / replayed / dropped",
		fmt.Sprintf("%d / %d / %d", mst.HintsQueued, mst.HintsReplayed, mst.HintsDropped))

	if converged != audited {
		return []*Table{latTab, convTab},
			fmt.Errorf("ablrebalance: %d/%d keys converged (missing %d, stale %d)", converged, audited, missing, staleVer)
	}
	if !repaired {
		return []*Table{latTab, convTab}, fmt.Errorf("ablrebalance: read repair did not heal the stale replica")
	}
	return []*Table{latTab, convTab}, nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// syncBool is a tiny shared flag (avoids importing sync/atomic here
// twice over; the experiment files already use atomic.Bool elsewhere).
type syncBool struct {
	mu sync.Mutex
	v  bool
}

func (b *syncBool) set(v bool) { b.mu.Lock(); b.v = v; b.mu.Unlock() }
func (b *syncBool) get() bool  { b.mu.Lock(); defer b.mu.Unlock(); return b.v }

// expClock is the FCFS virtual clock for this experiment's shards: an
// exponential service time reserved behind the queue (Lindley
// recursion), slept on the wall clock.
type expClock struct {
	mu        sync.Mutex
	freeAt    time.Time
	rng       *rand.Rand
	svc       dist.Dist
	measuring *syncBool
}

func (c *expClock) delay() time.Duration {
	if !c.measuring.get() {
		return 0
	}
	now := time.Now()
	c.mu.Lock()
	svc := c.svc.Sample(c.rng)
	start := c.freeAt
	if start.Before(now) {
		start = now
	}
	done := start.Add(time.Duration(svc * float64(time.Second)))
	c.freeAt = done
	c.mu.Unlock()
	return done.Sub(now)
}

// runReadWindow drives one open-loop Poisson read window against the
// sharded client, feeding the governor one utilization sample
// (in-flight reads per shard) per request, and returns the latency
// sample in seconds.
func runReadWindow(sc *memkv.ShardedClient, gov *core.Governor, requests int, load float64, shardCount int, svcMean float64, seed int64) (*stats.Sample, error) {
	ctx := context.Background()
	lambda := load * float64(shardCount) / svcMean
	rng := rand.New(rand.NewSource(seed))
	lat := make([]float64, requests)
	failed := make([]error, requests)
	var inflight atomic.Int64
	var wg sync.WaitGroup
	next := time.Now()
	for i := 0; i < requests; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / lambda * float64(time.Second)))
		key := fmt.Sprintf("file-%d", rng.Intn(256))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		gov.Observe(float64(inflight.Load()) / float64(shardCount))
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			inflight.Add(1)
			defer inflight.Add(-1)
			res, err := sc.GetResult(ctx, key)
			if err != nil {
				failed[i] = err
				return
			}
			lat[i] = res.Latency.Seconds()
		}(i, key)
	}
	wg.Wait()
	sample := stats.NewSample(requests)
	for i := range lat {
		if failed[i] != nil {
			return nil, failed[i]
		}
		sample.Add(lat[i])
	}
	return sample, nil
}
