package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"redundancy/internal/dist"
	"redundancy/internal/stats"
)

// AblationQuorum measures the latency price of consistency under
// redundancy: a first-response read completes at the minimum of k
// replica latencies, while an R-of-N quorum read (the WithQuorum call
// path) completes at the q-th order statistic. The paper's §2 analysis
// covers q = 1; this ablation extends it to the read-consistency knob
// the unified call API exposes, answering "what does ReadQuorum(2) cost
// me over first-response, and how much of that cost does adding a
// replica buy back?".
//
// The honest headline: under a heavy tail, a 2-of-3 quorum read is far
// closer to a 1-of-3 read than to a single un-replicated read — max(2
// of 3) dodges the worst straggler just as min() does — so consistency
// under redundancy is cheap compared to consistency without it (2-of-2
// pays the full max). The q = n column is the scatter-gather worst
// case.
func AblationQuorum(o Options) ([]*Table, error) {
	requests := o.scale(200000)
	type cfg struct {
		n, q int
	}
	cfgs := []cfg{
		{1, 1}, // no redundancy: the baseline read
		{2, 1}, // paper's duplication, first response wins
		{3, 1},
		{2, 2}, // consistency without spare replicas: full max
		{3, 2}, // ReadQuorum(2) over 3 replicas
		{3, 3},
		{5, 2},
	}
	run := func(title, caption string, svc dist.Dist) *Table {
		tab := &Table{
			Title:   title,
			Caption: caption,
			Columns: []string{"replicas n", "quorum q", "mean", "p95", "p99", "vs n=1 p99"},
		}
		base := 0.0
		for _, c := range cfgs {
			rng := rand.New(rand.NewSource(o.Seed)) // common random numbers across configs
			sample := stats.NewSample(requests)
			lat := make([]float64, c.n)
			for i := 0; i < requests; i++ {
				for j := range lat {
					lat[j] = svc.Sample(rng)
				}
				sort.Float64s(lat)
				sample.Add(lat[c.q-1])
			}
			p99 := sample.P99()
			if c.n == 1 && c.q == 1 {
				base = p99
			}
			tab.Add(c.n, c.q, sample.Mean(), sample.Quantile(0.95), p99,
				fmt.Sprintf("%.2fx", p99/base))
		}
		return tab
	}
	pareto := run(
		"Ablation: quorum size q vs replica count n (Pareto latency, alpha=2.1, mean 1)",
		"heavy tail: 2-of-3 stays near 1-of-3 and far below 2-of-2 — spare replicas, not lower quorums, buy consistency cheaply",
		dist.ParetoMean(2.1, 1))
	expo := run(
		"Ablation: quorum size q vs replica count n (exponential latency, mean 1)",
		"memoryless control: the same ordering with milder spreads",
		dist.Exponential{MeanV: 1})
	return []*Table{pareto, expo}, nil
}
