package exp

import (
	"fmt"

	"redundancy/internal/dist"
	"redundancy/internal/queueing"
)

// AblationCancel reproduces the paper's threshold crossing end-to-end
// with the load-aware governor in the loop: blind fixed fan-out-2
// replication collapses once base load passes the threshold (its
// realized utilization is 2x the offered load), while a governed group —
// the production core.Governor gating on measured in-flight copies per
// server, driven here inside the deterministic queueing model — sheds
// its own redundancy and degrades gracefully to single copies.
//
// The governor's congestion signal is in-flight copies per server. By
// Little's law an FCFS server at realized utilization rho holds about
// rho/(1-rho) copies in flight, so the paper's exponential-service
// threshold (duplication stops paying past base load 1/3, realized 2/3)
// is (2/3)/(1/3) = 2 copies in flight — exactly
// core.DefaultGovernorThreshold, which this experiment uses unchanged.
//
// Reading the table: below the threshold (loads 0.2, 0.25) the governed
// column tracks fixed fan-out-2 within a few percent and gates (almost)
// never; above it (0.42, 0.48) fixed-2 queues explode toward saturation
// while the governed system's p99 stays near the unreplicated baseline.
// Operating points right at the threshold (around 0.3-0.35) sit inside
// the governor's dithering band — in-flight copies fluctuate across the
// gate, so it sheds part-time and lands between the two arms; that band
// is the price of a measurement-driven gate and is why the hysteresis
// exists at all. The model runs copies to completion (the paper's
// no-cancellation worst case); the live engine does better still,
// because cancelled losers return capacity immediately (see DESIGN.md
// "Cancellation & the load governor").
func AblationCancel(o Options) ([]*Table, error) {
	requests := o.scale(200000)
	type scheme struct {
		name string
		mode queueing.HedgeMode
	}
	schemes := []scheme{
		{"no hedging", queueing.HedgeNone},
		{"fixed fan-out 2", queueing.HedgeFull},
		{"governed fan-out 2", queueing.HedgeGoverned},
	}
	loads := []float64{0.2, 0.25, 0.42, 0.48}

	tab := &Table{
		Title: "Ablation: load-aware governor vs fixed fan-out-2 across the threshold (exponential service, mean 1, N=20)",
		Caption: "below the threshold (1/3 base load) governed == fixed within noise; above it fixed-2 collapses " +
			"(realized load -> 1) while the governor gates and p99 falls back to the k=1 baseline",
		Columns: []string{"load", "scheme", "mean", "p95", "p99", "copies/op", "gated%"},
	}
	svc := dist.Exponential{MeanV: 1}
	for _, load := range loads {
		for _, sc := range schemes {
			res, err := queueing.RunHedged(queueing.HedgedConfig{
				Servers:  20,
				Load:     load,
				Service:  svc,
				Mode:     sc.mode,
				Requests: requests,
				Seed:     o.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("%s at load %g: %w", sc.name, load, err)
			}
			tab.Add(load, sc.name, res.Sample.Mean(), res.Sample.Quantile(0.95),
				res.Sample.P99(), 1+res.HedgeRate, fmt.Sprintf("%.1f", res.GatedRate*100))
		}
	}
	return []*Table{tab}, nil
}
