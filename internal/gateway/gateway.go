// Package gateway is the HTTP/JSON front door over a sharded memkv
// cluster: the paper's redundancy machinery — hedged reads, quorum
// reads, CAS, prefix watches — behind plain HTTP, with the SLO
// controller steering each request's traffic class.
//
// The surface (statuses are the contract the tests pin):
//
//	GET    /kv/{key}      200 value bytes · 404 not_found · 503 quorum_unreachable
//	PUT    /kv/{key}      200 {"version":v} · 409 cas_conflict (with X-Expect-Version)
//	GET    /scan          200 {"entries":[…],"more":b}
//	GET    /watch         SSE stream of put/delete/expire events
//	GET    /stats         200 aggregate counters + ring topology
//	GET    /slo           200 controller targets, operating points, move counts
//
// Per-request headers:
//
//	X-SLO-Class:      traffic class: labels the call and applies the
//	                  controller's live operating point for that class.
//	X-Read-Quorum:    explicit read quorum (>= 1); implies a quorum read.
//	X-Consistency:    "primary" (default; hedged read) or "quorum".
//	X-Expect-Version: on PUT, compare-and-swap against this version
//	                  (0 = create only).
//
// Malformed headers and parameters are 400 with a JSON body
// {"error":"bad_request","detail":…}; every non-2xx response carries
// {"error":code,"detail":…}.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/memkv"
	"redundancy/internal/slo"
)

// Config wires a Gateway. Client is required; everything else degrades
// gracefully when absent (no controller: classes only label metrics; no
// counters: /stats reports topology only).
type Config struct {
	// Client is the sharded store the gateway fronts.
	Client *memkv.ShardedClient
	// Controller, when set, supplies per-class strategies and read
	// quorums, and backs the /slo endpoint.
	Controller *slo.Controller
	// Counters, when set, backs /stats. Install the same instance as
	// the client's ShardedConfig.Observer (and the controller's
	// Config.Counters) so all three see the same traffic.
	Counters *core.Counters
	// Governor, when set, wraps class strategies so gated load sheds
	// redundancy on the request path too, and adds a governor section
	// to /stats.
	Governor *core.Governor
	// MaxValueBytes caps a PUT body (default 1 MiB).
	MaxValueBytes int64
}

// Gateway is the HTTP handler. Create with New; it is an http.Handler.
type Gateway struct {
	client   *memkv.ShardedClient
	ctl      *slo.Controller
	ctr      *core.Counters
	gov      *core.Governor
	maxValue int64
	mux      *http.ServeMux

	mu          sync.Mutex
	classStrats map[string]core.Strategy
}

// New builds a Gateway over cfg.Client.
func New(cfg Config) *Gateway {
	if cfg.Client == nil {
		panic("gateway: Config.Client is required")
	}
	g := &Gateway{
		client:      cfg.Client,
		ctl:         cfg.Controller,
		ctr:         cfg.Counters,
		gov:         cfg.Governor,
		maxValue:    cfg.MaxValueBytes,
		classStrats: make(map[string]core.Strategy),
	}
	if g.maxValue <= 0 {
		g.maxValue = 1 << 20
	}
	m := http.NewServeMux()
	m.HandleFunc("GET /kv/{key...}", g.handleGet)
	m.HandleFunc("PUT /kv/{key...}", g.handlePut)
	m.HandleFunc("GET /scan", g.handleScan)
	m.HandleFunc("GET /watch", g.handleWatch)
	m.HandleFunc("GET /stats", g.handleStats)
	m.HandleFunc("GET /slo", g.handleSLO)
	g.mux = m
	return g
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// errBody is every non-2xx response's JSON shape.
type errBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, errBody{Error: code, Detail: detail})
}

// writeStoreErr maps a store error onto the documented status codes.
func writeStoreErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, memkv.ErrNotFound):
		writeErr(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, memkv.ErrCASConflict):
		writeErr(w, http.StatusConflict, "cas_conflict", err.Error())
	case errors.Is(err, core.ErrQuorumUnreachable), errors.Is(err, core.ErrNoReplicas):
		writeErr(w, http.StatusServiceUnavailable, "quorum_unreachable", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func validKey(key string) error {
	if key == "" || len(key) > 250 {
		return fmt.Errorf("invalid key length %d", len(key))
	}
	if strings.ContainsAny(key, " \r\n\t") {
		return errors.New("key contains whitespace")
	}
	return nil
}

// classStrategy returns the request strategy for a class: the
// controller's live per-class view, wrapped in the shared governor (if
// any) so an overloaded cluster sheds gateway redundancy exactly like
// every other caller's.
func (g *Gateway) classStrategy(class string) core.Strategy {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.classStrats[class]; ok {
		return s
	}
	var s core.Strategy = g.ctl.Class(class)
	if g.gov != nil {
		s = core.LoadAwareWith(s, g.gov)
	}
	g.classStrats[class] = s
	return s
}

// readPlan resolves the consistency headers into either a hedged
// primary read (quorum 0) or a quorum read (quorum >= 1, 0 meaning the
// client's default), plus the call options for the class.
func (g *Gateway) readPlan(r *http.Request) (quorumRead bool, quorum int, opts []core.CallOption, err error) {
	class := r.Header.Get("X-SLO-Class")
	cons := strings.ToLower(r.Header.Get("X-Consistency"))
	switch cons {
	case "", "primary", "quorum":
	default:
		return false, 0, nil, fmt.Errorf("X-Consistency must be primary or quorum, got %q", cons)
	}
	if qh := r.Header.Get("X-Read-Quorum"); qh != "" {
		q, perr := strconv.Atoi(qh)
		if perr != nil || q < 1 {
			return false, 0, nil, fmt.Errorf("X-Read-Quorum must be a positive integer, got %q", qh)
		}
		if cons == "primary" {
			return false, 0, nil, errors.New("X-Read-Quorum conflicts with X-Consistency: primary")
		}
		return true, q, nil, nil
	}
	if cons == "quorum" {
		q := 0
		if g.ctl != nil && class != "" {
			q = g.ctl.ReadQuorum(class)
		}
		return true, q, nil, nil
	}
	if class != "" {
		opts = append(opts, core.WithLabel(class))
	}
	if g.ctl != nil {
		// Unlabeled traffic rides the controller's default class, so the
		// control loop steers every primary read even when the backing
		// client was built with a fixed ReadStrategy.
		name := class
		if name == "" {
			name = slo.DefaultClass
		}
		opts = append(opts, core.WithStrategyOverride(g.classStrategy(name)))
	}
	return false, 0, opts, nil
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := validKey(key); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	quorumRead, q, opts, err := g.readPlan(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var val []byte
	if quorumRead {
		var ver uint64
		val, ver, err = g.client.GetQuorum(r.Context(), key, q)
		if err == nil {
			w.Header().Set("X-Version", strconv.FormatUint(ver, 10))
		}
	} else {
		val, err = g.client.Get(r.Context(), key, opts...)
	}
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(val)
}

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := validKey(key); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var ttl time.Duration
	if s := r.URL.Query().Get("ttl"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("invalid ttl %q", s))
			return
		}
		ttl = d
	}
	expect, hasExpect := uint64(0), false
	if eh := r.Header.Get("X-Expect-Version"); eh != "" {
		v, err := strconv.ParseUint(eh, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("X-Expect-Version must be an unsigned integer, got %q", eh))
			return
		}
		expect, hasExpect = v, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxValue))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var version uint64
	if hasExpect {
		version, err = g.client.CAS(r.Context(), key, body, ttl, expect)
	} else {
		version, err = g.client.PutVersioned(r.Context(), key, body, ttl)
	}
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"version": version})
}

// scanEntryJSON is one /scan result row; Value is base64 per Go's
// []byte JSON convention.
type scanEntryJSON struct {
	Key     string `json:"key"`
	Value   []byte `json:"value"`
	Version uint64 `json:"version"`
	TTLSecs uint32 `json:"ttl_secs,omitempty"`
}

func (g *Gateway) handleScan(w http.ResponseWriter, r *http.Request) {
	after := r.URL.Query().Get("after")
	limit := 100
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > 4096 {
			writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("limit must be in [1, 4096], got %q", s))
			return
		}
		limit = n
	}
	entries, more, err := g.client.ScanMerged(r.Context(), after, limit)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	out := struct {
		Entries []scanEntryJSON `json:"entries"`
		More    bool            `json:"more"`
	}{Entries: make([]scanEntryJSON, 0, len(entries)), More: more}
	for _, e := range entries {
		out.Entries = append(out.Entries, scanEntryJSON{Key: e.Key, Value: e.Value, Version: e.Version, TTLSecs: e.TTLSecs})
	}
	writeJSON(w, http.StatusOK, out)
}

// watchEventJSON is one SSE data payload.
type watchEventJSON struct {
	Key     string `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Version uint64 `json:"version"`
}

func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	buf := 0
	if s := r.URL.Query().Get("buf"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > 1<<16 {
			writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("buf must be in [1, 65536], got %q", s))
			return
		}
		buf = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "internal", "response writer does not support streaming")
		return
	}
	pw, err := g.client.WatchPrefix(r.Context(), prefix, buf)
	if err != nil {
		writeStoreErr(w, err)
		return
	}
	defer pw.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			// Client went away: Close (deferred) tears down every shard
			// subscription; no goroutine outlives the request.
			return
		case ev, ok := <-pw.Events():
			if !ok {
				return
			}
			data, _ := json.Marshal(watchEventJSON{Key: ev.Key, Value: ev.Value, Version: ev.Version})
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	type latencyJSON struct {
		P50Ms float64 `json:"p50_ms"`
		P90Ms float64 `json:"p90_ms"`
		P99Ms float64 `json:"p99_ms"`
	}
	type labelJSON struct {
		Label       string  `json:"label"`
		Ops         int64   `json:"ops"`
		Failures    int64   `json:"failures"`
		CopiesPerOp float64 `json:"copies_per_op"`
	}
	type govJSON struct {
		Utilization float64 `json:"utilization"`
		Gated       bool    `json:"gated"`
		Flips       int64   `json:"flips"`
	}
	out := struct {
		Shards      []string         `json:"shards"`
		Replication int              `json:"replication"`
		WriteQuorum int              `json:"write_quorum"`
		Ops         int64            `json:"ops"`
		Failures    int64            `json:"failures"`
		CopiesPerOp float64          `json:"copies_per_op"`
		Cancelled   int64            `json:"cancelled_copies"`
		Latency     *latencyJSON     `json:"latency,omitempty"`
		Wins        map[string]int64 `json:"wins,omitempty"`
		Labels      []labelJSON      `json:"labels,omitempty"`
		Governor    *govJSON         `json:"governor,omitempty"`
	}{
		Shards:      g.client.ShardAddrs(),
		Replication: g.client.Replication(),
		WriteQuorum: g.client.WriteQuorum(),
	}
	if g.ctr != nil {
		out.Ops = g.ctr.Ops()
		out.Failures = g.ctr.Failures()
		out.CopiesPerOp = g.ctr.CopiesPerOp()
		out.Cancelled = g.ctr.CancelledCopies()
		out.Wins = g.ctr.Wins()
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		if p50, ok := g.ctr.LatencyQuantile(0.50); ok {
			p90, _ := g.ctr.LatencyQuantile(0.90)
			p99, _ := g.ctr.LatencyQuantile(0.99)
			out.Latency = &latencyJSON{P50Ms: ms(p50), P90Ms: ms(p90), P99Ms: ms(p99)}
		}
		for _, ls := range g.ctr.Labels() {
			out.Labels = append(out.Labels, labelJSON{Label: ls.Label, Ops: ls.Ops, Failures: ls.Failures, CopiesPerOp: ls.CopiesPerOp})
		}
	}
	if g.gov != nil {
		gs := g.gov.Stats()
		out.Governor = &govJSON{Utilization: gs.Utilization, Gated: gs.Gated, Flips: gs.Flips}
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleSLO(w http.ResponseWriter, r *http.Request) {
	type classJSON struct {
		Class             string  `json:"class"`
		TargetP99Ms       float64 `json:"target_p99_ms"`
		MaxExtraLoad      float64 `json:"max_extra_load"`
		Fanout            int     `json:"fanout"`
		Quantile          float64 `json:"quantile"`
		ReadQuorum        int     `json:"read_quorum"`
		ExpectedExtraLoad float64 `json:"expected_extra_load"`
		WindowP99Ms       float64 `json:"window_p99_ms"`
		WindowExtraLoad   float64 `json:"window_extra_load"`
		LastReason        string  `json:"last_reason"`
		Holds             int64   `json:"holds"`
		Tightens          int64   `json:"tightens"`
		Relaxes           int64   `json:"relaxes"`
		Clamps            int64   `json:"clamps"`
		Rejects           int64   `json:"rejects"`
	}
	out := struct {
		Enabled bool        `json:"enabled"`
		Classes []classJSON `json:"classes"`
	}{Enabled: g.ctl != nil, Classes: []classJSON{}}
	if g.ctl != nil {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		for _, cs := range g.ctl.Stats() {
			out.Classes = append(out.Classes, classJSON{
				Class:             cs.Class,
				TargetP99Ms:       ms(cs.Target.P99),
				MaxExtraLoad:      cs.Target.MaxExtraLoad,
				Fanout:            cs.Config.Fanout,
				Quantile:          cs.Config.Quantile,
				ReadQuorum:        cs.Config.ReadQuorum,
				ExpectedExtraLoad: cs.ExpectedExtraLoad,
				WindowP99Ms:       ms(cs.WindowP99),
				WindowExtraLoad:   cs.WindowExtraLoad,
				LastReason:        cs.LastReason,
				Holds:             cs.Holds,
				Tightens:          cs.Tightens,
				Relaxes:           cs.Relaxes,
				Clamps:            cs.Clamps,
				Rejects:           cs.Rejects,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}
