package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/memkv"
	"redundancy/internal/slo"
)

// TestGatewaySLOConvergence is the end-to-end control-loop test: a
// gateway over three live memkv shards, every one of which stalls each
// 20th request by 30ms — the paper's independent tail-latency scenario,
// which replica ranking cannot dodge (no replica is durably better).
// A fixed single-copy strategy misses a 15ms p99 target because ~5% of
// reads eat a stall. The controller must observe the miss through the
// live Counters window, walk its hedge quantile down the ladder until
// hedges fire before the stall, and bring the measured p99 inside the
// target — copying the paper's result that a second copy converts the
// tail into the fast path.
func TestGatewaySLOConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end convergence loop")
	}
	const (
		stallEvery = 20
		stall      = 30 * time.Millisecond
		targetP99  = 15 * time.Millisecond
	)

	var backends []memkv.Backend
	for i := 0; i < 3; i++ {
		srv := memkv.NewServer(nil)
		var n atomic.Int64
		// Set before Listen: connection handlers read Delay unsynchronized.
		srv.Delay = func() time.Duration {
			if n.Add(1)%stallEvery == 0 {
				return stall
			}
			return 0
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		backends = append(backends, memkv.NewMuxClient(addr.String(), 5*time.Second))
	}

	ctr := core.NewCounters()
	ctl := slo.New(slo.Target{P99: targetP99, MaxExtraLoad: 2}, slo.Config{
		Counters:         ctr,
		MaxFanout:        2,
		MinWindowSamples: 64,
	})
	sc := memkv.NewShardedClient(memkv.ShardedConfig{
		Replication: 2,
		Observer:    ctr,
	}, backends...)
	t.Cleanup(func() { sc.Close() })
	ts := httptest.NewServer(New(Config{Client: sc, Controller: ctl, Counters: ctr}))
	t.Cleanup(ts.Close)

	const keys = 24
	for i := 0; i < keys; i++ {
		req, _ := http.NewRequest("PUT", fmt.Sprintf("%s/kv/conv/%02d", ts.URL, i),
			strings.NewReader("payload"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed PUT %d = %d", i, resp.StatusCode)
		}
	}

	// One round of load: 240 gateway reads spread over the keyspace,
	// eight clients deep.
	round := func() {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					resp, err := http.Get(fmt.Sprintf("%s/kv/conv/%02d", ts.URL, (w*30+i)%keys))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}(w)
		}
		wg.Wait()
	}

	defStats := func() slo.ClassStats {
		t.Helper()
		for _, s := range ctl.Stats() {
			if s.Class == slo.DefaultClass {
				return s
			}
		}
		t.Fatal("no default-class stats")
		return slo.ClassStats{}
	}

	// Round 0 establishes the measurement baseline; round 1 produces
	// the first decided window, which must show the single-copy miss
	// the fixed strategy would be stuck with.
	round()
	ctl.Tick()
	round()
	ctl.Tick()
	first := defStats()
	if first.WindowP99 <= targetP99 {
		t.Fatalf("first window p99 %v already under target %v — the stalls are not biting, scenario is vacuous",
			first.WindowP99, targetP99)
	}
	if first.Config.Fanout != 2 {
		t.Fatalf("controller did not tighten after the first missed window: %+v", first)
	}

	good := 0
	for r := 0; r < 30 && good < 2; r++ {
		round()
		ctl.Tick()
		s := defStats()
		t.Logf("round %2d: k=%d q=%.2f rq=%d window p99=%v extra=%.2f reason=%s",
			r, s.Config.Fanout, s.Config.Quantile, s.Config.ReadQuorum,
			s.WindowP99.Round(100*time.Microsecond), s.WindowExtraLoad, s.LastReason)
		if s.WindowP99 > 0 && s.WindowP99 <= targetP99 {
			good++
		} else {
			good = 0
		}
	}
	if good < 2 {
		t.Fatalf("controller never held p99 under %v for two consecutive windows: final %+v",
			targetP99, defStats())
	}
	final := defStats()
	if final.Config.Fanout < 2 || final.Config.Quantile > 0.95 {
		t.Fatalf("converged config %+v did not shift the hedge quantile (want fanout 2, quantile <= 0.95)",
			final.Config)
	}
	if final.Tightens == 0 {
		t.Fatalf("controller claims convergence with zero tighten moves: %+v", final)
	}
}
