package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"redundancy/internal/core"
	"redundancy/internal/memkv"
	"redundancy/internal/slo"
)

// fixture is a gateway over n live mux shards.
type fixture struct {
	ts      *httptest.Server
	sc      *memkv.ShardedClient
	ctl     *slo.Controller
	ctr     *core.Counters
	servers []*memkv.Server
}

func newFixture(t *testing.T, shards int) *fixture {
	t.Helper()
	f := &fixture{ctr: core.NewCounters()}
	var backends []memkv.Backend
	for i := 0; i < shards; i++ {
		srv := memkv.NewServer(nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, srv)
		t.Cleanup(func() { srv.Close() })
		backends = append(backends, memkv.NewMuxClient(addr.String(), 2*time.Second))
	}
	f.ctl = slo.New(slo.Target{P99: 50 * time.Millisecond, MaxExtraLoad: 0.5}, slo.Config{
		Counters:          f.ctr,
		MinWindowSamples:  10,
		DisableValidation: true,
	})
	f.sc = memkv.NewShardedClient(memkv.ShardedConfig{
		Replication: 2,
		Observer:    f.ctr,
	}, backends...)
	t.Cleanup(func() { f.sc.Close() })
	gw := New(Config{Client: f.sc, Controller: f.ctl, Counters: f.ctr})
	f.ts = httptest.NewServer(gw)
	t.Cleanup(f.ts.Close)
	return f
}

// do performs one request and returns status, headers, and body.
func (f *fixture) do(t *testing.T, method, path, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// errOf decodes the documented JSON error body and fails on any other
// shape.
func errOf(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error  string `json:"error"`
		Detail string `json:"detail"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("response body is not the documented error JSON: %q (%v)", body, err)
	}
	return e.Error
}

func versionOf(t *testing.T, body []byte) uint64 {
	t.Helper()
	var v struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &v); err != nil || v.Version == 0 {
		t.Fatalf("response body is not a version JSON: %q (%v)", body, err)
	}
	return v.Version
}

// TestGetPutContract: the happy paths and the documented error statuses
// for GET and PUT, including the CAS protocol via X-Expect-Version.
func TestGetPutContract(t *testing.T) {
	f := newFixture(t, 3)

	st, _, body := f.do(t, "PUT", "/kv/alpha", "one", nil)
	if st != http.StatusOK {
		t.Fatalf("PUT = %d %s", st, body)
	}
	v1 := versionOf(t, body)

	st, hdr, body := f.do(t, "GET", "/kv/alpha", "", nil)
	if st != http.StatusOK || string(body) != "one" {
		t.Fatalf("GET = %d %q", st, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("GET content-type = %q", ct)
	}

	st, _, body = f.do(t, "GET", "/kv/nope", "", nil)
	if st != http.StatusNotFound || errOf(t, body) != "not_found" {
		t.Fatalf("GET missing = %d %s", st, body)
	}

	// Quorum read: value plus its version in X-Version.
	st, hdr, body = f.do(t, "GET", "/kv/alpha", "", map[string]string{"X-Consistency": "quorum"})
	if st != http.StatusOK || string(body) != "one" {
		t.Fatalf("quorum GET = %d %q", st, body)
	}
	if hdr.Get("X-Version") != fmt.Sprint(v1) {
		t.Fatalf("quorum GET X-Version = %q, want %d", hdr.Get("X-Version"), v1)
	}
	st, _, body = f.do(t, "GET", "/kv/nope", "", map[string]string{"X-Read-Quorum": "2"})
	if st != http.StatusNotFound || errOf(t, body) != "not_found" {
		t.Fatalf("quorum GET missing = %d %s", st, body)
	}

	// CAS: create-only on an existing key conflicts; the right expected
	// version applies and returns the new version.
	st, _, body = f.do(t, "PUT", "/kv/alpha", "clobber", map[string]string{"X-Expect-Version": "0"})
	if st != http.StatusConflict || errOf(t, body) != "cas_conflict" {
		t.Fatalf("CAS create over existing = %d %s", st, body)
	}
	st, _, body = f.do(t, "PUT", "/kv/alpha", "two", map[string]string{"X-Expect-Version": fmt.Sprint(v1)})
	if st != http.StatusOK {
		t.Fatalf("CAS apply = %d %s", st, body)
	}
	v2 := versionOf(t, body)
	if v2 <= v1 {
		t.Fatalf("CAS version %d not newer than %d", v2, v1)
	}
	st, _, body = f.do(t, "PUT", "/kv/alpha", "stale", map[string]string{"X-Expect-Version": fmt.Sprint(v1)})
	if st != http.StatusConflict || errOf(t, body) != "cas_conflict" {
		t.Fatalf("stale CAS = %d %s", st, body)
	}
	if st, _, body = f.do(t, "GET", "/kv/alpha", "", nil); string(body) != "two" {
		t.Fatalf("after CAS: GET = %d %q, want two", st, body)
	}

	// TTL is honored end to end.
	if st, _, body = f.do(t, "PUT", "/kv/ephemeral?ttl=1h", "x", nil); st != http.StatusOK {
		t.Fatalf("PUT ttl = %d %s", st, body)
	}
	if st, _, _ = f.do(t, "GET", "/kv/ephemeral", "", nil); st != http.StatusOK {
		t.Fatalf("GET ttl'd key = %d", st)
	}
}

// TestMalformedRequests: every malformed header/parameter the contract
// documents is a 400 with error "bad_request" — never a 500, never a
// silent fallback.
func TestMalformedRequests(t *testing.T) {
	f := newFixture(t, 2)
	f.do(t, "PUT", "/kv/k", "v", nil)

	cases := []struct {
		name, method, path, body string
		hdr                      map[string]string
	}{
		{"quorum-not-int", "GET", "/kv/k", "", map[string]string{"X-Read-Quorum": "banana"}},
		{"quorum-negative", "GET", "/kv/k", "", map[string]string{"X-Read-Quorum": "-1"}},
		{"quorum-zero", "GET", "/kv/k", "", map[string]string{"X-Read-Quorum": "0"}},
		{"consistency-unknown", "GET", "/kv/k", "", map[string]string{"X-Consistency": "eventual"}},
		{"quorum-vs-primary", "GET", "/kv/k", "", map[string]string{"X-Consistency": "primary", "X-Read-Quorum": "2"}},
		{"get-key-whitespace", "GET", "/kv/a%20b", "", nil},
		{"put-key-whitespace", "PUT", "/kv/a%20b", "v", nil},
		{"expect-version-not-int", "PUT", "/kv/k", "v", map[string]string{"X-Expect-Version": "banana"}},
		{"expect-version-negative", "PUT", "/kv/k", "v", map[string]string{"X-Expect-Version": "-3"}},
		{"ttl-not-duration", "PUT", "/kv/k?ttl=banana", "v", nil},
		{"ttl-negative", "PUT", "/kv/k?ttl=-5s", "v", nil},
		{"scan-limit-not-int", "GET", "/scan?limit=banana", "", nil},
		{"scan-limit-zero", "GET", "/scan?limit=0", "", nil},
		{"scan-limit-huge", "GET", "/scan?limit=100000", "", nil},
		{"watch-buf-not-int", "GET", "/watch?buf=banana", "", nil},
		{"watch-buf-zero", "GET", "/watch?buf=0", "", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, _, body := f.do(t, tc.method, tc.path, tc.body, tc.hdr)
			if st != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", st, body)
			}
			if code := errOf(t, body); code != "bad_request" {
				t.Fatalf("error code = %q, want bad_request", code)
			}
		})
	}
}

// TestQuorumUnreachable: with every shard down, quorum reads and writes
// are 503 quorum_unreachable — not a hang, not a 500.
func TestQuorumUnreachable(t *testing.T) {
	f := newFixture(t, 2)
	f.do(t, "PUT", "/kv/k", "v", nil)
	for _, srv := range f.servers {
		srv.Close()
	}
	st, _, body := f.do(t, "GET", "/kv/k", "", map[string]string{"X-Consistency": "quorum"})
	if st != http.StatusServiceUnavailable || errOf(t, body) != "quorum_unreachable" {
		t.Fatalf("quorum GET with shards down = %d %s", st, body)
	}
	st, _, body = f.do(t, "PUT", "/kv/k", "v2", nil)
	if st != http.StatusServiceUnavailable || errOf(t, body) != "quorum_unreachable" {
		t.Fatalf("PUT with shards down = %d %s", st, body)
	}
}

// TestScanContract: /scan merges shards into one sorted, deduplicated,
// paginated keyspace.
func TestScanContract(t *testing.T) {
	f := newFixture(t, 3)
	const n = 10
	for i := 0; i < n; i++ {
		if st, _, body := f.do(t, "PUT", fmt.Sprintf("/kv/scan/%02d", i), fmt.Sprintf("v%d", i), nil); st != http.StatusOK {
			t.Fatalf("PUT %d = %d %s", i, st, body)
		}
	}
	type page struct {
		Entries []struct {
			Key     string `json:"key"`
			Value   []byte `json:"value"`
			Version uint64 `json:"version"`
		} `json:"entries"`
		More bool `json:"more"`
	}
	var keys []string
	after := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("pagination did not terminate")
		}
		st, _, body := f.do(t, "GET", "/scan?limit=4&after="+after, "", nil)
		if st != http.StatusOK {
			t.Fatalf("scan = %d %s", st, body)
		}
		var p page
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatalf("scan body %q: %v", body, err)
		}
		if len(p.Entries) > 4 {
			t.Fatalf("page larger than limit: %d", len(p.Entries))
		}
		for _, e := range p.Entries {
			if e.Version == 0 {
				t.Fatalf("entry %q missing version", e.Key)
			}
			keys = append(keys, e.Key)
			after = e.Key
		}
		if !p.More {
			break
		}
	}
	if len(keys) != n {
		t.Fatalf("scan returned %d keys %v, want %d distinct", len(keys), keys, n)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly sorted: %v", keys)
		}
	}
}

// sseEvent reads one "event:"+"data:" pair from an SSE stream.
func sseEvent(t *testing.T, sc *bufio.Scanner) (string, []byte) {
	t.Helper()
	event, data := "", []byte(nil)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && event != "":
			return event, data
		}
	}
	t.Fatalf("SSE stream ended early: %v", sc.Err())
	return "", nil
}

// TestWatchSSE: the watch endpoint streams put and delete events for
// the prefix as SSE, and tears down every shard subscription when the
// client disconnects — no goroutine leaks (the satellite's
// goroutine-count assertion).
func TestWatchSSE(t *testing.T) {
	f := newFixture(t, 3)

	openWatch := func() (*http.Response, *bufio.Scanner) {
		t.Helper()
		resp, err := http.Get(f.ts.URL + "/watch?prefix=w/")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("watch = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("watch content-type = %q", ct)
		}
		return resp, bufio.NewScanner(resp.Body)
	}

	resp, sc := openWatch()
	f.do(t, "PUT", "/kv/w/one", "hello", nil)
	event, data := sseEvent(t, sc)
	var ev struct {
		Key     string `json:"key"`
		Value   []byte `json:"value"`
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatalf("event data %q: %v", data, err)
	}
	if event != "put" || ev.Key != "w/one" || !bytes.Equal(ev.Value, []byte("hello")) || ev.Version == 0 {
		t.Fatalf("event = %s %+v", event, ev)
	}
	// Keys outside the prefix are not delivered: write one, then a
	// second prefixed key, and assert the next event is the latter.
	f.do(t, "PUT", "/kv/other", "x", nil)
	f.do(t, "PUT", "/kv/w/two", "y", nil)
	if event, data = sseEvent(t, sc); event != "put" {
		t.Fatalf("second event = %s %s", event, data)
	}
	_ = json.Unmarshal(data, &ev)
	if ev.Key != "w/two" {
		t.Fatalf("second event key = %q, want w/two (prefix filter)", ev.Key)
	}
	resp.Body.Close()

	// The first watch cycle above warmed every persistent connection
	// (mux sessions, HTTP keep-alives). Wait for its own teardown to
	// finish, take that as the baseline, then churn more watches: a
	// leaked PrefixWatch holds one goroutine per shard per watch, so
	// the count after churn would sit well above this baseline.
	baseline := stableGoroutines(t)
	for i := 0; i < 5; i++ {
		r, s := openWatch()
		f.do(t, "PUT", fmt.Sprintf("/kv/w/churn%d", i), "z", nil)
		sseEvent(t, s)
		r.Body.Close()
	}
	if after := settleGoroutines(t, baseline+3); after > baseline+3 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines: baseline %d, now %d — watch subscriptions leaked\n%s",
			baseline, after, buf[:runtime.Stack(buf, true)])
	}
}

// stableGoroutines waits for in-flight teardown to finish: it polls
// until the goroutine count stops shrinking for ten straight samples
// and returns the settled count.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	n, stable := runtime.NumGoroutine(), 0
	deadline := time.Now().Add(5 * time.Second)
	for stable < 10 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		runtime.GC()
		if m := runtime.NumGoroutine(); m < n {
			n, stable = m, 0
		} else {
			stable++
		}
	}
	return n
}

// settleGoroutines polls until the goroutine count drops to target or
// stops shrinking, returning the settled count.
func settleGoroutines(t *testing.T, target int) int {
	t.Helper()
	n := runtime.NumGoroutine()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if n = runtime.NumGoroutine(); n <= target {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return n
}

// TestStatsAndSLOEndpoints: the introspection surface reports the
// traffic the gateway served, split by SLO class, and the controller's
// live operating points.
func TestStatsAndSLOEndpoints(t *testing.T) {
	f := newFixture(t, 2)
	f.do(t, "PUT", "/kv/s1", "v", nil)
	for i := 0; i < 5; i++ {
		f.do(t, "GET", "/kv/s1", "", map[string]string{"X-SLO-Class": "api"})
	}
	f.do(t, "GET", "/kv/s1", "", nil)

	st, _, body := f.do(t, "GET", "/stats", "", nil)
	if st != http.StatusOK {
		t.Fatalf("stats = %d %s", st, body)
	}
	var stats struct {
		Shards      []string `json:"shards"`
		Replication int      `json:"replication"`
		Ops         int64    `json:"ops"`
		Labels      []struct {
			Label string `json:"label"`
			Ops   int64  `json:"ops"`
		} `json:"labels"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats body %q: %v", body, err)
	}
	if len(stats.Shards) != 2 || stats.Replication != 2 || stats.Ops < 6 {
		t.Fatalf("stats = %+v", stats)
	}
	found := false
	for _, l := range stats.Labels {
		if l.Label == "api" && l.Ops == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats labels = %+v, want api with 5 ops", stats.Labels)
	}

	st, _, body = f.do(t, "GET", "/slo", "", nil)
	if st != http.StatusOK {
		t.Fatalf("slo = %d %s", st, body)
	}
	var sl struct {
		Enabled bool `json:"enabled"`
		Classes []struct {
			Class       string  `json:"class"`
			TargetP99Ms float64 `json:"target_p99_ms"`
			Fanout      int     `json:"fanout"`
			ReadQuorum  int     `json:"read_quorum"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatalf("slo body %q: %v", body, err)
	}
	if !sl.Enabled {
		t.Fatal("slo endpoint reports disabled with a controller installed")
	}
	byName := map[string]bool{}
	for _, c := range sl.Classes {
		byName[c.Class] = true
		if c.Fanout < 1 || c.TargetP99Ms <= 0 {
			t.Fatalf("class %+v has invalid operating point", c)
		}
	}
	if !byName["default"] || !byName["api"] {
		t.Fatalf("slo classes = %+v, want default and api", sl.Classes)
	}
}

// TestGatewayWithoutController: the gateway degrades gracefully — class
// headers still label metrics, quorum reads fall back to the client's
// default, and /slo reports disabled.
func TestGatewayWithoutController(t *testing.T) {
	ctr := core.NewCounters()
	srv := memkv.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sc := memkv.NewShardedClient(memkv.ShardedConfig{Replication: 1, Observer: ctr},
		memkv.NewMuxClient(addr.String(), 2*time.Second))
	t.Cleanup(func() { sc.Close() })
	ts := httptest.NewServer(New(Config{Client: sc, Counters: ctr}))
	t.Cleanup(ts.Close)
	f := &fixture{ts: ts}

	f.do(t, "PUT", "/kv/k", "v", nil)
	st, _, body := f.do(t, "GET", "/kv/k", "", map[string]string{"X-SLO-Class": "api", "X-Consistency": "quorum"})
	if st != http.StatusOK || string(body) != "v" {
		t.Fatalf("GET = %d %q", st, body)
	}
	if ctr.LabelOps("api") != 0 {
		// Quorum reads bypass the labeled hedging path by design.
		t.Fatalf("quorum read unexpectedly labeled")
	}
	st, _, _ = f.do(t, "GET", "/kv/k", "", map[string]string{"X-SLO-Class": "api"})
	if st != http.StatusOK || ctr.LabelOps("api") != 1 {
		t.Fatalf("labeled primary read: st=%d labelOps=%d, want 1", st, ctr.LabelOps("api"))
	}
	st, _, body = f.do(t, "GET", "/slo", "", nil)
	var sl struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(body, &sl); err != nil || st != http.StatusOK || sl.Enabled {
		t.Fatalf("slo without controller = %d %s (err %v)", st, body, err)
	}
}
