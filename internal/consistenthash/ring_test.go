package consistenthash

import (
	"fmt"
	"testing"
)

func TestEmptyRing(t *testing.T) {
	r := New(8)
	if got := r.Get("key"); got != "" {
		t.Errorf("empty ring Get = %q", got)
	}
	if got := r.GetN("key", 2); got != nil {
		t.Errorf("empty ring GetN = %v", got)
	}
}

func TestGetNDistinctAndOrdered(t *testing.T) {
	r := New(64)
	r.Add("a", "b", "c", "d")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.GetN(key, 4)
		if len(seq) != 4 {
			t.Fatalf("GetN returned %d nodes", len(seq))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("duplicate node %q in %v", n, seq)
			}
			seen[n] = true
		}
		if seq[0] != r.Get(key) {
			t.Fatalf("GetN[0] != Get for %q", key)
		}
	}
}

func TestGetNClampedToRingSize(t *testing.T) {
	r := New(8)
	r.Add("a", "b")
	if got := r.GetN("k", 5); len(got) != 2 {
		t.Errorf("GetN(5) on 2-node ring returned %d nodes", len(got))
	}
}

func TestBalance(t *testing.T) {
	// With 128 vnodes and 4 servers, no server should own more than ~2x
	// its fair share of keys. (This is the regression test for the FNV
	// low-bit clustering bug: without the murmur finalizer one server
	// owned 65% of the keyspace.)
	r := New(128)
	nodes := []string{"s0", "s1", "s2", "s3"}
	r.Add(nodes...)
	counts := map[string]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[r.Get(fmt.Sprintf("key-%d", i))]++
	}
	fair := n / len(nodes)
	for _, node := range nodes {
		if counts[node] < fair/2 || counts[node] > fair*2 {
			t.Errorf("node %s owns %d keys, fair share %d", node, counts[node], fair)
		}
	}
}

func TestStabilityUnderAddition(t *testing.T) {
	// Consistent hashing's defining property: adding a node moves only a
	// ~1/n fraction of keys.
	r1 := New(128)
	r1.Add("a", "b", "c")
	r2 := New(128)
	r2.Add("a", "b", "c", "d")
	moved := 0
	n := 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Get(key) != r2.Get(key) {
			moved++
		}
	}
	// Expect ~25% to move to the new node; fail above 40%.
	if moved > n*4/10 {
		t.Errorf("%d/%d keys moved on node addition, want ~25%%", moved, n)
	}
	// All moved keys must have moved TO the new node.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Get(key) != r2.Get(key) && r2.Get(key) != "d" {
			t.Fatalf("key %q moved to %q, not the new node", key, r2.Get(key))
		}
	}
}

func TestDeterministicPlacement(t *testing.T) {
	build := func() *Ring {
		r := New(32)
		r.Add("x", "y", "z")
		return r
	}
	a, b := build(), build()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Get(key) != b.Get(key) {
			t.Fatal("identical rings disagree on placement")
		}
	}
}

func TestNextAfter(t *testing.T) {
	r := New(64)
	r.Add("a", "b", "c")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.GetN(key, 3)
		if got := r.NextAfter(key, seq[0]); got != seq[1] {
			t.Errorf("NextAfter(%q, primary) = %q, want %q", key, got, seq[1])
		}
		// Walking past the last node wraps to the first.
		if got := r.NextAfter(key, seq[2]); got != seq[0] {
			t.Errorf("NextAfter(%q, last) = %q, want wrap to %q", key, got, seq[0])
		}
	}
	if got := r.NextAfter("key", "nonexistent"); got != "" {
		t.Errorf("NextAfter with unknown node = %q, want empty", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	r := New(16)
	r.Add("a", "b")
	before := r.Get("some-key")
	r.Add("a") // re-adding must not change placement
	if r.Get("some-key") != before {
		t.Error("re-adding a node changed placement")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d after duplicate add", r.Len())
	}
}

func TestNodesOrder(t *testing.T) {
	r := New(8)
	r.Add("b", "a", "c")
	nodes := r.Nodes()
	if len(nodes) != 3 || nodes[0] != "b" || nodes[1] != "a" || nodes[2] != "c" {
		t.Errorf("Nodes() = %v, want insertion order", nodes)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
