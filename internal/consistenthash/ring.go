// Package consistenthash implements a consistent-hashing ring with virtual
// nodes, used by the cluster experiment to place files on servers the same
// way the paper's storage service does ("files are partitioned across
// servers via consistent hashing, and two copies are stored of every file:
// if the primary is stored on server n, the (replicated) secondary goes to
// server n+1").
package consistenthash

import (
	"fmt"
	"sort"
)

// Ring maps keys to an ordered sequence of distinct nodes.
type Ring struct {
	replicas int // virtual nodes per real node
	hashes   []uint64
	owner    map[uint64]string
	nodes    []string
}

// New creates a ring with the given number of virtual nodes per real node.
// More virtual nodes smooth the key distribution at the cost of memory;
// 128 is a reasonable default.
func New(virtualNodes int) *Ring {
	if virtualNodes < 1 {
		panic("consistenthash: virtualNodes must be >= 1")
	}
	return &Ring{replicas: virtualNodes, owner: make(map[uint64]string)}
}

// KeyHash returns the position of a key (or virtual-node label) on the
// ring: FNV-1a over the bytes, finalized by fmix64. It is exported so
// internal/ring — the production sharded router — places keys exactly
// where this package's simulator does, and it is written as an inline
// loop (rather than hash/fnv) so the per-call routing hot path allocates
// nothing.
func KeyHash(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64-bit offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211 // FNV-1a 64-bit prime
	}
	return fmix64(h)
}

// VNodeHash returns the ring position of node's v-th virtual point,
// shared by this package and internal/ring so both place identically.
func VNodeHash(node string, v int) uint64 {
	return KeyHash(fmt.Sprintf("%s#%d", node, v))
}

func hashKey(s string) uint64 { return KeyHash(s) }

// fmix64 is the MurmurHash3 64-bit finalizer. FNV-1a alone leaves nearly
// identical hashes for strings that differ only in a trailing counter
// (vnode suffixes), which would collapse each node's virtual points into
// one arc of the ring; the finalizer restores full avalanche.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts nodes into the ring. Adding a node that already exists is a
// no-op for placement (its virtual points are re-registered identically).
func (r *Ring) Add(nodes ...string) {
	for _, n := range nodes {
		seen := false
		for _, existing := range r.nodes {
			if existing == n {
				seen = true
				break
			}
		}
		if !seen {
			r.nodes = append(r.nodes, n)
		}
		for v := 0; v < r.replicas; v++ {
			h := VNodeHash(n, v)
			if _, ok := r.owner[h]; !ok {
				r.hashes = append(r.hashes, h)
			}
			r.owner[h] = n
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Nodes returns the distinct real nodes in insertion order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of distinct real nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Get returns the node owning key, or "" if the ring is empty.
func (r *Ring) Get(key string) string {
	seq := r.GetN(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// GetN returns the first n distinct nodes encountered walking the ring
// clockwise from key's position: element 0 is the primary, element 1 the
// secondary, and so on. If the ring has fewer than n nodes, all nodes are
// returned in walk order.
func (r *Ring) GetN(key string, n int) []string {
	if len(r.hashes) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.hashes); i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// NextAfter returns the node that follows the given node when walking the
// distinct-node order from key (the paper's "primary on n, secondary on
// n+1" placement): it is GetN(key, i+2)[i+1] where node is at position i.
// It returns "" if node does not own key at any position or the ring has
// fewer than 2 nodes.
func (r *Ring) NextAfter(key, node string) string {
	seq := r.GetN(key, len(r.nodes))
	for i, nd := range seq {
		if nd == node {
			if i+1 < len(seq) {
				return seq[i+1]
			}
			return seq[0]
		}
	}
	return ""
}
