package ring_test

import (
	"fmt"
	"sort"
	"testing"

	"redundancy/internal/ring"
)

// A Placement snapshot must agree exactly with the live ring it was
// taken from, and must keep agreeing after the ring changes — that
// immutability is what makes before/after remap diffs possible.
func TestPlacementSnapshotIsImmutable(t *testing.T) {
	r := ring.New[string, string](nil, ring.WithReplication(2))
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n, named(n))
	}
	p := r.Placement()
	if p.Len() != 3 || p.Replication() != 2 {
		t.Fatalf("Len=%d Replication=%d", p.Len(), p.Replication())
	}
	names := append([]string(nil), p.Names()...)
	sort.Strings(names)
	if fmt.Sprint(names) != "[a b c]" {
		t.Fatalf("Names = %v", names)
	}

	before := make(map[string][]string)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("pk-%d", i)
		owners := p.Owners(key)
		if got := r.Owners(key); fmt.Sprint(owners) != fmt.Sprint(got) {
			t.Fatalf("Placement.Owners(%q) = %v, ring says %v", key, owners, got)
		}
		before[key] = owners
	}

	// Mutating the ring must not disturb the snapshot.
	r.Add("d", named("d"))
	for key, owners := range before {
		if got := p.Owners(key); fmt.Sprint(got) != fmt.Sprint(owners) {
			t.Fatalf("snapshot Owners(%q) changed from %v to %v after Add", key, owners, got)
		}
	}
}

func TestPlacementOwnersInto(t *testing.T) {
	r := ring.New[string, string](nil, ring.WithReplication(3))
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Add(n, named(n))
	}
	p := r.Placement()
	dst := make([]string, 3)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("oi-%d", i)
		n := p.OwnersInto(key, dst)
		if fmt.Sprint(dst[:n]) != fmt.Sprint(p.Owners(key)) {
			t.Fatalf("OwnersInto(%q) = %v, Owners = %v", key, dst[:n], p.Owners(key))
		}
	}
	// A short destination truncates rather than overflows.
	short := make([]string, 1)
	if n := p.OwnersInto("oi-0", short); n != 1 || short[0] != p.Owners("oi-0")[0] {
		t.Fatalf("OwnersInto with len-1 dst = %d, %v", n, short)
	}
}

// SameOwners is the remap diff: identical placements agree on every
// key; after adding a member, exactly the keys whose owner set moved
// must report false.
func TestPlacementSameOwnersDiff(t *testing.T) {
	r := ring.New[string, string](nil, ring.WithReplication(2))
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Add(n, named(n))
	}
	prev := r.Placement()
	if !prev.SameOwners(prev, "any-key") {
		t.Fatal("placement disagrees with itself")
	}
	r.Add("e", named("e"))
	cur := r.Placement()

	moved, stayed := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("diff-%d", i)
		same := prev.SameOwners(cur, key)
		want := fmt.Sprint(prev.Owners(key)) == fmt.Sprint(cur.Owners(key))
		if same != want {
			t.Fatalf("SameOwners(%q) = %v; prev %v cur %v", key, same, prev.Owners(key), cur.Owners(key))
		}
		if same {
			stayed++
		} else {
			moved++
		}
	}
	// One member joining a 4-member ring must remap some keys and leave
	// most alone.
	if moved == 0 || stayed == 0 {
		t.Fatalf("degenerate diff: moved=%d stayed=%d", moved, stayed)
	}
	if moved > stayed {
		t.Fatalf("adding 1 of 5 members moved %d/%d keys: remap not minimal", moved, moved+stayed)
	}
}
