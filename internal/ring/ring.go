// Package ring implements sharded keyed routing over a consistent-hash
// ring: the production form of the placement the paper's disk-backed
// storage service uses (§2.2, "files are partitioned across servers via
// consistent hashing, and two copies are stored of every file: if the
// primary is stored on server n, the secondary goes to server n+1").
//
// Where core.KeyedGroup treats every replica as holding the full
// dataset, a Ring partitions the keyspace across many named backends:
// each key maps to a primary plus Replication-1 distinct successors on
// the ring, and every call runs the redundancy engine over exactly that
// placement subset — primary launched first, successors as hedges,
// quorum peers, or full-replication races, per the installed strategy.
// The ring deliberately owns only the routing table; everything else is
// the existing core machinery, reached through core.KeyedGroup.DoPicked:
//
//   - strategies (Fixed, AdaptiveHedge, FullReplicate, LoadAware) decide
//     fan-out and launch schedule within the placement subset,
//   - per-call options (WithQuorum, WithLabel, WithStrategyOverride,
//     WithFanoutCap, WithCollectOutcomes) compose per read or write,
//   - losing copies are cancelled and counted, budgets and governors
//     meter the added load, and
//   - per-member latency digests feed adaptive hedging and Stats, keyed
//     per ring member.
//
// Topology changes are atomic: Add and Remove publish a new immutable
// route table through the same copy-on-write pattern as the group's
// membership snapshot, so a concurrent call sees either the old placement
// or the new one, never a mix. Keys owned by a removed member remap to
// their successors; calls already in flight finish against the members
// they were routed to (handles outlive removal, exactly like the group's
// snapshot grace). Placement uses the same KeyHash/VNodeHash as
// internal/consistenthash, so the live ring and the cluster simulator
// place identically.
//
// All methods are safe for concurrent use. The per-call hot path —
// hash, binary search, successor walk, DoPicked — takes no locks and
// stays within the same allocation budget as an unrouted Group.Do.
package ring

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"redundancy/internal/consistenthash"
	"redundancy/internal/core"
)

// Defaults for New.
const (
	// DefaultReplication is the number of distinct members each key is
	// placed on: the paper's primary + next-server secondary.
	DefaultReplication = 2
	// DefaultVirtualNodes is the number of ring points per member; more
	// points smooth the per-member key share at the cost of memory.
	DefaultVirtualNodes = 128
)

// Ring partitions a keyspace across named backends and routes every
// call through the core redundancy engine over the key's placement
// subset. Build one with New (the call argument is the routing key) or
// NewKeyed (the routing key is derived from the argument); see the
// package comment for semantics.
type Ring[K, T any] struct {
	keyOf       func(K) string
	replication int
	vnodes      int
	group       *core.KeyedGroup[K, T]
	table       atomic.Pointer[table[K, T]]
	mu          sync.Mutex // serializes topology writers; readers never take it
}

// table is one immutable routing snapshot: the sorted virtual points and
// the distinct members (registration order) they map into.
type table[K, T any] struct {
	points  []point
	members []ringMember[K, T]
}

type point struct {
	hash  uint64
	owner int32 // index into table.members
}

type ringMember[K, T any] struct {
	name   string
	handle core.Handle[K, T]
}

func (t *table[K, T]) index(name string) int {
	for i := range t.members {
		if t.members[i].name == name {
			return i
		}
	}
	return -1
}

// config collects Option state.
type config struct {
	replication int
	vnodes      int
	budget      *core.Budget
	observer    core.Observer
}

// Option configures a Ring at construction.
type Option func(*config)

// WithReplication sets how many distinct members each key is placed on
// (primary + r-1 successors; default DefaultReplication). Values below 1
// mean 1. The installed strategy's fan-out is clamped to the placement,
// so r bounds the copies any one call can launch.
func WithReplication(r int) Option {
	return func(c *config) { c.replication = r }
}

// WithVirtualNodes sets the virtual points per member (default
// DefaultVirtualNodes; values below 1 mean 1).
func WithVirtualNodes(v int) Option {
	return func(c *config) { c.vnodes = v }
}

// WithBudget attaches a hedging budget to the ring's call engine:
// copies beyond a call's quorum are charged against it, degrading to
// the mandatory copies when exhausted.
func WithBudget(b *core.Budget) Option {
	return func(c *config) { c.budget = b }
}

// WithObserver attaches an Observer for per-operation metrics.
func WithObserver(o core.Observer) Option {
	return func(c *config) { c.observer = o }
}

// New creates a Ring whose call argument is the routing key itself
// (string-typed keys: a KV key, a filename, a user ID). strategy decides
// the redundancy within each key's placement — Fixed{Copies: 2} is the
// paper's primary+secondary race; nil means single-copy routing.
func New[K ~string, T any](strategy core.Strategy, opts ...Option) *Ring[K, T] {
	return NewKeyed[K, T](strategy, func(k K) string { return string(k) }, opts...)
}

// NewKeyed creates a Ring routing by keyOf(arg), for call arguments that
// carry more than the key — e.g. a write request routing by its key
// while the argument carries the value too. keyOf must be pure and
// cheap; it runs on every call.
func NewKeyed[K, T any](strategy core.Strategy, keyOf func(K) string, opts ...Option) *Ring[K, T] {
	if keyOf == nil {
		panic("ring: NewKeyed requires a keyOf function")
	}
	cfg := config{replication: DefaultReplication, vnodes: DefaultVirtualNodes}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.replication < 1 {
		cfg.replication = 1
	}
	if cfg.vnodes < 1 {
		cfg.vnodes = 1
	}
	var gopts []core.KeyedGroupOption[K, T]
	if cfg.budget != nil {
		gopts = append(gopts, core.WithKeyedBudget[K, T](cfg.budget))
	}
	if cfg.observer != nil {
		gopts = append(gopts, core.WithKeyedObserver[K, T](cfg.observer))
	}
	r := &Ring[K, T]{
		keyOf:       keyOf,
		replication: cfg.replication,
		vnodes:      cfg.vnodes,
		group:       core.NewStrategyKeyedGroup(strategy, gopts...),
	}
	r.table.Store(&table[K, T]{})
	return r
}

// Add registers a backend under name and rebuilds the route table:
// every key whose placement now includes name routes to it from the next
// call on. Adding a name that already exists is a no-op (members are
// unique by name). Reports whether the member was added.
func (r *Ring[K, T]) Add(name string, fn core.ArgReplica[K, T]) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.table.Load()
	if t.index(name) >= 0 {
		return false
	}
	h := r.group.Add(name, fn)
	members := make([]ringMember[K, T], len(t.members)+1)
	copy(members, t.members)
	members[len(t.members)] = ringMember[K, T]{name: name, handle: h}
	r.table.Store(r.build(members))
	return true
}

// Remove drops the backend registered under name and reports whether it
// was present. Its keys remap to their successors atomically with the
// table swap; calls already routed keep their handles and may still
// complete against it.
func (r *Ring[K, T]) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.table.Load()
	i := t.index(name)
	if i < 0 {
		return false
	}
	members := make([]ringMember[K, T], 0, len(t.members)-1)
	members = append(members, t.members[:i]...)
	members = append(members, t.members[i+1:]...)
	r.table.Store(r.build(members))
	r.group.Remove(name)
	return true
}

// build compiles a member list into an immutable route table.
func (r *Ring[K, T]) build(members []ringMember[K, T]) *table[K, T] {
	points := make([]point, 0, len(members)*r.vnodes)
	for i := range members {
		for v := 0; v < r.vnodes; v++ {
			points = append(points, point{hash: consistenthash.VNodeHash(members[i].name, v), owner: int32(i)})
		}
	}
	// Ties (vanishingly rare 64-bit collisions) resolve by registration
	// order, deterministically.
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].owner < points[b].owner
	})
	return &table[K, T]{points: points, members: members}
}

// ownersInto fills dst with the handles of the first len(dst) distinct
// members walking clockwise from hash: dst[0] is the primary, dst[1]
// the secondary, and so on. len(dst) must not exceed the member count.
func (t *table[K, T]) ownersInto(hash uint64, dst []core.Handle[K, T]) {
	pts := t.points
	start := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= hash })
	n := 0
walk:
	for j := 0; j < len(pts) && n < len(dst); j++ {
		h := t.members[pts[(start+j)%len(pts)].owner].handle
		for i := 0; i < n; i++ {
			if dst[i] == h {
				continue walk
			}
		}
		dst[n] = h
		n++
	}
}

// Do performs one redundant operation for arg's key: the key's primary
// and successors are resolved from the current route table and the call
// runs through the core engine over that subset (see
// core.KeyedGroup.DoPicked). Per-call options compose exactly as on a
// Group — WithQuorum for R-of-N within the placement, WithLabel,
// WithStrategyOverride, WithFanoutCap, WithCollectOutcomes. An empty
// ring fails with core.ErrNoReplicas.
func (r *Ring[K, T]) Do(ctx context.Context, arg K, opts ...core.CallOption) (core.Result[T], error) {
	t := r.table.Load()
	nm := len(t.members)
	if nm == 0 {
		var zero core.Result[T]
		return zero, core.ErrNoReplicas
	}
	rr := r.replication
	if rr > nm {
		// A ring smaller than the replication factor clamps placement to
		// the members that exist: a single-member ring is its own
		// secondary, so fan-out degrades to 1.
		rr = nm
	}
	// The placement scratch stays on the stack for typical replication
	// factors; DoPicked copies it into the call frame before launching.
	var pbuf [4]core.Handle[K, T]
	var picked []core.Handle[K, T]
	if rr <= len(pbuf) {
		picked = pbuf[:rr]
	} else {
		picked = make([]core.Handle[K, T], rr)
	}
	t.ownersInto(consistenthash.KeyHash(r.keyOf(arg)), picked)
	return r.group.DoPicked(ctx, arg, picked, opts...)
}

// DoValue is the fast lane of Do for the no-options, first-success-wins
// case where only the value matters: placement resolution plus
// core.KeyedGroup's pooled-frame engine, with no option materialization
// on the path. See core.KeyedGroup.DoValue.
func (r *Ring[K, T]) DoValue(ctx context.Context, arg K) (T, error) {
	t := r.table.Load()
	nm := len(t.members)
	if nm == 0 {
		var zero T
		return zero, core.ErrNoReplicas
	}
	rr := r.replication
	if rr > nm {
		rr = nm
	}
	var pbuf [4]core.Handle[K, T]
	var picked []core.Handle[K, T]
	if rr <= len(pbuf) {
		picked = pbuf[:rr]
	} else {
		picked = make([]core.Handle[K, T], rr)
	}
	t.ownersInto(consistenthash.KeyHash(r.keyOf(arg)), picked)
	res, err := r.group.DoPicked(ctx, arg, picked)
	return res.Value, err
}

// ringBucket is one distinct placement's slice of a batch: the keys
// (and their positions in the caller's slice) that share an identical
// ordered owner set.
type ringBucket[K, T any] struct {
	picked []core.Handle[K, T]
	args   []K
	idx    []int
}

func handlesEqual[K, T any](a, b []core.Handle[K, T]) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DoBatch performs one redundant operation per argument, grouping the
// arguments by placement first: all keys that map to the same ordered
// owner set run as one core.KeyedGroup.DoBatchPicked — one snapshot,
// one schedule, one batch of hedge deadlines on the shared timer wheel —
// and a batching transport underneath (memkv's MuxClient) sees each
// group as one coalesced round to that shard set. Distinct placements
// run concurrently. Results come back in argument order; per-key
// failures are in each BatchResult, and only batch-level errors (empty
// ring, unreachable quorum, unsupported option) are returned as err.
// See core.KeyedGroup.DoBatch for how batch semantics differ from
// per-key Do calls.
func (r *Ring[K, T]) DoBatch(ctx context.Context, args []K, opts ...core.CallOption) ([]core.BatchResult[T], error) {
	if len(args) == 0 {
		return nil, nil
	}
	t := r.table.Load()
	nm := len(t.members)
	if nm == 0 {
		return nil, core.ErrNoReplicas
	}
	rr := r.replication
	if rr > nm {
		rr = nm
	}
	// Group keys by their ordered placement. The map is keyed by the
	// primary handle; the rare primaries that fan out to different
	// successor sets (ring seams) are separated by the full compare.
	byPrimary := make(map[core.Handle[K, T]][]*ringBucket[K, T])
	var order []*ringBucket[K, T]
	scratch := make([]core.Handle[K, T], rr)
	for i, a := range args {
		t.ownersInto(consistenthash.KeyHash(r.keyOf(a)), scratch)
		var b *ringBucket[K, T]
		for _, cand := range byPrimary[scratch[0]] {
			if handlesEqual(cand.picked, scratch) {
				b = cand
				break
			}
		}
		if b == nil {
			b = &ringBucket[K, T]{picked: append([]core.Handle[K, T](nil), scratch...)}
			byPrimary[scratch[0]] = append(byPrimary[scratch[0]], b)
			order = append(order, b)
		}
		b.args = append(b.args, a)
		b.idx = append(b.idx, i)
	}
	out := make([]core.BatchResult[T], len(args))
	if len(order) == 1 {
		// Single placement (the common case for small batches on small
		// rings): no fan-out goroutines, and idx is the identity.
		res, err := r.group.DoBatchPicked(ctx, order[0].args, order[0].picked, opts...)
		if err != nil {
			return nil, err
		}
		copy(out, res)
		return out, nil
	}
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for bi, b := range order {
		wg.Add(1)
		go func(bi int, b *ringBucket[K, T]) {
			defer wg.Done()
			res, err := r.group.DoBatchPicked(ctx, b.args, b.picked, opts...)
			if err != nil {
				errs[bi] = err
				return
			}
			for j := range res {
				out[b.idx[j]] = res[j]
			}
		}(bi, b)
	}
	wg.Wait()
	// Batch-level errors are placement-independent (same options, same
	// placement size): if one bucket hit one, they all did; report the
	// first.
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// Owners returns the names of the members key is placed on, primary
// first — the routing decision Do would make, for introspection and
// tests. It returns at most Replication names (fewer on a small ring),
// and nil on an empty ring.
func (r *Ring[K, T]) Owners(key string) []string {
	t := r.table.Load()
	nm := len(t.members)
	if nm == 0 {
		return nil
	}
	rr := r.replication
	if rr > nm {
		rr = nm
	}
	picked := make([]core.Handle[K, T], rr)
	t.ownersInto(consistenthash.KeyHash(key), picked)
	names := make([]string, rr)
	for i, h := range picked {
		names[i] = h.Name()
	}
	return names
}

// Replication returns the configured placement copies per key.
func (r *Ring[K, T]) Replication() int { return r.replication }

// Len returns the number of members.
func (r *Ring[K, T]) Len() int { return len(r.table.Load().members) }

// Names returns the member names in registration order.
func (r *Ring[K, T]) Names() []string {
	members := r.table.Load().members
	out := make([]string, len(members))
	for i := range members {
		out[i] = members[i].name
	}
	return out
}

// SetStrategy replaces the ring's replication strategy atomically (see
// core.KeyedGroup.SetStrategy). The strategy applies within each key's
// placement subset.
func (r *Ring[K, T]) SetStrategy(s core.Strategy) { r.group.SetStrategy(s) }

// Strategy returns the current replication strategy.
func (r *Ring[K, T]) Strategy() core.Strategy { return r.group.Strategy() }

// MemberStats describes one ring member in a Stats snapshot: the
// member's share of the keyspace plus the same per-replica latency
// statistics a Group reports.
type MemberStats struct {
	core.ReplicaStats
	// KeyShare is the fraction of the hash space this member owns as
	// primary — its share of single-copy load. Shares sum to 1.
	KeyShare float64
}

// Stats is a point-in-time view of a Ring: strategy, replication, and
// per-member key share and load.
type Stats struct {
	// Strategy describes the active strategy (its String()).
	Strategy string
	// Replication is the placement copies per key.
	Replication int
	// Members holds per-member statistics in registration order.
	Members []MemberStats
}

// Stats returns a consistent snapshot of the ring's strategy and
// per-member key share and latency statistics. Key shares come from one
// route-table snapshot and latency digests from the group's snapshot;
// each is internally consistent.
func (r *Ring[K, T]) Stats() Stats {
	t := r.table.Load()
	gs := r.group.Stats()
	byName := make(map[string]core.ReplicaStats, len(gs.Replicas))
	for _, rs := range gs.Replicas {
		byName[rs.Name] = rs
	}
	s := Stats{
		Strategy:    gs.Strategy,
		Replication: r.replication,
		Members:     make([]MemberStats, len(t.members)),
	}
	shares := t.keyShares()
	for i := range t.members {
		s.Members[i] = MemberStats{
			ReplicaStats: byName[t.members[i].name],
			KeyShare:     shares[i],
		}
	}
	return s
}

// Placement is an immutable, non-generic snapshot of a ring's routing
// decision: it answers "which members own key k" under one frozen
// topology, detached from the ring's element types and from later
// Add/Remove calls. An anti-entropy migrator captures one Placement
// before a topology change and one after, then enumerates keys and
// re-homes exactly those whose owner set differs — the remap diff.
type Placement struct {
	points      []point // aliases the immutable route table; never mutated
	names       []string
	replication int
}

// Placement captures the ring's current routing as an immutable
// snapshot. The snapshot shares the route table's point slice (tables
// are copy-on-write, so it stays valid forever) and is safe for
// concurrent use.
func (r *Ring[K, T]) Placement() Placement {
	t := r.table.Load()
	names := make([]string, len(t.members))
	for i := range t.members {
		names[i] = t.members[i].name
	}
	return Placement{points: t.points, names: names, replication: r.replication}
}

// Len returns the snapshot's member count.
func (p Placement) Len() int { return len(p.names) }

// Names returns the snapshot's member names in registration order.
// The caller must not mutate the returned slice.
func (p Placement) Names() []string { return p.names }

// Replication returns the placement copies per key under this snapshot.
func (p Placement) Replication() int { return p.replication }

// OwnersInto fills dst with the names of key's owners, primary first,
// and returns how many it wrote: min(len(dst), replication, members).
// This is the allocation-free core of Owners for tight diff loops.
func (p Placement) OwnersInto(key string, dst []string) int {
	nm := len(p.names)
	if nm == 0 || len(dst) == 0 {
		return 0
	}
	want := p.replication
	if want > nm {
		want = nm
	}
	if want > len(dst) {
		want = len(dst)
	}
	pts := p.points
	hash := consistenthash.KeyHash(key)
	start := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= hash })
	n := 0
walk:
	for j := 0; j < len(pts) && n < want; j++ {
		name := p.names[pts[(start+j)%len(pts)].owner]
		for i := 0; i < n; i++ {
			if dst[i] == name {
				continue walk
			}
		}
		dst[n] = name
		n++
	}
	return n
}

// Owners returns the names of key's owners under this snapshot, primary
// first (at most Replication; nil on an empty snapshot).
func (p Placement) Owners(key string) []string {
	nm := len(p.names)
	if nm == 0 {
		return nil
	}
	rr := p.replication
	if rr > nm {
		rr = nm
	}
	dst := make([]string, rr)
	return dst[:p.OwnersInto(key, dst)]
}

// SameOwners reports whether key has an identical ordered owner set
// under p and q — the "no migration needed" test of a remap diff. It
// allocates nothing for replication factors up to 4.
func (p Placement) SameOwners(q Placement, key string) bool {
	var pb, qb [4]string
	var ps, qs []string
	if p.replication <= len(pb) {
		ps = pb[:min(p.replication, len(p.names))]
	} else {
		ps = make([]string, min(p.replication, len(p.names)))
	}
	if q.replication <= len(qb) {
		qs = qb[:min(q.replication, len(q.names))]
	} else {
		qs = make([]string, min(q.replication, len(q.names)))
	}
	pn := p.OwnersInto(key, ps)
	qn := q.OwnersInto(key, qs)
	if pn != qn {
		return false
	}
	for i := 0; i < pn; i++ {
		if ps[i] != qs[i] {
			return false
		}
	}
	return true
}

// keyShares returns each member's primary-ownership fraction of the
// hash space: point i owns the arc (hash[i-1], hash[i]], wrapping.
func (t *table[K, T]) keyShares() []float64 {
	shares := make([]float64, len(t.members))
	pts := t.points
	if len(pts) == 0 {
		return shares
	}
	const span = float64(1<<63) * 2 // 2^64 as float64
	prev := pts[len(pts)-1].hash
	for _, p := range pts {
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		shares[p.owner] += float64(arc) / span
		prev = p.hash
	}
	if len(pts) == 1 {
		// A single point owns the whole ring (the arc above degenerates
		// to zero when prev == hash).
		shares[pts[0].owner] = 1
	}
	return shares
}
