package ring_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"redundancy/internal/consistenthash"
	"redundancy/internal/core"
	"redundancy/internal/core/coretest"
	"redundancy/internal/ring"
)

func instant(v int) core.ArgReplica[string, int] {
	return func(ctx context.Context, _ string) (int, error) { return v, nil }
}

func named(name string) core.ArgReplica[string, string] {
	return func(ctx context.Context, _ string) (string, error) { return name, nil }
}

// keyWithPrimary returns a key whose primary is the given member.
func keyWithPrimary[K, T any](t *testing.T, r *ring.Ring[K, T], member string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if owners := r.Owners(key); len(owners) > 0 && owners[0] == member {
			return key
		}
	}
	t.Fatal("no key with primary " + member)
	return ""
}

// The live ring and the cluster simulator's consistenthash must place
// identically: the production router is the promotion of the simulator's
// placement, not a reimplementation with different arithmetic.
func TestPlacementMatchesSimulator(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	ch := consistenthash.New(64)
	ch.Add(names...)
	r := ring.New[string, int](nil, ring.WithVirtualNodes(64), ring.WithReplication(3))
	for i, n := range names {
		r.Add(n, instant(i))
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("file-%d", i)
		want := ch.GetN(key, 3)
		got := r.Owners(key)
		if len(got) != len(want) {
			t.Fatalf("Owners(%q) = %v, simulator places %v", key, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Owners(%q) = %v, simulator places %v", key, got, want)
			}
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := ring.New[string, int](nil)
	if _, err := r.Do(context.Background(), "k"); !errors.Is(err, core.ErrNoReplicas) {
		t.Errorf("Do on empty ring = %v, want ErrNoReplicas", err)
	}
	if owners := r.Owners("k"); owners != nil {
		t.Errorf("Owners on empty ring = %v, want nil", owners)
	}
}

// A single-member ring is its own secondary: placement clamps to the one
// member, a fan-out-2 strategy launches one copy, and a quorum of 2 is
// typed unreachable.
func TestSingleMemberClampsToOne(t *testing.T) {
	r := ring.New[string, int](core.Fixed{Copies: 2})
	r.Add("only", instant(7))
	res, err := r.Do(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 7 || res.Launched != 1 {
		t.Errorf("single-member Do = value %d launched %d, want 7, 1", res.Value, res.Launched)
	}
	if _, err := r.Do(context.Background(), "k", core.WithQuorum(2)); !errors.Is(err, core.ErrQuorumUnreachable) {
		t.Errorf("quorum 2 on single-member ring = %v, want ErrQuorumUnreachable", err)
	}
}

// Replication bounds the fan-out: an "all replicas" strategy races the
// key's placement subset, not the whole ring.
func TestReplicationBoundsFanout(t *testing.T) {
	r := ring.New[string, int](core.FullReplicate{}, ring.WithReplication(2))
	for i := 0; i < 6; i++ {
		r.Add(fmt.Sprintf("s%d", i), instant(i))
	}
	res, err := r.Do(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("FullReplicate over 6 members launched %d, want replication 2", res.Launched)
	}
}

// The paper's redundant read: primary + secondary race, first response
// wins. With the primary stalled, the secondary's answer comes back.
func TestSecondaryWinsOverSlowPrimary(t *testing.T) {
	stall := coretest.NewGate()
	defer stall.Release()
	r := ring.New[string, string](core.Fixed{Copies: 2})
	r.Add("slow", func(ctx context.Context, _ string) (string, error) {
		return coretest.Blocked("slow", stall)(ctx)
	})
	r.Add("fast", named("fast"))

	key := keyWithPrimary(t, r, "slow")
	res, err := r.Do(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast" || res.Index != 1 {
		t.Errorf("Do with stalled primary = %q (index %d), want secondary \"fast\" (index 1)", res.Value, res.Index)
	}
}

// Removing a member remaps its keys to their successors — the remaining
// walk order with the member deleted — and adds route back.
func TestRemoveRemapsToSuccessors(t *testing.T) {
	r := ring.New[string, int](nil, ring.WithReplication(3))
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("s%d", i), instant(i))
	}
	keys := make([]string, 50)
	before := make([][]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		before[i] = r.Owners(keys[i])
	}
	if !r.Remove("s1") {
		t.Fatal("Remove(s1) = false")
	}
	for i, key := range keys {
		want := make([]string, 0, 3)
		for _, n := range before[i] {
			if n != "s1" {
				want = append(want, n)
			}
		}
		got := r.Owners(key)
		// The surviving prefix must be preserved in order; a key that had
		// s1 in its placement gains exactly one new successor at the end.
		if len(got) != 3 {
			t.Fatalf("Owners(%q) after removal = %v, want 3 members", key, got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Owners(%q) after removing s1 = %v, want prefix %v preserved", key, got, want)
			}
		}
	}
	if r.Remove("s1") {
		t.Error("second Remove(s1) = true, want false")
	}
	if !r.Add("s1", instant(1)) {
		t.Fatal("re-Add(s1) = false")
	}
	for i, key := range keys {
		got := r.Owners(key)
		for j := range before[i] {
			if got[j] != before[i][j] {
				t.Fatalf("Owners(%q) after re-adding s1 = %v, want original %v", key, got, before[i])
			}
		}
	}
	if r.Add("s1", instant(1)) {
		t.Error("duplicate Add(s1) = true, want false")
	}
}

// A member removed while a call is in flight keeps serving that call:
// the routed handles outlive the topology change, exactly like the
// group's copy-on-write snapshot.
func TestRemoveMidCall(t *testing.T) {
	started := make(chan struct{})
	release := coretest.NewGate()
	var once sync.Once
	r := ring.New[string, int](core.Fixed{Copies: 1})
	r.Add("a", func(ctx context.Context, _ string) (int, error) {
		once.Do(func() { close(started) })
		return coretest.Blocked(1, release)(ctx)
	})
	r.Add("b", instant(2))

	key := keyWithPrimary(t, r, "a")
	type result struct {
		res core.Result[int]
		err error
	}
	done := make(chan result, 1)
	go func() {
		res, err := r.Do(context.Background(), key)
		done <- result{res, err}
	}()
	<-started
	if !r.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	// The new table no longer routes to a...
	if owners := r.Owners(key); owners[0] != "b" {
		t.Fatalf("Owners(%q) after removal = %v, want [b]", key, owners)
	}
	// ...but the in-flight call completes against it.
	release.Release()
	got := <-done
	if got.err != nil || got.res.Value != 1 {
		t.Errorf("in-flight Do across removal = %d, %v; want 1, nil", got.res.Value, got.err)
	}
}

// Quorum reads take R-of-N within the key's placement and the failure is
// typed.
func TestQuorumWithinPlacement(t *testing.T) {
	boom := errors.New("boom")
	r := ring.New[string, int](core.FullReplicate{}, ring.WithReplication(3))
	r.Add("ok1", instant(1))
	r.Add("ok2", instant(2))
	r.Add("bad", func(ctx context.Context, _ string) (int, error) { return 0, boom })

	if _, err := r.Do(context.Background(), "k", core.WithQuorum(2)); err != nil {
		t.Fatalf("quorum 2 with one failing member: %v", err)
	}
	_, err := r.Do(context.Background(), "k", core.WithQuorum(3))
	if !errors.Is(err, core.ErrQuorumUnreachable) || !errors.Is(err, boom) {
		t.Errorf("quorum 3 with a failing member = %v, want ErrQuorumUnreachable wrapping the cause", err)
	}
}

// NewKeyed routes by the derived key: a write request carrying a value
// lands on the same placement as a plain read of its key.
func TestKeyedRoutingAgrees(t *testing.T) {
	type wreq struct{ key, val string }
	reads := ring.New[string, string](core.Fixed{Copies: 1})
	writes := ring.NewKeyed[wreq, string](core.Fixed{Copies: 1}, func(w wreq) string { return w.key })
	for i := 0; i < 5; i++ {
		n := fmt.Sprintf("s%d", i)
		reads.Add(n, named(n))
		writes.Add(n, func(ctx context.Context, _ wreq) (string, error) { return n, nil })
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		res, err := writes.Do(context.Background(), wreq{key: key, val: "v"})
		if err != nil {
			t.Fatal(err)
		}
		if want := reads.Owners(key)[0]; res.Value != want {
			t.Errorf("write for %q served by %s, read placement says %s", key, res.Value, want)
		}
	}
}

func TestStatsKeyShares(t *testing.T) {
	r := ring.New[string, int](core.Fixed{Copies: 2}, ring.WithReplication(2))
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("s%d", i), instant(i))
	}
	for i := 0; i < 32; i++ {
		if _, err := r.Do(context.Background(), fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Replication != 2 || len(st.Members) != 4 {
		t.Fatalf("Stats = replication %d, %d members; want 2, 4", st.Replication, len(st.Members))
	}
	sum, observations := 0.0, int64(0)
	for _, m := range st.Members {
		if m.KeyShare <= 0 {
			t.Errorf("member %s key share %g, want > 0", m.Name, m.KeyShare)
		}
		sum += m.KeyShare
		observations += m.Observations
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("key shares sum to %g, want 1", sum)
	}
	// Every call records at least its winner; losers that complete
	// before cancellation record too.
	if observations < 32 {
		t.Errorf("total observations %d, want >= 32 (one winner per call)", observations)
	}
}

// Churn race: concurrent calls, topology changes, and strategy swaps.
// Run with -race -count=5; the fixed member s0 guarantees every call has
// a route.
func TestRingChurnRace(t *testing.T) {
	r := ring.New[string, int](core.Fixed{Copies: 2}, ring.WithReplication(2), ring.WithVirtualNodes(16))
	r.Add("s0", instant(0))

	const (
		callers = 4
		calls   = 200
		churns  = 100
	)
	var wg sync.WaitGroup
	var ok atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				res, err := r.Do(context.Background(), fmt.Sprintf("key-%d-%d", c, i))
				if err != nil {
					t.Errorf("Do during churn: %v", err)
					return
				}
				_ = res
				ok.Add(1)
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churns; i++ {
			name := fmt.Sprintf("s%d", 1+i%3)
			r.Add(name, instant(i))
			switch i % 3 {
			case 0:
				r.SetStrategy(core.AdaptiveHedge{Copies: 2})
			case 1:
				r.SetStrategy(core.Fixed{Copies: 2})
			case 2:
				r.SetStrategy(core.FullReplicate{})
			}
			r.Remove(name)
		}
	}()
	wg.Wait()
	if got := ok.Load(); got != callers*calls {
		t.Errorf("%d calls succeeded, want %d", got, callers*calls)
	}
	if r.Len() != 1 || r.Names()[0] != "s0" {
		t.Errorf("after churn: members %v, want [s0]", r.Names())
	}
}

// TestDoBatchRoutesLikeDo: a batched call must route every key to the
// same placement Do would, scatter results back in argument order, and
// report per-key failures in the slice rather than failing the batch.
func TestDoBatchRoutesLikeDo(t *testing.T) {
	r := ring.New[string, string](core.Fixed{Copies: 1}, ring.WithVirtualNodes(64))
	for _, n := range []string{"s0", "s1", "s2", "s3"} {
		r.Add(n, named(n))
	}
	args := make([]string, 200)
	for i := range args {
		args[i] = fmt.Sprintf("key-%d", i)
	}
	res, err := r.DoBatch(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(args) {
		t.Fatalf("len(res) = %d, want %d", len(res), len(args))
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("key %d: %v", i, br.Err)
		}
		if want := r.Owners(args[i])[0]; br.Result.Value != want {
			t.Fatalf("key %q served by %q, want primary %q", args[i], br.Result.Value, want)
		}
	}
}

func TestDoBatchEmptyAndNoMembers(t *testing.T) {
	r := ring.New[string, string](core.Fixed{Copies: 1})
	if res, err := r.DoBatch(context.Background(), nil); res != nil || err != nil {
		t.Fatalf("empty batch = (%v, %v)", res, err)
	}
	if _, err := r.DoBatch(context.Background(), []string{"k"}); !errors.Is(err, core.ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

// TestDoBatchFailover: with Replication 2, a dead primary's keys fail
// over to their successor within the batch.
func TestDoBatchFailover(t *testing.T) {
	r := ring.New[string, string](core.Fixed{Copies: 2}, ring.WithVirtualNodes(64))
	r.Add("dead", func(ctx context.Context, _ string) (string, error) {
		return "", errors.New("down")
	})
	r.Add("live", named("live"))
	args := []string{keyWithPrimary(t, r, "dead"), keyWithPrimary(t, r, "live")}
	res, err := r.DoBatch(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("key %d: %v", i, br.Err)
		}
		if br.Result.Value != "live" {
			t.Fatalf("key %d served by %q, want live", i, br.Result.Value)
		}
	}
}
