package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

func TestGroupEmptyErrors(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 2})
	if _, err := g.Do(context.Background()); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("got %v, want ErrNoReplicas", err)
	}
}

func TestGroupUsesKCopies(t *testing.T) {
	var launched atomic.Int32
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRandom}, WithSeed[int](1))
	for i := 0; i < 5; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) {
			launched.Add(1)
			return i, nil
		})
	}
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2", res.Launched)
	}
	// Both copies may or may not run to completion before cancel; at least
	// the winner ran.
	if launched.Load() < 1 {
		t.Error("no replica ran")
	}
}

func TestGroupCopiesClampedToSize(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 10})
	g.Add("only", func(ctx context.Context) (int, error) { return 7, nil })
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 || res.Value != 7 {
		t.Errorf("got launched=%d value=%d", res.Launched, res.Value)
	}
}

func TestGroupRankedPrefersFastReplica(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 1, Selection: SelectRanked}, WithSeed[string](2))
	g.Add("slow", coretest.Sleeper("slow", 30*time.Millisecond))
	g.Add("fast", coretest.Sleeper("fast", time.Millisecond))
	// Warm up estimates: ranked selection probes unprobed replicas first,
	// so two operations measure both.
	for i := 0; i < 2; i++ {
		if _, err := g.Do(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ranked := g.RankedNames()
	if ranked[0] != "fast" {
		t.Fatalf("ranked order %v, want fast first", ranked)
	}
	// Subsequent single-copy operations should use the fast replica.
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast" {
		t.Errorf("ranked selection used %q", res.Value)
	}
}

func TestGroupEstimatedLatency(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 2})
	g.Add("a", coretest.Sleeper("a", 5*time.Millisecond))
	g.Add("b", coretest.Sleeper("b", 5*time.Millisecond))
	if _, ok := g.EstimatedLatency("a"); ok {
		t.Error("latency known before any operation")
	}
	if _, err := g.Do(context.Background()); err != nil {
		t.Fatal(err)
	}
	d, ok := g.EstimatedLatency("a")
	if !ok && func() bool { _, ok2 := g.EstimatedLatency("b"); return !ok2 }() {
		t.Error("no replica has a latency estimate after an operation")
	}
	if ok && (d <= 0 || d > time.Second) {
		t.Errorf("estimate %v implausible", d)
	}
	if _, ok := g.EstimatedLatency("missing"); ok {
		t.Error("unknown replica reported an estimate")
	}
}

func TestGroupRoundRobinRotates(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1, Selection: SelectRoundRobin})
	var hits [3]atomic.Int32
	for i := 0; i < 3; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) {
			hits[i].Add(1)
			return i, nil
		})
	}
	for i := 0; i < 9; i++ {
		if _, err := g.Do(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for i := range hits {
		if n := hits[i].Load(); n != 3 {
			t.Errorf("replica %d served %d ops, want 3", i, n)
		}
	}
}

func TestGroupBudgetDegradesToFewerCopies(t *testing.T) {
	// Budget with zero refill and tiny burst: after it drains, operations
	// run single-copy instead of failing.
	b := NewBudget(0, 2)
	var launched atomic.Int32
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRandom},
		WithBudget[int](b), WithSeed[int](3))
	for i := 0; i < 4; i++ {
		g.Add(string(rune('a'+i)), coretest.Counting(&launched, coretest.Instant(i)))
	}
	// Burst 2 tokens, Release returns them after each op, so every op can
	// hedge. Use AcquireN directly to drain:
	if got := b.Acquire(2); got != 2 {
		t.Fatalf("drain: got %d tokens", got)
	}
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 {
		t.Errorf("with empty budget Launched = %d, want 1", res.Launched)
	}
	b.Release(2)
	res, err = g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("with refilled budget Launched = %d, want 2", res.Launched)
	}
}

func TestGroupObserverSeesWins(t *testing.T) {
	c := NewCounters()
	g := NewGroup[string](Policy{Copies: 2}, WithObserver[string](c))
	g.Add("fast", coretest.Sleeper("fast", time.Millisecond))
	g.Add("slow", coretest.Sleeper("slow", 100*time.Millisecond))
	// First two ops probe; then fast should win consistently.
	for i := 0; i < 10; i++ {
		if _, err := g.Do(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if c.Ops() != 10 {
		t.Errorf("Ops = %d, want 10", c.Ops())
	}
	wins := c.Wins()
	if wins["fast"] < 5 {
		t.Errorf("fast won only %d of 10", wins["fast"])
	}
	if c.Failures() != 0 {
		t.Errorf("Failures = %d", c.Failures())
	}
	if cp := c.CopiesPerOp(); cp != 2 {
		t.Errorf("CopiesPerOp = %g, want 2", cp)
	}
	if c.MeanLatency() <= 0 {
		t.Error("MeanLatency not recorded")
	}
}

func TestGroupObserverSeesFailures(t *testing.T) {
	c := NewCounters()
	g := NewGroup[int](Policy{Copies: 1}, WithObserver[int](c))
	g.Add("bad", coretest.Failer[int](errors.New("down"), time.Millisecond))
	if _, err := g.Do(context.Background()); err == nil {
		t.Fatal("want error")
	}
	if c.Failures() != 1 {
		t.Errorf("Failures = %d, want 1", c.Failures())
	}
}

func TestGroupHedgeDelayPolicy(t *testing.T) {
	var launched atomic.Int32
	g := NewGroup[int](Policy{Copies: 2, HedgeDelay: 200 * time.Millisecond, Selection: SelectRandom},
		WithSeed[int](4))
	for i := 0; i < 3; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) {
			launched.Add(1)
			return i, nil
		})
	}
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 {
		t.Errorf("fast primary should preempt hedge: Launched = %d", res.Launched)
	}
	if launched.Load() != 1 {
		t.Errorf("hedge copy ran despite fast primary: %d launches", launched.Load())
	}
}

func TestGroupNamesAndLen(t *testing.T) {
	g := NewGroup[int](Policy{})
	g.Add("x", func(ctx context.Context) (int, error) { return 0, nil })
	g.Add("y", func(ctx context.Context) (int, error) { return 0, nil })
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
}

func TestGroupConcurrentDo(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRandom}, WithSeed[int](5))
	for i := 0; i < 8; i++ {
		i := i
		g.Add(string(rune('a'+i)), coretest.Sleeper(i, time.Millisecond))
	}
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func() {
			_, err := g.Do(context.Background())
			done <- err
		}()
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
