package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"redundancy/internal/core/coretest"
)

// Property: First returns the value of a replica whose index is among the
// launched set, and — when all replicas succeed — the winner's sleep time
// is the minimum (within scheduling tolerance, asserted as: winner's
// nominal delay is within 2x of the minimum delay).
func TestFirstPicksNearMinimumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		delays := make([]time.Duration, len(raw))
		minD := time.Hour
		for i, v := range raw {
			// 1-32 ms, spaced to dodge scheduler jitter.
			delays[i] = time.Duration(1+int(v%8)*4) * time.Millisecond
			if delays[i] < minD {
				minD = delays[i]
			}
		}
		reps := make([]Replica[int], len(delays))
		for i := range delays {
			i := i
			reps[i] = coretest.Sleeper(i, delays[i])
		}
		res, err := First(context.Background(), reps...)
		if err != nil {
			return false
		}
		if res.Index < 0 || res.Index >= len(reps) {
			return false
		}
		return delays[res.Index] <= minD*2+2*time.Millisecond
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: for any subset of failing replicas, First succeeds iff at
// least one replica succeeds, and the winner is never a failing index.
func TestFirstSuccessIffAnySucceedsProperty(t *testing.T) {
	boom := errors.New("boom")
	f := func(failMask uint8, n uint8) bool {
		count := 1 + int(n%5)
		anyOK := false
		reps := make([]Replica[int], count)
		for i := 0; i < count; i++ {
			fails := failMask&(1<<i) != 0
			if !fails {
				anyOK = true
			}
			i := i
			if fails {
				reps[i] = coretest.Failer[int](boom, time.Microsecond)
			} else {
				reps[i] = coretest.Sleeper(i, time.Microsecond)
			}
		}
		res, err := First(context.Background(), reps...)
		if anyOK {
			if err != nil {
				return false
			}
			return failMask&(1<<res.Index) == 0
		}
		return err != nil && errors.Is(err, boom)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Quorum(q) returns exactly q outcomes whenever at least q
// replicas can succeed, with strictly nondecreasing completion latencies.
func TestQuorumCountProperty(t *testing.T) {
	f := func(n, q, failCount uint8) bool {
		nn := 1 + int(n%5)
		qq := 1 + int(q)%nn
		fails := int(failCount) % (nn + 1)
		reps := make([]Replica[int], nn)
		for i := range reps {
			i := i
			if i < fails {
				reps[i] = coretest.Failer[int](errors.New("down"), time.Microsecond)
			} else {
				reps[i] = coretest.Sleeper(i, time.Duration(i)*time.Millisecond)
			}
		}
		outs, err := Quorum(context.Background(), qq, reps...)
		canSucceed := nn-fails >= qq
		if !canSucceed {
			return err != nil
		}
		if err != nil || len(outs) != qq {
			return false
		}
		for i := 1; i < len(outs); i++ {
			if outs[i].Latency < outs[i-1].Latency {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProbeAllMeasuresEveryReplica(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 2})
	g.Add("fast", coretest.Sleeper("fast", time.Millisecond))
	g.Add("slow", coretest.Sleeper("slow", 25*time.Millisecond))
	g.Add("bad", coretest.Failer[string](errors.New("down"), time.Millisecond))
	ok := g.ProbeAll(context.Background())
	if ok != 2 {
		t.Fatalf("ProbeAll reported %d successes, want 2", ok)
	}
	// Both healthy replicas now have estimates; the dead one does not.
	if _, has := g.EstimatedLatency("fast"); !has {
		t.Error("fast has no estimate after probe")
	}
	df, _ := g.EstimatedLatency("fast")
	ds, hasSlow := g.EstimatedLatency("slow")
	if !hasSlow {
		t.Fatal("slow has no estimate after probe")
	}
	if ds <= df {
		t.Errorf("slow estimate %v not above fast %v", ds, df)
	}
	if _, has := g.EstimatedLatency("bad"); has {
		t.Error("failed replica acquired an estimate")
	}
	ranked := g.RankedNames()
	// Unprobed ("bad") first so it gets probed; then fast before slow.
	if ranked[0] != "bad" || ranked[1] != "fast" || ranked[2] != "slow" {
		t.Errorf("ranked = %v", ranked)
	}
}
