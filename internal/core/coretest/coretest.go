// Package coretest provides scriptable fake replicas for testing the
// redundancy engine. The helpers come in two flavors:
//
//   - Channel-gated replicas (Gate, Blocked, FailBlocked, Instant,
//     Fail): fully deterministic, no wall clock anywhere, so tests that
//     assert on ordering, launch counts, or cancellation never race the
//     scheduler and survive `go test -race -count=5` unchanged.
//   - Timed replicas (Sleeper, Failer): for tests whose subject IS a
//     latency distribution (digest warming, ranked selection). They
//     honor context cancellation, and assertions built on them should
//     use order ("the 1ms replica beat the 1h replica"), never absolute
//     elapsed-time windows.
//
// The constructors return plain `func(context.Context) (T, error)`
// values, assignable to core.Replica[T] (and, wrapped, to
// core.ArgReplica), without this package importing core — which is what
// lets core's own in-package tests use it without an import cycle.
package coretest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Every constructor returns an unnamed func(context.Context) (T, error):
// unnamed types assign freely to the named core.Replica[T], while a
// named type here would not.

// Sleeper returns a replica that yields v after d, or the context error
// if cancelled first.
func Sleeper[T any](v T, d time.Duration) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return v, nil
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// Failer returns a replica that fails with err after d, or returns the
// context error if cancelled first.
func Failer[T any](err error, d time.Duration) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		var zero T
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return zero, err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// Instant returns a replica that yields v immediately.
func Instant[T any](v T) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) { return v, nil }
}

// Fail returns a replica that fails with err immediately.
func Fail[T any](err error) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		var zero T
		return zero, err
	}
}

// Gate is a manually released latch for scripting replica latency
// without a clock: a Blocked replica waits on the gate, and the test
// decides exactly when (and whether) it completes. Release is
// idempotent and safe from any goroutine; a Gate must not be copied
// after first use.
type Gate struct {
	once sync.Once
	ch   chan struct{}
}

// NewGate returns an unreleased gate.
func NewGate() *Gate { return &Gate{ch: make(chan struct{})} }

// Release opens the gate, unblocking every current and future waiter.
func (g *Gate) Release() { g.once.Do(func() { close(g.ch) }) }

// C returns the channel that closes when the gate releases.
func (g *Gate) C() <-chan struct{} { return g.ch }

// Blocked returns a replica that yields v once gate releases, or the
// context error if cancelled first — the deterministic "slow replica":
// it is exactly as slow as the test scripts it to be.
func Blocked[T any](v T, gate *Gate) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		select {
		case <-gate.C():
			return v, nil
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// FailBlocked returns a replica that fails with err once gate releases,
// or returns the context error if cancelled first.
func FailBlocked[T any](err error, gate *Gate) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		var zero T
		select {
		case <-gate.C():
			return zero, err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// Counting wraps a replica so each launch increments n before the
// underlying replica runs.
func Counting[T any](n *atomic.Int32, rep func(ctx context.Context) (T, error)) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		n.Add(1)
		return rep(ctx)
	}
}

// CancelReporting wraps a replica so that, whenever the replica returns
// its context's cancellation error, cancelled is released — letting a
// test wait for a losing copy to observe cancellation instead of
// polling.
func CancelReporting[T any](cancelled *Gate, rep func(ctx context.Context) (T, error)) func(ctx context.Context) (T, error) {
	return func(ctx context.Context) (T, error) {
		v, err := rep(ctx)
		if err != nil && ctx.Err() != nil {
			cancelled.Release()
		}
		return v, err
	}
}
