package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

// --- Copy-on-write engine: dynamic membership. ---

func TestGroupRemove(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1, Selection: SelectRoundRobin})
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 2, nil })
	g.Add("c", func(ctx context.Context) (int, error) { return 3, nil })
	if !g.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if g.Remove("b") {
		t.Error("second Remove(b) = true")
	}
	if g.Remove("missing") {
		t.Error("Remove(missing) = true")
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Errorf("Names after Remove = %v", names)
	}
	// The removed replica must never serve again.
	for i := 0; i < 10; i++ {
		res, err := g.Do(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Value == 2 {
			t.Fatal("removed replica served an operation")
		}
	}
}

func TestGroupRemoveAllThenDo(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 2})
	g.Add("only", func(ctx context.Context) (int, error) { return 1, nil })
	if !g.Remove("only") {
		t.Fatal("Remove failed")
	}
	if _, err := g.Do(context.Background()); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("Do on emptied group: %v, want ErrNoReplicas", err)
	}
}

func TestGroupRemoveKeepsEstimates(t *testing.T) {
	// Membership changes must not reset surviving replicas' estimates:
	// members are shared across snapshots.
	g := NewGroup[string](Policy{Copies: 2})
	g.Add("a", coretest.Sleeper("a", time.Millisecond))
	g.Add("b", coretest.Sleeper("b", time.Millisecond))
	g.Add("c", coretest.Sleeper("c", time.Millisecond))
	if ok := g.ProbeAll(context.Background()); ok != 3 {
		t.Fatalf("ProbeAll = %d", ok)
	}
	if _, ok := g.EstimatedLatency("a"); !ok {
		t.Fatal("no estimate for a after probe")
	}
	g.Remove("b")
	if _, ok := g.EstimatedLatency("a"); !ok {
		t.Error("estimate for a lost after removing b")
	}
	if _, ok := g.EstimatedLatency("b"); ok {
		t.Error("removed replica still reports an estimate")
	}
}

func TestGroupSetPolicy(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1, Selection: SelectRandom}, WithSeed[int](1))
	for i := 0; i < 4; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context) (int, error) { return i, nil })
	}
	res, err := g.Do(context.Background())
	if err != nil || res.Launched != 1 {
		t.Fatalf("copies=1: launched %d, err %v", res.Launched, err)
	}
	g.SetPolicy(Policy{Copies: 3, Selection: SelectRandom})
	res, err = g.Do(context.Background())
	if err != nil || res.Launched != 3 {
		t.Fatalf("after SetPolicy copies=3: launched %d, err %v", res.Launched, err)
	}
	if p := g.Policy(); p.Copies != 3 {
		t.Errorf("Policy().Copies = %d", p.Copies)
	}
	// Copies below 1 normalizes to 1, as in NewGroup.
	g.SetPolicy(Policy{})
	if p := g.Policy(); p.Copies != 1 {
		t.Errorf("normalized Policy().Copies = %d", p.Copies)
	}
}

// TestGroupConcurrentMembershipAndDo is the engine's core race test: many
// goroutines call Do while others add and remove replicas and change the
// policy. Run with -race. Every operation must either succeed or report
// ErrNoReplicas (the group may be momentarily empty); nothing may panic,
// deadlock, or corrupt state.
func TestGroupConcurrentMembershipAndDo(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRanked}, WithSeed[int](42))
	g.Add("base", func(ctx context.Context) (int, error) { return -1, nil })

	const (
		doers    = 8
		churners = 4
		iters    = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < churners; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("c%d-%d", w, i)
				v := w*iters + i
				g.Add(name, func(ctx context.Context) (int, error) { return v, nil })
				if i%3 == 0 {
					g.SetPolicy(Policy{Copies: 1 + i%3, Selection: Selection(i % 3)})
				}
				g.Remove(name)
			}
		}()
	}
	var ok, empty atomic.Int64
	for w := 0; w < doers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := g.Do(context.Background())
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrNoReplicas):
					empty.Add(1)
				default:
					t.Errorf("Do: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no operation succeeded during churn")
	}
	if n := g.Len(); n != 1 {
		t.Errorf("Len after churn = %d, want 1 (only base)", n)
	}
}

func TestGroupConcurrentStatsConsistency(t *testing.T) {
	// Stats must come from one snapshot: with SetPolicy and membership
	// updated atomically together, a reader may never see the post-change
	// policy paired with the pre-change membership (or vice versa). The
	// writer alternates between two (policy, membership) configurations
	// that tests can tell apart.
	g := NewGroup[int](Policy{Copies: 1})
	g.Add("a", func(ctx context.Context) (int, error) { return 0, nil })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Writers hold the group mutex across both updates, but each
			// store publishes a full snapshot; readers see either config.
			if i%2 == 0 {
				g.Add("b", func(ctx context.Context) (int, error) { return 1, nil })
				g.SetPolicy(Policy{Copies: 2})
			} else {
				g.SetPolicy(Policy{Copies: 1})
				g.Remove("b")
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		s := g.Stats()
		if len(s.Replicas) < 1 || len(s.Replicas) > 2 {
			t.Fatalf("Stats saw %d replicas", len(s.Replicas))
		}
		if s.Policy.Copies < 1 || s.Policy.Copies > 2 {
			t.Fatalf("Stats saw Copies=%d", s.Policy.Copies)
		}
		// Policy and membership come from one atomic snapshot; Copies may
		// exceed membership only transiently BETWEEN the two writer calls,
		// never inconsistently within one call's published state.
		if s.Replicas[0].Name != "a" {
			t.Fatalf("first replica %q, want a", s.Replicas[0].Name)
		}
	}
	close(stop)
	wg.Wait()
}

func TestGroupStatsObservations(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 1})
	g.Add("a", coretest.Sleeper("a", time.Millisecond))
	g.Add("b", coretest.Sleeper("b", 2*time.Millisecond))
	s := g.Stats()
	for _, r := range s.Replicas {
		if r.Observed || r.Observations != 0 || r.EstimatedLatency != 0 {
			t.Errorf("replica %s reports observations before any op: %+v", r.Name, r)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := g.Do(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	s = g.Stats()
	total := int64(0)
	for _, r := range s.Replicas {
		if r.Observed != (r.Observations > 0) {
			t.Errorf("replica %s: Observed=%v with %d observations", r.Name, r.Observed, r.Observations)
		}
		if r.Observed && r.EstimatedLatency <= 0 {
			t.Errorf("replica %s: observed but zero estimate", r.Name)
		}
		total += r.Observations
	}
	if total != 4 {
		t.Errorf("total observations %d, want 4 (copies=1, 4 ops)", total)
	}
	if s.Policy.Copies != 1 {
		t.Errorf("Stats policy %+v", s.Policy)
	}
}

// TestLatEstimateConcurrent hammers one digest from many goroutines; the
// CAS loop must apply every observation exactly once.
func TestLatEstimateConcurrent(t *testing.T) {
	var l LatDigest
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.observe(100)
			}
		}()
	}
	wg.Wait()
	if n := l.count.Load(); n != workers*per {
		t.Errorf("count = %d, want %d", n, workers*per)
	}
	v, ok := l.value()
	if !ok || v != 100 {
		t.Errorf("value = %g, %v; want 100 (EWMA of constant stream)", v, ok)
	}
}

func TestGroupBudgetConsumedByFailedCopies(t *testing.T) {
	// Launched copies consume their tokens even when the operation fails;
	// otherwise an outage (every replica erroring) would never deplete the
	// budget and each request would keep fanning out k copies — exactly
	// the load the budget exists to shed.
	b := NewBudget(0, 1)
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRandom},
		WithBudget[int](b), WithSeed[int](6))
	g.Add("bad1", coretest.Failer[int](errors.New("down"), time.Millisecond))
	g.Add("bad2", coretest.Failer[int](errors.New("down"), time.Millisecond))
	res, err := g.Do(context.Background())
	if err == nil {
		t.Fatal("want error from all-failing replicas")
	}
	if res.Launched != 2 {
		t.Errorf("failed operation reported Launched = %d, want 2", res.Launched)
	}
	if got := b.Available(); got != 0 {
		t.Errorf("budget refunded tokens for launched-but-failed copies: Available = %d, want 0", got)
	}
}

// --- KeyedGroup: the argument-passing call path. ---

func TestKeyedGroupPassesArg(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 2})
	for _, name := range []string{"r1", "r2", "r3"} {
		name := name
		g.Add(name, func(ctx context.Context, key string) (string, error) {
			return name + ":" + key, nil
		})
	}
	for _, key := range []string{"alpha", "beta"} {
		res, err := g.Do(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		if want := ":" + key; len(res.Value) < len(want) || res.Value[len(res.Value)-len(want):] != want {
			t.Errorf("Do(%q) returned %q; replica did not receive the key", key, res.Value)
		}
	}
}

func TestKeyedGroupOptions(t *testing.T) {
	c := NewCounters()
	b := NewBudget(0, 1)
	g := NewKeyedGroup[int, int](Policy{Copies: 3, Selection: SelectRandom},
		WithKeyedObserver[int, int](c),
		WithKeyedBudget[int, int](b),
		WithKeyedSeed[int, int](9))
	for i := 0; i < 4; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context, arg int) (int, error) { return arg + i, nil })
	}
	res, err := g.Do(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Budget burst is 1: only one extra copy beyond the primary.
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (budget-capped)", res.Launched)
	}
	if res.Value < 100 || res.Value > 103 {
		t.Errorf("Value = %d", res.Value)
	}
	if c.Ops() != 1 {
		t.Errorf("observer Ops = %d", c.Ops())
	}
}

func TestKeyedGroupProbeAll(t *testing.T) {
	g := NewKeyedGroup[int, int](Policy{Copies: 1})
	var got atomic.Int32
	for i := 0; i < 3; i++ {
		g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context, arg int) (int, error) {
			got.Add(int32(arg))
			return arg, nil
		})
	}
	if ok := g.ProbeAll(context.Background(), 7); ok != 3 {
		t.Fatalf("ProbeAll = %d", ok)
	}
	if got.Load() != 21 {
		t.Errorf("replicas saw args summing to %d, want 21", got.Load())
	}
	for _, name := range []string{"r0", "r1", "r2"} {
		if _, ok := g.EstimatedLatency(name); !ok {
			t.Errorf("no estimate for %s after ProbeAll", name)
		}
	}
}

func TestKeyedGroupConcurrentKeys(t *testing.T) {
	// Concurrent Dos with different keys must never cross wires: each
	// caller gets a response derived from its own key.
	g := NewKeyedGroup[int, int](Policy{Copies: 2, Selection: SelectRandom}, WithKeyedSeed[int, int](3))
	for i := 0; i < 5; i++ {
		g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context, key int) (int, error) {
			return key * 10, nil
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := g.Do(context.Background(), w)
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if res.Value != w*10 {
					t.Errorf("key %d got value %d", w, res.Value)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// --- Selection on the lock-free path. ---

func TestRankedSelectionMatchesRankedNames(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 2, Selection: SelectRanked})
	g.Add("slow", coretest.Sleeper("slow", 20*time.Millisecond))
	g.Add("mid", coretest.Sleeper("mid", 8*time.Millisecond))
	g.Add("fast", coretest.Sleeper("fast", time.Millisecond))
	if ok := g.ProbeAll(context.Background()); ok != 3 {
		t.Fatalf("ProbeAll = %d", ok)
	}
	ranked := g.RankedNames()
	if ranked[0] != "fast" || ranked[2] != "slow" {
		t.Fatalf("RankedNames = %v", ranked)
	}
	// With copies=2 the winner must be one of the two fastest.
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value == "slow" {
		t.Errorf("ranked selection launched the slowest replica")
	}
}

func TestRandomSelectionDistinctAndUniform(t *testing.T) {
	const n = 6
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRandom}, WithSeed[int](11))
	var hits [n]atomic.Int32
	for i := 0; i < n; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context) (int, error) {
			hits[i].Add(1)
			time.Sleep(200 * time.Microsecond)
			return i, nil
		})
	}
	const ops = 600
	for i := 0; i < ops; i++ {
		if _, err := g.Do(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Each op launches 2 distinct of 6; expected per-replica launches =
	// ops*2/6 = 200. Allow wide slack for cancellation races (a cancelled
	// loser may or may not have run) but catch gross non-uniformity.
	for i := range hits {
		if h := hits[i].Load(); h < 60 {
			t.Errorf("replica %d launched only %d times of expected ~200", i, h)
		}
	}
}

func TestSeededSelectionReproducible(t *testing.T) {
	run := func() []int {
		g := NewGroup[int](Policy{Copies: 1, Selection: SelectRandom}, WithSeed[int](77))
		for i := 0; i < 8; i++ {
			i := i
			g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context) (int, error) { return i, nil })
		}
		out := make([]int, 20)
		for i := range out {
			res, err := g.Do(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res.Value
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverged at op %d: %v vs %v", i, a, b)
		}
	}
}
