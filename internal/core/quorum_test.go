package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

func TestQuorumFirstQSuccesses(t *testing.T) {
	outs, err := Quorum(context.Background(), 2,
		coretest.Sleeper("a", 5*time.Millisecond),
		coretest.Sleeper("b", 10*time.Millisecond),
		coretest.Sleeper("c", 500*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Value != "a" || outs[1].Value != "b" {
		t.Errorf("quorum values %q, %q; want a, b (completion order)", outs[0].Value, outs[1].Value)
	}
	if outs[1].Latency > 300*time.Millisecond {
		t.Error("quorum waited for the slow replica")
	}
}

func TestQuorumOfOneIsFirst(t *testing.T) {
	outs, err := Quorum(context.Background(), 1,
		coretest.Sleeper(1, 50*time.Millisecond),
		coretest.Sleeper(2, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Value != 2 {
		t.Errorf("outs = %+v", outs)
	}
}

func TestQuorumToleratesFailuresUpToNMinusQ(t *testing.T) {
	outs, err := Quorum(context.Background(), 2,
		coretest.Failer[int](errors.New("down"), time.Millisecond),
		coretest.Sleeper(1, 5*time.Millisecond),
		coretest.Sleeper(2, 10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes", len(outs))
	}
}

func TestQuorumFailsWhenImpossible(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	_, err := Quorum(context.Background(), 2,
		coretest.Failer[int](e1, time.Millisecond),
		coretest.Failer[int](e2, time.Millisecond),
		coretest.Sleeper(1, 5*time.Millisecond),
	)
	if err == nil {
		t.Fatal("2-of-3 quorum with 2 failures should error")
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Errorf("joined error missing causes: %v", err)
	}
}

func TestQuorumValidation(t *testing.T) {
	if _, err := Quorum[int](context.Background(), 1); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Quorum(context.Background(), 0, coretest.Sleeper(1, 0)); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := Quorum(context.Background(), 3, coretest.Sleeper(1, 0), coretest.Sleeper(2, 0)); err == nil {
		t.Error("q > n accepted")
	}
}

func TestQuorumContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := Quorum(ctx, 1, coretest.Sleeper(1, 5*time.Second))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v", err)
	}
}

func TestAllRunsEverything(t *testing.T) {
	outs := All(context.Background(),
		coretest.Sleeper("x", time.Millisecond),
		coretest.Failer[string](errors.New("bad"), time.Millisecond),
		coretest.Sleeper("z", 20*time.Millisecond),
	)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if outs[0].Value != "x" || outs[0].Err != nil {
		t.Errorf("outcome 0 = %+v", outs[0])
	}
	if outs[1].Err == nil {
		t.Error("outcome 1 should carry the error")
	}
	if outs[2].Value != "z" || outs[2].Index != 2 {
		t.Errorf("outcome 2 = %+v", outs[2])
	}
	// All preserves replica order regardless of completion order.
	if outs[2].Latency < outs[0].Latency {
		t.Error("latencies inconsistent with sleep durations")
	}
}

func TestFastestSortsAndFilters(t *testing.T) {
	outs := All(context.Background(),
		coretest.Sleeper("slow", 30*time.Millisecond),
		coretest.Failer[string](errors.New("x"), time.Millisecond),
		coretest.Sleeper("fast", time.Millisecond),
	)
	fastest := Fastest(outs)
	if len(fastest) != 2 {
		t.Fatalf("Fastest kept %d outcomes", len(fastest))
	}
	if fastest[0].Value != "fast" || fastest[1].Value != "slow" {
		t.Errorf("order: %q then %q", fastest[0].Value, fastest[1].Value)
	}
}
