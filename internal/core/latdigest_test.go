package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestDigestBinMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []uint64{0, 1, 2, 3, 7, 8, 15, 16, 100, 1000, 1 << 20, 1<<20 + 1, 1 << 40, 1 << 62} {
		b := digestBin(ns)
		if b < prev {
			t.Fatalf("digestBin(%d) = %d < previous %d: mapping not monotone", ns, b, prev)
		}
		if b < 0 || b >= digestBinCount {
			t.Fatalf("digestBin(%d) = %d out of range", ns, b)
		}
		prev = b
	}
}

func TestDigestBinUpperBoundsValue(t *testing.T) {
	// Every value must fall at or below its bin's upper edge, and the
	// edge must be within 12.5% (one sub-bin) of the value.
	for _, ns := range []uint64{1, 9, 100, 999, 12345, 1e6, 1e9, 1e12, 1 << 50} {
		up := digestBinUpper(digestBin(ns))
		if up < ns {
			t.Errorf("bin upper edge %d < value %d", up, ns)
		}
		if ns >= 16 && float64(up) > float64(ns)*1.25 {
			t.Errorf("bin upper edge %d over 25%% above value %d", up, ns)
		}
	}
	// The last bin must not overflow into a negative duration.
	if up := digestBinUpper(digestBinCount - 1); up > math.MaxInt64 {
		t.Errorf("last bin upper edge %d overflows int64", up)
	}
}

func TestLatDigestZeroValue(t *testing.T) {
	var d LatDigest
	if _, ok := d.Mean(); ok {
		t.Error("empty digest reports a mean")
	}
	if _, ok := d.Quantile(0.5); ok {
		t.Error("empty digest reports a quantile")
	}
	if d.Count() != 0 {
		t.Errorf("empty digest Count = %d", d.Count())
	}
}

func TestLatDigestQuantiles(t *testing.T) {
	var d LatDigest
	// 100 observations: 1ms, 2ms, ..., 100ms.
	for i := 1; i <= 100; i++ {
		d.Observe(time.Duration(i) * time.Millisecond)
	}
	if d.Count() != 100 {
		t.Fatalf("Count = %d", d.Count())
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
	} {
		got, ok := d.Quantile(tc.p)
		if !ok {
			t.Fatalf("Quantile(%g) not ok", tc.p)
		}
		// Log-scale bins: the estimate is the upper edge of the bin, so
		// it must be >= the true quantile and within one sub-bin (12.5%).
		if got < tc.want || float64(got) > float64(tc.want)*1.25 {
			t.Errorf("Quantile(%g) = %v, want in [%v, %v]", tc.p, got, tc.want, tc.want*5/4)
		}
	}
	// Batch form agrees with the one-at-a-time form.
	out := make([]time.Duration, 2)
	if !d.Quantiles([]float64{0.5, 0.99}, out) {
		t.Fatal("Quantiles not ok")
	}
	q50, _ := d.Quantile(0.5)
	q99, _ := d.Quantile(0.99)
	if out[0] != q50 || out[1] != q99 {
		t.Errorf("Quantiles = %v, want [%v %v]", out, q50, q99)
	}
}

func TestLatDigestMeanEWMA(t *testing.T) {
	var d LatDigest
	d.Observe(100 * time.Millisecond)
	if m, ok := d.Mean(); !ok || m != 100*time.Millisecond {
		t.Errorf("first observation Mean = %v, %v", m, ok)
	}
	d.Observe(200 * time.Millisecond)
	want := time.Duration(ewmaAlpha*200e6 + (1-ewmaAlpha)*100e6)
	if m, _ := d.Mean(); m != want {
		t.Errorf("EWMA after 100,200 = %v, want %v", m, want)
	}
}

func TestLatDigestNegativeClamped(t *testing.T) {
	var d LatDigest
	d.Observe(-time.Second)
	if m, ok := d.Mean(); !ok || m != 0 {
		t.Errorf("negative observation: Mean = %v, %v; want 0, true", m, ok)
	}
}

// TestLatDigestConcurrent hammers one digest with concurrent observers
// and readers; every observation must land exactly once and readers must
// never see torn state. Run with -race.
func TestLatDigestConcurrent(t *testing.T) {
	var d LatDigest
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Quantile(0.95)
				d.Mean()
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				d.Observe(time.Duration(1+i%100) * time.Millisecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if n := d.Count(); n != workers*per {
		t.Errorf("Count = %d, want %d", n, workers*per)
	}
	q, ok := d.Quantile(1.0)
	if !ok || q < 100*time.Millisecond {
		t.Errorf("max quantile = %v, %v", q, ok)
	}
}

func TestDigestSnapshotWindow(t *testing.T) {
	var d LatDigest
	// Phase 1: slow observations only.
	for i := 0; i < 1000; i++ {
		d.Observe(100 * time.Millisecond)
	}
	var s1 DigestSnapshot
	d.Snapshot(&s1)
	if s1.Count() != 1000 {
		t.Fatalf("snapshot count = %d, want 1000", s1.Count())
	}
	// Phase 2: fast observations only.
	for i := 0; i < 1000; i++ {
		d.Observe(1 * time.Millisecond)
	}
	var s2 DigestSnapshot
	d.Snapshot(&s2)

	if n := s2.WindowCount(&s1); n != 1000 {
		t.Errorf("window count = %d, want 1000", n)
	}
	// The cumulative p99 straddles both phases; the window p99 must see
	// phase 2 only (1ms +12.5% bin error).
	q, ok := s2.WindowQuantile(&s1, 0.99)
	if !ok {
		t.Fatal("window quantile: no data")
	}
	if q > 2*time.Millisecond {
		t.Errorf("window p99 = %v, want ~1ms (phase 2 only)", q)
	}
	cum, ok := d.Quantile(0.99)
	if !ok || cum < 50*time.Millisecond {
		t.Errorf("cumulative p99 = %v, %v, want >=50ms (both phases)", cum, ok)
	}
	// Nil prev windows the whole history.
	if q, ok := s2.WindowQuantile(nil, 0.99); !ok || q < 50*time.Millisecond {
		t.Errorf("nil-prev window p99 = %v, %v, want cumulative", q, ok)
	}
	m, ok := s2.WindowMean(&s1)
	if !ok || m > 2*time.Millisecond {
		t.Errorf("window mean = %v, %v, want ~1ms", m, ok)
	}
	// An empty window reports no data, not a bogus zero quantile.
	var s3 DigestSnapshot
	d.Snapshot(&s3)
	if _, ok := s3.WindowQuantile(&s2, 0.5); ok {
		t.Error("empty window reported data")
	}
	if _, ok := s3.WindowMean(&s2); ok {
		t.Error("empty window reported a mean")
	}
}

func TestCountersLabelSnapshot(t *testing.T) {
	c := NewCounters()
	for i := 0; i < 10; i++ {
		c.Observe(Observation{Winner: "a", Launched: 2, Latency: time.Millisecond, Label: "web"})
	}
	c.Observe(Observation{Launched: 1, Err: context.DeadlineExceeded, Label: "web"})
	if _, ok := c.LabelSnapshot("nope"); ok {
		t.Error("unknown label reported present")
	}
	s, ok := c.LabelSnapshot("web")
	if !ok {
		t.Fatal("label web missing")
	}
	if s.Ops != 11 || s.Failures != 1 || s.Launched != 21 {
		t.Errorf("snapshot = %+v, want ops 11, failures 1, launched 21", s)
	}
	// Labels() agrees with the single-label view.
	for _, ls := range c.Labels() {
		if ls.Label == "web" && ls.Launched != s.Launched {
			t.Errorf("Labels launched %d != snapshot %d", ls.Launched, s.Launched)
		}
	}
}
