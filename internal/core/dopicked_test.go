package core

import (
	"context"
	"errors"
	"testing"

	"redundancy/internal/core/coretest"
)

// --- DoPicked: the routed-subset call path behind internal/ring. ---

func keyed(fn func(ctx context.Context) (int, error)) ArgReplica[string, int] {
	return func(ctx context.Context, _ string) (int, error) { return fn(ctx) }
}

func TestDoPickedRespectsOrder(t *testing.T) {
	g := NewKeyedGroup[string, int](Policy{Copies: 1})
	ha := g.Add("a", keyed(coretest.Instant(1)))
	hb := g.Add("b", keyed(coretest.Instant(2)))
	hc := g.Add("c", keyed(coretest.Instant(3)))

	// Fan-out 1 over an explicit subset launches the subset's first
	// handle, regardless of registration order or selection.
	for _, tc := range []struct {
		picked []Handle[string, int]
		want   int
	}{
		{[]Handle[string, int]{hc, ha}, 3},
		{[]Handle[string, int]{hb, hc, ha}, 2},
		{[]Handle[string, int]{ha}, 1},
	} {
		res, err := g.DoPicked(context.Background(), "k", tc.picked)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != tc.want || res.Index != 0 || res.Launched != 1 {
			t.Errorf("DoPicked(%v) = value %d index %d launched %d, want value %d index 0 launched 1",
				tc.picked, res.Value, res.Index, res.Launched, tc.want)
		}
	}
}

func TestDoPickedClampsFanoutToSubset(t *testing.T) {
	g := NewKeyedGroup[string, int](Policy{Copies: 5})
	ha := g.Add("a", keyed(coretest.Instant(1)))
	hb := g.Add("b", keyed(coretest.Instant(2)))
	g.Add("c", keyed(coretest.Instant(3)))

	res, err := g.DoPicked(context.Background(), "k", []Handle[string, int]{ha, hb})
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("fan-out 5 over a 2-handle subset launched %d, want 2", res.Launched)
	}
}

func TestDoPickedZeroHandle(t *testing.T) {
	g := NewKeyedGroup[string, int](Policy{Copies: 1})
	ha := g.Add("a", keyed(coretest.Instant(1)))
	if _, err := g.DoPicked(context.Background(), "k", []Handle[string, int]{ha, {}}); err == nil {
		t.Error("DoPicked with a zero Handle succeeded, want error")
	}
	if _, err := g.DoPicked(context.Background(), "k", nil); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("DoPicked with no handles = %v, want ErrNoReplicas", err)
	}
}

func TestDoPickedQuorumWithinSubset(t *testing.T) {
	g := NewKeyedGroup[string, int](Policy{Copies: 2})
	ha := g.Add("a", keyed(coretest.Instant(1)))
	hb := g.Add("b", keyed(coretest.Instant(2)))
	g.Add("c", keyed(coretest.Instant(3)))

	// The quorum is taken within the subset: 2-of-2 succeeds...
	if _, err := g.DoPicked(context.Background(), "k", []Handle[string, int]{ha, hb}, WithQuorum(2)); err != nil {
		t.Fatal(err)
	}
	// ...but a quorum larger than the subset is unreachable even though
	// the group has enough members.
	if _, err := g.DoPicked(context.Background(), "k", []Handle[string, int]{ha, hb}, WithQuorum(3)); !errors.Is(err, ErrQuorumUnreachable) {
		t.Errorf("quorum 3 over 2 handles = %v, want ErrQuorumUnreachable", err)
	}
}

func TestDoPickedStaleHandleStillServes(t *testing.T) {
	g := NewKeyedGroup[string, int](Policy{Copies: 1})
	ha := g.Add("a", keyed(coretest.Instant(1)))
	g.Add("b", keyed(coretest.Instant(2)))
	if !g.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	// The handle outlives the membership, exactly like the snapshot an
	// in-flight Do holds: routing layers may drain calls to a
	// decommissioned backend at their own pace.
	res, err := g.DoPicked(context.Background(), "k", []Handle[string, int]{ha})
	if err != nil || res.Value != 1 {
		t.Errorf("DoPicked(stale a) = %d, %v; want 1, nil", res.Value, err)
	}
}

func TestDoPickedFeedsDigests(t *testing.T) {
	g := NewKeyedGroup[string, int](Policy{Copies: 1})
	ha := g.Add("a", keyed(coretest.Instant(1)))
	for i := 0; i < 4; i++ {
		if _, err := g.DoPicked(context.Background(), "k", []Handle[string, int]{ha}); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Digest("a").Count(); got != 4 {
		t.Errorf("digest count after 4 DoPicked = %d, want 4", got)
	}
}
