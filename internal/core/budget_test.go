package core

import (
	"sync"
	"testing"
	"time"
)

func TestBudgetNilAllowsEverything(t *testing.T) {
	var b *Budget
	if got := b.Acquire(5); got != 5 {
		t.Errorf("nil budget Acquire(5) = %d", got)
	}
	b.Release(5) // must not panic
	if b.Available() <= 0 {
		t.Error("nil budget should report unlimited availability")
	}
}

func TestBudgetAcquireRelease(t *testing.T) {
	b := NewBudget(0, 3)
	if got := b.Acquire(2); got != 2 {
		t.Fatalf("Acquire(2) = %d", got)
	}
	if got := b.Acquire(2); got != 1 {
		t.Fatalf("partial Acquire(2) = %d, want 1", got)
	}
	if got := b.Acquire(1); got != 0 {
		t.Fatalf("empty Acquire(1) = %d, want 0", got)
	}
	b.Release(3)
	if got := b.Available(); got != 3 {
		t.Fatalf("Available = %d after release, want 3", got)
	}
}

func TestBudgetReleaseCapsAtBurst(t *testing.T) {
	b := NewBudget(0, 2)
	b.Release(100)
	if got := b.Available(); got != 2 {
		t.Errorf("Available = %d, want capped at burst 2", got)
	}
}

func TestBudgetRefillOverTime(t *testing.T) {
	b := NewBudget(10, 10) // 10 tokens/sec
	var now time.Time
	base := time.Unix(1000, 0)
	now = base
	b.setClock(func() time.Time { return now })
	if got := b.Acquire(10); got != 10 {
		t.Fatalf("drain: %d", got)
	}
	if got := b.Acquire(1); got != 0 {
		t.Fatalf("should be empty, got %d", got)
	}
	now = base.Add(500 * time.Millisecond) // +5 tokens
	if got := b.Acquire(10); got != 5 {
		t.Errorf("after 0.5s refill Acquire(10) = %d, want 5", got)
	}
	now = base.Add(10 * time.Second)
	if got := b.Available(); got != 10 {
		t.Errorf("long refill Available = %d, want burst cap 10", got)
	}
}

func TestBudgetZeroAndNegativeAcquire(t *testing.T) {
	b := NewBudget(1, 1)
	if got := b.Acquire(0); got != 0 {
		t.Errorf("Acquire(0) = %d", got)
	}
	if got := b.Acquire(-3); got != 0 {
		t.Errorf("Acquire(-3) = %d", got)
	}
}

func TestNewBudgetValidation(t *testing.T) {
	for _, tc := range []struct{ rate, burst float64 }{{-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBudget(%g, %g) did not panic", tc.rate, tc.burst)
				}
			}()
			NewBudget(tc.rate, tc.burst)
		}()
	}
}

func TestBudgetConcurrentAccounting(t *testing.T) {
	b := NewBudget(0, 100)
	var wg sync.WaitGroup
	granted := make(chan int, 200)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			granted <- b.Acquire(1)
		}()
	}
	wg.Wait()
	close(granted)
	total := 0
	for g := range granted {
		total += g
	}
	if total != 100 {
		t.Errorf("granted %d tokens total, want exactly burst 100", total)
	}
}
