package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file implements the load-aware redundancy governor. The paper's
// central trade-off is that redundant copies buy latency only while the
// added load keeps server utilization below a threshold (25-50% base
// load depending on service-time variance; exactly 1/3 for exponential
// service) — above it, redundancy *hurts*, because the extra copies
// queue behind each other. A Governor measures the offered load a
// replica set actually experiences and GovernedStrategy (built with
// LoadAware) sheds redundant copies, degrading fan-out toward 1, when
// the measurement crosses the threshold.

// DefaultGovernorThreshold is the gate-on utilization when none is
// configured, in in-flight copies per replica. By Little's law an FCFS
// replica at realized utilization rho holds about rho/(1-rho) copies in
// flight (queued + serving); the paper's exponential-service threshold —
// duplication stops paying once base load exceeds 1/3, i.e. realized
// load 2/3 — corresponds to (2/3)/(1/3) = 2 copies in flight.
const DefaultGovernorThreshold = 2.0

// Governor measures a replica set's offered load and decides when
// redundancy may be afforded. It tracks the copies currently in flight
// across the group (incremented at launch, decremented when a copy
// completes — or is cancelled and reclaimed, which is what makes
// cancellation capacity the governor can re-spend) and folds one
// utilization sample per operation, in-flight copies per replica, into
// an EWMA using the same lock-free LatDigest machinery that backs
// per-replica latency estimates. All methods are safe for concurrent
// use; a Governor may be shared by several groups to govern their
// combined load.
type Governor struct {
	threshold float64 // gate redundancy on at this utilization
	low       float64 // gate off again only below this (hysteresis)

	inflight atomic.Int64
	capacity atomic.Int64
	// load is the EWMA + histogram of utilization samples, stored in
	// fixed-point (govUtilScale = utilization 1.0) so the digest's
	// nanosecond-oriented bins keep resolution.
	load  LatDigest
	gated atomic.Bool
	flips atomic.Int64
	// Background traffic-class accounting: AllowBackground grants and
	// deferrals (see that method for the policy).
	bgAllowed  atomic.Int64
	bgDeferred atomic.Int64
}

// govUtilScale is the fixed-point scale for utilization samples in the
// digest: utilization 1.0 is stored as 1<<20.
const govUtilScale = float64(1 << 20)

// NewGovernor creates a Governor that withholds redundancy while
// measured utilization (in-flight copies per replica) is at or above
// threshold, re-enabling it only once utilization falls to
// threshold - hysteresis — the hysteresis band prevents flapping, since
// the act of shedding copies itself lowers the measurement. A
// non-positive threshold means DefaultGovernorThreshold; a hysteresis
// outside (0, threshold) defaults to threshold/4.
func NewGovernor(threshold, hysteresis float64) *Governor {
	if threshold <= 0 {
		threshold = DefaultGovernorThreshold
	}
	if hysteresis <= 0 || hysteresis >= threshold {
		hysteresis = threshold / 4
	}
	return &Governor{threshold: threshold, low: threshold - hysteresis}
}

// Observe folds one utilization sample (offered load, in whatever unit
// the thresholds use; the group integration uses in-flight copies per
// replica) into the governor's EWMA. The group call path samples
// automatically; external drivers — simulations, load balancers with
// their own utilization signal — call it directly.
func (g *Governor) Observe(utilization float64) {
	if utilization < 0 {
		utilization = 0
	}
	g.load.observe(utilization * govUtilScale)
}

// sample folds the current in-flight-per-replica utilization, called
// once per Do with the group's current size.
func (g *Governor) sample(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	g.capacity.Store(int64(capacity))
	g.Observe(float64(g.inflight.Load()) / float64(capacity))
}

// copyStarted and copyDone bracket one copy's flight. copyDone runs when
// the copy completes or observes cancellation, so cancelled losers
// return their capacity to the governor immediately.
func (g *Governor) copyStarted() { g.inflight.Add(1) }
func (g *Governor) copyDone()    { g.inflight.Add(-1) }

// Allow reports how many of k desired copies the measured load affords:
// k below the hysteresis band, degrading toward 1 as utilization climbs
// through it, and exactly 1 once the threshold is crossed — until
// utilization falls back below the band. With no samples yet (cold
// start) redundancy is allowed in full.
func (g *Governor) Allow(k int) int {
	if k <= 1 {
		return k
	}
	v, ok := g.load.value()
	if !ok {
		return k
	}
	util := v / govUtilScale
	if g.gated.Load() {
		if util <= g.low {
			g.gated.Store(false)
			g.flips.Add(1)
			return k
		}
		return 1
	}
	if util >= g.threshold {
		g.gated.Store(true)
		g.flips.Add(1)
		return 1
	}
	if k > 2 && util > g.low {
		// Inside the band, shed extra copies linearly before the hard
		// gate: large fan-outs come down through 2 rather than cliffing
		// from k to 1.
		frac := (g.threshold - util) / (g.threshold - g.low)
		allowed := 1 + int(frac*float64(k-1)+0.5)
		if allowed < 2 {
			allowed = 2
		}
		if allowed > k {
			allowed = k
		}
		return allowed
	}
	return k
}

// AllowBackground reports whether the measured load affords a unit of
// background work — anti-entropy migration batches, read-repair pushes,
// hint replays — right now. Where Allow degrades *foreground* redundancy
// only past the gate-on threshold, background traffic is the first thing
// to yield: it proceeds only while utilization sits below the low-water
// mark of the hysteresis band (foreground redundancy is at full fan-out
// there, with headroom to spare), and defers everywhere above it. With
// no samples yet (cold start, or a governor fed only by the background
// worker itself) background work is allowed — an idle system must still
// converge. Callers poll with backoff rather than block.
func (g *Governor) AllowBackground() bool {
	v, ok := g.load.value()
	if !ok {
		g.bgAllowed.Add(1)
		return true
	}
	if v/govUtilScale < g.low {
		g.bgAllowed.Add(1)
		return true
	}
	g.bgDeferred.Add(1)
	return false
}

// Utilization returns the EWMA utilization estimate and whether any
// sample has been observed.
func (g *Governor) Utilization() (float64, bool) {
	v, ok := g.load.value()
	return v / govUtilScale, ok
}

// Gated reports whether the governor is currently withholding
// redundancy.
func (g *Governor) Gated() bool { return g.gated.Load() }

// GovernorStats is a point-in-time view of a Governor.
type GovernorStats struct {
	// Utilization is the EWMA of observed utilization (in-flight copies
	// per replica on the group path); Observed is false before any
	// sample.
	Utilization float64
	Observed    bool
	// Threshold and Low bound the hysteresis band: redundancy gates off
	// at Threshold and back on at Low.
	Threshold, Low float64
	// InFlight is the number of copies currently in flight; Capacity the
	// replica count of the last sampled group.
	InFlight, Capacity int64
	// Gated reports whether redundancy is currently withheld; Flips
	// counts gate transitions (a flapping governor flips often).
	Gated bool
	Flips int64
	// Samples counts utilization observations.
	Samples int64
	// BackgroundAllowed and BackgroundDeferred count AllowBackground
	// outcomes: how often background work (migration, repair) was let
	// through versus told to yield to foreground load.
	BackgroundAllowed, BackgroundDeferred int64
}

// Stats returns a snapshot of the governor's state.
func (g *Governor) Stats() GovernorStats {
	util, ok := g.Utilization()
	return GovernorStats{
		Utilization:        util,
		Observed:           ok,
		Threshold:          g.threshold,
		Low:                g.low,
		InFlight:           g.inflight.Load(),
		Capacity:           g.capacity.Load(),
		Gated:              g.gated.Load(),
		Flips:              g.flips.Load(),
		Samples:            g.load.Count(),
		BackgroundAllowed:  g.bgAllowed.Load(),
		BackgroundDeferred: g.bgDeferred.Load(),
	}
}

// GovernedStrategy wraps an inner Strategy with a Governor: the inner
// strategy decides how to replicate, the governor decides whether the
// measured load affords it, degrading fan-out toward 1 as utilization
// crosses the threshold. Build one with LoadAware or LoadAwareWith, and
// install or swap it like any other Strategy (SetStrategy publishes it
// atomically through the group's copy-on-write snapshot; per-call
// WithStrategyOverride composes too). The wrapper is immutable after
// construction and safe for concurrent use.
type GovernedStrategy struct {
	inner Strategy
	gov   *Governor
}

// LoadAware wraps inner with a fresh Governor gating at threshold
// (in-flight copies per replica; non-positive means
// DefaultGovernorThreshold, with the default hysteresis).
func LoadAware(inner Strategy, threshold float64) *GovernedStrategy {
	return LoadAwareWith(inner, NewGovernor(threshold, 0))
}

// LoadAwareWith wraps inner with an existing Governor, so several groups
// can share one load measurement, or the caller can pick a custom
// hysteresis via NewGovernor.
func LoadAwareWith(inner Strategy, gov *Governor) *GovernedStrategy {
	if inner == nil {
		inner = Fixed{Copies: 2}
	}
	if gov == nil {
		gov = NewGovernor(0, 0)
	}
	return &GovernedStrategy{inner: inner, gov: gov}
}

// Governor returns the wrapper's governor, for stats and for external
// utilization feeds.
func (s *GovernedStrategy) Governor() *Governor { return s.gov }

// Inner returns the wrapped strategy.
func (s *GovernedStrategy) Inner() Strategy { return s.inner }

// Fanout implements Strategy by reporting the inner strategy's fan-out.
// The governor's clip is NOT applied here: a group applies Allow to the
// group-clamped fan-out at call time (so FullReplicate's "all replicas"
// sentinel degrades from the real group size, not from the sentinel),
// and standalone drivers call Allow themselves.
func (s *GovernedStrategy) Fanout() (int, Selection) {
	return s.inner.Fanout()
}

// Schedule implements Strategy by delegating to the inner strategy.
func (s *GovernedStrategy) Schedule(d Digests) []time.Duration { return s.inner.Schedule(d) }

// ScheduleInto implements InlineScheduler by delegating to the inner
// strategy (through its own ScheduleInto when it has one), keeping the
// governed hot path allocation-free.
func (s *GovernedStrategy) ScheduleInto(d Digests, dst []time.Duration) []time.Duration {
	return strategyScheduleInto(s.inner, d, dst)
}

// String implements Strategy.
func (s *GovernedStrategy) String() string {
	return fmt.Sprintf("load-aware(%s, thr=%.3g)", s.inner.String(), s.gov.threshold)
}
