// Package core implements the paper's primary contribution as a reusable
// client library: initiate an operation on several diverse replicas
// concurrently (or after a hedging delay) and use the first result that
// completes, cancelling the rest.
//
// The package is re-exported at the module root as package redundancy;
// application code should import "redundancy" rather than this package.
//
// Design notes:
//
//   - Every way of performing an operation — First, Hedged, Quorum, All,
//     Group.Do with its per-call options, and the routed-subset
//     KeyedGroup.DoPicked behind internal/ring's consistent-hash
//     placement — is a thin layer over one request engine (call.go), so
//     completion rules, launch schedules, and the error taxonomy compose
//     instead of forking.
//   - Losing replicas are cancelled through context and their goroutines
//     always run to completion against a buffered channel, so a call never
//     leaks goroutines even when it returns early.
//   - Replication is useful precisely when the extra load is affordable
//     (§2 of the paper); Budget provides the affordability control, capping
//     the fraction of operations that may issue extra copies, in the spirit
//     of gRPC hedging throttles.
//   - Group adds ranked replica selection (the paper's DNS experiment ranks
//     resolvers by observed mean latency and replicates to the top k).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Replica is one way of performing an operation: typically one backend
// server, one network path, or one independently-failing resource. A
// Replica must honor ctx cancellation promptly; after the first sibling
// completes, the remaining replicas' contexts are cancelled.
type Replica[T any] func(ctx context.Context) (T, error)

// Result describes a completed redundant operation.
type Result[T any] struct {
	// Value is the winning replica's result: the first success (for a
	// quorum call, the quorum's fastest response).
	Value T
	// Index is the position (within the launched copies) of the winner.
	Index int
	// Latency is the time from the start of the operation (not of the
	// individual copy) to completion: the winning response, or for a
	// quorum call the quorum-th success.
	Latency time.Duration
	// Launched is how many copies were actually started.
	Launched int
	// Cancelled is how many launched copies were still in flight when the
	// operation completed and were cancelled through their derived
	// contexts — reclaimed capacity, counted separately from failures.
	// (Always zero for All, which runs every copy to completion.)
	Cancelled int
}

// ErrNoReplicas is returned when an operation is attempted with zero
// replicas.
var ErrNoReplicas = errors.New("redundancy: no replicas")

type indexed[T any] struct {
	val T
	err error
	idx int
	// hedge marks a wheel-armed hedge-deadline event rather than a copy
	// completion: idx is the copy the deadline was armed for, val and err
	// are meaningless. See frameHedgeFired in call.go.
	hedge bool
}

// First runs every replica concurrently and returns the first successful
// result, cancelling the others. If every replica fails, it returns the
// per-replica ReplicaErrors joined in completion order. First blocks until
// a winner emerges or all replicas fail; it does NOT wait for cancelled
// losers to finish.
//
// This is the paper's "initiate an operation multiple times, use the first
// result which completes" in its purest form (k-way full replication).
func First[T any](ctx context.Context, replicas ...Replica[T]) (Result[T], error) {
	return call(ctx, callSpec[T]{
		n: len(replicas),
		run: func(ctx context.Context, i int) (T, error) {
			return replicas[i](ctx)
		},
	})
}

// FirstValue is First without the metadata, for call sites that only need
// the value.
func FirstValue[T any](ctx context.Context, replicas ...Replica[T]) (T, error) {
	res, err := First(ctx, replicas...)
	return res.Value, err
}

// Hedged runs replicas with a staggered start: replica 0 immediately, and
// each subsequent replica only if no response has arrived delay after the
// previous launch. If an outstanding copy fails, the next copy is launched
// immediately. This is the "hedged request" variant of redundancy: most of
// the tail-latency benefit of full replication at a small fraction of the
// added load (only operations slower than delay incur extra copies).
//
// A non-positive delay launches every copy immediately — Hedged(ctx, 0,
// rs...) is First(ctx, rs...) — with no timer on the path.
func Hedged[T any](ctx context.Context, delay time.Duration, replicas ...Replica[T]) (Result[T], error) {
	sp := callSpec[T]{
		n: len(replicas),
		run: func(ctx context.Context, i int) (T, error) {
			return replicas[i](ctx)
		},
	}
	if delay > 0 {
		delays := make([]time.Duration, len(replicas))
		for i := range delays {
			delays[i] = delay
		}
		sp.delays = delays
	}
	return call(ctx, sp)
}

// HedgedSchedule is Hedged with an explicit per-copy delay schedule:
// replica i+1 launches delays[i+1] after replica i (delays[0] is ignored;
// the first copy always starts immediately). A non-positive entry launches
// its copy immediately, together with its predecessor — zero entries
// express full replication for a prefix of the schedule.
func HedgedSchedule[T any](ctx context.Context, delays []time.Duration, replicas ...Replica[T]) (Result[T], error) {
	if len(replicas) == 0 {
		var zero Result[T]
		return zero, ErrNoReplicas
	}
	if len(delays) != len(replicas) {
		var zero Result[T]
		return zero, fmt.Errorf("redundancy: %d delays for %d replicas", len(delays), len(replicas))
	}
	return call(ctx, callSpec[T]{
		n:      len(replicas),
		delays: delays,
		run: func(ctx context.Context, i int) (T, error) {
			return replicas[i](ctx)
		},
	})
}
