// Package core implements the paper's primary contribution as a reusable
// client library: initiate an operation on several diverse replicas
// concurrently (or after a hedging delay) and use the first result that
// completes, cancelling the rest.
//
// The package is re-exported at the module root as package redundancy;
// application code should import "redundancy" rather than this package.
//
// Design notes:
//
//   - Losing replicas are cancelled through context and their goroutines
//     always run to completion against a buffered channel, so a call never
//     leaks goroutines even when it returns early.
//   - Replication is useful precisely when the extra load is affordable
//     (§2 of the paper); Budget provides the affordability control, capping
//     the fraction of operations that may issue extra copies, in the spirit
//     of gRPC hedging throttles.
//   - Group adds ranked replica selection (the paper's DNS experiment ranks
//     resolvers by observed mean latency and replicates to the top k).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Replica is one way of performing an operation: typically one backend
// server, one network path, or one independently-failing resource. A
// Replica must honor ctx cancellation promptly; after the first sibling
// completes, the remaining replicas' contexts are cancelled.
type Replica[T any] func(ctx context.Context) (T, error)

// Result describes a completed redundant operation.
type Result[T any] struct {
	// Value is the winning replica's result.
	Value T
	// Index is the position (within the launched copies) of the winner.
	Index int
	// Latency is the time from the start of the operation (not of the
	// individual copy) to the winning response.
	Latency time.Duration
	// Launched is how many copies were actually started.
	Launched int
}

// ErrNoReplicas is returned when an operation is attempted with zero
// replicas.
var ErrNoReplicas = errors.New("redundancy: no replicas")

type indexed[T any] struct {
	val T
	err error
	idx int
}

// First runs every replica concurrently and returns the first successful
// result, cancelling the others. If every replica fails, it returns the
// joined errors in launch order. First blocks until a winner emerges or all
// replicas fail; it does NOT wait for cancelled losers to finish.
//
// This is the paper's "initiate an operation multiple times, use the first
// result which completes" in its purest form (k-way full replication).
func First[T any](ctx context.Context, replicas ...Replica[T]) (Result[T], error) {
	return race(ctx, nil, len(replicas), func(ctx context.Context, i int) (T, error) {
		return replicas[i](ctx)
	})
}

// FirstValue is First without the metadata, for call sites that only need
// the value.
func FirstValue[T any](ctx context.Context, replicas ...Replica[T]) (T, error) {
	res, err := First(ctx, replicas...)
	return res.Value, err
}

// race launches n copies of call (all immediately if delays is nil,
// otherwise copy i after delays[i]) and returns the first success. call
// receives the copy's launch index; Group passes an indexer over its
// picked members so the hot path needs no per-copy wrapper closures.
func race[T any](ctx context.Context, delays []time.Duration, n int, call func(ctx context.Context, i int) (T, error)) (Result[T], error) {
	var zero Result[T]
	if n == 0 {
		return zero, ErrNoReplicas
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffered so losers can always deliver and exit: no goroutine leaks.
	results := make(chan indexed[T], n)
	launch := func(i int) {
		go func() {
			v, err := call(ctx, i)
			results <- indexed[T]{val: v, err: err, idx: i}
		}()
	}

	launched := 0
	if delays == nil {
		for i := 0; i < n; i++ {
			launch(i)
		}
		launched = n
	} else {
		launch(0)
		launched = 1
	}

	var errs []error
	done := 0
	var timer *time.Timer
	var timerC <-chan time.Time
	if delays != nil && launched < n {
		timer = time.NewTimer(delays[launched])
		timerC = timer.C
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		select {
		case r := <-results:
			done++
			if r.err == nil {
				return Result[T]{
					Value:    r.val,
					Index:    r.idx,
					Latency:  time.Since(start),
					Launched: launched,
				}, nil
			}
			errs = append(errs, fmt.Errorf("replica %d: %w", r.idx, r.err))
			if done == launched && launched == n {
				// Even on failure, report how many copies ran: budget
				// accounting and observers need the real fan-out.
				return Result[T]{Launched: launched}, errors.Join(errs...)
			}
			if done == launched && launched < n {
				// Every outstanding copy failed; hedge immediately rather
				// than waiting out the delay.
				if timer != nil {
					timer.Stop()
				}
				launch(launched)
				launched++
				if launched < n {
					timer = time.NewTimer(delays[launched])
					timerC = timer.C
				} else {
					timerC = nil
				}
			}
		case <-timerC:
			launch(launched)
			launched++
			if launched < n {
				timer = time.NewTimer(delays[launched])
				timerC = timer.C
			} else {
				timerC = nil
			}
		case <-ctx.Done():
			return Result[T]{Launched: launched}, ctx.Err()
		}
	}
}

// Hedged runs replicas with a staggered start: replica 0 immediately, and
// each subsequent replica only if no response has arrived delay after the
// previous launch. If an outstanding copy fails, the next copy is launched
// immediately. This is the "hedged request" variant of redundancy: most of
// the tail-latency benefit of full replication at a small fraction of the
// added load (only operations slower than delay incur extra copies).
func Hedged[T any](ctx context.Context, delay time.Duration, replicas ...Replica[T]) (Result[T], error) {
	if len(replicas) == 0 {
		var zero Result[T]
		return zero, ErrNoReplicas
	}
	delays := make([]time.Duration, len(replicas))
	for i := range delays {
		delays[i] = delay
	}
	return race(ctx, delays, len(replicas), func(ctx context.Context, i int) (T, error) {
		return replicas[i](ctx)
	})
}

// HedgedSchedule is Hedged with an explicit per-copy delay schedule:
// replica i+1 launches delays[i+1] after replica i (delays[0] is ignored;
// the first copy always starts immediately).
func HedgedSchedule[T any](ctx context.Context, delays []time.Duration, replicas ...Replica[T]) (Result[T], error) {
	if len(replicas) == 0 {
		var zero Result[T]
		return zero, ErrNoReplicas
	}
	if len(delays) != len(replicas) {
		var zero Result[T]
		return zero, fmt.Errorf("redundancy: %d delays for %d replicas", len(delays), len(replicas))
	}
	return race(ctx, delays, len(replicas), func(ctx context.Context, i int) (T, error) {
		return replicas[i](ctx)
	})
}
