package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

func TestFirstReturnsFastest(t *testing.T) {
	res, err := First(context.Background(),
		coretest.Sleeper("slow", 200*time.Millisecond),
		coretest.Sleeper("fast", 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast" || res.Index != 1 {
		t.Errorf("got %q from index %d, want fast/1", res.Value, res.Index)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2", res.Launched)
	}
	if res.Latency > 150*time.Millisecond {
		t.Errorf("did not return at first response: latency %v", res.Latency)
	}
}

func TestFirstCancelsLosers(t *testing.T) {
	// The loser blocks on an unreleased gate, so it can only finish by
	// observing its context's cancellation — reported through a second
	// gate the test waits on, with no polling.
	cancelled := coretest.NewGate()
	loser := coretest.CancelReporting(cancelled, coretest.Blocked("too slow", coretest.NewGate()))
	res, err := First(context.Background(), coretest.Instant("win"), loser)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", res.Cancelled)
	}
	select {
	case <-cancelled.C():
	case <-time.After(2 * time.Second):
		t.Error("loser was not cancelled after winner returned")
	}
}

func TestFirstSkipsFailuresAndUsesSlowerSuccess(t *testing.T) {
	res, err := First(context.Background(),
		coretest.Failer[string](errors.New("boom"), time.Millisecond),
		coretest.Sleeper("ok", 20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "ok" {
		t.Errorf("got %q, want ok", res.Value)
	}
}

func TestFirstAllFailJoinsErrors(t *testing.T) {
	e1, e2 := errors.New("first bad"), errors.New("second bad")
	_, err := First(context.Background(),
		coretest.Failer[int](e1, time.Millisecond),
		coretest.Failer[int](e2, 2*time.Millisecond),
	)
	if err == nil {
		t.Fatal("want error when all replicas fail")
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Errorf("joined error missing causes: %v", err)
	}
	if !strings.Contains(err.Error(), "replica 0") || !strings.Contains(err.Error(), "replica 1") {
		t.Errorf("error should identify replicas: %v", err)
	}
}

func TestFirstNoReplicas(t *testing.T) {
	_, err := First[int](context.Background())
	if !errors.Is(err, ErrNoReplicas) {
		t.Errorf("got %v, want ErrNoReplicas", err)
	}
}

func TestFirstParentContextCancel(t *testing.T) {
	// Cancel once the replica is demonstrably running (it signals via the
	// started gate and then blocks forever): no sleep-guessed delay.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := coretest.NewGate()
	never := coretest.NewGate()
	rep := func(ctx context.Context) (string, error) {
		started.Release()
		return coretest.Blocked("never", never)(ctx)
	}
	go func() {
		<-started.C()
		cancel()
	}()
	start := time.Now()
	_, err := First(ctx, rep)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancel did not unblock First promptly")
	}
}

func TestFirstValue(t *testing.T) {
	v, err := FirstValue(context.Background(), coretest.Sleeper(42, time.Millisecond))
	if err != nil || v != 42 {
		t.Errorf("FirstValue = (%v, %v), want (42, nil)", v, err)
	}
}

func TestFirstNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_, err := First(context.Background(),
			coretest.Sleeper("fast", time.Millisecond),
			coretest.Sleeper("slow", 30*time.Millisecond),
			coretest.Failer[string](errors.New("x"), 10*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Give losers time to observe cancellation and exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Errorf("goroutines grew from %d to %d: leak", before, after)
	}
}

func TestHedgedSingleCopyWhenFast(t *testing.T) {
	// An instant primary against a generous hedge delay: the hedge (which
	// would block forever) must never launch.
	var launches atomic.Int32
	res, err := Hedged(context.Background(), 100*time.Millisecond,
		coretest.Counting(&launches, coretest.Instant("primary")),
		coretest.Counting(&launches, coretest.Blocked("hedge", coretest.NewGate())),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "primary" {
		t.Errorf("got %q, want primary", res.Value)
	}
	if n := launches.Load(); n != 1 {
		t.Errorf("launched %d copies, want 1 (hedge not needed)", n)
	}
	if res.Launched != 1 {
		t.Errorf("Launched = %d, want 1", res.Launched)
	}
}

func TestHedgedLaunchesSecondWhenSlow(t *testing.T) {
	// The primary blocks forever, so only the hedge can win — and it can
	// only launch after the hedge delay expires.
	res, err := Hedged(context.Background(), 10*time.Millisecond,
		coretest.Blocked("slow-primary", coretest.NewGate()),
		coretest.Instant("hedge"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "hedge" || res.Index != 1 {
		t.Errorf("got %q from %d, want hedge/1", res.Value, res.Index)
	}
	if res.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1 (the blocked primary)", res.Cancelled)
	}
}

func TestHedgedImmediateOnFailure(t *testing.T) {
	// If the primary fails fast, the hedge launches immediately rather
	// than waiting out the delay.
	start := time.Now()
	res, err := Hedged(context.Background(), time.Hour,
		coretest.Fail[string](errors.New("down")),
		coretest.Instant("backup"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "backup" {
		t.Errorf("got %q, want backup", res.Value)
	}
	if time.Since(start) > time.Second {
		t.Error("hedge waited for delay after primary failure")
	}
}

func TestHedgedAllFail(t *testing.T) {
	_, err := Hedged(context.Background(), time.Millisecond,
		coretest.Fail[int](errors.New("a")),
		coretest.Fail[int](errors.New("b")),
	)
	if err == nil || !strings.Contains(err.Error(), "a") || !strings.Contains(err.Error(), "b") {
		t.Errorf("want joined errors, got %v", err)
	}
}

func TestHedgedScheduleLengthMismatch(t *testing.T) {
	// The public one-shot API is strict: a schedule that does not match
	// the replica slice is a caller bug and must be reported, not
	// silently reinterpreted. (Group strategies, by contrast, have their
	// schedules normalized — see TestStrategyScheduleNormalized.)
	fast := func(ctx context.Context) (int, error) { return 1, nil }

	// Shorter than the replica slice.
	if _, err := HedgedSchedule(context.Background(), []time.Duration{0},
		coretest.Sleeper(1, time.Millisecond), coretest.Sleeper(2, time.Millisecond)); err == nil {
		t.Error("short schedule accepted")
	}
	// Longer than the replica slice.
	if _, err := HedgedSchedule(context.Background(),
		[]time.Duration{0, time.Millisecond, time.Millisecond}, fast); err == nil {
		t.Error("long schedule accepted")
	}
	// Zero-length schedule with replicas.
	if _, err := HedgedSchedule(context.Background(), nil, fast); err == nil {
		t.Error("empty schedule accepted for one replica")
	}
	// Zero replicas win over a zero-length schedule: ErrNoReplicas, not
	// a length complaint.
	if _, err := HedgedSchedule[int](context.Background(), nil); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("no replicas + empty schedule: got %v, want ErrNoReplicas", err)
	}
	// Zero replicas with a non-empty schedule is still ErrNoReplicas.
	if _, err := HedgedSchedule[int](context.Background(),
		[]time.Duration{0}); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("no replicas + schedule: got %v, want ErrNoReplicas", err)
	}
	// A matching schedule still works with a single replica.
	res, err := HedgedSchedule(context.Background(), []time.Duration{0}, fast)
	if err != nil || res.Value != 1 || res.Launched != 1 {
		t.Errorf("single replica schedule: %+v, %v", res, err)
	}
}

func TestHedgedScheduleStaggers(t *testing.T) {
	var order []int
	mu := newChanLock()
	never := coretest.NewGate()
	mk := func(i int, inner func(context.Context) (int, error)) Replica[int] {
		return func(ctx context.Context) (int, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return inner(ctx)
		}
	}
	res, err := HedgedSchedule(context.Background(),
		[]time.Duration{0, 5 * time.Millisecond, 5 * time.Millisecond},
		mk(0, coretest.Blocked(0, never)), mk(1, coretest.Blocked(1, never)), mk(2, coretest.Instant(2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Errorf("got %d, want 2", res.Value)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("launch order %v, want [0 1 2]", order)
	}
}

// chanLock is a tiny mutex built on a channel so this test file has no
// sync import beyond atomic. The channel must be created before the lock
// is shared (lazy creation inside Lock would itself race).
type chanLock struct{ ch chan struct{} }

func newChanLock() *chanLock { return &chanLock{ch: make(chan struct{}, 1)} }

func (l *chanLock) Lock()   { l.ch <- struct{}{} }
func (l *chanLock) Unlock() { <-l.ch }

func TestFirstManyReplicas(t *testing.T) {
	// 63 replicas block forever; only replica 17 can win — no race
	// between 64 wall-clock timers.
	never := coretest.NewGate()
	reps := make([]Replica[int], 64)
	for i := range reps {
		reps[i] = coretest.Blocked(i, never)
	}
	reps[17] = coretest.Instant(17)
	res, err := First(context.Background(), reps...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 17 {
		t.Errorf("winner %d, want 17", res.Value)
	}
	if res.Cancelled != 63 {
		t.Errorf("Cancelled = %d, want 63", res.Cancelled)
	}
}

func TestResultLatencyMeasured(t *testing.T) {
	res, err := First(context.Background(), coretest.Sleeper("x", 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < 20*time.Millisecond || res.Latency > 500*time.Millisecond {
		t.Errorf("latency %v implausible for 30ms replica", res.Latency)
	}
}

func ExampleFirst() {
	ctx := context.Background()
	res, err := First(ctx,
		func(ctx context.Context) (string, error) {
			time.Sleep(50 * time.Millisecond)
			return "slow server", nil
		},
		func(ctx context.Context) (string, error) {
			return "fast server", nil
		},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Value)
	// Output: fast server
}
