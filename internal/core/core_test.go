package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sleeper returns a replica that returns v after d, or ctx.Err() if
// cancelled first.
func sleeper[T any](v T, d time.Duration) Replica[T] {
	return func(ctx context.Context) (T, error) {
		select {
		case <-time.After(d):
			return v, nil
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

func failer[T any](err error, d time.Duration) Replica[T] {
	return func(ctx context.Context) (T, error) {
		var zero T
		select {
		case <-time.After(d):
			return zero, err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

func TestFirstReturnsFastest(t *testing.T) {
	res, err := First(context.Background(),
		sleeper("slow", 200*time.Millisecond),
		sleeper("fast", 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast" || res.Index != 1 {
		t.Errorf("got %q from index %d, want fast/1", res.Value, res.Index)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2", res.Launched)
	}
	if res.Latency > 150*time.Millisecond {
		t.Errorf("did not return at first response: latency %v", res.Latency)
	}
}

func TestFirstCancelsLosers(t *testing.T) {
	var cancelled atomic.Bool
	loser := func(ctx context.Context) (string, error) {
		select {
		case <-ctx.Done():
			cancelled.Store(true)
			return "", ctx.Err()
		case <-time.After(5 * time.Second):
			return "too slow", nil
		}
	}
	_, err := First(context.Background(), sleeper("win", time.Millisecond), loser)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for !cancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !cancelled.Load() {
		t.Error("loser was not cancelled after winner returned")
	}
}

func TestFirstSkipsFailuresAndUsesSlowerSuccess(t *testing.T) {
	res, err := First(context.Background(),
		failer[string](errors.New("boom"), time.Millisecond),
		sleeper("ok", 20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "ok" {
		t.Errorf("got %q, want ok", res.Value)
	}
}

func TestFirstAllFailJoinsErrors(t *testing.T) {
	e1, e2 := errors.New("first bad"), errors.New("second bad")
	_, err := First(context.Background(),
		failer[int](e1, time.Millisecond),
		failer[int](e2, 2*time.Millisecond),
	)
	if err == nil {
		t.Fatal("want error when all replicas fail")
	}
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Errorf("joined error missing causes: %v", err)
	}
	if !strings.Contains(err.Error(), "replica 0") || !strings.Contains(err.Error(), "replica 1") {
		t.Errorf("error should identify replicas: %v", err)
	}
}

func TestFirstNoReplicas(t *testing.T) {
	_, err := First[int](context.Background())
	if !errors.Is(err, ErrNoReplicas) {
		t.Errorf("got %v, want ErrNoReplicas", err)
	}
}

func TestFirstParentContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := First(ctx, sleeper("never", 5*time.Second))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancel did not unblock First promptly")
	}
}

func TestFirstValue(t *testing.T) {
	v, err := FirstValue(context.Background(), sleeper(42, time.Millisecond))
	if err != nil || v != 42 {
		t.Errorf("FirstValue = (%v, %v), want (42, nil)", v, err)
	}
}

func TestFirstNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_, err := First(context.Background(),
			sleeper("fast", time.Millisecond),
			sleeper("slow", 30*time.Millisecond),
			failer[string](errors.New("x"), 10*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Give losers time to observe cancellation and exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	after := runtime.NumGoroutine()
	if after > before+5 {
		t.Errorf("goroutines grew from %d to %d: leak", before, after)
	}
}

func TestHedgedSingleCopyWhenFast(t *testing.T) {
	var launches atomic.Int32
	mk := func(v string, d time.Duration) Replica[string] {
		inner := sleeper(v, d)
		return func(ctx context.Context) (string, error) {
			launches.Add(1)
			return inner(ctx)
		}
	}
	res, err := Hedged(context.Background(), 100*time.Millisecond,
		mk("primary", 5*time.Millisecond),
		mk("hedge", 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "primary" {
		t.Errorf("got %q, want primary", res.Value)
	}
	if n := launches.Load(); n != 1 {
		t.Errorf("launched %d copies, want 1 (hedge not needed)", n)
	}
	if res.Launched != 1 {
		t.Errorf("Launched = %d, want 1", res.Launched)
	}
}

func TestHedgedLaunchesSecondWhenSlow(t *testing.T) {
	res, err := Hedged(context.Background(), 10*time.Millisecond,
		sleeper("slow-primary", 500*time.Millisecond),
		sleeper("hedge", 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "hedge" || res.Index != 1 {
		t.Errorf("got %q from %d, want hedge/1", res.Value, res.Index)
	}
	if res.Latency > 200*time.Millisecond {
		t.Errorf("hedge too slow: %v", res.Latency)
	}
}

func TestHedgedImmediateOnFailure(t *testing.T) {
	// If the primary fails fast, the hedge launches immediately rather
	// than waiting out the delay.
	start := time.Now()
	res, err := Hedged(context.Background(), 5*time.Second,
		failer[string](errors.New("down"), time.Millisecond),
		sleeper("backup", time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "backup" {
		t.Errorf("got %q, want backup", res.Value)
	}
	if time.Since(start) > time.Second {
		t.Error("hedge waited for delay after primary failure")
	}
}

func TestHedgedAllFail(t *testing.T) {
	_, err := Hedged(context.Background(), time.Millisecond,
		failer[int](errors.New("a"), time.Millisecond),
		failer[int](errors.New("b"), time.Millisecond),
	)
	if err == nil || !strings.Contains(err.Error(), "a") || !strings.Contains(err.Error(), "b") {
		t.Errorf("want joined errors, got %v", err)
	}
}

func TestHedgedScheduleLengthMismatch(t *testing.T) {
	// The public one-shot API is strict: a schedule that does not match
	// the replica slice is a caller bug and must be reported, not
	// silently reinterpreted. (Group strategies, by contrast, have their
	// schedules normalized — see TestStrategyScheduleNormalized.)
	fast := func(ctx context.Context) (int, error) { return 1, nil }

	// Shorter than the replica slice.
	if _, err := HedgedSchedule(context.Background(), []time.Duration{0},
		sleeper(1, time.Millisecond), sleeper(2, time.Millisecond)); err == nil {
		t.Error("short schedule accepted")
	}
	// Longer than the replica slice.
	if _, err := HedgedSchedule(context.Background(),
		[]time.Duration{0, time.Millisecond, time.Millisecond}, fast); err == nil {
		t.Error("long schedule accepted")
	}
	// Zero-length schedule with replicas.
	if _, err := HedgedSchedule(context.Background(), nil, fast); err == nil {
		t.Error("empty schedule accepted for one replica")
	}
	// Zero replicas win over a zero-length schedule: ErrNoReplicas, not
	// a length complaint.
	if _, err := HedgedSchedule[int](context.Background(), nil); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("no replicas + empty schedule: got %v, want ErrNoReplicas", err)
	}
	// Zero replicas with a non-empty schedule is still ErrNoReplicas.
	if _, err := HedgedSchedule[int](context.Background(),
		[]time.Duration{0}); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("no replicas + schedule: got %v, want ErrNoReplicas", err)
	}
	// A matching schedule still works with a single replica.
	res, err := HedgedSchedule(context.Background(), []time.Duration{0}, fast)
	if err != nil || res.Value != 1 || res.Launched != 1 {
		t.Errorf("single replica schedule: %+v, %v", res, err)
	}
}

func TestHedgedScheduleStaggers(t *testing.T) {
	var order []int
	mu := newChanLock()
	mk := func(i int, d time.Duration) Replica[int] {
		return func(ctx context.Context) (int, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return sleeper(i, d)(ctx)
		}
	}
	res, err := HedgedSchedule(context.Background(),
		[]time.Duration{0, 5 * time.Millisecond, 5 * time.Millisecond},
		mk(0, time.Hour), mk(1, time.Hour), mk(2, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Errorf("got %d, want 2", res.Value)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("launch order %v, want [0 1 2]", order)
	}
}

// chanLock is a tiny mutex built on a channel so this test file has no
// sync import beyond atomic. The channel must be created before the lock
// is shared (lazy creation inside Lock would itself race).
type chanLock struct{ ch chan struct{} }

func newChanLock() *chanLock { return &chanLock{ch: make(chan struct{}, 1)} }

func (l *chanLock) Lock()   { l.ch <- struct{}{} }
func (l *chanLock) Unlock() { <-l.ch }

func TestFirstManyReplicas(t *testing.T) {
	reps := make([]Replica[int], 64)
	for i := range reps {
		d := time.Duration(i+1) * 10 * time.Millisecond
		if i == 17 {
			d = time.Millisecond
		}
		reps[i] = sleeper(i, d)
	}
	res, err := First(context.Background(), reps...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 17 {
		t.Errorf("winner %d, want 17", res.Value)
	}
}

func TestResultLatencyMeasured(t *testing.T) {
	res, err := First(context.Background(), sleeper("x", 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < 20*time.Millisecond || res.Latency > 500*time.Millisecond {
		t.Errorf("latency %v implausible for 30ms replica", res.Latency)
	}
}

func ExampleFirst() {
	ctx := context.Background()
	res, err := First(ctx,
		func(ctx context.Context) (string, error) {
			time.Sleep(50 * time.Millisecond)
			return "slow server", nil
		},
		func(ctx context.Context) (string, error) {
			return "fast server", nil
		},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Value)
	// Output: fast server
}
