package core

import (
	"sync"
	"time"
)

// Observation describes one completed redundant operation for metrics.
type Observation struct {
	// Winner is the name of the replica whose response was used; empty if
	// the operation failed.
	Winner string
	// Launched is how many copies were started.
	Launched int
	// Cancelled is how many launched copies were cancelled in flight when
	// the operation completed — reclaimed work, not failures.
	Cancelled int
	// Latency is the end-to-end operation latency.
	Latency time.Duration
	// Err is the operation's error, nil on success.
	Err error
	// Label is the call's traffic-class tag (set with WithLabel); empty
	// for unlabeled calls.
	Label string
}

// Observer receives per-operation metrics from a Group.
type Observer interface {
	Observe(Observation)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Observation)

// Observe implements Observer.
func (f ObserverFunc) Observe(o Observation) { f(o) }

// Counters is a ready-made Observer that aggregates wins per replica,
// total copies launched, successes, failures, and the full end-to-end
// latency distribution (a lock-free LatDigest, so quantiles are
// available without retaining per-operation samples). All methods are
// safe for concurrent use.
type Counters struct {
	mu        sync.Mutex
	wins      map[string]int64
	labels    map[string]*labelAgg
	ops       int64
	failures  int64
	launched  int64
	cancelled int64
	totalLat  time.Duration
	lat       LatDigest // successful-operation latencies
}

// labelAgg aggregates one traffic class (one WithLabel value).
type labelAgg struct {
	ops       int64
	failures  int64
	launched  int64
	cancelled int64
	lat       LatDigest // successful-operation latencies
}

// NewCounters returns an empty Counters.
func NewCounters() *Counters { return &Counters{wins: make(map[string]int64)} }

// Observe implements Observer.
func (c *Counters) Observe(o Observation) {
	c.mu.Lock()
	c.ops++
	c.launched += int64(o.Launched)
	c.cancelled += int64(o.Cancelled)
	var la *labelAgg
	if o.Label != "" {
		if c.labels == nil {
			c.labels = make(map[string]*labelAgg)
		}
		la = c.labels[o.Label]
		if la == nil {
			la = &labelAgg{}
			c.labels[o.Label] = la
		}
		la.ops++
		la.launched += int64(o.Launched)
		la.cancelled += int64(o.Cancelled)
	}
	if o.Err != nil {
		c.failures++
		if la != nil {
			la.failures++
		}
		c.mu.Unlock()
		return
	}
	c.wins[o.Winner]++
	c.totalLat += o.Latency
	c.mu.Unlock()
	c.lat.Observe(o.Latency)
	if la != nil {
		la.lat.Observe(o.Latency)
	}
}

// Ops returns the number of operations observed.
func (c *Counters) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Failures returns the number of failed operations.
func (c *Counters) Failures() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// Wins returns a copy of the per-replica win counts.
func (c *Counters) Wins() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.wins))
	for k, v := range c.wins {
		out[k] = v
	}
	return out
}

// CancelledCopies returns the total number of copies cancelled in flight
// — work the engine reclaimed when operations completed before every
// copy did. The realized extra load is (launched - cancelled) / ops
// copies per operation, not launched / ops, whenever replicas honor
// cancellation.
func (c *Counters) CancelledCopies() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// LaunchedCopies returns the total number of copies launched — the raw
// counter behind CopiesPerOp, exposed (like LabelStats.Launched) so
// controllers can difference two readings into a windowed extra-load
// measurement.
func (c *Counters) LaunchedCopies() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.launched
}

// CopiesPerOp returns the average number of copies launched per operation —
// the realized redundancy overhead (1.0 means no redundancy used).
func (c *Counters) CopiesPerOp() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ops == 0 {
		return 0
	}
	return float64(c.launched) / float64(c.ops)
}

// MeanLatency returns the mean latency of successful operations.
func (c *Counters) MeanLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	succ := c.ops - c.failures
	if succ == 0 {
		return 0
	}
	return c.totalLat / time.Duration(succ)
}

// LatencyQuantile estimates the p-th quantile of successful-operation
// latency (p in [0, 1]); ok is false when nothing has completed yet.
func (c *Counters) LatencyQuantile(p float64) (d time.Duration, ok bool) {
	return c.lat.Quantile(p)
}

// LatencyDigest exposes the aggregated latency distribution (mean,
// quantiles, count) of successful operations.
func (c *Counters) LatencyDigest() *LatDigest { return &c.lat }

// LabelStats is the aggregate for one traffic class (one WithLabel
// value) within a Counters.
type LabelStats struct {
	// Label is the class's tag.
	Label string
	// Ops and Failures count the class's operations.
	Ops, Failures int64
	// Launched counts the class's copies launched — the raw counter
	// behind CopiesPerOp, exposed so controllers can compute *windowed*
	// extra load from two successive snapshots (cumulative ratios hide
	// recent knob changes).
	Launched int64
	// Cancelled counts the class's copies cancelled in flight.
	Cancelled int64
	// CopiesPerOp is the class's realized redundancy overhead.
	CopiesPerOp float64
}

// Labels returns the per-class aggregates of every label observed so
// far, in unspecified order. Unlabeled operations are not included; they
// are visible only in the overall counters.
func (c *Counters) Labels() []LabelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LabelStats, 0, len(c.labels))
	for label, la := range c.labels {
		s := LabelStats{Label: label, Ops: la.ops, Failures: la.failures, Launched: la.launched, Cancelled: la.cancelled}
		if la.ops > 0 {
			s.CopiesPerOp = float64(la.launched) / float64(la.ops)
		}
		out = append(out, s)
	}
	return out
}

// LabelSnapshot returns the aggregate for one traffic class and whether
// the label has been observed at all — the single-label form of Labels,
// for control loops polling one class per tick.
func (c *Counters) LabelSnapshot(label string) (LabelStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	la := c.labels[label]
	if la == nil {
		return LabelStats{}, false
	}
	s := LabelStats{Label: label, Ops: la.ops, Failures: la.failures, Launched: la.launched, Cancelled: la.cancelled}
	if la.ops > 0 {
		s.CopiesPerOp = float64(la.launched) / float64(la.ops)
	}
	return s, true
}

// LabelOps returns the number of operations observed under label.
func (c *Counters) LabelOps(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if la := c.labels[label]; la != nil {
		return la.ops
	}
	return 0
}

// LabelLatencyQuantile estimates the p-th latency quantile (p in [0, 1])
// of successful operations under label; ok is false when the label has
// no completed operations.
func (c *Counters) LabelLatencyQuantile(label string, p float64) (d time.Duration, ok bool) {
	c.mu.Lock()
	la := c.labels[label]
	c.mu.Unlock()
	if la == nil {
		return 0, false
	}
	return la.lat.Quantile(p)
}

// LabelLatencyDigest exposes the latency distribution of successful
// operations under label, or nil if the label has not been observed.
func (c *Counters) LabelLatencyDigest(label string) *LatDigest {
	c.mu.Lock()
	defer c.mu.Unlock()
	if la := c.labels[label]; la != nil {
		return &la.lat
	}
	return nil
}
