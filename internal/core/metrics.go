package core

import (
	"sync"
	"time"
)

// Observation describes one completed redundant operation for metrics.
type Observation struct {
	// Winner is the name of the replica whose response was used; empty if
	// the operation failed.
	Winner string
	// Launched is how many copies were started.
	Launched int
	// Latency is the end-to-end operation latency.
	Latency time.Duration
	// Err is the operation's error, nil on success.
	Err error
}

// Observer receives per-operation metrics from a Group.
type Observer interface {
	Observe(Observation)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Observation)

// Observe implements Observer.
func (f ObserverFunc) Observe(o Observation) { f(o) }

// Counters is a ready-made Observer that aggregates wins per replica,
// total copies launched, successes, failures, and the full end-to-end
// latency distribution (a lock-free LatDigest, so quantiles are
// available without retaining per-operation samples). All methods are
// safe for concurrent use.
type Counters struct {
	mu       sync.Mutex
	wins     map[string]int64
	ops      int64
	failures int64
	launched int64
	totalLat time.Duration
	lat      LatDigest // successful-operation latencies
}

// NewCounters returns an empty Counters.
func NewCounters() *Counters { return &Counters{wins: make(map[string]int64)} }

// Observe implements Observer.
func (c *Counters) Observe(o Observation) {
	c.mu.Lock()
	c.ops++
	c.launched += int64(o.Launched)
	if o.Err != nil {
		c.failures++
		c.mu.Unlock()
		return
	}
	c.wins[o.Winner]++
	c.totalLat += o.Latency
	c.mu.Unlock()
	c.lat.Observe(o.Latency)
}

// Ops returns the number of operations observed.
func (c *Counters) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Failures returns the number of failed operations.
func (c *Counters) Failures() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failures
}

// Wins returns a copy of the per-replica win counts.
func (c *Counters) Wins() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.wins))
	for k, v := range c.wins {
		out[k] = v
	}
	return out
}

// CopiesPerOp returns the average number of copies launched per operation —
// the realized redundancy overhead (1.0 means no redundancy used).
func (c *Counters) CopiesPerOp() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ops == 0 {
		return 0
	}
	return float64(c.launched) / float64(c.ops)
}

// MeanLatency returns the mean latency of successful operations.
func (c *Counters) MeanLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	succ := c.ops - c.failures
	if succ == 0 {
		return 0
	}
	return c.totalLat / time.Duration(succ)
}

// LatencyQuantile estimates the p-th quantile of successful-operation
// latency (p in [0, 1]); ok is false when nothing has completed yet.
func (c *Counters) LatencyQuantile(p float64) (d time.Duration, ok bool) {
	return c.lat.Quantile(p)
}

// LatencyDigest exposes the aggregated latency distribution (mean,
// quantiles, count) of successful operations.
func (c *Counters) LatencyDigest() *LatDigest { return &c.lat }
