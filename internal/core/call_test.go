package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

// --- Zero / negative hedge delays launch immediately (no timer). ---

func TestHedgedZeroDelayLaunchesAllImmediately(t *testing.T) {
	// A zero delay means full replication: the hedge must win long before
	// any timer tick could have fired against the stuck primary.
	start := time.Now()
	res, err := Hedged(context.Background(), 0,
		coretest.Sleeper("stuck", time.Hour),
		coretest.Sleeper("hedge", time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "hedge" {
		t.Errorf("got %q, want hedge", res.Value)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (zero delay launches both)", res.Launched)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("zero-delay hedge took %v", elapsed)
	}
}

func TestHedgedNegativeDelayLaunchesAllImmediately(t *testing.T) {
	res, err := Hedged(context.Background(), -time.Second,
		coretest.Sleeper("stuck", time.Hour),
		coretest.Sleeper("hedge", time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "hedge" || res.Launched != 2 {
		t.Errorf("res = %+v, want hedge with 2 launched", res)
	}
}

func TestHedgedScheduleZeroPrefixLaunchesTogether(t *testing.T) {
	// Copies 0 and 1 share a zero delay and must launch together; copy 2
	// sits behind a delay no test should ever wait out.
	var launches atomic.Int32
	mk := func(v string, d time.Duration) Replica[string] {
		inner := coretest.Sleeper(v, d)
		return func(ctx context.Context) (string, error) {
			launches.Add(1)
			return inner(ctx)
		}
	}
	res, err := HedgedSchedule(context.Background(),
		[]time.Duration{0, 0, time.Hour},
		mk("stuck", time.Hour),
		mk("fast", time.Millisecond),
		mk("never", time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast" {
		t.Errorf("got %q, want fast", res.Value)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (zero-delay prefix, hour-delayed tail)", res.Launched)
	}
	if n := launches.Load(); n != 2 {
		t.Errorf("launched %d copies, want 2", n)
	}
}

func TestHedgedScheduleZeroDelayAfterTimer(t *testing.T) {
	// A zero entry behind a timed entry launches together with it once
	// the timer fires: schedule {_, 5ms, 0} must start copies 1 and 2 at
	// the same time.
	res, err := HedgedSchedule(context.Background(),
		[]time.Duration{0, 5 * time.Millisecond, 0},
		coretest.Sleeper("stuck", time.Hour),
		coretest.Sleeper("slow-hedge", time.Hour),
		coretest.Sleeper("fast-hedge", time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast-hedge" || res.Index != 2 {
		t.Errorf("got %q from %d, want fast-hedge/2", res.Value, res.Index)
	}
	if res.Launched != 3 {
		t.Errorf("Launched = %d, want 3", res.Launched)
	}
}

// --- Typed errors. ---

func TestFirstErrorsAreReplicaErrors(t *testing.T) {
	cause := errors.New("boom")
	_, err := First(context.Background(),
		coretest.Failer[int](cause, time.Millisecond),
		coretest.Failer[int](cause, time.Millisecond),
	)
	if err == nil {
		t.Fatal("want error")
	}
	var re ReplicaError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(ReplicaError) failed on %v", err)
	}
	if re.Name != "" || !errors.Is(re.Err, cause) {
		t.Errorf("ReplicaError = %+v", re)
	}
}

func TestGroupDoErrorsCarryReplicaNames(t *testing.T) {
	cause := errors.New("down")
	g := NewGroup[int](Policy{Copies: 2})
	g.Add("alpha", coretest.Failer[int](cause, time.Millisecond))
	g.Add("beta", coretest.Failer[int](cause, time.Millisecond))
	_, err := g.Do(context.Background())
	if err == nil {
		t.Fatal("want error")
	}
	var re ReplicaError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(ReplicaError) failed on %v", err)
	}
	if re.Name != "alpha" && re.Name != "beta" {
		t.Errorf("ReplicaError.Name = %q, want a replica name", re.Name)
	}
	if !errors.Is(err, cause) {
		t.Errorf("joined error lost the cause: %v", err)
	}
}

func TestReplicaErrorFormat(t *testing.T) {
	e := ReplicaError{Attempt: 3, Err: errors.New("x")}
	if got := e.Error(); got != "replica 3: x" {
		t.Errorf("anonymous format %q", got)
	}
	e.Name = "kv-1"
	if got := e.Error(); got != "replica kv-1 (copy 3): x" {
		t.Errorf("named format %q", got)
	}
}

// --- WithQuorum on the group path. ---

func TestGroupDoQuorumCollectsWins(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 3})
	g.Add("a", coretest.Sleeper("a", time.Millisecond))
	g.Add("b", coretest.Sleeper("b", 5*time.Millisecond))
	g.Add("c", coretest.Sleeper("c", 300*time.Millisecond))
	var outs []Outcome[string]
	res, err := g.Do(context.Background(), WithQuorum(2), WithCollectOutcomes(&outs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "a" {
		t.Errorf("winner %q, want the first success a", res.Value)
	}
	wins := 0
	for _, o := range outs {
		if o.Err == nil {
			wins++
		}
	}
	if wins != 2 {
		t.Errorf("collected %d wins, want 2", wins)
	}
	if res.Latency > 200*time.Millisecond {
		t.Errorf("quorum of 2 waited for the slow replica: %v", res.Latency)
	}
}

func TestGroupDoQuorumRaisesFanout(t *testing.T) {
	// The group's strategy says one copy; a quorum of 2 must still launch
	// two.
	g := NewGroup[int](Policy{Copies: 1})
	g.Add("a", coretest.Sleeper(1, time.Millisecond))
	g.Add("b", coretest.Sleeper(2, time.Millisecond))
	res, err := g.Do(context.Background(), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (quorum outranks fan-out)", res.Launched)
	}
}

func TestGroupDoQuorumUnreachable(t *testing.T) {
	cause := errors.New("down")
	g := NewGroup[int](Policy{Copies: 3})
	g.Add("a", coretest.Sleeper(1, time.Millisecond))
	g.Add("b", coretest.Failer[int](cause, time.Millisecond))
	g.Add("c", coretest.Failer[int](cause, time.Millisecond))
	_, err := g.Do(context.Background(), WithQuorum(2))
	if err == nil {
		t.Fatal("2-of-3 with 2 failures must error")
	}
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Errorf("errors.Is(ErrQuorumUnreachable) false: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("cause lost: %v", err)
	}
	var qe *QuorumError[int]
	if !errors.As(err, &qe) {
		t.Fatalf("errors.As(*QuorumError) failed on %v", err)
	}
	if qe.Need != 2 {
		t.Errorf("Need = %d, want 2", qe.Need)
	}
	if len(qe.Outcomes) == 0 {
		t.Error("QuorumError carries no partial outcomes")
	}
	var re ReplicaError
	if !errors.As(err, &re) || re.Name == "" {
		t.Errorf("per-replica detail missing: %+v", re)
	}
}

func TestGroupDoQuorumExceedsReplicas(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1})
	g.Add("a", coretest.Sleeper(1, time.Millisecond))
	_, err := g.Do(context.Background(), WithQuorum(2))
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Errorf("quorum 2 of 1: got %v, want ErrQuorumUnreachable", err)
	}
}

// --- Strategy override, fan-out cap, label, sink type check. ---

func TestGroupDoStrategyOverride(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1})
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	res, err := g.Do(context.Background(), WithStrategyOverride(FullReplicate{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 3 {
		t.Errorf("override to full replication launched %d, want 3", res.Launched)
	}
	// The group's installed strategy is untouched.
	if got := g.Stats().Policy.Copies; got != 1 {
		t.Errorf("group policy mutated: Copies = %d, want 1", got)
	}
	res, err = g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 {
		t.Errorf("subsequent plain Do launched %d, want 1", res.Launched)
	}
}

func TestGroupDoFanoutCap(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 3})
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	res, err := g.Do(context.Background(), WithFanoutCap(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 {
		t.Errorf("capped call launched %d, want 1", res.Launched)
	}
	// Quorum outranks the cap.
	res, err = g.Do(context.Background(), WithFanoutCap(1), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("quorum under cap launched %d, want 2", res.Launched)
	}
}

func TestGroupDoLabelReachesObserver(t *testing.T) {
	c := NewCounters()
	g := NewGroup[int](Policy{Copies: 1}, WithObserver[int](c))
	g.Add("a", coretest.Sleeper(1, time.Millisecond))
	for i := 0; i < 3; i++ {
		if _, err := g.Do(context.Background(), WithLabel("checkout")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Do(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := c.LabelOps("checkout"); got != 3 {
		t.Errorf("LabelOps(checkout) = %d, want 3", got)
	}
	if got := c.LabelOps("unknown"); got != 0 {
		t.Errorf("LabelOps(unknown) = %d, want 0", got)
	}
	if c.Ops() != 4 {
		t.Errorf("Ops = %d, want 4", c.Ops())
	}
	labels := c.Labels()
	if len(labels) != 1 || labels[0].Label != "checkout" || labels[0].Ops != 3 {
		t.Errorf("Labels() = %+v", labels)
	}
	if _, ok := c.LabelLatencyQuantile("checkout", 0.5); !ok {
		t.Error("labeled latency digest empty")
	}
	if d := c.LabelLatencyDigest("checkout"); d == nil || d.Count() != 3 {
		t.Errorf("LabelLatencyDigest = %v", d)
	}
}

func TestGroupDoCollectSinkTypeMismatch(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1})
	g.Add("a", coretest.Sleeper(1, time.Millisecond))
	var wrong []Outcome[string]
	_, err := g.Do(context.Background(), WithCollectOutcomes(&wrong))
	if err == nil {
		t.Fatal("mismatched sink type accepted")
	}
}

func TestGroupDoCollectSinkReset(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1})
	g.Add("a", coretest.Sleeper(1, time.Millisecond))
	outs := make([]Outcome[int], 5) // stale entries must not survive
	if _, err := g.Do(context.Background(), WithCollectOutcomes(&outs)); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Errorf("sink has %d entries, want 1 (reset before collection)", len(outs))
	}
}

// --- Budget accounting for quorum calls. ---

// scheduleStrategy is a test strategy with an explicit launch schedule.
type scheduleStrategy struct {
	copies int
	sched  []time.Duration
}

func (s scheduleStrategy) Fanout() (int, Selection) { return s.copies, SelectRanked }
func (s scheduleStrategy) Schedule(Digests) []time.Duration {
	return append([]time.Duration(nil), s.sched...)
}
func (s scheduleStrategy) String() string { return "test-schedule" }

func TestGroupDoQuorumBudgetRefundsUnlaunched(t *testing.T) {
	// 3 copies, quorum 2, schedule {0, 0, 1h}: the two quorum copies
	// launch immediately and succeed, so the third (the only budgeted
	// hedge) never launches and its token must come back — exactly once.
	b := NewBudget(0, 1)
	g := NewStrategyGroup[int](
		scheduleStrategy{copies: 3, sched: []time.Duration{0, 0, time.Hour}},
		WithBudget[int](b),
	)
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	res, err := g.Do(context.Background(), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Fatalf("Launched = %d, want 2 (third copy behind 1h delay)", res.Launched)
	}
	if got := b.Available(); got != 1 {
		t.Errorf("budget after refund = %d, want 1 (unlaunched hedge refunded once)", got)
	}
}

func TestGroupDoQuorumBudgetConsumedWhenLaunched(t *testing.T) {
	// Same shape, but the hedge launches immediately: its token is spent.
	b := NewBudget(0, 1)
	g := NewStrategyGroup[int](
		scheduleStrategy{copies: 3, sched: []time.Duration{0, 0, 0}},
		WithBudget[int](b),
	)
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	res, err := g.Do(context.Background(), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 3 {
		t.Fatalf("Launched = %d, want 3", res.Launched)
	}
	if got := b.Available(); got != 0 {
		t.Errorf("budget = %d, want 0 (launched hedge consumes its token)", got)
	}
}

func TestGroupDoQuorumBudgetExhaustedDegradesToQuorum(t *testing.T) {
	// An empty budget must not cut the fan-out below the quorum: the q
	// copies are mandatory, only hedges beyond them are budgeted.
	b := NewBudget(0, 1)
	if got := b.Acquire(1); got != 1 { // drain it
		t.Fatalf("drain: %d", got)
	}
	g := NewGroup[int](Policy{Copies: 3}, WithBudget[int](b))
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	res, err := g.Do(context.Background(), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (quorum copies exempt from budget)", res.Launched)
	}
}

func TestGroupDoQuorumBudgetAccountingUnderConcurrency(t *testing.T) {
	// Hammer a budgeted quorum group from many goroutines; afterwards the
	// bucket must hold exactly its burst again (every acquired token was
	// either consumed by a launched copy — and the rate refill is zero, so
	// consumption is visible — or refunded exactly once). All copies
	// launch immediately here, so tokens are consumed, and with rate 0 the
	// final Available is burst - consumed + refunded; using an all-zero
	// schedule every granted token is consumed, so we instead check the
	// invariant that Available never exceeds burst and never goes
	// negative.
	const burst = 4
	b := NewBudget(0, burst)
	g := NewStrategyGroup[int](
		scheduleStrategy{copies: 3, sched: []time.Duration{0, 0, time.Hour}},
		WithBudget[int](b),
	)
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Microsecond))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g.Do(context.Background(), WithQuorum(2))
			}
		}()
	}
	wg.Wait()
	// Every hedge sat behind a 1h delay and never launched, so every
	// granted token was refunded: the bucket must be exactly full.
	if got := b.Available(); got != burst {
		t.Errorf("budget after churn = %d, want %d (refund exactly once per call)", got, burst)
	}
}

// --- Option matrix under replica churn (run with -race). ---

func TestGroupDoOptionMatrixUnderChurn(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 2}, WithBudget[int](NewBudget(1e6, 64)))
	var names []string
	for i := 0; i < 6; i++ {
		i := i
		name := fmt.Sprintf("r%d", i)
		names = append(names, name)
		g.Add(name, coretest.Sleeper(i, time.Microsecond))
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := names[rng.Intn(len(names))]
			if g.Remove(name) {
				g.Add(name, coretest.Sleeper(0, time.Microsecond))
			}
			if i%7 == 0 {
				g.SetStrategy(AdaptiveHedge{Copies: 2})
			} else if i%5 == 0 {
				g.SetPolicy(Policy{Copies: 2})
			}
		}
	}()
	options := [][]CallOption{
		nil,
		{WithQuorum(2)},
		{WithStrategyOverride(FullReplicate{})},
		{WithStrategyOverride(Fixed{Copies: 3, HedgeDelay: time.Microsecond})},
		{WithQuorum(2), WithStrategyOverride(FullReplicate{}), WithLabel("matrix")},
		{WithFanoutCap(1)},
		{WithQuorum(3), WithFanoutCap(2)},
	}
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		workers.Add(1)
		go func() {
			defer workers.Done()
			var outs []Outcome[int]
			for i := 0; i < 200; i++ {
				opts := options[(i+w)%len(options)]
				if i%11 == 0 {
					opts = append(append([]CallOption(nil), opts...), WithCollectOutcomes(&outs))
				}
				_, err := g.Do(context.Background(), opts...)
				// Membership churn can make any quorum temporarily
				// unsatisfiable; only those errors are expected.
				if err != nil && !errors.Is(err, ErrQuorumUnreachable) && !errors.Is(err, ErrNoReplicas) {
					t.Errorf("Do: %v", err)
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	churn.Wait()
}

// --- Shim equivalence: the free functions against seed semantics. ---

func TestShimEquivalenceFirstMatchesGroupSingleCall(t *testing.T) {
	// First and a full-replicating Group.Do over the same replicas must
	// pick the same winner and launch the same number of copies.
	mk := func() []Replica[string] {
		return []Replica[string]{
			coretest.Sleeper("slow", 100*time.Millisecond),
			coretest.Sleeper("fast", time.Millisecond),
			coretest.Sleeper("mid", 50*time.Millisecond),
		}
	}
	res1, err := First(context.Background(), mk()...)
	if err != nil {
		t.Fatal(err)
	}
	g := NewStrategyGroup[string](FullReplicate{})
	for i, r := range mk() {
		g.Add(fmt.Sprintf("r%d", i), r)
	}
	res2, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Value != res2.Value || res1.Launched != res2.Launched {
		t.Errorf("First = %+v, Group.Do = %+v", res1, res2)
	}
}

func TestShimEquivalenceQuorumMatchesGroupWithQuorum(t *testing.T) {
	mkFree := func() []Replica[int] {
		return []Replica[int]{
			coretest.Sleeper(0, time.Millisecond),
			coretest.Sleeper(1, 5*time.Millisecond),
			coretest.Sleeper(2, 200*time.Millisecond),
		}
	}
	outs, err := Quorum(context.Background(), 2, mkFree()...)
	if err != nil {
		t.Fatal(err)
	}
	g := NewStrategyGroup[int](FullReplicate{})
	for i, r := range mkFree() {
		g.Add(fmt.Sprintf("r%d", i), r)
	}
	var gouts []Outcome[int]
	if _, err := g.Do(context.Background(), WithQuorum(2), WithCollectOutcomes(&gouts)); err != nil {
		t.Fatal(err)
	}
	wins := func(os []Outcome[int]) (vals []int) {
		for _, o := range os {
			if o.Err == nil {
				vals = append(vals, o.Value)
			}
		}
		// Completion order between the two fast sleepers is scheduler
		// timing, not semantics: compare the winner *sets*.
		sort.Ints(vals)
		return
	}
	w1, w2 := wins(outs), wins(gouts)
	if len(w1) != 2 || len(w2) != 2 || w1[0] != w2[0] || w1[1] != w2[1] {
		t.Errorf("free quorum wins %v, group quorum wins %v", w1, w2)
	}
}

func TestShimEquivalenceErrorTexts(t *testing.T) {
	// The historical error formats callers may have matched on.
	e1 := errors.New("first bad")
	_, err := First(context.Background(), coretest.Failer[int](e1, time.Millisecond))
	if err == nil || err.Error() != "replica 0: first bad" {
		t.Errorf("First error text %q", err)
	}
	if _, err := Quorum(context.Background(), 0, coretest.Sleeper(1, 0)); err == nil ||
		err.Error() != "redundancy: quorum 0 of 1 replicas" {
		t.Errorf("Quorum validation text %q", err)
	}
	// q > n is the unreachable taxonomy, like Group.Do.
	if _, err := Quorum(context.Background(), 3, coretest.Sleeper(1, 0), coretest.Sleeper(2, 0)); !errors.Is(err, ErrQuorumUnreachable) {
		t.Errorf("Quorum q > n: got %v, want ErrQuorumUnreachable", err)
	}
}

func TestQuorumUnreachableIsTyped(t *testing.T) {
	e := errors.New("down")
	_, err := Quorum(context.Background(), 2,
		coretest.Failer[int](e, time.Millisecond),
		coretest.Failer[int](e, time.Millisecond),
		coretest.Sleeper(1, 5*time.Millisecond),
	)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, ErrQuorumUnreachable) {
		t.Errorf("free Quorum failure not typed: %v", err)
	}
	var qe *QuorumError[int]
	if !errors.As(err, &qe) {
		t.Fatalf("errors.As(*QuorumError) failed: %v", err)
	}
	if len(qe.Outcomes) < 2 {
		t.Errorf("partial outcomes = %d, want >= 2", len(qe.Outcomes))
	}
}

func TestGroupDoQuorumCopiesLaunchImmediately(t *testing.T) {
	// The quorum copies are mandatory, so a hedging strategy must not
	// serialize them: under Fixed{HedgeDelay: 1h} a quorum-2 call still
	// launches both quorum copies at once and completes fast, while the
	// third (true hedge) copy stays behind its delay.
	g := NewGroup[int](Policy{Copies: 3, HedgeDelay: time.Hour})
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	start := time.Now()
	res, err := g.Do(context.Background(), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("Launched = %d, want 2 (quorum copies immediate, hedge delayed)", res.Launched)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("quorum copies were serialized behind the hedge delay: %v", elapsed)
	}
}

func TestQuorumErrorOutcomesSurviveSinkReuse(t *testing.T) {
	// Partial outcomes in a QuorumError must not alias the caller's
	// sink: a retry through the same sink resets and refills it.
	cause := errors.New("down")
	g := NewGroup[string](Policy{Copies: 2})
	g.Add("ok", coretest.Sleeper("salvage-me", time.Millisecond))
	g.Add("bad", coretest.Failer[string](cause, 5*time.Millisecond))
	var outs []Outcome[string]
	_, err := g.Do(context.Background(), WithQuorum(2), WithCollectOutcomes(&outs))
	var qe *QuorumError[string]
	if !errors.As(err, &qe) {
		t.Fatalf("want QuorumError, got %v", err)
	}
	saved := make([]Outcome[string], len(qe.Outcomes))
	copy(saved, qe.Outcomes)
	// Reuse the sink for another failing call.
	if _, err := g.Do(context.Background(), WithQuorum(2), WithCollectOutcomes(&outs)); err == nil {
		t.Fatal("second call should fail too")
	}
	if len(qe.Outcomes) != len(saved) {
		t.Fatalf("QuorumError outcomes changed length after sink reuse")
	}
	for i := range saved {
		if qe.Outcomes[i].Index != saved[i].Index || qe.Outcomes[i].Value != saved[i].Value {
			t.Errorf("outcome %d mutated by sink reuse: %+v vs %+v", i, qe.Outcomes[i], saved[i])
		}
	}
}

// --- The engine behind everything: no goroutine or timer leak on the
// quorum path with hedged schedules. ---

func TestGroupDoQuorumWithAdaptiveHedgeWarm(t *testing.T) {
	// Quorum composes with a hedging schedule: a warm AdaptiveHedge group
	// under WithQuorum(2) must still complete with two successes.
	g := NewStrategyGroup[int](AdaptiveHedge{Copies: 3, MinSamples: 1, FallbackDelay: time.Millisecond})
	for i := 0; i < 3; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), coretest.Sleeper(i, time.Millisecond))
	}
	g.ProbeAll(context.Background())
	var outs []Outcome[int]
	res, err := g.Do(context.Background(), WithQuorum(2), WithCollectOutcomes(&outs))
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, o := range outs {
		if o.Err == nil {
			wins++
		}
	}
	if wins != 2 {
		t.Errorf("wins = %d, want 2", wins)
	}
	if res.Launched < 2 {
		t.Errorf("Launched = %d, want >= 2", res.Launched)
	}
}

// --- Cancellation edges: derived per-copy contexts and the cancelled
// accounting, separate from failures. ---

func TestCallerCancelMidQuorum(t *testing.T) {
	// Quorum 2 of 3: one instant win, two copies blocked. The caller
	// cancels mid-quorum; the call must return the caller's error and
	// report both outstanding copies cancelled, and the blocked copies
	// must observe cancellation through their derived contexts.
	g := NewGroup[int](Policy{Copies: 3})
	c1 := coretest.NewGate()
	c2 := coretest.NewGate()
	g.Add("win", coretest.Instant(1))
	g.Add("b1", coretest.CancelReporting(c1, coretest.Blocked(2, coretest.NewGate())))
	g.Add("b2", coretest.CancelReporting(c2, coretest.Blocked(3, coretest.NewGate())))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res Result[int]
	var err error
	go func() {
		defer close(done)
		res, err = g.Do(ctx, WithQuorum(2))
	}()
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res.Launched != 3 {
		t.Errorf("Launched = %d, want 3", res.Launched)
	}
	// The instant winner may or may not have completed before the cancel
	// won the race; the blocked copies never complete.
	if res.Cancelled < 2 || res.Cancelled > 3 {
		t.Errorf("Cancelled = %d, want 2 or 3", res.Cancelled)
	}
	for _, gate := range []*coretest.Gate{c1, c2} {
		select {
		case <-gate.C():
		case <-time.After(2 * time.Second):
			t.Fatal("blocked quorum copy never observed cancellation")
		}
	}
}

func TestWinnerCompletesWhileHedgeStillDialing(t *testing.T) {
	// The hedge is mid-"dial" (blocked before doing any work) when the
	// primary completes: it must be cancelled through its derived
	// context, counted in Result.Cancelled, and recorded per replica —
	// not as a failure.
	c := NewCounters()
	g := NewStrategyGroup[string](
		scheduleStrategy{copies: 2, sched: []time.Duration{0, 0}},
		WithObserver[string](c),
	)
	release := coretest.NewGate()
	hedgeCancelled := coretest.NewGate()
	g.Add("primary", coretest.Blocked("primary", release))
	g.Add("hedge", coretest.CancelReporting(hedgeCancelled, coretest.Blocked("hedge", coretest.NewGate())))
	// Rank the primary fastest so selection order is deterministic.
	g.Digest("primary").Observe(time.Millisecond)
	g.Digest("hedge").Observe(time.Hour)

	release.Release()
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "primary" {
		t.Fatalf("winner %q", res.Value)
	}
	if res.Launched != 2 || res.Cancelled != 1 {
		t.Errorf("Launched/Cancelled = %d/%d, want 2/1", res.Launched, res.Cancelled)
	}
	select {
	case <-hedgeCancelled.C():
	case <-time.After(2 * time.Second):
		t.Fatal("dialing hedge never observed cancellation")
	}
	// Observer accounting: one op, one cancelled copy, zero failures.
	if got := c.CancelledCopies(); got != 1 {
		t.Errorf("CancelledCopies = %d, want 1", got)
	}
	if c.Failures() != 0 {
		t.Errorf("Failures = %d, want 0 (cancellation is not failure)", c.Failures())
	}
	// Per-replica stats converge once the cancelled goroutine finishes.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if statsCancelled(g.Stats(), "hedge") == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := statsCancelled(g.Stats(), "hedge"); got != 1 {
		t.Errorf("hedge ReplicaStats.Cancelled = %d, want 1", got)
	}
	if got := statsCancelled(g.Stats(), "primary"); got != 0 {
		t.Errorf("primary ReplicaStats.Cancelled = %d, want 0", got)
	}
}

func statsCancelled(s GroupStats, name string) int64 {
	for _, r := range s.Replicas {
		if r.Name == name {
			return r.Cancelled
		}
	}
	return -1
}

func TestCancelledCopiesLabelled(t *testing.T) {
	c := NewCounters()
	g := NewGroup[string](Policy{Copies: 2}, WithObserver[string](c))
	g.Add("fast", coretest.Instant("fast"))
	g.Add("stuck", coretest.Blocked("stuck", coretest.NewGate()))
	for i := 0; i < 3; i++ {
		if _, err := g.Do(context.Background(), WithLabel("reads")); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CancelledCopies(); got != 3 {
		t.Errorf("CancelledCopies = %d, want 3", got)
	}
	labels := c.Labels()
	if len(labels) != 1 || labels[0].Cancelled != 3 {
		t.Errorf("Labels() = %+v, want reads with 3 cancelled", labels)
	}
}

func TestAllRunsEverythingNoCancellation(t *testing.T) {
	// The measurement mode must not cancel anything: every copy completes
	// and Cancelled stays 0.
	gate := coretest.NewGate()
	gate.Release()
	outs := All(context.Background(),
		coretest.Instant(1),
		coretest.Blocked(2, gate),
		coretest.Fail[int](errors.New("x")),
	)
	if len(outs) != 3 {
		t.Fatalf("outcomes %d", len(outs))
	}
	for i, o := range outs {
		if i == 2 && o.Err == nil {
			t.Error("failing replica reported success")
		}
		if i != 2 && o.Err != nil {
			t.Errorf("replica %d failed: %v", i, o.Err)
		}
	}
}
