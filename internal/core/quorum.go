package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Outcome is one replica's result within a multi-result operation.
type Outcome[T any] struct {
	Value   T
	Err     error
	Index   int
	Latency time.Duration
}

// Quorum runs every replica concurrently and returns as soon as q of them
// succeed, cancelling the rest. It generalizes First (q = 1) to the
// read-repair and consistency patterns of replicated storage systems:
// R-of-N quorum reads are redundancy with a success threshold.
//
// The returned outcomes are the q winning results in completion order.
// If fewer than q replicas can succeed, Quorum returns the joined errors.
func Quorum[T any](ctx context.Context, q int, replicas ...Replica[T]) ([]Outcome[T], error) {
	if len(replicas) == 0 {
		return nil, ErrNoReplicas
	}
	if q < 1 || q > len(replicas) {
		return nil, fmt.Errorf("redundancy: quorum %d of %d replicas", q, len(replicas))
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan indexed[T], len(replicas))
	for i := range replicas {
		i := i
		go func() {
			v, err := replicas[i](ctx)
			results <- indexed[T]{val: v, err: err, idx: i}
		}()
	}

	var wins []Outcome[T]
	var errs []error
	for done := 0; done < len(replicas); done++ {
		select {
		case r := <-results:
			if r.err != nil {
				errs = append(errs, fmt.Errorf("replica %d: %w", r.idx, r.err))
				if len(errs) > len(replicas)-q {
					return nil, errors.Join(errs...)
				}
				continue
			}
			wins = append(wins, Outcome[T]{
				Value: r.val, Index: r.idx, Latency: time.Since(start),
			})
			if len(wins) == q {
				return wins, nil
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Unreachable: either q successes or > n-q failures occurs first.
	return nil, errors.Join(errs...)
}

// All runs every replica to completion (no cancellation on success) and
// returns every outcome in replica order. It is the measurement mode of
// redundancy — the paper's DNS experiment stage 1 queries every server and
// records each latency — and a building block for scatter-gather reads.
func All[T any](ctx context.Context, replicas ...Replica[T]) []Outcome[T] {
	out := make([]Outcome[T], len(replicas))
	done := make(chan int, len(replicas))
	start := time.Now()
	for i := range replicas {
		i := i
		go func() {
			v, err := replicas[i](ctx)
			out[i] = Outcome[T]{Value: v, Err: err, Index: i, Latency: time.Since(start)}
			done <- i
		}()
	}
	for range replicas {
		<-done
	}
	return out
}

// Fastest returns the successful outcomes of All, sorted by latency.
func Fastest[T any](outcomes []Outcome[T]) []Outcome[T] {
	ok := make([]Outcome[T], 0, len(outcomes))
	for _, o := range outcomes {
		if o.Err == nil {
			ok = append(ok, o)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].Latency < ok[j].Latency })
	return ok
}
