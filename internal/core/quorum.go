package core

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// Outcome is one replica's result within a multi-result operation.
type Outcome[T any] struct {
	Value   T
	Err     error
	Index   int
	Latency time.Duration
}

// Quorum runs every replica concurrently and returns as soon as q of them
// succeed, cancelling the rest. It generalizes First (q = 1) to the
// read-repair and consistency patterns of replicated storage systems:
// R-of-N quorum reads are redundancy with a success threshold.
//
// The returned outcomes are the q winning results in completion order.
// If fewer than q replicas can succeed, Quorum returns an error matching
// ErrQuorumUnreachable; errors.As into a *QuorumError recovers the
// partial outcomes, and errors.Is reaches each replica's underlying
// error.
//
// For repeated quorum operations against a long-lived replica set, use
// Group.Do with WithQuorum, which adds ranked selection, hedged
// schedules, and budget control to the same engine.
func Quorum[T any](ctx context.Context, q int, replicas ...Replica[T]) ([]Outcome[T], error) {
	if len(replicas) == 0 {
		return nil, ErrNoReplicas
	}
	if q < 1 {
		return nil, fmt.Errorf("redundancy: quorum %d of %d replicas", q, len(replicas))
	}
	// q > len(replicas) falls through to the engine, which reports it as
	// ErrQuorumUnreachable — the same taxonomy as Group.Do.
	outs := make([]Outcome[T], 0, len(replicas))
	_, err := call(ctx, callSpec[T]{
		n:       len(replicas),
		quorum:  q,
		collect: &outs,
		run: func(ctx context.Context, i int) (T, error) {
			return replicas[i](ctx)
		},
	})
	if err != nil {
		return nil, err
	}
	// The engine collects every completed outcome; the quorum contract is
	// the q winners, in completion order.
	wins := outs[:0]
	for _, o := range outs {
		if o.Err == nil {
			wins = append(wins, o)
		}
	}
	return wins, nil
}

// All runs every replica to completion (no cancellation on success) and
// returns every outcome in replica order. It is the measurement mode of
// redundancy — the paper's DNS experiment stage 1 queries every server and
// records each latency — and a building block for scatter-gather reads.
func All[T any](ctx context.Context, replicas ...Replica[T]) []Outcome[T] {
	n := len(replicas)
	if n == 0 {
		return []Outcome[T]{}
	}
	outs := make([]Outcome[T], 0, n)
	call(ctx, callSpec[T]{
		n:       n,
		waitAll: true,
		collect: &outs,
		run: func(ctx context.Context, i int) (T, error) {
			return replicas[i](ctx)
		},
	})
	// The engine collects in completion order; All's contract is replica
	// order.
	ordered := make([]Outcome[T], n)
	for _, o := range outs {
		ordered[o.Index] = o
	}
	return ordered
}

// Fastest returns the successful outcomes of All, sorted by latency.
func Fastest[T any](outcomes []Outcome[T]) []Outcome[T] {
	ok := make([]Outcome[T], 0, len(outcomes))
	for _, o := range outcomes {
		if o.Err == nil {
			ok = append(ok, o)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].Latency < ok[j].Latency })
	return ok
}
