package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not met within %v", d)
}

func TestWheelFiresWithArgs(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	type fire struct {
		c any
		i int64
	}
	ch := make(chan fire, 1)
	arg := new(int)
	start := time.Now()
	w.AfterFunc(5*time.Millisecond, func(c any, i int64) { ch <- fire{c, i} }, arg, 42)
	select {
	case f := <-ch:
		if f.c != any(arg) || f.i != 42 {
			t.Fatalf("callback args = (%v, %d), want (%p, 42)", f.c, f.i, arg)
		}
		if el := time.Since(start); el < 4*time.Millisecond {
			t.Fatalf("fired early: %v < 5ms (minus slack)", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	waitFor(t, time.Second, func() bool { return w.Armed() == 0 })
}

func TestWheelStop(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	var fired atomic.Bool
	tm := w.AfterFunc(50*time.Millisecond, func(any, int64) { fired.Store(true) }, nil, 0)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop = true, want false")
	}
	if w.Armed() != 0 {
		t.Fatalf("Armed = %d after stop, want 0", w.Armed())
	}
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

// TestWheelStopAfterLevelBoundaryShrink is a regression test: Stop on
// a timer whose remaining delta has shrunk below its insertion level's
// span (armed at level 1, now under 64 ticks away, but not yet
// cascaded down) must unlink from the slot list that actually holds
// it. unlink used to re-derive the level from the current delta and
// edit the wrong list, cross-linking the wheel's slots with the free
// list and livelocking the wheel goroutine.
func TestWheelStopAfterLevelBoundaryShrink(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	// Keep the loop ticking so w.now advances while the victim is armed,
	// and double as the health probe afterwards.
	var keep atomic.Bool
	w.AfterFunc(300*time.Millisecond, func(any, int64) { keep.Store(true) }, nil, 0)

	// 100 ticks lands in level 1. After ~45 ticks the remaining delta is
	// below level 0's span (64) while the node still sits in level 1.
	var fired atomic.Bool
	tm := w.AfterFunc(100*time.Millisecond, func(any, int64) { fired.Store(true) }, nil, 0)
	time.Sleep(45 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on armed level-1 timer = false, want true")
	}

	// The wheel must stay healthy: the keeper and a freshly armed timer
	// (reusing the recycled node) both fire, the stopped one never does.
	var again atomic.Bool
	w.AfterFunc(5*time.Millisecond, func(any, int64) { again.Store(true) }, nil, 0)
	waitFor(t, 2*time.Second, again.Load)
	waitFor(t, 2*time.Second, keep.Load)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
	waitFor(t, 2*time.Second, func() bool { return w.Armed() == 0 })
}

func TestWheelStopAfterFire(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	ch := make(chan struct{})
	tm := w.AfterFunc(time.Millisecond, func(any, int64) { close(ch) }, nil, 0)
	<-ch
	if tm.Stop() {
		t.Fatal("Stop after fire = true, want false")
	}
}

func TestWheelZeroHandle(t *testing.T) {
	var tm WheelTimer
	if tm.Stop() {
		t.Fatal("zero handle Stop = true")
	}
}

// TestWheelStaleHandleAfterReuse arms, fires, and re-arms enough timers
// that nodes recycle; a stale handle kept from the first round must not
// be able to stop a later timer that reuses its node.
func TestWheelStaleHandleAfterReuse(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	ch := make(chan struct{}, 1)
	old := w.AfterFunc(time.Millisecond, func(any, int64) { ch <- struct{}{} }, nil, 0)
	<-ch
	var fired atomic.Int64
	// The freed node is at the head of the free list: the next AfterFunc
	// reuses it.
	w.AfterFunc(20*time.Millisecond, func(any, int64) { fired.Add(1) }, nil, 0)
	if old.Stop() {
		t.Fatal("stale handle stopped a reused node's timer")
	}
	waitFor(t, 2*time.Second, func() bool { return fired.Load() == 1 })
}

// TestWheelManyTimers floods the wheel across all three levels and
// checks every timer fires exactly once and the wheel fully drains.
func TestWheelManyTimers(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	const n = 500
	var fired [n]atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		// Delays spanning level 0 (<64ms), level 1 (<4096ms, capped at
		// ~200ms to keep the test fast), seeded deterministically.
		d := time.Duration(1+(i*7)%200) * time.Millisecond
		w.AfterFunc(d, func(c any, idx int64) {
			fired[idx].Add(1)
			wg.Done()
		}, nil, int64(i))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timers did not all fire")
	}
	for i := range fired {
		if got := fired[i].Load(); got != 1 {
			t.Fatalf("timer %d fired %d times", i, got)
		}
	}
	if w.Armed() != 0 {
		t.Fatalf("Armed = %d after all fired, want 0", w.Armed())
	}
}

// TestWheelCascadeLevels exercises level-1 and level-2 insertion and
// cascade with a fine tick so the test stays fast.
func TestWheelCascadeLevels(t *testing.T) {
	w := NewTimerWheel(100 * time.Microsecond)
	defer w.Close()
	// 100µs tick: level 0 spans 6.4ms, level 1 409.6ms, level 2 beyond.
	cases := []time.Duration{
		3 * time.Millisecond,   // level 0
		50 * time.Millisecond,  // level 1
		450 * time.Millisecond, // level 2
	}
	type res struct {
		idx     int64
		elapsed time.Duration
	}
	ch := make(chan res, len(cases))
	start := time.Now()
	for i, d := range cases {
		w.AfterFunc(d, func(_ any, idx int64) {
			ch <- res{idx, time.Since(start)}
		}, nil, int64(i))
	}
	seen := make(map[int64]time.Duration)
	for range cases {
		select {
		case r := <-ch:
			seen[r.idx] = r.elapsed
		case <-time.After(5 * time.Second):
			t.Fatalf("missing fires; got %v", seen)
		}
	}
	for i, d := range cases {
		el := seen[int64(i)]
		if el < d-time.Millisecond {
			t.Errorf("timer %d (d=%v) fired early at %v", i, d, el)
		}
		if el > d+250*time.Millisecond {
			t.Errorf("timer %d (d=%v) fired very late at %v", i, d, el)
		}
	}
}

func TestWheelStopUnderFire(t *testing.T) {
	// Stop racing the fire path must never panic or double-count; run a
	// storm of arm/stop against short timers.
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	var fired, stopped atomic.Int64
	const n = 400
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				tm := w.AfterFunc(time.Duration(1+(seed+i)%3)*time.Millisecond,
					func(any, int64) { fired.Add(1) }, nil, 0)
				if i%2 == 0 {
					time.Sleep(time.Duration(i%4) * 500 * time.Microsecond)
				}
				if tm.Stop() {
					stopped.Add(1)
				}
			}
		}(g * 13)
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool { return w.Armed() == 0 })
	if got := fired.Load() + stopped.Load(); got != 4*n {
		t.Fatalf("fired(%d) + stopped(%d) = %d, want %d", fired.Load(), stopped.Load(), got, 4*n)
	}
}

func TestWheelClose(t *testing.T) {
	w := NewTimerWheel(time.Millisecond)
	var fired atomic.Bool
	w.AfterFunc(30*time.Millisecond, func(any, int64) { fired.Store(true) }, nil, 0)
	w.Close()
	tm := w.AfterFunc(time.Millisecond, func(any, int64) { fired.Store(true) }, nil, 0)
	if tm.Stop() {
		t.Fatal("AfterFunc on closed wheel returned a live handle")
	}
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Fatal("timer fired after Close")
	}
}

func TestSharedWheelSingleton(t *testing.T) {
	if SharedWheel() != SharedWheel() {
		t.Fatal("SharedWheel returned distinct wheels")
	}
}

func TestWheelArmAfterIdleFiresOnTime(t *testing.T) {
	// Regression: the loop parks while nothing is armed, freezing the
	// wheel's tick count as wall time advances. A timer armed after an
	// idle stretch must still wait its full delay — without the resync
	// in AfterFunc, the loop's catch-up to the present fired it
	// instantly.
	w := NewTimerWheel(time.Millisecond)
	defer w.Close()
	var warm atomic.Bool
	w.AfterFunc(time.Millisecond, func(any, int64) { warm.Store(true) }, nil, 0)
	waitFor(t, time.Second, warm.Load)
	time.Sleep(100 * time.Millisecond) // idle: armed == 0, now frozen

	var fired atomic.Bool
	start := time.Now()
	w.AfterFunc(80*time.Millisecond, func(any, int64) { fired.Store(true) }, nil, 0)
	time.Sleep(30 * time.Millisecond)
	if fired.Load() {
		t.Fatalf("timer armed after idle fired within %v, want >= 80ms", time.Since(start))
	}
	waitFor(t, time.Second, fired.Load)
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("timer fired after %v, want >= 80ms", el)
	}
}
