package core

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatDigest is a lock-free per-replica latency digest: an exponentially
// weighted moving average of the mean plus a fixed-size log-scale
// histogram, both updated with single atomic operations so racing copies
// recording observations never block each other or the selection path
// reading them.
//
// The histogram has 8 sub-bins per power-of-two octave of nanoseconds
// (512 bins covering 1 ns to ~292 years), giving quantile estimates with
// at most 12.5% relative error — ample for choosing a hedging delay,
// where the latency itself varies by orders of magnitude.
//
// The zero value is an empty digest ready for use. All methods are safe
// for concurrent use. Readers see each observation's mean and histogram
// contributions independently (a Quantile concurrent with Observe may
// miss the newest sample), which is harmless for the approximate
// statistics the digest serves.
type LatDigest struct {
	// ewma holds the bitwise complement of the EWMA's float64 bits; zero
	// (the zero value) means "never observed". The complement of a finite
	// non-negative float64 is never zero, so no sentinel initialization is
	// needed.
	ewma  atomic.Uint64
	count atomic.Int64
	bins  [digestBinCount]atomic.Uint64
}

const (
	// digestSubBits is the number of mantissa bits per octave: 2^3 = 8
	// sub-bins, 12.5% max relative bin width.
	digestSubBits  = 3
	digestSubBins  = 1 << digestSubBits
	digestBinCount = 64 * digestSubBins

	ewmaAlpha = 0.2
)

// digestBin maps a non-negative nanosecond count to its bin index.
// The mapping is monotone: larger latencies never map to smaller bins.
func digestBin(ns uint64) int {
	if ns == 0 {
		return 0
	}
	exp := uint(bits.Len64(ns) - 1)
	var sub uint64
	if exp >= digestSubBits {
		sub = (ns >> (exp - digestSubBits)) & (digestSubBins - 1)
	} else {
		sub = (ns << (digestSubBits - exp)) & (digestSubBins - 1)
	}
	return int(exp)<<digestSubBits + int(sub)
}

// digestBinUpper returns the (inclusive) upper edge of a bin in
// nanoseconds. Reporting the upper edge makes quantile estimates
// conservative for hedging: a hedge fires no earlier than the true
// quantile.
func digestBinUpper(bin int) uint64 {
	exp := uint(bin >> digestSubBits)
	sub := uint64(bin & (digestSubBins - 1))
	// Lower edge is (8+sub) << (exp-3); upper edge is one sub-bin later.
	hi := (digestSubBins + sub + 1) << exp >> digestSubBits
	if hi == 0 || hi > math.MaxInt64 { // exp=63 overflow
		hi = math.MaxInt64
	}
	return hi
}

// Observe folds one latency into the digest.
func (l *LatDigest) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.observe(float64(d))
}

// observe is the hot-path form over float64 nanoseconds.
func (l *LatDigest) observe(x float64) {
	for {
		old := l.ewma.Load()
		v := x
		if old != 0 {
			v = ewmaAlpha*x + (1-ewmaAlpha)*math.Float64frombits(^old)
		}
		if l.ewma.CompareAndSwap(old, ^math.Float64bits(v)) {
			break
		}
	}
	l.bins[digestBin(uint64(x))].Add(1)
	l.count.Add(1)
}

// value returns the EWMA mean in nanoseconds and whether anything has
// been observed.
func (l *LatDigest) value() (float64, bool) {
	b := l.ewma.Load()
	if b == 0 {
		return 0, false
	}
	return math.Float64frombits(^b), true
}

// Mean returns the exponentially weighted moving average latency and
// whether anything has been observed.
func (l *LatDigest) Mean() (time.Duration, bool) {
	v, ok := l.value()
	return time.Duration(v), ok
}

// Count returns the number of observations folded into the digest.
func (l *LatDigest) Count() int64 { return l.count.Load() }

// Quantile returns an estimate of the p-th quantile (p in [0, 1]) of all
// observed latencies, and whether there is any data. The estimate is the
// upper edge of the histogram bin containing the quantile, so it errs
// late by at most one sub-bin (12.5%).
func (l *LatDigest) Quantile(p float64) (time.Duration, bool) {
	var counts [digestBinCount]uint64
	total := l.snapshot(&counts)
	if total == 0 {
		return 0, false
	}
	return quantileOf(&counts, total, p), true
}

// Quantiles fills out[i] with the Quantile of ps[i], reading the
// histogram once. It returns false (and zeroes out) if nothing has been
// observed.
func (l *LatDigest) Quantiles(ps []float64, out []time.Duration) bool {
	var counts [digestBinCount]uint64
	total := l.snapshot(&counts)
	if total == 0 {
		for i := range out {
			out[i] = 0
		}
		return false
	}
	for i, p := range ps {
		out[i] = quantileOf(&counts, total, p)
	}
	return true
}

func (l *LatDigest) snapshot(counts *[digestBinCount]uint64) int64 {
	total := int64(0)
	for i := range l.bins {
		c := l.bins[i].Load()
		counts[i] = c
		total += int64(c)
	}
	return total
}

// DigestSnapshot is a point-in-time copy of a LatDigest's histogram —
// the observation hook feedback controllers use to turn the cumulative
// digest into *windowed* statistics. Capture one snapshot per control
// interval and ask for quantiles of only the observations that arrived
// between two captures; a controller that read the cumulative digest
// instead would be steering on the entire history and never see the
// effect of its own knob moves.
//
// The zero value is an empty snapshot, a valid "beginning of time"
// baseline. Snapshots are plain values: copy and reuse them freely.
// Capturing is safe concurrently with Observe; the two snapshots of a
// window must come from the same digest, prev captured no later than
// the receiver.
type DigestSnapshot struct {
	counts [digestBinCount]uint64
	total  int64
}

// Snapshot captures the digest's current histogram into s, overwriting
// whatever s held.
func (l *LatDigest) Snapshot(s *DigestSnapshot) {
	s.total = l.snapshot(&s.counts)
}

// Count returns the number of observations captured in the snapshot.
func (s *DigestSnapshot) Count() int64 { return s.total }

// windowInto writes the per-bin counts of the (prev, s] window into w
// and returns the window's total. A nil prev means "since the beginning
// of the digest". Subtraction saturates at zero per bin, so a racing
// capture can only under-count a bin, never corrupt the histogram.
func (s *DigestSnapshot) windowInto(prev *DigestSnapshot, w *[digestBinCount]uint64) int64 {
	if prev == nil {
		*w = s.counts
		return s.total
	}
	total := int64(0)
	for i := range s.counts {
		c := s.counts[i]
		if p := prev.counts[i]; p < c {
			c -= p
		} else {
			c = 0
		}
		w[i] = c
		total += int64(c)
	}
	return total
}

// WindowCount returns how many observations were recorded between prev
// and s (nil prev: since the beginning).
func (s *DigestSnapshot) WindowCount(prev *DigestSnapshot) int64 {
	if prev == nil {
		return s.total
	}
	if d := s.total - prev.total; d > 0 {
		return d
	}
	return 0
}

// WindowQuantile estimates the p-th quantile (p in [0, 1]) of the
// observations recorded between prev and s — two captures of the same
// digest, prev the earlier — with the digest's usual conservative
// upper-bin-edge estimate. ok is false when the window is empty. A nil
// prev quantiles the whole history, matching LatDigest.Quantile.
func (s *DigestSnapshot) WindowQuantile(prev *DigestSnapshot, p float64) (time.Duration, bool) {
	var w [digestBinCount]uint64
	total := s.windowInto(prev, &w)
	if total == 0 {
		return 0, false
	}
	return quantileOf(&w, total, p), true
}

// WindowMean returns the histogram-weighted mean of the observations in
// the (prev, s] window, using each bin's upper edge (so the estimate
// errs conservatively late, like the quantiles). ok is false when the
// window is empty.
func (s *DigestSnapshot) WindowMean(prev *DigestSnapshot) (time.Duration, bool) {
	var w [digestBinCount]uint64
	total := s.windowInto(prev, &w)
	if total == 0 {
		return 0, false
	}
	sum := 0.0
	for i, c := range w {
		if c != 0 {
			sum += float64(c) * float64(digestBinUpper(i))
		}
	}
	return time.Duration(sum / float64(total)), true
}

func quantileOf(counts *[digestBinCount]uint64, total int64, p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		cum += int64(c)
		if cum >= rank {
			return time.Duration(digestBinUpper(i))
		}
	}
	return time.Duration(digestBinUpper(digestBinCount - 1))
}
