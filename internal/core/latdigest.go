package core

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// LatDigest is a lock-free per-replica latency digest: an exponentially
// weighted moving average of the mean plus a fixed-size log-scale
// histogram, both updated with single atomic operations so racing copies
// recording observations never block each other or the selection path
// reading them.
//
// The histogram has 8 sub-bins per power-of-two octave of nanoseconds
// (512 bins covering 1 ns to ~292 years), giving quantile estimates with
// at most 12.5% relative error — ample for choosing a hedging delay,
// where the latency itself varies by orders of magnitude.
//
// The zero value is an empty digest ready for use. All methods are safe
// for concurrent use. Readers see each observation's mean and histogram
// contributions independently (a Quantile concurrent with Observe may
// miss the newest sample), which is harmless for the approximate
// statistics the digest serves.
type LatDigest struct {
	// ewma holds the bitwise complement of the EWMA's float64 bits; zero
	// (the zero value) means "never observed". The complement of a finite
	// non-negative float64 is never zero, so no sentinel initialization is
	// needed.
	ewma  atomic.Uint64
	count atomic.Int64
	bins  [digestBinCount]atomic.Uint64
}

const (
	// digestSubBits is the number of mantissa bits per octave: 2^3 = 8
	// sub-bins, 12.5% max relative bin width.
	digestSubBits  = 3
	digestSubBins  = 1 << digestSubBits
	digestBinCount = 64 * digestSubBins

	ewmaAlpha = 0.2
)

// digestBin maps a non-negative nanosecond count to its bin index.
// The mapping is monotone: larger latencies never map to smaller bins.
func digestBin(ns uint64) int {
	if ns == 0 {
		return 0
	}
	exp := uint(bits.Len64(ns) - 1)
	var sub uint64
	if exp >= digestSubBits {
		sub = (ns >> (exp - digestSubBits)) & (digestSubBins - 1)
	} else {
		sub = (ns << (digestSubBits - exp)) & (digestSubBins - 1)
	}
	return int(exp)<<digestSubBits + int(sub)
}

// digestBinUpper returns the (inclusive) upper edge of a bin in
// nanoseconds. Reporting the upper edge makes quantile estimates
// conservative for hedging: a hedge fires no earlier than the true
// quantile.
func digestBinUpper(bin int) uint64 {
	exp := uint(bin >> digestSubBits)
	sub := uint64(bin & (digestSubBins - 1))
	// Lower edge is (8+sub) << (exp-3); upper edge is one sub-bin later.
	hi := (digestSubBins + sub + 1) << exp >> digestSubBits
	if hi == 0 || hi > math.MaxInt64 { // exp=63 overflow
		hi = math.MaxInt64
	}
	return hi
}

// Observe folds one latency into the digest.
func (l *LatDigest) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.observe(float64(d))
}

// observe is the hot-path form over float64 nanoseconds.
func (l *LatDigest) observe(x float64) {
	for {
		old := l.ewma.Load()
		v := x
		if old != 0 {
			v = ewmaAlpha*x + (1-ewmaAlpha)*math.Float64frombits(^old)
		}
		if l.ewma.CompareAndSwap(old, ^math.Float64bits(v)) {
			break
		}
	}
	l.bins[digestBin(uint64(x))].Add(1)
	l.count.Add(1)
}

// value returns the EWMA mean in nanoseconds and whether anything has
// been observed.
func (l *LatDigest) value() (float64, bool) {
	b := l.ewma.Load()
	if b == 0 {
		return 0, false
	}
	return math.Float64frombits(^b), true
}

// Mean returns the exponentially weighted moving average latency and
// whether anything has been observed.
func (l *LatDigest) Mean() (time.Duration, bool) {
	v, ok := l.value()
	return time.Duration(v), ok
}

// Count returns the number of observations folded into the digest.
func (l *LatDigest) Count() int64 { return l.count.Load() }

// Quantile returns an estimate of the p-th quantile (p in [0, 1]) of all
// observed latencies, and whether there is any data. The estimate is the
// upper edge of the histogram bin containing the quantile, so it errs
// late by at most one sub-bin (12.5%).
func (l *LatDigest) Quantile(p float64) (time.Duration, bool) {
	var counts [digestBinCount]uint64
	total := l.snapshot(&counts)
	if total == 0 {
		return 0, false
	}
	return quantileOf(&counts, total, p), true
}

// Quantiles fills out[i] with the Quantile of ps[i], reading the
// histogram once. It returns false (and zeroes out) if nothing has been
// observed.
func (l *LatDigest) Quantiles(ps []float64, out []time.Duration) bool {
	var counts [digestBinCount]uint64
	total := l.snapshot(&counts)
	if total == 0 {
		for i := range out {
			out[i] = 0
		}
		return false
	}
	for i, p := range ps {
		out[i] = quantileOf(&counts, total, p)
	}
	return true
}

func (l *LatDigest) snapshot(counts *[digestBinCount]uint64) int64 {
	total := int64(0)
	for i := range l.bins {
		c := l.bins[i].Load()
		counts[i] = c
		total += int64(c)
	}
	return total
}

func quantileOf(counts *[digestBinCount]uint64, total int64, p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		cum += int64(c)
		if cum >= rank {
			return time.Duration(digestBinUpper(i))
		}
	}
	return time.Duration(digestBinUpper(digestBinCount - 1))
}
