package core

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
	"time"
)

// FuzzLatDigestQuantile checks the digest's advertised accuracy contract
// against a sorted-sample oracle for arbitrary observation streams: the
// histogram has 8 sub-bins per octave, so a quantile estimate (the upper
// edge of the bin holding the quantile rank) must never be below the
// true sample quantile and never more than 12.5% above it (plus 1 ns of
// integer-edge slack).
func FuzzLatDigestQuantile(f *testing.F) {
	seed := func(vals ...uint64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	f.Add(seed(0), byte(50))
	f.Add(seed(1, 2, 3, 4, 5, 6, 7, 8, 9), byte(90))
	f.Add(seed(1000, 1000, 1000), byte(99))
	f.Add(seed(1, 1<<40, 17, 3), byte(0))
	f.Add(seed(999999999, 1, 999999999, 2, 5), byte(100))

	f.Fuzz(func(t *testing.T, data []byte, pByte byte) {
		if len(data) < 8 {
			t.Skip("need at least one observation")
		}
		// Cap observations so float64 round-trips exactly (observe folds
		// through float64) and the +12.5% bound cannot overflow.
		const maxNS = 1 << 52
		var (
			d    LatDigest
			vals []uint64
		)
		for i := 0; i+8 <= len(data) && len(vals) < 4096; i += 8 {
			v := binary.LittleEndian.Uint64(data[i:i+8]) % maxNS
			vals = append(vals, v)
			d.Observe(time.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

		ps := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1, float64(pByte%101) / 100}
		total := len(vals)
		for _, p := range ps {
			got, ok := d.Quantile(p)
			if !ok {
				t.Fatalf("Quantile(%g) reported no data with %d observations", p, total)
			}
			// The digest's rank convention: the ceil(p*total)-th smallest
			// observation (clamped to at least the 1st).
			rank := int(math.Ceil(p * float64(total)))
			if rank < 1 {
				rank = 1
			}
			want := vals[rank-1]
			est := uint64(got)
			if est < want {
				t.Errorf("Quantile(%g) = %d below true quantile %d (n=%d)", p, est, want, total)
			}
			if limit := want + want/8 + 1; est > limit {
				t.Errorf("Quantile(%g) = %d exceeds true quantile %d by more than 12.5%% (+1ns) (n=%d)",
					p, est, want, total)
			}
		}

		// The batched path must agree with the one-shot path exactly.
		out := make([]time.Duration, len(ps))
		if !d.Quantiles(ps, out) {
			t.Fatal("Quantiles reported no data")
		}
		for i, p := range ps {
			if one, _ := d.Quantile(p); out[i] != one {
				t.Errorf("Quantiles[%d] = %v disagrees with Quantile(%g) = %v", i, out[i], p, one)
			}
		}
	})
}
