package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the single request execution engine behind every way of
// performing a redundant operation: the free functions First, Hedged,
// HedgedSchedule, Quorum, and All are thin shims over call, and
// Group.Do/KeyedGroup.Do drive it with the per-call options assembled
// from CallOptions. One engine means every completion rule (first wins,
// R-of-N quorum, run-everything) composes with every launch schedule
// (all at once, fixed hedge, adaptive hedge) and shares one error
// taxonomy.
//
// The engine runs on a reusable call frame (callFrame): one struct
// carrying the results channel, the picked replicas, the launch
// schedule, and inline scratch for the common fan-out <= 4 case. Group
// paths recycle frames through a per-group sync.Pool, so a steady-state
// zero-option Do allocates only what is semantically per-call — the
// copy-cancellation channel, one shared derived context, and one
// goroutine closure per launched copy. Recycling follows a
// proved-drained discipline (see callFrame.release): a frame returns to
// the pool only after every launched copy and every armed hedge timer
// has delivered into the buffered results channel and the channel has
// been drained, so a loser still in flight pins the frame alive.
//
// Hedge deadlines arm on the process-shared TimerWheel (alloc-free,
// O(1) arm/stop) except for sub-tick delays: the wheel's 1ms tick would
// coarsen a sub-millisecond hedge into "fire 1-2ms late", so delays
// below DefaultWheelTick fall back to a runtime time.Timer, which is
// exact. Both paths are gen-guarded — a stale fire cannot launch the
// wrong copy, and a stopped-too-late fire is ignored by index.

// ReplicaError describes one replica's failure within a redundant
// operation. Errors from a failed operation are joined with errors.Join,
// so errors.As(&ReplicaError{}) recovers the first per-replica detail and
// errors.Is reaches every underlying cause.
type ReplicaError struct {
	// Name is the replica's registration name; empty for the free
	// functions, whose replicas are anonymous.
	Name string
	// Attempt is the copy's launch index within the operation (0 is the
	// primary).
	Attempt int
	// Err is the replica's error.
	Err error
}

// Error implements error. For anonymous replicas the format is
// "replica <attempt>: <err>" (the historical format of First and Quorum);
// named replicas include the name.
func (e ReplicaError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("replica %s (copy %d): %v", e.Name, e.Attempt, e.Err)
	}
	return fmt.Sprintf("replica %d: %v", e.Attempt, e.Err)
}

// Unwrap returns the underlying replica error.
func (e ReplicaError) Unwrap() error { return e.Err }

// ErrQuorumUnreachable reports that an operation's quorum cannot be (or
// could not be) met: too many replicas failed, or the requested quorum
// exceeds the replica set. Match it with errors.Is; errors.As into a
// *QuorumError recovers the partial outcomes.
var ErrQuorumUnreachable = errors.New("redundancy: quorum unreachable")

// QuorumError is the failure of a quorum (q > 1) call. It carries the
// partial outcomes — every copy that completed, success or failure, in
// completion order — so callers can salvage reads that reached some but
// not all replicas. errors.Is(err, ErrQuorumUnreachable) matches it, and
// errors.Is also reaches each replica's underlying error through the
// joined ReplicaErrors in Err.
type QuorumError[T any] struct {
	// Need is the required number of successes; Wins is how many arrived.
	Need, Wins int
	// Outcomes are the completed copies' outcomes in completion order.
	Outcomes []Outcome[T]
	// Err is the joined per-replica failure detail.
	Err error
}

// Error implements error.
func (e *QuorumError[T]) Error() string {
	return fmt.Sprintf("redundancy: quorum %d unreachable (%d succeeded): %v", e.Need, e.Wins, e.Err)
}

// Unwrap exposes both the ErrQuorumUnreachable sentinel and the joined
// replica errors to errors.Is/errors.As.
func (e *QuorumError[T]) Unwrap() []error { return []error{ErrQuorumUnreachable, e.Err} }

// copyCtx is the per-call derived context every launched copy receives:
// its Done channel closes the moment the operation completes — first
// win, quorum met, unrecoverable failure, or caller cancel — so losing
// copies stop work and release their replica promptly. All copies of one
// call are cancelled at the same instant, so they share a single
// copyCtx (one allocation per call, not per copy); deadlines and values
// pass through from the caller's context. The context is NOT part of
// the recycled frame: a replica function may legally retain its context
// beyond the call, and a recycled context would mutate under it.
type copyCtx struct {
	context.Context // parent: Deadline and Value pass through
	done            <-chan struct{}
}

// Done implements context.Context.
func (c *copyCtx) Done() <-chan struct{} { return c.done }

// Err implements context.Context. Once the call completes, the copy is
// cancelled; a caller-level cancellation cause is preserved.
func (c *copyCtx) Err() error {
	select {
	case <-c.done:
		if err := c.Context.Err(); err != nil {
			return err
		}
		return context.Canceled
	default:
		return c.Context.Err()
	}
}

const (
	// frameInline is the fan-out up to which a call frame's picked
	// replicas, launch schedule, error scratch, and outcome scratch live
	// in fixed inline arrays; larger fan-outs spill to per-call slices.
	// 4 covers the paper's entire operating range (the marginal value of
	// copies beyond ~4 is negligible at every load it studies).
	frameInline = 4
	// frameChanCap is the results-channel capacity a pooled frame is
	// born with: n completions plus at most n-1 hedge-deadline events
	// for n <= frameInline.
	frameChanCap = 2 * frameInline
)

// callSpec is one operation's execution plan, assembled by the free-
// function shims (First, Hedged, Quorum, All). Group paths assemble a
// callFrame directly.
type callSpec[T any] struct {
	// n is the number of copies that may launch.
	n int
	// quorum is the number of successes that completes the operation;
	// values below 1 mean 1 (first response wins).
	quorum int
	// delays staggers launches: copy i launches delays[i] after copy i-1
	// (delays[0] is ignored; the first copy always starts immediately).
	// A non-positive delay launches its copy immediately, without a timer
	// round-trip. nil launches every copy at once.
	delays []time.Duration
	// waitAll runs every copy to completion: no cancellation of losers,
	// no early return on quorum or on failures (the measurement mode
	// behind All).
	waitAll bool
	// run performs copy i. Errors it returns are wrapped in ReplicaError
	// unless they already are one (Group wraps with the replica's name).
	run func(ctx context.Context, i int) (T, error)
	// collect, when non-nil, is reset to length zero and then appended
	// with every completed copy's outcome (success and failure alike) in
	// completion order. Copies cancelled before completing do not appear.
	collect *[]Outcome[T]
}

// callFrame is the reusable per-call state of the engine. Group paths
// obtain frames from the group's pool and must follow the recycling
// discipline: the frame is shared with every launched copy goroutine
// and with any armed wheel-hedge callback, each of which holds one
// reference; release(1) drops a reference, and the holder that drops
// the last one drains the results channel and returns the frame to the
// pool. The launcher writes every plan field before the first copy
// launches and never mutates them afterwards, so copy goroutines read
// them without synchronization.
type callFrame[K, T any] struct {
	// results carries copy completions and wheel-hedge deadline events.
	// It is buffered for the worst case (n completions + n-1 hedge
	// events), so senders never block and the wheel callback honors the
	// wheel's non-blocking contract. The channel is reused across calls;
	// it only grows (and is reallocated) when a call's fan-out exceeds
	// half its capacity.
	results chan indexed[T]
	// pool is where release returns the frame; nil for the free
	// functions' single-use frames, which the GC reclaims instead.
	pool *sync.Pool
	// refs counts the engine, every launched copy, and every armed wheel
	// hedge. The frame recycles only when it hits zero.
	refs atomic.Int32

	// Plan fields: written by the launcher before any copy starts.
	n       int
	quorum  int
	waitAll bool
	delays  []time.Duration
	collect *[]Outcome[T]
	cctx    context.Context
	gov     *Governor
	arg     K
	picked  []Handle[K, T]
	// runf is the free-function copy body; when nil, copies run
	// picked[i] with arg (the group mode).
	runf func(ctx context.Context, i int) (T, error)

	// outs backs the quorum-failure partial outcomes when the caller did
	// not pass WithCollectOutcomes; callFailed clones out of it before
	// the frame can recycle.
	outs []Outcome[T]

	// Inline storage for fan-out <= frameInline.
	pickedBuf [frameInline]Handle[K, T]
	delaysBuf [frameInline]time.Duration
	errsBuf   [frameInline]error
	outsBuf   [frameInline]Outcome[T]
}

// pickedSlice sizes fr.picked for k copies, inline when k fits.
func (fr *callFrame[K, T]) pickedSlice(k int) []Handle[K, T] {
	if k <= frameInline {
		fr.picked = fr.pickedBuf[:k]
	} else {
		fr.picked = make([]Handle[K, T], k)
	}
	return fr.picked
}

// delaysSlice returns a schedule buffer of length n, inline when it fits.
func (fr *callFrame[K, T]) delaysSlice(n int) []time.Duration {
	if n <= frameInline {
		return fr.delaysBuf[:n]
	}
	return make([]time.Duration, n)
}

// ensureChan guarantees the results channel can absorb every event a
// call with fan-out n can produce (n completions + n-1 hedge fires).
func (fr *callFrame[K, T]) ensureChan(n int) {
	if fr.results == nil || cap(fr.results) < 2*n {
		fr.results = make(chan indexed[T], 2*n)
	}
}

// launchCopy starts copy i. The reference is taken before the goroutine
// exists so the frame cannot recycle out from under it.
func (fr *callFrame[K, T]) launchCopy(i int) {
	fr.refs.Add(1)
	go runFrameCopy(fr, i)
}

// runPicked performs one group-mode copy: governor bracketing, the
// member's recording replica, and ReplicaError wrapping with the name.
func (fr *callFrame[K, T]) runPicked(i int) (T, error) {
	if gov := fr.gov; gov != nil {
		gov.copyStarted()
		defer gov.copyDone()
	}
	v, err := fr.picked[i].m.rec(fr.cctx, fr.arg)
	if err != nil {
		err = ReplicaError{Name: fr.picked[i].m.name, Attempt: i, Err: err}
	}
	return v, err
}

// runFrameCopy is one copy's goroutine body. It is a plain generic
// function, so launching it costs only the go statement's argument
// closure — no per-copy funcval beyond that.
func runFrameCopy[K, T any](fr *callFrame[K, T], i int) {
	var v T
	var err error
	if fr.runf != nil {
		v, err = fr.runf(fr.cctx, i)
	} else {
		v, err = fr.runPicked(i)
	}
	fr.results <- indexed[T]{val: v, err: err, idx: i}
	fr.release(1)
}

// frameHedgeFired is the shared-wheel callback for a pending hedge
// deadline: it forwards the deadline into the frame's event channel for
// the engine loop to act on. i is the copy index the timer was armed
// for; the engine ignores stale indices. The buffered channel absorbs
// the send without blocking (the wheel-callback contract), and the
// reference taken at arm time keeps the frame alive until release.
func frameHedgeFired[K, T any](c any, i int64) {
	fr := c.(*callFrame[K, T])
	fr.results <- indexed[T]{idx: int(i), hedge: true}
	fr.release(1)
}

// release drops n references. The holder that drops the last reference
// proves the results channel empty (every sender has already delivered
// — copies deliver before releasing, and a fired hedge delivers in its
// callback) and recycles the frame. Pool-less frames are left to the
// GC.
func (fr *callFrame[K, T]) release(n int32) {
	if fr.refs.Add(-n) != 0 {
		return
	}
	// Sole owner: no copy, timer, or engine reference remains, so no
	// send can race this drain.
drain:
	for {
		select {
		case <-fr.results:
		default:
			break drain
		}
	}
	pool := fr.pool
	if pool == nil {
		return
	}
	// Clear everything a pooled frame must not pin or leak into its
	// next call: replica handles, the caller's context and sink, the
	// argument, and the inline error/outcome scratch.
	var zk K
	fr.arg = zk
	fr.runf = nil
	fr.gov = nil
	fr.cctx = nil
	fr.collect = nil
	fr.delays = nil
	fr.picked = nil
	fr.outs = nil
	fr.pickedBuf = [frameInline]Handle[K, T]{}
	fr.errsBuf = [frameInline]error{}
	fr.outsBuf = [frameInline]Outcome[T]{}
	pool.Put(fr)
}

// drainCompleted opportunistically consumes results already delivered
// but not yet received, returning the updated completion count. Copies
// that delivered before the call completed are not "cancelled" — no
// capacity was reclaimed from them — so the engine drains before
// computing the Cancelled metric. Hedge-deadline events are skipped.
func (fr *callFrame[K, T]) drainCompleted(completed int) int {
	for {
		select {
		case r := <-fr.results:
			if !r.hedge {
				completed++
			}
		default:
			return completed
		}
	}
}

// hedgeTimer manages the engine's single in-flight hedge deadline:
// wheel-armed for delays at or above the wheel tick, a runtime
// time.Timer below it (the wheel would coarsen a sub-millisecond hedge
// by up to two ticks — see the file comment). At most one deadline is
// armed at a time, always for the next unlaunched copy.
type hedgeTimer[K, T any] struct {
	fr         *callFrame[K, T]
	wheel      WheelTimer
	wheelArmed bool
	armedCi    int
	rt         *time.Timer
	rtC        <-chan time.Time
}

// arm schedules the hedge deadline for copy ci, d from now.
func (h *hedgeTimer[K, T]) arm(d time.Duration, ci int) {
	if d < DefaultWheelTick {
		// Sub-tick fallback: exact runtime timer (documented trade; the
		// wheel fires on tick boundaries only). The timer is reused
		// across arms within one call.
		if h.rt == nil {
			h.rt = time.NewTimer(d)
		} else {
			h.rt.Reset(d)
		}
		h.rtC = h.rt.C
		return
	}
	h.fr.refs.Add(1) // the armed timer pins the frame
	h.wheel = SharedWheel().AfterFunc(d, frameHedgeFired[K, T], h.fr, int64(ci))
	h.wheelArmed = true
	h.armedCi = ci
}

// wheelFired records that the armed wheel deadline for ci was consumed.
// A stale event — its timer was stopped racing the fire and a NEW timer
// is already armed for a later copy — must not clear the armed state,
// or stop would leak the live timer to expiry.
func (h *hedgeTimer[K, T]) wheelFired(ci int) {
	if h.wheelArmed && h.armedCi == ci {
		h.wheelArmed = false
	}
}

// stop disarms whichever deadline is pending. Idempotent. If the wheel
// timer already fired, its callback owns (and releases) the reference;
// the resulting stale event is ignored by index or drained at recycle.
func (h *hedgeTimer[K, T]) stop() {
	if h.wheelArmed {
		h.wheelArmed = false
		if h.wheel.Stop() {
			h.fr.release(1)
		}
	}
	if h.rtC != nil {
		h.rt.Stop()
		h.rtC = nil
	}
}

// call executes one redundant operation described by a callSpec — the
// free-function entry into the engine. Group paths build a pooled frame
// directly (launchFrame); this wrapper builds a single-use one.
func call[T any](ctx context.Context, sp callSpec[T]) (Result[T], error) {
	var zero Result[T]
	n := sp.n
	if n == 0 {
		return zero, ErrNoReplicas
	}
	q := sp.quorum
	if q < 1 {
		q = 1
	}
	if q > n {
		return zero, fmt.Errorf("redundancy: quorum %d of %d replicas: %w", q, n, ErrQuorumUnreachable)
	}
	fr := &callFrame[struct{}, T]{}
	fr.results = make(chan indexed[T], 2*n)
	fr.refs.Store(1)
	fr.n = n
	fr.quorum = q
	fr.waitAll = sp.waitAll
	fr.delays = sp.delays
	fr.collect = sp.collect
	fr.runf = sp.run
	res, err := runFrame(ctx, fr)
	fr.release(1)
	return res, err
}

// runFrame executes one redundant operation over a prepared frame. It
// returns the operation's Result — Value/Index are the first success,
// Latency is the time to completion (the quorum-th success), Launched
// the copies started, Cancelled the copies reclaimed in flight — or, on
// failure, the joined ReplicaErrors (quorum 1) or a *QuorumError
// (quorum > 1). A call never leaks goroutines: each copy runs under a
// derived copyCtx cancelled at call completion, and losers always
// deliver into the buffered channel. runFrame does NOT drop the
// engine's frame reference; the caller must release(1) after it has
// read everything it needs from the frame.
func runFrame[K, T any](ctx context.Context, fr *callFrame[K, T]) (Result[T], error) {
	n := fr.n
	q := fr.quorum
	if q < 1 {
		q = 1
	}
	start := time.Now()
	// The shared derived context: its done channel closes the moment the
	// call completes, cancelling every copy still in flight. waitAll
	// (the measurement mode behind All) never cancels: copies get the
	// caller's context directly.
	cctx := ctx
	var cdone chan struct{}
	if !fr.waitAll {
		cdone = make(chan struct{})
		cctx = &copyCtx{Context: ctx, done: cdone}
		defer close(cdone)
	}
	fr.cctx = cctx

	delays := fr.delays
	// Copy 0 always starts immediately; so does every consecutive copy
	// whose delay is non-positive (a zero hedge delay means full
	// replication, not a timer round-trip).
	fr.launchCopy(0)
	launched := 1
	if delays == nil {
		for launched < n {
			fr.launchCopy(launched)
			launched++
		}
	} else {
		for launched < n && delays[launched] <= 0 {
			fr.launchCopy(launched)
			launched++
		}
	}

	collect := fr.collect
	if collect == nil && q > 1 {
		// Quorum failures carry partial outcomes even when the caller
		// did not ask to collect them; the frame's inline scratch backs
		// them and callFailed clones before the frame can recycle.
		fr.outs = fr.outsBuf[:0]
		collect = &fr.outs
	}
	if collect != nil {
		*collect = (*collect)[:0]
	}

	var ht hedgeTimer[K, T]
	ht.fr = fr
	if delays != nil && launched < n {
		ht.arm(delays[launched], launched)
	}
	defer ht.stop()

	var ctxDone <-chan struct{}
	if !fr.waitAll {
		ctxDone = ctx.Done()
	}

	errs := fr.errsBuf[:0]
	var (
		wins      int
		firstVal  T
		firstIdx  int
		completed int
	)
	for {
		select {
		case r := <-fr.results:
			if r.hedge {
				// A wheel-armed hedge deadline fired. Stale events — the
				// copy already launched via the failure path, or the call
				// is past it — are ignored by index.
				ht.wheelFired(r.idx)
				if r.idx == launched && launched < n {
					fr.launchCopy(launched)
					launched++
					for launched < n && delays[launched] <= 0 {
						fr.launchCopy(launched)
						launched++
					}
					if launched < n {
						ht.arm(delays[launched], launched)
					}
				}
				continue
			}
			completed++
			if r.err != nil {
				if _, ok := r.err.(ReplicaError); !ok {
					r.err = ReplicaError{Attempt: r.idx, Err: r.err}
				}
				errs = append(errs, r.err)
			}
			if collect != nil {
				*collect = append(*collect, Outcome[T]{
					Value: r.val, Err: r.err, Index: r.idx, Latency: time.Since(start),
				})
			}
			if r.err == nil {
				wins++
				if wins == 1 {
					firstVal, firstIdx = r.val, r.idx
				}
				if !fr.waitAll && wins == q {
					ht.stop()
					return Result[T]{
						Value:     firstVal,
						Index:     firstIdx,
						Latency:   time.Since(start),
						Launched:  launched,
						Cancelled: launched - fr.drainCompleted(completed),
					}, nil
				}
			} else if !fr.waitAll && len(errs) > n-q {
				// Too few replicas remain for the quorum; fail now rather
				// than waiting out the stragglers.
				ht.stop()
				return callFailed(q, wins, launched, launched-fr.drainCompleted(completed), errs, collect)
			}
			if completed == n {
				if wins >= q {
					// waitAll completion (a non-waitAll call returned at
					// the quorum-th success above).
					return Result[T]{
						Value:    firstVal,
						Index:    firstIdx,
						Latency:  time.Since(start),
						Launched: launched,
					}, nil
				}
				return callFailed(q, wins, launched, 0, errs, collect)
			}
			if completed == launched && launched < n && (fr.waitAll || wins < q) {
				// Every outstanding copy has completed and the operation
				// is not done: launch the next copy immediately rather
				// than waiting out its hedge delay.
				ht.stop()
				fr.launchCopy(launched)
				launched++
				for launched < n && delays != nil && delays[launched] <= 0 {
					fr.launchCopy(launched)
					launched++
				}
				if delays != nil && launched < n {
					ht.arm(delays[launched], launched)
				}
			}
		case <-ht.rtC:
			// Sub-tick runtime-timer hedge deadline.
			ht.rtC = nil
			fr.launchCopy(launched)
			launched++
			for launched < n && delays[launched] <= 0 {
				fr.launchCopy(launched)
				launched++
			}
			if launched < n {
				ht.arm(delays[launched], launched)
			}
		case <-ctxDone:
			ht.stop()
			return Result[T]{Launched: launched, Cancelled: launched - fr.drainCompleted(completed)}, ctx.Err()
		}
	}
}

// callFailed builds a failed call's result: for quorum 1 the joined
// ReplicaErrors (the historical First/Hedged contract), for larger
// quorums a *QuorumError carrying the partial outcomes. Launched and
// Cancelled are reported even on failure: budget accounting and
// observers need the real fan-out and the copies reclaimed in flight.
func callFailed[T any](q, wins, launched, cancelled int, errs []error, collect *[]Outcome[T]) (Result[T], error) {
	joined := errors.Join(errs...)
	res := Result[T]{Launched: launched, Cancelled: cancelled}
	if q == 1 {
		return res, joined
	}
	var outs []Outcome[T]
	if collect != nil {
		// Clone: the error may outlive the caller's sink (which a retry
		// through the same WithCollectOutcomes resets and refills) and
		// the frame's inline scratch (which recycles with the frame).
		outs = append(outs, *collect...)
	}
	return res, &QuorumError[T]{Need: q, Wins: wins, Outcomes: outs, Err: joined}
}
