package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the single request execution engine behind every way of
// performing a redundant operation: the free functions First, Hedged,
// HedgedSchedule, Quorum, and All are thin shims over call, and
// Group.Do/KeyedGroup.Do drive it with the per-call options assembled
// from CallOptions. One engine means every completion rule (first wins,
// R-of-N quorum, run-everything) composes with every launch schedule
// (all at once, fixed hedge, adaptive hedge) and shares one error
// taxonomy.

// ReplicaError describes one replica's failure within a redundant
// operation. Errors from a failed operation are joined with errors.Join,
// so errors.As(&ReplicaError{}) recovers the first per-replica detail and
// errors.Is reaches every underlying cause.
type ReplicaError struct {
	// Name is the replica's registration name; empty for the free
	// functions, whose replicas are anonymous.
	Name string
	// Attempt is the copy's launch index within the operation (0 is the
	// primary).
	Attempt int
	// Err is the replica's error.
	Err error
}

// Error implements error. For anonymous replicas the format is
// "replica <attempt>: <err>" (the historical format of First and Quorum);
// named replicas include the name.
func (e ReplicaError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("replica %s (copy %d): %v", e.Name, e.Attempt, e.Err)
	}
	return fmt.Sprintf("replica %d: %v", e.Attempt, e.Err)
}

// Unwrap returns the underlying replica error.
func (e ReplicaError) Unwrap() error { return e.Err }

// ErrQuorumUnreachable reports that an operation's quorum cannot be (or
// could not be) met: too many replicas failed, or the requested quorum
// exceeds the replica set. Match it with errors.Is; errors.As into a
// *QuorumError recovers the partial outcomes.
var ErrQuorumUnreachable = errors.New("redundancy: quorum unreachable")

// QuorumError is the failure of a quorum (q > 1) call. It carries the
// partial outcomes — every copy that completed, success or failure, in
// completion order — so callers can salvage reads that reached some but
// not all replicas. errors.Is(err, ErrQuorumUnreachable) matches it, and
// errors.Is also reaches each replica's underlying error through the
// joined ReplicaErrors in Err.
type QuorumError[T any] struct {
	// Need is the required number of successes; Wins is how many arrived.
	Need, Wins int
	// Outcomes are the completed copies' outcomes in completion order.
	Outcomes []Outcome[T]
	// Err is the joined per-replica failure detail.
	Err error
}

// Error implements error.
func (e *QuorumError[T]) Error() string {
	return fmt.Sprintf("redundancy: quorum %d unreachable (%d succeeded): %v", e.Need, e.Wins, e.Err)
}

// Unwrap exposes both the ErrQuorumUnreachable sentinel and the joined
// replica errors to errors.Is/errors.As.
func (e *QuorumError[T]) Unwrap() []error { return []error{ErrQuorumUnreachable, e.Err} }

// copyCtx is the per-copy derived context: every launched copy receives
// its own context value whose Done channel closes the moment the
// operation completes — first win, quorum met, unrecoverable failure, or
// caller cancel — so losing copies stop work and release their replica
// promptly. All copies of one call are cancelled at the same instant, so
// the per-copy values share a single done channel; deadlines and values
// pass through from the caller's context. This costs one small
// allocation per copy instead of a full context.WithCancel chain.
type copyCtx struct {
	context.Context // parent: Deadline and Value pass through
	done            <-chan struct{}
}

// Done implements context.Context.
func (c *copyCtx) Done() <-chan struct{} { return c.done }

// Err implements context.Context. Once the call completes, the copy is
// cancelled; a caller-level cancellation cause is preserved.
func (c *copyCtx) Err() error {
	select {
	case <-c.done:
		if err := c.Context.Err(); err != nil {
			return err
		}
		return context.Canceled
	default:
		return c.Context.Err()
	}
}

// callSpec is one operation's execution plan, assembled by the shims and
// by Group.Do.
type callSpec[T any] struct {
	// n is the number of copies that may launch.
	n int
	// quorum is the number of successes that completes the operation;
	// values below 1 mean 1 (first response wins).
	quorum int
	// delays staggers launches: copy i launches delays[i] after copy i-1
	// (delays[0] is ignored; the first copy always starts immediately).
	// A non-positive delay launches its copy immediately, without a timer
	// round-trip. nil launches every copy at once.
	delays []time.Duration
	// waitAll runs every copy to completion: no cancellation of losers,
	// no early return on quorum or on failures (the measurement mode
	// behind All).
	waitAll bool
	// run performs copy i. Errors it returns are wrapped in ReplicaError
	// unless they already are one (Group wraps with the replica's name).
	run func(ctx context.Context, i int) (T, error)
	// collect, when non-nil, is reset to length zero and then appended
	// with every completed copy's outcome (success and failure alike) in
	// completion order. Copies cancelled before completing do not appear.
	collect *[]Outcome[T]
}

// call executes one redundant operation. It returns the operation's
// Result — Value/Index are the first success, Latency is the time to
// completion (the quorum-th success), Launched the copies started,
// Cancelled the copies reclaimed in flight — or, on failure, the joined
// ReplicaErrors (quorum 1) or a *QuorumError (quorum > 1). A call never
// leaks goroutines: each copy runs under a derived copyCtx cancelled at
// call completion, and losers always deliver into a buffered channel.
func call[T any](ctx context.Context, sp callSpec[T]) (Result[T], error) {
	var zero Result[T]
	n := sp.n
	if n == 0 {
		return zero, ErrNoReplicas
	}
	q := sp.quorum
	if q < 1 {
		q = 1
	}
	if q > n {
		return zero, fmt.Errorf("redundancy: quorum %d of %d replicas: %w", q, n, ErrQuorumUnreachable)
	}
	start := time.Now()
	// copyDone closes the moment the call completes, cancelling every
	// copy still in flight. waitAll (the measurement mode behind All)
	// never cancels: copies get the caller's context directly.
	var copyDone chan struct{}
	if !sp.waitAll {
		copyDone = make(chan struct{})
		defer close(copyDone)
	}

	// Buffered so losers can always deliver and exit: no goroutine leaks.
	results := make(chan indexed[T], n)
	launch := func(i int) {
		cctx := ctx
		if copyDone != nil {
			cctx = &copyCtx{Context: ctx, done: copyDone}
		}
		go func() {
			v, err := sp.run(cctx, i)
			results <- indexed[T]{val: v, err: err, idx: i}
		}()
	}

	launched := 0
	if sp.delays == nil {
		for i := 0; i < n; i++ {
			launch(i)
		}
		launched = n
	} else {
		// Copy 0 always starts immediately; so does every consecutive
		// copy whose delay is non-positive (a zero hedge delay means full
		// replication, not a timer round-trip).
		launch(0)
		launched = 1
		for launched < n && sp.delays[launched] <= 0 {
			launch(launched)
			launched++
		}
	}

	collect := sp.collect
	if collect == nil && q > 1 {
		// Quorum failures carry partial outcomes even when the caller
		// did not ask to collect them.
		var local []Outcome[T]
		collect = &local
	}
	if collect != nil {
		*collect = (*collect)[:0]
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	if sp.delays != nil && launched < n {
		timer = time.NewTimer(sp.delays[launched])
		timerC = timer.C
	}
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	var ctxDone <-chan struct{}
	if !sp.waitAll {
		ctxDone = ctx.Done()
	}

	var (
		errs      []error
		wins      int
		firstVal  T
		firstIdx  int
		completed int
	)
	for {
		select {
		case r := <-results:
			completed++
			if r.err != nil {
				if _, ok := r.err.(ReplicaError); !ok {
					r.err = ReplicaError{Attempt: r.idx, Err: r.err}
				}
				errs = append(errs, r.err)
			}
			if collect != nil {
				*collect = append(*collect, Outcome[T]{
					Value: r.val, Err: r.err, Index: r.idx, Latency: time.Since(start),
				})
			}
			if r.err == nil {
				wins++
				if wins == 1 {
					firstVal, firstIdx = r.val, r.idx
				}
				if !sp.waitAll && wins == q {
					return Result[T]{
						Value:     firstVal,
						Index:     firstIdx,
						Latency:   time.Since(start),
						Launched:  launched,
						Cancelled: cancelledAt(results, launched, completed),
					}, nil
				}
			} else if !sp.waitAll && len(errs) > n-q {
				// Too few replicas remain for the quorum; fail now rather
				// than waiting out the stragglers.
				return callFailed(q, wins, launched, cancelledAt(results, launched, completed), errs, collect)
			}
			if completed == n {
				if wins >= q {
					// waitAll completion (a non-waitAll call returned at
					// the quorum-th success above).
					return Result[T]{
						Value:    firstVal,
						Index:    firstIdx,
						Latency:  time.Since(start),
						Launched: launched,
					}, nil
				}
				return callFailed(q, wins, launched, 0, errs, collect)
			}
			if completed == launched && launched < n && (sp.waitAll || wins < q) {
				// Every outstanding copy has completed and the operation
				// is not done: launch the next copy immediately rather
				// than waiting out its hedge delay.
				if timer != nil {
					timer.Stop()
				}
				launch(launched)
				launched++
				for launched < n && sp.delays != nil && sp.delays[launched] <= 0 {
					launch(launched)
					launched++
				}
				if sp.delays != nil && launched < n {
					timer = time.NewTimer(sp.delays[launched])
					timerC = timer.C
				} else {
					timerC = nil
				}
			}
		case <-timerC:
			launch(launched)
			launched++
			for launched < n && sp.delays[launched] <= 0 {
				launch(launched)
				launched++
			}
			if launched < n {
				timer = time.NewTimer(sp.delays[launched])
				timerC = timer.C
			} else {
				timerC = nil
			}
		case <-ctxDone:
			return Result[T]{Launched: launched, Cancelled: cancelledAt(results, launched, completed)}, ctx.Err()
		}
	}
}

// cancelledAt reports how many copies are genuinely still in flight at
// call completion. Results already delivered into the buffered channel
// but not yet drained belong to copies that completed before the call
// did — no capacity was reclaimed from them, so counting them as
// cancelled would overstate the reclaim metric. They are deliberately
// not folded into wins or outcome collection: the call's semantic
// result was already decided when it returned.
func cancelledAt[T any](results <-chan indexed[T], launched, completed int) int {
	for {
		select {
		case <-results:
			completed++
		default:
			return launched - completed
		}
	}
}

// callFailed builds a failed call's result: for quorum 1 the joined
// ReplicaErrors (the historical First/Hedged contract), for larger
// quorums a *QuorumError carrying the partial outcomes. Launched and
// Cancelled are reported even on failure: budget accounting and
// observers need the real fan-out and the copies reclaimed in flight.
func callFailed[T any](q, wins, launched, cancelled int, errs []error, collect *[]Outcome[T]) (Result[T], error) {
	joined := errors.Join(errs...)
	res := Result[T]{Launched: launched, Cancelled: cancelled}
	if q == 1 {
		return res, joined
	}
	var outs []Outcome[T]
	if collect != nil {
		// Clone: the error may outlive the caller's sink, which a retry
		// through the same WithCollectOutcomes resets and refills.
		outs = append(outs, *collect...)
	}
	return res, &QuorumError[T]{Need: q, Wins: wins, Outcomes: outs, Err: joined}
}
