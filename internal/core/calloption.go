package core

// CallOption customizes a single Group.Do or KeyedGroup.Do operation,
// composing over the group's installed strategy without touching shared
// state: one latency-critical request can raise its quorum, override the
// hedging strategy, cap its fan-out, or label itself for per-class
// metrics while every other caller of the same group is unaffected.
//
// A zero-option call pays nothing for the mechanism: Do only assembles a
// configuration when at least one option is passed.
type CallOption func(*callOpts)

// callOpts is the per-call configuration assembled from CallOptions.
type callOpts struct {
	quorum    int
	fanoutCap int
	label     string
	strategy  Strategy
	outcomes  any // *[]Outcome[T]; type-checked against the group's T in Do
}

// noCallOpts is the shared zero configuration for the DoValue fast
// lane. plan only reads its callOpts, so one read-only instance serves
// every call.
var noCallOpts callOpts

// applyCallOptions folds opts into a callOpts. It is only called when at
// least one option is present, so the zero-option hot path never
// materializes (or heap-allocates) a configuration.
func applyCallOptions(opts []CallOption) callOpts {
	var co callOpts
	for _, o := range opts {
		if o != nil {
			o(&co)
		}
	}
	return co
}

// WithQuorum completes the call only after q replicas succeed (R-of-N
// reads: the consistency side of redundancy). q = 1 is the default
// first-response-wins; values below 1 mean 1. The fan-out is raised to at
// least q, and the q quorum copies always launch immediately — they are
// correctness requirements, so the strategy's hedge schedule applies only
// to copies beyond them. A q larger than the replica set fails the call
// with ErrQuorumUnreachable. On failure the error is a *QuorumError
// carrying the partial outcomes.
func WithQuorum(q int) CallOption {
	return func(c *callOpts) { c.quorum = q }
}

// WithStrategyOverride runs this call under s instead of the group's
// installed strategy — e.g. full replication for one latency-critical
// request over a group that normally hedges. The group's strategy is
// unchanged and concurrent callers are unaffected. A nil s leaves the
// group's strategy in effect.
func WithStrategyOverride(s Strategy) CallOption {
	return func(c *callOpts) { c.strategy = s }
}

// WithFanoutCap caps the number of copies this call may launch,
// overriding a larger strategy fan-out (e.g. degrade an expensive
// operation to a single copy). Values below 1 mean no cap. A quorum
// requirement takes precedence: the fan-out never drops below the call's
// quorum.
func WithFanoutCap(n int) CallOption {
	return func(c *callOpts) { c.fanoutCap = n }
}

// WithLabel tags the call's Observation, so an Observer (e.g. Counters)
// can aggregate metrics per traffic class — "checkout" vs "prefetch" —
// through one shared group.
func WithLabel(label string) CallOption {
	return func(c *callOpts) { c.label = label }
}

// WithCollectOutcomes gathers the per-copy outcomes of the call into
// *dst: every copy that completed before the call returned, success and
// failure alike, in completion order (copies cancelled in flight do not
// appear). dst is reset to length zero first. The element type must
// match the group's result type, otherwise Do fails with an error.
func WithCollectOutcomes[T any](dst *[]Outcome[T]) CallOption {
	return func(c *callOpts) { c.outcomes = dst }
}
