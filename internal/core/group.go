package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Policy controls how a Group replicates each operation.
type Policy struct {
	// Copies is the number of replicas to use per operation (k). Values
	// below 1 are treated as 1. If the group has fewer replicas, every
	// replica is used.
	Copies int
	// HedgeDelay, when non-zero, staggers copies: copy i+1 launches only
	// if no response arrived HedgeDelay after copy i. Zero launches all
	// copies immediately (full replication, as in §2 of the paper).
	HedgeDelay time.Duration
	// Selection chooses which k of the group's replicas serve an
	// operation. The default is SelectRanked.
	Selection Selection
}

// Selection is a replica-selection strategy.
type Selection int

const (
	// SelectRanked picks the k replicas with the lowest observed
	// exponentially-weighted mean latency — the paper's DNS strategy
	// ("querying anywhere from 1 to 10 of the best servers in parallel").
	// Unprobed replicas rank first so every replica gets measured.
	SelectRanked Selection = iota
	// SelectRandom picks k distinct replicas uniformly at random — the
	// queueing model's strategy, which spreads replicated load evenly.
	SelectRandom
	// SelectRoundRobin rotates through replicas in order.
	SelectRoundRobin
)

func (s Selection) String() string {
	switch s {
	case SelectRanked:
		return "ranked"
	case SelectRandom:
		return "random"
	case SelectRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Group manages a set of named replicas for repeated redundant operations,
// tracking per-replica latency so ranked selection can prefer the fastest.
// All methods are safe for concurrent use.
type Group[T any] struct {
	mu       sync.Mutex
	replicas []member[T]
	policy   Policy
	budget   *Budget
	observer Observer
	rng      *rand.Rand
	rr       int // round-robin cursor
}

type member[T any] struct {
	name string
	fn   Replica[T]
	ewma ewma
}

// GroupOption configures a Group.
type GroupOption[T any] func(*Group[T])

// WithBudget attaches a hedging budget: operations consult the budget
// before launching extra copies, degrading to a single copy when the
// budget is exhausted.
func WithBudget[T any](b *Budget) GroupOption[T] {
	return func(g *Group[T]) { g.budget = b }
}

// WithObserver attaches an Observer for per-operation metrics.
func WithObserver[T any](o Observer) GroupOption[T] {
	return func(g *Group[T]) { g.observer = o }
}

// WithSeed fixes the seed of the group's random selection, for
// reproducible tests and simulations.
func WithSeed[T any](seed int64) GroupOption[T] {
	return func(g *Group[T]) { g.rng = rand.New(rand.NewSource(seed)) }
}

// NewGroup creates a Group with the given policy.
func NewGroup[T any](policy Policy, opts ...GroupOption[T]) *Group[T] {
	if policy.Copies < 1 {
		policy.Copies = 1
	}
	g := &Group[T]{
		policy: policy,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// Add registers a replica under a diagnostic name. Replicas cannot be
// removed; real deployments roll a new Group on membership change, which
// keeps the hot path lock cheap.
func (g *Group[T]) Add(name string, fn Replica[T]) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.replicas = append(g.replicas, member[T]{name: name, fn: fn, ewma: newEWMA()})
}

// Len returns the number of registered replicas.
func (g *Group[T]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.replicas)
}

// Names returns the replica names in registration order.
func (g *Group[T]) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.replicas))
	for i, m := range g.replicas {
		out[i] = m.name
	}
	return out
}

// RankedNames returns the replica names ordered by current estimated
// latency, fastest first (unprobed replicas first).
func (g *Group[T]) RankedNames() []string {
	g.mu.Lock()
	idx := g.rankedLocked()
	names := make([]string, len(idx))
	for i, j := range idx {
		names[i] = g.replicas[j].name
	}
	g.mu.Unlock()
	return names
}

// EstimatedLatency returns the current latency estimate for a replica and
// whether it has been observed at all.
func (g *Group[T]) EstimatedLatency(name string) (time.Duration, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.replicas {
		if g.replicas[i].name == name {
			v, ok := g.replicas[i].ewma.value()
			return time.Duration(v), ok
		}
	}
	return 0, false
}

// Do performs one redundant operation under the group's policy.
func (g *Group[T]) Do(ctx context.Context) (Result[T], error) {
	picked, names := g.pick()
	if len(picked) == 0 {
		var zero Result[T]
		return zero, ErrNoReplicas
	}

	copies := len(picked)
	extra := copies - 1
	granted := 0
	if extra > 0 && g.budget != nil {
		granted = g.budget.Acquire(extra)
		if granted < extra {
			copies = 1 + granted
			picked = picked[:copies]
			names = names[:copies]
		}
	}

	// Wrap each replica to record per-copy latency into the ranker.
	wrapped := make([]Replica[T], copies)
	for i := range picked {
		i := i
		m := picked[i]
		wrapped[i] = func(ctx context.Context) (T, error) {
			t0 := time.Now()
			v, err := m.fn(ctx)
			if err == nil {
				g.observe(m.name, time.Since(t0))
			}
			return v, err
		}
	}

	var res Result[T]
	var err error
	if g.policy.HedgeDelay > 0 {
		res, err = Hedged(ctx, g.policy.HedgeDelay, wrapped...)
	} else {
		res, err = First(ctx, wrapped...)
	}
	// Tokens pay for copies actually launched; refund hedge copies the
	// primary's fast response made unnecessary.
	if granted > 0 {
		used := res.Launched - 1
		if used < 0 {
			used = 0
		}
		if unused := granted - used; unused > 0 {
			g.budget.Release(unused)
		}
	}
	if g.observer != nil {
		name := ""
		if err == nil && res.Index < len(names) {
			name = names[res.Index]
		}
		g.observer.Observe(Observation{
			Winner:   name,
			Launched: res.Launched,
			Latency:  res.Latency,
			Err:      err,
		})
	}
	return res, err
}

// ProbeAll runs every replica once, concurrently and to completion (no
// racing, no cancellation on first response), recording each successful
// replica's latency for ranked selection. It mirrors the measurement stage
// of the paper's DNS experiment, which ranks all servers by mean response
// time before replicating to the best k. It returns the number of replicas
// that responded successfully.
//
// Use it to warm a ranked Group: racing alone cannot measure losers,
// because their contexts are cancelled as soon as the winner returns.
func (g *Group[T]) ProbeAll(ctx context.Context) int {
	g.mu.Lock()
	members := append([]member[T](nil), g.replicas...)
	g.mu.Unlock()
	type outcome struct {
		name string
		d    time.Duration
		err  error
	}
	ch := make(chan outcome, len(members))
	for _, m := range members {
		m := m
		go func() {
			t0 := time.Now()
			_, err := m.fn(ctx)
			ch <- outcome{name: m.name, d: time.Since(t0), err: err}
		}()
	}
	ok := 0
	for range members {
		o := <-ch
		if o.err == nil {
			g.observe(o.name, o.d)
			ok++
		}
	}
	return ok
}

// pick selects the policy's k replicas; it returns the members and their
// names in launch order.
func (g *Group[T]) pick() ([]member[T], []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.replicas)
	if n == 0 {
		return nil, nil
	}
	k := g.policy.Copies
	if k > n {
		k = n
	}
	var idx []int
	switch g.policy.Selection {
	case SelectRandom:
		idx = g.rng.Perm(n)[:k]
	case SelectRoundRobin:
		idx = make([]int, k)
		for i := 0; i < k; i++ {
			idx[i] = (g.rr + i) % n
		}
		g.rr = (g.rr + k) % n
	default: // SelectRanked
		idx = g.rankedLocked()[:k]
	}
	picked := make([]member[T], k)
	names := make([]string, k)
	for i, j := range idx {
		picked[i] = g.replicas[j]
		names[i] = g.replicas[j].name
	}
	return picked, names
}

// rankedLocked returns all replica indices ordered fastest-first, unprobed
// replicas first (so they get probed). Caller holds g.mu.
func (g *Group[T]) rankedLocked() []int {
	idx := make([]int, len(g.replicas))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, oka := g.replicas[idx[a]].ewma.value()
		vb, okb := g.replicas[idx[b]].ewma.value()
		if oka != okb {
			return !oka // unprobed first
		}
		return va < vb
	})
	return idx
}

func (g *Group[T]) observe(name string, d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.replicas {
		if g.replicas[i].name == name {
			g.replicas[i].ewma.add(float64(d))
			return
		}
	}
}

// ewma is an exponentially weighted moving average of latencies.
type ewma struct {
	val   float64
	n     int64
	alpha float64
}

func newEWMA() ewma { return ewma{alpha: 0.2} }

func (e *ewma) add(x float64) {
	if e.n == 0 {
		e.val = x
	} else {
		e.val = e.alpha*x + (1-e.alpha)*e.val
	}
	e.n++
}

func (e *ewma) value() (float64, bool) { return e.val, e.n > 0 }
