package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Policy is the declarative form of the static replication strategy: a
// fixed number of copies, an optional fixed hedge delay, and a selection
// method. It is retained for compatibility and convenience — a Policy
// converts to the equivalent Fixed strategy via Strategy(); groups
// configured with richer strategies (AdaptiveHedge, FullReplicate, or
// user implementations) are built with NewStrategyGroup or swapped with
// SetStrategy.
type Policy struct {
	// Copies is the number of replicas to use per operation (k). Values
	// below 1 are treated as 1. If the group has fewer replicas, every
	// replica is used.
	Copies int
	// HedgeDelay, when non-zero, staggers copies: copy i+1 launches only
	// if no response arrived HedgeDelay after copy i. Zero launches all
	// copies immediately (full replication, as in §2 of the paper).
	HedgeDelay time.Duration
	// Selection chooses which k of the group's replicas serve an
	// operation. The default is SelectRanked.
	Selection Selection
}

// Strategy returns the Fixed strategy equivalent to the policy.
func (p Policy) Strategy() Strategy {
	if p.Copies < 1 {
		p.Copies = 1
	}
	return Fixed{Copies: p.Copies, HedgeDelay: p.HedgeDelay, Selection: p.Selection}
}

// Selection is a replica-selection strategy.
type Selection int

const (
	// SelectRanked picks the k replicas with the lowest observed
	// exponentially-weighted mean latency — the paper's DNS strategy
	// ("querying anywhere from 1 to 10 of the best servers in parallel").
	// Unprobed replicas rank first so every replica gets measured.
	SelectRanked Selection = iota
	// SelectRandom picks k distinct replicas uniformly at random — the
	// queueing model's strategy, which spreads replicated load evenly.
	SelectRandom
	// SelectRoundRobin rotates through replicas in order.
	SelectRoundRobin
)

func (s Selection) String() string {
	switch s {
	case SelectRanked:
		return "ranked"
	case SelectRandom:
		return "random"
	case SelectRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// ArgReplica is a replica that receives a per-call argument along with the
// context — e.g. the key of a replicated KV read, or the question of a DNS
// lookup. See KeyedGroup.
type ArgReplica[K, T any] func(ctx context.Context, arg K) (T, error)

// KeyedGroup is the copy-on-write replica-set engine. Membership and
// strategy live in an immutable snapshot behind an atomic pointer, and
// each replica's latency statistics are a lock-free digest (EWMA mean
// plus log-scale histogram), so the Do hot path — snapshot read, replica
// selection, schedule computation, latency observation — never takes a
// lock and never contends with other callers. Writers (Add, Remove,
// SetPolicy, SetStrategy) serialize among themselves and publish a new
// snapshot; operations already in flight keep the snapshot they started
// with.
//
// The type parameter K is the per-call argument replicas receive, which is
// what makes one engine reusable across keyed workloads (a replicated
// memcached client passes the key; a DNS resolver passes the question)
// without smuggling arguments through context values. For operations that
// need no argument, use Group.
//
// All methods are safe for concurrent use.
type KeyedGroup[K, T any] struct {
	state    atomic.Pointer[groupState[K, T]]
	budget   *Budget
	observer Observer
	seed     uint64
	seq      atomic.Uint64 // per-Do position in the random-selection stream
	rr       atomic.Uint64 // round-robin cursor
	mu       sync.Mutex    // serializes writers; readers never take it
	// frames recycles callFrames across this group's calls. A frame
	// reaches the pool only via callFrame.release's proved-drained path,
	// so pooled frames are always quiescent.
	frames sync.Pool
}

// getFrame returns a quiescent call frame holding the engine's reference.
func (g *KeyedGroup[K, T]) getFrame() *callFrame[K, T] {
	fr, _ := g.frames.Get().(*callFrame[K, T])
	if fr == nil {
		fr = &callFrame[K, T]{pool: &g.frames}
		fr.results = make(chan indexed[T], frameChanCap)
	}
	fr.refs.Store(1)
	return fr
}

// groupState is one immutable membership snapshot. The slice and the
// strategy are never mutated after publication; member latency state is
// updated through atomics, so members are shared across snapshots and a
// digest survives unrelated membership changes.
type groupState[K, T any] struct {
	strategy Strategy
	members  []*member[K, T]
}

type member[K, T any] struct {
	name string
	// rec is the replica wrapped (once, at Add) to fold each successful
	// call's latency into the digest — no per-operation closures.
	rec ArgReplica[K, T]
	lat LatDigest
	// cancelled counts this replica's copies that observed their derived
	// context's cancellation and returned its error — losing copies the
	// engine reclaimed, kept separate from real failures.
	cancelled atomic.Int64
}

// Handle is an opaque reference to one registered replica, for callers
// that route among replicas themselves instead of using the group's
// Selection — internal/ring resolves a key's primary and successors on a
// consistent-hash ring into Handles once per topology change, then passes
// them to DoPicked on every call. A Handle obtained from Add or Lookup
// stays usable after its replica is removed from the group: calls through
// a stale handle still reach the replica and fold into its digest, the
// same grace period the copy-on-write snapshot gives operations already
// in flight. The zero Handle is invalid.
type Handle[K, T any] struct{ m *member[K, T] }

// Valid reports whether the handle references a replica.
func (h Handle[K, T]) Valid() bool { return h.m != nil }

// Name returns the replica's registration name ("" for the zero Handle).
func (h Handle[K, T]) Name() string {
	if h.m == nil {
		return ""
	}
	return h.m.name
}

// memberDigests adapts a picked-handle slice to the Digests view a
// Strategy consumes, without copying.
type memberDigests[K, T any] struct{ ms []Handle[K, T] }

func (d memberDigests[K, T]) Len() int            { return len(d.ms) }
func (d memberDigests[K, T]) At(i int) *LatDigest { return &d.ms[i].m.lat }

// KeyedGroupOption configures a KeyedGroup.
type KeyedGroupOption[K, T any] func(*KeyedGroup[K, T])

// WithKeyedBudget attaches a hedging budget: operations consult the budget
// before launching extra copies, degrading to a single copy when the
// budget is exhausted.
func WithKeyedBudget[K, T any](b *Budget) KeyedGroupOption[K, T] {
	return func(g *KeyedGroup[K, T]) { g.budget = b }
}

// WithKeyedObserver attaches an Observer for per-operation metrics.
func WithKeyedObserver[K, T any](o Observer) KeyedGroupOption[K, T] {
	return func(g *KeyedGroup[K, T]) { g.observer = o }
}

// WithKeyedSeed fixes the seed of the group's random selection, for
// reproducible tests and simulations.
func WithKeyedSeed[K, T any](seed int64) KeyedGroupOption[K, T] {
	return func(g *KeyedGroup[K, T]) { g.seed = uint64(seed) }
}

// NewKeyedGroup creates a KeyedGroup with the given policy.
func NewKeyedGroup[K, T any](policy Policy, opts ...KeyedGroupOption[K, T]) *KeyedGroup[K, T] {
	return NewStrategyKeyedGroup(policy.Strategy(), opts...)
}

// NewStrategyKeyedGroup creates a KeyedGroup with the given strategy.
func NewStrategyKeyedGroup[K, T any](s Strategy, opts ...KeyedGroupOption[K, T]) *KeyedGroup[K, T] {
	g := &KeyedGroup[K, T]{}
	g.init(s)
	for _, o := range opts {
		o(g)
	}
	return g
}

func (g *KeyedGroup[K, T]) init(s Strategy) {
	if s == nil {
		s = Fixed{Copies: 1}
	}
	g.seed = uint64(time.Now().UnixNano())
	g.state.Store(&groupState[K, T]{strategy: s})
}

// Add registers a replica under a diagnostic name and returns its
// Handle, for callers that route calls to explicit replica subsets with
// DoPicked (everyone else can ignore the return value).
func (g *KeyedGroup[K, T]) Add(name string, fn ArgReplica[K, T]) Handle[K, T] {
	m := &member[K, T]{name: name}
	m.rec = func(ctx context.Context, arg K) (T, error) {
		t0 := time.Now()
		v, err := fn(ctx, arg)
		if err == nil {
			m.lat.observe(float64(time.Since(t0)))
		} else if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			// The copy lost and honored its derived context: reclaimed
			// work, not a replica failure.
			m.cancelled.Add(1)
		}
		return v, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	members := make([]*member[K, T], len(st.members)+1)
	copy(members, st.members)
	members[len(st.members)] = m
	g.state.Store(&groupState[K, T]{strategy: st.strategy, members: members})
	return Handle[K, T]{m: m}
}

// Lookup returns the Handle of the first replica registered under name,
// and whether one exists.
func (g *KeyedGroup[K, T]) Lookup(name string) (Handle[K, T], bool) {
	for _, m := range g.state.Load().members {
		if m.name == name {
			return Handle[K, T]{m: m}, true
		}
	}
	return Handle[K, T]{}, false
}

// Remove drops the first replica registered under name and reports whether
// one was found. Operations already in flight keep the snapshot they
// started with — they may still complete against the removed replica — but
// no subsequent operation selects it.
func (g *KeyedGroup[K, T]) Remove(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	for i, m := range st.members {
		if m.name == name {
			members := make([]*member[K, T], 0, len(st.members)-1)
			members = append(members, st.members[:i]...)
			members = append(members, st.members[i+1:]...)
			g.state.Store(&groupState[K, T]{strategy: st.strategy, members: members})
			return true
		}
	}
	return false
}

// SetPolicy replaces the group's strategy with the policy's Fixed
// equivalent. The change is atomic with respect to membership: every
// operation sees one consistent (strategy, members) pair.
func (g *KeyedGroup[K, T]) SetPolicy(policy Policy) {
	g.SetStrategy(policy.Strategy())
}

// SetStrategy replaces the group's replication strategy through the
// copy-on-write snapshot: operations already in flight finish under the
// strategy they started with, and every subsequent operation sees the
// new strategy with a consistent membership view.
func (g *KeyedGroup[K, T]) SetStrategy(s Strategy) {
	if s == nil {
		s = Fixed{Copies: 1}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	g.state.Store(&groupState[K, T]{strategy: s, members: st.members})
}

// Strategy returns the current replication strategy.
func (g *KeyedGroup[K, T]) Strategy() Strategy { return g.state.Load().strategy }

// Policy returns the current strategy in Policy form. For a Fixed
// strategy (including any installed via SetPolicy) the round-trip is
// exact; for other strategies the fan-out and selection are reported and
// HedgeDelay is zero (the schedule is dynamic).
func (g *KeyedGroup[K, T]) Policy() Policy {
	st := g.state.Load()
	return strategyPolicy(st.strategy, len(st.members))
}

// strategyPolicy renders a strategy in Policy form. n is the current
// group size, used to report a meaningful fan-out (rather than the
// internal clamp sentinel) for strategies that mean "all replicas".
func strategyPolicy(s Strategy, n int) Policy {
	if f, ok := s.(Fixed); ok {
		k, _ := f.Fanout()
		return Policy{Copies: k, HedgeDelay: f.HedgeDelay, Selection: f.Selection}
	}
	k, sel := s.Fanout()
	if k > n {
		k = n // Do clamps the same way
	}
	if k < 1 {
		k = 1 // matches Policy's own below-1 normalization
	}
	return Policy{Copies: k, Selection: sel}
}

// Len returns the number of registered replicas.
func (g *KeyedGroup[K, T]) Len() int { return len(g.state.Load().members) }

// Names returns the replica names in registration order.
func (g *KeyedGroup[K, T]) Names() []string {
	members := g.state.Load().members
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.name
	}
	return out
}

// RankedNames returns the replica names ordered by current estimated
// latency, fastest first (unprobed replicas first).
func (g *KeyedGroup[K, T]) RankedNames() []string {
	members := g.state.Load().members
	type entry struct {
		name string
		v    float64
		ok   bool
	}
	es := make([]entry, len(members))
	for i, m := range members {
		v, ok := m.lat.value()
		es[i] = entry{m.name, v, ok}
	}
	sort.SliceStable(es, func(a, b int) bool {
		if es[a].ok != es[b].ok {
			return !es[a].ok // unprobed first
		}
		return es[a].v < es[b].v
	})
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	return names
}

// EstimatedLatency returns the current latency estimate for a replica and
// whether it has been observed at all.
func (g *KeyedGroup[K, T]) EstimatedLatency(name string) (time.Duration, bool) {
	for _, m := range g.state.Load().members {
		if m.name == name {
			return m.lat.Mean()
		}
	}
	return 0, false
}

// Digest returns the latency digest of the replica registered under name
// (mean, quantiles, observation count), or nil if no such replica.
func (g *KeyedGroup[K, T]) Digest(name string) *LatDigest {
	for _, m := range g.state.Load().members {
		if m.name == name {
			return &m.lat
		}
	}
	return nil
}

// ReplicaStats describes one replica in a Stats snapshot.
type ReplicaStats struct {
	// Name is the replica's registration name.
	Name string
	// EstimatedLatency is the EWMA of successful-call latencies (zero if
	// unobserved).
	EstimatedLatency time.Duration
	// Observed reports whether any successful call has been recorded.
	Observed bool
	// Observations counts the successful calls folded into the digest.
	Observations int64
	// Cancelled counts this replica's copies cancelled in flight (losing
	// copies that honored their derived context), separate from failures.
	Cancelled int64
	// P50, P95, P99 are latency-quantile estimates from the replica's
	// digest (zero if unobserved).
	P50, P95, P99 time.Duration
}

// GroupStats is a point-in-time view of a group. Strategy and membership
// come from a single atomic snapshot, so they are mutually consistent even
// while other goroutines Add, Remove, or SetPolicy.
type GroupStats struct {
	// Policy is the strategy in Policy form (exact for Fixed strategies,
	// fan-out and selection only otherwise).
	Policy Policy
	// Strategy describes the active strategy (its String()), making
	// Stats() output self-describing.
	Strategy string
	// Replicas holds per-replica latency statistics.
	Replicas []ReplicaStats
}

var statsQuantiles = []float64{0.5, 0.95, 0.99}

// Stats returns a consistent snapshot of the group's strategy,
// membership, and per-replica latency digests.
func (g *KeyedGroup[K, T]) Stats() GroupStats {
	st := g.state.Load()
	s := GroupStats{
		Policy:   strategyPolicy(st.strategy, len(st.members)),
		Strategy: st.strategy.String(),
		Replicas: make([]ReplicaStats, len(st.members)),
	}
	var qs [3]time.Duration
	for i, m := range st.members {
		v, ok := m.lat.value()
		m.lat.Quantiles(statsQuantiles, qs[:])
		s.Replicas[i] = ReplicaStats{
			Name:             m.name,
			EstimatedLatency: time.Duration(v),
			Observed:         ok,
			Observations:     m.lat.Count(),
			Cancelled:        m.cancelled.Load(),
			P50:              qs[0],
			P95:              qs[1],
			P99:              qs[2],
		}
	}
	return s
}

// Do performs one redundant operation under the group's strategy, passing
// arg to every launched replica. Per-call options compose over the
// group's snapshot without touching shared state: WithQuorum completes
// only after q successes, WithStrategyOverride swaps the strategy for
// this call only, WithFanoutCap bounds the copies, WithLabel tags the
// Observation, and WithCollectOutcomes gathers per-copy detail. A call
// with no options runs the group's strategy with first-response-wins
// semantics and pays nothing for the option machinery.
func (g *KeyedGroup[K, T]) Do(ctx context.Context, arg K, opts ...CallOption) (Result[T], error) {
	st := g.state.Load()
	n := len(st.members)
	if n == 0 {
		var zero Result[T]
		return zero, ErrNoReplicas
	}
	var co callOpts
	if len(opts) > 0 {
		co = applyCallOptions(opts)
	}
	p, err := g.plan(st, &co, n, n)
	if err != nil {
		var zero Result[T]
		return zero, err
	}
	fr := g.getFrame()
	g.pickInto(st, p.sel, fr.pickedSlice(p.k))
	return g.launchFrame(ctx, arg, &p, fr)
}

// DoValue is the fast lane of Do for the common case: no per-call
// options, quorum 1, first success wins, and only the value matters. It
// is semantically identical to Do(ctx, arg) followed by reading
// res.Value — the group's strategy, budget, governor, and observer all
// still apply — but it skips option materialization entirely and, on
// the pooled call frame, completes a 2-copy call in ≤4 allocations.
func (g *KeyedGroup[K, T]) DoValue(ctx context.Context, arg K) (T, error) {
	st := g.state.Load()
	n := len(st.members)
	if n == 0 {
		var zero T
		return zero, ErrNoReplicas
	}
	p, err := g.plan(st, &noCallOpts, n, n)
	if err != nil {
		var zero T
		return zero, err
	}
	fr := g.getFrame()
	g.pickInto(st, p.sel, fr.pickedSlice(p.k))
	res, err := g.launchFrame(ctx, arg, &p, fr)
	return res.Value, err
}

// DoPicked performs one redundant operation over an explicit, ordered
// replica subset instead of the group's Selection: picked[0] launches
// first (the primary), picked[1] is the first hedge or quorum peer, and
// so on. The group's strategy — or a WithStrategyOverride — still
// decides fan-out and launch schedule; a fan-out of k uses the first k
// handles, and every per-call option, the budget, the governor, and the
// observer compose exactly as in Do. This is the routing primitive
// behind internal/ring: the ring maps a key to its primary and
// successors on a consistent-hash ring and delegates the call itself
// here, so sharded routing reuses the whole engine instead of
// reimplementing it.
//
// The quorum, if any, is taken within the subset (a quorum larger than
// len(picked) fails with ErrQuorumUnreachable), and a governor attached
// to the strategy still normalizes its utilization by the full group
// size — the subset is one key's placement, not the system's capacity.
// The slice is read for the duration of the call and must not be
// modified until it returns; a zero Handle in it is an error.
func (g *KeyedGroup[K, T]) DoPicked(ctx context.Context, arg K, picked []Handle[K, T], opts ...CallOption) (Result[T], error) {
	var zero Result[T]
	n := len(picked)
	if n == 0 {
		return zero, ErrNoReplicas
	}
	for _, h := range picked {
		if h.m == nil {
			return zero, errors.New("redundancy: DoPicked: zero Handle")
		}
	}
	st := g.state.Load()
	var co callOpts
	if len(opts) > 0 {
		co = applyCallOptions(opts)
	}
	// The governor's utilization unit is in-flight copies per replica of
	// the whole set; stale handles may briefly exceed the group size.
	capacity := len(st.members)
	if capacity < n {
		capacity = n
	}
	p, err := g.plan(st, &co, n, capacity)
	if err != nil {
		return zero, err
	}
	// Copy the caller's handles into the frame: the engine (and losing
	// copies) may read the picked set after DoPicked returns, and the
	// caller's slice is only promised stable until then.
	fr := g.getFrame()
	copy(fr.pickedSlice(p.k), picked)
	return g.launchFrame(ctx, arg, &p, fr)
}

// callPlan is one call's resolved configuration, shared by Do (which
// then picks replicas by Selection over the whole group) and DoPicked
// (which receives an explicitly routed subset).
type callPlan[T any] struct {
	strat   Strategy
	fixed   Fixed
	isFixed bool
	gov     *Governor
	collect *[]Outcome[T]
	label   string
	q, k    int
	sel     Selection
}

// plan resolves the strategy, options, quorum, and fan-out for one call.
// n is the number of eligible replicas (the group size for Do, the
// subset size for DoPicked); capacity is the replica count the governor
// normalizes utilization by.
func (g *KeyedGroup[K, T]) plan(st *groupState[K, T], co *callOpts, n, capacity int) (callPlan[T], error) {
	var p callPlan[T]
	p.strat = st.strategy
	if co.strategy != nil {
		p.strat = co.strategy
	}
	// A load-aware strategy carries a Governor: feed it one utilization
	// sample per operation (in-flight copies per replica, the offered
	// load including redundancy) before Fanout consults its EWMA, and
	// account this call's copies against it in launch.
	if gs, ok := p.strat.(*GovernedStrategy); ok {
		p.gov = gs.gov
		p.gov.sample(capacity)
	}
	if co.outcomes != nil {
		c, ok := co.outcomes.(*[]Outcome[T])
		if !ok {
			return p, fmt.Errorf("redundancy: WithCollectOutcomes sink is %T; this group collects []Outcome with its own result type", co.outcomes)
		}
		p.collect = c
	}
	p.label = co.label
	p.q = co.quorum
	if p.q < 1 {
		p.q = 1
	}
	if p.q > n {
		return p, fmt.Errorf("redundancy: quorum %d of %d replicas: %w", p.q, n, ErrQuorumUnreachable)
	}
	// The built-in static strategies are fast-pathed by concrete type so
	// the common case pays no interface dispatch and no Digests view.
	p.fixed, p.isFixed = p.strat.(Fixed)
	var k int
	if p.isFixed {
		k, p.sel = p.fixed.Fanout()
	} else {
		k, p.sel = p.strat.Fanout()
	}
	if co.fanoutCap > 0 && k > co.fanoutCap {
		k = co.fanoutCap
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	if p.gov != nil {
		// Gate against the clamped fan-out so "all replicas" strategies
		// shed from the real set size. The quorum raise below outranks
		// the governor: quorum copies are correctness requirements, not
		// shed-able hedges.
		k = p.gov.Allow(k)
	}
	if k < p.q {
		// A quorum needs at least q copies; the requirement outranks both
		// the strategy's fan-out and WithFanoutCap (q <= n was checked).
		k = p.q
	}
	p.k = k
	return p, nil
}

// launchFrame executes one planned call over the frame's picked
// replicas: budget charge and refund, launch schedule, the call engine
// itself, and the observation. It consumes the engine's frame reference
// — the frame must not be touched after launchFrame returns.
func (g *KeyedGroup[K, T]) launchFrame(ctx context.Context, arg K, p *callPlan[T], fr *callFrame[K, T]) (Result[T], error) {
	// The first q copies are mandatory (they are the quorum, or for q = 1
	// the operation itself); only copies beyond them are hedges charged
	// against the budget.
	q := p.q
	copies := len(fr.picked)
	granted := 0
	if extra := copies - q; extra > 0 && g.budget != nil {
		granted = g.budget.Acquire(extra)
		if granted < extra {
			copies = q + granted
			fr.picked = fr.picked[:copies]
		}
	}

	fr.n = copies
	fr.quorum = q
	fr.arg = arg
	fr.gov = p.gov
	fr.collect = p.collect
	fr.ensureChan(copies)
	fr.delays = g.scheduleInto(p, fr.picked, q, fr.delaysSlice(copies))
	res, err := runFrame(ctx, fr)
	// Tokens pay for copies actually launched; refund hedge copies that a
	// fast primary — or an early quorum — made unnecessary. This runs on
	// every return path of the engine, success or failure, exactly once.
	if granted > 0 {
		used := res.Launched - q
		if used < 0 {
			used = 0
		}
		if unused := granted - used; unused > 0 {
			g.budget.Release(unused)
		}
	}
	if g.observer != nil {
		name := ""
		if err == nil && res.Index < len(fr.picked) {
			name = fr.picked[res.Index].m.name
		}
		g.observer.Observe(Observation{
			Winner:    name,
			Launched:  res.Launched,
			Cancelled: res.Cancelled,
			Latency:   res.Latency,
			Err:       err,
			Label:     p.label,
		})
	}
	fr.release(1)
	return res, err
}

// ProbeAll runs every replica once with arg, concurrently and to
// completion (no racing, no cancellation on first response), recording
// each successful replica's latency for ranked selection and for the
// per-replica digests adaptive strategies consult. It mirrors the
// measurement stage of the paper's DNS experiment, which ranks all servers
// by mean response time before replicating to the best k. It returns the
// number of replicas that responded successfully.
//
// Use it to warm a ranked or adaptive group: racing alone cannot measure
// losers, because their contexts are cancelled as soon as the winner
// returns.
func (g *KeyedGroup[K, T]) ProbeAll(ctx context.Context, arg K) int {
	members := g.state.Load().members
	ch := make(chan error, len(members))
	for _, m := range members {
		m := m
		go func() {
			_, err := m.rec(ctx, arg)
			ch <- err
		}()
	}
	ok := 0
	for range members {
		if err := <-ch; err == nil {
			ok++
		}
	}
	return ok
}

// pickInto fills out (len k <= len members) with the given selection, in
// launch order, without locking.
func (g *KeyedGroup[K, T]) pickInto(st *groupState[K, T], sel Selection, out []Handle[K, T]) {
	members := st.members
	n := len(members)
	k := len(out)
	switch sel {
	case SelectRandom:
		rng := splitmix{s: g.seed ^ g.seq.Add(1)*0x9e3779b97f4a7c15}
		if 2*k > n {
			// Dense pick: partial Fisher-Yates over a scratch copy. The
			// scratch stays on the stack for typical group sizes.
			var tbuf [16]*member[K, T]
			var tmp []*member[K, T]
			if n <= len(tbuf) {
				tmp = tbuf[:n]
			} else {
				tmp = make([]*member[K, T], n)
			}
			copy(tmp, members)
			for i := 0; i < k; i++ {
				j := i + rng.intn(n-i)
				tmp[i], tmp[j] = tmp[j], tmp[i]
			}
			for i := range out {
				out[i] = Handle[K, T]{m: tmp[i]}
			}
			return
		}
		// Sparse pick: rejection sampling, k << n.
		for i := 0; i < k; i++ {
		retry:
			m := members[rng.intn(n)]
			for j := 0; j < i; j++ {
				if out[j].m == m {
					goto retry
				}
			}
			out[i] = Handle[K, T]{m: m}
		}
	case SelectRoundRobin:
		start := int((g.rr.Add(uint64(k)) - uint64(k)) % uint64(n))
		for i := range out {
			out[i] = Handle[K, T]{m: members[(start+i)%n]}
		}
	default: // SelectRanked
		// Partial selection: keep out[:cnt] sorted by key (unprobed first,
		// then fastest, ties by registration order). One pass, no full
		// sort, and the key scratch stays on the stack for k <= 4.
		var vbuf [frameInline]float64
		var vals []float64
		if k <= len(vbuf) {
			vals = vbuf[:k]
		} else {
			vals = make([]float64, k)
		}
		cnt := 0
		for _, m := range members {
			key, ok := m.lat.value()
			if !ok {
				key = -1 // unprobed sorts before any real estimate
			}
			if cnt < k {
				i := cnt
				for i > 0 && vals[i-1] > key {
					vals[i], out[i] = vals[i-1], out[i-1]
					i--
				}
				vals[i], out[i] = key, Handle[K, T]{m: m}
				cnt++
			} else if key < vals[k-1] {
				i := k - 1
				for i > 0 && vals[i-1] > key {
					vals[i], out[i] = vals[i-1], out[i-1]
					i--
				}
				vals[i], out[i] = key, Handle[K, T]{m: m}
			}
		}
	}
}

// Group manages a set of named replicas for repeated redundant operations,
// tracking per-replica latency so ranked selection can prefer the fastest.
// It is the argument-free specialization of KeyedGroup and shares its
// lock-free copy-on-write engine; replicas may be added and removed while
// operations are in flight. All methods are safe for concurrent use.
type Group[T any] struct {
	KeyedGroup[struct{}, T]
}

// GroupOption configures a Group.
type GroupOption[T any] func(*Group[T])

// WithBudget attaches a hedging budget: operations consult the budget
// before launching extra copies, degrading to a single copy when the
// budget is exhausted.
func WithBudget[T any](b *Budget) GroupOption[T] {
	return func(g *Group[T]) { g.budget = b }
}

// WithObserver attaches an Observer for per-operation metrics.
func WithObserver[T any](o Observer) GroupOption[T] {
	return func(g *Group[T]) { g.observer = o }
}

// WithSeed fixes the seed of the group's random selection, for
// reproducible tests and simulations.
func WithSeed[T any](seed int64) GroupOption[T] {
	return func(g *Group[T]) { g.seed = uint64(seed) }
}

// NewGroup creates a Group with the given policy.
func NewGroup[T any](policy Policy, opts ...GroupOption[T]) *Group[T] {
	return NewStrategyGroup[T](policy.Strategy(), opts...)
}

// NewStrategyGroup creates a Group with the given strategy.
func NewStrategyGroup[T any](s Strategy, opts ...GroupOption[T]) *Group[T] {
	g := &Group[T]{}
	g.init(s)
	for _, o := range opts {
		o(g)
	}
	return g
}

// Add registers a replica under a diagnostic name and returns its Handle
// (see KeyedGroup.Add).
func (g *Group[T]) Add(name string, fn Replica[T]) Handle[struct{}, T] {
	return g.KeyedGroup.Add(name, func(ctx context.Context, _ struct{}) (T, error) { return fn(ctx) })
}

// Do performs one redundant operation under the group's strategy,
// customized by any per-call options. See KeyedGroup.Do.
func (g *Group[T]) Do(ctx context.Context, opts ...CallOption) (Result[T], error) {
	return g.KeyedGroup.Do(ctx, struct{}{}, opts...)
}

// DoValue is the fast lane of Do for the no-options, first-success-wins
// case where only the value matters. See KeyedGroup.DoValue.
func (g *Group[T]) DoValue(ctx context.Context) (T, error) {
	return g.KeyedGroup.DoValue(ctx, struct{}{})
}

// ProbeAll runs every replica once, concurrently and to completion,
// recording each successful replica's latency for ranked selection. See
// KeyedGroup.ProbeAll.
func (g *Group[T]) ProbeAll(ctx context.Context) int {
	return g.KeyedGroup.ProbeAll(ctx, struct{}{})
}

// splitmix is splitmix64: a tiny PRNG whose whole state is one word, so
// each Do can derive an independent, deterministic stream from the group
// seed and an atomic sequence number instead of locking a shared source.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }
