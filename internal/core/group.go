package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Policy controls how a Group replicates each operation.
type Policy struct {
	// Copies is the number of replicas to use per operation (k). Values
	// below 1 are treated as 1. If the group has fewer replicas, every
	// replica is used.
	Copies int
	// HedgeDelay, when non-zero, staggers copies: copy i+1 launches only
	// if no response arrived HedgeDelay after copy i. Zero launches all
	// copies immediately (full replication, as in §2 of the paper).
	HedgeDelay time.Duration
	// Selection chooses which k of the group's replicas serve an
	// operation. The default is SelectRanked.
	Selection Selection
}

// Selection is a replica-selection strategy.
type Selection int

const (
	// SelectRanked picks the k replicas with the lowest observed
	// exponentially-weighted mean latency — the paper's DNS strategy
	// ("querying anywhere from 1 to 10 of the best servers in parallel").
	// Unprobed replicas rank first so every replica gets measured.
	SelectRanked Selection = iota
	// SelectRandom picks k distinct replicas uniformly at random — the
	// queueing model's strategy, which spreads replicated load evenly.
	SelectRandom
	// SelectRoundRobin rotates through replicas in order.
	SelectRoundRobin
)

func (s Selection) String() string {
	switch s {
	case SelectRanked:
		return "ranked"
	case SelectRandom:
		return "random"
	case SelectRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// ArgReplica is a replica that receives a per-call argument along with the
// context — e.g. the key of a replicated KV read, or the question of a DNS
// lookup. See KeyedGroup.
type ArgReplica[K, T any] func(ctx context.Context, arg K) (T, error)

// KeyedGroup is the copy-on-write replica-set engine. Membership and
// policy live in an immutable snapshot behind an atomic pointer, and each
// replica's latency estimate is a lock-free EWMA, so the Do hot path —
// snapshot read, replica selection, latency observation — never takes a
// lock and never contends with other callers. Writers (Add, Remove,
// SetPolicy) serialize among themselves and publish a new snapshot;
// operations already in flight keep the snapshot they started with.
//
// The type parameter K is the per-call argument replicas receive, which is
// what makes one engine reusable across keyed workloads (a replicated
// memcached client passes the key; a DNS resolver passes the question)
// without smuggling arguments through context values. For operations that
// need no argument, use Group.
//
// All methods are safe for concurrent use.
type KeyedGroup[K, T any] struct {
	state    atomic.Pointer[groupState[K, T]]
	budget   *Budget
	observer Observer
	seed     uint64
	seq      atomic.Uint64 // per-Do position in the random-selection stream
	rr       atomic.Uint64 // round-robin cursor
	mu       sync.Mutex    // serializes writers; readers never take it
}

// groupState is one immutable membership snapshot. The slice and the
// policy are never mutated after publication; member latency state is
// updated through atomics, so members are shared across snapshots and an
// estimate survives unrelated membership changes.
type groupState[K, T any] struct {
	policy  Policy
	members []*member[K, T]
}

type member[K, T any] struct {
	name string
	// rec is the replica wrapped (once, at Add) to fold each successful
	// call's latency into the estimate — no per-operation closures.
	rec ArgReplica[K, T]
	lat latEstimate
}

// KeyedGroupOption configures a KeyedGroup.
type KeyedGroupOption[K, T any] func(*KeyedGroup[K, T])

// WithKeyedBudget attaches a hedging budget: operations consult the budget
// before launching extra copies, degrading to a single copy when the
// budget is exhausted.
func WithKeyedBudget[K, T any](b *Budget) KeyedGroupOption[K, T] {
	return func(g *KeyedGroup[K, T]) { g.budget = b }
}

// WithKeyedObserver attaches an Observer for per-operation metrics.
func WithKeyedObserver[K, T any](o Observer) KeyedGroupOption[K, T] {
	return func(g *KeyedGroup[K, T]) { g.observer = o }
}

// WithKeyedSeed fixes the seed of the group's random selection, for
// reproducible tests and simulations.
func WithKeyedSeed[K, T any](seed int64) KeyedGroupOption[K, T] {
	return func(g *KeyedGroup[K, T]) { g.seed = uint64(seed) }
}

// NewKeyedGroup creates a KeyedGroup with the given policy.
func NewKeyedGroup[K, T any](policy Policy, opts ...KeyedGroupOption[K, T]) *KeyedGroup[K, T] {
	g := &KeyedGroup[K, T]{}
	g.init(policy)
	for _, o := range opts {
		o(g)
	}
	return g
}

func (g *KeyedGroup[K, T]) init(policy Policy) {
	if policy.Copies < 1 {
		policy.Copies = 1
	}
	g.seed = uint64(time.Now().UnixNano())
	g.state.Store(&groupState[K, T]{policy: policy})
}

// Add registers a replica under a diagnostic name.
func (g *KeyedGroup[K, T]) Add(name string, fn ArgReplica[K, T]) {
	m := &member[K, T]{name: name}
	m.lat.bits.Store(unobserved)
	m.rec = func(ctx context.Context, arg K) (T, error) {
		t0 := time.Now()
		v, err := fn(ctx, arg)
		if err == nil {
			m.lat.observe(float64(time.Since(t0)))
		}
		return v, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	members := make([]*member[K, T], len(st.members)+1)
	copy(members, st.members)
	members[len(st.members)] = m
	g.state.Store(&groupState[K, T]{policy: st.policy, members: members})
}

// Remove drops the first replica registered under name and reports whether
// one was found. Operations already in flight keep the snapshot they
// started with — they may still complete against the removed replica — but
// no subsequent operation selects it.
func (g *KeyedGroup[K, T]) Remove(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	for i, m := range st.members {
		if m.name == name {
			members := make([]*member[K, T], 0, len(st.members)-1)
			members = append(members, st.members[:i]...)
			members = append(members, st.members[i+1:]...)
			g.state.Store(&groupState[K, T]{policy: st.policy, members: members})
			return true
		}
	}
	return false
}

// SetPolicy replaces the group's policy. The change is atomic with respect
// to membership: every operation sees one consistent (policy, members)
// pair.
func (g *KeyedGroup[K, T]) SetPolicy(policy Policy) {
	if policy.Copies < 1 {
		policy.Copies = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state.Load()
	g.state.Store(&groupState[K, T]{policy: policy, members: st.members})
}

// Policy returns the current policy.
func (g *KeyedGroup[K, T]) Policy() Policy { return g.state.Load().policy }

// Len returns the number of registered replicas.
func (g *KeyedGroup[K, T]) Len() int { return len(g.state.Load().members) }

// Names returns the replica names in registration order.
func (g *KeyedGroup[K, T]) Names() []string {
	members := g.state.Load().members
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.name
	}
	return out
}

// RankedNames returns the replica names ordered by current estimated
// latency, fastest first (unprobed replicas first).
func (g *KeyedGroup[K, T]) RankedNames() []string {
	members := g.state.Load().members
	type entry struct {
		name string
		v    float64
		ok   bool
	}
	es := make([]entry, len(members))
	for i, m := range members {
		v, ok := m.lat.value()
		es[i] = entry{m.name, v, ok}
	}
	sort.SliceStable(es, func(a, b int) bool {
		if es[a].ok != es[b].ok {
			return !es[a].ok // unprobed first
		}
		return es[a].v < es[b].v
	})
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	return names
}

// EstimatedLatency returns the current latency estimate for a replica and
// whether it has been observed at all.
func (g *KeyedGroup[K, T]) EstimatedLatency(name string) (time.Duration, bool) {
	for _, m := range g.state.Load().members {
		if m.name == name {
			v, ok := m.lat.value()
			return time.Duration(v), ok
		}
	}
	return 0, false
}

// ReplicaStats describes one replica in a Stats snapshot.
type ReplicaStats struct {
	// Name is the replica's registration name.
	Name string
	// EstimatedLatency is the EWMA of successful-call latencies (zero if
	// unobserved).
	EstimatedLatency time.Duration
	// Observed reports whether any successful call has been recorded.
	Observed bool
	// Observations counts the successful calls folded into the estimate.
	Observations int64
}

// GroupStats is a point-in-time view of a group. Policy and membership
// come from a single atomic snapshot, so they are mutually consistent even
// while other goroutines Add, Remove, or SetPolicy.
type GroupStats struct {
	Policy   Policy
	Replicas []ReplicaStats
}

// Stats returns a consistent snapshot of the group's policy, membership,
// and per-replica latency estimates.
func (g *KeyedGroup[K, T]) Stats() GroupStats {
	st := g.state.Load()
	s := GroupStats{
		Policy:   st.policy,
		Replicas: make([]ReplicaStats, len(st.members)),
	}
	for i, m := range st.members {
		v, ok := m.lat.value()
		s.Replicas[i] = ReplicaStats{
			Name:             m.name,
			EstimatedLatency: time.Duration(v),
			Observed:         ok,
			Observations:     m.lat.count.Load(),
		}
	}
	return s
}

// Do performs one redundant operation under the group's policy, passing
// arg to every launched replica.
func (g *KeyedGroup[K, T]) Do(ctx context.Context, arg K) (Result[T], error) {
	st := g.state.Load()
	n := len(st.members)
	if n == 0 {
		var zero Result[T]
		return zero, ErrNoReplicas
	}
	k := st.policy.Copies
	if k > n {
		k = n
	}
	picked := make([]*member[K, T], k)
	g.pickInto(st, picked)

	copies := k
	granted := 0
	if extra := copies - 1; extra > 0 && g.budget != nil {
		granted = g.budget.Acquire(extra)
		if granted < extra {
			copies = 1 + granted
			picked = picked[:copies]
		}
	}

	var delays []time.Duration
	if st.policy.HedgeDelay > 0 {
		delays = make([]time.Duration, copies)
		for i := range delays {
			delays[i] = st.policy.HedgeDelay
		}
	}
	res, err := race(ctx, delays, copies, func(ctx context.Context, i int) (T, error) {
		return picked[i].rec(ctx, arg)
	})
	// Tokens pay for copies actually launched; refund hedge copies the
	// primary's fast response made unnecessary.
	if granted > 0 {
		used := res.Launched - 1
		if used < 0 {
			used = 0
		}
		if unused := granted - used; unused > 0 {
			g.budget.Release(unused)
		}
	}
	if g.observer != nil {
		name := ""
		if err == nil && res.Index < len(picked) {
			name = picked[res.Index].name
		}
		g.observer.Observe(Observation{
			Winner:   name,
			Launched: res.Launched,
			Latency:  res.Latency,
			Err:      err,
		})
	}
	return res, err
}

// ProbeAll runs every replica once with arg, concurrently and to
// completion (no racing, no cancellation on first response), recording
// each successful replica's latency for ranked selection. It mirrors the
// measurement stage of the paper's DNS experiment, which ranks all servers
// by mean response time before replicating to the best k. It returns the
// number of replicas that responded successfully.
//
// Use it to warm a ranked group: racing alone cannot measure losers,
// because their contexts are cancelled as soon as the winner returns.
func (g *KeyedGroup[K, T]) ProbeAll(ctx context.Context, arg K) int {
	members := g.state.Load().members
	ch := make(chan error, len(members))
	for _, m := range members {
		m := m
		go func() {
			_, err := m.rec(ctx, arg)
			ch <- err
		}()
	}
	ok := 0
	for range members {
		if err := <-ch; err == nil {
			ok++
		}
	}
	return ok
}

// pickInto fills out (len k <= len members) with the policy's selection,
// in launch order, without locking.
func (g *KeyedGroup[K, T]) pickInto(st *groupState[K, T], out []*member[K, T]) {
	members := st.members
	n := len(members)
	k := len(out)
	switch st.policy.Selection {
	case SelectRandom:
		rng := splitmix{s: g.seed ^ g.seq.Add(1)*0x9e3779b97f4a7c15}
		if 2*k > n {
			// Dense pick: partial Fisher-Yates over a scratch copy.
			tmp := make([]*member[K, T], n)
			copy(tmp, members)
			for i := 0; i < k; i++ {
				j := i + rng.intn(n-i)
				tmp[i], tmp[j] = tmp[j], tmp[i]
			}
			copy(out, tmp[:k])
			return
		}
		// Sparse pick: rejection sampling, k << n.
		for i := 0; i < k; i++ {
		retry:
			m := members[rng.intn(n)]
			for j := 0; j < i; j++ {
				if out[j] == m {
					goto retry
				}
			}
			out[i] = m
		}
	case SelectRoundRobin:
		start := int((g.rr.Add(uint64(k)) - uint64(k)) % uint64(n))
		for i := range out {
			out[i] = members[(start+i)%n]
		}
	default: // SelectRanked
		// Partial selection: keep out[:cnt] sorted by key (unprobed first,
		// then fastest, ties by registration order). One pass, no full sort.
		vals := make([]float64, k)
		cnt := 0
		for _, m := range members {
			key, ok := m.lat.value()
			if !ok {
				key = -1 // unprobed sorts before any real estimate
			}
			if cnt < k {
				i := cnt
				for i > 0 && vals[i-1] > key {
					vals[i], out[i] = vals[i-1], out[i-1]
					i--
				}
				vals[i], out[i] = key, m
				cnt++
			} else if key < vals[k-1] {
				i := k - 1
				for i > 0 && vals[i-1] > key {
					vals[i], out[i] = vals[i-1], out[i-1]
					i--
				}
				vals[i], out[i] = key, m
			}
		}
	}
}

// Group manages a set of named replicas for repeated redundant operations,
// tracking per-replica latency so ranked selection can prefer the fastest.
// It is the argument-free specialization of KeyedGroup and shares its
// lock-free copy-on-write engine; replicas may be added and removed while
// operations are in flight. All methods are safe for concurrent use.
type Group[T any] struct {
	KeyedGroup[struct{}, T]
}

// GroupOption configures a Group.
type GroupOption[T any] func(*Group[T])

// WithBudget attaches a hedging budget: operations consult the budget
// before launching extra copies, degrading to a single copy when the
// budget is exhausted.
func WithBudget[T any](b *Budget) GroupOption[T] {
	return func(g *Group[T]) { g.budget = b }
}

// WithObserver attaches an Observer for per-operation metrics.
func WithObserver[T any](o Observer) GroupOption[T] {
	return func(g *Group[T]) { g.observer = o }
}

// WithSeed fixes the seed of the group's random selection, for
// reproducible tests and simulations.
func WithSeed[T any](seed int64) GroupOption[T] {
	return func(g *Group[T]) { g.seed = uint64(seed) }
}

// NewGroup creates a Group with the given policy.
func NewGroup[T any](policy Policy, opts ...GroupOption[T]) *Group[T] {
	g := &Group[T]{}
	g.init(policy)
	for _, o := range opts {
		o(g)
	}
	return g
}

// Add registers a replica under a diagnostic name.
func (g *Group[T]) Add(name string, fn Replica[T]) {
	g.KeyedGroup.Add(name, func(ctx context.Context, _ struct{}) (T, error) { return fn(ctx) })
}

// Do performs one redundant operation under the group's policy.
func (g *Group[T]) Do(ctx context.Context) (Result[T], error) {
	return g.KeyedGroup.Do(ctx, struct{}{})
}

// ProbeAll runs every replica once, concurrently and to completion,
// recording each successful replica's latency for ranked selection. See
// KeyedGroup.ProbeAll.
func (g *Group[T]) ProbeAll(ctx context.Context) int {
	return g.KeyedGroup.ProbeAll(ctx, struct{}{})
}

const ewmaAlpha = 0.2

// unobserved is the latEstimate sentinel: a NaN bit pattern that no EWMA
// of finite non-negative latencies can ever equal.
const unobserved = ^uint64(0)

// latEstimate is a lock-free exponentially weighted moving average of
// latencies: the current value lives as float64 bits in one atomic word,
// updated by CAS, so concurrent observations from racing copies never
// block each other or the selection path reading them.
type latEstimate struct {
	bits  atomic.Uint64
	count atomic.Int64
}

func (l *latEstimate) observe(x float64) {
	for {
		old := l.bits.Load()
		v := x
		if old != unobserved {
			v = ewmaAlpha*x + (1-ewmaAlpha)*math.Float64frombits(old)
		}
		if l.bits.CompareAndSwap(old, math.Float64bits(v)) {
			l.count.Add(1)
			return
		}
	}
}

func (l *latEstimate) value() (float64, bool) {
	b := l.bits.Load()
	if b == unobserved {
		return 0, false
	}
	return math.Float64frombits(b), true
}

// splitmix is splitmix64: a tiny PRNG whose whole state is one word, so
// each Do can derive an independent, deterministic stream from the group
// seed and an atomic sequence number instead of locking a shared source.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }
