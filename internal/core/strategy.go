package core

import (
	"fmt"
	"math"
	"time"
)

// Strategy decides, per operation, how a Group replicates: how many
// copies to launch, which replicas serve them, and the launch schedule.
// The three built-in implementations are Fixed (static fan-out and hedge
// delay — the classic Policy semantics), AdaptiveHedge (hedge when the
// elapsed time exceeds an observed latency quantile, self-tuning as the
// per-replica digests fill), and FullReplicate (every copy immediately).
//
// A Strategy is installed per Group and swapped atomically through the
// group's copy-on-write snapshot (SetStrategy), so every operation sees
// one consistent (strategy, membership) pair. Implementations must be
// immutable after installation and safe for concurrent use: Fanout and
// Schedule are called on the lock-free Do hot path.
type Strategy interface {
	// Fanout returns the maximum number of copies per operation (values
	// below 1 are treated as 1; values above the group size are clamped)
	// and the selection method that picks them.
	Fanout() (copies int, sel Selection)

	// Schedule computes the launch schedule for one operation over the
	// selected replicas, whose latency digests are exposed in launch
	// order. It returns nil to launch every copy immediately, or a slice
	// of per-copy delays where delays[i] is the wait after copy i-1's
	// launch before copy i launches (delays[0] is ignored; the first copy
	// always starts immediately). A schedule of the wrong length is
	// padded with its last entry or truncated.
	//
	// nil versus empty: a nil return is the explicit "no schedule —
	// launch all copies at once" contract (FullReplicate returns it
	// unconditionally), and an EMPTY non-nil slice is normalized to mean
	// exactly the same thing. An implementation cannot accidentally
	// serialize its copies by returning a zero-length scratch slice: the
	// engine never indexes a schedule shorter than the fan-out.
	//
	// Implementations that also satisfy InlineScheduler skip this method
	// on the hot path.
	Schedule(d Digests) []time.Duration

	// String describes the strategy; GroupStats carries it so Stats()
	// output is self-describing.
	String() string
}

// InlineScheduler is an optional Strategy extension for the
// allocation-free hot path: ScheduleInto computes the same launch
// schedule as Schedule but writes it into dst, the caller's scratch
// (the call frame's inline array), instead of allocating a fresh slice
// per operation.
//
// Contract: dst has length d.Len(). Return nil to launch every copy
// immediately (Schedule's nil contract), otherwise fill dst and return
// it. The caller owns dst and will mutate it (quorum zeroing), so
// implementations must not retain it or return strategy-owned memory —
// a foreign return is defensively copied into dst.
//
// Strategies that do not implement InlineScheduler keep working: the
// engine falls back to Schedule and normalizes the result into dst.
// All built-in strategies implement it.
type InlineScheduler interface {
	ScheduleInto(d Digests, dst []time.Duration) []time.Duration
}

// strategyScheduleInto resolves a strategy's schedule into buf (length
// = d.Len()): the InlineScheduler fast path when available, otherwise
// the legacy Schedule normalized into buf. The result is always
// buf-backed (or nil), so callers may mutate it freely.
func strategyScheduleInto(s Strategy, d Digests, buf []time.Duration) []time.Duration {
	if is, ok := s.(InlineScheduler); ok {
		out := is.ScheduleInto(d, buf)
		if len(out) == 0 {
			return nil
		}
		if len(out) == len(buf) && &out[0] == &buf[0] {
			return out
		}
		// The implementation returned its own memory; bring the schedule
		// into the caller-owned buffer.
		return normalizeInto(out, buf)
	}
	return normalizeInto(s.Schedule(d), buf)
}

// normalizeInto copies a schedule into buf, truncating or padding with
// the last entry so the result has exactly len(buf) entries. An empty
// (nil or zero-length) schedule normalizes to nil: launch all copies
// immediately, never a bogus all-zero "schedule".
func normalizeInto(delays []time.Duration, buf []time.Duration) []time.Duration {
	if len(delays) == 0 {
		return nil
	}
	m := copy(buf, delays)
	last := delays[len(delays)-1]
	for i := m; i < len(buf); i++ {
		buf[i] = last
	}
	return buf
}

// Digests is a read-only view over the selected replicas' latency
// digests, in launch order, passed to Strategy.Schedule.
type Digests interface {
	Len() int
	At(i int) *LatDigest
}

// DigestList is a ready-made Digests over a slice, for testing custom
// strategies and for callers driving Schedule directly.
type DigestList []*LatDigest

// Len implements Digests.
func (d DigestList) Len() int { return len(d) }

// At implements Digests.
func (d DigestList) At(i int) *LatDigest { return d[i] }

// Fixed is the static strategy: a fixed number of copies, an optional
// fixed hedge delay, and a selection method. It reproduces the classic
// Policy semantics exactly; Policy.Strategy converts.
type Fixed struct {
	// Copies is the number of replicas per operation (k). Values below 1
	// are treated as 1.
	Copies int
	// HedgeDelay, when non-zero, staggers copies: copy i+1 launches only
	// if no response arrived HedgeDelay after copy i. Zero launches all
	// copies immediately.
	HedgeDelay time.Duration
	// Selection chooses which k replicas serve an operation.
	Selection Selection
}

// Fanout implements Strategy.
func (f Fixed) Fanout() (int, Selection) {
	k := f.Copies
	if k < 1 {
		k = 1
	}
	return k, f.Selection
}

// Schedule implements Strategy.
func (f Fixed) Schedule(d Digests) []time.Duration {
	if f.HedgeDelay <= 0 {
		return nil
	}
	return f.ScheduleInto(d, make([]time.Duration, d.Len()))
}

// ScheduleInto implements InlineScheduler.
func (f Fixed) ScheduleInto(d Digests, dst []time.Duration) []time.Duration {
	if f.HedgeDelay <= 0 {
		return nil
	}
	for i := range dst {
		dst[i] = f.HedgeDelay
	}
	return dst
}

// String implements Strategy.
func (f Fixed) String() string {
	k, _ := f.Fanout()
	if f.HedgeDelay > 0 {
		return fmt.Sprintf("fixed(k=%d, hedge %v, %s)", k, f.HedgeDelay, f.Selection)
	}
	return fmt.Sprintf("fixed(k=%d, %s)", k, f.Selection)
}

// FullReplicate launches every copy immediately — the paper's §2 full
// replication, most effective below the threshold load.
type FullReplicate struct {
	// Copies is the number of replicas per operation; values below 1
	// mean "every replica in the group".
	Copies int
	// Selection chooses which replicas serve an operation.
	Selection Selection
}

// Fanout implements Strategy.
func (f FullReplicate) Fanout() (int, Selection) {
	k := f.Copies
	if k < 1 {
		k = math.MaxInt32 // clamped to the group size by Do
	}
	return k, f.Selection
}

// Schedule implements Strategy. The nil return is the "launch every
// copy immediately" contract, not an omission.
func (FullReplicate) Schedule(Digests) []time.Duration { return nil }

// ScheduleInto implements InlineScheduler.
func (FullReplicate) ScheduleInto(Digests, []time.Duration) []time.Duration { return nil }

// String implements Strategy.
func (f FullReplicate) String() string {
	if f.Copies < 1 {
		return fmt.Sprintf("full-replicate(all, %s)", f.Selection)
	}
	return fmt.Sprintf("full-replicate(k=%d, %s)", f.Copies, f.Selection)
}

// Default tuning for AdaptiveHedge.
const (
	// DefaultHedgeQuantile is the latency quantile at which AdaptiveHedge
	// launches the next copy when none is configured.
	DefaultHedgeQuantile = 0.95
	// DefaultHedgeMinSamples is how many observations a replica's digest
	// needs before AdaptiveHedge trusts its quantile.
	DefaultHedgeMinSamples = 16
)

// AdaptiveHedge hedges at an observed latency quantile: copy i+1
// launches when the elapsed time since copy i's launch exceeds the p-th
// percentile of copy i's replica's latency digest. The delay self-tunes
// as the digest fills and tracks drift in the replica's latency
// distribution — the production form of the paper's §3.2 DNS strategy,
// where the hedging point depends on the distribution's tail, not a
// caller-guessed constant.
//
// By construction the extra-copy rate converges to roughly (1 - p) of
// operations, so p doubles as a load knob: p = 0.95 adds about 5% load.
//
// While a consulted digest has fewer than MinSamples observations the
// strategy falls back to FallbackDelay; the zero default launches the
// next copy immediately (full replication while cold), which both bounds
// cold-start latency and warms the digests fastest. Note digests record
// only successful, non-cancelled calls, so a group that is never probed
// learns only from winners; use ProbeAll to warm all replicas.
type AdaptiveHedge struct {
	// Copies is the maximum number of copies per operation (default 2).
	Copies int
	// Quantile is p, the latency quantile that triggers the next copy
	// (default DefaultHedgeQuantile).
	Quantile float64
	// MinSamples is the observation count below which a digest's
	// quantile is not trusted (default DefaultHedgeMinSamples).
	MinSamples int64
	// FallbackDelay is the hedge delay used while a digest is cold; zero
	// launches the next copy immediately.
	FallbackDelay time.Duration
	// Selection chooses which replicas serve an operation.
	Selection Selection
}

func (a AdaptiveHedge) quantile() float64 {
	if a.Quantile <= 0 || a.Quantile >= 1 {
		return DefaultHedgeQuantile
	}
	return a.Quantile
}

func (a AdaptiveHedge) minSamples() int64 {
	if a.MinSamples <= 0 {
		return DefaultHedgeMinSamples
	}
	return a.MinSamples
}

// Fanout implements Strategy.
func (a AdaptiveHedge) Fanout() (int, Selection) {
	k := a.Copies
	if k < 1 {
		k = 2
	}
	return k, a.Selection
}

// Schedule implements Strategy.
func (a AdaptiveHedge) Schedule(d Digests) []time.Duration {
	if d.Len() <= 1 {
		return nil
	}
	return a.ScheduleInto(d, make([]time.Duration, d.Len()))
}

// ScheduleInto implements InlineScheduler.
func (a AdaptiveHedge) ScheduleInto(d Digests, dst []time.Duration) []time.Duration {
	k := d.Len()
	if k <= 1 {
		return nil
	}
	p := a.quantile()
	min := a.minSamples()
	dst[0] = 0
	for i := 1; i < k; i++ {
		dst[i] = a.FallbackDelay
		if dg := d.At(i - 1); dg != nil && dg.Count() >= min {
			if q, ok := dg.Quantile(p); ok {
				dst[i] = q
			}
		}
	}
	return dst
}

// String implements Strategy.
func (a AdaptiveHedge) String() string {
	k, _ := a.Fanout()
	return fmt.Sprintf("adaptive-hedge(k=%d, p%g, %s)", k, a.quantile()*100, a.Selection)
}
