package core

import (
	"context"
	"errors"
	"time"
)

// This file is the batched call engine: DoBatch runs one redundant
// operation per argument while paying the per-call fixed costs once for
// the whole batch. A single Do loads the membership snapshot, resolves
// options and strategy into a plan, selects replicas, computes the
// launch schedule, and arms a runtime timer per pending hedge; DoBatch
// does each of those exactly once and shares the result across every
// argument, and all hedge deadlines arm on the shared hierarchical
// TimerWheel instead of N time.NewTimers. The amortized cost per key is
// a fraction of a single Do (benchgate holds a 64-key batch to <= 80
// allocations against the single call's 10).
//
// Semantics differ from N independent Do calls in two documented ways:
//
//   - Cancellation is batch-scoped. A single Do derives a per-copy
//     context cancelled the instant its call completes; batch copies
//     run under the caller's context directly, so a losing copy that
//     already launched runs to completion (its latency still feeds the
//     digests). The reclaim mechanism for batches is the hedge that
//     never launches: a pending wheel deadline is disarmed for free
//     when its key resolves first, which under hedged strategies is
//     the common case. Cancelling ctx still cancels every copy of
//     every key at once.
//   - Replica selection is computed once for the batch (one ranked or
//     random pick), not per argument; every argument uses the same
//     ordered replica set, as one connection-level round should.
//
// WithCollectOutcomes is not supported on batches (there is one sink
// and many calls); DoBatch fails with an error if it is passed.

// BatchResult is one argument's outcome within a DoBatch: the usual
// Result on success, or the same error a lone Do would have returned
// (joined ReplicaErrors, or a *QuorumError without partial outcomes for
// quorum calls) in Err.
type BatchResult[T any] struct {
	Result Result[T]
	Err    error
}

// batchEvent is one completion (or hedge deadline) delivered to the
// batch event loop. Events travel by value through a channel buffered
// for the batch's worst case, so senders never block and never leak.
type batchEvent[T any] struct {
	val   T
	err   error
	ki    int32
	ci    int32
	hedge bool
}

// batchKey is the per-argument state of a running batch, kept in one
// slice for the whole batch (no per-key allocation).
type batchKey struct {
	launched  int32
	completed int32
	wins      int32
	resolved  bool
	timerSet  bool
	timerCi   int32 // copy index the armed timer is for, valid while timerSet
	timer     WheelTimer
	errs      []error
}

// batchRun is the state shared by a batch's copy goroutines and wheel
// callbacks: one allocation per batch.
type batchRun[K, T any] struct {
	ctx    context.Context
	args   []K
	picked []Handle[K, T]
	gov    *Governor
	events chan batchEvent[T]
}

// runBatchCopy performs one copy of one argument. It is a plain
// function (not a closure) so launching it costs only the go
// statement's argument frame.
func runBatchCopy[K, T any](b *batchRun[K, T], ki, ci int32) {
	if b.gov != nil {
		b.gov.copyStarted()
		defer b.gov.copyDone()
	}
	v, err := b.picked[ci].m.rec(b.ctx, b.args[ki])
	if err != nil {
		err = ReplicaError{Name: b.picked[ci].m.name, Attempt: int(ci), Err: err}
	}
	b.events <- batchEvent[T]{val: v, err: err, ki: ki, ci: ci}
}

// batchHedgeFired is the wheel callback for a pending hedge: it turns
// the deadline into an event for the batch loop. The key and copy index
// are packed into the wheel's int64 argument so arming a timer
// allocates nothing.
func batchHedgeFired[K, T any](c any, i int64) {
	b := c.(*batchRun[K, T])
	b.events <- batchEvent[T]{ki: int32(i >> 32), ci: int32(i & 0xFFFFFFFF), hedge: true}
}

// DoBatch performs one redundant operation per argument under the
// group's strategy (or the per-call options), amortizing the snapshot
// load, planning, selection, scheduling, and hedge timers across the
// batch; see the file comment for how batch semantics differ from N
// single calls. The returned slice has one BatchResult per argument, in
// order. The error is batch-level only (no replicas, unreachable
// quorum, unsupported option); per-argument failures are in the slice.
func (g *KeyedGroup[K, T]) DoBatch(ctx context.Context, args []K, opts ...CallOption) ([]BatchResult[T], error) {
	if len(args) == 0 {
		return nil, nil
	}
	st := g.state.Load()
	n := len(st.members)
	if n == 0 {
		return nil, ErrNoReplicas
	}
	var co callOpts
	if len(opts) > 0 {
		co = applyCallOptions(opts)
	}
	p, err := g.batchPlan(st, &co, n, n)
	if err != nil {
		return nil, err
	}
	picked := make([]Handle[K, T], p.k)
	g.pickInto(st, p.sel, picked)
	return g.doBatch(ctx, args, &p, picked)
}

// DoBatchPicked is DoBatch over an explicit, ordered replica subset
// (see DoPicked): picked[0] is every argument's primary, picked[1] the
// first hedge or quorum peer, and so on. It is the batched routing
// primitive behind Ring.DoBatch, which groups keys by placement and
// runs one DoBatchPicked per distinct placement.
func (g *KeyedGroup[K, T]) DoBatchPicked(ctx context.Context, args []K, picked []Handle[K, T], opts ...CallOption) ([]BatchResult[T], error) {
	if len(args) == 0 {
		return nil, nil
	}
	n := len(picked)
	if n == 0 {
		return nil, ErrNoReplicas
	}
	for _, h := range picked {
		if h.m == nil {
			return nil, errors.New("redundancy: DoBatchPicked: zero Handle")
		}
	}
	st := g.state.Load()
	var co callOpts
	if len(opts) > 0 {
		co = applyCallOptions(opts)
	}
	capacity := len(st.members)
	if capacity < n {
		capacity = n
	}
	p, err := g.batchPlan(st, &co, n, capacity)
	if err != nil {
		return nil, err
	}
	if p.k < n {
		picked = picked[:p.k]
	}
	return g.doBatch(ctx, args, &p, picked)
}

// batchPlan is plan plus the batch-only option check.
func (g *KeyedGroup[K, T]) batchPlan(st *groupState[K, T], co *callOpts, n, capacity int) (callPlan[T], error) {
	if co.outcomes != nil {
		var p callPlan[T]
		return p, errors.New("redundancy: WithCollectOutcomes is not supported by DoBatch")
	}
	return g.plan(st, co, n, capacity)
}

// doBatch executes one planned batch over the picked replicas.
func (g *KeyedGroup[K, T]) doBatch(ctx context.Context, args []K, p *callPlan[T], picked []Handle[K, T]) ([]BatchResult[T], error) {
	q := p.q
	copies := len(picked)

	// The budget charges only hedge copies (beyond the quorum), spread
	// evenly: a partial grant trims every key's fan-out the same way,
	// and the unused remainder of the grant is refunded immediately.
	granted := 0
	if extra := copies - q; extra > 0 && g.budget != nil {
		got := g.budget.Acquire(extra * len(args))
		perKey := got / len(args)
		if rem := got - perKey*len(args); rem > 0 {
			g.budget.Release(rem)
		}
		granted = perKey * len(args)
		if perKey < extra {
			copies = q + perKey
			picked = picked[:copies]
		}
	}

	delays := g.scheduleInto(p, picked, q, nil)

	out := make([]BatchResult[T], len(args))
	keys := make([]batchKey, len(args))
	b := &batchRun[K, T]{
		ctx:    ctx,
		args:   args,
		picked: picked,
		gov:    p.gov,
		// Buffered for every possible event — copies*len(args)
		// completions plus a hedge deadline per staggered copy — so
		// senders never block, even after doBatch returns.
		events: make(chan batchEvent[T], len(args)*(2*copies)),
	}
	wheel := SharedWheel()
	// Bind the generic callback's dictionary once per batch: mentioning
	// batchHedgeFired[K, T] inside the arming loop would materialize a
	// fresh funcval per armed hedge — one hidden allocation per key.
	hedgeFired := batchHedgeFired[K, T]
	start := time.Now()

	// advance launches ks's next copies: everything immediately
	// launchable (fireNow overrides the first copy's pending delay —
	// its deadline already elapsed or its predecessors all failed),
	// then arms the wheel for the first copy that must wait.
	advance := func(ki int32, fireNow bool) {
		ks := &keys[ki]
		for int(ks.launched) < copies {
			ci := ks.launched
			if !fireNow && ci > 0 && delays != nil && delays[ci] > 0 {
				ks.timer = wheel.AfterFunc(delays[ci], hedgeFired, b, int64(ki)<<32|int64(ci))
				ks.timerSet = true
				ks.timerCi = ci
				return
			}
			fireNow = false
			ks.launched++
			go runBatchCopy(b, ki, ci)
		}
	}

	resolved := 0
	finish := func(ki int32, err error) {
		ks := &keys[ki]
		if ks.timerSet {
			ks.timer.Stop()
			ks.timerSet = false
		}
		ks.resolved = true
		resolved++
		out[ki].Err = err
		out[ki].Result.Launched = int(ks.launched)
		out[ki].Result.Cancelled = int(ks.launched - ks.completed)
		if g.observer != nil {
			name := ""
			if err == nil {
				name = picked[out[ki].Result.Index].m.name
			}
			g.observer.Observe(Observation{
				Winner:    name,
				Launched:  out[ki].Result.Launched,
				Cancelled: out[ki].Result.Cancelled,
				Latency:   out[ki].Result.Latency,
				Err:       err,
				Label:     p.label,
			})
		}
	}
	release := func() {
		if granted > 0 {
			used := 0
			for i := range keys {
				if u := int(keys[i].launched) - q; u > 0 {
					used += u
				}
			}
			if granted > used {
				g.budget.Release(granted - used)
			}
		}
	}

	for ki := range args {
		advance(int32(ki), false)
	}

	ctxDone := ctx.Done()
	for resolved < len(args) {
		select {
		case ev := <-b.events:
			ks := &keys[ev.ki]
			if ev.hedge {
				// Only the event for the currently armed copy disarms the
				// bookkeeping: a stale event (its timer was Stopped racing
				// the fire, and the failure path armed a NEW timer for a
				// later copy) must not clear timerSet, or finish/ctx-cancel
				// would skip Stop on the live timer.
				if ks.timerSet && ks.timerCi == ev.ci {
					ks.timerSet = false
				}
				// Stale deadline (the copy was already launched by the
				// failure path, or the key resolved): ignore.
				if !ks.resolved && ks.launched == ev.ci {
					advance(ev.ki, true)
				}
				continue
			}
			ks.completed++
			if ks.resolved {
				continue // late loser; its latency already fed the digest
			}
			if ev.err == nil {
				ks.wins++
				if ks.wins == 1 {
					out[ev.ki].Result.Value = ev.val
					out[ev.ki].Result.Index = int(ev.ci)
				}
				if int(ks.wins) >= q {
					out[ev.ki].Result.Latency = time.Since(start)
					finish(ev.ki, nil)
				}
				continue
			}
			ks.errs = append(ks.errs, ev.err)
			if int(ks.wins)+copies-int(ks.completed) < q {
				// Too few copies remain for the quorum; fail the key now.
				joined := errors.Join(ks.errs...)
				if q > 1 {
					finish(ev.ki, &QuorumError[T]{Need: q, Wins: int(ks.wins), Err: joined})
				} else {
					finish(ev.ki, joined)
				}
				continue
			}
			if ks.completed == ks.launched && int(ks.launched) < copies {
				// Every outstanding copy failed and more are allowed:
				// launch the next immediately instead of waiting out
				// its hedge delay.
				if ks.timerSet {
					ks.timer.Stop()
					ks.timerSet = false
				}
				advance(ev.ki, true)
			}
		case <-ctxDone:
			err := ctx.Err()
			for ki := range keys {
				ks := &keys[ki]
				if ks.resolved {
					continue
				}
				if ks.timerSet {
					ks.timer.Stop()
					ks.timerSet = false
				}
				ks.resolved = true
				out[ki].Err = err
				out[ki].Result.Launched = int(ks.launched)
				out[ki].Result.Cancelled = int(ks.launched - ks.completed)
			}
			release()
			return out, nil
		}
	}
	release()
	return out, nil
}

// scheduleInto resolves one call's (or batch's) launch schedule into
// buf: the Fixed fast path, the strategy's ScheduleInto (or legacy
// Schedule, normalized) over the picked digests, and the quorum rule
// that the first q copies always launch immediately. buf must have
// length len(picked) or be nil, in which case a buffer is allocated
// only if a schedule actually materializes. The returned schedule is
// always backed by the (caller-owned) buffer — never strategy-owned
// memory — so the quorum zeroing mutates in place without cloning. nil
// means launch every copy at once.
func (g *KeyedGroup[K, T]) scheduleInto(p *callPlan[T], picked []Handle[K, T], q int, buf []time.Duration) []time.Duration {
	copies := len(picked)
	if copies <= 1 {
		return nil
	}
	var delays []time.Duration
	if p.isFixed {
		if p.fixed.HedgeDelay <= 0 {
			return nil
		}
		if buf == nil {
			buf = make([]time.Duration, copies)
		}
		delays = buf
		for i := range delays {
			delays[i] = p.fixed.HedgeDelay
		}
	} else if _, full := p.strat.(FullReplicate); full {
		return nil
	} else {
		if buf == nil {
			buf = make([]time.Duration, copies)
		}
		delays = strategyScheduleInto(p.strat, memberDigests[K, T]{ms: picked}, buf)
		if delays == nil {
			return nil
		}
	}
	if q > 1 {
		// The quorum copies are correctness requirements, not latency
		// hedges: delaying them can only serialize the quorum. Launch the
		// first q immediately; copies beyond the quorum keep the
		// strategy's hedge schedule.
		for i := 0; i < q && i < len(delays); i++ {
			delays[i] = 0
		}
	}
	return delays
}
