package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func echoReplica(name string) ArgReplica[string, string] {
	return func(_ context.Context, arg string) (string, error) {
		return name + ":" + arg, nil
	}
}

func batchArgs(n int) []string {
	args := make([]string, n)
	for i := range args {
		args[i] = "k" + strconv.Itoa(i)
	}
	return args
}

func TestDoBatchBasic(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	g.Add("a", echoReplica("a"))
	g.Add("b", echoReplica("b"))
	g.Add("c", echoReplica("c"))
	args := batchArgs(17)
	res, err := g.DoBatch(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(args) {
		t.Fatalf("len(res) = %d, want %d", len(res), len(args))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
		want := ":" + args[i]
		if got := r.Result.Value; len(got) < len(want) || got[len(got)-len(want):] != want {
			t.Fatalf("key %d: value %q does not echo %q", i, got, args[i])
		}
		if r.Result.Launched != 1 {
			t.Fatalf("key %d: Launched = %d, want 1", i, r.Result.Launched)
		}
	}
}

func TestDoBatchEmpty(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	g.Add("a", echoReplica("a"))
	res, err := g.DoBatch(context.Background(), nil)
	if res != nil || err != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

func TestDoBatchNoReplicas(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	if _, err := g.DoBatch(context.Background(), batchArgs(1)); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("err = %v, want ErrNoReplicas", err)
	}
}

// TestDoBatchHedgeWins: the primary stalls, the staggered hedge answers;
// every key must resolve via the hedge long before the primary would.
func TestDoBatchHedgeWins(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](Fixed{Copies: 2, HedgeDelay: 5 * time.Millisecond})
	slow := g.Add("slow", func(ctx context.Context, arg string) (string, error) {
		select {
		case <-time.After(3 * time.Second):
			return "slow:" + arg, nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})
	fast := g.Add("fast", echoReplica("fast"))
	args := batchArgs(32)
	start := time.Now()
	res, err := g.DoBatchPicked(context.Background(), args, []Handle[string, string]{slow, fast})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("batch took %v; hedges did not fire", el)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
		if r.Result.Index != 1 {
			t.Fatalf("key %d: winner index %d, want 1 (the hedge)", i, r.Result.Index)
		}
		if r.Result.Launched != 2 {
			t.Fatalf("key %d: Launched = %d, want 2", i, r.Result.Launched)
		}
	}
}

// TestDoBatchFastPrimaryStopsHedges: an instant primary must resolve
// each key before its hedge delay elapses, so only one copy launches and
// the armed wheel timers are reclaimed.
func TestDoBatchFastPrimaryStopsHedges(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](Fixed{Copies: 2, HedgeDelay: 30 * time.Second})
	g.Add("fast", echoReplica("fast"))
	g.Add("other", echoReplica("other"))
	res, err := g.DoBatch(context.Background(), batchArgs(64))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
		if r.Result.Launched != 1 {
			t.Fatalf("key %d: Launched = %d, want 1 (hedge should never launch)", i, r.Result.Launched)
		}
	}
}

// TestDoBatchFailoverSkipsHedgeDelay: when every outstanding copy of a
// key has failed, the next copy launches immediately instead of waiting
// out its hedge delay.
func TestDoBatchFailoverSkipsHedgeDelay(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](Fixed{Copies: 2, HedgeDelay: 30 * time.Second})
	bad := g.Add("bad", func(context.Context, string) (string, error) {
		return "", errors.New("boom")
	})
	good := g.Add("good", echoReplica("good"))
	start := time.Now()
	res, err := g.DoBatchPicked(context.Background(), batchArgs(16), []Handle[string, string]{bad, good})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("failover waited out the hedge delay: %v", el)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
		if r.Result.Index != 1 || r.Result.Launched != 2 {
			t.Fatalf("key %d: Index=%d Launched=%d, want 1/2", i, r.Result.Index, r.Result.Launched)
		}
	}
}

func TestDoBatchAllFail(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](FullReplicate{})
	g.Add("a", func(context.Context, string) (string, error) { return "", errors.New("a down") })
	g.Add("b", func(context.Context, string) (string, error) { return "", errors.New("b down") })
	res, err := g.DoBatch(context.Background(), batchArgs(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("key %d: no error", i)
		}
		var re ReplicaError
		if !errors.As(r.Err, &re) {
			t.Fatalf("key %d: error %v carries no ReplicaError", i, r.Err)
		}
	}
}

func TestDoBatchQuorum(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](FullReplicate{})
	g.Add("a", echoReplica("a"))
	g.Add("b", echoReplica("b"))
	g.Add("c", func(context.Context, string) (string, error) { return "", errors.New("c down") })
	res, err := g.DoBatch(context.Background(), batchArgs(9), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
	}
	// Quorum of 3 cannot be met with one replica down.
	res, err = g.DoBatch(context.Background(), batchArgs(3), WithQuorum(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, ErrQuorumUnreachable) {
			t.Fatalf("key %d: err = %v, want ErrQuorumUnreachable", i, r.Err)
		}
		var qe *QuorumError[string]
		// The key fails the moment the third replica errors (fail-fast, as
		// in the single-call engine), so Wins is whatever had completed.
		if !errors.As(r.Err, &qe) || qe.Need != 3 || qe.Wins > 2 {
			t.Fatalf("key %d: QuorumError = %+v", i, qe)
		}
	}
}

func TestDoBatchQuorumTooLarge(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	g.Add("a", echoReplica("a"))
	if _, err := g.DoBatch(context.Background(), batchArgs(1), WithQuorum(2)); !errors.Is(err, ErrQuorumUnreachable) {
		t.Fatalf("err = %v, want ErrQuorumUnreachable", err)
	}
}

func TestDoBatchRejectsCollectOutcomes(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	g.Add("a", echoReplica("a"))
	var sink []Outcome[string]
	if _, err := g.DoBatch(context.Background(), batchArgs(1), WithCollectOutcomes(&sink)); err == nil {
		t.Fatal("WithCollectOutcomes on DoBatch did not error")
	}
}

func TestDoBatchContextCancel(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](Fixed{Copies: 1})
	started := make(chan struct{}, 64)
	g.Add("block", func(ctx context.Context, arg string) (string, error) {
		started <- struct{}{}
		<-ctx.Done()
		return "", ctx.Err()
	})
	ctx, cancel := context.WithCancel(context.Background())
	args := batchArgs(8)
	done := make(chan []BatchResult[string], 1)
	go func() {
		res, err := g.DoBatch(ctx, args)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	for range args {
		<-started
	}
	cancel()
	select {
	case res := <-done:
		for i, r := range res {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("key %d: err = %v, want context.Canceled", i, r.Err)
			}
			// The copy's own ctx-cancelled completion may race the batch
			// loop's cancel branch, so Cancelled is 0 or 1; Launched is not.
			if r.Result.Launched != 1 {
				t.Fatalf("key %d: Launched=%d, want 1", i, r.Result.Launched)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DoBatch did not return after cancel")
	}
}

// TestDoBatchBudget: with a budget that covers only part of the batch's
// hedges, fan-out degrades uniformly and unused tokens are refunded.
func TestDoBatchBudget(t *testing.T) {
	b := NewBudget(0, 8) // 8 tokens, no refill
	g := NewStrategyKeyedGroup[string, string](FullReplicate{}, WithKeyedBudget[string, string](b))
	g.Add("a", echoReplica("a"))
	g.Add("b", echoReplica("b"))
	// 16 keys x 1 extra copy each wants 16 tokens; only 8 exist, so the
	// per-key grant floors to 0 and the batch degrades to single copies.
	res, err := g.DoBatch(context.Background(), batchArgs(16))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
		if r.Result.Launched != 1 {
			t.Fatalf("key %d: Launched = %d, want 1 (budget-degraded)", i, r.Result.Launched)
		}
	}
	if got := b.Available(); got != 8 {
		t.Fatalf("Available = %d after degraded batch, want full refund to 8", got)
	}
	// 4 keys want 4 tokens: fully granted, spent on launched hedges.
	res, err = g.DoBatch(context.Background(), batchArgs(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Result.Launched != 2 {
			t.Fatalf("key %d: Launched = %d, want 2", i, r.Result.Launched)
		}
	}
	if got := b.Available(); got != 4 {
		t.Fatalf("Available = %d, want 4 (4 hedges spent)", got)
	}
}

func TestDoBatchObserver(t *testing.T) {
	var obs countObserver
	g := NewKeyedGroup[string, string](Policy{Copies: 1}, WithKeyedObserver[string, string](&obs))
	g.Add("a", echoReplica("a"))
	if _, err := g.DoBatch(context.Background(), batchArgs(7), WithLabel("batch")); err != nil {
		t.Fatal(err)
	}
	if got := obs.n.Load(); got != 7 {
		t.Fatalf("observer saw %d observations, want 7", got)
	}
	if got := obs.lastLabel.Load(); got == nil || *got != "batch" {
		t.Fatalf("observer label = %v, want batch", got)
	}
}

type countObserver struct {
	n         atomic.Int64
	lastLabel atomic.Pointer[string]
}

func (o *countObserver) Observe(ob Observation) {
	o.n.Add(1)
	l := ob.Label
	o.lastLabel.Store(&l)
}

// TestDoBatchManyKeys stresses the event loop and the shared wheel with
// a large batch of mixed-latency replicas.
func TestDoBatchManyKeys(t *testing.T) {
	g := NewStrategyKeyedGroup[string, string](Fixed{Copies: 2, HedgeDelay: 2 * time.Millisecond})
	g.Add("jitter", func(ctx context.Context, arg string) (string, error) {
		if len(arg)%3 == 0 {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		return "jitter:" + arg, nil
	})
	g.Add("steady", echoReplica("steady"))
	args := batchArgs(512)
	res, err := g.DoBatch(context.Background(), args)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("key %d: %v", i, r.Err)
		}
		if r.Result.Value == "" {
			t.Fatalf("key %d: empty value", i)
		}
	}
}

func TestDoBatchPickedZeroHandle(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	g.Add("a", echoReplica("a"))
	_, err := g.DoBatchPicked(context.Background(), batchArgs(1), []Handle[string, string]{{}})
	if err == nil {
		t.Fatal("zero handle accepted")
	}
}

func TestDoBatchPickedRouting(t *testing.T) {
	g := NewKeyedGroup[string, string](Policy{Copies: 1})
	g.Add("a", echoReplica("a"))
	hb := g.Add("b", echoReplica("b"))
	res, err := g.DoBatchPicked(context.Background(), batchArgs(4), []Handle[string, string]{hb})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if want := fmt.Sprintf("b:k%d", i); r.Result.Value != want {
			t.Fatalf("key %d: %q, want %q", i, r.Result.Value, want)
		}
	}
}
