package core

import "testing"

// AllowBackground gates convergence work on the hysteresis low-water
// mark: allowed with no load signal at all (an idle system must still
// converge), deferred while utilization sits above the band, allowed
// again once it decays below.
func TestGovernorAllowBackground(t *testing.T) {
	g := NewGovernor(2.0, 0.5) // low-water mark at 1.5

	if !g.AllowBackground() {
		t.Fatal("no samples: background must be allowed")
	}

	for i := 0; i < 200; i++ {
		g.Observe(3.0)
	}
	if g.AllowBackground() {
		u, _ := g.Utilization()
		t.Fatalf("utilization %.2f above low-water 1.5: background must be deferred", u)
	}

	// Load drains: the EWMA decays below the low-water mark and the gate
	// reopens.
	reopened := false
	for i := 0; i < 5000; i++ {
		g.Observe(0)
		if g.AllowBackground() {
			reopened = true
			break
		}
	}
	if !reopened {
		u, _ := g.Utilization()
		t.Fatalf("gate never reopened; utilization still %.2f", u)
	}

	s := g.Stats()
	if s.BackgroundAllowed < 2 {
		t.Errorf("BackgroundAllowed = %d, want >= 2", s.BackgroundAllowed)
	}
	if s.BackgroundDeferred < 1 {
		t.Errorf("BackgroundDeferred = %d, want >= 1", s.BackgroundDeferred)
	}
}
