package core

import (
	"sync"
	"time"
)

// Budget caps the extra load redundancy may add, in the spirit of gRPC's
// hedging throttle. It is a token bucket over "extra copies": each
// replicated operation acquires one token per copy beyond the first, and
// tokens refill at a fixed rate. When the bucket is empty, operations
// degrade gracefully to fewer copies (ultimately a single copy) instead of
// failing. Tokens are consumed, not borrowed: a Group refunds (Release)
// only tokens whose copies never launched, e.g. a hedge the primary beat.
//
// The paper's system-level result motivates the sizing: replication is a
// win while base utilization stays under the threshold load (25-50%), so a
// deployment running at base load rho can afford roughly
// (threshold - rho) / rho extra copies per operation on average; set the
// refill rate to that fraction of the operation rate.
//
// A nil *Budget is valid and imposes no limit. All methods are safe for
// concurrent use.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64 // tokens per second
	last   time.Time
	now    func() time.Time // test hook
}

// NewBudget creates a budget refilling at rate extra copies per second with
// the given burst capacity. The bucket starts full.
func NewBudget(rate float64, burst float64) *Budget {
	if rate < 0 || burst <= 0 {
		panic("redundancy: NewBudget requires rate >= 0 and burst > 0")
	}
	return &Budget{
		tokens: burst,
		burst:  burst,
		rate:   rate,
		last:   time.Now(),
		now:    time.Now,
	}
}

// setClock replaces the budget's clock; tests use this for determinism.
func (b *Budget) setClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = now()
}

// Acquire requests n extra-copy tokens and returns how many were granted
// (possibly 0). Partial grants let an operation run with fewer copies
// rather than none.
func (b *Budget) Acquire(n int) int {
	if b == nil {
		return n
	}
	if n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	granted := 0
	for granted < n && b.tokens >= 1 {
		b.tokens--
		granted++
	}
	return granted
}

// Release refunds n tokens to the bucket. A Group calls this only for
// acquired copies that never launched (a hedge made unnecessary by a fast
// primary); launched copies consume their tokens.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Available returns the current number of whole tokens.
func (b *Budget) Available() int {
	if b == nil {
		return int(^uint(0) >> 1)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return int(b.tokens)
}

func (b *Budget) refillLocked() {
	now := b.now()
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
