package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

// These tests pin the pooled call frame's proved-drained recycling
// discipline (see callFrame in call.go) under the racy schedules that
// could corrupt a recycled frame: early returns with losers still in
// flight, caller-held outcome slices, and caller cancellation racing a
// wheel-armed hedge fire. Run with -race -count=5.

// TestFrameRecycleEarlyReturnSlowLoser drives a group whose loser
// IGNORES cancellation and stays in flight long after Do returned. The
// loser's reference must pin the frame — concurrent and subsequent
// calls on the same group must never observe its writes — and the frame
// must still recycle (not leak) once the loser finally delivers.
func TestFrameRecycleEarlyReturnSlowLoser(t *testing.T) {
	gate := coretest.NewGate()
	var mu sync.Mutex
	blocked := 0
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRoundRobin}, WithSeed[int](1))
	g.Add("fast", func(ctx context.Context) (int, error) { return 1, nil })
	// Deliberately deaf to ctx: the copy stays in flight until the gate
	// opens, holding its frame reference the whole time.
	g.Add("deaf", func(ctx context.Context) (int, error) {
		mu.Lock()
		blocked++
		mu.Unlock()
		<-gate.C()
		return 2, nil
	})

	ctx := context.Background()
	const calls = 200
	for i := 0; i < calls; i++ {
		res, err := g.Do(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 1 {
			t.Fatalf("call %d: won %d, want the fast replica's 1", i, res.Value)
		}
	}
	mu.Lock()
	inFlight := blocked
	mu.Unlock()
	if inFlight == 0 {
		t.Fatal("round-robin never launched the deaf replica; test is vacuous")
	}
	// Release every parked loser; their deliveries drain into frames that
	// may already have been reused many times over.
	gate.Release()
	// One more burst after the drain to shake out corruption.
	for i := 0; i < calls; i++ {
		if res, err := g.Do(ctx); err != nil || (res.Value != 1 && res.Value != 2) {
			t.Fatalf("post-release call %d: (%v, %v)", i, res, err)
		}
	}
}

// TestFrameRecycleCollectOutcomesAliasing pins that a caller-held
// []Outcome from WithCollectOutcomes never observes a recycled frame's
// data: the engine appends copies into the caller's slice, so hammering
// the group afterwards (recycling the same frame) must leave the held
// outcomes bit-identical.
func TestFrameRecycleCollectOutcomesAliasing(t *testing.T) {
	g := NewGroup[string](Policy{Copies: 3, Selection: SelectRoundRobin}, WithSeed[string](1))
	g.Add("a", coretest.Instant("alpha"))
	g.Add("b", coretest.Instant("beta"))
	g.Add("c", coretest.Instant("gamma"))
	ctx := context.Background()

	var outs []Outcome[string]
	if _, err := g.Do(ctx, WithQuorum(3), WithCollectOutcomes(&outs)); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("collected %d outcomes, want 3", len(outs))
	}
	held := append([]Outcome[string](nil), outs...)

	// Recycle the frame hard, including through the quorum-failure path
	// (whose QuorumError clones out of the frame's inline scratch).
	boom := errors.New("boom")
	g.Add("bad", coretest.Fail[string](boom))
	var spare []Outcome[string]
	for i := 0; i < 200; i++ {
		g.Do(ctx)
		g.Do(ctx, WithQuorum(4), WithCollectOutcomes(&spare)) // fails: bad replica blocks the quorum
	}
	for i, o := range held {
		if o.Value != outs[i].Value || o.Err != outs[i].Err || o.Index != outs[i].Index {
			t.Fatalf("held outcome %d mutated by frame reuse: %+v vs %+v", i, o, outs[i])
		}
	}
	for _, o := range held {
		switch o.Value {
		case "alpha", "beta", "gamma":
		default:
			t.Fatalf("held outcome has foreign value %q", o.Value)
		}
	}
}

// TestFrameRecycleQuorumErrorOutcomes pins the same aliasing guarantee
// for the outcomes a *QuorumError carries when the caller did NOT pass
// WithCollectOutcomes: they are backed by the frame's inline scratch at
// collection time and must be cloned before the frame recycles.
func TestFrameRecycleQuorumErrorOutcomes(t *testing.T) {
	boom := errors.New("boom")
	g := NewGroup[string](Policy{Copies: 2, Selection: SelectRoundRobin}, WithSeed[string](1))
	g.Add("ok", coretest.Instant("ok"))
	g.Add("bad", coretest.Fail[string](boom))
	ctx := context.Background()

	_, err := g.Do(ctx, WithQuorum(2))
	var qe *QuorumError[string]
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuorumError", err)
	}
	held := append([]Outcome[string](nil), qe.Outcomes...)
	for i := 0; i < 200; i++ {
		g.Do(ctx)
		g.Do(ctx, WithQuorum(2))
	}
	if len(qe.Outcomes) != len(held) {
		t.Fatalf("QuorumError outcomes length changed: %d vs %d", len(qe.Outcomes), len(held))
	}
	for i := range held {
		if held[i].Value != qe.Outcomes[i].Value || held[i].Index != qe.Outcomes[i].Index {
			t.Fatalf("QuorumError outcome %d mutated by frame reuse: %+v vs %+v", i, held[i], qe.Outcomes[i])
		}
	}
}

// TestFrameRecycleCancelRacesWheelHedge races caller cancellation
// against a wheel-armed hedge deadline: the hedge delay equals the
// wheel tick, and the context is cancelled from another goroutine at
// roughly the same time. Whichever way each race lands, the call must
// return promptly, the stale hedge event must be ignored or drained,
// and the frame must be safe to reuse immediately.
func TestFrameRecycleCancelRacesWheelHedge(t *testing.T) {
	gate := coretest.NewGate()
	defer gate.Release()
	g := NewGroup[int](Policy{Copies: 2, HedgeDelay: DefaultWheelTick, Selection: SelectRoundRobin},
		WithSeed[int](1))
	// Both replicas park until cancelled, so every call rides its hedge
	// timer and only cancellation completes it.
	g.Add("p1", coretest.Blocked(1, gate))
	g.Add("p2", coretest.Blocked(2, gate))

	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			// No sleep: the cancel races the ~1ms wheel fire through the
			// goroutine scheduler, landing before, during, and after it
			// across iterations.
			cancel()
		}()
		_, err := g.Do(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("call %d: err = %v, want context.Canceled", i, err)
		}
		cancel()
	}

	// Open the gate and issue one more call: the pool must hold no
	// poisoned frame, and a released replica wins with its value.
	gate.Release()
	res, err := g.Do(context.Background(), WithStrategyOverride(FullReplicate{}))
	if err != nil || (res.Value != 1 && res.Value != 2) {
		t.Fatalf("post-race call: (%+v, %v)", res, err)
	}
}

// TestDoValueAllocs enforces the DoValue budget in go test, not only in
// benchgate: a 2-of-3 random-selection group on the pooled frame path
// must stay at or under 4 allocations per call (copy-cancel channel,
// shared derived context, and one goroutine closure per copy).
func TestDoValueAllocs(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRandom}, WithSeed[int](1))
	g.Add("a", coretest.Instant(1))
	g.Add("b", coretest.Instant(2))
	g.Add("c", coretest.Instant(3))
	ctx := context.Background()
	// Warm the frame pool so the steady state is what's measured.
	for i := 0; i < 100; i++ {
		if _, err := g.DoValue(ctx); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := g.DoValue(ctx); err != nil {
			t.Fatal(err)
		}
		// AllocsPerRun pins GOMAXPROCS to 1, so the losing copy of this
		// call has not run yet when the next call's pool.Get executes —
		// its reference pins the frame and every Get would miss. Yielding
		// lets the loser drain and recycle the frame, measuring the warm
		// steady state that concurrent callers see.
		runtime.Gosched()
	})
	if avg > 4 {
		t.Errorf("DoValue allocates %.2f/op, budget is 4", avg)
	}
}

// TestDoValueSemantics pins that DoValue is exactly Do minus the
// metadata: same winner, same error taxonomy, budget and observer still
// consulted.
func TestDoValueSemantics(t *testing.T) {
	boom := errors.New("boom")
	g := NewGroup[int](Policy{Copies: 2, Selection: SelectRoundRobin}, WithSeed[int](1))
	g.Add("bad", coretest.Fail[int](boom))
	g.Add("good", coretest.Instant(7))
	ctx := context.Background()
	v, err := g.DoValue(ctx)
	if err != nil || v != 7 {
		t.Fatalf("DoValue = (%d, %v), want (7, nil)", v, err)
	}

	// All replicas failing: joined ReplicaErrors, same as Do.
	gf := NewGroup[int](Policy{Copies: 2, Selection: SelectRoundRobin})
	gf.Add("b1", coretest.Fail[int](boom))
	gf.Add("b2", coretest.Fail[int](boom))
	if _, err := gf.DoValue(ctx); !errors.Is(err, boom) {
		t.Fatalf("failing DoValue err = %v, want wrapped %v", err, boom)
	}
	var re ReplicaError
	if _, err := gf.DoValue(ctx); !errors.As(err, &re) {
		t.Fatalf("failing DoValue err = %v, want ReplicaError detail", err)
	}

	// Empty group.
	ge := NewGroup[int](Policy{Copies: 2})
	if _, err := ge.DoValue(ctx); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("empty DoValue err = %v, want ErrNoReplicas", err)
	}

	// Budget accounting still applies on the fast lane.
	b := NewBudget(0, 1)
	gb := NewGroup[int](Policy{Copies: 2, HedgeDelay: time.Hour, Selection: SelectRoundRobin},
		WithBudget[int](b))
	gb.Add("a", coretest.Instant(1))
	gb.Add("b", coretest.Instant(2))
	for i := 0; i < 3; i++ {
		if _, err := gb.DoValue(ctx); err != nil {
			t.Fatal(err)
		}
		if got := b.Available(); got != 1 {
			t.Fatalf("op %d: unused hedge token not refunded, Available = %d", i, got)
		}
	}
}
