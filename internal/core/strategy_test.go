package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"redundancy/internal/core/coretest"
)

func TestFixedStrategyMatchesPolicy(t *testing.T) {
	p := Policy{Copies: 3, HedgeDelay: 5 * time.Millisecond, Selection: SelectRandom}
	s := p.Strategy()
	f, ok := s.(Fixed)
	if !ok {
		t.Fatalf("Policy.Strategy() = %T, want Fixed", s)
	}
	if f.Copies != 3 || f.HedgeDelay != 5*time.Millisecond || f.Selection != SelectRandom {
		t.Errorf("round-trip lost fields: %+v", f)
	}
	k, sel := f.Fanout()
	if k != 3 || sel != SelectRandom {
		t.Errorf("Fanout = (%d, %v)", k, sel)
	}
	delays := f.Schedule(DigestList{nil, nil, nil})
	if len(delays) != 3 || delays[1] != 5*time.Millisecond {
		t.Errorf("Schedule = %v", delays)
	}
	if noHedge := (Fixed{Copies: 2}).Schedule(DigestList{nil, nil}); noHedge != nil {
		t.Errorf("zero-delay Fixed schedule = %v, want nil", noHedge)
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, tc := range []struct {
		s    Strategy
		want string
	}{
		{Fixed{Copies: 2, Selection: SelectRanked}, "fixed(k=2, ranked)"},
		{Fixed{Copies: 2, HedgeDelay: 15 * time.Millisecond, Selection: SelectRandom}, "fixed(k=2, hedge 15ms, random)"},
		{FullReplicate{Selection: SelectRandom}, "full-replicate(all, random)"},
		{FullReplicate{Copies: 3, Selection: SelectRanked}, "full-replicate(k=3, ranked)"},
		{AdaptiveHedge{}, "adaptive-hedge(k=2, p95, ranked)"},
		{AdaptiveHedge{Copies: 3, Quantile: 0.9, Selection: SelectRoundRobin}, "adaptive-hedge(k=3, p90, round-robin)"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%T.String() = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestFullReplicateUsesAllReplicas(t *testing.T) {
	g := NewStrategyGroup[int](FullReplicate{Selection: SelectRandom}, WithSeed[int](1))
	for i := 0; i < 5; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) { return i, nil })
	}
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 5 {
		t.Errorf("FullReplicate launched %d of 5", res.Launched)
	}
}

func TestAdaptiveHedgeScheduleFromDigests(t *testing.T) {
	// Warm digest: 100 observations, p90 = 90ms-bin upper edge.
	warm := &LatDigest{}
	for i := 1; i <= 100; i++ {
		warm.Observe(time.Duration(i) * time.Millisecond)
	}
	cold := &LatDigest{}
	cold.Observe(time.Millisecond)

	a := AdaptiveHedge{Copies: 3, Quantile: 0.9, MinSamples: 10, FallbackDelay: 7 * time.Millisecond}
	delays := a.Schedule(DigestList{warm, cold, warm})
	if len(delays) != 3 {
		t.Fatalf("Schedule length %d", len(delays))
	}
	q90, _ := warm.Quantile(0.9)
	if delays[0] != 0 {
		t.Errorf("delays[0] = %v, want 0 (ignored)", delays[0])
	}
	if delays[1] != q90 {
		t.Errorf("delays[1] = %v, want warm p90 %v", delays[1], q90)
	}
	// Copy 2 consults copy 1's digest, which is cold: fallback applies.
	if delays[2] != 7*time.Millisecond {
		t.Errorf("delays[2] = %v, want fallback 7ms", delays[2])
	}

	// Single copy: no schedule at all.
	if d := a.Schedule(DigestList{warm}); d != nil {
		t.Errorf("k=1 schedule = %v, want nil", d)
	}
}

func TestAdaptiveHedgeColdStartLaunchesImmediately(t *testing.T) {
	// With no fallback delay and cold digests, adaptive hedging degrades
	// to full replication: both copies launch immediately.
	g := NewStrategyGroup[string](AdaptiveHedge{Copies: 2, Selection: SelectRandom}, WithSeed[string](3))
	g.Add("slow", coretest.Blocked("slow", coretest.NewGate()))
	g.Add("fast", coretest.Instant("fast"))
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "fast" || res.Launched != 2 {
		t.Errorf("cold adaptive Do = (%q, launched %d), want (fast, 2)", res.Value, res.Launched)
	}
}

func TestAdaptiveHedgeWarmDelaysHedge(t *testing.T) {
	// Once the primary's digest is warm, the hedge waits for the quantile
	// delay; a fast primary means only one copy launches.
	g := NewStrategyGroup[string](
		AdaptiveHedge{Copies: 2, Quantile: 0.95, MinSamples: 4, Selection: SelectRanked},
		WithSeed[string](3))
	g.Add("a", func(ctx context.Context) (string, error) { return "a", nil })
	g.Add("b", func(ctx context.Context) (string, error) { return "b", nil })
	// Warm both digests with 50ms observations: the p95 hedge delay is
	// then enormous next to the instant replicas, so the hedge never
	// fires and every op runs a single copy.
	for _, name := range []string{"a", "b"} {
		dg := g.Digest(name)
		if dg == nil {
			t.Fatalf("Digest(%q) = nil", name)
		}
		for i := 0; i < 8; i++ {
			dg.Observe(50 * time.Millisecond)
		}
	}
	for i := 0; i < 20; i++ {
		res, err := g.Do(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Launched != 1 {
			t.Fatalf("op %d launched %d copies; hedge delay should be ~50ms", i, res.Launched)
		}
	}
}

func TestAdaptiveHedgeBudgetRefund(t *testing.T) {
	// A hedge the fast primary made unnecessary must refund its token,
	// exactly as with Fixed hedging.
	b := NewBudget(0, 1)
	g := NewStrategyGroup[int](
		AdaptiveHedge{Copies: 2, MinSamples: 1 << 30, FallbackDelay: 200 * time.Millisecond, Selection: SelectRandom},
		WithBudget[int](b), WithSeed[int](5))
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 2, nil })
	for i := 0; i < 3; i++ {
		res, err := g.Do(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Launched != 1 {
			t.Fatalf("op %d launched %d copies, want 1 (hedge never fires)", i, res.Launched)
		}
		if got := b.Available(); got != 1 {
			t.Fatalf("op %d: budget not refunded, Available = %d", i, got)
		}
	}
}

func TestFullReplicateBudgetConsumed(t *testing.T) {
	// FullReplicate launches everything immediately, so tokens are spent.
	b := NewBudget(0, 1)
	g := NewStrategyGroup[int](FullReplicate{Selection: SelectRandom},
		WithBudget[int](b), WithSeed[int](5))
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	g.Add("b", func(ctx context.Context) (int, error) { return 2, nil })
	if _, err := g.Do(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 0 {
		t.Errorf("budget Available = %d after full replication, want 0", got)
	}
}

// oddSchedule exercises the schedule-normalization path: a strategy
// returning the wrong number of delays.
type oddSchedule struct {
	delays []time.Duration
	copies int
}

func (o oddSchedule) Fanout() (int, Selection)         { return o.copies, SelectRoundRobin }
func (o oddSchedule) Schedule(Digests) []time.Duration { return o.delays }
func (o oddSchedule) String() string                   { return "odd-schedule" }

func TestStrategyScheduleNormalized(t *testing.T) {
	never := coretest.NewGate()
	slow := coretest.Blocked(0, never)
	fast := coretest.Instant(1)

	// Too-short schedule: padded with its last entry, so the launch still
	// proceeds past the declared entries instead of panicking.
	g := NewStrategyGroup[int](oddSchedule{delays: []time.Duration{0, time.Millisecond}, copies: 3})
	g.Add("s1", slow)
	g.Add("s2", slow)
	g.Add("f", fast)
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 3 {
		t.Errorf("short schedule launched %d, want 3 (padded)", res.Launched)
	}

	// Too-long schedule: truncated.
	g2 := NewStrategyGroup[int](oddSchedule{delays: make([]time.Duration, 10), copies: 2})
	g2.Add("f1", fast)
	g2.Add("f2", fast)
	if _, err := g2.Do(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Empty schedule: treated as launch-all-immediately.
	g3 := NewStrategyGroup[int](oddSchedule{delays: []time.Duration{}, copies: 2})
	g3.Add("f1", fast)
	g3.Add("f2", fast)
	res, err = g3.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("empty schedule launched %d, want 2", res.Launched)
	}
}

func TestNormalizeInto(t *testing.T) {
	ms := time.Millisecond
	buf := make([]time.Duration, 3)
	if got := normalizeInto(nil, buf); got != nil {
		t.Errorf("nil -> %v", got)
	}
	// The nil-vs-empty contract: an empty non-nil schedule means "no
	// delays, launch all copies at once" — normalized to nil, never
	// misread as an all-zero schedule the engine would index.
	if got := normalizeInto([]time.Duration{}, buf); got != nil {
		t.Errorf("empty -> %v", got)
	}
	if got := normalizeInto([]time.Duration{ms, 2 * ms, 3 * ms, 4 * ms}, buf[:2]); len(got) != 2 || got[1] != 2*ms {
		t.Errorf("truncate -> %v", got)
	}
	got := normalizeInto([]time.Duration{ms, 2 * ms}, make([]time.Duration, 4))
	if len(got) != 4 || got[2] != 2*ms || got[3] != 2*ms {
		t.Errorf("pad -> %v", got)
	}
}

// foreignSchedule is an InlineScheduler that violates the "fill dst"
// convention and returns its own memory; the dispatcher must copy the
// schedule into the caller-owned buffer so quorum zeroing cannot mutate
// strategy state.
type foreignSchedule struct{ delays []time.Duration }

func (f foreignSchedule) Fanout() (int, Selection)                              { return len(f.delays), SelectRoundRobin }
func (f foreignSchedule) Schedule(Digests) []time.Duration                      { return f.delays }
func (f foreignSchedule) String() string                                        { return "foreign" }
func (f foreignSchedule) ScheduleInto(Digests, []time.Duration) []time.Duration { return f.delays }

func TestStrategyScheduleInto(t *testing.T) {
	ms := time.Millisecond
	d := DigestList{nil, nil, nil}

	// InlineScheduler filling dst: returned as-is, backed by buf.
	buf := make([]time.Duration, 3)
	got := strategyScheduleInto(Fixed{Copies: 3, HedgeDelay: ms}, d, buf)
	if len(got) != 3 || &got[0] != &buf[0] || got[2] != ms {
		t.Errorf("Fixed.ScheduleInto -> %v (buf-backed: %v)", got, len(got) > 0 && &got[0] == &buf[0])
	}

	// InlineScheduler returning nil: launch-all.
	if got := strategyScheduleInto(FullReplicate{}, d, buf); got != nil {
		t.Errorf("FullReplicate -> %v", got)
	}

	// InlineScheduler returning foreign memory: copied into buf, so the
	// caller may zero entries without corrupting the strategy.
	foreign := foreignSchedule{delays: []time.Duration{ms, 2 * ms, 3 * ms}}
	got = strategyScheduleInto(foreign, d, buf)
	if len(got) != 3 || &got[0] != &buf[0] {
		t.Fatalf("foreign schedule not rehomed into buf: %v", got)
	}
	got[0] = 0
	if foreign.delays[0] != ms {
		t.Error("zeroing the returned schedule mutated strategy-owned memory")
	}

	// Legacy Strategy without ScheduleInto: Schedule result normalized
	// into buf (padded with the last entry).
	legacy := oddSchedule{delays: []time.Duration{0, 2 * ms}, copies: 3}
	got = strategyScheduleInto(legacy, d, buf)
	if len(got) != 3 || &got[0] != &buf[0] || got[2] != 2*ms {
		t.Errorf("legacy schedule -> %v", got)
	}

	// Legacy Strategy returning an empty non-nil schedule: nil, not an
	// all-zero schedule.
	empty := oddSchedule{delays: []time.Duration{}, copies: 3}
	if got := strategyScheduleInto(empty, d, buf); got != nil {
		t.Errorf("legacy empty schedule -> %v", got)
	}
}

func TestGroupStatsSelfDescribing(t *testing.T) {
	g := NewStrategyGroup[int](AdaptiveHedge{Copies: 2, Quantile: 0.9})
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	s := g.Stats()
	if !strings.Contains(s.Strategy, "adaptive-hedge") || !strings.Contains(s.Strategy, "p90") {
		t.Errorf("Stats().Strategy = %q", s.Strategy)
	}
	g.SetStrategy(FullReplicate{})
	if s := g.Stats(); !strings.Contains(s.Strategy, "full-replicate") {
		t.Errorf("after SetStrategy: %q", s.Strategy)
	}
	g.SetPolicy(Policy{Copies: 2, HedgeDelay: time.Millisecond})
	if s := g.Stats(); !strings.Contains(s.Strategy, "fixed") {
		t.Errorf("after SetPolicy: %q", s.Strategy)
	}
}

func TestGroupStatsQuantiles(t *testing.T) {
	g := NewGroup[int](Policy{Copies: 1})
	g.Add("a", coretest.Sleeper(1, 2*time.Millisecond))
	for i := 0; i < 10; i++ {
		if _, err := g.Do(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	s := g.Stats()
	r := s.Replicas[0]
	if !r.Observed || r.Observations != 10 {
		t.Fatalf("replica stats %+v", r)
	}
	if r.P50 < 2*time.Millisecond || r.P99 < r.P50 || r.P95 < r.P50 {
		t.Errorf("quantiles not ordered/plausible: p50=%v p95=%v p99=%v", r.P50, r.P95, r.P99)
	}
}

func TestFullReplicatePolicyReportsGroupSize(t *testing.T) {
	// The "all replicas" fan-out must surface as the group size in
	// Policy form, not the internal clamp sentinel.
	g := NewStrategyGroup[int](FullReplicate{Selection: SelectRandom})
	if got := g.Policy().Copies; got != 1 {
		t.Errorf("empty group Policy().Copies = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) { return i, nil })
	}
	if got := g.Policy().Copies; got != 3 {
		t.Errorf("Policy().Copies = %d, want 3 (group size)", got)
	}
	if got := g.Stats().Policy.Copies; got != 3 {
		t.Errorf("Stats().Policy.Copies = %d, want 3", got)
	}
}

func TestSetStrategyNil(t *testing.T) {
	g := NewStrategyGroup[int](nil)
	g.Add("a", func(ctx context.Context) (int, error) { return 1, nil })
	if _, err := g.Do(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.SetStrategy(nil)
	if k, _ := g.Strategy().Fanout(); k != 1 {
		t.Errorf("nil strategy normalized to k=%d, want 1", k)
	}
}

// TestStrategyChurnRace hammers one group with concurrent Do, Add,
// Remove, and strategy swaps across all three implementations. Run with
// -race: the digest and the snapshot swap must stay coherent.
func TestStrategyChurnRace(t *testing.T) {
	g := NewStrategyGroup[int](AdaptiveHedge{Copies: 2, MinSamples: 2, Selection: SelectRanked},
		WithSeed[int](42))
	for i := 0; i < 4; i++ {
		i := i
		g.Add(string(rune('a'+i)), func(ctx context.Context) (int, error) { return i, nil })
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := g.Do(ctx); err != nil && !errors.Is(err, ErrNoReplicas) {
					t.Error(err)
					return
				}
			}
		}()
	}
	// A shared governed strategy churns in and out of the rotation while
	// another goroutine slams its governor across the gate threshold, so
	// operations race against governor flips mid-call.
	governed := LoadAware(Fixed{Copies: 2, Selection: SelectRandom}, 2.0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		strategies := []Strategy{
			Fixed{Copies: 2, Selection: SelectRandom},
			AdaptiveHedge{Copies: 3, Quantile: 0.9, MinSamples: 2},
			FullReplicate{Selection: SelectRoundRobin},
			governed,
			Fixed{Copies: 1},
			governed,
		}
		for i := 0; i < 200; i++ {
			g.SetStrategy(strategies[i%len(strategies)])
			if i%10 == 0 {
				g.Remove("churn")
				g.Add("churn", func(ctx context.Context) (int, error) { return -1, nil })
			}
			g.Stats() // reads quantiles concurrently with observes
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate saturated and idle so the gate flips repeatedly
			// while calls are in flight.
			util := 0.0
			if i/16%2 == 0 {
				util = 10.0
			}
			for j := 0; j < 16; j++ {
				governed.Governor().Observe(util)
			}
			governed.Governor().Stats()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if f := governed.Governor().Stats().Flips; f == 0 {
		t.Log("governor never flipped during churn (acceptable, but unexpected)")
	}
}
