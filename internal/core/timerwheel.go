package core

import (
	"sync"
	"time"
)

// This file implements a hierarchical timing wheel: a shared timer
// substrate that arms and cancels deadlines in O(1) with no per-timer
// heap allocation in steady state (expired and stopped nodes recycle
// through a free list). One wheel replaces the per-hedge time.NewTimer
// of the single-call engine when many deadlines are in flight at once —
// a DoBatch arms one wheel timer per pending hedge instead of N runtime
// timers, and the memkv v2 server parks tens of thousands of delayed
// responses on the shared wheel instead of holding a goroutine per
// request. The trade is precision: a timer fires on the first tick
// boundary at or after its deadline, so expiry is late by up to one
// tick (DefaultWheelTick = 1ms). Hedge delays and service-time delays
// are statistical quantities, not hard real-time deadlines, so the
// coarsening is immaterial where the wheel is used.
//
// Layout: wheelLevels levels of wheelSlots slots each, covering
// [0, wheelSlots^wheelLevels) ticks. A timer whose delta fits level 0
// goes directly into its firing slot; coarser timers land in a higher
// level and cascade down one level each time the finer wheel wraps —
// the classic hashed hierarchical wheel of Varghese & Lauck.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	// wheelHorizon is the largest representable delta in ticks; longer
	// timers are clamped to it.
	wheelHorizon = 1<<(wheelBits*wheelLevels) - 1
	// wheelFreeCap bounds the recycled-node free list so a burst of
	// timers does not pin its high-water mark in memory forever.
	wheelFreeCap = 8192
)

// DefaultWheelTick is the tick of the shared wheel: the granularity
// (and worst-case lateness) of its timers.
const DefaultWheelTick = time.Millisecond

// wheelNode is one armed timer. Nodes are owned by the wheel and
// recycled; the generation counter invalidates stale WheelTimer handles
// so a Stop after reuse cannot unlink someone else's timer.
type wheelNode struct {
	next, prev *wheelNode
	when       int64 // absolute tick
	gen        uint32
	// level/slot record which list currently holds the node, written at
	// insert and cascade time. unlink must remove from this recorded
	// list: re-deriving the level from the current delta goes wrong once
	// time has advanced past a level boundary but the cascade has not
	// yet moved the node down.
	level uint8
	slot  uint8
	f     func(c any, i int64)
	c     any
	i     int64
}

// wheelList is a doubly-linked list head (nil-terminated both ways).
type wheelList struct {
	head, tail *wheelNode
}

func (l *wheelList) push(n *wheelNode) {
	n.prev = l.tail
	n.next = nil
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
}

func (l *wheelList) remove(n *wheelNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.next, n.prev = nil, nil
}

// take detaches and returns the whole list.
func (l *wheelList) take() *wheelNode {
	h := l.head
	l.head, l.tail = nil, nil
	return h
}

// TimerWheel is a hierarchical timing wheel; see the file comment. All
// methods are safe for concurrent use. Callbacks run on the wheel's own
// goroutine and must not block: hand off to a channel or goroutine if
// the work is more than a few non-blocking operations.
type TimerWheel struct {
	tick  time.Duration
	start time.Time

	mu     sync.Mutex
	now    int64 // ticks processed so far
	slots  [wheelLevels][wheelSlots]wheelList
	free   *wheelNode
	nfree  int
	armed  int
	closed bool

	wake chan struct{}
}

// NewTimerWheel creates a wheel with the given tick (0 means
// DefaultWheelTick) and starts its goroutine. The goroutine sleeps
// whenever no timer is armed. Call Close to stop it; the process-wide
// SharedWheel is never closed.
func NewTimerWheel(tick time.Duration) *TimerWheel {
	if tick <= 0 {
		tick = DefaultWheelTick
	}
	w := &TimerWheel{
		tick:  tick,
		start: time.Now(),
		wake:  make(chan struct{}, 1),
	}
	go w.loop()
	return w
}

var sharedWheel struct {
	once sync.Once
	w    *TimerWheel
}

// SharedWheel returns the process-wide wheel at DefaultWheelTick,
// starting it on first use. The batch engine's hedge deadlines, the
// memkv v2 server's delayed responses, and the mux clients' request
// timeouts all share it: one goroutine and one tick cadence however
// many deadlines are pending.
func SharedWheel() *TimerWheel {
	sharedWheel.once.Do(func() { sharedWheel.w = NewTimerWheel(0) })
	return sharedWheel.w
}

// WheelTimer is a handle to one armed timer, valid until the timer
// fires or is stopped. The zero WheelTimer is inert: Stop on it returns
// false. Handles are plain values; copying is fine.
type WheelTimer struct {
	w   *TimerWheel
	n   *wheelNode
	gen uint32
}

// AfterFunc arms a timer that calls f(c, i) on the wheel goroutine at
// the first tick boundary >= d from now. The (c, i) indirection exists
// so callers can use one static callback function with per-timer
// arguments instead of allocating a fresh closure per timer — the
// allocation-free idiom the batch engine's alloc budget depends on.
// f must not block (see TimerWheel).
func (w *TimerWheel) AfterFunc(d time.Duration, f func(c any, i int64), c any, i int64) WheelTimer {
	if d < 0 {
		d = 0
	}
	// Round up, then one more: "at or after the deadline" must survive
	// the in-progress tick.
	delta := int64((d + w.tick - 1) / w.tick)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return WheelTimer{}
	}
	if w.armed == 0 {
		// The loop parks while nothing is armed, freezing w.now as wall
		// time advances. Resync before arming, or the loop's catch-up to
		// the present would burn through this timer's delta and fire it
		// instantly. With zero timers armed, jumping w.now is safe: no
		// slot holds a node placed relative to the stale origin.
		w.now = int64(time.Since(w.start) / w.tick)
	}
	n := w.free
	if n != nil {
		w.free = n.next
		w.nfree--
		n.next = nil
	} else {
		n = &wheelNode{}
	}
	n.f, n.c, n.i = f, c, i
	n.when = w.now + delta + 1
	w.insert(n)
	w.armed++
	gen := n.gen
	w.mu.Unlock()
	// Wake the loop in case it is parked with nothing armed.
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return WheelTimer{w: w, n: n, gen: gen}
}

// insert places n into the level whose span covers its delta. Called
// with mu held.
func (w *TimerWheel) insert(n *wheelNode) {
	delta := n.when - w.now
	if delta < 1 {
		delta = 1
		n.when = w.now + 1
	}
	if delta > wheelHorizon {
		delta = wheelHorizon
		n.when = w.now + wheelHorizon
	}
	var level uint8
	var slot int64
	switch {
	case delta < wheelSlots:
		level, slot = 0, n.when&wheelMask
	case delta < wheelSlots*wheelSlots:
		level, slot = 1, (n.when>>wheelBits)&wheelMask
	default:
		level, slot = 2, (n.when>>(2*wheelBits))&wheelMask
	}
	n.level, n.slot = level, uint8(slot)
	w.slots[level][slot].push(n)
}

// Stop cancels the timer if it has not fired, reporting whether it was
// cancelled. A handle whose timer already fired (or a zero handle)
// returns false. Safe to call concurrently with the timer firing.
func (t WheelTimer) Stop() bool {
	if t.w == nil || t.n == nil {
		return false
	}
	w := t.w
	w.mu.Lock()
	if t.n.gen != t.gen {
		// Fired (or stopped) and possibly rearmed for someone else.
		w.mu.Unlock()
		return false
	}
	// Still ours and armed: unlink from whichever slot holds it.
	w.unlink(t.n)
	w.mu.Unlock()
	return true
}

// unlink removes an armed node from the list recorded at insert/cascade
// time and recycles it. Called with mu held.
func (w *TimerWheel) unlink(n *wheelNode) {
	w.slots[n.level][n.slot].remove(n)
	w.recycle(n)
	w.armed--
}

// recycle invalidates outstanding handles and returns n to the free
// list. Called with mu held.
func (w *TimerWheel) recycle(n *wheelNode) {
	n.gen++
	n.f, n.c = nil, nil
	if w.nfree < wheelFreeCap {
		n.next = w.free
		w.free = n
		w.nfree++
	}
}

// Armed returns the number of pending timers (for tests and stats).
func (w *TimerWheel) Armed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.armed
}

// Close stops the wheel goroutine. Pending timers never fire; pending
// handles' Stop becomes a no-op. Do not close the shared wheel.
func (w *TimerWheel) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// loop advances the wheel one tick at a time, parking when no timer is
// armed. Sleeps target absolute tick boundaries, so processing delays
// do not accumulate drift.
func (w *TimerWheel) loop() {
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return
		}
		if w.armed == 0 {
			w.mu.Unlock()
			<-w.wake
			continue
		}
		w.mu.Unlock()
		// Sleep to the next tick boundary after now.
		elapsed := time.Since(w.start)
		next := (elapsed/w.tick + 1) * w.tick
		time.Sleep(next - elapsed)
		w.advanceTo(int64(time.Since(w.start) / w.tick))
	}
}

// advanceTo processes every tick in (w.now, target], firing due timers.
func (w *TimerWheel) advanceTo(target int64) {
	for {
		w.mu.Lock()
		if w.now >= target {
			w.mu.Unlock()
			return
		}
		w.now++
		now := w.now
		// Cascade coarser levels down when the finer wheel wraps onto
		// their slot boundary.
		if now&wheelMask == 0 {
			w.cascade(1, (now>>wheelBits)&wheelMask)
			if (now>>wheelBits)&wheelMask == 0 {
				w.cascade(2, (now>>(2*wheelBits))&wheelMask)
			}
		}
		fired := w.slots[0][now&wheelMask].take()
		// Invalidate handles and count before releasing the lock, so a
		// concurrent Stop cannot race the callback run.
		for n := fired; n != nil; n = n.next {
			n.gen++
			w.armed--
		}
		w.mu.Unlock()
		for n := fired; n != nil; {
			next := n.next
			f, c, i := n.f, n.c, n.i
			f(c, i)
			w.mu.Lock()
			n.f, n.c = nil, nil
			if w.nfree < wheelFreeCap {
				n.next = w.free
				w.free = n
				w.nfree++
			}
			w.mu.Unlock()
			n = next
		}
	}
}

// cascade reinserts every node of the given higher-level slot into a
// finer level (or fires it on this tick if due). Called with mu held.
func (w *TimerWheel) cascade(level int, slot int64) {
	n := w.slots[level][slot].take()
	for n != nil {
		next := n.next
		n.next, n.prev = nil, nil
		if n.when <= w.now {
			// Due now: fire on this tick via level 0's current slot.
			n.level, n.slot = 0, uint8(w.now&wheelMask)
			w.slots[0][n.slot].push(n)
		} else {
			w.insert(n)
		}
		n = next
	}
}
