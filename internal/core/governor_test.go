package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func instantReplica(v int) Replica[int] {
	return func(ctx context.Context) (int, error) { return v, nil }
}

func TestGovernorColdAllowsFullFanout(t *testing.T) {
	g := NewGovernor(2.0, 0.5)
	if got := g.Allow(3); got != 3 {
		t.Errorf("cold Allow(3) = %d, want 3", got)
	}
	if g.Gated() {
		t.Error("cold governor gated")
	}
	s := g.Stats()
	if s.Observed || s.Samples != 0 {
		t.Errorf("cold stats %+v", s)
	}
	if s.Threshold != 2.0 || s.Low != 1.5 {
		t.Errorf("band = (%g, %g), want (1.5, 2)", s.Low, s.Threshold)
	}
}

func TestGovernorGatesWithHysteresis(t *testing.T) {
	g := NewGovernor(2.0, 0.5)
	// Saturate the EWMA well above the threshold: gate on.
	for i := 0; i < 64; i++ {
		g.Observe(5.0)
	}
	if got := g.Allow(2); got != 1 {
		t.Fatalf("Allow(2) above threshold = %d, want 1", got)
	}
	if !g.Gated() {
		t.Fatal("governor not gated above threshold")
	}
	// Drop into the hysteresis band: still gated (no flap).
	for i := 0; i < 64; i++ {
		g.Observe(1.8)
	}
	if got := g.Allow(2); got != 1 {
		t.Errorf("Allow(2) inside band while gated = %d, want 1", got)
	}
	// Fall below the band: redundancy comes back.
	for i := 0; i < 64; i++ {
		g.Observe(0.5)
	}
	if got := g.Allow(2); got != 2 {
		t.Errorf("Allow(2) below band = %d, want 2", got)
	}
	if g.Gated() {
		t.Error("governor still gated below the band")
	}
	if flips := g.Stats().Flips; flips != 2 {
		t.Errorf("Flips = %d, want 2 (one on, one off)", flips)
	}
}

func TestGovernorShedsLargeFanoutGradually(t *testing.T) {
	g := NewGovernor(2.0, 1.0) // band (1.0, 2.0)
	for i := 0; i < 64; i++ {
		g.Observe(0.2)
	}
	if got := g.Allow(5); got != 5 {
		t.Errorf("below band Allow(5) = %d, want 5", got)
	}
	for i := 0; i < 64; i++ {
		g.Observe(1.5) // middle of the band
	}
	got := g.Allow(5)
	if got < 2 || got >= 5 {
		t.Errorf("mid-band Allow(5) = %d, want partial shed in [2, 4]", got)
	}
	for i := 0; i < 64; i++ {
		g.Observe(3.0)
	}
	if got := g.Allow(5); got != 1 {
		t.Errorf("above threshold Allow(5) = %d, want 1", got)
	}
}

func TestGovernorDefaults(t *testing.T) {
	g := NewGovernor(0, 0)
	if g.threshold != DefaultGovernorThreshold {
		t.Errorf("default threshold = %g", g.threshold)
	}
	if g.low >= g.threshold || g.low <= 0 {
		t.Errorf("default band = (%g, %g)", g.low, g.threshold)
	}
	if got := g.Allow(1); got != 1 {
		t.Errorf("Allow(1) = %d", got)
	}
}

func TestLoadAwareStrategyOnGroup(t *testing.T) {
	gs := LoadAware(Fixed{Copies: 2}, 2.0)
	g := NewStrategyGroup[int](gs)
	g.Add("a", instantReplica(1))
	g.Add("b", instantReplica(2))

	// Cold: full fan-out.
	res, err := g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Fatalf("cold governed Do launched %d, want 2", res.Launched)
	}

	// Saturate the governor's EWMA as a loaded system would: fan-out
	// degrades to 1 and the stats say why.
	for i := 0; i < 64; i++ {
		gs.Governor().Observe(5.0)
	}
	res, err = g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 1 {
		t.Errorf("gated governed Do launched %d, want 1", res.Launched)
	}
	if !gs.Governor().Gated() {
		t.Error("governor not gated")
	}
	if s := g.Stats(); !strings.Contains(s.Strategy, "load-aware") {
		t.Errorf("Stats().Strategy = %q", s.Strategy)
	}

	// Load clears: redundancy returns.
	for i := 0; i < 256; i++ {
		gs.Governor().Observe(0)
	}
	res, err = g.Do(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 2 {
		t.Errorf("recovered governed Do launched %d, want 2", res.Launched)
	}
}

func TestLoadAwareSamplesInFlight(t *testing.T) {
	// Real in-flight copies must reach the governor: hold several calls
	// open against blocked replicas, then check the next Do's sample saw
	// them.
	gs := LoadAware(FullReplicate{}, 50.0) // high threshold: never gates here
	g := NewStrategyGroup[int](gs)
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		i := i
		g.Add(fmt.Sprintf("r%d", i), func(ctx context.Context) (int, error) {
			select {
			case <-release:
				return i, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		})
	}
	const held = 4
	var wg sync.WaitGroup
	for i := 0; i < held; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(context.Background())
		}()
	}
	// Wait until all held calls' copies are in flight (2 replicas x held
	// calls), without sleeping for a guessed duration.
	deadline := time.Now().Add(2 * time.Second)
	for gs.Governor().Stats().InFlight < 2*held && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := gs.Governor().Stats().InFlight; got < 2*held {
		t.Fatalf("InFlight = %d, want %d", got, 2*held)
	}
	close(release)
	wg.Wait()
	// Every copy completed: capacity fully reclaimed.
	deadline = time.Now().Add(2 * time.Second)
	for gs.Governor().Stats().InFlight != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := gs.Governor().Stats().InFlight; got != 0 {
		t.Errorf("InFlight after completion = %d, want 0", got)
	}
	if s := gs.Governor().Stats(); s.Capacity != 2 || s.Samples < held {
		t.Errorf("governor stats %+v", s)
	}
}

func TestLoadAwareWithSharedGovernor(t *testing.T) {
	gov := NewGovernor(2.0, 0.5)
	s1 := LoadAwareWith(Fixed{Copies: 2}, gov)
	s2 := LoadAwareWith(AdaptiveHedge{Copies: 2}, gov)
	if s1.Governor() != gov || s2.Governor() != gov {
		t.Fatal("shared governor not threaded through")
	}
	if s1.Inner().String() != (Fixed{Copies: 2}).String() {
		t.Errorf("Inner() = %v", s1.Inner())
	}
	// Nil inner and nil governor normalize.
	s3 := LoadAwareWith(nil, nil)
	if k, _ := s3.Fanout(); k != 2 {
		t.Errorf("nil-inner Fanout = %d, want 2", k)
	}
	if !strings.Contains(s3.String(), "load-aware") {
		t.Errorf("String() = %q", s3.String())
	}
}
