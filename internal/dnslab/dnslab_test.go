package dnslab

import (
	"testing"

	"redundancy/internal/analytic"
)

func runSmall(t *testing.T, seed int64) *Result {
	t.Helper()
	r, err := Run(Config{Vantages: 8, Servers: 10, QueriesPerStage: 12000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTailImprovementFactors(t *testing.T) {
	// Figure 15: querying 10 servers cuts the fraction of queries slower
	// than 500 ms by several-fold, and slower than 1.5 s dramatically
	// (paper: 6.5x and 50x).
	r := runSmall(t, 1)
	f1 := r.PerK[0].FractionAbove(0.5)
	f10 := r.PerK[9].FractionAbove(0.5)
	if f1 == 0 {
		t.Fatal("baseline has no 500ms tail; model too benign")
	}
	if f10 >= f1/3 {
		t.Errorf("500ms tail: %g -> %g, want >= 3x reduction", f1, f10)
	}
	s1 := r.PerK[0].FractionAbove(1.5)
	s10 := r.PerK[9].FractionAbove(1.5)
	if s1 == 0 {
		t.Fatal("baseline has no 1.5s tail")
	}
	if s10 >= s1/10 {
		t.Errorf("1.5s tail: %g -> %g, want >= 10x reduction", s1, s10)
	}
}

func TestReductionGrowsWithCopies(t *testing.T) {
	// Figure 16: every metric improves substantially with 2 servers and
	// keeps improving to 10 (50-62% there).
	r := runSmall(t, 2)
	metrics := map[string]func(int) float64{
		"mean":   func(k int) float64 { return r.Reduction(k, Mean) },
		"median": func(k int) float64 { return r.Reduction(k, Median) },
		"p99":    func(k int) float64 { return r.Reduction(k, P99) },
	}
	for name, f := range metrics {
		r2, r10 := f(2), f(10)
		if r2 < 5 {
			t.Errorf("%s reduction at k=2 is %.1f%%, want substantial", name, r2)
		}
		if r10 <= r2 {
			t.Errorf("%s reduction did not grow: k=2 %.1f%% vs k=10 %.1f%%", name, r2, r10)
		}
	}
	if r10 := r.Reduction(10, Mean); r10 < 30 || r10 > 80 {
		t.Errorf("mean reduction at 10 servers = %.1f%%, paper reports 50-62%%", r10)
	}
}

func TestMarginalValueCrossesBreakEven(t *testing.T) {
	// Figure 17: the 2nd server is clearly worth 16 ms/KB in the mean;
	// by the 10th the marginal mean value has fallen well below the 99th
	// percentile's.
	r := runSmall(t, 3)
	m2 := r.MarginalMsPerKB(2, Mean)
	if m2 < analytic.BreakEvenMsPerKB {
		t.Errorf("2nd server marginal mean value %.1f ms/KB below break-even", m2)
	}
	m10 := r.MarginalMsPerKB(10, Mean)
	if m10 >= m2 {
		t.Errorf("marginal value should diminish: k=2 %.1f vs k=10 %.1f", m2, m10)
	}
	p2 := r.MarginalMsPerKB(2, P99)
	if p2 < analytic.BreakEvenMsPerKB {
		t.Errorf("2nd server marginal p99 value %.1f ms/KB below break-even", p2)
	}
}

func TestTimeoutCapsResponses(t *testing.T) {
	r := runSmall(t, 4)
	for k := 1; k <= 10; k++ {
		if max := r.PerK[k-1].Max(); max > 2.0 {
			t.Errorf("k=%d: response %g exceeds the 2s cutoff", k, max)
		}
	}
}

func TestMonotoneInK(t *testing.T) {
	// More copies can only help in this no-queueing wide-area model
	// (min over a superset): means should be nonincreasing in k, modulo
	// sampling noise.
	r := runSmall(t, 5)
	prev := r.PerK[0].Mean()
	for k := 2; k <= 10; k++ {
		cur := r.PerK[k-1].Mean()
		if cur > prev*1.05 {
			t.Errorf("mean increased at k=%d: %g -> %g", k, prev, cur)
		}
		prev = cur
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := runSmall(t, 6)
	b := runSmall(t, 6)
	if a.PerK[4].Mean() != b.PerK[4].Mean() {
		t.Error("same-seed runs diverged")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Vantages: 1, Servers: 1, QueriesPerStage: 1000}); err == nil {
		t.Error("1-server config accepted")
	}
	bad := DefaultParams()
	bad.Timeout = 0
	if _, err := Run(Config{Vantages: 2, Servers: 4, QueriesPerStage: 1000, Params: bad}); err == nil {
		t.Error("zero timeout accepted")
	}
}
