// Package dnslab reproduces the paper's wide-area DNS experiment (§3.2,
// Figures 15-17): from each of several vantage points, rank 10 DNS servers
// by mean response time, then compare querying the best single server
// against querying the top k servers in parallel (k = 1..10), taking the
// first response. Queries slower than 2 seconds count as lost and are
// recorded as 2 seconds, exactly as in the paper.
//
// The paper ran on PlanetLab against public resolvers; that substrate is
// unavailable offline, so each (vantage, server) pair gets a synthetic
// wide-area latency law with the ingredients the paper identifies: a
// per-pair base RTT (servers differ in proximity), per-query jitter,
// occasional cache-miss recursion spikes, and packet loss. The claims
// under test are relative (CCDF improvement factors, percent reductions,
// marginal ms/KB vs the 16 ms/KB benchmark), which depend on the shape of
// these ingredients rather than on PlanetLab specifics.
package dnslab

import (
	"fmt"
	"math/rand"
	"sort"

	"redundancy/internal/dist"
	"redundancy/internal/stats"
)

// Config describes the experiment.
type Config struct {
	Vantages int // number of client vantage points (paper: 15)
	Servers  int // number of DNS servers (paper: 10)
	// QueriesPerStage is the number of queries per vantage in each stage.
	QueriesPerStage int
	Seed            int64

	Params Params
}

// Params are the wide-area model constants (seconds / probabilities).
type Params struct {
	// BaseRTTMin/Max bound the per-(vantage,server) mean RTT, drawn
	// uniformly: some servers are anycast-near, some far.
	BaseRTTMin, BaseRTTMax float64
	// JitterCV is the per-query lognormal CV around the pair's base RTT.
	JitterCV float64
	// MissProb is the probability a query misses the resolver's cache and
	// pays a recursion delay.
	MissProb float64
	// MissMean is the mean recursion delay; lognormal with MissCV.
	MissMean, MissCV float64
	// LossProb is the probability the query or response is dropped.
	LossProb float64
	// Timeout is the loss cutoff; lost/late queries count as Timeout
	// (paper: 2 s).
	Timeout float64
	// BytesPerCopy is the extra traffic per additional server queried
	// (query + response, used for Figure 17's ms/KB metric; the paper's
	// arithmetic implies 500 bytes per copy: 4500 extra bytes for 10
	// copies).
	BytesPerCopy float64
}

// DefaultParams returns constants producing wide-area behaviour of the
// paper's scale: ~40-150 ms typical responses, a multi-hundred-ms
// cache-miss tail, and ~1-2% loss.
func DefaultParams() Params {
	return Params{
		BaseRTTMin: 0.015, BaseRTTMax: 0.150,
		JitterCV: 0.35,
		MissProb: 0.12,
		MissMean: 0.350, MissCV: 0.9,
		LossProb:     0.015,
		Timeout:      2.0,
		BytesPerCopy: 500,
	}
}

// Result aggregates the experiment's output across vantages.
type Result struct {
	// PerK[k-1] is the pooled response-time sample when querying the top
	// k servers in parallel.
	PerK []*stats.Sample
	// BestSingle is the pooled sample for each vantage's best-ranked
	// server (identical to PerK[0] by construction; kept for clarity).
	BestSingle *stats.Sample
	// Params echoes the configuration used.
	Params Params
}

func (c *Config) setDefaults() {
	if c.Vantages == 0 {
		c.Vantages = 15
	}
	if c.Servers == 0 {
		c.Servers = 10
	}
	if c.QueriesPerStage == 0 {
		c.QueriesPerStage = 20000
	}
	if c.Params == (Params{}) {
		c.Params = DefaultParams()
	}
}

func (c *Config) validate() error {
	if c.Vantages < 1 || c.Servers < 2 || c.QueriesPerStage < 100 {
		return fmt.Errorf("dnslab: implausible config %+v", *c)
	}
	p := c.Params
	if p.Timeout <= 0 || p.LossProb < 0 || p.LossProb >= 1 || p.MissProb < 0 || p.MissProb > 1 {
		return fmt.Errorf("dnslab: invalid params %+v", p)
	}
	return nil
}

// pairModel is the latency law for one (vantage, server) pair.
type pairModel struct {
	rtt  dist.Dist // per-query RTT (lognormal around pair base)
	miss dist.Dist // recursion delay when a cache miss occurs
}

// sample draws one query's response time, with Timeout for losses and as a
// cap (the paper counts queries above 2 s as 2 s).
func (m *pairModel) sample(r *rand.Rand, p Params) float64 {
	if r.Float64() < p.LossProb {
		return p.Timeout
	}
	t := m.rtt.Sample(r)
	if r.Float64() < p.MissProb {
		t += m.miss.Sample(r)
	}
	if t > p.Timeout {
		return p.Timeout
	}
	return t
}

// Run executes the two-stage experiment.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := cfg.Params
	r := rand.New(rand.NewSource(cfg.Seed))

	res := &Result{
		PerK:       make([]*stats.Sample, cfg.Servers),
		BestSingle: stats.NewSample(cfg.Vantages * cfg.QueriesPerStage),
		Params:     p,
	}
	for k := range res.PerK {
		res.PerK[k] = stats.NewSample(cfg.Vantages * cfg.QueriesPerStage / 4)
	}

	for v := 0; v < cfg.Vantages; v++ {
		// Build this vantage's pair models.
		pairs := make([]pairModel, cfg.Servers)
		for s := range pairs {
			base := p.BaseRTTMin + r.Float64()*(p.BaseRTTMax-p.BaseRTTMin)
			pairs[s] = pairModel{
				rtt:  dist.LogNormalMeanCV(base, p.JitterCV),
				miss: dist.LogNormalMeanCV(p.MissMean, p.MissCV),
			}
		}

		// Stage 1: rank servers by mean response time from probes.
		type rankEntry struct {
			idx  int
			mean float64
		}
		ranks := make([]rankEntry, cfg.Servers)
		probesPerServer := cfg.QueriesPerStage / cfg.Servers
		if probesPerServer < 50 {
			probesPerServer = 50
		}
		for s := range pairs {
			var acc stats.Running
			for q := 0; q < probesPerServer; q++ {
				acc.Add(pairs[s].sample(r, p))
			}
			ranks[s] = rankEntry{idx: s, mean: acc.Mean()}
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i].mean < ranks[j].mean })

		// Stage 2: for each k, query the top-k servers in parallel.
		for q := 0; q < cfg.QueriesPerStage; q++ {
			k := 1 + q%cfg.Servers // cycle trial types as the paper randomizes them
			best := p.Timeout
			for i := 0; i < k; i++ {
				t := pairs[ranks[i].idx].sample(r, p)
				if t < best {
					best = t
				}
			}
			res.PerK[k-1].Add(best)
			if k == 1 {
				res.BestSingle.Add(best)
			}
		}
	}
	return res, nil
}

// Reduction returns the percent reduction (0-100) of metric f at k copies
// relative to the best single server.
func (r *Result) Reduction(k int, f func(*stats.Sample) float64) float64 {
	base := f(r.PerK[0])
	repl := f(r.PerK[k-1])
	if base == 0 {
		return 0
	}
	return 100 * (1 - repl/base)
}

// MarginalMsPerKB returns Figure 17's metric: the incremental latency
// saving of the k-th server (vs k-1) for metric f, in milliseconds per KB
// of extra traffic.
func (r *Result) MarginalMsPerKB(k int, f func(*stats.Sample) float64) float64 {
	if k < 2 {
		return 0
	}
	saved := f(r.PerK[k-2]) - f(r.PerK[k-1])
	return saved * 1000 / (r.Params.BytesPerCopy / 1024)
}

// Mean is a metric selector for Reduction/MarginalMsPerKB.
func Mean(s *stats.Sample) float64 { return s.Mean() }

// Median is a metric selector.
func Median(s *stats.Sample) float64 { return s.Median() }

// P95 is a metric selector.
func P95(s *stats.Sample) float64 { return s.Quantile(0.95) }

// P99 is a metric selector.
func P99(s *stats.Sample) float64 { return s.P99() }
