// Package stats provides the measurement primitives shared by every
// experiment: streaming moments, exact-quantile sample stores, CCDF export
// (the paper plots "fraction later than threshold" on log axes), and
// paired-comparison helpers for the common-random-number threshold search.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean and variance (Welford's algorithm)
// without storing samples. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (NaN if empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance (NaN if fewer than 2
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (NaN if empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation (NaN if empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// CV returns the coefficient of variation, stddev/mean.
func (r *Running) CV() float64 { return r.Stddev() / r.Mean() }

// Sample stores observations for exact quantiles and CCDF export. For the
// sample sizes used here (<= a few million float64s) exact storage is
// cheaper and simpler than sketches, and keeps tail quantiles exact — the
// paper's headline results are 99th/99.9th percentiles, where sketch error
// would be most damaging.
type Sample struct {
	xs     []float64
	sorted bool
	run    Running
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.run.Add(x)
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.run.Mean() }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 { return s.run.Variance() }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.run.Min() }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.run.Max() }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (q in [0,1]) using linear interpolation
// between order statistics. It returns NaN if the sample is empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.sort()
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P99 returns the 0.99-quantile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// P999 returns the 0.999-quantile.
func (s *Sample) P999() float64 { return s.Quantile(0.999) }

// FractionAbove returns the fraction of observations strictly greater than
// threshold — the paper's "fraction later than threshold" CCDF metric.
func (s *Sample) FractionAbove(threshold float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	// First index with xs[i] > threshold.
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > threshold })
	return float64(len(s.xs)-i) / float64(len(s.xs))
}

// CCDF returns (threshold, fraction-later-than-threshold) pairs at the given
// thresholds.
func (s *Sample) CCDF(thresholds []float64) []CCDFPoint {
	pts := make([]CCDFPoint, len(thresholds))
	for i, t := range thresholds {
		pts[i] = CCDFPoint{T: t, Frac: s.FractionAbove(t)}
	}
	return pts
}

// CCDFPoint is one point of a complementary CDF.
type CCDFPoint struct {
	T    float64 // threshold
	Frac float64 // fraction of observations exceeding T
}

// Values returns the observations, sorted ascending. The returned slice is
// owned by the Sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.xs
}

// LogSpace returns n points spaced logarithmically between lo and hi
// inclusive, for CCDF threshold grids on log axes.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: LogSpace requires 0 < lo < hi and n >= 2")
	}
	out := make([]float64, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}

// LinSpace returns n points spaced linearly between lo and hi inclusive.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: LinSpace requires n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Summary is a compact distribution summary used in experiment tables.
type Summary struct {
	N                  int
	Mean, Median       float64
	P95, P99, P999     float64
	Min, Max, Variance float64
}

// Summarize extracts a Summary from a Sample.
func Summarize(s *Sample) Summary {
	return Summary{
		N:        s.N(),
		Mean:     s.Mean(),
		Median:   s.Median(),
		P95:      s.Quantile(0.95),
		P99:      s.P99(),
		P999:     s.P999(),
		Min:      s.Min(),
		Max:      s.Max(),
		Variance: s.Variance(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g p50=%.6g p95=%.6g p99=%.6g p99.9=%.6g max=%.6g",
		s.N, s.Mean, s.Median, s.P95, s.P99, s.P999, s.Max)
}

// Histogram is a log-bucketed histogram for cheap latency aggregation when
// exact samples are not needed (e.g. per-server diagnostics).
type Histogram struct {
	lo     float64
	growth float64
	counts []int64
	under  int64
	over   int64
	total  int64
}

// NewHistogram creates a histogram with nb buckets covering [lo, hi)
// geometrically.
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if lo <= 0 || hi <= lo || nb < 1 {
		panic("stats: NewHistogram requires 0 < lo < hi and nb >= 1")
	}
	return &Histogram{
		lo:     lo,
		growth: math.Pow(hi/lo, 1/float64(nb)),
		counts: make([]int64, nb),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.lo {
		h.under++
		return
	}
	i := int(math.Log(x/h.lo) / math.Log(h.growth))
	if i >= len(h.counts) {
		h.over++
		return
	}
	h.counts[i]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an approximate q-quantile (bucket upper bound).
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := int64(q * float64(h.total))
	cum := h.under
	if cum > target {
		return h.lo
	}
	b := h.lo
	for _, c := range h.counts {
		b *= h.growth
		cum += c
		if cum > target {
			return b
		}
	}
	return math.Inf(1)
}
