package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunningMomentsMatchDirect(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var run Running
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		run.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if math.Abs(run.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %g, want %g", run.Mean(), mean)
	}
	if math.Abs(run.Variance()-wantVar) > 1e-6 {
		t.Errorf("Variance = %g, want %g", run.Variance(), wantVar)
	}
	if run.N() != int64(len(xs)) {
		t.Errorf("N = %d, want %d", run.N(), len(xs))
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty Running should return NaN moments")
	}
	r.Add(5)
	if r.Mean() != 5 || r.Min() != 5 || r.Max() != 5 {
		t.Error("single-sample moments wrong")
	}
	if !math.IsNaN(r.Variance()) {
		t.Error("variance of single sample should be NaN")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if s.Median() != s.Quantile(0.5) {
		t.Error("Median != Quantile(0.5)")
	}
}

func TestSampleQuantileClampsAndEmpty(t *testing.T) {
	s := NewSample(0)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sample quantile should be NaN")
	}
	s.Add(3)
	if s.Quantile(-1) != 3 || s.Quantile(2) != 3 {
		t.Error("out-of-range q should clamp")
	}
}

func TestFractionAbove(t *testing.T) {
	s := NewSample(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	cases := []struct{ th, want float64 }{
		{0, 1}, {1, 0.8}, {3, 0.4}, {5, 0}, {10, 0},
	}
	for _, c := range cases {
		if got := s.FractionAbove(c.th); got != c.want {
			t.Errorf("FractionAbove(%g) = %g, want %g", c.th, got, c.want)
		}
	}
}

func TestCCDFMonotoneNonincreasing(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(r.ExpFloat64())
	}
	pts := s.CCDF(LogSpace(0.001, 10, 50))
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac > pts[i-1].Frac {
			t.Fatalf("CCDF increased at %d", i)
		}
	}
}

func TestInterleavedAddAndQuery(t *testing.T) {
	// Querying (which sorts) then adding more must keep results correct.
	s := NewSample(0)
	s.Add(3)
	s.Add(1)
	if s.Median() != 2 {
		t.Fatalf("median = %g", s.Median())
	}
	s.Add(2)
	if s.Median() != 2 {
		t.Fatalf("median after add = %g", s.Median())
	}
	if s.Max() != 3 || s.Min() != 1 {
		t.Fatal("min/max wrong after interleaved use")
	}
}

func TestLogSpaceAndLinSpace(t *testing.T) {
	ls := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(ls[i]-want[i]) > 1e-9 {
			t.Errorf("LogSpace[%d] = %g, want %g", i, ls[i], want[i])
		}
	}
	lin := LinSpace(0, 1, 5)
	for i, w := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if math.Abs(lin[i]-w) > 1e-12 {
			t.Errorf("LinSpace[%d] = %g, want %g", i, lin[i], w)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	sum := Summarize(s)
	if sum.N != 1000 || math.Abs(sum.Mean-500.5) > 1e-9 {
		t.Errorf("Summary mean/N wrong: %+v", sum)
	}
	if sum.P99 < 985 || sum.P99 > 995 {
		t.Errorf("P99 = %g", sum.P99)
	}
	if sum.String() == "" {
		t.Error("String() empty")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0.001, 10, 200)
	r := rand.New(rand.NewSource(3))
	s := NewSample(0)
	for i := 0; i < 100000; i++ {
		x := r.ExpFloat64() * 0.1
		h.Add(x)
		s.Add(x)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := s.Quantile(q)
		approx := h.Quantile(q)
		if approx < exact*0.9 || approx > exact*1.15 {
			t.Errorf("histogram q%.2f = %g, exact %g", q, approx, exact)
		}
	}
	if h.Total() != 100000 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(1, 10, 10)
	h.Add(0.5) // under
	h.Add(100) // over
	if h.Total() != 2 {
		t.Fatalf("Total = %d", h.Total())
	}
	if q := h.Quantile(0.1); q != 1 {
		t.Errorf("under-range quantile = %g, want lo", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Errorf("over-range quantile = %g, want +Inf", q)
	}
}

// Property: Sample.Quantile agrees with direct sorting for random data.
func TestQuantileMatchesSortProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := NewSample(0)
		for _, v := range xs {
			s.Add(v)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if s.Quantile(0) != sorted[0] || s.Quantile(1) != sorted[len(sorted)-1] {
			return false
		}
		med := s.Quantile(0.5)
		return med >= sorted[0] && med <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FractionAbove is within [0,1] and antitone in the threshold.
func TestFractionAboveAntitoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s := NewSample(0)
		for _, v := range raw {
			if !math.IsNaN(v) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		fl, fh := s.FractionAbove(lo), s.FractionAbove(hi)
		return fl >= fh && fl >= 0 && fl <= 1 && fh >= 0 && fh <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
